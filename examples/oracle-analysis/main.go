// oracle-analysis: offline analysis of a workload's retention headroom.
// Records the LLC reference stream once, then replays it under Belady's
// OPT and under oracle retention with NUcache's MainWays/DeliWays split,
// and compares NUcache's online result against both bounds.
//
//	go run ./examples/oracle-analysis [benchmark]
package main

import (
	"fmt"
	"os"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

func main() {
	benchName := "equake-like"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	b, ok := workload.ByName(benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; known: %v\n", benchName, workload.Names())
		os.Exit(2)
	}

	const budget = 2_000_000
	cfg := cpu.DefaultConfig(1)
	cfg.InstrBudget = budget
	nuCfg := core.DefaultConfig(cfg.LLC.Ways)

	run := func(pol cache.Policy) cpu.CoreResult {
		sys := cpu.NewSystem(cfg, pol, []trace.Stream{b.Stream(1)})
		return sys.Run()[0]
	}

	// Pass 1: LRU baseline, recording the LLC line stream (which is the
	// same under every LLC policy, because the L1 filters independently).
	rec := policy.NewRecorder(policy.NewLRU())
	lru := run(rec)
	chain := policy.NextUseChain(rec.LineAddrs)

	// Bounds: Belady OPT (any organization) and oracle retention
	// (NUcache's organization, perfect knowledge).
	opt := run(policy.NewOPT(chain))
	window := uint64(nuCfg.DeliWays * cfg.LLC.Sets())
	if lru.LLCMisses > 0 {
		window *= uint64(len(rec.LineAddrs))/lru.LLCMisses + 1
	}
	oracle := run(policy.NewOracleRetention(nuCfg.MainWays(), nuCfg.DeliWays, window, chain))

	// The online mechanism.
	nu := run(core.MustNew(nuCfg))

	t := metrics.NewTable(
		fmt.Sprintf("%s: %d LLC references recorded", b.Name, len(rec.LineAddrs)),
		"policy", "LLC misses", "miss reduction vs LRU", "IPC")
	row := func(name string, r cpu.CoreResult) {
		red := 0.0
		if lru.LLCMisses > 0 {
			red = 1 - float64(r.LLCMisses)/float64(lru.LLCMisses)
		}
		t.AddRow(name, fmt.Sprintf("%d", r.LLCMisses), metrics.F2(red), metrics.F3(r.IPC()))
	}
	row("LRU (baseline)", lru)
	row("NUcache (online)", nu)
	row("oracle retention (same M/D)", oracle)
	row("Belady OPT (upper bound)", opt)
	t.Render(os.Stdout)

	fmt.Println()
	fmt.Println("Reading the table: OPT bounds any replacement policy; oracle")
	fmt.Println("retention bounds any selection mechanism for NUcache's fixed")
	fmt.Println("MainWays/DeliWays organization; the gap between NUcache and the")
	fmt.Println("oracle is the cost of predicting next-use from PC history alone.")
}
