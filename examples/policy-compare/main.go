// policy-compare: run one benchmark model alone under every LLC policy
// and compare IPC / MPKI — a miniature of the paper's single-core study.
//
//	go run ./examples/policy-compare [benchmark]
package main

import (
	"fmt"
	"os"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

func main() {
	benchName := "ammp-like"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	b, ok := workload.ByName(benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; known: %v\n", benchName, workload.Names())
		os.Exit(2)
	}

	policies := []struct {
		name string
		mk   func(ways int) cache.Policy
	}{
		{"LRU", func(int) cache.Policy { return policy.NewLRU() }},
		{"Random", func(int) cache.Policy { return policy.NewRandom(1) }},
		{"SRRIP", func(int) cache.Policy { return policy.NewSRRIP() }},
		{"DRRIP", func(int) cache.Policy { return policy.NewDRRIP(1) }},
		{"DIP", func(int) cache.Policy { return policy.NewDIP(1) }},
		{"NUcache", func(ways int) cache.Policy { return core.MustNew(core.DefaultConfig(ways)) }},
	}

	t := metrics.NewTable(
		fmt.Sprintf("%s alone (%s)", b.Name, b.Description),
		"policy", "IPC", "LLC MPKI", "LLC hit%")
	for _, p := range policies {
		cfg := cpu.DefaultConfig(1)
		cfg.InstrBudget = 3_000_000
		sys := cpu.NewSystem(cfg, p.mk(cfg.LLC.Ways), []trace.Stream{b.Stream(1)})
		r := sys.Run()[0]
		hitPct := 0.0
		if r.LLCAccesses > 0 {
			hitPct = 100 * float64(r.LLCHits) / float64(r.LLCAccesses)
		}
		t.AddRow(p.name, metrics.F3(r.IPC()), metrics.F2(r.LLCMPKI()), metrics.F2(hitPct))
	}
	t.Render(os.Stdout)
}
