// nextuse-profile: use the Next-Use monitor and the cost-benefit PC
// selection directly — no simulator — to see how NUcache decides which
// delinquent PCs deserve the DeliWays.
//
//	go run ./examples/nextuse-profile
package main

import (
	"fmt"

	"nucache/internal/core"
)

func main() {
	cfg := core.MustNew(core.Config{Ways: 16, DeliWays: 6, SampleShift: 0}).Config()
	mon := core.NewMonitor(cfg)

	// Hand-author the per-set event stream the monitor would see, for one
	// set over 200 "rounds" of a modelled program:
	//
	//   PC 0xA re-fetches 3 lines per round; each line returns ~12 misses
	//          after leaving the MainWays  -> protectable.
	//   PC 0xB re-fetches 4 lines per round, but they return ~45 misses
	//          later — holding them would starve 0xA -> not worth it.
	//   PC 0xC streams 8 fresh lines per round, never reused -> hopeless.
	const set = 0
	aTag := func(r, i uint64) uint64 { return 1_000 + (r%1)*0 + i } // 3 recycled lines
	bTag := func(r, i uint64) uint64 { return 2_000 + (r%3)*4 + i } // 12 recycled lines
	cTag := uint64(3_000)

	for r := uint64(0); r < 200; r++ {
		// A's lines return (they were demoted last round, ~12 misses ago)
		// and immediately miss-refill.
		for i := uint64(0); i < 3; i++ {
			mon.OnAccess(set, aTag(r, i))
			mon.OnMiss(set, 0xA)
		}
		// C streams junk through the set.
		for i := 0; i < 8; i++ {
			mon.OnMiss(set, 0xC)
			mon.OnDemotion(set, cTag, 0xC)
			cTag++
		}
		// A's freshly filled lines get demoted by the junk.
		for i := uint64(0); i < 3; i++ {
			mon.OnDemotion(set, aTag(r, i), 0xA)
		}
		// B's lines from 3 rounds ago return (~45 misses later) and
		// this round's batch is filled and demoted.
		for i := uint64(0); i < 4; i++ {
			mon.OnAccess(set, bTag(r-3, i))
			mon.OnMiss(set, 0xB)
			mon.OnDemotion(set, bTag(r, i), 0xB)
		}
	}

	fmt.Println("per-PC profiles observed by the monitor:")
	cands := mon.TopCandidates(8)
	for _, p := range cands {
		fmt.Printf("  pc=%#x misses=%-5d demotions=%-5d reuses=%-5d meanNextUse=%.1f\n",
			p.PC, p.Misses, p.Demotions, p.NextUse.Total(), p.NextUse.Mean())
	}

	chosen, report := core.SelectPCs(cands, cfg.DeliWays,
		mon.SampledMisses(), 8, cfg.LifetimeSlack)
	fmt.Printf("\nselection: %d of %d candidates chosen, lifetime=%d misses, projected benefit=%d hits\n",
		report.Chosen, report.Candidates, report.Lifetime, report.Benefit)
	for _, pc := range chosen {
		fmt.Printf("  chosen: %#x\n", pc)
	}
	fmt.Println()
	fmt.Println("0xA is chosen: its next-use distances fit the DeliWays lifetime.")
	fmt.Println("0xB is rejected: admitting it would shrink everyone's lifetime")
	fmt.Println("below its own distances. 0xC is rejected: no reuse at all.")
}
