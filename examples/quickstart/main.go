// Quickstart: build a NUcache-managed cache, drive it by hand, and watch
// the PC selection protect a polluted hot loop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/trace"
)

func main() {
	// A small 8-way cache: 5 MainWays + 3 DeliWays per set.
	nu := core.MustNew(core.Config{
		Ways:        8,
		DeliWays:    3,
		EpochMisses: 2000,
		SampleShift: 0, // monitor every set (tiny cache)
	})
	c := cache.New(cache.Config{
		Name:      "demo-llc",
		SizeBytes: 16 * 8 * 64, // 16 sets x 8 ways x 64B lines
		Ways:      8,
		LineBytes: 64,
	}, nu)

	// Two instruction sites: pcHot loops over a working set that LRU
	// would lose; pcScan streams junk through every set.
	const (
		pcHot  = 0x400100
		pcScan = 0x400200
	)
	hotLines := 6 // per set: more than survives 8-way LRU under the scan
	scanAddr := uint64(1 << 30)

	var hotHits, hotAccesses int
	for round := 0; round < 300; round++ {
		for i := 0; i < hotLines; i++ {
			for set := 0; set < 16; set++ {
				addr := uint64(i)*16*64 + uint64(set)*64
				r := c.Access(&cache.Request{Addr: addr, PC: pcHot, Kind: trace.Load})
				if r.Hit {
					hotHits++
				}
				hotAccesses++
			}
		}
		for i := 0; i < 10; i++ {
			for set := 0; set < 16; set++ {
				c.Access(&cache.Request{Addr: scanAddr, PC: pcScan, Kind: trace.Load})
				scanAddr += 64
			}
		}
	}

	fmt.Printf("hot-loop hit rate: %.1f%% (%d of %d)\n",
		100*float64(hotHits)/float64(hotAccesses), hotHits, hotAccesses)
	fmt.Printf("selection epochs:  %d\n", nu.Epochs)
	fmt.Printf("DeliWay hits:      %d\n", nu.DeliHits)
	for _, pc := range nu.ChosenPCs() {
		fmt.Printf("chosen PC:         %#x\n", pc)
	}
	fmt.Println()
	fmt.Println("Under plain 8-way LRU this pattern gets ~0% hot hits: the scan")
	fmt.Println("flushes every set between rounds. NUcache's monitor observes the")
	fmt.Println("hot PC's short next-use distances and retains its lines in the")
	fmt.Println("DeliWays after MainWays eviction.")
}
