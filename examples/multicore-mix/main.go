// multicore-mix: simulate a 4-core multiprogrammed mix on a shared LLC
// under LRU and NUcache and report per-program slowdowns and weighted
// speedup — the paper's headline experiment in miniature.
//
//	go run ./examples/multicore-mix [mix4-XX]
package main

import (
	"fmt"
	"os"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

func main() {
	mixName := "mix4-06"
	if len(os.Args) > 1 {
		mixName = os.Args[1]
	}
	var mix workload.Mix
	found := false
	for _, m := range workload.Mixes4() {
		if m.Name == mixName {
			mix, found = m, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown 4-core mix %q\n", mixName)
		os.Exit(2)
	}

	const budget = 2_000_000
	cfg := cpu.DefaultConfig(mix.Cores())
	cfg.InstrBudget = budget

	// Alone runs give the weighted-speedup denominator.
	alone := make([]float64, mix.Cores())
	for i, name := range mix.Members {
		a := cfg
		a.Cores = 1
		sys := cpu.NewSystem(a, policy.NewLRU(),
			[]trace.Stream{workload.MustByName(name).Stream(1)})
		alone[i] = sys.Run()[0].IPC()
	}

	run := func(pol cache.Policy) []float64 {
		sys := cpu.NewSystem(cfg, pol, mix.Streams(1))
		res := sys.Run()
		ipc := make([]float64, len(res))
		for i, r := range res {
			ipc[i] = r.IPC()
		}
		return ipc
	}
	lru := run(policy.NewLRU())
	nu := core.MustNew(core.DefaultConfig(cfg.LLC.Ways))
	nuIPC := run(nu)

	t := metrics.NewTable(
		fmt.Sprintf("%s on a shared %dMB LLC", mix.String(), cfg.LLC.SizeBytes>>20),
		"core", "benchmark", "alone IPC", "LRU speedup", "NUcache speedup")
	for i, name := range mix.Members {
		t.AddRow(fmt.Sprintf("%d", i), name,
			metrics.F3(alone[i]),
			metrics.F2(lru[i]/alone[i]),
			metrics.F2(nuIPC[i]/alone[i]))
	}
	t.Render(os.Stdout)

	wsLRU := metrics.WeightedSpeedup(lru, alone)
	wsNU := metrics.WeightedSpeedup(nuIPC, alone)
	fmt.Printf("\nweighted speedup: LRU %.3f, NUcache %.3f (%s)\n",
		wsLRU, wsNU, metrics.Pct(wsNU/wsLRU))
	fmt.Printf("NUcache retained %d lines, %d DeliWay hits, %d selection epochs\n",
		nu.DeliInsertions, nu.DeliHits, nu.Epochs)
}
