module nucache

go 1.22
