// Benchmarks that regenerate each of the paper's tables and figures at
// reduced scale (one bench per experiment; see DESIGN.md's index). For
// full-scale artifacts run cmd/nucache-bench. Micro-benchmarks for the
// simulator's hot paths are at the bottom.
package nucache_test

import (
	"runtime"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/experiments"
	"nucache/internal/policy"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// benchOpts keeps each experiment iteration around a second.
func benchOpts() experiments.Options {
	return experiments.Options{Budget: 200_000, Seed: 1, MixLimit: 2, BenchLimit: 6}
}

func BenchmarkE1DelinquentPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Delinquency(benchOpts()); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkE2NextUse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.NextUseProfile(benchOpts()); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkE3Potential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Potential(benchOpts()); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkE5SingleCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.SingleCore(benchOpts()); r.Geomean <= 0 {
			b.Fatal("bad geomean")
		}
	}
}

func benchMulticore(b *testing.B, cores int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.MulticoreComparison(cores, benchOpts())
		if r.GeomeanNorm["NUcache"] <= 0 {
			b.Fatal("bad geomean")
		}
	}
}

func BenchmarkE6DualCore(b *testing.B)  { benchMulticore(b, 2) }
func BenchmarkE7QuadCore(b *testing.B)  { benchMulticore(b, 4) }
func BenchmarkE8EightCore(b *testing.B) { benchMulticore(b, 8) }

func benchSweep(b *testing.B, run func(experiments.Options) *experiments.SweepResult) {
	b.Helper()
	o := benchOpts()
	o.MixLimit = 1
	for i := 0; i < b.N; i++ {
		if r := run(o); len(r.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkE9DeliWays(b *testing.B) { benchSweep(b, experiments.DeliWaysSweep) }
func BenchmarkE10PCCount(b *testing.B) { benchSweep(b, experiments.PCCountSweep) }

func BenchmarkE11Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.FairnessComparison(4, benchOpts())
		if len(r.Policies) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkE12Epoch(b *testing.B)    { benchSweep(b, experiments.EpochSweep) }
func BenchmarkE13Sampling(b *testing.B) { benchSweep(b, experiments.SamplingSweep) }

func BenchmarkE14OPT(b *testing.B) {
	// E14 shares the Potential harness (NUcache-vs-OPT columns).
	for i := 0; i < b.N; i++ {
		if r := experiments.Potential(benchOpts()); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// --- Simulator hot-path micro-benchmarks ---

// accessLoop drives n accesses of a synthetic mixed pattern through a
// 1MB LLC-configured cache, reporting ns/access.
func accessLoop(b *testing.B, pol cache.Policy) {
	b.Helper()
	c := cache.New(cache.Config{
		Name: "bench", SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, Cores: 1,
	}, pol)
	req := cache.Request{Kind: trace.Load}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(i)
		req.Addr = (v * 2654435761) % (4 << 20) &^ 63
		req.PC = 0x400000 + (v%9)*4
		c.Access(&req)
	}
}

// The HotAccess* benchmarks are the per-access-path regression gate: CI
// runs `go test -bench=Hot -benchmem` on base and head and fails on >10%
// ns/op or allocation regressions (see .github/workflows/ci.yml and
// cmd/benchgate). Keep the Hot prefix when adding hot-path benchmarks.
func BenchmarkHotAccessLRU(b *testing.B) { accessLoop(b, policy.NewLRU()) }
func BenchmarkHotAccessNUcache(b *testing.B) {
	accessLoop(b, core.MustNew(core.DefaultConfig(16)))
}
func BenchmarkHotAccessUCP(b *testing.B)  { accessLoop(b, policy.NewUCP(1, 16)) }
func BenchmarkHotAccessPIPP(b *testing.B) { accessLoop(b, policy.NewPIPP(1, 16, 1)) }
func BenchmarkHotAccessDRRIP(b *testing.B) {
	accessLoop(b, policy.NewDRRIP(1))
}

// BenchmarkHotReplayStep measures the replay half of the record/replay
// engine: one fully recorded single-core tape, replayed under a fresh
// LRU LLC each iteration. Also reports ns/event (LLC-bound events per
// replay are fixed, so the two metrics move together); the CI bench gate
// watches ns/op like the other Hot benchmarks.
func BenchmarkHotReplayStep(b *testing.B) {
	cfg := cpu.DefaultConfig(1)
	cfg.InstrBudget = 200_000
	tape := cpu.NewTape(cfg, workload.MustByName("ammp-like").Stream(1))
	var events uint64
	run := func() {
		rs := cpu.NewReplaySystem(cfg, policy.NewLRU(), []*cpu.Tape{tape})
		res, err := rs.Run()
		if err != nil {
			b.Fatal(err)
		}
		events = res[0].LLCAccesses
	}
	run() // record the tape outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
	}
}

// gridBenchSetup records an E6-shaped dual-core tape set (the first
// standard 2-core mix at bench budget) and returns builders for the
// standard policy lineup — the workload of the one-pass grid gate.
func gridBenchSetup(b *testing.B) (cpu.Config, []*cpu.Tape, func() []cache.Policy) {
	b.Helper()
	cfg := cpu.DefaultConfig(2)
	cfg.InstrBudget = 200_000
	mix := workload.MixesFor(2)[0]
	tapes := make([]*cpu.Tape, len(mix.Members))
	for i, name := range mix.Members {
		tapes[i] = cpu.NewTape(cfg, workload.MustByName(name).Stream(1+uint64(i)))
	}
	specs := experiments.StandardPolicies()
	pols := func() []cache.Policy {
		out := make([]cache.Policy, len(specs))
		for i, s := range specs {
			out[i] = s.New(cfg.Cores, cfg.LLC.Ways)
		}
		return out
	}
	// Record the tapes outside any timed region.
	if _, err := cpu.NewMultiReplaySystem(cfg, pols(), tapes).Run(); err != nil {
		b.Fatal(err)
	}
	return cfg, tapes, pols
}

// BenchmarkGridReplay replays the whole standard policy grid in a
// single tape walk; BenchmarkGridReplaySerial replays the same grid as
// N independent single-policy walks. Their ratio is the one-pass
// speedup, enforced as a floor by CI (cmd/benchgate -floor); ns/op is
// also gated against regressions like the Hot* benchmarks.
func BenchmarkGridReplay(b *testing.B) {
	cfg, tapes, pols := gridBenchSetup(b)
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		ms := cpu.NewMultiReplaySystem(cfg, pols(), tapes)
		res, err := ms.Run()
		if err != nil {
			b.Fatal(err)
		}
		events = 0
		for _, laneRes := range res {
			for _, r := range laneRes {
				events += r.LLCAccesses
			}
		}
	}
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event-lane")
	}
}

func BenchmarkGridReplaySerial(b *testing.B) {
	cfg, tapes, pols := gridBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pol := range pols() {
			rs := cpu.NewReplaySystem(cfg, pol, tapes)
			if _, err := rs.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGridReplayParallel steps the same grid with lanes on worker
// goroutines (one per available CPU, capped at the lane count). On a
// single-CPU runner RunParallel degrades to the serial round-robin, so
// the CI floor against BenchmarkGridReplay is 1.00 — no regression —
// rather than a speedup demand the runner cannot meet.
func BenchmarkGridReplayParallel(b *testing.B) {
	cfg, tapes, pols := gridBenchSetup(b)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := cpu.NewMultiReplaySystem(cfg, pols(), tapes)
		if _, err := ms.RunParallel(workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotLookupMiss isolates the SWAR packed-tag probe on its
// worst case: every access is a compulsory miss (strictly increasing
// line addresses never repeat), so lookup scans the whole set's partial
// words, finds no candidate, and Access falls through to fill+evict.
func BenchmarkHotLookupMiss(b *testing.B) {
	// 32-way: wide enough that Access probes through the filter rather
	// than the narrow-cache linear scan (see swarMinWays). Random
	// replacement because LRU's packed state caps at 16 ways. The
	// prefill fills every set (high addresses that the timed loop never
	// revisits), so each timed access is a full-set miss.
	c := cache.New(cache.Config{
		Name: "bench", SizeBytes: 1 << 20, Ways: 32, LineBytes: 64, Cores: 1,
	}, policy.NewRandom(1))
	req := cache.Request{Kind: trace.Load, PC: 0x400000}
	sets := c.NumSets()
	for i := 0; i < sets*32; i++ {
		req.Addr = 1<<40 + uint64(i)*64
		c.Access(&req)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Addr = uint64(i) * 64
		c.Access(&req)
	}
}

// BenchmarkHotLookupHit is the complementary probe: the working set
// exactly fills capacity (sequential lines land 32 per set), so after
// warmup every set is full and every access is a hit confirmed through
// the partial-tag filter.
func BenchmarkHotLookupHit(b *testing.B) {
	c := cache.New(cache.Config{
		Name: "bench", SizeBytes: 1 << 20, Ways: 32, LineBytes: 64, Cores: 1,
	}, policy.NewRandom(1))
	req := cache.Request{Kind: trace.Load, PC: 0x400000}
	lines := c.NumSets() * 32
	for i := 0; i < lines; i++ {
		req.Addr = uint64(i) * 64
		c.Access(&req)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Addr = uint64(i%lines) * 64
		c.Access(&req)
	}
}

// BenchmarkSystemThroughput measures end-to-end simulated accesses/sec of
// the full hierarchy on a real workload model.
func BenchmarkSystemThroughput(b *testing.B) {
	bench := workload.MustByName("ammp-like")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := cpu.DefaultConfig(1)
		cfg.InstrBudget = 500_000
		sys := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{bench.Stream(1)})
		sys.Run()
	}
}

// BenchmarkWorkloadGeneration isolates the synthetic generator cost.
func BenchmarkWorkloadGeneration(b *testing.B) {
	s := workload.MustByName("omnetpp-like").Stream(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}

// BenchmarkSelection isolates the cost-benefit PC selection.
func BenchmarkSelection(b *testing.B) {
	cfg := core.MustNew(core.Config{Ways: 16, DeliWays: 6}).Config()
	mon := core.NewMonitor(cfg)
	for pc := uint64(1); pc <= 32; pc++ {
		for i := 0; i < 100; i++ {
			mon.OnMiss(0, pc)
			mon.OnDemotion(0, pc*1000+uint64(i), pc)
			mon.OnAccess(0, pc*1000+uint64(i))
		}
	}
	cands := mon.TopCandidates(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SelectPCs(cands, 6, mon.SampledMisses(), 32, 1)
	}
}

func BenchmarkE16IdealRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.IdealRetention(benchOpts()); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkE17Prefetch(b *testing.B) {
	o := benchOpts()
	o.MixLimit = 1
	for i := 0; i < b.N; i++ {
		if r := experiments.PrefetchStudy(o); r.GainPf <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkE18DRAM(b *testing.B) {
	o := benchOpts()
	o.MixLimit = 1
	for i := 0; i < b.N; i++ {
		if r := experiments.DRAMStudy(o); r.GainDRAM <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkE19Extended(b *testing.B) {
	o := benchOpts()
	o.MixLimit = 1
	for i := 0; i < b.N; i++ {
		if r := experiments.ExtendedComparison(2, o); len(r.Policies) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkE20Adaptive(b *testing.B) {
	o := benchOpts()
	o.MixLimit = 1
	for i := 0; i < b.N; i++ {
		if r := experiments.AdaptiveStudy(o); r.GainAdaptive <= 0 {
			b.Fatal("bad result")
		}
	}
}
