package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"

	"nucache/internal/sim"
)

// beBinary, when set, makes the test binary act as the real
// nucache-advise binary (see cmd/nucache-sim for the pattern).
const beBinary = "NUCACHE_ADVISE_BE_BINARY"

func TestMain(m *testing.M) {
	if os.Getenv(beBinary) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), beBinary+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	return out.String(), errb.String(), err
}

// adviseArgs keeps the smoke runs fast: a 2-core mix at a small budget.
func adviseArgs(extra ...string) []string {
	return append([]string{"-mix", "mix2-01", "-budget", "100000"}, extra...)
}

func TestAdviseBestPartition(t *testing.T) {
	out, errOut, err := runMain(t, adviseArgs("-best")...)
	if err != nil {
		t.Fatalf("nucache-advise failed: %v\nstderr: %s", err, errOut)
	}
	for _, want := range []string{"model   part", "hits exact", "answer"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAdviseVerifyJSON(t *testing.T) {
	out, errOut, err := runMain(t, adviseArgs("-alloc", "10,6", "-verify", "-json")...)
	if err != nil {
		t.Fatalf("nucache-advise failed: %v\nstderr: %s", err, errOut)
	}
	var resp sim.AdviseResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("output is not an AdviseResponse: %v\n%s", err, out)
	}
	if resp.Prediction == nil || !resp.Prediction.HitsExact {
		t.Fatalf("partition prediction not marked exact: %+v", resp.Prediction)
	}
	if resp.Verify == nil {
		t.Fatal("-verify produced no verify report")
	}
	// The exactness contract, end to end: the simulated hit counts match
	// the model's, per core, exactly (flat default machine).
	if !resp.Verify.HitsExact || resp.Verify.MaxHitsAbsErr != 0 {
		t.Errorf("verify contradicts the exactness contract: %+v", resp.Verify)
	}
	if resp.EvalNS <= 0 {
		t.Errorf("EvalNS not recorded: %d", resp.EvalNS)
	}
}

func TestAdviseNUcacheBest(t *testing.T) {
	out, errOut, err := runMain(t, adviseArgs("-policy", "nucache", "-best", "-json")...)
	if err != nil {
		t.Fatalf("nucache-advise failed: %v\nstderr: %s", err, errOut)
	}
	var resp sim.AdviseResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("output is not an AdviseResponse: %v\n%s", err, out)
	}
	if resp.Prediction.Policy != "nucache" {
		t.Errorf("wrong policy in answer: %q", resp.Prediction.Policy)
	}
	if resp.Prediction.Evaluated < 2 {
		t.Errorf("best search evaluated only %d splits", resp.Prediction.Evaluated)
	}
}

func TestAdviseRejectsBadAlloc(t *testing.T) {
	_, errOut, err := runMain(t, adviseArgs("-alloc", "3,2")...)
	if err == nil {
		t.Fatal("under-filled allocation accepted")
	}
	if !strings.Contains(errOut, "alloc") && !strings.Contains(errOut, "ways") {
		t.Errorf("stderr does not explain the allocation error: %q", errOut)
	}
}
