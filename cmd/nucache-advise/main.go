// Command nucache-advise answers capacity what-ifs from the MRC
// profiler's analytical model: profile a workload mix once (one
// policy-independent tape walk), then evaluate any static partition,
// shared-LRU or NUcache DeliWays split in microseconds — or search the
// whole allocation space — without running a simulation per candidate.
//
// Usage:
//
//	nucache-advise -mix mix4-01                       # best static partition
//	nucache-advise -mix mix4-01 -alloc 8,4,2,2        # score one candidate
//	nucache-advise -mix mix2-01 -policy nucache -best # best DeliWays split
//	nucache-advise -bench art-like -policy lru        # shared-LRU baseline
//	nucache-advise -mix mix4-01 -verify               # also simulate, report delta
//	nucache-advise -mix mix4-01 -json                 # machine-readable output
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"nucache/internal/mrc"
	"nucache/internal/sim"
)

func main() {
	var (
		bench    = flag.String("bench", "", "single benchmark workload")
		mixName  = flag.String("mix", "", "workload mix name (e.g. mix4-01)")
		members  = flag.String("members", "", "comma-separated custom mix members")
		budget   = flag.Uint64("budget", 0, "instruction budget per core (0 = 5M)")
		seed     = flag.Uint64("seed", 0, "workload seed (0 = 1)")
		warmup   = flag.Uint64("warmup", 0, "warm-up instructions per core")
		l2       = flag.Bool("l2", false, "add a private 256KB L2 per core")
		dram     = flag.Bool("dram", false, "banked DRAM model instead of flat memory")
		prefetch = flag.Int("prefetch", 0, "next-line prefetch degree")
		polName  = flag.String("policy", "part", "model to evaluate: part|lru|nucache")
		alloc    = flag.String("alloc", "", "comma-separated per-core way split (part)")
		deliWays = flag.Int("deliways", 0, "DeliWays split (nucache; 0 = default 6, -1 = none)")
		best     = flag.Bool("best", false, "search the allocation space for max throughput")
		verify   = flag.Bool("verify", false, "also run the full simulation and report the delta")
		asJSON   = flag.Bool("json", false, "emit the response as JSON")
	)
	flag.Parse()

	req := sim.AdviseRequest{
		ProfileRequest: sim.ProfileRequest{
			Bench: *bench, Mix: *mixName, Budget: *budget, Seed: *seed,
			Warmup: *warmup, L2: *l2, DRAM: *dram, Prefetch: *prefetch,
		},
		Policy: *polName, Best: *best, DeliWays: *deliWays, Verify: *verify,
	}
	if *members != "" {
		req.Members = strings.Split(*members, ",")
	}
	if *alloc != "" {
		for _, part := range strings.Split(*alloc, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatalf("bad -alloc %q: %v", *alloc, err)
			}
			req.Alloc = append(req.Alloc, n)
		}
	}
	req.ProfileRequest = req.ProfileRequest.Normalize()
	if err := req.ProfileRequest.Validate(); err != nil {
		fatalf("%v", err)
	}

	ctx := context.Background()
	profStart := time.Now()
	p, err := sim.ExecuteProfile(ctx, req.ProfileRequest)
	if err != nil {
		fatalf("profile: %v", err)
	}
	profWall := time.Since(profStart)

	evalStart := time.Now()
	pred, err := sim.EvaluateAdvise(p, req)
	if err != nil {
		fatalf("advise: %v", err)
	}
	evalWall := time.Since(evalStart)

	resp := sim.AdviseResponse{
		ProfileKey: req.ProfileRequest.Key(),
		EvalNS:     evalWall.Nanoseconds(),
		Prediction: pred,
	}
	if *verify {
		vreq := req.VerifyRequest(pred)
		res, err := sim.Execute(ctx, vreq)
		if err != nil {
			fatalf("verify: %v", err)
		}
		hitsExact, maxAbs, maxRel, mrErr := sim.CompareVerify(pred, res)
		resp.Verify = &sim.VerifyReport{
			Key: vreq.Key(), Result: res,
			HitsExact: hitsExact, MaxHitsAbsErr: maxAbs,
			MaxIPCRelErr: maxRel, MissRateErr: mrErr,
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp); err != nil {
			fatalf("%v", err)
		}
		return
	}

	fmt.Printf("profile %s (%s, %v)\n", shortKey(resp.ProfileKey), p.Mix, profWall.Round(time.Millisecond))
	fmt.Printf("model   %s", pred.Policy)
	if len(pred.Alloc) > 0 {
		fmt.Printf(" alloc=%v", pred.Alloc)
	}
	if pred.Policy == mrc.PolicyNUcache {
		fmt.Printf(" deliways=%d", pred.DeliWays)
	}
	fmt.Printf(" (%d evaluation(s) in %v)\n", pred.Evaluated, evalWall.Round(time.Microsecond))
	fmt.Printf("answer  miss rate %.4f, throughput %.4f IPC", pred.MissRate, pred.Throughput)
	if pred.HitsExact {
		fmt.Printf(" [hits exact")
		if pred.CyclesExact {
			fmt.Printf(", cycles exact")
		}
		fmt.Printf("]")
	}
	fmt.Println()
	for _, c := range pred.PerCore {
		fmt.Printf("  core %d %-18s ways %5.2f  hits %8d  miss %8d  ipc %.4f\n",
			c.Core, c.Benchmark, c.Ways, c.Hits, c.Misses, c.IPC)
	}
	if v := resp.Verify; v != nil {
		fmt.Printf("verify  hits_exact=%v max_hits_abs_err=%d max_ipc_rel_err=%.4f miss_rate_err=%.4f\n",
			v.HitsExact, v.MaxHitsAbsErr, v.MaxIPCRelErr, v.MissRateErr)
	}
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nucache-advise: "+format+"\n", args...)
	os.Exit(1)
}
