package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// beBinary, when set, makes the test binary act as the real nucache-sim
// binary: TestMain dispatches straight into main(). Smoke tests re-exec
// os.Args[0] with it set, exercising flag parsing, the simulator and the
// output encoders end to end without a separate `go build`.
const beBinary = "NUCACHE_SIM_BE_BINARY"

func TestMain(m *testing.M) {
	if os.Getenv(beBinary) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), beBinary+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	return out.String(), errb.String(), err
}

func TestJSONOutput(t *testing.T) {
	out, errOut, err := runMain(t, "-bench", "ammp-like", "-budget", "150000", "-json")
	if err != nil {
		t.Fatalf("nucache-sim -json failed: %v\nstderr: %s", err, errOut)
	}
	var res struct {
		Policy  string `json:"policy"`
		PerCore []struct {
			IPC          float64 `json:"ipc"`
			Instructions uint64  `json:"instructions"`
		} `json:"per_core"`
		LLC struct {
			Accesses uint64 `json:"accesses"`
			Misses   uint64 `json:"misses"`
		} `json:"llc"`
		NUcache *struct {
			Epochs int `json:"epochs"`
		} `json:"nucache"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if res.Policy != "NUcache" {
		t.Errorf("policy = %q, want NUcache", res.Policy)
	}
	if len(res.PerCore) != 1 || res.PerCore[0].IPC <= 0 || res.PerCore[0].Instructions == 0 {
		t.Errorf("bad per-core stats: %+v", res.PerCore)
	}
	if res.LLC.Accesses == 0 || res.LLC.Misses == 0 {
		t.Errorf("LLC saw no traffic: %+v", res.LLC)
	}
	if res.NUcache == nil {
		t.Error("nucache section missing from JSON output")
	}
}

func TestTextOutput(t *testing.T) {
	out, errOut, err := runMain(t, "-bench", "ammp-like", "-budget", "120000", "-policy", "LRU")
	if err != nil {
		t.Fatalf("nucache-sim failed: %v\nstderr: %s", err, errOut)
	}
	if !strings.Contains(out, "LLC:") || !strings.Contains(out, "ammp-like") {
		t.Errorf("text report missing expected sections:\n%s", out)
	}
}

func TestList(t *testing.T) {
	out, _, err := runMain(t, "-list")
	if err != nil {
		t.Fatalf("nucache-sim -list failed: %v", err)
	}
	for _, want := range []string{"benchmarks", "ammp-like", "mix4-01"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestUnknownBenchExitsNonzero(t *testing.T) {
	_, errOut, err := runMain(t, "-bench", "no-such-bench", "-json")
	var exit *exec.ExitError
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if !errors.As(err, &exit) || exit.ExitCode() == 0 {
		t.Fatalf("want nonzero exit, got %v (stderr %q)", err, errOut)
	}
	if !strings.Contains(errOut, "no-such-bench") {
		t.Errorf("stderr does not name the bad benchmark: %q", errOut)
	}
}
