// Command nucache-sim runs one benchmark or one multiprogrammed mix
// through the simulated cache hierarchy under a chosen LLC policy and
// prints per-core performance plus policy internals, as text tables or
// JSON (-json).
//
// Examples:
//
//	nucache-sim -bench art-like -policy NUcache
//	nucache-sim -mix mix4-01 -policy UCP -budget 2000000
//	nucache-sim -members art-like,swim-like -policy NUcache -deliways 8
//	nucache-sim -mix mix4-01 -json | jq .llc.hit_rate
//	nucache-sim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/memory"
	"nucache/internal/metrics"
	"nucache/internal/sim"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "single benchmark name (see -list)")
		mixName   = flag.String("mix", "", "standard mix name (e.g. mix4-01)")
		members   = flag.String("members", "", "comma-separated benchmark names forming an ad-hoc mix")
		polName   = flag.String("policy", "NUcache", "LLC policy: LRU|NUcache|UCP|PIPP|TADIP|DIP|DRRIP|SRRIP|SHiP|SLRU|Hawkeye|NRU|Random")
		budget    = flag.Uint64("budget", 5_000_000, "instruction budget per core")
		seed      = flag.Uint64("seed", 1, "workload seed")
		deliWays  = flag.Int("deliways", 6, "NUcache DeliWays (of the LLC's 16 ways; 0 disables retention)")
		list      = flag.Bool("list", false, "list benchmarks and mixes, then exit")
		l2        = flag.Bool("l2", false, "add a private 256KB 8-way L2 per core")
		dram      = flag.Bool("dram", false, "use the bank/row-buffer DRAM model instead of flat latency")
		prefetch  = flag.Int("prefetch", 0, "next-line prefetch degree (0 = off)")
		warmup    = flag.Uint64("warmup", 0, "instructions excluded from statistics per core")
		jsonOut   = flag.Bool("json", false, "emit the result as JSON instead of text tables")
		record    = flag.String("record", "", "record each core's access stream to <prefix>.coreN.trc and exit")
		recordN   = flag.Int("recordn", 1_000_000, "accesses per core to record")
		replay    = flag.String("replay", "", "comma-separated trace files to replay (one per core) instead of generators")
	)
	flag.Parse()

	if *list {
		printCatalog()
		return
	}

	// The request's DeliWays encoding reserves 0 for "default"; the flag
	// uses 0 for "no retention".
	dw := *deliWays
	if dw == 0 {
		dw = -1
	}

	if *replay != "" {
		res, err := runReplay(strings.Split(*replay, ","), *polName, *budget, *seed, dw, *l2, *dram, *prefetch, *warmup)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nucache-sim:", err)
			os.Exit(1)
		}
		emit(res, *jsonOut)
		return
	}

	req := sim.Request{
		Bench: *benchName, Mix: *mixName,
		Policy: *polName, Budget: *budget, Seed: *seed, DeliWays: dw,
		L2: *l2, DRAM: *dram, Prefetch: *prefetch, Warmup: *warmup,
	}
	if *members != "" {
		req.Members = strings.Split(*members, ",")
	}

	if *record != "" {
		mix, err := req.ResolveMix()
		if err != nil {
			fmt.Fprintln(os.Stderr, "nucache-sim:", err)
			os.Exit(2)
		}
		if err := recordTraces(*record, mix, mix.Streams(*seed), *recordN); err != nil {
			fmt.Fprintln(os.Stderr, "nucache-sim:", err)
			os.Exit(1)
		}
		return
	}

	res, err := sim.Execute(context.Background(), req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucache-sim:", err)
		os.Exit(2)
	}
	emit(res, *jsonOut)
}

// runReplay drives trace files through a machine built from the same
// flags; generator-backed runs go through sim.Execute instead.
func runReplay(paths []string, polName string, budget, seed uint64, deliWays int, l2, dram bool, prefetch int, warmup uint64) (*sim.Result, error) {
	mix, streams, err := openTraces(paths)
	if err != nil {
		return nil, err
	}
	cfg := cpu.DefaultConfig(mix.Cores())
	cfg.InstrBudget = budget
	cfg.PrefetchDegree = prefetch
	cfg.WarmupInstr = warmup
	if l2 {
		cfg.L2 = cache.Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64}
		cfg.L2Latency = 6
	}
	if dram {
		d := memory.DefaultConfig()
		cfg.DRAM = &d
	}
	if deliWays < 0 {
		deliWays = 0
	}
	pol, err := sim.BuildPolicy(polName, mix.Cores(), cfg.LLC.Ways, deliWays)
	if err != nil {
		return nil, err
	}
	sys := cpu.NewSystem(cfg, pol, streams)
	results := sys.Run()
	return sim.Collect(mix, pol, cfg, budget, seed, results, sys), nil
}

// emit renders a result as JSON or as the classic text report.
func emit(res *sim.Result, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "nucache-sim:", err)
			os.Exit(1)
		}
		return
	}
	mix := workload.Mix{Name: res.Mix, Members: res.Members}
	t := metrics.NewTable(
		fmt.Sprintf("%s under %s (%d cores, %dMB LLC, %dM instr/core)",
			mix.String(), res.Policy, res.Cores, res.LLCBytes>>20, res.Budget/1_000_000),
		"core", "benchmark", "IPC", "L1 miss%", "LLC MPKI", "LLC hits", "LLC misses")
	for _, c := range res.PerCore {
		t.AddRow(
			fmt.Sprintf("%d", c.Core), c.Benchmark,
			metrics.F3(c.IPC),
			metrics.F2(100*c.L1MissRate),
			metrics.F2(c.LLCMPKI),
			fmt.Sprintf("%d", c.LLCHits),
			fmt.Sprintf("%d", c.LLCMisses),
		)
	}
	t.Render(os.Stdout)

	fmt.Printf("\nLLC: %d accesses, %.1f%% hit, %d evictions, %d writebacks\n",
		res.LLC.Accesses, 100*res.LLC.HitRate, res.LLC.Evictions, res.LLC.Writebacks)
	if res.DRAM != nil {
		fmt.Printf("DRAM: %d accesses, %.1f%% row-buffer hits\n", res.DRAM.Accesses, 100*res.DRAM.RowHitRate)
	}
	if res.PrefetchIssued > 0 {
		fmt.Printf("prefetches issued: %d\n", res.PrefetchIssued)
	}
	if nu := res.NUcache; nu != nil {
		fmt.Printf("NUcache: %d epochs, %d DeliWay hits, %d retained of %d demotions\n",
			nu.Epochs, nu.DeliHits, nu.DeliInsertions, nu.Demotions)
		fmt.Printf("last selection: %d of %d candidates chosen, projected lifetime %d, benefit %d\n",
			nu.LastChosen, nu.LastCandidates, nu.LastLifetime, nu.LastBenefit)
		if len(nu.ChosenPCs) > 0 {
			fmt.Println("chosen PCs:", strings.Join(nu.ChosenPCs, " "))
		}
	}
}

func printCatalog() {
	t := metrics.NewTable("benchmarks", "name", "class", "description")
	for _, b := range workload.All() {
		t.AddRow(b.Name, string(b.Class), b.Description)
	}
	t.Render(os.Stdout)
	fmt.Println()
	for _, cores := range []int{2, 4, 8} {
		t := metrics.NewTable(fmt.Sprintf("%d-core mixes", cores), "name", "members")
		for _, m := range workload.MixesFor(cores) {
			t.AddRow(m.Name, strings.Join(m.Members, " "))
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
}

// recordTraces dumps n accesses per core to <prefix>.coreN.trc in the
// compact binary trace format.
func recordTraces(prefix string, mix workload.Mix, streams []trace.Stream, n int) error {
	for i, s := range streams {
		path := fmt.Sprintf("%s.core%d.trc", prefix, i)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		written := 0
		for ; written < n; written++ {
			a, ok := s.Next()
			if !ok {
				break
			}
			if err := w.Write(a); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("recorded %d accesses of %s to %s\n", written, mix.Members[i], path)
	}
	return nil
}

// openTraces builds replay streams from binary trace files.
func openTraces(paths []string) (workload.Mix, []trace.Stream, error) {
	mix := workload.Mix{Name: "replay"}
	var streams []trace.Stream
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return mix, nil, err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return mix, nil, fmt.Errorf("%s: %w", p, err)
		}
		// Files stay open for the run's duration; the process exit
		// releases them (replay runs are one-shot).
		streams = append(streams, r)
		mix.Members = append(mix.Members, p)
	}
	return mix, streams, nil
}
