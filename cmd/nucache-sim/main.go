// Command nucache-sim runs one benchmark or one multiprogrammed mix
// through the simulated cache hierarchy under a chosen LLC policy and
// prints per-core performance plus policy internals.
//
// Examples:
//
//	nucache-sim -bench art-like -policy NUcache
//	nucache-sim -mix mix4-01 -policy UCP -budget 2000000
//	nucache-sim -members art-like,swim-like -policy NUcache -deliways 8
//	nucache-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/memory"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "single benchmark name (see -list)")
		mixName   = flag.String("mix", "", "standard mix name (e.g. mix4-01)")
		members   = flag.String("members", "", "comma-separated benchmark names forming an ad-hoc mix")
		polName   = flag.String("policy", "NUcache", "LLC policy: LRU|NUcache|UCP|PIPP|TADIP|DIP|DRRIP|SRRIP|SHiP|SLRU|Hawkeye|NRU|Random")
		budget    = flag.Uint64("budget", 5_000_000, "instruction budget per core")
		seed      = flag.Uint64("seed", 1, "workload seed")
		deliWays  = flag.Int("deliways", 6, "NUcache DeliWays (of the LLC's 16 ways)")
		list      = flag.Bool("list", false, "list benchmarks and mixes, then exit")
		l2        = flag.Bool("l2", false, "add a private 256KB 8-way L2 per core")
		dram      = flag.Bool("dram", false, "use the bank/row-buffer DRAM model instead of flat latency")
		prefetch  = flag.Int("prefetch", 0, "next-line prefetch degree (0 = off)")
		warmup    = flag.Uint64("warmup", 0, "instructions excluded from statistics per core")
		record    = flag.String("record", "", "record each core's access stream to <prefix>.coreN.trc and exit")
		recordN   = flag.Int("recordn", 1_000_000, "accesses per core to record")
		replay    = flag.String("replay", "", "comma-separated trace files to replay (one per core) instead of generators")
	)
	flag.Parse()

	if *list {
		printCatalog()
		return
	}

	var (
		mix     workload.Mix
		streams []trace.Stream
		err     error
	)
	if *replay != "" {
		mix, streams, err = openTraces(strings.Split(*replay, ","))
	} else {
		mix, err = resolveMix(*benchName, *mixName, *members)
		if err == nil {
			streams = mix.Streams(*seed)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucache-sim:", err)
		os.Exit(2)
	}

	if *record != "" {
		if err := recordTraces(*record, mix, streams, *recordN); err != nil {
			fmt.Fprintln(os.Stderr, "nucache-sim:", err)
			os.Exit(1)
		}
		return
	}

	cfg := cpu.DefaultConfig(mix.Cores())
	cfg.InstrBudget = *budget
	cfg.PrefetchDegree = *prefetch
	cfg.WarmupInstr = *warmup
	if *l2 {
		cfg.L2 = cache.Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64}
		cfg.L2Latency = 6
	}
	if *dram {
		d := memory.DefaultConfig()
		cfg.DRAM = &d
	}
	pol, err := buildPolicy(*polName, mix.Cores(), cfg.LLC.Ways, *deliWays)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucache-sim:", err)
		os.Exit(2)
	}

	sys := cpu.NewSystem(cfg, pol, streams)
	results := sys.Run()

	t := metrics.NewTable(
		fmt.Sprintf("%s under %s (%d cores, %dMB LLC, %dM instr/core)",
			mix.String(), pol.Name(), mix.Cores(), cfg.LLC.SizeBytes>>20, *budget/1_000_000),
		"core", "benchmark", "IPC", "L1 miss%", "LLC MPKI", "LLC hits", "LLC misses")
	for i, r := range results {
		t.AddRow(
			fmt.Sprintf("%d", i), mix.Members[i],
			metrics.F3(r.IPC()),
			metrics.F2(100*r.L1MissRate()),
			metrics.F2(r.LLCMPKI()),
			fmt.Sprintf("%d", r.LLCHits),
			fmt.Sprintf("%d", r.LLCMisses),
		)
	}
	t.Render(os.Stdout)

	llc := sys.LLC().Stats
	fmt.Printf("\nLLC: %d accesses, %.1f%% hit, %d evictions, %d writebacks\n",
		llc.Accesses, 100*llc.HitRate(), llc.Evictions, llc.Writebacks)
	if d := sys.DRAM(); d != nil {
		fmt.Printf("DRAM: %d accesses, %.1f%% row-buffer hits\n", d.Accesses, 100*d.RowHitRate())
	}
	if sys.PrefetchIssued > 0 {
		fmt.Printf("prefetches issued: %d\n", sys.PrefetchIssued)
	}

	if nu, ok := pol.(*core.NUcache); ok {
		fmt.Printf("NUcache: %d epochs, %d DeliWay hits, %d retained of %d demotions\n",
			nu.Epochs, nu.DeliHits, nu.DeliInsertions, nu.Demotions)
		rep := nu.LastReport
		fmt.Printf("last selection: %d of %d candidates chosen, projected lifetime %d, benefit %d\n",
			rep.Chosen, rep.Candidates, rep.Lifetime, rep.Benefit)
		if pcs := nu.ChosenPCs(); len(pcs) > 0 {
			parts := make([]string, len(pcs))
			for i, pc := range pcs {
				parts[i] = fmt.Sprintf("c%d:%#x", pc>>48, pc&(1<<48-1))
			}
			fmt.Println("chosen PCs:", strings.Join(parts, " "))
		}
	}
}

func resolveMix(bench, mixName, members string) (workload.Mix, error) {
	n := 0
	for _, s := range []string{bench, mixName, members} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return workload.Mix{}, fmt.Errorf("specify exactly one of -bench, -mix, -members")
	}
	switch {
	case bench != "":
		if _, ok := workload.ByName(bench); !ok {
			return workload.Mix{}, fmt.Errorf("unknown benchmark %q (try -list)", bench)
		}
		return workload.Mix{Name: "single", Members: []string{bench}}, nil
	case members != "":
		ms := strings.Split(members, ",")
		for _, m := range ms {
			if _, ok := workload.ByName(m); !ok {
				return workload.Mix{}, fmt.Errorf("unknown benchmark %q (try -list)", m)
			}
		}
		return workload.Mix{Name: "custom", Members: ms}, nil
	default:
		for _, cores := range []int{2, 4, 8} {
			for _, m := range workload.MixesFor(cores) {
				if m.Name == mixName {
					return m, nil
				}
			}
		}
		return workload.Mix{}, fmt.Errorf("unknown mix %q (try -list)", mixName)
	}
}

func buildPolicy(name string, cores, ways, deliWays int) (cache.Policy, error) {
	switch strings.ToUpper(name) {
	case "LRU":
		return policy.NewLRU(), nil
	case "NUCACHE":
		cfg := core.DefaultConfig(ways)
		cfg.DeliWays = deliWays
		return core.New(cfg)
	case "UCP":
		return policy.NewUCP(cores, ways), nil
	case "PIPP":
		return policy.NewPIPP(cores, ways, 12345), nil
	case "TADIP":
		return policy.NewTADIP(cores, 12345), nil
	case "DIP":
		return policy.NewDIP(12345), nil
	case "DRRIP":
		return policy.NewDRRIP(12345), nil
	case "SRRIP":
		return policy.NewSRRIP(), nil
	case "NRU":
		return policy.NewNRU(), nil
	case "SHIP":
		return policy.NewSHiP(), nil
	case "HAWKEYE":
		return policy.NewHawkeye(ways), nil
	case "SLRU":
		return policy.NewSLRU(ways / 2), nil
	case "RANDOM":
		return policy.NewRandom(12345), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func printCatalog() {
	t := metrics.NewTable("benchmarks", "name", "class", "description")
	for _, b := range workload.All() {
		t.AddRow(b.Name, string(b.Class), b.Description)
	}
	t.Render(os.Stdout)
	fmt.Println()
	for _, cores := range []int{2, 4, 8} {
		t := metrics.NewTable(fmt.Sprintf("%d-core mixes", cores), "name", "members")
		for _, m := range workload.MixesFor(cores) {
			t.AddRow(m.Name, strings.Join(m.Members, " "))
		}
		t.Render(os.Stdout)
		fmt.Println()
	}
}

// recordTraces dumps n accesses per core to <prefix>.coreN.trc in the
// compact binary trace format.
func recordTraces(prefix string, mix workload.Mix, streams []trace.Stream, n int) error {
	for i, s := range streams {
		path := fmt.Sprintf("%s.core%d.trc", prefix, i)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			f.Close()
			return err
		}
		written := 0
		for ; written < n; written++ {
			a, ok := s.Next()
			if !ok {
				break
			}
			if err := w.Write(a); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("recorded %d accesses of %s to %s\n", written, mix.Members[i], path)
	}
	return nil
}

// openTraces builds replay streams from binary trace files.
func openTraces(paths []string) (workload.Mix, []trace.Stream, error) {
	mix := workload.Mix{Name: "replay"}
	var streams []trace.Stream
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return mix, nil, err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return mix, nil, fmt.Errorf("%s: %w", p, err)
		}
		// Files stay open for the run's duration; the process exit
		// releases them (replay runs are one-shot).
		streams = append(streams, r)
		mix.Members = append(mix.Members, p)
	}
	return mix, streams, nil
}
