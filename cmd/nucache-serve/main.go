// Command nucache-serve runs the simulator as an HTTP/JSON service: a
// bounded worker pool executes simulation jobs across all host cores,
// and a content-addressed result cache (in-memory LRU, optionally
// persisted to disk) serves repeated requests without re-simulating.
//
// Endpoints:
//
//	POST /v1/sim      one simulation, JSON in/out
//	POST /v1/sweep    mixes×policies fan-out, NDJSON progress stream
//	GET  /v1/catalog  benchmarks, standard mixes, policies
//	GET  /healthz     pure liveness
//	GET  /readyz      readiness: queue, cache disk, fabric pool, journal
//	GET  /debug/vars  runtime counters (expvar)
//
// Fault tolerance: every job runs under a deadline (-deadline, or a
// per-request "timeout_ms" override) so a runaway simulation frees its
// worker slot; the admission queue is bounded (-queue) and excess load
// is shed with HTTP 429 + Retry-After instead of piling up goroutines;
// transiently failed jobs are retried with jittered backoff (-retries,
// -retry-backoff); and a corrupt or unwritable -cachedir degrades to
// memory-only serving instead of failing requests.
//
// Distribution: with -distribute the server embeds a fabric coordinator
// and farms sweep cells out to a pool of remote workers; with -worker
// -join <url> the process additionally registers as a pull-based worker
// of another coordinator, heartbeats, and executes leased cells. Both
// degrade gracefully — zero workers behaves exactly like a single node,
// and a dying coordinator just idles this worker's pull loop.
//
// Examples:
//
//	nucache-serve -addr :8080
//	nucache-serve -addr :8080 -deadline 2m -queue 128 -retries 1
//	nucache-serve -addr :8080 -distribute
//	nucache-serve -addr :8081 -worker -join http://head:8080
//	curl -s localhost:8080/v1/sim -d '{"mix":"mix4-01","policy":"NUcache"}'
//	curl -s localhost:8080/v1/sim -d '{"mix":"mix4-01","timeout_ms":5000}'
//	curl -sN localhost:8080/v1/sweep -d '{"cores":4,"budget":1000000}'
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nucache/internal/experiments"
	"nucache/internal/fabric"
	"nucache/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "max concurrent simulations (0 = NumCPU)")
		cacheCap = flag.Int("cache", 4096, "in-memory result-cache entries")
		cacheDir = flag.String("cachedir", "", "persist results as JSON under this directory (empty = memory only)")
		queue    = flag.Int("queue", 0, "admission-queue depth before load is shed with 429 (0 = 8x workers, <0 = unbounded)")
		deadline = flag.Duration("deadline", 5*time.Minute, "default per-job deadline; requests override with timeout_ms (0 = none)")
		retries  = flag.Int("retries", 1, "retries for transiently failed jobs (0 = none)")
		backoff  = flag.Duration("retry-backoff", 100*time.Millisecond, "base jittered backoff between retries")
		timeout  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		noReplay = flag.Bool("noreplay", false, "disable the record/replay fast path (A/B debugging; results are bit-identical either way)")

		distribute = flag.Bool("distribute", false, "embed a fabric coordinator: sweep cells are offered to joined workers")
		worker     = flag.Bool("worker", false, "also join a coordinator (-join) as a pull-based fabric worker")
		join       = flag.String("join", "", "coordinator base URL to join as a worker (e.g. http://head:8080)")
		lease      = flag.Duration("lease", 30*time.Second, "coordinator lease TTL per cell (-distribute)")
		heartbeat  = flag.Duration("heartbeat", 3*time.Second, "fabric heartbeat interval (-distribute)")
	)
	flag.Parse()
	sim.SetReplayDisabled(*noReplay)

	if *worker && *join == "" {
		fmt.Fprintln(os.Stderr, "nucache-serve: -worker requires -join <coordinator URL>")
		os.Exit(2)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	nworkers := *workers
	if nworkers <= 0 {
		nworkers = runtime.NumCPU()
	}
	depth := *queue
	switch {
	case depth == 0:
		depth = 8 * nworkers
	case depth < 0:
		depth = 0 // unbounded
	}
	cache := sim.NewCache(*cacheCap, *cacheDir)
	sched := sim.NewSchedulerWith(sim.SchedulerConfig{
		Workers:        nworkers,
		Cache:          cache,
		QueueDepth:     depth,
		DefaultTimeout: *deadline,
		Retry:          sim.RetryPolicy{MaxAttempts: 1 + *retries, Backoff: *backoff},
	})

	opts := []sim.ServerOption{sim.WithLogger(logger)}
	var coord *fabric.Coordinator
	if *distribute {
		// Verified remote results land directly in the serving cache, so
		// a sweep cell computed by a worker is a cache hit for everyone.
		coord = fabric.NewCoordinator(fabric.Config{
			LeaseTTL:  *lease,
			Heartbeat: *heartbeat,
			OnResult:  cache.PutEncoded,
			Logger:    log.New(os.Stderr, "", log.LstdFlags),
		})
		defer coord.Close()
		opts = append(opts, sim.WithCoordinator(coord))
	}
	opts = append(opts, sim.WithReadyInfo(func(ready map[string]any) {
		role := "standalone"
		switch {
		case *distribute && *worker:
			role = "coordinator+worker"
		case *distribute:
			role = "coordinator"
		case *worker:
			role = "worker"
		}
		ready["role"] = role
		if *worker {
			ready["joined"] = *join
		}
	}))
	srv := &http.Server{
		Handler:           sim.NewServer(sched, opts...).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *worker {
		// Join the remote coordinator as a pull-based worker alongside
		// serving. Lost coordinators (or quarantine) end the loop — the
		// HTTP service keeps running either way.
		w := fabric.NewWorker(*join, fabric.WorkerConfig{
			Name: "nucache-serve",
			Executors: map[string]fabric.Executor{
				sim.CellKindSim:          sim.SimExecutor(),
				experiments.CellKindGrid: experiments.GridExecutor(),
			},
			Logger: log.New(os.Stderr, "", log.LstdFlags),
		})
		go func() {
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "nucache-serve: worker loop ended:", err)
			}
		}()
	}

	// Listen before announcing so ":0" (ephemeral port, used by the smoke
	// tests) reports the actual bound address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucache-serve:", err)
		os.Exit(1)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "nucache-serve: listening on %s (%d workers, queue %d, deadline %v, cache %d entries)\n",
		ln.Addr(), sched.Workers(), sched.QueueCap(), *deadline, *cacheCap)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "nucache-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "nucache-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "nucache-serve: shutdown:", err)
		os.Exit(1)
	}
}
