// Command nucache-serve runs the simulator as an HTTP/JSON service: a
// bounded worker pool executes simulation jobs across all host cores,
// and a content-addressed result cache (in-memory LRU, optionally
// persisted to disk) serves repeated requests without re-simulating.
//
// Endpoints:
//
//	POST /v1/sim      one simulation, JSON in/out
//	POST /v1/sweep    mixes×policies fan-out, NDJSON progress stream
//	GET  /v1/catalog  benchmarks, standard mixes, policies
//	GET  /healthz     liveness + degradation state
//	GET  /debug/vars  runtime counters (expvar)
//
// Fault tolerance: every job runs under a deadline (-deadline, or a
// per-request "timeout_ms" override) so a runaway simulation frees its
// worker slot; the admission queue is bounded (-queue) and excess load
// is shed with HTTP 429 + Retry-After instead of piling up goroutines;
// transiently failed jobs are retried with jittered backoff (-retries,
// -retry-backoff); and a corrupt or unwritable -cachedir degrades to
// memory-only serving instead of failing requests.
//
// Examples:
//
//	nucache-serve -addr :8080
//	nucache-serve -addr :8080 -deadline 2m -queue 128 -retries 1
//	curl -s localhost:8080/v1/sim -d '{"mix":"mix4-01","policy":"NUcache"}'
//	curl -s localhost:8080/v1/sim -d '{"mix":"mix4-01","timeout_ms":5000}'
//	curl -sN localhost:8080/v1/sweep -d '{"cores":4,"budget":1000000}'
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nucache/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "max concurrent simulations (0 = NumCPU)")
		cacheCap = flag.Int("cache", 4096, "in-memory result-cache entries")
		cacheDir = flag.String("cachedir", "", "persist results as JSON under this directory (empty = memory only)")
		queue    = flag.Int("queue", 0, "admission-queue depth before load is shed with 429 (0 = 8x workers, <0 = unbounded)")
		deadline = flag.Duration("deadline", 5*time.Minute, "default per-job deadline; requests override with timeout_ms (0 = none)")
		retries  = flag.Int("retries", 1, "retries for transiently failed jobs (0 = none)")
		backoff  = flag.Duration("retry-backoff", 100*time.Millisecond, "base jittered backoff between retries")
		timeout  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		noReplay = flag.Bool("noreplay", false, "disable the record/replay fast path (A/B debugging; results are bit-identical either way)")
	)
	flag.Parse()
	sim.SetReplayDisabled(*noReplay)

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	nworkers := *workers
	if nworkers <= 0 {
		nworkers = runtime.NumCPU()
	}
	depth := *queue
	switch {
	case depth == 0:
		depth = 8 * nworkers
	case depth < 0:
		depth = 0 // unbounded
	}
	sched := sim.NewSchedulerWith(sim.SchedulerConfig{
		Workers:        nworkers,
		Cache:          sim.NewCache(*cacheCap, *cacheDir),
		QueueDepth:     depth,
		DefaultTimeout: *deadline,
		Retry:          sim.RetryPolicy{MaxAttempts: 1 + *retries, Backoff: *backoff},
	})
	srv := &http.Server{
		Handler:           sim.NewServer(sched, sim.WithLogger(logger)).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before announcing so ":0" (ephemeral port, used by the smoke
	// tests) reports the actual bound address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucache-serve:", err)
		os.Exit(1)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "nucache-serve: listening on %s (%d workers, queue %d, deadline %v, cache %d entries)\n",
		ln.Addr(), sched.Workers(), sched.QueueCap(), *deadline, *cacheCap)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "nucache-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "nucache-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "nucache-serve: shutdown:", err)
		os.Exit(1)
	}
}
