// Command nucache-serve runs the simulator as an HTTP/JSON service: a
// bounded worker pool executes simulation jobs across all host cores,
// and a content-addressed result cache (in-memory LRU, optionally
// persisted to disk) serves repeated requests without re-simulating.
//
// Endpoints:
//
//	POST /v1/sim      one simulation, JSON in/out
//	POST /v1/sweep    mixes×policies fan-out, NDJSON progress stream
//	GET  /v1/catalog  benchmarks, standard mixes, policies
//	GET  /healthz     liveness
//	GET  /debug/vars  runtime counters (expvar)
//
// Examples:
//
//	nucache-serve -addr :8080
//	curl -s localhost:8080/v1/sim -d '{"mix":"mix4-01","policy":"NUcache"}'
//	curl -sN localhost:8080/v1/sweep -d '{"cores":4,"budget":1000000}'
//
// The process drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nucache/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "max concurrent simulations (0 = NumCPU)")
		cacheCap = flag.Int("cache", 4096, "in-memory result-cache entries")
		cacheDir = flag.String("cachedir", "", "persist results as JSON under this directory (empty = memory only)")
		timeout  = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	sched := sim.NewScheduler(*workers, sim.NewCache(*cacheCap, *cacheDir))
	srv := &http.Server{
		Handler:           sim.NewServer(sched).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before announcing so ":0" (ephemeral port, used by the smoke
	// tests) reports the actual bound address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucache-serve:", err)
		os.Exit(1)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "nucache-serve: listening on %s (%d workers, cache %d entries)\n",
		ln.Addr(), sched.Workers(), *cacheCap)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "nucache-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "nucache-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "nucache-serve: shutdown:", err)
		os.Exit(1)
	}
}
