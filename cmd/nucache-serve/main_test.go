package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// beBinary, when set, makes the test binary act as the real nucache-serve
// binary (see cmd/nucache-sim for the pattern).
const beBinary = "NUCACHE_SERVE_BE_BINARY"

func TestMain(m *testing.M) {
	if os.Getenv(beBinary) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startServer launches the binary on an ephemeral port and returns its
// base URL once the listen line appears on stderr.
func startServer(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), beBinary+"=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	lines := bufio.NewScanner(stderr)
	addrc := make(chan string, 1)
	go func() {
		defer io.Copy(io.Discard, stderr) // keep draining after the match
		for lines.Scan() {
			line := lines.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				addrc <- fields[0]
				return
			}
		}
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok {
			t.Fatal("server exited before announcing its address")
		}
		return cmd, "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for listen line")
	}
	panic("unreachable")
}

func TestHealthzRoundTrip(t *testing.T) {
	cmd, base := startServer(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if health.Status != "ok" || health.Workers <= 0 {
		t.Fatalf("healthz = %+v, want status ok and workers > 0", health)
	}

	// Graceful shutdown: SIGINT must drain and exit 0.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server did not exit cleanly on SIGINT: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit within drain timeout")
	}
}

func TestSimEndpoint(t *testing.T) {
	_, base := startServer(t)
	body := strings.NewReader(`{"bench":"ammp-like","budget":100000}`)
	resp, err := http.Post(base+"/v1/sim", "application/json", body)
	if err != nil {
		t.Fatalf("POST /v1/sim: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim status = %d, body %s", resp.StatusCode, raw)
	}
	var env struct {
		Key    string `json:"key"`
		Result struct {
			Policy string `json:"policy"`
			LLC    struct {
				Accesses uint64 `json:"accesses"`
			} `json:"llc"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("sim response is not JSON: %v\n%s", err, raw)
	}
	if len(env.Key) != 64 || env.Result.Policy != "NUcache" || env.Result.LLC.Accesses == 0 {
		t.Fatalf("unexpected sim response: %s", raw)
	}

	// The run above went through the record/replay fast path: the tape
	// counters must be live on /debug/vars (operators watch these to
	// confirm replay is on and to size the tape budget).
	dv, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer dv.Body.Close()
	var vars struct {
		Recorded int64 `json:"nucache_traces_recorded"`
		Replayed int64 `json:"nucache_traces_replayed"`
		Bytes    int64 `json:"nucache_trace_bytes"`
		// Integrity counters are pointers: they must be *published* (nil
		// means the var is missing entirely), but a healthy server keeps
		// them at zero.
		ChecksumFails   *int64 `json:"nucache_cache_checksum_fails"`
		TapeChecksums   *int64 `json:"nucache_tape_checksum_fails"`
		FailpointsFired *int64 `json:"nucache_failpoints_fired"`
	}
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatalf("expvars: %v", err)
	}
	if vars.Recorded < 1 || vars.Replayed < 1 || vars.Bytes <= 0 {
		t.Fatalf("trace expvars not live after a sim: recorded=%d replayed=%d bytes=%d",
			vars.Recorded, vars.Replayed, vars.Bytes)
	}
	if vars.ChecksumFails == nil || vars.TapeChecksums == nil || vars.FailpointsFired == nil {
		t.Fatalf("integrity expvars missing from /debug/vars: cache=%v tape=%v failpoints=%v",
			vars.ChecksumFails, vars.TapeChecksums, vars.FailpointsFired)
	}
	if *vars.ChecksumFails != 0 || *vars.TapeChecksums != 0 || *vars.FailpointsFired != 0 {
		t.Fatalf("integrity counters moved on a healthy server: cache=%d tape=%d failpoints=%d",
			*vars.ChecksumFails, *vars.TapeChecksums, *vars.FailpointsFired)
	}
}
