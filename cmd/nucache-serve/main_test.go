package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// beBinary, when set, makes the test binary act as the real nucache-serve
// binary (see cmd/nucache-sim for the pattern).
const beBinary = "NUCACHE_SERVE_BE_BINARY"

func TestMain(m *testing.M) {
	if os.Getenv(beBinary) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startServer launches the binary on an ephemeral port and returns its
// base URL once the listen line appears on stderr.
func startServer(t *testing.T, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(os.Environ(), beBinary+"=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	lines := bufio.NewScanner(stderr)
	addrc := make(chan string, 1)
	go func() {
		defer io.Copy(io.Discard, stderr) // keep draining after the match
		for lines.Scan() {
			line := lines.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				addrc <- fields[0]
				return
			}
		}
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok {
			t.Fatal("server exited before announcing its address")
		}
		return cmd, "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for listen line")
	}
	panic("unreachable")
}

func TestHealthzRoundTrip(t *testing.T) {
	cmd, base := startServer(t)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if health.Status != "ok" || health.Workers <= 0 {
		t.Fatalf("healthz = %+v, want status ok and workers > 0", health)
	}

	// Graceful shutdown: SIGINT must drain and exit 0.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server did not exit cleanly on SIGINT: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit within drain timeout")
	}
}

func TestSimEndpoint(t *testing.T) {
	_, base := startServer(t)
	body := strings.NewReader(`{"bench":"ammp-like","budget":100000}`)
	resp, err := http.Post(base+"/v1/sim", "application/json", body)
	if err != nil {
		t.Fatalf("POST /v1/sim: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sim status = %d, body %s", resp.StatusCode, raw)
	}
	var env struct {
		Key    string `json:"key"`
		Result struct {
			Policy string `json:"policy"`
			LLC    struct {
				Accesses uint64 `json:"accesses"`
			} `json:"llc"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("sim response is not JSON: %v\n%s", err, raw)
	}
	if len(env.Key) != 64 || env.Result.Policy != "NUcache" || env.Result.LLC.Accesses == 0 {
		t.Fatalf("unexpected sim response: %s", raw)
	}

	// The run above went through the record/replay fast path: the tape
	// counters must be live on /debug/vars (operators watch these to
	// confirm replay is on and to size the tape budget).
	dv, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer dv.Body.Close()
	var vars struct {
		Recorded int64 `json:"nucache_traces_recorded"`
		Replayed int64 `json:"nucache_traces_replayed"`
		Bytes    int64 `json:"nucache_trace_bytes"`
		// Integrity counters are pointers: they must be *published* (nil
		// means the var is missing entirely), but a healthy server keeps
		// them at zero.
		ChecksumFails   *int64 `json:"nucache_cache_checksum_fails"`
		TapeChecksums   *int64 `json:"nucache_tape_checksum_fails"`
		FailpointsFired *int64 `json:"nucache_failpoints_fired"`
		// One-pass grid counters: published from process start; a
		// single-policy /v1/sim leaves them at zero.
		MultiRuns  *int64 `json:"nucache_multireplay_runs"`
		MultiLanes *int64 `json:"nucache_multireplay_lanes"`
		// Parallel lane stepping rides inside the multi path, so a
		// single-policy /v1/sim leaves these at zero too.
		ParallelRuns *int64 `json:"nucache_multireplay_parallel_runs"`
		LaneWorkers  *int64 `json:"nucache_multireplay_lane_workers"`
	}
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatalf("expvars: %v", err)
	}
	if vars.Recorded < 1 || vars.Replayed < 1 || vars.Bytes <= 0 {
		t.Fatalf("trace expvars not live after a sim: recorded=%d replayed=%d bytes=%d",
			vars.Recorded, vars.Replayed, vars.Bytes)
	}
	if vars.ChecksumFails == nil || vars.TapeChecksums == nil || vars.FailpointsFired == nil {
		t.Fatalf("integrity expvars missing from /debug/vars: cache=%v tape=%v failpoints=%v",
			vars.ChecksumFails, vars.TapeChecksums, vars.FailpointsFired)
	}
	if vars.MultiRuns == nil || vars.MultiLanes == nil {
		t.Fatalf("multireplay expvars missing from /debug/vars: runs=%v lanes=%v",
			vars.MultiRuns, vars.MultiLanes)
	}
	if vars.ParallelRuns == nil || vars.LaneWorkers == nil {
		t.Fatalf("parallel-lane expvars missing from /debug/vars: runs=%v workers=%v",
			vars.ParallelRuns, vars.LaneWorkers)
	}
	if *vars.ParallelRuns != 0 || *vars.LaneWorkers != 0 {
		t.Fatalf("parallel-lane counters moved on single-policy sims: runs=%d workers=%d",
			*vars.ParallelRuns, *vars.LaneWorkers)
	}
	if *vars.ChecksumFails != 0 || *vars.TapeChecksums != 0 || *vars.FailpointsFired != 0 {
		t.Fatalf("integrity counters moved on a healthy server: cache=%d tape=%d failpoints=%d",
			*vars.ChecksumFails, *vars.TapeChecksums, *vars.FailpointsFired)
	}
}

// serveVars is the expvar slice the advisor tests watch.
type serveVars struct {
	JobsQueued       int64    `json:"nucache_jobs_queued"`
	ProfilesBuilt    int64    `json:"nucache_mrc_profiles_built"`
	ProfileCacheHits int64    `json:"nucache_mrc_profile_cache_hits"`
	AdviseRequests   int64    `json:"nucache_advise_requests"`
	VerifyMaxErr     *float64 `json:"nucache_advise_verify_max_err"`
}

func getServeVars(t *testing.T, base string) serveVars {
	t.Helper()
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	var v serveVars
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("expvars: %v", err)
	}
	return v
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// TestProfileAdviseFlow drives the capacity-advisor API end to end:
// profile once, answer what-ifs from the cached artifact with zero jobs
// queued, then verify one answer against the full simulation.
func TestProfileAdviseFlow(t *testing.T) {
	_, base := startServer(t)
	const spec = `"mix":"mix2-01","budget":100000`

	// 1. Profiling pass: builds and caches the artifact.
	code, raw := postJSON(t, base+"/v1/profile", `{`+spec+`}`)
	if code != http.StatusOK {
		t.Fatalf("profile status = %d, body %s", code, raw)
	}
	var prof struct {
		Key     string `json:"key"`
		Profile struct {
			Cores int `json:"cores"`
			Ways  int `json:"ways"`
		} `json:"profile"`
	}
	if err := json.Unmarshal(raw, &prof); err != nil {
		t.Fatalf("profile response: %v\n%s", err, raw)
	}
	if len(prof.Key) != 64 || prof.Profile.Cores != 2 || prof.Profile.Ways == 0 {
		t.Fatalf("unexpected profile response: %s", raw)
	}
	v1 := getServeVars(t, base)
	if v1.ProfilesBuilt != 1 {
		t.Fatalf("mrc_profiles_built = %d after one profiling pass", v1.ProfilesBuilt)
	}

	// 2. A what-if against the cached profile answers WITHOUT queueing
	// any job: the advisor's whole point is no simulation on this path.
	code, raw = postJSON(t, base+"/v1/advise", `{`+spec+`,"policy":"part","best":true}`)
	if code != http.StatusOK {
		t.Fatalf("advise status = %d, body %s", code, raw)
	}
	var adv struct {
		ProfileKey    string `json:"profile_key"`
		ProfileCached bool   `json:"profile_cached"`
		EvalNS        int64  `json:"eval_ns"`
		Prediction    struct {
			HitsExact bool  `json:"hits_exact"`
			Alloc     []int `json:"alloc"`
			Evaluated int   `json:"evaluated"`
		} `json:"prediction"`
	}
	if err := json.Unmarshal(raw, &adv); err != nil {
		t.Fatalf("advise response: %v\n%s", err, raw)
	}
	if adv.ProfileKey != prof.Key || !adv.ProfileCached {
		t.Fatalf("advise did not reuse the cached profile: %s", raw)
	}
	if !adv.Prediction.HitsExact || adv.Prediction.Evaluated < 2 || adv.EvalNS <= 0 {
		t.Fatalf("unexpected best-partition answer: %s", raw)
	}
	v2 := getServeVars(t, base)
	if v2.JobsQueued != v1.JobsQueued {
		t.Fatalf("cached advise queued a job: jobs_queued %d -> %d", v1.JobsQueued, v2.JobsQueued)
	}
	if v2.AdviseRequests != 1 || v2.ProfileCacheHits < 1 {
		t.Fatalf("advisor expvars wrong: advise_requests=%d cache_hits=%d",
			v2.AdviseRequests, v2.ProfileCacheHits)
	}

	// 3. Verified what-if: the simulation must confirm the exact
	// contract on the flat default machine, and the delta gauge stays
	// published (and zero).
	code, raw = postJSON(t, base+"/v1/advise", `{`+spec+`,"policy":"part","alloc":[10,6],"verify":true}`)
	if code != http.StatusOK {
		t.Fatalf("verified advise status = %d, body %s", code, raw)
	}
	var ver struct {
		Verify struct {
			HitsExact     bool    `json:"hits_exact"`
			MaxHitsAbsErr uint64  `json:"max_hits_abs_err"`
			MaxIPCRelErr  float64 `json:"max_ipc_rel_err"`
		} `json:"verify"`
	}
	if err := json.Unmarshal(raw, &ver); err != nil {
		t.Fatalf("verified advise response: %v\n%s", err, raw)
	}
	if !ver.Verify.HitsExact || ver.Verify.MaxHitsAbsErr != 0 || ver.Verify.MaxIPCRelErr != 0 {
		t.Fatalf("verify contradicts the exactness contract: %s", raw)
	}
	v3 := getServeVars(t, base)
	if v3.JobsQueued <= v2.JobsQueued {
		t.Fatal("verified advise did not queue the verification simulation")
	}
	if v3.VerifyMaxErr == nil || *v3.VerifyMaxErr != 0 {
		t.Fatalf("advise_verify_max_err = %v, want published 0", v3.VerifyMaxErr)
	}
	if v3.AdviseRequests != 2 {
		t.Fatalf("advise_requests = %d after two advises", v3.AdviseRequests)
	}

	// 4. The catalog advertises the advisor endpoints.
	resp, err := http.Get(base + "/v1/catalog")
	if err != nil {
		t.Fatalf("GET /v1/catalog: %v", err)
	}
	defer resp.Body.Close()
	var cat struct {
		Endpoints []string `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatalf("catalog: %v", err)
	}
	have := map[string]bool{}
	for _, e := range cat.Endpoints {
		have[e] = true
	}
	if !have["POST /v1/profile"] || !have["POST /v1/advise"] {
		t.Fatalf("catalog does not advertise the advisor endpoints: %v", cat.Endpoints)
	}
}
