package main

// Smoke tests for the distribution surface of nucache-serve: the
// /readyz readiness probe, the fabric expvars, and a real
// coordinator+worker pair of server processes completing a sweep.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// readyz is the /readyz envelope slice these tests watch.
type readyz struct {
	Status    string `json:"status"`
	Workers   int    `json:"workers"`
	QueueCap  int    `json:"queue_cap"`
	Role      string `json:"role"`
	Joined    string `json:"joined"`
	CacheDisk string `json:"cache_disk"`
	Fabric    *struct {
		Cells       int `json:"cells"`
		RemoteDone  int `json:"remote_done"`
		Workers     int `json:"workers"`
		LiveWorkers int `json:"live_workers"`
		Quarantined int `json:"quarantined"`
	} `json:"fabric"`
}

func getReadyz(t *testing.T, base string) readyz {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz status = %d, want 200", resp.StatusCode)
	}
	var r readyz
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return r
}

// TestReadyzStandalone: a plain server is ready, reports its role, and
// carries no fabric section.
func TestReadyzStandalone(t *testing.T) {
	_, base := startServer(t)
	r := getReadyz(t, base)
	if r.Status != "ok" || r.Workers <= 0 || r.QueueCap <= 0 {
		t.Fatalf("readyz = %+v, want ok with workers and a bounded queue", r)
	}
	if r.Role != "standalone" {
		t.Fatalf("role = %q, want standalone", r.Role)
	}
	if r.Fabric != nil {
		t.Fatalf("standalone readyz carries a fabric section: %+v", r.Fabric)
	}
}

// TestCoordinatorWorkerSweep wires two real server processes into a
// fabric — one -distribute coordinator, one -worker joined to it — and
// drives a sweep through the coordinator. The pool must show the
// worker as live, the sweep must complete, and the fabric expvars must
// be published on /debug/vars.
func TestCoordinatorWorkerSweep(t *testing.T) {
	_, coordBase := startServer(t, "-distribute", "-heartbeat", "100ms")

	r := getReadyz(t, coordBase)
	if r.Role != "coordinator" || r.Fabric == nil {
		t.Fatalf("coordinator readyz = %+v, want role coordinator with a fabric section", r)
	}

	_, workerBase := startServer(t, "-worker", "-join", coordBase)
	wr := getReadyz(t, workerBase)
	if wr.Role != "worker" || wr.Joined != coordBase {
		t.Fatalf("worker readyz = %+v, want role worker joined to %s", wr, coordBase)
	}

	// The worker registers on startup; wait for the pool to see it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if r = getReadyz(t, coordBase); r.Fabric.LiveWorkers >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never joined the pool: readyz = %+v", r)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A sweep through the coordinator offers its cells to the pool and
	// must stream every row regardless of who computes them.
	resp, err := http.Post(coordBase+"/v1/sweep", "application/json",
		strings.NewReader(`{"cores":2,"policies":["LRU","NUcache"],"budget":60000}`))
	if err != nil {
		t.Fatalf("POST /v1/sweep: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, raw)
	}
	rows := 0
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" {
			continue
		}
		rows++
		if !json.Valid([]byte(line)) {
			t.Fatalf("sweep stream line is not JSON: %s", line)
		}
	}
	if rows == 0 {
		t.Fatalf("sweep streamed no rows:\n%s", raw)
	}

	if r = getReadyz(t, coordBase); r.Fabric.Cells == 0 {
		t.Fatalf("sweep offered no cells to the fabric: readyz = %+v", r)
	}

	// The fabric counters ride on /debug/vars like every other
	// subsystem: published from process start (pointers non-nil), and
	// the join counter has moved.
	dv, err := http.Get(coordBase + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer dv.Body.Close()
	var vars struct {
		Joined      *int64 `json:"nucache_fabric_workers_joined"`
		Granted     *int64 `json:"nucache_fabric_leases_granted"`
		Expired     *int64 `json:"nucache_fabric_leases_expired"`
		Reassigned  *int64 `json:"nucache_fabric_cells_reassigned"`
		Quarantined *int64 `json:"nucache_fabric_workers_quarantined"`
		Rejected    *int64 `json:"nucache_fabric_results_rejected"`
		Accepted    *int64 `json:"nucache_fabric_results_accepted"`
	}
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatalf("expvars: %v", err)
	}
	for name, p := range map[string]*int64{
		"workers_joined":      vars.Joined,
		"leases_granted":      vars.Granted,
		"leases_expired":      vars.Expired,
		"cells_reassigned":    vars.Reassigned,
		"workers_quarantined": vars.Quarantined,
		"results_rejected":    vars.Rejected,
		"results_accepted":    vars.Accepted,
	} {
		if p == nil {
			t.Errorf("nucache_fabric_%s missing from /debug/vars", name)
		}
	}
	if vars.Joined != nil && *vars.Joined < 1 {
		t.Errorf("fabric_workers_joined = %d after a worker joined", *vars.Joined)
	}
	if vars.Quarantined != nil && *vars.Quarantined != 0 {
		t.Errorf("healthy pool shows quarantined workers: %d", *vars.Quarantined)
	}
}

// TestWorkerRequiresJoin: -worker without -join is a usage error.
func TestWorkerRequiresJoin(t *testing.T) {
	cmd, stderr := runServeRaw(t, "-worker")
	if err := cmd.Wait(); err == nil {
		t.Fatal("-worker without -join was accepted")
	}
	if !strings.Contains(stderr(), "-worker requires -join") {
		t.Errorf("stderr does not explain the usage error: %q", stderr())
	}
}

// runServeRaw starts the binary without waiting for a listen line, for
// flag-validation tests that expect an immediate exit.
func runServeRaw(t *testing.T, args ...string) (cmd *exec.Cmd, stderr func() string) {
	t.Helper()
	c := exec.Command(os.Args[0], args...)
	c.Env = append(os.Environ(), beBinary+"=1")
	var errb strings.Builder
	c.Stderr = &errb
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Process.Kill(); c.Wait() })
	return c, func() string { return errb.String() }
}
