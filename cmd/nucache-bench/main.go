// Command nucache-bench regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
//
// Usage:
//
//	nucache-bench                 # run everything (several minutes)
//	nucache-bench -exp E6,E7      # only selected experiments
//	nucache-bench -budget 2000000 # shorter runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nucache/internal/experiments"
	"nucache/internal/metrics"
	"nucache/internal/sim"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment IDs (E1..E20) or 'all'")
		budget   = flag.Uint64("budget", 5_000_000, "instruction budget per core")
		seed     = flag.Uint64("seed", 1, "workload generator seed")
		mixLimit = flag.Int("mixlimit", 0, "truncate mix lists (0 = all)")
		csvDir   = flag.String("csv", "", "also save each table as CSV into this directory")
		jsonDir  = flag.String("jsondir", "", "also save each table as JSON into this directory")
		noMulti  = flag.Bool("nomultireplay", false, "replay policy-grid rows one cell at a time instead of one-pass multi-policy tape walks (A/B debugging; results are bit-identical either way)")
		lanePar  = flag.Bool("laneparallel", true, "step one-pass grid lanes on idle scheduler workers; false forces the serial round-robin (A/B debugging; results are bit-identical either way)")
	)
	flag.Parse()
	sim.SetMultiReplayDisabled(*noMulti)
	sim.SetLaneParallelDisabled(!*lanePar)

	o := experiments.Options{Budget: *budget, Seed: *seed, MixLimit: *mixLimit,
		DisableMultiReplay: *noMulti, DisableLaneParallel: !*lanePar}
	want := map[string]bool{}
	for _, e := range strings.Split(strings.ToUpper(*exps), ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["ALL"]
	sel := func(id string) bool { return all || want[id] }

	type job struct {
		id  string
		run func() *metrics.Table
	}
	jobs := []job{
		{"E4", func() *metrics.Table { return experiments.ConfigTable(o) }},
		{"E1", func() *metrics.Table { return experiments.Delinquency(o).Table() }},
		{"E2", func() *metrics.Table { return experiments.NextUseProfile(o).Table() }},
		{"E3", func() *metrics.Table { return experiments.Potential(o).Table() }},
		{"E5", func() *metrics.Table { return experiments.SingleCore(o).Table() }},
		{"E6", func() *metrics.Table { return experiments.MulticoreComparison(2, o).Table() }},
		{"E7", func() *metrics.Table { return experiments.MulticoreComparison(4, o).Table() }},
		{"E8", func() *metrics.Table { return experiments.MulticoreComparison(8, o).Table() }},
		{"E9", func() *metrics.Table { return experiments.DeliWaysSweep(o).Table() }},
		{"E10", func() *metrics.Table { return experiments.PCCountSweep(o).Table() }},
		{"E11", func() *metrics.Table { return experiments.FairnessComparison(4, o).Table() }},
		{"E12", func() *metrics.Table { return experiments.EpochSweep(o).Table() }},
		{"E13", func() *metrics.Table { return experiments.SamplingSweep(o).Table() }},
		{"E14", func() *metrics.Table { return experiments.Potential(o).Table() }},
		{"E15", func() *metrics.Table { return experiments.OverheadTable(o) }},
		{"E16", func() *metrics.Table { return experiments.IdealRetention(o).Table() }},
		{"E17", func() *metrics.Table { return experiments.PrefetchStudy(o).Table() }},
		{"E18", func() *metrics.Table { return experiments.DRAMStudy(o).Table() }},
		{"E19", func() *metrics.Table { return experiments.ExtendedComparison(4, o).Table() }},
		{"E20", func() *metrics.Table { return experiments.AdaptiveStudy(o).Table() }},
	}

	ran := 0
	for _, j := range jobs {
		if !sel(j.id) {
			continue
		}
		if j.id == "E14" && (all || want["E3"]) && want["E14"] != all {
			continue // E3 and E14 share one table; print once in 'all' runs
		}
		start := time.Now()
		tbl := j.run()
		tbl.Render(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", j.id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if path, err := tbl.SaveCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "nucache-bench: csv: %v\n", err)
			} else {
				fmt.Printf("(saved %s)\n\n", path)
			}
		}
		if *jsonDir != "" {
			if path, err := tbl.SaveJSON(*jsonDir); err != nil {
				fmt.Fprintf(os.Stderr, "nucache-bench: json: %v\n", err)
			} else {
				fmt.Printf("(saved %s)\n\n", path)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected; use -exp E1..E15 or all")
		os.Exit(2)
	}
}
