package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBase = `goos: linux
goarch: amd64
pkg: nucache
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHotAccessLRU     	22760360	        60.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessLRU     	23858845	        62.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessNUcache 	18988933	        80.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessNUcache 	17648882	        86.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessUCP-8   	14031130	       100.0 ns/op	       7 B/op	       1 allocs/op
PASS
ok  	nucache	19.569s
`

const sampleHead = `BenchmarkHotAccessLRU     	22760360	        61.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessLRU     	23858845	        61.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessNUcache 	18988933	        50.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessNUcache 	17648882	        54.00 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessUCP-16  	14031130	        95.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotAccessDRRIP   	24219858	        53.50 ns/op	       0 B/op	       0 allocs/op
`

func TestParseAggregatesRepetitions(t *testing.T) {
	runs := Parse(sampleBase)
	lru, ok := runs["BenchmarkHotAccessLRU"]
	if !ok {
		t.Fatalf("missing LRU aggregate; got %v", keys(runs))
	}
	if lru.Runs != 2 {
		t.Fatalf("LRU runs = %d, want 2", lru.Runs)
	}
	if got := lru.NsPerOp(); math.Abs(got-61.0) > 1e-9 {
		t.Errorf("LRU mean ns/op = %v, want 61", got)
	}
	if got := runs["BenchmarkHotAccessUCP"]; got == nil {
		t.Errorf("GOMAXPROCS suffix not stripped; got %v", keys(runs))
	} else if got.AllocsPerOp() != 1 {
		t.Errorf("UCP allocs/op = %v, want 1", got.AllocsPerOp())
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	runs := Parse("PASS\nok\nBenchmarkBroken 12 notanumber ns/op\n")
	if len(runs) != 0 {
		t.Errorf("expected no aggregates, got %v", keys(runs))
	}
}

func TestCompareFlagsRegressionBeyondThreshold(t *testing.T) {
	base := Parse("BenchmarkX 10 100 ns/op 0 B/op 0 allocs/op\n")
	head := Parse("BenchmarkX 10 115 ns/op 0 B/op 0 allocs/op\n")
	rep := Compare(base, head, 0.10)
	if len(rep.Regressions) != 1 || rep.Regressions[0] != "BenchmarkX" {
		t.Fatalf("regressions = %v, want [BenchmarkX]", rep.Regressions)
	}
	// 10% exactly is allowed; only beyond the threshold fails.
	head = Parse("BenchmarkX 10 110 ns/op 0 B/op 0 allocs/op\n")
	if rep := Compare(base, head, 0.10); len(rep.Regressions) != 0 {
		t.Errorf("10%% exactly flagged as regression: %v", rep.Regressions)
	}
}

func TestCompareFlagsAllocationRegression(t *testing.T) {
	base := Parse("BenchmarkX 10 100 ns/op 0 B/op 0 allocs/op\n")
	head := Parse("BenchmarkX 10 100 ns/op 16 B/op 1 allocs/op\n")
	rep := Compare(base, head, 0.10)
	if len(rep.Regressions) != 1 {
		t.Fatalf("new allocation not flagged: %+v", rep.Results)
	}
}

func TestCompareNewAndRemovedAreNotGated(t *testing.T) {
	rep := Compare(Parse(sampleBase), Parse(sampleHead), 0.10)
	if len(rep.Regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", rep.Regressions)
	}
	statuses := map[string]string{}
	for _, r := range rep.Results {
		statuses[r.Name] = r.Status
	}
	if statuses["BenchmarkHotAccessDRRIP"] != "new" {
		t.Errorf("DRRIP status = %q, want new", statuses["BenchmarkHotAccessDRRIP"])
	}
	if statuses["BenchmarkHotAccessNUcache"] != "ok" {
		t.Errorf("NUcache status = %q, want ok (improvement)", statuses["BenchmarkHotAccessNUcache"])
	}
	if rep.Compared != 3 || rep.New != 1 {
		t.Errorf("compared/new = %d/%d, want 3/1", rep.Compared, rep.New)
	}
}

func TestResultStringMentionsStatus(t *testing.T) {
	rep := Compare(
		Parse("BenchmarkX 10 100 ns/op 0 B/op 0 allocs/op\n"),
		Parse("BenchmarkX 10 150 ns/op 0 B/op 0 allocs/op\n"),
		0.10,
	)
	if len(rep.Results) != 1 {
		t.Fatalf("results = %+v", rep.Results)
	}
	s := rep.Results[0].String()
	if !strings.Contains(s, "regression") || !strings.Contains(s, "+50.0%") {
		t.Errorf("log line %q missing status or delta", s)
	}
}

func TestParseFloor(t *testing.T) {
	f, err := ParseFloor("BenchmarkGridReplaySerial/BenchmarkGridReplay=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if f.Num != "BenchmarkGridReplaySerial" || f.Den != "BenchmarkGridReplay" || f.Min != 0.9 {
		t.Fatalf("parsed %+v", f)
	}
	for _, bad := range []string{"", "A/B", "A=1.5", "/B=1", "A/=1", "A/B=0", "A/B=-1", "A/B=x"} {
		if _, err := ParseFloor(bad); err == nil {
			t.Errorf("ParseFloor(%q) accepted", bad)
		}
	}
}

func TestCheckFloor(t *testing.T) {
	head := Parse("BenchmarkSlow 10 200 ns/op\nBenchmarkFast 10 100 ns/op\n")

	res, err := CheckFloor(head, FloorSpec{Num: "BenchmarkSlow", Den: "BenchmarkFast", Min: 1.5})
	if err != nil || !res.OK || math.Abs(res.Ratio-2.0) > 1e-9 {
		t.Fatalf("2.0x vs floor 1.5: res %+v err %v", res, err)
	}
	if s := res.String(); !strings.Contains(s, "2.00x") || !strings.Contains(s, "ok") {
		t.Errorf("log line %q missing ratio or status", s)
	}

	res, err = CheckFloor(head, FloorSpec{Num: "BenchmarkSlow", Den: "BenchmarkFast", Min: 2.5})
	if err != nil || res.OK {
		t.Fatalf("2.0x vs floor 2.5 passed: res %+v err %v", res, err)
	}
	if s := res.String(); !strings.Contains(s, "below floor") {
		t.Errorf("failed floor log line %q does not say so", s)
	}

	// A missing benchmark is a configuration error, not a failed floor.
	if _, err := CheckFloor(head, FloorSpec{Num: "BenchmarkGone", Den: "BenchmarkFast", Min: 1}); err == nil {
		t.Error("missing numerator accepted")
	}
	if _, err := CheckFloor(head, FloorSpec{Num: "BenchmarkSlow", Den: "BenchmarkGone", Min: 1}); err == nil {
		t.Error("missing denominator accepted")
	}
}

func keys(m map[string]*Aggregate) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
