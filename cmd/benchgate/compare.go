package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Aggregate accumulates one benchmark's repetitions (from -count=N runs)
// and reports their arithmetic means. The mean over several repetitions
// smooths scheduler noise without requiring benchstat in the toolchain.
type Aggregate struct {
	Name    string
	Runs    int
	nsSum   float64
	allocs  float64
	hasNs   bool
	hasAllo bool
}

// NsPerOp returns the mean ns/op across repetitions.
func (a *Aggregate) NsPerOp() float64 {
	if a.Runs == 0 {
		return 0
	}
	return a.nsSum / float64(a.Runs)
}

// AllocsPerOp returns the mean allocs/op across repetitions (0 when the
// run lacked -benchmem).
func (a *Aggregate) AllocsPerOp() float64 {
	if a.Runs == 0 {
		return 0
	}
	return a.allocs / float64(a.Runs)
}

// Parse extracts benchmark result lines from `go test -bench` output,
// aggregating repeated lines (from -count) by benchmark name. The
// GOMAXPROCS suffix ("-8") is stripped so logs from machines with
// different core counts compare by benchmark identity.
func Parse(output string) map[string]*Aggregate {
	runs := make(map[string]*Aggregate)
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// fields[1] is the iteration count; after it come value/unit pairs.
		a := runs[name]
		if a == nil {
			a = &Aggregate{Name: name}
			runs[name] = a
		}
		counted := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				a.nsSum += v
				a.hasNs = true
				counted = true
			case "allocs/op":
				a.allocs += v
				a.hasAllo = true
			}
		}
		if counted {
			a.Runs++
		}
	}
	for name, a := range runs {
		if !a.hasNs {
			delete(runs, name)
		}
	}
	return runs
}

// FloorSpec is one -floor assertion: the mean ns/op of Num divided by
// the mean ns/op of Den (both from the HEAD log only) must stay at or
// above Min. It gates relative speedups that have no base-side
// counterpart — e.g. the serial-vs-one-pass grid replay ratio, where
// both benchmarks live in the same head commit.
type FloorSpec struct {
	Num string  `json:"num"`
	Den string  `json:"den"`
	Min float64 `json:"min"`
}

// ParseFloor parses "BenchName/BenchName=1.5" into a FloorSpec.
func ParseFloor(s string) (FloorSpec, error) {
	name, minStr, ok := strings.Cut(s, "=")
	if !ok {
		return FloorSpec{}, fmt.Errorf("floor %q: want NUM/DEN=MIN", s)
	}
	num, den, ok := strings.Cut(name, "/")
	if !ok || num == "" || den == "" {
		return FloorSpec{}, fmt.Errorf("floor %q: want NUM/DEN=MIN", s)
	}
	min, err := strconv.ParseFloat(minStr, 64)
	if err != nil || min <= 0 {
		return FloorSpec{}, fmt.Errorf("floor %q: bad minimum %q", s, minStr)
	}
	return FloorSpec{Num: num, Den: den, Min: min}, nil
}

// FloorResult is one evaluated -floor assertion.
type FloorResult struct {
	FloorSpec
	Ratio float64 `json:"ratio"`
	OK    bool    `json:"ok"`
}

// CheckFloor evaluates one floor against the head aggregates. A missing
// or zero-time benchmark is an error (the caller exits 2: the gate is
// misconfigured, not failing).
func CheckFloor(head map[string]*Aggregate, f FloorSpec) (FloorResult, error) {
	num, ok := head[f.Num]
	if !ok || num.NsPerOp() == 0 {
		return FloorResult{}, fmt.Errorf("floor %s/%s: benchmark %s missing from head log", f.Num, f.Den, f.Num)
	}
	den, ok := head[f.Den]
	if !ok || den.NsPerOp() == 0 {
		return FloorResult{}, fmt.Errorf("floor %s/%s: benchmark %s missing from head log", f.Num, f.Den, f.Den)
	}
	ratio := num.NsPerOp() / den.NsPerOp()
	return FloorResult{FloorSpec: f, Ratio: ratio, OK: ratio >= f.Min}, nil
}

// String renders the floor check as one log line.
func (r FloorResult) String() string {
	status := "ok"
	if !r.OK {
		status = "below floor"
	}
	return fmt.Sprintf("%s / %s = %.2fx (floor %.2fx)  %s", r.Num, r.Den, r.Ratio, r.Min, status)
}

// Result is one benchmark's base-vs-head comparison.
type Result struct {
	Name       string  `json:"name"`
	BaseNsOp   float64 `json:"base_ns_op,omitempty"`
	HeadNsOp   float64 `json:"head_ns_op"`
	Delta      float64 `json:"delta,omitempty"` // fractional ns/op change
	BaseAllocs float64 `json:"base_allocs_op"`
	HeadAllocs float64 `json:"head_allocs_op"`
	Status     string  `json:"status"` // "ok" | "regression" | "new" | "removed"
}

// String renders the result as one aligned log line.
func (r Result) String() string {
	switch r.Status {
	case "new":
		return fmt.Sprintf("%-32s %10.2f ns/op %8.1f allocs/op  (new)", r.Name, r.HeadNsOp, r.HeadAllocs)
	case "removed":
		return fmt.Sprintf("%-32s %10.2f ns/op  (removed)", r.Name, r.BaseNsOp)
	}
	return fmt.Sprintf("%-32s %10.2f -> %8.2f ns/op (%+.1f%%) %8.1f -> %.1f allocs/op  %s",
		r.Name, r.BaseNsOp, r.HeadNsOp, r.Delta*100, r.BaseAllocs, r.HeadAllocs, r.Status)
}

// Report is the full comparison, serialized to the -out JSON artifact.
type Report struct {
	Threshold   float64  `json:"threshold"`
	Compared    int      `json:"compared"`
	New         int      `json:"new"`
	Results     []Result `json:"results"`
	Regressions []string `json:"regressions,omitempty"`
	// Floors holds the evaluated -floor assertions (head-only ratios).
	Floors []FloorResult `json:"floors,omitempty"`
}

// Compare matches head benchmarks against base and flags regressions: a
// mean ns/op increase beyond threshold, or any increase in allocs/op
// (the hot path is required to stay allocation-free, so a single new
// allocation per op is always a failure, not a percentage question).
func Compare(base, head map[string]*Aggregate, threshold float64) *Report {
	rep := &Report{Threshold: threshold}

	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		h := head[name]
		b, ok := base[name]
		if !ok || b.NsPerOp() == 0 {
			rep.New++
			rep.Results = append(rep.Results, Result{
				Name: name, HeadNsOp: h.NsPerOp(), HeadAllocs: h.AllocsPerOp(), Status: "new",
			})
			continue
		}
		rep.Compared++
		r := Result{
			Name:       name,
			BaseNsOp:   b.NsPerOp(),
			HeadNsOp:   h.NsPerOp(),
			Delta:      (h.NsPerOp() - b.NsPerOp()) / b.NsPerOp(),
			BaseAllocs: b.AllocsPerOp(),
			HeadAllocs: h.AllocsPerOp(),
			Status:     "ok",
		}
		allocRegressed := h.hasAllo && b.hasAllo && h.AllocsPerOp() > b.AllocsPerOp()
		if r.Delta > threshold || allocRegressed {
			r.Status = "regression"
			rep.Regressions = append(rep.Regressions, name)
		}
		rep.Results = append(rep.Results, r)
	}

	removed := make([]string, 0)
	for name := range base {
		if _, ok := head[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		rep.Results = append(rep.Results, Result{
			Name: name, BaseNsOp: base[name].NsPerOp(), Status: "removed",
		})
	}
	return rep
}
