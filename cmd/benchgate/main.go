// Command benchgate compares two `go test -bench` output files and fails
// when the head run regresses against the base run. It is the enforcement
// half of the CI benchmark gate (see .github/workflows/ci.yml): CI runs
// the Hot* benchmarks with -count on both the merge base and the head
// commit, then benchgate parses both logs, averages each benchmark's
// ns/op and allocs/op across repetitions, and exits non-zero if any
// benchmark got more than -threshold slower or started allocating more.
//
// Benchmarks present only in head are reported as new and never gated
// (there is nothing to compare against); benchmarks present only in base
// are reported as removed but do not fail the gate either — deleting a
// benchmark is a review concern, not a perf regression.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-threshold 0.10] [-out compare.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	base := flag.String("base", "", "bench output of the base commit (required)")
	head := flag.String("head", "", "bench output of the head commit (required)")
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional ns/op regression")
	out := flag.String("out", "", "write the JSON comparison report here (optional)")
	flag.Parse()

	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		flag.Usage()
		os.Exit(2)
	}

	baseRuns, err := parseFile(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	headRuns, err := parseFile(*head)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(headRuns) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results in %s\n", *head)
		os.Exit(2)
	}

	report := Compare(baseRuns, headRuns, *threshold)

	for _, r := range report.Results {
		fmt.Println(r.String())
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	if len(report.Regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %d benchmark(s) regressed beyond %.0f%%\n",
			len(report.Regressions), *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%d compared, %d new, threshold %.0f%%)\n",
		report.Compared, report.New, *threshold*100)
}

func parseFile(path string) (map[string]*Aggregate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(string(data)), nil
}
