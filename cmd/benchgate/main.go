// Command benchgate compares two `go test -bench` output files and fails
// when the head run regresses against the base run. It is the enforcement
// half of the CI benchmark gate (see .github/workflows/ci.yml): CI runs
// the Hot* benchmarks with -count on both the merge base and the head
// commit, then benchgate parses both logs, averages each benchmark's
// ns/op and allocs/op across repetitions, and exits non-zero if any
// benchmark got more than -threshold slower or started allocating more.
//
// Benchmarks present only in head are reported as new and never gated
// (there is nothing to compare against); benchmarks present only in base
// are reported as removed but do not fail the gate either — deleting a
// benchmark is a review concern, not a perf regression.
//
// Usage:
//
// A -floor asserts a head-only ratio between two benchmarks from the
// same head log — "the serial grid walk must cost at least MIN times the
// one-pass walk" — for speedups that have no base-side benchmark to
// diff against:
//
//	benchgate -base base.txt -head head.txt [-threshold 0.10] [-out compare.json]
//	benchgate -base base.txt -head head.txt -floor 'BenchmarkGridReplaySerial/BenchmarkGridReplay=0.9'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// floorFlags collects repeated -floor values.
type floorFlags []string

func (f *floorFlags) String() string     { return fmt.Sprint(*f) }
func (f *floorFlags) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	base := flag.String("base", "", "bench output of the base commit (required)")
	head := flag.String("head", "", "bench output of the head commit (required)")
	threshold := flag.Float64("threshold", 0.10, "maximum allowed fractional ns/op regression")
	out := flag.String("out", "", "write the JSON comparison report here (optional)")
	var floors floorFlags
	flag.Var(&floors, "floor", "head-only ratio assertion NUM/DEN=MIN: mean ns/op of NUM over DEN must stay >= MIN (repeatable)")
	flag.Parse()

	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		flag.Usage()
		os.Exit(2)
	}

	baseRuns, err := parseFile(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	headRuns, err := parseFile(*head)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(headRuns) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results in %s\n", *head)
		os.Exit(2)
	}

	report := Compare(baseRuns, headRuns, *threshold)

	for _, r := range report.Results {
		fmt.Println(r.String())
	}

	floorFailed := false
	for _, spec := range floors {
		f, err := ParseFloor(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		res, err := CheckFloor(headRuns, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(res.String())
		report.Floors = append(report.Floors, res)
		if !res.OK {
			floorFailed = true
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	if len(report.Regressions) > 0 || floorFailed {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %d benchmark(s) regressed beyond %.0f%%, %d floor(s) missed\n",
			len(report.Regressions), *threshold*100, countMissed(report.Floors))
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (%d compared, %d new, %d floors, threshold %.0f%%)\n",
		report.Compared, report.New, len(report.Floors), *threshold*100)
}

func countMissed(floors []FloorResult) int {
	n := 0
	for _, f := range floors {
		if !f.OK {
			n++
		}
	}
	return n
}

func parseFile(path string) (map[string]*Aggregate, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(string(data)), nil
}
