// Command nucache-charz characterizes workloads the way the paper's
// motivation section does: delinquent-PC miss skew (E1) and per-PC
// Next-Use distance profiles (E2), with optional per-PC histogram dumps.
//
// Examples:
//
//	nucache-charz                      # all benchmarks, summary tables
//	nucache-charz -bench art-like -hist
package main

import (
	"flag"
	"fmt"
	"os"

	"nucache/internal/experiments"
	"nucache/internal/workload"
)

func main() {
	var (
		benchName = flag.String("bench", "", "restrict to one benchmark")
		budget    = flag.Uint64("budget", 5_000_000, "instruction budget")
		seed      = flag.Uint64("seed", 1, "workload seed")
		hist      = flag.Bool("hist", false, "dump per-PC next-use histograms")
	)
	flag.Parse()

	o := experiments.Options{Budget: *budget, Seed: *seed}
	benches := workload.All()
	if *benchName != "" {
		b, ok := workload.ByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "nucache-charz: unknown benchmark %q\n", *benchName)
			os.Exit(2)
		}
		benches = []workload.Benchmark{b}
	}

	if *benchName == "" {
		experiments.Delinquency(o).Table().Render(os.Stdout)
		fmt.Println()
		experiments.NextUseProfile(o).Table().Render(os.Stdout)
		return
	}

	// Single-benchmark deep dive.
	del := experiments.Delinquency(restrictTo(o, benches[0]))
	del.Table().Render(os.Stdout)
	fmt.Println()
	prof := experiments.NextUseProfile(restrictTo(o, benches[0]))
	prof.Table().Render(os.Stdout)
	if *hist {
		fmt.Println()
		experiments.DumpHistograms(restrictTo(o, benches[0]), os.Stdout)
	}
}

// restrictTo limits benchmark-driven experiments to one model.
func restrictTo(o experiments.Options, b workload.Benchmark) experiments.Options {
	o.Only = b.Name
	return o
}
