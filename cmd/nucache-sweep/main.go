// Command nucache-sweep runs the sensitivity studies (E9/E10/E12/E13):
// DeliWays split, PC-selection ablations, epoch length and monitor
// sampling, each as geometric-mean weighted-speedup gain over LRU on the
// standard 4-core mixes — plus the capacity-advisor study (E21), which
// profiles each mix once and answers the partition search from the
// model ("profiles").
//
// Sweeps fan out across all host cores through the internal/sim
// scheduler (see -parallel); repeated (mix, policy) evaluations — e.g.
// the LRU baseline shared by every sweep — are served from the
// content-addressed result cache.
//
// With -journal every completed (mix, policy) cell is checkpointed to a
// crash-safe append-only journal as it finishes; SIGINT/SIGTERM stop the
// sweep cleanly at the next cell boundary. A crashed or interrupted
// sweep restarted with -resume replays the journal, serves the finished
// cells from it, and computes only what is missing — producing output
// byte-identical to an uninterrupted run.
//
// With -distribute <addr> the sweep embeds a fabric coordinator on that
// address and offers its grid cells to remote workers (nucache-serve
// -worker -join <url>) under leases (-lease, -heartbeat). Workers may
// die, hang or return garbage at any point: leased cells are reassigned
// with bounded backoff and poisoned workers quarantined, while the local
// sweep remains the executor of last resort — output stays byte-identical
// to a single-node run, with or without workers, and a killed
// coordinator resumes from its journal like any other crashed sweep.
//
// Examples:
//
//	nucache-sweep -sweep deliways
//	nucache-sweep -sweep all -budget 1000000 -mixlimit 4
//	nucache-sweep -sweep all -journal sweep.journal
//	nucache-sweep -sweep all -journal sweep.journal -resume
//	nucache-sweep -sweep all -journal sweep.journal -distribute :8090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nucache/internal/experiments"
	"nucache/internal/journal"
	"nucache/internal/sim"
)

func main() {
	var (
		which    = flag.String("sweep", "all", "deliways|ablations|epoch|sampling|profiles|all")
		budget   = flag.Uint64("budget", 2_000_000, "instruction budget per core")
		seed     = flag.Uint64("seed", 1, "workload seed")
		mixLimit = flag.Int("mixlimit", 0, "truncate the 4-core mix list (0 = all)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = NumCPU, 1 = sequential)")
		jobTO    = flag.Duration("jobtimeout", 0, "per-(mix,policy) deadline; a stuck pair fails instead of hanging the sweep (0 = none)")
		noReplay = flag.Bool("noreplay", false, "disable the record/replay fast path (A/B debugging; results are bit-identical either way)")
		noMulti  = flag.Bool("nomultireplay", false, "replay policy-grid rows one cell at a time instead of one-pass multi-policy tape walks (A/B debugging; results are bit-identical either way)")
		lanePar  = flag.Bool("laneparallel", true, "step one-pass grid lanes on idle scheduler workers; false forces the serial round-robin (A/B debugging; results are bit-identical either way)")
		jpath    = flag.String("journal", "", "checkpoint journal path; completed cells are appended as they finish")
		resume   = flag.Bool("resume", false, "replay the -journal file and skip cells it already holds")

		distribute = flag.String("distribute", "", "embed a fabric coordinator on this address (e.g. :8090) and offer cells to remote workers")
		lease      = flag.Duration("lease", 30*time.Second, "fabric lease TTL per cell")
		heartbeat  = flag.Duration("heartbeat", 3*time.Second, "fabric worker heartbeat interval")
	)
	flag.Parse()
	sim.SetReplayDisabled(*noReplay)
	sim.SetMultiReplayDisabled(*noMulti)
	sim.SetLaneParallelDisabled(!*lanePar)

	if *resume && *jpath == "" {
		fmt.Fprintln(os.Stderr, "nucache-sweep: -resume requires -journal")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the sweep context: queued cells are dropped,
	// in-flight cells finish and checkpoint, and the run exits cleanly
	// with a resumable journal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := experiments.Options{
		Budget: *budget, Seed: *seed, MixLimit: *mixLimit,
		Parallel: *parallel, JobTimeout: *jobTO, Ctx: ctx,
		DisableMultiReplay: *noMulti, DisableLaneParallel: !*lanePar,
	}
	var jnl *journal.Journal
	if *jpath != "" {
		var resumed int
		var err error
		jnl, resumed, err = experiments.OpenSweepJournal(*jpath, *resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nucache-sweep: journal %s: %v\n", *jpath, err)
			os.Exit(1)
		}
		defer jnl.Close()
		if *resume {
			fmt.Fprintf(os.Stderr, "nucache-sweep: resumed %d cells from %s\n", resumed, *jpath)
		}
		o.Journal = jnl
	}

	if *distribute != "" {
		co := experiments.NewSweepCoordinator(o, experiments.FabricConfig{
			LeaseTTL:  *lease,
			Heartbeat: *heartbeat,
			Logger:    log.New(os.Stderr, "nucache-sweep: ", 0),
		})
		defer co.Close()
		ln, err := net.Listen("tcp", *distribute)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nucache-sweep: -distribute %s: %v\n", *distribute, err)
			os.Exit(1)
		}
		fsrv := &http.Server{Handler: co.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go fsrv.Serve(ln)
		defer fsrv.Close()
		// Tables go to stdout; all fabric chatter stays on stderr so a
		// distributed run's stdout is byte-comparable to a local one.
		fmt.Fprintf(os.Stderr, "nucache-sweep: fabric coordinator listening on %s (lease %v, heartbeat %v)\n",
			ln.Addr(), *lease, *heartbeat)
		o.Fabric = co
		defer func() {
			st := co.Stats()
			fmt.Fprintf(os.Stderr, "nucache-sweep: fabric: %d cells offered, %d completed remotely, %d workers (%d quarantined)\n",
				st.Cells, st.RemoteDone, st.Workers, st.Quarantined)
		}()
	}

	sweeps := map[string]func(experiments.Options) *experiments.SweepResult{
		"deliways":  experiments.DeliWaysSweep,
		"ablations": experiments.PCCountSweep,
		"epoch":     experiments.EpochSweep,
		"sampling":  experiments.SamplingSweep,
		"profiles":  experiments.ProfileAdvisorSweep,
	}
	order := []string{"deliways", "ablations", "epoch", "sampling", "profiles"}

	ran := 0
	for _, name := range order {
		if *which != "all" && !strings.EqualFold(*which, name) {
			continue
		}
		start := time.Now()
		res := sweeps[name](o)
		if res == nil { // interrupted mid-grid
			break
		}
		res.Table().Render(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "nucache-sweep: interrupted; rerun with -journal %s -resume to continue\n", *jpath)
		journalSummary(jnl)
		return // clean exit: the journal holds everything computed so far
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nucache-sweep: unknown sweep %q (deliways|ablations|epoch|sampling|profiles|all)\n", *which)
		os.Exit(2)
	}
	journalSummary(jnl)
}

// journalSummary reports the checkpoint state on stderr so operators (and
// the smoke tests) can see what a resume would reuse.
func journalSummary(jnl *journal.Journal) {
	if jnl == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "nucache-sweep: journal %s: %d records (%d resumed, %d torn tails)\n",
		jnl.Path(), jnl.Records(), jnl.ResumedRecords(), jnl.TornTailsSeen())
}
