// Command nucache-sweep runs the sensitivity studies (E9/E10/E12/E13):
// DeliWays split, PC-selection ablations, epoch length and monitor
// sampling, each as geometric-mean weighted-speedup gain over LRU on the
// standard 4-core mixes.
//
// Sweeps fan out across all host cores through the internal/sim
// scheduler (see -parallel); repeated (mix, policy) evaluations — e.g.
// the LRU baseline shared by every sweep — are served from the
// content-addressed result cache.
//
// Examples:
//
//	nucache-sweep -sweep deliways
//	nucache-sweep -sweep all -budget 1000000 -mixlimit 4
//	nucache-sweep -sweep all -parallel 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nucache/internal/experiments"
	"nucache/internal/sim"
)

func main() {
	var (
		which    = flag.String("sweep", "all", "deliways|ablations|epoch|sampling|all")
		budget   = flag.Uint64("budget", 2_000_000, "instruction budget per core")
		seed     = flag.Uint64("seed", 1, "workload seed")
		mixLimit = flag.Int("mixlimit", 0, "truncate the 4-core mix list (0 = all)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = NumCPU, 1 = sequential)")
		jobTO    = flag.Duration("jobtimeout", 0, "per-(mix,policy) deadline; a stuck pair fails instead of hanging the sweep (0 = none)")
		noReplay = flag.Bool("noreplay", false, "disable the record/replay fast path (A/B debugging; results are bit-identical either way)")
	)
	flag.Parse()
	sim.SetReplayDisabled(*noReplay)

	o := experiments.Options{
		Budget: *budget, Seed: *seed, MixLimit: *mixLimit,
		Parallel: *parallel, JobTimeout: *jobTO,
	}
	sweeps := map[string]func(experiments.Options) *experiments.SweepResult{
		"deliways":  experiments.DeliWaysSweep,
		"ablations": experiments.PCCountSweep,
		"epoch":     experiments.EpochSweep,
		"sampling":  experiments.SamplingSweep,
	}
	order := []string{"deliways", "ablations", "epoch", "sampling"}

	ran := 0
	for _, name := range order {
		if *which != "all" && !strings.EqualFold(*which, name) {
			continue
		}
		start := time.Now()
		sweeps[name](o).Table().Render(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "nucache-sweep: unknown sweep %q (deliways|ablations|epoch|sampling|all)\n", *which)
		os.Exit(2)
	}
}
