package main

// Chaos suite for crash-safe sweeps: kill the binary at injected
// failpoints across every layer it checkpoints through — scheduler
// dispatch, tape recording, replay commit, journal append, and a torn
// journal write — then restart with -resume and require output
// byte-identical to an uninterrupted golden run.

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nucache/internal/failpoint"
	"nucache/internal/journal"
)

// sweepArgs is the fixed workload every chaos run uses: small enough to
// finish in seconds, large enough to journal 12 cells (2 mixes x 6
// specs) across both scheduler workers. extra prepends site-specific
// flags (e.g. -nomultireplay to route cells through per-cell replay).
func sweepArgs(journalPath string, resume bool, extra ...string) []string {
	args := append([]string{
		"-sweep", "deliways", "-budget", "50000", "-mixlimit", "2",
		"-parallel", "2", "-journal", journalPath,
	}, extra...)
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// runMainEnv is runMain with extra child environment (failpoint arming).
func runMainEnv(t *testing.T, env []string, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(append(os.Environ(), beBinary+"=1"), env...)
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	return out.String(), errb.String(), err
}

// stripTimings drops the wall-clock footer lines ("(deliways in 1.2s)")
// — the only nondeterministic part of sweep stdout.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "(") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestChaosKillAndResume is the end-to-end crash-safety contract: for
// every failpoint site on the sweep's write path, a run killed there
// must leave a journal that a -resume run completes from with output
// byte-identical to the uninterrupted golden run.
func TestChaosKillAndResume(t *testing.T) {
	dir := t.TempDir()
	goldenOut, goldenErr, err := runMain(t, sweepArgs(filepath.Join(dir, "golden.journal"), false)...)
	if err != nil {
		t.Fatalf("golden run failed: %v\nstderr: %s", err, goldenErr)
	}
	if !strings.Contains(goldenErr, "12 records (0 resumed, 0 torn tails)") {
		t.Fatalf("golden journal summary missing or wrong:\n%s", goldenErr)
	}
	golden := stripTimings(goldenOut)

	// Each entry names a failpoint on the sweep's write path, plus the
	// flags the crash run needs for that site to be on the hot path: with
	// one-pass grids on by default, per-cell replay commits only happen
	// under -nomultireplay, and the multi-replay commit only without it.
	// The resume run always uses the default flags — a journal written by
	// either path must resume bit-identically under the other. env rides
	// along on both the crash and the resume run: GOMAXPROCS=4 lets the
	// lane-borrow path engage even on single-CPU hosts, so the
	// cpu.multireplay.run kill lands with lane workers in flight and the
	// resume replays the journal under parallel stepping too.
	sites := []struct {
		name  string   // t.Run label and journal filename
		site  string   // failpoint to arm
		extra []string // crash-run flags putting the site on the hot path
		env   []string // extra child env for the crash and resume runs
	}{
		{"sim.sched.job", "sim.sched.job", nil, nil},                          // grid cell dispatch
		{"cpu.tape.extend", "cpu.tape.extend", nil, nil},                      // trace recording
		{"cpu.replay.run", "cpu.replay.run", []string{"-nomultireplay"}, nil}, // per-cell replay commit
		// One-pass grid commit (armed once per live lane), lanes stepped on
		// worker goroutines at both crash and resume time.
		{"cpu.multireplay.run", "cpu.multireplay.run", nil, []string{"GOMAXPROCS=4"}},
		// Same site with lane parallelism forced off at crash time; the
		// resume (default flags, lane workers available) must still be
		// byte-identical — the journal is stepping-mode-agnostic.
		{"cpu.multireplay.run.serial-lanes", "cpu.multireplay.run",
			[]string{"-laneparallel=false"}, []string{"GOMAXPROCS=4"}},
		{"journal.append", "journal.append", nil, nil},           // checkpoint write
		{"journal.append.torn", "journal.append.torn", nil, nil}, // crash between a record's body and CRC
	}
	for _, site := range sites {
		site := site
		t.Run(site.name, func(t *testing.T) {
			jpath := filepath.Join(dir, strings.ReplaceAll(site.name, ".", "_")+".journal")
			hit := 1 + rand.IntN(3)
			spec := fmt.Sprintf("%s=exit@%d", site.site, hit)
			t.Logf("arming %s", spec)
			_, crashErr, err := runMainEnv(t, append([]string{failpoint.EnvVar + "=" + spec}, site.env...),
				sweepArgs(jpath, false, site.extra...)...)
			var exit *exec.ExitError
			if err == nil {
				t.Fatalf("sweep survived %s", spec)
			}
			if !errors.As(err, &exit) || exit.ExitCode() != failpoint.ExitCode {
				t.Fatalf("crash exit = %v, want code %d\nstderr: %s", err, failpoint.ExitCode, crashErr)
			}

			out, errOut, err := runMainEnv(t, site.env, sweepArgs(jpath, true)...)
			if err != nil {
				t.Fatalf("resume after %s failed: %v\nstderr: %s", spec, err, errOut)
			}
			if got := stripTimings(out); got != golden {
				t.Fatalf("resume after %s diverged from golden run\n--- golden ---\n%s\n--- resumed ---\n%s",
					spec, golden, got)
			}
			// The completed journal holds every cell exactly once.
			if !strings.Contains(errOut, "12 records (") {
				t.Fatalf("resumed journal summary missing:\n%s", errOut)
			}
			if site.name == "journal.append.torn" && !strings.Contains(errOut, "1 torn tails") {
				t.Fatalf("torn-tail crash not reported on resume:\n%s", errOut)
			}
		})
	}
}

// TestResumeOfCompleteJournalRecomputesNothing reruns a finished sweep
// with -resume: every cell must come from the journal (the summary's
// resumed count equals its record count) and the output must match.
func TestResumeOfCompleteJournalRecomputesNothing(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	goldenOut, _, err := runMain(t, sweepArgs(jpath, false)...)
	if err != nil {
		t.Fatalf("initial run failed: %v", err)
	}
	out, errOut, err := runMain(t, sweepArgs(jpath, true)...)
	if err != nil {
		t.Fatalf("resume failed: %v\nstderr: %s", err, errOut)
	}
	if !strings.Contains(errOut, "resumed 12 cells") ||
		!strings.Contains(errOut, "12 records (12 resumed, 0 torn tails)") {
		t.Fatalf("resume did not serve every cell from the journal:\n%s", errOut)
	}
	if stripTimings(out) != stripTimings(goldenOut) {
		t.Fatalf("resumed output diverged:\n%s\nvs\n%s", out, goldenOut)
	}
}

// TestResumeWithoutJournalIsUsageError mirrors the unknown-sweep exit
// contract: -resume without -journal is exit 2 with a pointed message.
func TestResumeWithoutJournalIsUsageError(t *testing.T) {
	_, errOut, err := runMain(t, "-sweep", "deliways", "-resume")
	exit, ok := err.(*exec.ExitError)
	if !ok || exit.ExitCode() != 2 {
		t.Fatalf("want exit 2, got %v", err)
	}
	if !strings.Contains(errOut, "-resume requires -journal") {
		t.Errorf("stderr does not explain the usage error: %q", errOut)
	}
}

// TestSigintCheckpointsAndExitsCleanly interrupts a long journaled sweep
// mid-flight: the process must exit 0, point the operator at -resume,
// and leave a journal that reopens without error.
func TestSigintCheckpointsAndExitsCleanly(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	// Budget sizing: the full -sweep all run takes minutes, so the sweep
	// is reliably mid-flight when the signal lands — but a single cell
	// (shared run plus its alone-IPC runs) still finishes well inside
	// the drain timeout even under the race detector.
	cmd := exec.Command(os.Args[0],
		"-sweep", "all", "-budget", "300000", "-parallel", "2", "-journal", jpath)
	cmd.Env = append(os.Environ(), beBinary+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the sweep get in flight, then interrupt. The budget is big
	// enough that the first grid cannot finish this quickly.
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sweep did not exit cleanly on SIGINT: %v\nstderr: %s", err, errb.String())
		}
	case <-time.After(120 * time.Second):
		cmd.Process.Kill()
		t.Fatal("sweep did not exit after SIGINT (in-flight cells should finish in seconds)")
	}
	if !strings.Contains(errb.String(), "interrupted; rerun with -journal") {
		t.Fatalf("interrupted run did not point at -resume:\nstderr: %s", errb.String())
	}
	// The journal left behind is valid (possibly empty if no cell had
	// finished yet) and replays without error.
	j, err := journal.Open(jpath, func([]byte) error { return nil })
	if err != nil {
		t.Fatalf("journal left by SIGINT does not reopen: %v", err)
	}
	j.Close()
}

// profileSweepArgs is the advisor-sweep workload for the chaos suite: 2
// mixes, so the journal holds 2 advisor cells.
func profileSweepArgs(journalPath string, resume bool) []string {
	args := []string{
		"-sweep", "profiles", "-budget", "50000", "-mixlimit", "2",
		"-parallel", "2", "-journal", journalPath,
	}
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// TestChaosProfileSweepKillAndResume extends the crash-safety contract
// to the capacity-advisor sweep: a run killed inside the profiling pass
// (the mrc.profile.build failpoint) must resume from its journal with
// output byte-identical to an uninterrupted golden run.
func TestChaosProfileSweepKillAndResume(t *testing.T) {
	dir := t.TempDir()
	goldenOut, goldenErr, err := runMain(t, profileSweepArgs(filepath.Join(dir, "golden.journal"), false)...)
	if err != nil {
		t.Fatalf("golden run failed: %v\nstderr: %s", err, goldenErr)
	}
	if !strings.Contains(goldenErr, "2 records (0 resumed, 0 torn tails)") {
		t.Fatalf("golden journal summary missing or wrong:\n%s", goldenErr)
	}
	golden := stripTimings(goldenOut)

	jpath := filepath.Join(dir, "mrc_profile_build.journal")
	spec := "mrc.profile.build=exit@1"
	t.Logf("arming %s", spec)
	_, crashErr, err := runMainEnv(t, []string{failpoint.EnvVar + "=" + spec},
		profileSweepArgs(jpath, false)...)
	var exit *exec.ExitError
	if err == nil {
		t.Fatalf("sweep survived %s", spec)
	}
	if !errors.As(err, &exit) || exit.ExitCode() != failpoint.ExitCode {
		t.Fatalf("crash exit = %v, want code %d\nstderr: %s", err, failpoint.ExitCode, crashErr)
	}

	out, errOut, err := runMain(t, profileSweepArgs(jpath, true)...)
	if err != nil {
		t.Fatalf("resume after %s failed: %v\nstderr: %s", spec, err, errOut)
	}
	if got := stripTimings(out); got != golden {
		t.Fatalf("resume after %s diverged from golden run\n--- golden ---\n%s\n--- resumed ---\n%s",
			spec, golden, got)
	}
	if !strings.Contains(errOut, "2 records (") {
		t.Fatalf("resumed journal summary missing:\n%s", errOut)
	}
}
