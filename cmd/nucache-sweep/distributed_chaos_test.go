package main

// Distributed chaos suite: run the sweep with an embedded fabric
// coordinator and real worker *processes* (this test binary in
// beWorker mode), then kill a worker at every fabric failpoint site —
// holding a fresh lease, with a computed-but-undelivered result, and
// mid-heartbeat — and kill the coordinator itself mid-sweep. In every
// case the surviving run (or a workerless -resume) must produce stdout
// byte-identical to a single-node golden run.

import (
	"bufio"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nucache/internal/failpoint"
)

// distBudget sizes the distributed chaos workload: big enough that a
// serialized local pass (-parallel 1 -nomultireplay) takes seconds, so
// worker processes spawned a beat after the coordinator announces its
// address reliably lease cells from the back of the queue before the
// local sweep reaches them.
const distBudget = "300000"

// distSweepArgs is sweepArgs for the distributed suite: same grid (2
// mixes x 6 specs = 12 cells), heavier budget, local execution forced
// serial and per-cell. Output is bit-identical across those switches,
// so distributed runs still compare against the (fast, parallel)
// golden byte for byte.
func distSweepArgs(journalPath string, resume bool, extra ...string) []string {
	args := append([]string{
		"-sweep", "deliways", "-budget", distBudget, "-mixlimit", "2",
		"-parallel", "1", "-nomultireplay", "-journal", journalPath,
	}, extra...)
	if resume {
		args = append(args, "-resume")
	}
	return args
}

// distributedSweep starts a journaled sweep with `-distribute
// 127.0.0.1:0`, scrapes the coordinator's bound address from stderr
// while the sweep is running, launches one worker process per env
// slice (nil = clean worker), and waits for the sweep to finish.
// Worker processes are killed at test cleanup; callers that expect a
// worker to die on its own (armed failpoints) assert on the returned
// cmds first.
func distributedSweep(t *testing.T, jpath string, sweepEnv []string, workerEnvs [][]string) (stdout, stderr string, workers []*exec.Cmd, err error) {
	t.Helper()
	// Lease long enough that a cell finishes inside it even under the
	// race detector; dead-worker detection rides on the 100ms heartbeat
	// (3 missed beats), not the lease TTL, so recovery stays fast.
	args := distSweepArgs(jpath, false,
		"-distribute", "127.0.0.1:0", "-lease", "60s", "-heartbeat", "100ms")
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(append(os.Environ(), beBinary+"=1"), sweepEnv...)
	var out strings.Builder
	cmd.Stdout = &out
	pipe, perr := cmd.StderrPipe()
	if perr != nil {
		t.Fatal(perr)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	addrCh := make(chan string, 1)
	var errb strings.Builder
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(pipe)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			errb.WriteString(line)
			errb.WriteByte('\n')
			const marker = "fabric coordinator listening on "
			if i := strings.Index(line, marker); i >= 0 {
				if f := strings.Fields(line[i+len(marker):]); len(f) > 0 {
					select {
					case addrCh <- f[0]:
					default:
					}
				}
			}
		}
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-scanDone:
		err := cmd.Wait()
		t.Fatalf("sweep exited (%v) before announcing its coordinator address\nstderr: %s", err, errb.String())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("coordinator address not announced within 30s")
	}

	for _, wenv := range workerEnvs {
		w := exec.Command(os.Args[0])
		w.Env = append(append(os.Environ(), beWorker+"=http://"+addr), wenv...)
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		t.Cleanup(func() {
			w.Process.Kill()
			w.Wait() // double Wait after waitExit is fine; error ignored
		})
	}

	<-scanDone
	err = cmd.Wait()
	return out.String(), errb.String(), workers, err
}

// waitExit waits for a process the test expects to end on its own.
func waitExit(t *testing.T, cmd *exec.Cmd, within time.Duration) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(within):
		t.Fatalf("pid %d did not exit within %v", cmd.Process.Pid, within)
		return nil
	}
}

// TestDistributedSweepChaos is the fabric's end-to-end contract: a
// distributed sweep's stdout is byte-identical to a single-node run
// whether the worker pool is healthy, a worker dies at any fabric
// failpoint site, or the coordinator itself is killed and resumed.
func TestDistributedSweepChaos(t *testing.T) {
	dir := t.TempDir()
	golden8 := []string{
		"-sweep", "deliways", "-budget", distBudget, "-mixlimit", "2",
		"-parallel", "2", "-journal", filepath.Join(dir, "golden.journal"),
	}
	goldenOut, goldenErr, err := runMain(t, golden8...)
	if err != nil {
		t.Fatalf("golden run failed: %v\nstderr: %s", err, goldenErr)
	}
	golden := stripTimings(goldenOut)

	t.Run("clean-pool", func(t *testing.T) {
		jpath := filepath.Join(dir, "clean_pool.journal")
		out, errOut, _, err := distributedSweep(t, jpath, nil, [][]string{nil, nil})
		if err != nil {
			t.Fatalf("distributed sweep failed: %v\nstderr: %s", err, errOut)
		}
		if got := stripTimings(out); got != golden {
			t.Fatalf("distributed stdout diverged from single-node golden\n--- golden ---\n%s\n--- distributed ---\n%s", golden, got)
		}
		if !strings.Contains(errOut, "12 cells offered") {
			t.Errorf("fabric summary missing the offered-cell count:\n%s", errOut)
		}
		if !strings.Contains(errOut, "2 workers") {
			t.Errorf("fabric summary does not show both workers joined:\n%s", errOut)
		}
	})

	// One worker is armed to die at each fabric site; its clean sibling
	// and the local executor of last resort must finish the sweep with
	// byte-identical output regardless.
	sites := []string{"fabric.lease.grant", "fabric.result.recv", "fabric.heartbeat"}
	for _, site := range sites {
		site := site
		t.Run("worker-killed-at-"+site, func(t *testing.T) {
			jpath := filepath.Join(dir, strings.ReplaceAll(site, ".", "_")+".journal")
			spec := site + "=exit@1"
			t.Logf("arming %s in worker 0", spec)
			out, errOut, workers, err := distributedSweep(t, jpath, nil,
				[][]string{{failpoint.EnvVar + "=" + spec}, nil})
			if err != nil {
				t.Fatalf("sweep did not survive a worker killed at %s: %v\nstderr: %s", site, err, errOut)
			}
			werr := waitExit(t, workers[0], 60*time.Second)
			var exit *exec.ExitError
			if werr == nil {
				t.Fatalf("armed worker survived %s", spec)
			}
			if !errors.As(werr, &exit) || exit.ExitCode() != failpoint.ExitCode {
				t.Fatalf("armed worker exit = %v, want code %d", werr, failpoint.ExitCode)
			}
			if got := stripTimings(out); got != golden {
				t.Fatalf("sweep with worker killed at %s diverged from golden\n--- golden ---\n%s\n--- got ---\n%s", site, golden, got)
			}
		})
	}

	t.Run("coordinator-killed-mid-sweep", func(t *testing.T) {
		jpath := filepath.Join(dir, "coord_kill.journal")
		// journal.append fires on every checkpoint — cell completions and
		// fabric event annotations alike — so the 5th hit lands with the
		// pool joined and the grid in flight.
		spec := "journal.append=exit@5"
		t.Logf("arming %s in the coordinator", spec)
		_, errOut, _, err := distributedSweep(t, jpath,
			[]string{failpoint.EnvVar + "=" + spec}, [][]string{nil, nil})
		var exit *exec.ExitError
		if err == nil {
			t.Fatalf("coordinator survived %s", spec)
		}
		if !errors.As(err, &exit) || exit.ExitCode() != failpoint.ExitCode {
			t.Fatalf("coordinator exit = %v, want code %d\nstderr: %s", err, failpoint.ExitCode, errOut)
		}

		// Resume single-node, no workers: completions replay from the
		// journal (fabric annotations are skipped), the rest recomputes
		// locally, and stdout must match the golden byte for byte.
		out, errOut, err := runMain(t, distSweepArgs(jpath, true)...)
		if err != nil {
			t.Fatalf("workerless resume after coordinator kill failed: %v\nstderr: %s", err, errOut)
		}
		if got := stripTimings(out); got != golden {
			t.Fatalf("resume after coordinator kill diverged from golden\n--- golden ---\n%s\n--- resumed ---\n%s", golden, got)
		}
		if !strings.Contains(errOut, "records (") {
			t.Fatalf("resumed journal summary missing:\n%s", errOut)
		}
	})
}
