package main

import (
	"context"
	"errors"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"

	"nucache/internal/experiments"
	"nucache/internal/fabric"
	"nucache/internal/sim"
)

// beBinary, when set, makes the test binary act as the real nucache-sweep
// binary (see cmd/nucache-sim for the pattern).
const beBinary = "NUCACHE_SWEEP_BE_BINARY"

// beWorker, when set to a coordinator URL, makes the test binary act as
// a fabric worker process — the same join/heartbeat/lease/execute loop
// `nucache-serve -worker -join <url>` runs, so the distributed chaos
// suite can spawn real worker processes (and kill them at fabric
// failpoints via NUCACHE_FAILPOINTS in their environment) without
// depending on another package's binary.
const beWorker = "NUCACHE_SWEEP_BE_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(beBinary) == "1" {
		main()
		os.Exit(0)
	}
	if url := os.Getenv(beWorker); url != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		w := fabric.NewWorker(url, fabric.WorkerConfig{
			Name: "chaos-worker",
			Executors: map[string]fabric.Executor{
				experiments.CellKindGrid: experiments.GridExecutor(),
				sim.CellKindSim:          sim.SimExecutor(),
			},
			Logger: log.New(os.Stderr, "worker: ", 0),
		})
		_ = w.Run(ctx)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) (stdout, stderr string, err error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), beBinary+"=1")
	var out, errb strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	return out.String(), errb.String(), err
}

func TestDeliWaysSweep(t *testing.T) {
	out, errOut, err := runMain(t,
		"-sweep", "deliways", "-budget", "50000", "-mixlimit", "1", "-parallel", "2")
	if err != nil {
		t.Fatalf("nucache-sweep failed: %v\nstderr: %s", err, errOut)
	}
	if !strings.Contains(out, "deliways") {
		t.Errorf("sweep output missing timing footer:\n%s", out)
	}
	// The sweep renders one row per DeliWays point; a sweep that ran but
	// produced no rows would still print the footer, so check for the
	// gain column marker too.
	if !strings.Contains(out, "LRU") {
		t.Errorf("sweep table missing LRU-relative gain column:\n%s", out)
	}
}

func TestUnknownSweepExitsNonzero(t *testing.T) {
	_, errOut, err := runMain(t, "-sweep", "bogus")
	var exit *exec.ExitError
	if err == nil {
		t.Fatal("unknown sweep accepted")
	}
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("want exit 2, got %v", err)
	}
	if !strings.Contains(errOut, "bogus") {
		t.Errorf("stderr does not name the bad sweep: %q", errOut)
	}
}
