// Package failpoint provides named fault-injection sites for chaos
// testing. Production code marks the places where the real world can
// fail — a disk write, a journal append, a tape extension, a scheduler
// dispatch — with failpoint.Inject("site"); tests and the chaos suite
// arm a site with an action (return an error, panic, or kill the
// process) and a hit count, either programmatically or through the
// NUCACHE_FAILPOINTS environment variable, so crash/recovery paths are
// exercised exactly where they matter.
//
// Disabled cost: when nothing is armed (the production state), Inject
// is a single atomic load and a predictable branch — no map lookup, no
// allocation, no lock. Sites therefore live on per-operation paths
// (one disk write, one journal record, one tape chunk), never inside
// per-access simulation loops.
//
// Spec grammar, both for Arm and for the environment variable
// (comma-separated site=spec pairs):
//
//	site=error        return ErrInjected on every hit
//	site=panic        panic on every hit
//	site=exit         os.Exit(ExitCode) on every hit
//	site=error@3      fire on the 3rd hit only (likewise panic@N, exit@N)
//
// Example:
//
//	NUCACHE_FAILPOINTS='journal.append=exit@7' nucache-sweep -journal j
package failpoint

import (
	"errors"
	"expvar"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvVar arms failpoints at process start: a comma-separated list of
// site=spec pairs (see the package comment). Parsed once, in an init
// function, so child processes launched by the chaos suite are armed
// before any site can be hit.
const EnvVar = "NUCACHE_FAILPOINTS"

// ExitCode is the status an exit-action failpoint terminates with. It
// is distinctive so the chaos suite can tell an injected crash from an
// ordinary failure.
const ExitCode = 41

// ErrInjected is the sentinel under every error returned by an armed
// error-action site, so callers (and tests) can recognize injected
// failures with errors.Is.
var ErrInjected = errors.New("failpoint: injected failure")

// Fired counts failpoint activations across all sites (exported as the
// nucache_failpoints_fired expvar). Exit-action sites count before the
// process dies, but the count is in-memory only.
var Fired = expvar.NewInt("nucache_failpoints_fired")

type action uint8

const (
	actError action = iota
	actPanic
	actExit
)

// arming is one armed site's state.
type arming struct {
	act   action
	after int64        // fire on exactly this hit (0 = every hit)
	hits  atomic.Int64 // hit counter, shared across goroutines
}

var (
	// armedCount gates the Inject fast path: zero means no site is
	// armed anywhere and Inject returns immediately.
	armedCount atomic.Int32

	mu    sync.Mutex
	sites = map[string]*arming{}
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ArmSpec(spec); err != nil {
			// A typo in the chaos harness must not be mistaken for "no
			// faults injected": fail loudly.
			fmt.Fprintf(os.Stderr, "failpoint: bad %s: %v\n", EnvVar, err)
			os.Exit(2)
		}
	}
}

// Enabled reports whether any site is currently armed.
func Enabled() bool { return armedCount.Load() > 0 }

// Arm arms one site with a spec like "error", "panic@2" or "exit@7".
// Re-arming a site replaces its action and resets its hit counter.
func Arm(site, spec string) error {
	act, after := actError, int64(0)
	name := spec
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		name = spec[:i]
		n, err := strconv.ParseInt(spec[i+1:], 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("failpoint: bad hit count in %q", spec)
		}
		after = n
	}
	switch name {
	case "error":
		act = actError
	case "panic":
		act = actPanic
	case "exit":
		act = actExit
	default:
		return fmt.Errorf("failpoint: unknown action %q (error|panic|exit)", name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := sites[site]; !exists {
		armedCount.Add(1)
	}
	sites[site] = &arming{act: act, after: after}
	return nil
}

// ArmSpec arms a comma-separated list of site=spec pairs (the EnvVar
// format).
func ArmSpec(list string) error {
	for _, pair := range strings.Split(list, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		site, spec, ok := strings.Cut(pair, "=")
		if !ok || site == "" {
			return fmt.Errorf("failpoint: bad pair %q (want site=action[@N])", pair)
		}
		if err := Arm(site, spec); err != nil {
			return err
		}
	}
	return nil
}

// Disarm removes one site's arming (no-op if it was not armed).
func Disarm(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := sites[site]; exists {
		delete(sites, site)
		armedCount.Add(-1)
	}
}

// Reset disarms every site. Tests use it in cleanup so one test's
// arming cannot leak into another.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for site := range sites {
		delete(sites, site)
		armedCount.Add(-1)
	}
}

// Inject is the site marker. Disabled (the production state) it costs
// one atomic load; armed, it counts the hit and fires the configured
// action when the hit count matches: error actions return a non-nil
// error wrapping ErrInjected, panic actions panic, and exit actions
// terminate the process with ExitCode — an unclean kill, exactly like
// SIGKILL at that site, which is what crash-recovery tests need.
func Inject(site string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return injectSlow(site)
}

func injectSlow(site string) error {
	mu.Lock()
	a := sites[site]
	mu.Unlock()
	if a == nil {
		return nil
	}
	n := a.hits.Add(1)
	if a.after > 0 && n != a.after {
		return nil
	}
	Fired.Add(1)
	switch a.act {
	case actPanic:
		panic(fmt.Sprintf("failpoint: site %s fired (hit %d)", site, n))
	case actExit:
		fmt.Fprintf(os.Stderr, "failpoint: site %s fired (hit %d): exiting %d\n", site, n, ExitCode)
		os.Exit(ExitCode)
	}
	return fmt.Errorf("failpoint: site %s fired (hit %d): %w", site, n, ErrInjected)
}

// Hits reports how many times an armed site has been reached (0 when
// the site is not armed). For tests.
func Hits(site string) int64 {
	mu.Lock()
	a := sites[site]
	mu.Unlock()
	if a == nil {
		return 0
	}
	return a.hits.Load()
}
