package failpoint

import (
	"errors"
	"strings"
	"testing"
)

func TestFailpointDisabledIsNoop(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("no site armed, Enabled() = true")
	}
	if err := Inject("never.armed"); err != nil {
		t.Fatalf("disabled Inject returned %v", err)
	}
}

func TestFailpointErrorEveryHit(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("a.site", "error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		err := Inject("a.site")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i+1, err)
		}
	}
	if got := Hits("a.site"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
	// Unrelated sites stay quiet while another site is armed.
	if err := Inject("other.site"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
}

func TestFailpointFireOnNthHit(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("nth.site", "error@3"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Inject("nth.site")
		if i == 3 && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit 3 did not fire: %v", err)
		}
		if i != 3 && err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", i, err)
		}
	}
}

func TestFailpointPanicAction(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("p.site", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "p.site") {
			t.Fatalf("recover() = %v, want panic naming the site", r)
		}
	}()
	Inject("p.site")
	t.Fatal("panic action did not panic")
}

func TestArmSpecParsesLists(t *testing.T) {
	t.Cleanup(Reset)
	if err := ArmSpec("one=error, two=exit@7 ,three=panic@2"); err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"one", "two", "three"} {
		mu.Lock()
		_, ok := sites[site]
		mu.Unlock()
		if !ok {
			t.Fatalf("site %q not armed", site)
		}
	}
	for _, bad := range []string{"x", "x=boom", "x=error@0", "x=exit@-1", "=error"} {
		Reset()
		if err := ArmSpec(bad); err == nil {
			t.Fatalf("ArmSpec(%q) accepted", bad)
		}
	}
}

func TestDisarmAndReset(t *testing.T) {
	t.Cleanup(Reset)
	if err := Arm("d.site", "error"); err != nil {
		t.Fatal(err)
	}
	Disarm("d.site")
	if err := Inject("d.site"); err != nil {
		t.Fatalf("disarmed site fired: %v", err)
	}
	Disarm("d.site") // disarming twice is fine
	if Enabled() {
		t.Fatal("Enabled() after all sites disarmed")
	}
}
