package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic "NUTR" | version byte | records...
//
// Each record is delta-encoded against the previous one to keep traces
// small: zig-zag varint PC delta, zig-zag varint address delta, then a
// varint holding (gap << 1 | kind).
const (
	formatMagic   = "NUTR"
	formatVersion = 1
)

// ErrBadFormat reports a malformed or truncated binary trace.
var ErrBadFormat = errors.New("trace: bad format")

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer serializes accesses to the binary trace format.
type Writer struct {
	w        *bufio.Writer
	prevPC   uint64
	prevAddr uint64
	started  bool
	buf      [3 * binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer targeting w. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one access record.
func (w *Writer) Write(a Access) error {
	n := binary.PutUvarint(w.buf[:], zigzag(int64(a.PC-w.prevPC)))
	n += binary.PutUvarint(w.buf[n:], zigzag(int64(a.Addr-w.prevAddr)))
	n += binary.PutUvarint(w.buf[n:], uint64(a.Gap)<<1|uint64(a.Kind&1))
	w.prevPC, w.prevAddr = a.PC, a.Addr
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a binary trace produced by Writer. It implements Stream.
type Reader struct {
	r        *bufio.Reader
	prevPC   uint64
	prevAddr uint64
	err      error
}

// NewReader validates the header and returns a streaming decoder.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(formatMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadFormat, err)
	}
	if string(magic) != formatMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing version: %v", ErrBadFormat, err)
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	return &Reader{r: br}, nil
}

// Next implements Stream. Decoding errors terminate the stream; check Err.
func (r *Reader) Next() (Access, bool) {
	if r.err != nil {
		return Access{}, false
	}
	dpc, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		return Access{}, false
	}
	daddr, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: truncated record: %v", ErrBadFormat, err)
		return Access{}, false
	}
	gk, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = fmt.Errorf("%w: truncated record: %v", ErrBadFormat, err)
		return Access{}, false
	}
	r.prevPC += uint64(unzigzag(dpc))
	r.prevAddr += uint64(unzigzag(daddr))
	return Access{
		PC:   r.prevPC,
		Addr: r.prevAddr,
		Kind: Kind(gk & 1),
		Gap:  uint32(gk >> 1),
	}, true
}

// Err reports any decoding error encountered (nil on clean EOF).
func (r *Reader) Err() error { return r.err }
