package trace

import (
	"testing"
)

// fuzzTape builds a small valid tape for the seed corpus.
func fuzzTape() *FilteredTrace {
	tr := &FilteredTrace{}
	evs := []FilteredEvent{
		{Addr: 0x1000, PC: 0x400000, Kind: Load, CycleGap: 3, InstrGap: 2},
		{Addr: 0x40, PC: 0x400004, Kind: Store, CycleGap: 900, InstrGap: 130,
			HasWB: true, WBAddr: 0x7fc0, WBPC: 0x400008},
		{Addr: 0xdeadbeef00, PC: 0x7ffffff0, Kind: Load, CycleGap: 0, InstrGap: 0},
		{Addr: 0x1000, PC: 0x400000, Kind: Store, CycleGap: 1 << 30, InstrGap: 1 << 20,
			HasWB: true, WBAddr: 0, WBPC: 0},
	}
	for _, ev := range evs {
		tr.AppendEvent(ev)
	}
	return tr
}

// FuzzFilteredDecode throws truncated, bit-flipped and arbitrary byte
// strings at the delta/varint event decoder. The contract under
// corruption: Next returns an error (callers then fall back to direct
// simulation) or cleanly reports exhaustion — it must never panic,
// never loop without consuming input, and never read out of bounds.
// Silent mis-decodes of *valid* tapes are covered by the differential
// replay suite; here the decoded values are unconstrained, only the
// decoder's memory safety and termination are.
func FuzzFilteredDecode(f *testing.F) {
	tr := fuzzTape()
	buf, events, _ := tr.Snapshot()
	f.Add(append([]byte(nil), buf...), events)
	f.Add(append([]byte(nil), buf[:len(buf)-1]...), events) // truncated tail
	f.Add(append([]byte(nil), buf[:1]...), events)          // flags byte only
	flip := append([]byte(nil), buf...)
	flip[len(flip)/2] ^= 0x80 // turn a terminal varint byte into a continuation
	f.Add(flip, events)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint64(4))
	f.Add([]byte{}, uint64(1))

	f.Fuzz(func(t *testing.T, data []byte, claimed uint64) {
		// The claimed event count is attacker-controlled too (it comes
		// from the same tape state the bytes do); bound only the test's
		// runtime, not the decoder's input.
		if claimed > uint64(len(data))+16 {
			claimed = uint64(len(data)) + 16
		}
		var c FilteredCursor
		c.Rebase(data, claimed)
		var ev FilteredEvent
		prevOff := 0
		for {
			ok, err := c.Next(&ev)
			if err != nil {
				return // detected corruption: the required outcome
			}
			if !ok {
				return // snapshot exhausted
			}
			if c.off <= prevOff {
				t.Fatalf("decoder made no progress at offset %d", c.off)
			}
			prevOff = c.off
		}
	})
}

// TestFilteredDecodeTruncations exhaustively truncates a valid tape at
// every byte: each prefix must decode some events and then stop with
// (false, nil) at an event boundary or an error inside one — never a
// panic and never a fabricated event from half-read bytes.
func TestFilteredDecodeTruncations(t *testing.T) {
	tr := fuzzTape()
	buf, events, _ := tr.Snapshot()
	for cut := 0; cut <= len(buf); cut++ {
		var c FilteredCursor
		c.Rebase(buf[:cut], events)
		var ev FilteredEvent
		n := uint64(0)
		for {
			ok, err := c.Next(&ev)
			if err != nil {
				break
			}
			if !ok {
				break
			}
			n++
		}
		if cut == len(buf) && n != events {
			t.Fatalf("full tape decoded %d of %d events", n, events)
		}
		if n > events {
			t.Fatalf("cut at %d: decoded %d events from a %d-event tape", cut, n, events)
		}
	}
}
