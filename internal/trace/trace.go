// Package trace defines the memory-access trace representation used
// throughout the simulator: a stream of (PC, address, kind, gap) records,
// where gap is the number of non-memory instructions retired since the
// previous memory access. Streams may be generated synthetically
// (internal/workload), captured to buffers, or serialized to a compact
// binary format for replay.
package trace

import "fmt"

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Load is a memory read.
	Load Kind = iota
	// Store is a memory write.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is a single memory access record.
//
// PC identifies the static instruction that issued the access. In
// multiprogrammed runs the CPU model tags PCs with the core index so that
// PC-indexed mechanisms (like NUcache's chosen-PC set) never alias across
// programs, mirroring how the hardware proposal tracks per-core PCs.
type Access struct {
	PC   uint64
	Addr uint64
	Kind Kind
	// Gap is the number of non-memory instructions retired immediately
	// before this access; the timing model charges one cycle each.
	Gap uint32
}

// Stream is a pull-based source of accesses. Next returns the next access
// and true, or a zero Access and false when the stream is exhausted.
// Streams are single-use; sources that can be replayed return fresh
// streams from their factory (see workload.Benchmark.Stream).
type Stream interface {
	Next() (Access, bool)
}

// SliceStream replays a slice of accesses.
type SliceStream struct {
	accesses []Access
	pos      int
}

// NewSliceStream returns a Stream over the given accesses.
// The slice is not copied; callers must not mutate it during replay.
func NewSliceStream(accesses []Access) *SliceStream {
	return &SliceStream{accesses: accesses}
}

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.accesses) {
		return Access{}, false
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, true
}

// Len returns the total number of accesses in the underlying slice.
func (s *SliceStream) Len() int { return len(s.accesses) }

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Collect drains up to max accesses from a stream into a slice.
// max <= 0 drains the entire stream.
func Collect(s Stream, max int) []Access {
	var out []Access
	for max <= 0 || len(out) < max {
		a, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

// LimitStream truncates an underlying stream after n accesses.
type LimitStream struct {
	inner Stream
	left  int
}

// NewLimitStream returns a stream yielding at most n accesses from inner.
func NewLimitStream(inner Stream, n int) *LimitStream {
	return &LimitStream{inner: inner, left: n}
}

// Next implements Stream.
func (s *LimitStream) Next() (Access, bool) {
	if s.left <= 0 {
		return Access{}, false
	}
	a, ok := s.inner.Next()
	if !ok {
		s.left = 0
		return Access{}, false
	}
	s.left--
	return a, true
}

// FilterStream yields only accesses for which keep returns true. Gaps of
// dropped accesses are accumulated onto the next kept access so instruction
// counts stay consistent.
type FilterStream struct {
	inner Stream
	keep  func(Access) bool
}

// NewFilterStream wraps inner with a predicate.
func NewFilterStream(inner Stream, keep func(Access) bool) *FilterStream {
	return &FilterStream{inner: inner, keep: keep}
}

// Next implements Stream.
func (s *FilterStream) Next() (Access, bool) {
	var pendingGap uint64
	for {
		a, ok := s.inner.Next()
		if !ok {
			return Access{}, false
		}
		if s.keep(a) {
			g := pendingGap + uint64(a.Gap)
			if g > 1<<31 {
				g = 1 << 31
			}
			a.Gap = uint32(g)
			return a, true
		}
		// The dropped access itself counts as one instruction.
		pendingGap += uint64(a.Gap) + 1
	}
}

// FuncStream adapts a generator function to the Stream interface.
type FuncStream func() (Access, bool)

// Next implements Stream.
func (f FuncStream) Next() (Access, bool) { return f() }

// ConcatStream yields all accesses of each stream in turn.
type ConcatStream struct {
	streams []Stream
}

// NewConcatStream concatenates streams in order.
func NewConcatStream(streams ...Stream) *ConcatStream {
	return &ConcatStream{streams: streams}
}

// Next implements Stream.
func (s *ConcatStream) Next() (Access, bool) {
	for len(s.streams) > 0 {
		a, ok := s.streams[0].Next()
		if ok {
			return a, true
		}
		s.streams = s.streams[1:]
	}
	return Access{}, false
}
