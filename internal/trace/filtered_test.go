package trace

import (
	"math/rand"
	"reflect"
	"testing"
)

// randEvents builds a deterministic stream of adversarial events: address
// and PC deltas of every sign and magnitude, gaps from zero to far past
// the one-byte varint fast path, and a mixture of loads, stores and
// writeback-carrying events.
func randEvents(n int, seed int64) []FilteredEvent {
	rng := rand.New(rand.NewSource(seed))
	evs := make([]FilteredEvent, n)
	addr, pc := uint64(1<<33), uint64(0x400000)
	for i := range evs {
		// Signed deltas around the running position, occasionally huge.
		jump := uint64(rng.Intn(1 << 12))
		if rng.Intn(16) == 0 {
			jump = uint64(rng.Intn(1 << 30))
		}
		if rng.Intn(2) == 0 {
			addr += jump
		} else if addr > jump {
			addr -= jump
		}
		pc = 0x400000 + uint64(rng.Intn(1<<20))*4
		ev := FilteredEvent{
			Addr:     addr &^ 63,
			PC:       pc,
			Kind:     Load,
			CycleGap: uint64(rng.Intn(1 << 18)),
			InstrGap: uint64(rng.Intn(1 << 10)),
		}
		if rng.Intn(2) == 0 {
			ev.Kind = Store
		}
		if rng.Intn(3) == 0 {
			ev.HasWB = true
			ev.WBAddr = (addr + uint64(rng.Intn(1<<16))) &^ 63
			ev.WBPC = 0x400000 + uint64(rng.Intn(1<<20))*4
		}
		evs[i] = ev
	}
	return evs
}

// TestFilteredRoundTrip: every event that goes through AppendEvent comes
// back bit-identical from a FilteredCursor.
func TestFilteredRoundTrip(t *testing.T) {
	evs := randEvents(5000, 1)
	tr := &FilteredTrace{}
	for _, ev := range evs {
		tr.AppendEvent(ev)
	}
	if got := tr.Events(); got != uint64(len(evs)) {
		t.Fatalf("Events() = %d, want %d", got, len(evs))
	}
	if bpe := float64(tr.Bytes()) / float64(len(evs)); bpe > 16 {
		t.Errorf("packed encoding uses %.1f bytes/event, budget is 16", bpe)
	}

	buf, events, _ := tr.Snapshot()
	var cur FilteredCursor
	cur.Rebase(buf, events)
	for i, want := range evs {
		var got FilteredEvent
		ok, err := cur.Next(&got)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("cursor ended at event %d of %d", i, len(evs))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d round-trip mismatch\ngot:  %+v\nwant: %+v", i, got, want)
		}
	}
	var extra FilteredEvent
	if ok, _ := cur.Next(&extra); ok {
		t.Fatal("cursor produced an event past the end")
	}
}

// TestFilteredResumeCursor: a cursor rebuilt from a mid-stream Pos()
// capture decodes the tail exactly as a cursor that read from the start.
func TestFilteredResumeCursor(t *testing.T) {
	evs := randEvents(2000, 2)
	tr := &FilteredTrace{}
	cut := 1234
	for _, ev := range evs[:cut] {
		tr.AppendEvent(ev)
	}
	off, prevAddr, prevPC := tr.Pos()
	for _, ev := range evs[cut:] {
		tr.AppendEvent(ev)
	}

	buf, events, _ := tr.Snapshot()
	cur := ResumeCursor(off, prevAddr, prevPC, uint64(cut))
	cur.Rebase(buf, events)
	if got := cur.Decoded(); got != uint64(cut) {
		t.Fatalf("Decoded() = %d, want %d", got, cut)
	}
	for i, want := range evs[cut:] {
		var got FilteredEvent
		ok, err := cur.Next(&got)
		if err != nil || !ok {
			t.Fatalf("resumed event %d: ok=%v err=%v", cut+i, ok, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resumed event %d mismatch\ngot:  %+v\nwant: %+v", cut+i, got, want)
		}
	}
}

// TestFilteredCursorRebaseGrowth: a cursor that drains a short snapshot
// continues seamlessly after Rebase onto a longer snapshot of the same
// tape — the incremental-extension pattern the tape cache relies on.
func TestFilteredCursorRebaseGrowth(t *testing.T) {
	evs := randEvents(300, 3)
	tr := &FilteredTrace{}
	for _, ev := range evs[:100] {
		tr.AppendEvent(ev)
	}
	buf, events, _ := tr.Snapshot()
	var cur FilteredCursor
	cur.Rebase(buf, events)
	var got FilteredEvent
	for i := 0; i < 100; i++ {
		if ok, err := cur.Next(&got); !ok || err != nil {
			t.Fatalf("event %d: ok=%v err=%v", i, ok, err)
		}
	}
	if ok, _ := cur.Next(&got); ok {
		t.Fatal("cursor ran past its snapshot")
	}
	for _, ev := range evs[100:] {
		tr.AppendEvent(ev)
	}
	buf, events, _ = tr.Snapshot()
	cur.Rebase(buf, events)
	for i, want := range evs[100:] {
		if ok, err := cur.Next(&got); !ok || err != nil {
			t.Fatalf("post-rebase event %d: ok=%v err=%v", 100+i, ok, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-rebase event %d mismatch\ngot:  %+v\nwant: %+v", 100+i, got, want)
		}
	}
}

// TestFilteredCrossings: crossings ride the tape untouched and in order.
func TestFilteredCrossings(t *testing.T) {
	tr := &FilteredTrace{}
	want := []Crossing{
		{Kind: CrossWarmup, AfterEvents: 0, PStart: 10, PEnd: 12, Instr: 100},
		{Kind: CrossRecord, AfterEvents: 2, OnEvent: true, PStart: 50, PEnd: 55, Instr: 900, Mem: 40, L1Hits: 30, L1Misses: 10},
		{Kind: CrossExhaust, AfterEvents: 2, PStart: 60, PEnd: 60},
	}
	for _, c := range want {
		tr.AppendCrossing(c)
	}
	if got := tr.Crossings(); !reflect.DeepEqual(got, want) {
		t.Fatalf("crossings mismatch\ngot:  %+v\nwant: %+v", got, want)
	}
	if tr.Complete() {
		t.Fatal("trace complete before MarkComplete")
	}
	tr.MarkComplete()
	if !tr.Complete() {
		t.Fatal("trace not complete after MarkComplete")
	}
}
