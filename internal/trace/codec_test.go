package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, in []Access) []Access {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range in {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := Collect(r, -1)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	in := sample(100)
	out := roundTrip(t, in)
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(pcs, addrs []uint32, kinds []bool) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		in := make([]Access, n)
		for i := 0; i < n; i++ {
			k := Load
			if kinds[i] {
				k = Store
			}
			in[i] = Access{PC: uint64(pcs[i]), Addr: uint64(addrs[i]) << 6, Kind: k, Gap: pcs[i] % 1000}
		}
		out := roundTrip(t, in)
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecCompactness(t *testing.T) {
	// Sequential access patterns should compress well below 24 bytes/record.
	in := make([]Access, 10000)
	for i := range in {
		in[i] = Access{PC: 0x400120, Addr: uint64(i) * 64, Kind: Load, Gap: 3}
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for _, a := range in {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	perRecord := float64(buf.Len()) / float64(len(in))
	if perRecord > 6 {
		t.Fatalf("%.1f bytes/record, want <= 6 for sequential trace", perRecord)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad magic err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("NU"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("short header err = %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("NUTR\x7f"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("bad version err = %v", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Write(Access{PC: 100, Addr: 4096, Gap: 7}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	full := buf.Bytes()
	// Chop mid-record (header is 5 bytes; keep header + 1 byte).
	r, err := NewReader(bytes.NewReader(full[:6]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if !errors.Is(r.Err(), ErrBadFormat) {
		t.Fatalf("Err = %v", r.Err())
	}
	// Next after error keeps returning false.
	if _, ok := r.Next(); ok {
		t.Fatal("stream continued after error")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round-trip %d -> %d", v, got)
		}
	}
}
