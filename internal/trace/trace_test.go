package trace

import (
	"testing"
	"testing/quick"
)

func sample(n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = Access{
			PC:   uint64(0x400000 + (i%7)*4),
			Addr: uint64(i * 64),
			Kind: Kind(i % 2),
			Gap:  uint32(i % 5),
		}
	}
	return out
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("got %q", Kind(9).String())
	}
}

func TestSliceStream(t *testing.T) {
	in := sample(5)
	s := NewSliceStream(in)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := Collect(s, -1)
	if len(got) != 5 {
		t.Fatalf("collected %d", len(got))
	}
	for i := range got {
		if got[i] != in[i] {
			t.Fatalf("access %d mismatch", i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded")
	}
	s.Reset()
	if a, ok := s.Next(); !ok || a != in[0] {
		t.Fatal("reset failed")
	}
}

func TestCollectMax(t *testing.T) {
	s := NewSliceStream(sample(10))
	got := Collect(s, 3)
	if len(got) != 3 {
		t.Fatalf("collected %d", len(got))
	}
}

func TestLimitStream(t *testing.T) {
	s := NewLimitStream(NewSliceStream(sample(10)), 4)
	if got := len(Collect(s, -1)); got != 4 {
		t.Fatalf("limit yielded %d", got)
	}
	empty := NewLimitStream(NewSliceStream(sample(2)), 10)
	if got := len(Collect(empty, -1)); got != 2 {
		t.Fatalf("short inner yielded %d", got)
	}
	if _, ok := empty.Next(); ok {
		t.Fatal("yielded after inner exhausted")
	}
}

func TestFilterStreamAccumulatesGaps(t *testing.T) {
	in := []Access{
		{PC: 1, Addr: 0, Gap: 2},
		{PC: 2, Addr: 64, Gap: 3}, // dropped: contributes 3+1 to next gap
		{PC: 1, Addr: 128, Gap: 1},
	}
	s := NewFilterStream(NewSliceStream(in), func(a Access) bool { return a.PC == 1 })
	got := Collect(s, -1)
	if len(got) != 2 {
		t.Fatalf("kept %d", len(got))
	}
	if got[0].Gap != 2 {
		t.Fatalf("first gap = %d", got[0].Gap)
	}
	if got[1].Gap != 1+3+1 {
		t.Fatalf("second gap = %d, want 5", got[1].Gap)
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Access, bool) {
		if n >= 3 {
			return Access{}, false
		}
		n++
		return Access{PC: uint64(n)}, true
	})
	if got := len(Collect(s, -1)); got != 3 {
		t.Fatalf("func stream yielded %d", got)
	}
}

func TestConcatStream(t *testing.T) {
	a := NewSliceStream(sample(2))
	b := NewSliceStream(sample(3))
	s := NewConcatStream(a, b)
	if got := len(Collect(s, -1)); got != 5 {
		t.Fatalf("concat yielded %d", got)
	}
	empty := NewConcatStream()
	if _, ok := empty.Next(); ok {
		t.Fatal("empty concat yielded")
	}
}

func TestQuickFilterNeverYieldsDropped(t *testing.T) {
	if err := quick.Check(func(pcs []uint8) bool {
		in := make([]Access, len(pcs))
		for i, p := range pcs {
			in[i] = Access{PC: uint64(p)}
		}
		s := NewFilterStream(NewSliceStream(in), func(a Access) bool { return a.PC%2 == 0 })
		for {
			a, ok := s.Next()
			if !ok {
				return true
			}
			if a.PC%2 != 0 {
				return false
			}
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLimitStreamZero(t *testing.T) {
	s := NewLimitStream(NewSliceStream(sample(3)), 0)
	if _, ok := s.Next(); ok {
		t.Fatal("zero-limit stream yielded")
	}
}

func TestFilterStreamGapSaturation(t *testing.T) {
	// Dropping billions of accesses must saturate, not wrap, the gap.
	in := make([]Access, 0, 3)
	in = append(in, Access{PC: 2, Gap: 1<<31 - 1})
	in = append(in, Access{PC: 2, Gap: 1<<31 - 1})
	in = append(in, Access{PC: 1, Gap: 5})
	s := NewFilterStream(NewSliceStream(in), func(a Access) bool { return a.PC == 1 })
	a, ok := s.Next()
	if !ok {
		t.Fatal("kept access missing")
	}
	if a.Gap != 1<<31 {
		t.Fatalf("gap = %d, want saturated 1<<31", a.Gap)
	}
}
