package trace

import (
	"encoding/binary"
	"fmt"
)

// This file defines the L1-filtered trace: the compact, policy-independent
// record of everything a core's private cache hierarchy emits toward the
// shared LLC. The CPU model's record pass (internal/cpu) runs the
// generator and private L1/L2 once and appends events here; replay runs
// drive only the shared LLC from the buffer, once per policy.
//
// An event is one private-hierarchy miss: the demand access that reaches
// the LLC, the dirty private victim (if any) that is written back behind
// it, and the policy-independent cycle/instruction gap since the previous
// event. Gaps are what make deterministic replay possible: the global
// interleaving of LLC accesses in the direct simulator is fully determined
// by each core's policy-independent cycles plus the policy-dependent LLC
// service latencies, which replay re-derives per policy.
//
// Events are packed with delta/varint encoding (~9-12 bytes each against
// the 16-byte budget): a flags byte, zig-zag address and PC deltas against
// the previous event, cycle and instruction gap varints, and, for events
// with a writeback, the victim's line address and PC as deltas against the
// event's own address and PC.

// FilteredEvent is one decoded LLC-bound event.
type FilteredEvent struct {
	// Addr and PC are the demand access, untagged (no core bits); the
	// replay engine applies the per-core address/PC tagging.
	Addr uint64
	PC   uint64
	// Kind is the demand access kind.
	Kind Kind
	// CycleGap is the policy-independent cycles between the start of the
	// previous event's step and the start of this event's step (workload
	// gaps plus L1/L2 hit latencies; LLC and memory service time is
	// excluded and re-derived at replay time). For the first event it
	// counts from cycle zero.
	CycleGap uint64
	// InstrGap is the instructions retired over the same interval.
	InstrGap uint64
	// HasWB reports that the deepest private level evicted a dirty line,
	// which the LLC sees as a posted store right after the demand access.
	HasWB bool
	// WBAddr is the victim's line address (untagged); WBPC the PC that
	// filled it. Valid only when HasWB.
	WBAddr uint64
	WBPC   uint64
}

// CrossKind labels a per-core measurement boundary.
type CrossKind uint8

const (
	// CrossWarmup is the end of the warm-up region (statistics re-base).
	CrossWarmup CrossKind = iota
	// CrossRecord is the instruction-budget snapshot.
	CrossRecord
	// CrossExhaust is stream exhaustion (the core stops issuing).
	CrossExhaust
)

// Crossing records a measurement boundary of the recording core: the
// policy-independent half of the statistics snapshot the direct simulator
// takes when a core crosses its warm-up or budget threshold, or when its
// stream runs dry. The policy-dependent half (cycles spent in LLC/memory
// service, per-core LLC hit/miss counters) is reconstructed at replay
// time from the replayed events.
type Crossing struct {
	Kind CrossKind
	// AfterEvents is the number of events already emitted when the
	// crossing step completes; replay applies the crossing once that many
	// events have been replayed.
	AfterEvents uint64
	// OnEvent reports that the crossing happened on an event step itself
	// (the access counted by AfterEvents); replay then applies it
	// immediately after that event instead of scheduling it separately.
	OnEvent bool
	// PStart and PEnd are the core's cumulative policy-independent cycles
	// at the start and end of the crossing step. The crossing is ordered
	// against other cores at PStart plus replayed service time; the
	// snapshot's cycle count is PEnd plus replayed service time.
	PStart, PEnd uint64
	// Instr, Mem, L1Hits and L1Misses are the core-cumulative counters at
	// the snapshot (all policy-independent).
	Instr, Mem, L1Hits, L1Misses uint64
}

// FilteredTrace is an append-only tape of events and crossings for one
// core. It is written once by the record pass and read concurrently by
// replay cursors; appended bytes are immutable, so cursors may keep
// reading a stale slice header while the writer grows the tape (the
// synchronization that publishes new bytes to readers lives in the
// owner, internal/cpu's tape cache).
type FilteredTrace struct {
	buf       []byte
	events    uint64
	crossings []Crossing
	complete  bool

	// Encoder state: previous event for delta encoding.
	prevAddr uint64
	prevPC   uint64
}

// Events returns the number of events appended so far.
func (t *FilteredTrace) Events() uint64 { return t.events }

// Crossings returns the crossing list (append-only; do not mutate).
func (t *FilteredTrace) Crossings() []Crossing { return t.crossings }

// Bytes returns the current size of the packed event buffer.
func (t *FilteredTrace) Bytes() int { return len(t.buf) }

// Complete reports that the underlying stream was exhausted: the tape is
// final and running off its end means the core genuinely stopped.
func (t *FilteredTrace) Complete() bool { return t.complete }

// MarkComplete finalizes the tape (stream exhausted).
func (t *FilteredTrace) MarkComplete() { t.complete = true }

const (
	flagStore = 1 << 0
	flagWB    = 1 << 1
)

// AppendEvent packs one event onto the tape.
func (t *FilteredTrace) AppendEvent(ev FilteredEvent) {
	flags := byte(0)
	if ev.Kind == Store {
		flags |= flagStore
	}
	if ev.HasWB {
		flags |= flagWB
	}
	b := append(t.buf, flags)
	b = appendUvarint(b, zigzag(int64(ev.Addr-t.prevAddr)))
	b = appendUvarint(b, zigzag(int64(ev.PC-t.prevPC)))
	b = appendUvarint(b, ev.CycleGap)
	b = appendUvarint(b, ev.InstrGap)
	if ev.HasWB {
		b = appendUvarint(b, zigzag(int64(ev.WBAddr-ev.Addr)))
		b = appendUvarint(b, zigzag(int64(ev.WBPC-ev.PC)))
	}
	t.buf = b
	t.prevAddr, t.prevPC = ev.Addr, ev.PC
	t.events++
}

// AppendCrossing records a measurement boundary.
func (t *FilteredTrace) AppendCrossing(c Crossing) {
	t.crossings = append(t.crossings, c)
}

// Pos reports the encoder's current position — packed length and the
// delta bases the next AppendEvent will diff against — so a cursor can
// later resume decoding from exactly here (ResumeCursor).
func (t *FilteredTrace) Pos() (off int, prevAddr, prevPC uint64) {
	return len(t.buf), t.prevAddr, t.prevPC
}

// Snapshot returns the current readable region of the tape for a cursor:
// the packed buffer, the event count it holds, and the crossing list.
// The returned slices are immutable prefixes; the writer only appends.
func (t *FilteredTrace) Snapshot() (buf []byte, events uint64, crossings []Crossing) {
	return t.buf, t.events, t.crossings
}

// FilteredCursor decodes events sequentially from a tape snapshot. When
// it exhausts the snapshot the owner refreshes it with a newer one (same
// tape, more bytes) via Rebase.
type FilteredCursor struct {
	buf      []byte
	off      int
	decoded  uint64 // events decoded so far
	limit    uint64 // events available in buf
	prevAddr uint64
	prevPC   uint64
}

// Rebase points the cursor at a (possibly longer) snapshot of the same
// tape. The decode offset is preserved: snapshots of an append-only tape
// agree on every byte the cursor has already consumed.
func (c *FilteredCursor) Rebase(buf []byte, events uint64) {
	c.buf = buf
	c.limit = events
}

// ResumeCursor builds a cursor positioned mid-tape at an encoder
// position captured by Pos after `decoded` events had been appended.
// The caller must Rebase it onto a snapshot before decoding.
func ResumeCursor(off int, prevAddr, prevPC uint64, decoded uint64) FilteredCursor {
	return FilteredCursor{off: off, decoded: decoded, prevAddr: prevAddr, prevPC: prevPC}
}

// Decoded returns the number of events decoded so far.
func (c *FilteredCursor) Decoded() uint64 { return c.decoded }

// Next decodes the next event into ev. It returns false when the current
// snapshot is exhausted (Rebase with a longer snapshot and retry, or the
// tape truly ended).
func (c *FilteredCursor) Next(ev *FilteredEvent) (bool, error) {
	if c.decoded >= c.limit {
		return false, nil
	}
	buf := c.buf[c.off:]
	if len(buf) == 0 {
		return false, fmt.Errorf("trace: filtered tape truncated at event %d", c.decoded)
	}
	// Every varint read is bounds-checked individually: a truncated or
	// bit-flipped tape must surface as an error (the caller falls back to
	// direct simulation), never as a panic or a silent mis-decode. An
	// unchecked k<=0 would leave n stuck (truncation) or drag it
	// backwards (overlong varint ⇒ negative k ⇒ out-of-range index).
	flags := buf[0]
	n := 1
	da, k := uvarint(buf, n)
	if k <= 0 {
		return false, fmt.Errorf("trace: corrupt filtered tape at event %d", c.decoded)
	}
	n += k
	dp, k := uvarint(buf, n)
	if k <= 0 {
		return false, fmt.Errorf("trace: corrupt filtered tape at event %d", c.decoded)
	}
	n += k
	cyc, k := uvarint(buf, n)
	if k <= 0 {
		return false, fmt.Errorf("trace: corrupt filtered tape at event %d", c.decoded)
	}
	n += k
	ins, k := uvarint(buf, n)
	if k <= 0 {
		return false, fmt.Errorf("trace: corrupt filtered tape at event %d", c.decoded)
	}
	n += k
	c.prevAddr += uint64(unzigzag(da))
	c.prevPC += uint64(unzigzag(dp))
	ev.Addr = c.prevAddr
	ev.PC = c.prevPC
	ev.Kind = Load
	if flags&flagStore != 0 {
		ev.Kind = Store
	}
	ev.CycleGap = cyc
	ev.InstrGap = ins
	ev.HasWB = flags&flagWB != 0
	if ev.HasWB {
		dwa, k2 := uvarint(buf, n)
		if k2 <= 0 {
			return false, fmt.Errorf("trace: corrupt filtered tape at event %d", c.decoded)
		}
		n += k2
		dwp, k2 := uvarint(buf, n)
		if k2 <= 0 {
			return false, fmt.Errorf("trace: corrupt filtered tape at event %d", c.decoded)
		}
		n += k2
		ev.WBAddr = ev.Addr + uint64(unzigzag(dwa))
		ev.WBPC = ev.PC + uint64(unzigzag(dwp))
	} else {
		ev.WBAddr, ev.WBPC = 0, 0
	}
	c.off += n
	c.decoded++
	return true, nil
}

// uvarint is binary.Uvarint with a single-byte fast path: gap and delta
// varints on the decode path are overwhelmingly one byte, and skipping
// the general loop (and the sub-slice) for them is measurable under the
// replay engine.
func uvarint(buf []byte, off int) (uint64, int) {
	if off < len(buf) {
		if b := buf[off]; b < 0x80 {
			return uint64(b), 1
		}
	}
	return binary.Uvarint(buf[off:])
}

// appendUvarint is binary.AppendUvarint with the same single-byte fast
// path on the encode side.
func appendUvarint(b []byte, v uint64) []byte {
	if v < 0x80 {
		return append(b, byte(v))
	}
	return binary.AppendUvarint(b, v)
}
