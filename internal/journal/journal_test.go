package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nucache/internal/failpoint"
)

func openAll(t *testing.T, path string) (*Journal, [][]byte) {
	t.Helper()
	var got [][]byte
	j, err := Open(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return j, got
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]byte{[]byte("one"), []byte(`{"key":"two"}`), {}, []byte("four")}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != len(recs) {
		t.Fatalf("Records = %d, want %d", j.Records(), len(recs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := openAll(t, path)
	defer j2.Close()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if j2.ResumedRecords() != len(recs) || j2.TornTailsSeen() != 0 {
		t.Fatalf("resumed=%d torn=%d, want %d/0", j2.ResumedRecords(), j2.TornTailsSeen(), len(recs))
	}
}

// TestJournalTornTail cuts the file at every possible byte inside the
// final record and checks that reopen always recovers the earlier
// records, counts one torn tail, and appends cleanly afterwards.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	build := func(path string) {
		j, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []string{"alpha", "beta", "gamma"} {
			if err := j.Append([]byte(r)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ref := filepath.Join(dir, "ref")
	build(ref)
	whole, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := 8 + len("gamma")
	goodEnd := len(whole) - lastLen
	for cut := goodEnd + 1; cut < len(whole); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d", cut))
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, got := openAll(t, path)
		if len(got) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(got))
		}
		if j.TornTailsSeen() != 1 {
			t.Fatalf("cut at %d: torn tails = %d, want 1", cut, j.TornTailsSeen())
		}
		// The torn cell recomputes and re-appends; reopen must then see 3.
		if err := j.Append([]byte("gamma")); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, got2 := openAll(t, path)
		j2.Close()
		if len(got2) != 3 || string(got2[2]) != "gamma" {
			t.Fatalf("cut at %d: after re-append got %d records (%q)", cut, len(got2), got2)
		}
	}
}

// TestJournalBitFlip flips one byte inside an early record: the
// corruption severs that record and everything after it (sequential
// framing), and appends after reopen remain durable.
func TestJournalBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"alpha", "beta", "gamma"} {
		if err := j.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, _ := os.ReadFile(path)
	data[4+len("alpha")+4+4+1] ^= 0x40 // inside "beta"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, got := openAll(t, path)
	defer j2.Close()
	if len(got) != 1 || string(got[0]) != "alpha" {
		t.Fatalf("replayed %q, want just alpha", got)
	}
	if j2.TornTailsSeen() != 1 {
		t.Fatalf("torn tails = %d, want 1", j2.TornTailsSeen())
	}
}

func TestJournalOpenCreatesMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh")
	j, err := Open(path, func([]byte) error {
		t.Fatal("replay callback on an empty journal")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Records() != 0 {
		t.Fatalf("Records = %d, want 0", j.Records())
	}
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
}

func TestJournalReplayErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := Create(path)
	j.Append([]byte("x"))
	j.Close()
	want := errors.New("boom")
	if _, err := Open(path, func([]byte) error { return want }); !errors.Is(err, want) {
		t.Fatalf("Open err = %v, want wrapped boom", err)
	}
}

// TestJournalAppendFailpointRewinds arms the torn-write failpoint with
// an error action: the append fails, the partial record is rewound, and
// the journal stays consistent for both further appends and reopen.
func TestJournalAppendFailpointRewinds(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	path := filepath.Join(t.TempDir(), "j")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Arm("journal.append.torn", "error"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("lost")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("append err = %v, want injected", err)
	}
	failpoint.Reset()
	if err := j.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, got := openAll(t, path)
	j2.Close()
	if len(got) != 2 || string(got[0]) != "keep" || string(got[1]) != "after" {
		t.Fatalf("records after rewind = %q, want [keep after]", got)
	}

	// The pre-write site fails before any byte lands.
	if err := failpoint.Arm("journal.append", "error"); err != nil {
		t.Fatal(err)
	}
	j3, _ := openAll(t, path)
	if err := j3.Append([]byte("nope")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("append err = %v, want injected", err)
	}
	failpoint.Reset()
	j3.Close()
	j4, got4 := openAll(t, path)
	j4.Close()
	if len(got4) != 2 {
		t.Fatalf("records = %d, want 2", len(got4))
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := j.Append([]byte(fmt.Sprintf("rec-%02d", i))); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	j2, got := openAll(t, path)
	j2.Close()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	seen := map[string]bool{}
	for _, r := range got {
		seen[string(r)] = true
	}
	if len(seen) != n {
		t.Fatalf("duplicate/interleaved records: %d unique of %d", len(seen), n)
	}
}

func TestJournalRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, _ := Create(path)
	defer j.Close()
	if err := j.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}
