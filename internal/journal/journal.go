// Package journal implements the crash-safe checkpoint log behind
// resumable experiment sweeps: an append-only file of CRC-checksummed
// records, flushed through to disk per append, that reopens cleanly
// after a crash at any byte — a torn final record (the process died
// mid-write) is detected by framing or checksum, counted, and truncated
// away, so the journal always resumes from the last fully durable
// record.
//
// On-disk format, per record:
//
//	length  uint32 little-endian (payload bytes)
//	payload length bytes (opaque to the journal; sweeps store JSON)
//	crc     uint32 little-endian CRC-32C over length+payload
//
// There is no file header: an empty file is an empty journal, and the
// sequential framing means a corrupt record also severs everything
// after it — which is exactly the durability contract (records are
// only ever appended, so a mid-file corruption can't be "skipped"
// without guessing at framing).
package journal

import (
	"encoding/binary"
	"expvar"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"nucache/internal/failpoint"
)

// MaxRecord bounds one record's payload (64MB): a length field past it
// is treated as corruption, not an allocation request.
const MaxRecord = 64 << 20

// Journal expvars, published under /debug/vars in processes that serve
// HTTP and reported in nucache-sweep's journal summary line.
var (
	// Records counts records appended by this process (all journals).
	Records = expvar.NewInt("nucache_journal_records")
	// Resumed counts records replayed from disk on Open.
	Resumed = expvar.NewInt("nucache_journal_resumed")
	// TornTails counts torn or corrupt tails truncated on Open.
	TornTails = expvar.NewInt("nucache_journal_torn_tails")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is an append-only checkpoint log. Append is safe for
// concurrent use; Open/Close are not (open once, close once).
type Journal struct {
	// mu serializes appends; it also orders the torn-write recovery — a
	// failed append truncates back to off before the next one starts.
	mu       sync.Mutex
	f        *os.File
	path     string
	off      int64 // end of the last durable record
	appended int
	resumed  int
	torn     int
}

// Create opens a fresh journal at path, truncating any previous one.
func Create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	return &Journal{f: f, path: path}, nil
}

// Open opens (creating if absent) the journal at path and replays every
// durable record through fn, in append order. A torn or corrupt tail —
// the signature of a crash mid-append — is truncated away and counted;
// everything before it replays normally. The payload slice passed to fn
// is only valid during the call.
//
// fn returning an error aborts the open (the record itself is intact;
// the caller's replay failed).
func Open(path string, fn func(payload []byte) error) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Create(path)
		}
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j := &Journal{path: path}
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n > MaxRecord || off+8+n > len(data) {
			break // torn length or truncated payload
		}
		body := data[off : off+4+n]
		crc := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.Checksum(body, crcTable) != crc {
			break // torn or bit-flipped record
		}
		if fn != nil {
			if err := fn(body[4:]); err != nil {
				return nil, fmt.Errorf("journal: replay %s record %d: %w", path, j.resumed, err)
			}
		}
		j.resumed++
		off += 8 + n
	}
	Resumed.Add(int64(j.resumed))
	if off < len(data) {
		j.torn++
		TornTails.Add(1)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: reopen %s: %w", path, err)
	}
	// Truncating the torn tail (a no-op when off == len) keeps the next
	// append from landing after garbage, which would sever it from every
	// future reopen.
	if err := f.Truncate(int64(off)); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
	}
	j.f = f
	j.off = int64(off)
	return j, nil
}

// Append writes one record and flushes it to disk before returning: a
// crash after Append returns cannot lose the record, and a crash during
// it leaves a torn tail the next Open truncates. On any failure the
// file is rewound to the last durable record, so a partially written
// record never poisons subsequent appends within this process either.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	if err := failpoint.Inject("journal.append"); err != nil {
		return err
	}
	body := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(body, uint32(len(payload)))
	copy(body[4:], payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(body, crcTable))

	j.mu.Lock()
	defer j.mu.Unlock()
	// Two writes on purpose: the journal.append.torn site sits between
	// them, so an exit-armed chaos run dies with a half-written record on
	// disk — the torn tail the reopen path must absorb. A mid-record
	// failure (injected or real, e.g. disk full) rewinds to the last
	// durable record so later appends never land after garbage.
	if _, err := j.f.WriteAt(body, j.off); err != nil {
		j.rewind()
		return fmt.Errorf("journal: write %s: %w", j.path, err)
	}
	if err := failpoint.Inject("journal.append.torn"); err != nil {
		j.rewind()
		return err
	}
	if _, err := j.f.WriteAt(tail[:], j.off+int64(len(body))); err != nil {
		j.rewind()
		return fmt.Errorf("journal: write %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		j.rewind()
		return fmt.Errorf("journal: sync %s: %w", j.path, err)
	}
	j.off += int64(len(body) + 4)
	j.appended++
	Records.Add(1)
	return nil
}

// rewind discards a partially written record after a failure,
// best-effort: if even the truncate fails the torn tail stays on disk,
// where the next Open's scan absorbs it. Called with mu held.
func (j *Journal) rewind() {
	_ = j.f.Truncate(j.off)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Records reports how many durable records the journal holds (resumed
// on open plus appended since).
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resumed + j.appended
}

// ResumedRecords reports how many records were replayed on Open.
func (j *Journal) ResumedRecords() int { return j.resumed }

// TornTailsSeen reports how many torn/corrupt tails this open truncated
// (0 or 1; kept as a count for the summary line's symmetry).
func (j *Journal) TornTailsSeen() int { return j.torn }

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: sync %s: %w", j.path, err)
	}
	return j.f.Close()
}
