package workload

import (
	"testing"

	"nucache/internal/stats"
	"nucache/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registered %d benchmarks, want 16", len(all))
	}
	classes := map[Class]int{}
	for _, b := range all {
		if b.Name == "" || b.Description == "" {
			t.Fatalf("benchmark missing metadata: %+v", b)
		}
		classes[b.Class]++
	}
	for _, c := range []Class{ClassFriendly, ClassSensitive, ClassStreaming, ClassThrashing, ClassMixed} {
		if classes[c] == 0 {
			t.Fatalf("no benchmark of class %s", c)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("art-like"); !ok {
		t.Fatal("art-like missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus name found")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName should panic")
		}
	}()
	MustByName("nope")
}

func TestStreamsDeterministic(t *testing.T) {
	for _, b := range All() {
		a1 := trace.Collect(b.Stream(7), 5000)
		a2 := trace.Collect(b.Stream(7), 5000)
		if len(a1) != 5000 || len(a2) != 5000 {
			t.Fatalf("%s: short stream", b.Name)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("%s: nondeterministic at %d", b.Name, i)
			}
		}
	}
}

func TestStreamsSeedSensitive(t *testing.T) {
	// Randomized benchmarks must differ across seeds (pure sequential
	// models may legitimately coincide, so only check a zipf-based one).
	a := trace.Collect(MustByName("omnetpp-like").Stream(1), 1000)
	b := trace.Collect(MustByName("omnetpp-like").Stream(2), 1000)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("seeds produce near-identical streams (%d/1000)", same)
	}
}

func TestAccessesWellFormed(t *testing.T) {
	for _, b := range All() {
		for i, a := range trace.Collect(b.Stream(3), 20000) {
			if a.Addr%lineBytes != 0 {
				t.Fatalf("%s access %d: unaligned addr %#x", b.Name, i, a.Addr)
			}
			if a.PC < 0x400000 || a.PC > 0x500000 {
				t.Fatalf("%s access %d: implausible PC %#x", b.Name, i, a.PC)
			}
			if a.Gap > 100 {
				t.Fatalf("%s access %d: gap %d", b.Name, i, a.Gap)
			}
		}
	}
}

func TestDistinctPCsPerBenchmark(t *testing.T) {
	for _, b := range All() {
		pcs := map[uint64]bool{}
		// 80k accesses covers at least one full round of every model.
		for _, a := range trace.Collect(b.Stream(3), 80000) {
			pcs[a.PC] = true
		}
		if len(pcs) < 2 {
			t.Fatalf("%s uses %d static PCs, want >= 2", b.Name, len(pcs))
		}
	}
}

func TestClassFootprints(t *testing.T) {
	// Streaming models must keep producing fresh lines; friendly models
	// must stay within their small footprint.
	fresh := func(name string, n int) int {
		seen := map[uint64]bool{}
		for _, a := range trace.Collect(MustByName(name).Stream(5), n) {
			seen[a.Addr>>6] = true
		}
		return len(seen)
	}
	if got := fresh("swim-like", 30000); got < 20000 {
		t.Fatalf("swim-like touched only %d lines in 30k accesses", got)
	}
	if got := fresh("hmmer-like", 30000); got > 1024 {
		t.Fatalf("hmmer-like touched %d lines, want tiny footprint", got)
	}
	if got := fresh("twolf-like", 30000); got > (256<<10)/64 {
		t.Fatalf("twolf-like touched %d lines", got)
	}
}

func TestMixesWellFormed(t *testing.T) {
	for _, cores := range []int{2, 4, 8} {
		mixes := MixesFor(cores)
		if len(mixes) < 8 {
			t.Fatalf("%d-core: only %d mixes", cores, len(mixes))
		}
		names := map[string]bool{}
		for _, m := range mixes {
			if m.Cores() != cores {
				t.Fatalf("mix %s has %d members", m.Name, m.Cores())
			}
			if names[m.Name] {
				t.Fatalf("duplicate mix name %s", m.Name)
			}
			names[m.Name] = true
			streams := m.Streams(1)
			if len(streams) != cores {
				t.Fatalf("mix %s: %d streams", m.Name, len(streams))
			}
			for i, s := range streams {
				if _, ok := s.Next(); !ok {
					t.Fatalf("mix %s stream %d empty", m.Name, i)
				}
			}
			if m.String() == "" {
				t.Fatal("empty String()")
			}
		}
	}
}

func TestMixDuplicateMembersDiverge(t *testing.T) {
	m := Mix{Name: "dup", Members: []string{"omnetpp-like", "omnetpp-like"}}
	st := m.Streams(1)
	a := trace.Collect(st[0], 500)
	b := trace.Collect(st[1], 500)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same > 450 {
		t.Fatalf("duplicate members nearly identical (%d/500)", same)
	}
}

func TestMixesForPanicsOnOddCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MixesFor(3)
}

func TestPermCycleIsSingleCycle(t *testing.T) {
	next := permCycle(stats.NewRNG(42), 257)
	seen := make([]bool, 257)
	pos := uint32(0)
	for i := 0; i < 257; i++ {
		if seen[pos] {
			t.Fatalf("cycle shorter than n at step %d", i)
		}
		seen[pos] = true
		pos = next[pos]
	}
	if pos != 0 {
		t.Fatal("did not return to start after n steps")
	}
}
