package workload

import (
	"nucache/internal/stats"
	"nucache/internal/trace"
)

// lineBytes is the access granularity; all generators emit line-aligned
// addresses (sub-line offsets would only add L1 hits).
const lineBytes = 64

// site is a static access site: one load/store instruction in the
// modelled program. gap is the non-memory instruction count preceding
// each dynamic access from this site.
type site struct {
	pc  uint64
	gap uint32
}

// pcBase is where modelled code lives; sites are 4 bytes apart.
func siteAt(n int, gap uint32) site {
	return site{pc: 0x400000 + uint64(n)*4, gap: gap}
}

// region is a contiguous memory area of a program model.
type region struct {
	base  uint64
	lines uint64
}

// addr returns the address of line i (mod the region size).
func (r region) addr(i uint64) uint64 {
	return r.base + (i%r.lines)*lineBytes
}

// Bytes returns the region size in bytes.
func (r region) Bytes() uint64 { return r.lines * lineBytes }

// regionAt places a region of size bytes at slot n (64 MB apart, so
// regions never overlap within a program).
func regionAt(n int, bytes uint64) region {
	return region{base: uint64(n+1) << 26, lines: (bytes + lineBytes - 1) / lineBytes}
}

// emitter accumulates one round (outer-loop iteration) of accesses.
type emitter struct {
	out []trace.Access
	rng *stats.RNG
}

func (e *emitter) load(s site, addr uint64) {
	e.out = append(e.out, trace.Access{PC: s.pc, Addr: addr, Kind: trace.Load, Gap: s.gap})
}

func (e *emitter) store(s site, addr uint64) {
	e.out = append(e.out, trace.Access{PC: s.pc, Addr: addr, Kind: trace.Store, Gap: s.gap})
}

// scan emits a sequential pass of n lines of r starting at line start.
func (e *emitter) scan(s site, r region, start, n uint64) {
	for i := uint64(0); i < n; i++ {
		e.load(s, r.addr(start+i))
	}
}

// scanStore is scan with stores.
func (e *emitter) scanStore(s site, r region, start, n uint64) {
	for i := uint64(0); i < n; i++ {
		e.store(s, r.addr(start+i))
	}
}

// strided emits n accesses at the given line stride.
func (e *emitter) strided(s site, r region, start, n, stride uint64) {
	for i := uint64(0); i < n; i++ {
		e.load(s, r.addr(start+i*stride))
	}
}

// roundStream adapts a per-round generator to trace.Stream. round must
// append at least one access per call.
type roundStream struct {
	buf   []trace.Access
	pos   int
	round func(e *emitter)
	rng   *stats.RNG
}

// newRoundStream builds a stream from a round generator.
func newRoundStream(seed uint64, round func(e *emitter)) trace.Stream {
	return &roundStream{round: round, rng: stats.NewRNG(seed)}
}

// Next implements trace.Stream.
func (s *roundStream) Next() (trace.Access, bool) {
	for s.pos >= len(s.buf) {
		e := emitter{out: s.buf[:0], rng: s.rng}
		s.round(&e)
		if len(e.out) == 0 {
			panic("workload: round generator produced no accesses")
		}
		s.buf = e.out
		s.pos = 0
	}
	a := s.buf[s.pos]
	s.pos++
	return a, true
}

// permCycle builds a random single-cycle permutation of [0, n) — the
// canonical pointer-chasing structure (Sattolo's algorithm).
func permCycle(rng *stats.RNG, n int) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// perm as sequence; convert to successor mapping.
	next := make([]uint32, n)
	for i := 0; i < n-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[n-1]] = perm[0]
	return next
}
