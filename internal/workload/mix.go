package workload

import (
	"fmt"
	"strings"

	"nucache/internal/trace"
)

// Mix is a named multiprogrammed workload: one benchmark per core. Mix
// composition follows the evaluation's recipe — combining LLC-sensitive
// programs (which can profit from retention/partitioning) with streaming,
// thrashing and cache-friendly neighbors in varying proportions.
type Mix struct {
	// Name identifies the mix in reports ("mix2-03").
	Name string
	// Members are the benchmark names, one per core, in core order.
	Members []string
}

// Benchmarks resolves the member names (panics on unknown names, which is
// an experiment-definition error).
func (m Mix) Benchmarks() []Benchmark {
	out := make([]Benchmark, len(m.Members))
	for i, name := range m.Members {
		out[i] = MustByName(name)
	}
	return out
}

// Streams builds one fresh access stream per core. Each position gets a
// distinct derived seed, so duplicate benchmarks in one mix diverge.
func (m Mix) Streams(seed uint64) []trace.Stream {
	bs := m.Benchmarks()
	out := make([]trace.Stream, len(bs))
	for i, b := range bs {
		out[i] = b.Stream(seed + uint64(i)*0x9e3779b97f4a7c15)
	}
	return out
}

// Cores returns the mix width.
func (m Mix) Cores() int { return len(m.Members) }

// String renders "name(member+member+...)".
func (m Mix) String() string {
	return fmt.Sprintf("%s(%s)", m.Name, strings.Join(m.Members, "+"))
}

// mixNames builds Mix values with sequential names.
func mixSet(prefix string, members [][]string) []Mix {
	out := make([]Mix, len(members))
	for i, ms := range members {
		out[i] = Mix{Name: fmt.Sprintf("%s-%02d", prefix, i+1), Members: ms}
	}
	return out
}

// Mixes2 returns the ten dual-core mixes.
func Mixes2() []Mix {
	return mixSet("mix2", [][]string{
		{"art-like", "swim-like"},
		{"ammp-like", "libquantum-like"},
		{"sphinx-like", "mcf-like"},
		{"omnetpp-like", "milc-like"},
		{"art-like", "ammp-like"},
		{"sphinx-like", "twolf-like"},
		{"facerec-like", "mcf-like"},
		{"bzip2-like", "libquantum-like"},
		{"gcc-like", "mcf-like"},
		{"equake-like", "milc-like"},
	})
}

// Mixes4 returns the ten quad-core mixes.
func Mixes4() []Mix {
	return mixSet("mix4", [][]string{
		{"art-like", "ammp-like", "swim-like", "milc-like"},
		{"facerec-like", "equake-like", "libquantum-like", "mcf-like"},
		{"sphinx-like", "facerec-like", "ammp-like", "swim-like"},
		{"art-like", "equake-like", "sphinx-like", "milc-like"},
		{"omnetpp-like", "bzip2-like", "mcf-like", "hmmer-like"},
		{"facerec-like", "ammp-like", "equake-like", "art-like"},
		{"sphinx-like", "omnetpp-like", "gcc-like", "milc-like"},
		{"soplex-like", "twolf-like", "swim-like", "libquantum-like"},
		{"art-like", "facerec-like", "mcf-like", "vpr-like"},
		{"equake-like", "sphinx-like", "bzip2-like", "swim-like"},
	})
}

// Mixes8 returns the eight eight-core mixes.
func Mixes8() []Mix {
	return mixSet("mix8", [][]string{
		{"art-like", "ammp-like", "sphinx-like", "facerec-like",
			"equake-like", "omnetpp-like", "swim-like", "milc-like"},
		{"art-like", "facerec-like", "equake-like", "ammp-like",
			"sphinx-like", "swim-like", "libquantum-like", "mcf-like"},
		{"facerec-like", "equake-like", "ammp-like", "sphinx-like",
			"twolf-like", "vpr-like", "swim-like", "milc-like"},
		{"art-like", "art-like", "ammp-like", "sphinx-like",
			"swim-like", "swim-like", "libquantum-like", "milc-like"},
		{"omnetpp-like", "omnetpp-like", "soplex-like", "bzip2-like",
			"mcf-like", "mcf-like", "twolf-like", "hmmer-like"},
		{"art-like", "ammp-like", "sphinx-like", "soplex-like",
			"gcc-like", "omnetpp-like", "bzip2-like", "twolf-like"},
		{"facerec-like", "equake-like", "facerec-like", "equake-like",
			"mcf-like", "swim-like", "libquantum-like", "milc-like"},
		{"art-like", "sphinx-like", "omnetpp-like", "ammp-like",
			"milc-like", "mcf-like", "swim-like", "libquantum-like"},
	})
}

// MixesFor returns the standard mix list for a core count (2, 4, or 8).
func MixesFor(cores int) []Mix {
	switch cores {
	case 2:
		return Mixes2()
	case 4:
		return Mixes4()
	case 8:
		return Mixes8()
	default:
		panic(fmt.Sprintf("workload: no standard mixes for %d cores", cores))
	}
}
