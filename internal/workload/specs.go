package workload

import (
	"nucache/internal/stats"
	"nucache/internal/trace"
)

// The benchmark models. Sizes are chosen against the default 1 MB 16-way
// LLC (16384 lines, 1024 sets): "hot" regions are per-PC working sets
// whose re-use distance sits just beyond baseline LRU's reach when
// combined with the program's own polluting scans — the DelinquentPC →
// Next-Use structure NUcache exploits. Streaming and thrashing models
// provide the cases where retention must NOT engage, and cache-friendly
// models the cases where the LLC barely matters.
//
// All models register themselves at package init; see All().

// --- LLC-sensitive models (hot region + polluting scan) ---

// artLike models art's scan over the neural-net weight matrix (big,
// streaming) against repeatedly re-read winner tables (hot).
var artLike = register(Benchmark{
	Name:        "art-like",
	Class:       ClassSensitive,
	Description: "512KB hot tables re-read every round under a 1.25MB weight scan",
	build: func(seed uint64) trace.Stream {
		hot := regionAt(0, 512<<10)
		weights := regionAt(1, 1280<<10)
		hotA, hotB := siteAt(0, 2), siteAt(1, 2)
		scanS := siteAt(2, 1)
		accS := siteAt(3, 3)
		var round uint64
		return newRoundStream(hashName("art-like", seed), func(e *emitter) {
			half := hot.lines / 2
			for i := uint64(0); i < half; i++ {
				e.load(hotA, hot.addr(i))
			}
			e.scan(scanS, weights, 0, weights.lines/2)
			for i := uint64(0); i < half; i++ {
				e.load(hotB, hot.addr(half+i))
			}
			e.scan(scanS, weights, weights.lines/2, weights.lines/2)
			// Small accumulator writes (L1-resident).
			for i := uint64(0); i < 64; i++ {
				e.store(accS, 0x100000+(i%32)*lineBytes)
			}
			round++
		})
	},
})

// ammpLike models ammp's molecular dynamics: per-atom force tables with
// strong round-to-round reuse, polluted by neighbor-list rebuild scans.
var ammpLike = register(Benchmark{
	Name:        "ammp-like",
	Class:       ClassSensitive,
	Description: "384KB force tables (3 PCs) re-read under sliding 768KB neighbor-list rebuilds",
	build: func(seed uint64) trace.Stream {
		hot := regionAt(0, 384<<10)
		nbr := regionAt(1, 8<<20) // rebuilt lists slide through a large arena
		sites := []site{siteAt(0, 3), siteAt(1, 3), siteAt(2, 3)}
		scanS := siteAt(3, 1)
		scratchS := siteAt(4, 4)
		scratch := regionAt(2, 16<<10)
		const scanLines = (768 << 10) / lineBytes
		var window uint64
		return newRoundStream(hashName("ammp-like", seed), func(e *emitter) {
			third := hot.lines / 3
			for p, s := range sites {
				for i := uint64(0); i < third; i++ {
					e.load(s, hot.addr(uint64(p)*third+i))
				}
			}
			e.scan(scanS, nbr, window, scanLines)
			window = (window + scanLines) % nbr.lines
			e.scan(scratchS, scratch, 0, scratch.lines)
		})
	},
})

// sphinxLike models sphinx3's acoustic scoring: a skewed read-only model
// table against streaming feature frames (fresh addresses, never reused).
var sphinxLike = register(Benchmark{
	Name:        "sphinx-like",
	Class:       ClassSensitive,
	Description: "256KB zipf-hot model table under an endless feature stream",
	build: func(seed uint64) trace.Stream {
		model := regionAt(0, 256<<10)
		feat := regionAt(1, 512<<20) // effectively endless
		modelS1, modelS2 := siteAt(0, 3), siteAt(1, 3)
		featS := siteAt(2, 2)
		rng := stats.NewRNG(hashName("sphinx-like", seed))
		z := stats.NewZipf(rng.Split(), model.lines, 0.6)
		var featPos uint64
		return newRoundStream(rng.Uint64(), func(e *emitter) {
			for i := 0; i < 3072; i++ {
				e.load(modelS1, model.addr(z.Next()))
				if i%2 == 0 {
					e.load(modelS2, model.addr(z.Next()))
				}
				e.load(featS, feat.addr(featPos))
				featPos++
			}
		})
	},
})

// omnetppLike models omnetpp's event-heap churn: mildly skewed reuse over
// a heap larger than the LLC plus a small hot event ring.
var omnetppLike = register(Benchmark{
	Name:        "omnetpp-like",
	Class:       ClassSensitive,
	Description: "zipf reuse over a 1.5MB heap plus a 128KB event ring",
	build: func(seed uint64) trace.Stream {
		heap := regionAt(0, 1536<<10)
		ring := regionAt(1, 128<<10)
		heapS1, heapS2 := siteAt(0, 4), siteAt(1, 4)
		ringS := siteAt(2, 3)
		rng := stats.NewRNG(hashName("omnetpp-like", seed))
		z := stats.NewZipf(rng.Split(), heap.lines, 0.9)
		var pos uint64
		return newRoundStream(rng.Uint64(), func(e *emitter) {
			for i := 0; i < 4096; i++ {
				e.load(heapS1, heap.addr(z.Next()))
				e.store(heapS2, heap.addr(z.Next()))
				e.load(ringS, ring.addr(pos))
				pos++
			}
		})
	},
})

// --- Mixed / phased models ---

// soplexLike models simplex pricing: blocks of the constraint matrix are
// re-scanned a few times before moving on, plus sparse column gathers.
var soplexLike = register(Benchmark{
	Name:        "soplex-like",
	Class:       ClassMixed,
	Description: "8x256KB blocks each scanned 4x, with random gathers in 2MB",
	build: func(seed uint64) trace.Stream {
		matrix := regionAt(0, 2048<<10)
		blockS := siteAt(0, 2)
		gatherS := siteAt(1, 3)
		rng := stats.NewRNG(hashName("soplex-like", seed))
		const blockLines = (256 << 10) / lineBytes
		var block uint64
		return newRoundStream(rng.Uint64(), func(e *emitter) {
			start := (block % 8) * blockLines
			for pass := 0; pass < 4; pass++ {
				e.scan(blockS, matrix, start, blockLines)
				for i := 0; i < 256; i++ {
					e.load(gatherS, matrix.addr(rng.Uint64n(matrix.lines)))
				}
			}
			block++
		})
	},
})

// bzip2Like models block compression: one 640KB block is read repeatedly
// (sorting passes) before the window slides.
var bzip2Like = register(Benchmark{
	Name:        "bzip2-like",
	Class:       ClassMixed,
	Description: "640KB sliding block, 6 sorting passes each, then advance",
	build: func(seed uint64) trace.Stream {
		data := regionAt(0, 8<<20)
		passS := siteAt(0, 4)
		writeS := siteAt(1, 5)
		var window uint64
		const blockLines = (640 << 10) / lineBytes
		return newRoundStream(hashName("bzip2-like", seed), func(e *emitter) {
			for pass := 0; pass < 6; pass++ {
				e.scan(passS, data, window, blockLines)
			}
			e.scanStore(writeS, data, window, blockLines/4)
			window = (window + blockLines/2) % data.lines
		})
	},
})

// gccLike models compiler phases: long stretches over small IR working
// sets punctuated by whole-unit passes.
var gccLike = register(Benchmark{
	Name:        "gcc-like",
	Class:       ClassMixed,
	Description: "20 rounds over 128KB IR, then one 1.5MB whole-unit pass",
	build: func(seed uint64) trace.Stream {
		ir := regionAt(0, 128<<10)
		unit := regionAt(1, 1536<<10)
		irS1, irS2 := siteAt(0, 4), siteAt(1, 5)
		passS := siteAt(2, 2)
		var round uint64
		return newRoundStream(hashName("gcc-like", seed), func(e *emitter) {
			if round%21 == 20 {
				e.scan(passS, unit, 0, unit.lines)
			} else {
				e.scan(irS1, ir, 0, ir.lines)
				e.scanStore(irS2, ir, 0, ir.lines/8)
			}
			round++
		})
	},
})

// --- Thrashing / pointer models ---

// mcfLike models mcf's network simplex: pointer chasing over nodes far
// larger than the LLC plus arc-array sweeps. High MPKI, little to save.
var mcfLike = register(Benchmark{
	Name:        "mcf-like",
	Class:       ClassThrashing,
	Description: "pointer chase over 2MB of nodes plus 1MB arc sweeps",
	build: func(seed uint64) trace.Stream {
		nodes := regionAt(0, 2<<20)
		arcs := regionAt(1, 1<<20)
		chaseS := siteAt(0, 2)
		arcS := siteAt(1, 2)
		rng := stats.NewRNG(hashName("mcf-like", seed))
		next := permCycle(rng.Split(), int(nodes.lines))
		pos := uint32(0)
		var arcPos uint64
		return newRoundStream(rng.Uint64(), func(e *emitter) {
			for i := 0; i < 2048; i++ {
				e.load(chaseS, nodes.addr(uint64(pos)))
				pos = next[pos]
				if i%4 == 0 {
					e.load(arcS, arcs.addr(arcPos))
					arcPos++
				}
			}
		})
	},
})

// libquantumLike models libquantum: cyclic passes over a state vector
// twice the LLC — the canonical LRU-thrashing pattern.
var libquantumLike = register(Benchmark{
	Name:        "libquantum-like",
	Class:       ClassThrashing,
	Description: "cyclic read-modify-write sweep over a 2MB state vector",
	build: func(seed uint64) trace.Stream {
		state := regionAt(0, 2<<20)
		loadS := siteAt(0, 1)
		storeS := siteAt(1, 1)
		return newRoundStream(hashName("libquantum-like", seed), func(e *emitter) {
			for i := uint64(0); i < state.lines; i++ {
				e.load(loadS, state.addr(i))
				e.store(storeS, state.addr(i))
			}
		})
	},
})

// --- Streaming models ---

// swimLike models swim's grid sweeps: three large arrays streamed in
// lockstep, reuse only at distances far beyond any cache.
var swimLike = register(Benchmark{
	Name:        "swim-like",
	Class:       ClassStreaming,
	Description: "three 8MB arrays streamed in lockstep",
	build: func(seed uint64) trace.Stream {
		u := regionAt(0, 8<<20)
		v := regionAt(1, 8<<20)
		p := regionAt(2, 8<<20)
		uS, vS, pS := siteAt(0, 1), siteAt(1, 1), siteAt(2, 2)
		var pos uint64
		return newRoundStream(hashName("swim-like", seed), func(e *emitter) {
			for i := 0; i < 4096; i++ {
				e.load(uS, u.addr(pos))
				e.load(vS, v.addr(pos))
				e.store(pS, p.addr(pos))
				pos++
			}
		})
	},
})

// milcLike models milc's lattice QCD sweeps: strided streaming stores.
var milcLike = register(Benchmark{
	Name:        "milc-like",
	Class:       ClassStreaming,
	Description: "4MB lattice streamed with stride-2 read-modify-write",
	build: func(seed uint64) trace.Stream {
		lattice := regionAt(0, 4<<20)
		loadS := siteAt(0, 2)
		storeS := siteAt(1, 2)
		var pos uint64
		return newRoundStream(hashName("milc-like", seed), func(e *emitter) {
			for i := 0; i < 4096; i++ {
				e.load(loadS, lattice.addr(pos))
				e.store(storeS, lattice.addr(pos))
				pos += 2
			}
		})
	},
})

// --- Cache-friendly models ---

// twolfLike models twolf's placement loops: skewed reuse over a working
// set that fits the LLC with room to spare.
var twolfLike = register(Benchmark{
	Name:        "twolf-like",
	Class:       ClassFriendly,
	Description: "192KB zipf working set, comfortably LLC-resident",
	build: func(seed uint64) trace.Stream {
		cells := regionAt(0, 192<<10)
		s1, s2 := siteAt(0, 5), siteAt(1, 5)
		netS := siteAt(2, 4)
		rng := stats.NewRNG(hashName("twolf-like", seed))
		z := stats.NewZipf(rng.Split(), cells.lines, 1.1)
		var pos uint64
		return newRoundStream(rng.Uint64(), func(e *emitter) {
			for i := 0; i < 2048; i++ {
				e.load(s1, cells.addr(z.Next()))
				e.store(s2, cells.addr(z.Next()))
				if i%4 == 0 {
					e.load(netS, cells.addr(pos))
					pos++
				}
			}
		})
	},
})

// vprLike models vpr's routing: a small graph working set, mostly
// L1/LLC-resident with light pressure.
var vprLike = register(Benchmark{
	Name:        "vpr-like",
	Class:       ClassFriendly,
	Description: "96KB routing structures with high locality",
	build: func(seed uint64) trace.Stream {
		rr := regionAt(0, 96<<10)
		s1, s2 := siteAt(0, 6), siteAt(1, 7)
		rng := stats.NewRNG(hashName("vpr-like", seed))
		z := stats.NewZipf(rng.Split(), rr.lines, 0.9)
		return newRoundStream(rng.Uint64(), func(e *emitter) {
			for i := 0; i < 2048; i++ {
				e.load(s1, rr.addr(z.Next()))
				if i%3 == 0 {
					e.store(s2, rr.addr(z.Next()))
				}
			}
		})
	},
})

// hmmerLike models hmmer's profile scoring: tiny tables, compute-bound.
var hmmerLike = register(Benchmark{
	Name:        "hmmer-like",
	Class:       ClassFriendly,
	Description: "48KB score tables, compute-bound (large gaps)",
	build: func(seed uint64) trace.Stream {
		tables := regionAt(0, 48<<10)
		s1, s2 := siteAt(0, 12), siteAt(1, 12)
		var pos uint64
		return newRoundStream(hashName("hmmer-like", seed), func(e *emitter) {
			for i := uint64(0); i < 2048; i++ {
				e.load(s1, tables.addr(pos+i))
				if i%2 == 0 {
					e.store(s2, tables.addr(pos+i/2))
				}
			}
			pos += 7
		})
	},
})

// facerecLike models facerec's recognition loop: a hot eigenface gallery
// re-read for every probe image, which itself streams through memory.
var facerecLike = register(Benchmark{
	Name:        "facerec-like",
	Class:       ClassSensitive,
	Description: "320KB eigenface gallery re-read per probe under a fresh image stream",
	build: func(seed uint64) trace.Stream {
		gallery := regionAt(0, 320<<10)
		probes := regionAt(1, 512<<20) // effectively endless
		galS1, galS2 := siteAt(0, 2), siteAt(1, 3)
		probeS := siteAt(2, 1)
		var probePos uint64
		return newRoundStream(hashName("facerec-like", seed), func(e *emitter) {
			half := gallery.lines / 2
			e.scan(galS1, gallery, 0, half)
			e.scan(probeS, probes, probePos, 2048)
			probePos += 2048
			e.scan(galS2, gallery, half, half)
			e.scan(probeS, probes, probePos, 2048)
			probePos += 2048
		})
	},
})

// equakeLike models equake's sparse solve: a hot matrix structure reused
// every timestep against sliding wavefield sweeps.
var equakeLike = register(Benchmark{
	Name:        "equake-like",
	Class:       ClassSensitive,
	Description: "448KB sparse-structure tables reused per timestep under sliding wavefield sweeps",
	build: func(seed uint64) trace.Stream {
		structure := regionAt(0, 448<<10)
		wave := regionAt(1, 16<<20)
		colS, valS := siteAt(0, 2), siteAt(1, 2)
		waveS := siteAt(2, 1)
		const sweepLines = (640 << 10) / lineBytes
		var window uint64
		return newRoundStream(hashName("equake-like", seed), func(e *emitter) {
			half := structure.lines / 2
			e.scan(colS, structure, 0, half)
			e.scan(valS, structure, half, half)
			e.scan(waveS, wave, window, sweepLines)
			window = (window + sweepLines) % wave.lines
		})
	},
})
