package workload_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/policy"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// measure runs one benchmark alone on the default 1-core machine under
// LRU and returns its LLC MPKI and LLC hit ratio.
func measure(t *testing.T, name string) (mpki, hit float64) {
	t.Helper()
	cfg := cpu.DefaultConfig(1)
	cfg.InstrBudget = 600_000
	b := workload.MustByName(name)
	sys := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{b.Stream(1)})
	r := sys.Run()[0]
	if r.LLCAccesses > 0 {
		hit = float64(r.LLCHits) / float64(r.LLCAccesses)
	}
	return r.LLCMPKI(), hit
}

// TestBehaviouralClasses locks in the intended cache behaviour of each
// model class under baseline LRU — the property the whole evaluation's
// workload composition rests on. Ranges are generous (they assert class
// membership, not exact numbers).
func TestBehaviouralClasses(t *testing.T) {
	cases := []struct {
		name          string
		minMPKI       float64 // 0 = no lower bound
		maxMPKI       float64 // 0 = no upper bound
		maxHit        float64 // -1 = no bound
		minHit        float64
		wantClass     workload.Class
		classComments string
	}{
		{"swim-like", 100, 0, 0.5, 0, workload.ClassStreaming, "streams must miss heavily"},
		{"milc-like", 100, 0, 0.5, 0, workload.ClassStreaming, ""},
		{"libquantum-like", 100, 0, 0.7, 0, workload.ClassThrashing, "cyclic overflow"},
		{"mcf-like", 100, 0, 0.3, 0, workload.ClassThrashing, "pointer chase"},
		{"twolf-like", 0, 10, -1, 0.9, workload.ClassFriendly, "LLC-resident"},
		{"vpr-like", 0, 10, -1, 0.8, workload.ClassFriendly, ""},
		{"hmmer-like", 0, 2, -1, 0, workload.ClassFriendly, "L1-resident, compute-bound"},
		{"art-like", 100, 0, 0.3, 0, workload.ClassSensitive, "thrashes under LRU alone"},
		{"ammp-like", 100, 0, 0.3, 0, workload.ClassSensitive, ""},
		{"equake-like", 100, 0, 0.3, 0, workload.ClassSensitive, ""},
		{"sphinx-like", 50, 0, -1, 0.3, workload.ClassSensitive, "partial protection by recency"},
		{"facerec-like", 0, 0, -1, 0.4, workload.ClassSensitive, "LLC-resident alone; dies in mixes"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			b := workload.MustByName(c.name)
			if b.Class != c.wantClass {
				t.Fatalf("class = %s, want %s", b.Class, c.wantClass)
			}
			mpki, hit := measure(t, c.name)
			if c.minMPKI > 0 && mpki < c.minMPKI {
				t.Errorf("MPKI %.1f < %.1f (%s)", mpki, c.minMPKI, c.classComments)
			}
			if c.maxMPKI > 0 && mpki > c.maxMPKI {
				t.Errorf("MPKI %.1f > %.1f (%s)", mpki, c.maxMPKI, c.classComments)
			}
			if c.maxHit >= 0 && hit > c.maxHit {
				t.Errorf("hit ratio %.2f > %.2f (%s)", hit, c.maxHit, c.classComments)
			}
			if c.minHit > 0 && hit < c.minHit {
				t.Errorf("hit ratio %.2f < %.2f (%s)", hit, c.minHit, c.classComments)
			}
		})
	}
}

// TestSensitiveModelsGainUnderNUcache is the workload-level contract for
// the evaluation: every LLC-sensitive model must benefit from NUcache
// alone (or at worst tie), and streaming models must never lose.
func TestSensitiveModelsGainUnderNUcache(t *testing.T) {
	run := func(name string, nu bool) float64 {
		cfg := cpu.DefaultConfig(1)
		cfg.InstrBudget = 1_200_000
		pol := cache.Policy(policy.NewLRU())
		if nu {
			pol = core.MustNew(core.DefaultConfig(cfg.LLC.Ways))
		}
		b := workload.MustByName(name)
		sys := cpu.NewSystem(cfg, pol, []trace.Stream{b.Stream(1)})
		return sys.Run()[0].IPC()
	}
	for _, b := range workload.All() {
		switch b.Class {
		case workload.ClassSensitive:
			base, nu := run(b.Name, false), run(b.Name, true)
			if nu < 0.98*base {
				t.Errorf("%s: NUcache IPC %.4f < LRU %.4f", b.Name, nu, base)
			}
		case workload.ClassStreaming, workload.ClassThrashing:
			base, nu := run(b.Name, false), run(b.Name, true)
			if nu < 0.97*base {
				t.Errorf("%s: NUcache IPC %.4f lost to LRU %.4f on non-reusable model",
					b.Name, nu, base)
			}
		}
	}
}
