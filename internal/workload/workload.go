// Package workload provides deterministic synthetic benchmark models that
// stand in for the SPEC CPU workloads of the NUcache evaluation (the
// binaries and traces are not redistributable; see DESIGN.md for the
// substitution argument).
//
// Each benchmark is a small program model: a set of static access sites
// (PCs) arranged into loops over typed memory regions — sequential scans,
// pointer chases, Zipf-skewed heaps, blocked traversals. The models are
// built from the same program idioms that give real workloads their two
// load-bearing statistical properties:
//
//  1. miss skew — a handful of delinquent PCs produce most LLC misses, and
//  2. per-PC next-use clustering — lines brought in by one PC are re-used
//     after similar distances.
//
// Streams are unbounded (generators loop forever); the CPU model's
// instruction budget bounds simulation length.
package workload

import (
	"fmt"
	"sort"

	"nucache/internal/trace"
)

// Class is a coarse behavioural label used in reports.
type Class string

const (
	// ClassFriendly fits comfortably in the LLC (or even L1).
	ClassFriendly Class = "cache-friendly"
	// ClassSensitive gains from extra effective LLC lifetime: reuse
	// sits just beyond what baseline LRU retains.
	ClassSensitive Class = "llc-sensitive"
	// ClassStreaming has essentially no LLC reuse.
	ClassStreaming Class = "streaming"
	// ClassThrashing cycles a working set larger than the LLC.
	ClassThrashing Class = "thrashing"
	// ClassMixed combines phases of the above.
	ClassMixed Class = "mixed"
)

// Benchmark is a named synthetic program model.
type Benchmark struct {
	// Name is the model's identifier (SPEC-inspired, "-like" suffixed).
	Name string
	// Class is the behavioural label.
	Class Class
	// Description summarizes the modelled behaviour.
	Description string

	build func(seed uint64) trace.Stream
}

// Stream returns a fresh unbounded access stream. Equal seeds give
// identical streams; benchmarks fold their name into the seed so mixes of
// the same benchmark at different positions still diverge via the caller's
// per-core seed.
func (b Benchmark) Stream(seed uint64) trace.Stream {
	if b.build == nil {
		panic(fmt.Sprintf("workload: benchmark %q has no generator", b.Name))
	}
	return b.build(seed)
}

var registry = map[string]Benchmark{}

func register(b Benchmark) Benchmark {
	if _, dup := registry[b.Name]; dup {
		panic("workload: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
	return b
}

// ByName looks up a registered benchmark.
func ByName(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// MustByName looks up a benchmark, panicking if absent (experiment setup).
func MustByName(name string) Benchmark {
	b, ok := registry[name]
	if !ok {
		panic("workload: unknown benchmark " + name)
	}
	return b
}

// All returns every registered benchmark, sorted by name.
func All() []Benchmark {
	out := make([]Benchmark, 0, len(registry))
	for _, b := range registry {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns all benchmark names, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// hashName folds a benchmark name into a seed.
func hashName(name string, seed uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h ^ seed
}
