package core

import (
	"testing"
	"testing/quick"

	"nucache/internal/stats"
)

// contains reports whether the sorted chosen slice includes pc.
func contains(chosen []uint64, pc uint64) bool {
	for _, v := range chosen {
		if v == pc {
			return true
		}
	}
	return false
}

func candidate(pc uint64, misses, demotions uint64, distances []uint64) *PCStats {
	h := stats.NewHistogram(16, 16)
	for _, d := range distances {
		h.Record(d)
	}
	return &PCStats{PC: pc, Misses: misses, Demotions: demotions, NextUse: h}
}

func TestSelectPCsPicksShortDistancePC(t *testing.T) {
	// PC 1: reuses at distance 2 — easily covered by DeliWays.
	// PC 2: reuses at distance 5000 — hopeless.
	cands := []*PCStats{
		candidate(1, 100, 50, repeat(2, 50)),
		candidate(2, 100, 50, repeat(5000, 50)),
	}
	chosen, rep := SelectPCs(cands, 4, 1000, 8, 1)
	if !contains(chosen, 1) {
		t.Fatalf("PC 1 not chosen (report %+v)", rep)
	}
	if contains(chosen, 2) {
		t.Fatal("hopeless PC 2 chosen")
	}
	if rep.Chosen != 1 || rep.Benefit == 0 {
		t.Fatalf("report %+v", rep)
	}
}

func TestSelectPCsDilutionTradeoff(t *testing.T) {
	// With D=2 and sampledMisses=100: lifetime(S) = 200/demotions(S).
	// PC 1: 10 demotions, reuse at 15 -> alone lifetime 20: covered.
	// PC 2: 90 demotions, reuse at 15 -> together lifetime 2: nothing
	// covered, and PC 2 alone gives lifetime 200/90≈2: not covered.
	// Selection must choose exactly {PC 1}.
	cands := []*PCStats{
		candidate(1, 50, 10, repeat(15, 10)),
		candidate(2, 500, 90, repeat(15, 90)),
	}
	chosen, rep := SelectPCs(cands, 2, 100, 8, 1)
	if len(chosen) != 1 {
		t.Fatalf("chose %d PCs (report %+v)", len(chosen), rep)
	}
	if !contains(chosen, 1) {
		t.Fatal("wrong PC survived dilution analysis")
	}
}

func TestSelectPCsPrefersBiggerSetWhenItFits(t *testing.T) {
	// Two cheap PCs both fit together: choose both.
	cands := []*PCStats{
		candidate(1, 100, 10, repeat(3, 10)),
		candidate(2, 100, 10, repeat(4, 10)),
	}
	chosen, _ := SelectPCs(cands, 4, 1000, 8, 1)
	if len(chosen) != 2 {
		t.Fatalf("chose %d PCs, want 2", len(chosen))
	}
}

func TestSelectPCsEmptyInputs(t *testing.T) {
	if chosen, _ := SelectPCs(nil, 4, 100, 8, 1); len(chosen) != 0 {
		t.Fatal("chose from nothing")
	}
	if chosen, _ := SelectPCs([]*PCStats{candidate(1, 5, 5, repeat(1, 5))}, 0, 100, 8, 1); len(chosen) != 0 {
		t.Fatal("chose with zero DeliWays")
	}
	if chosen, _ := SelectPCs([]*PCStats{candidate(1, 5, 5, repeat(1, 5))}, 4, 0, 8, 1); len(chosen) != 0 {
		t.Fatal("chose with zero sampled misses")
	}
	// PC with misses but no demotions/reuse is not choosable.
	if chosen, _ := SelectPCs([]*PCStats{candidate(1, 5, 0, nil)}, 4, 100, 8, 1); len(chosen) != 0 {
		t.Fatal("chose PC with no demotions")
	}
}

func TestSelectPCsRespectsMaxChosen(t *testing.T) {
	var cands []*PCStats
	for pc := uint64(1); pc <= 6; pc++ {
		cands = append(cands, candidate(pc, 100, 5, repeat(2, 5)))
	}
	chosen, _ := SelectPCs(cands, 8, 10000, 3, 1)
	if len(chosen) > 3 {
		t.Fatalf("chose %d > MaxChosen 3", len(chosen))
	}
}

func TestLifetimeForSaturation(t *testing.T) {
	if got := lifetimeFor(4, 100, 0); got != ^uint64(0) {
		t.Fatalf("zero demotions lifetime = %d", got)
	}
	if got := lifetimeFor(16, ^uint64(0)/2, 1); got != ^uint64(0) {
		t.Fatalf("overflow not saturated: %d", got)
	}
	if got := lifetimeFor(2, 100, 10); got != 20 {
		t.Fatalf("lifetime = %d, want 20", got)
	}
}

func repeat(v uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestScaleLifetime(t *testing.T) {
	if got := scaleLifetime(10, 2); got != 20 {
		t.Fatalf("scaled = %d", got)
	}
	if got := scaleLifetime(^uint64(0), 2); got != ^uint64(0) {
		t.Fatal("max lifetime not preserved")
	}
	if got := scaleLifetime(^uint64(0)/2, 8); got != ^uint64(0) {
		t.Fatal("overflow not saturated")
	}
}

func TestSelectPCsSlackWidensCoverage(t *testing.T) {
	// Distance 30 with raw lifetime 20: rejected at slack 1, accepted at 2.
	cands := []*PCStats{candidate(1, 50, 10, repeat(30, 10))}
	if chosen, _ := SelectPCs(cands, 2, 100, 8, 1); len(chosen) != 0 {
		t.Fatal("slack-1 selection accepted uncoverable PC")
	}
	if chosen, _ := SelectPCs(cands, 2, 100, 8, 2); len(chosen) != 1 {
		t.Fatal("slack-2 selection rejected coverable PC")
	}
	// slack <= 0 falls back to the default of 1 (exact rate model).
	if chosen, _ := SelectPCs(cands, 2, 100, 8, 0); len(chosen) != 0 {
		t.Fatal("default slack not applied")
	}
}

func TestSelectPCsProperties(t *testing.T) {
	// Property: for arbitrary candidate populations, the selection (a) only
	// chooses from the candidates, (b) respects maxChosen, (c) reports a
	// chosen count matching the set, and (d) is deterministic.
	if err := quick.Check(func(raw []struct {
		PC        uint16
		Misses    uint16
		Demotions uint8
		Dist      uint16
	}, deliWays8, maxChosen8 uint8) bool {
		deliWays := int(deliWays8%8) + 1
		maxChosen := int(maxChosen8%8) + 1
		var cands []*PCStats
		seen := map[uint64]bool{}
		var sampled uint64
		for _, r := range raw {
			pc := uint64(r.PC)
			if seen[pc] {
				continue
			}
			seen[pc] = true
			n := int(r.Demotions)
			var dists []uint64
			for i := 0; i < n; i++ {
				dists = append(dists, uint64(r.Dist%512))
			}
			cands = append(cands, candidate(pc, uint64(r.Misses), uint64(n), dists))
			sampled += uint64(r.Misses)
		}
		chosen1, rep1 := SelectPCs(cands, deliWays, sampled, maxChosen, 1)
		chosen2, rep2 := SelectPCs(cands, deliWays, sampled, maxChosen, 1)
		if len(chosen1) != len(chosen2) || rep1 != rep2 {
			return false // nondeterministic
		}
		if len(chosen1) > maxChosen {
			return false
		}
		if rep1.Chosen != len(chosen1) {
			return false
		}
		for i, pc := range chosen1 {
			if !seen[pc] {
				return false // invented a PC
			}
			if i > 0 && chosen1[i-1] >= pc {
				return false // not sorted ascending / has duplicates
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectPCsBenefitRequiresCoverage(t *testing.T) {
	// A candidate whose every distance exceeds any possible lifetime must
	// never be chosen, regardless of how delinquent it is.
	cands := []*PCStats{candidate(1, 1<<20, 1000, repeat(1<<30, 1000))}
	chosen, rep := SelectPCs(cands, 8, 1000, 8, 1)
	if len(chosen) != 0 || rep.Benefit != 0 {
		t.Fatalf("uncoverable PC chosen: %v %+v", chosen, rep)
	}
}

func TestSelectPCsAdaptivePicksWorkingSplit(t *testing.T) {
	// Distances of ~40 need D >= 4 at this miss/demotion ratio
	// (lifetime(D) = D*1000/100): D=2 gives 20 (no benefit), D=4 gives 40.
	cands := []*PCStats{candidate(1, 500, 100, repeat(40, 100))}
	chosen, rep := SelectPCsAdaptive(cands, 8, 1000, 8, 1, 0)
	if len(chosen) != 1 {
		t.Fatalf("chosen %v (report %+v)", chosen, rep)
	}
	if rep.DeliWays < 4 {
		t.Fatalf("picked D=%d, need >= 4", rep.DeliWays)
	}
	if rep.Benefit == 0 {
		t.Fatal("no benefit reported")
	}
}

func TestSelectPCsAdaptiveEmptyWhenNothingFits(t *testing.T) {
	cands := []*PCStats{candidate(1, 500, 100, repeat(1<<20, 100))}
	chosen, rep := SelectPCsAdaptive(cands, 8, 1000, 8, 1, 0)
	if len(chosen) != 0 || rep.Chosen != 0 {
		t.Fatalf("uncoverable PC chosen: %+v", rep)
	}
}

func TestSelectPCsAdaptiveCostDiscount(t *testing.T) {
	// With a steep per-way cost, a marginal benefit must not justify a
	// large D.
	cands := []*PCStats{candidate(1, 500, 100, repeat(40, 10))} // benefit 10 at D>=4
	chosen, _ := SelectPCsAdaptive(cands, 8, 1000, 8, 1, 100)   // cost 400+ at D=4
	if len(chosen) != 0 {
		t.Fatal("selection ignored the associativity cost")
	}
}
