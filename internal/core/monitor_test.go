package core

import "testing"

func testConfig() Config {
	cfg, err := Config{
		Ways:           8,
		DeliWays:       3,
		Candidates:     8,
		EpochMisses:    1000,
		SampleShift:    0, // sample everything in unit tests
		VictimTableCap: 4,
		HistLinear:     8,
		HistLog2:       8,
	}.withDefaults()
	if err != nil {
		t := err
		panic(t)
	}
	return cfg
}

func TestMonitorRecordsNextUseDistance(t *testing.T) {
	m := NewMonitor(testConfig())
	// A line (tag 7, pc 100) leaves the MainWays, then 3 misses elapse in
	// the set, then the line is re-accessed: distance 3.
	m.OnDemotion(0, 7, 100)
	m.OnMiss(0, 200)
	m.OnMiss(0, 200)
	m.OnMiss(0, 200)
	m.OnAccess(0, 7)
	p := m.lookupPC(100)
	if p == nil || p.NextUse.Total() != 1 {
		t.Fatal("next-use not recorded")
	}
	if got := p.NextUse.Mean(); got != 3 {
		t.Fatalf("distance = %v, want 3", got)
	}
	if m.Reuses != 1 {
		t.Fatalf("Reuses = %d", m.Reuses)
	}
}

func TestMonitorEntryRetiredAfterReuse(t *testing.T) {
	m := NewMonitor(testConfig())
	m.OnDemotion(0, 7, 100)
	m.OnAccess(0, 7)
	m.OnMiss(0, 1)
	m.OnAccess(0, 7) // second access: entry already retired
	if m.lookupPC(100).NextUse.Total() != 1 {
		t.Fatal("entry reused twice")
	}
}

func TestMonitorSampling(t *testing.T) {
	cfg := testConfig()
	cfg.SampleShift = 2 // sample sets 0, 4, 8...
	m := NewMonitor(cfg)
	m.OnMiss(1, 50) // unsampled set: counted for delinquency only
	m.OnMiss(4, 50)
	if m.SampledMisses() != 1 {
		t.Fatalf("sampled misses = %d", m.SampledMisses())
	}
	if m.lookupPC(50).Misses != 2 {
		t.Fatalf("pc misses = %d", m.lookupPC(50).Misses)
	}
	m.OnDemotion(1, 9, 50) // unsampled: ignored
	if m.lookupPC(50).Demotions != 0 {
		t.Fatal("unsampled demotion recorded")
	}
}

func TestMonitorVictimTableOverflow(t *testing.T) {
	m := NewMonitor(testConfig()) // cap 4
	for i := uint64(0); i < 6; i++ {
		m.OnDemotion(0, 100+i, 1)
	}
	if m.TableOverflow != 2 {
		t.Fatalf("overflow = %d", m.TableOverflow)
	}
	// Oldest two dropped: accessing tag 100 finds nothing.
	m.OnAccess(0, 100)
	if m.Reuses != 0 {
		t.Fatal("dropped entry matched")
	}
	m.OnAccess(0, 105)
	if m.Reuses != 1 {
		t.Fatal("retained entry missed")
	}
}

func TestMonitorTopCandidates(t *testing.T) {
	m := NewMonitor(testConfig())
	for i := 0; i < 10; i++ {
		m.OnMiss(0, 1)
	}
	for i := 0; i < 5; i++ {
		m.OnMiss(0, 2)
	}
	m.OnMiss(0, 3)
	top := m.TopCandidates(2)
	if len(top) != 2 || top[0].PC != 1 || top[1].PC != 2 {
		t.Fatalf("top = %+v", top)
	}
	if m.TotalMisses() != 16 {
		t.Fatalf("total = %d", m.TotalMisses())
	}
}

func TestMonitorTopCandidatesDeterministicTie(t *testing.T) {
	m := NewMonitor(testConfig())
	m.OnMiss(0, 9)
	m.OnMiss(0, 4)
	top := m.TopCandidates(2)
	if top[0].PC != 4 || top[1].PC != 9 {
		t.Fatalf("tie-break not by PC: %d, %d", top[0].PC, top[1].PC)
	}
}

func TestMonitorEndEpochKeepsDistancesAcrossBoundary(t *testing.T) {
	m := NewMonitor(testConfig())
	m.OnDemotion(0, 7, 100)
	m.OnMiss(0, 1)
	m.EndEpoch()
	if m.SampledMisses() != 0 {
		t.Fatal("sampled misses not reset")
	}
	m.OnMiss(0, 1)
	m.OnAccess(0, 7) // distance spans the epoch boundary: 2 misses elapsed
	p := m.lookupPC(100)
	if p == nil || p.NextUse.Total() != 1 || p.NextUse.Mean() != 2 {
		t.Fatalf("cross-epoch distance not recorded: %+v", p)
	}
}
