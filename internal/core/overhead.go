package core

// Hardware storage-overhead accounting, mirroring the paper's argument
// that NUcache needs only modest additional state: a PC tag per line, a
// chosen-PC table, and the sampled Next-Use monitor. All values are bits.

// overheadPCBits is the width of the stored (hashed, core-tagged) PC
// identifier. 20 bits keeps aliasing negligible for the ≤ few hundred
// delinquent PCs per workload.
const overheadPCBits = 20

// Overhead itemizes NUcache's storage relative to the host cache.
type Overhead struct {
	// PerLineBits is the added state on every cache line (PC id plus the
	// one MainWays/DeliWays membership bit folded into replacement state).
	PerLineBits int
	// LinesBits is PerLineBits summed over all lines.
	LinesBits int
	// MonitorBits covers sampled-set miss counters and victim tables.
	MonitorBits int
	// SelectionBits covers the candidate table (counters + histograms)
	// and the chosen-PC table.
	SelectionBits int
	// TotalBits is the full NUcache addition.
	TotalBits int
	// CacheBits approximates the host cache's data+tag storage.
	CacheBits int
}

// Percent returns TotalBits as a percentage of CacheBits.
func (o Overhead) Percent() float64 {
	if o.CacheBits == 0 {
		return 0
	}
	return 100 * float64(o.TotalBits) / float64(o.CacheBits)
}

// Overhead computes the storage model for a cache with the given set
// count, per-line tag width and line size.
func (c Config) Overhead(sets, tagBits, lineBytes int) Overhead {
	cfg, err := c.withDefaults()
	if err != nil {
		return Overhead{}
	}
	var o Overhead
	lines := sets * cfg.Ways

	o.PerLineBits = overheadPCBits + 1
	o.LinesBits = o.PerLineBits * lines

	sampledSets := sets >> cfg.SampleShift
	if sampledSets == 0 {
		sampledSets = 1
	}
	const missCounterBits = 16
	victimEntryBits := tagBits + overheadPCBits + missCounterBits
	o.MonitorBits = sampledSets * (missCounterBits + cfg.VictimTableCap*victimEntryBits)

	histBuckets := cfg.HistLinear + cfg.HistLog2 + 1
	candidateBits := overheadPCBits + 32 /*misses*/ + 16 /*demotions*/ + histBuckets*16
	o.SelectionBits = cfg.Candidates*candidateBits + cfg.MaxChosen*overheadPCBits

	o.TotalBits = o.LinesBits + o.MonitorBits + o.SelectionBits
	o.CacheBits = lines * (lineBytes*8 + tagBits + 8 /*state: valid, dirty, repl.*/)
	return o
}
