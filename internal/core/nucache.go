package core

import (
	"nucache/internal/cache"
)

// NUcache implements cache.Policy. Each set's ways are logically split
// into MainWays (LRU, all lines) and DeliWays (FIFO, only lines filled by
// chosen delinquent PCs, which enter when evicted from the MainWays).
// See the package comment and DESIGN.md for the full mechanism.
type NUcache struct {
	cfg     Config
	mon     *Monitor
	chosen  []uint64    // sorted ascending; sized by MaxChosen (hot: isChosen)
	curDeli int         // active DeliWays count (== cfg.DeliWays unless adaptive)
	states  []*setState // every set's state, for epoch-boundary rebalancing

	missesSinceEpoch uint64
	epochTarget      uint64

	// Epochs counts completed selections.
	Epochs int
	// LastReport is the most recent selection's report.
	LastReport SelectionReport

	// Realized behaviour counters (for experiments and tests).
	DeliHits       uint64 // hits serviced from a DeliWay
	Demotions      uint64 // lines leaving the MainWays
	DeliInsertions uint64 // demotions retained into DeliWays
}

// Compile-time interface checks.
var (
	_ cache.Policy         = (*NUcache)(nil)
	_ cache.AccessObserver = (*NUcache)(nil)
)

// New constructs a NUcache policy. The configuration's Ways must match
// the associativity of the cache it is attached to.
func New(cfg Config) (*NUcache, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &NUcache{
		cfg:     cfg,
		mon:     NewMonitor(cfg),
		curDeli: cfg.DeliWays,
		// A short first epoch engages retention quickly after cold start.
		epochTarget: cfg.EpochMisses / 8,
	}
	if p.epochTarget == 0 {
		p.epochTarget = cfg.EpochMisses
	}
	return p, nil
}

// MustNew is New for static configurations; it panics on config errors.
func MustNew(cfg Config) *NUcache {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements cache.Policy.
func (*NUcache) Name() string { return "NUcache" }

// Config returns the policy's (defaulted) configuration.
func (p *NUcache) Config() Config { return p.cfg }

// Monitor exposes the Next-Use monitor (characterization experiments).
func (p *NUcache) Monitor() *Monitor { return p.mon }

// ChosenPCs returns the currently chosen delinquent PCs, sorted.
func (p *NUcache) ChosenPCs() []uint64 {
	return append([]uint64(nil), p.chosen...)
}

type setState struct {
	setIndex int
	// The lists are embedded by value: every Victim/OnHit/OnInsert walks
	// them, and an extra *WayList indirection per operation is measurable
	// on the access path.
	main cache.WayList // front = MRU, back = LRU
	deli cache.WayList // front = oldest (FIFO head), back = newest
}

// NewSetState implements cache.Policy.
func (p *NUcache) NewSetState(setIndex int) cache.SetState {
	st := &setState{
		setIndex: setIndex,
		main:     cache.MakeWayList(p.cfg.Ways),
		deli:     cache.MakeWayList(p.cfg.Ways),
	}
	p.states = append(p.states, st)
	return st
}

// mainCap is the current MainWays capacity: with no chosen PCs the
// DeliWays would be dead storage, so the whole set serves as MainWays
// (plain LRU) until the selection finds PCs worth retaining.
func (p *NUcache) mainCap() int {
	if p.curDeli == 0 || len(p.chosen) == 0 {
		return p.cfg.Ways
	}
	return p.cfg.Ways - p.curDeli
}

// DeliWaysInUse returns the active DeliWays count (differs from the
// configuration only in adaptive mode).
func (p *NUcache) DeliWaysInUse() int { return p.curDeli }

// ObserveAccess implements cache.AccessObserver: the monitor checks every
// access against the sampled victim tables.
func (p *NUcache) ObserveAccess(setIndex int, tag uint64, _ *cache.Request) {
	p.mon.OnAccess(setIndex, tag)
}

// OnHit implements cache.Policy. MainWay hits refresh recency; DeliWay
// hits optionally re-promote into the MainWays, swapping the MainWays LRU
// line into the freed FIFO slot.
func (p *NUcache) OnHit(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*setState)
	if mi := st.main.IndexOf(way); mi >= 0 {
		// Inline MoveToFront: one scan instead of Contains + IndexOf.
		st.main.RemoveAt(mi)
		st.main.PushFront(way)
		return
	}
	idx := st.deli.IndexOf(way)
	if idx < 0 {
		// A way untracked by either list (only possible after external
		// invalidation): adopt it into the MainWays.
		p.insertMain(st, way)
		return
	}
	p.DeliHits++
	if !p.cfg.PromoteOnDeliHit {
		return
	}
	if st.main.Len() < p.mainCap() {
		// Room in the MainWays (e.g. right after a fallback to all-main):
		// promote without displacing anyone. This branch also covers an
		// empty MainWays list, so Back() below is always safe.
		st.deli.RemoveAt(idx)
		st.main.PushFront(way)
		return
	}
	// Swap: the promoted line takes MainWays MRU; the MainWays LRU line
	// takes the freed FIFO slot — but only if that line is itself from a
	// chosen PC. Swapping unchosen lines in would dilute the DeliWays
	// with lines the selection decided not to retain.
	lru := st.main.Back()
	if !p.isChosen(set.Lines[lru].PC) {
		return
	}
	st.main.PopBack()
	st.deli.RemoveAt(idx)
	st.deli.InsertAt(idx, lru)
	st.main.PushFront(way)
}

// Victim implements cache.Policy.
func (p *NUcache) Victim(set *cache.Set, req *cache.Request) int {
	st := set.State.(*setState)
	p.mon.OnMiss(st.setIndex, req.PC)
	p.missesSinceEpoch++
	if p.missesSinceEpoch >= p.epochTarget {
		p.runSelection()
	}

	capMain := p.mainCap()

	// Room in the MainWays: fill a free physical way.
	if st.main.Len() < capMain {
		if inv := set.FindInvalid(); inv >= 0 {
			st.main.Remove(inv)
			st.deli.Remove(inv)
			return inv
		}
		// All ways valid yet MainWays under capacity: fall through to
		// normal replacement (post-fallback transition or invalidation).
	}

	// Demote MainWays LRU lines until one frees a physical way: an
	// unchosen victim leaves the cache directly; chosen victims move into
	// the DeliWays, freeing a way only when the FIFO overflows. The loop
	// also drains an oversized MainWays after a fallback epoch ends.
	for st.main.Len() > 0 {
		victimWay := st.main.PopBack()
		victim := &set.Lines[victimWay]
		p.Demotions++
		p.mon.OnDemotion(st.setIndex, victim.Tag, victim.PC)

		if p.curDeli > 0 && p.isChosen(victim.PC) {
			st.deli.PushBack(victimWay)
			p.DeliInsertions++
			if st.deli.Len() > p.curDeli {
				return st.deli.PopFront() // FIFO head leaves the cache
			}
			if inv := set.FindInvalid(); inv >= 0 {
				return inv
			}
			// All ways valid and the FIFO absorbed the victim: demote
			// the next MainWays LRU line.
			continue
		}
		return victimWay
	}

	// Degenerate (every line retained or external invalidation churn).
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	if st.deli.Len() > 0 {
		return st.deli.PopFront()
	}
	return 0
}

// OnInsert implements cache.Policy: new fills always enter the MainWays
// at MRU.
func (p *NUcache) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	p.insertMain(set.State.(*setState), way)
}

func (p *NUcache) insertMain(st *setState, way int) {
	st.main.Remove(way)
	st.deli.Remove(way)
	st.main.PushFront(way)
}

// isChosen reports whether pc is in the chosen set. The set is a small
// sorted slice (≤ MaxChosen entries, typically a handful): a linear scan
// over contiguous memory beats both a map lookup and, for tiny sets, a
// binary search on the per-demotion hot path.
func (p *NUcache) isChosen(pc uint64) bool {
	c := p.chosen
	if len(c) > 16 {
		lo, hi := 0, len(c)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if c[mid] < pc {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(c) && c[lo] == pc
	}
	for _, v := range c {
		if v == pc {
			return true
		}
	}
	return false
}

// runSelection closes the epoch: rank candidates, run the cost-benefit
// analysis, install the new chosen set and reset the monitor.
func (p *NUcache) runSelection() {
	p.missesSinceEpoch = 0
	p.epochTarget = p.cfg.EpochMisses
	cands := p.mon.TopCandidates(p.cfg.Candidates)
	var (
		chosen []uint64
		report SelectionReport
	)
	if p.cfg.AdaptiveDeliWays {
		chosen, report = SelectPCsAdaptive(cands, p.cfg.DeliWays, p.mon.SampledMisses(),
			p.cfg.MaxChosen, p.cfg.LifetimeSlack, 0)
		if len(chosen) > 0 {
			p.curDeli = report.DeliWays
		}
	} else {
		chosen, report = SelectPCs(cands, p.cfg.DeliWays, p.mon.SampledMisses(),
			p.cfg.MaxChosen, p.cfg.LifetimeSlack)
	}
	p.Epochs++
	report.Epoch = p.Epochs
	p.chosen = chosen
	p.LastReport = report
	p.mon.EndEpoch()
	if len(p.chosen) == 0 {
		p.adoptDeliWays()
	}
	// A shrunken split leaves some sets with oversized FIFOs; they drain
	// one line per subsequent retention, and orphaned lines remain
	// hittable, so no eager sweep is needed.
}

// adoptDeliWays migrates retained lines into the MainWays LRU stack when
// an epoch ends with nothing chosen: without insertions the FIFO would
// never drain and its lines would be pinned forever. Newest entries land
// closest to the existing stack; the oldest becomes the first victim.
func (p *NUcache) adoptDeliWays() {
	for _, st := range p.states {
		for st.deli.Len() > 0 {
			newest := st.deli.At(st.deli.Len() - 1)
			st.deli.RemoveAt(st.deli.Len() - 1)
			st.main.PushBack(newest)
		}
	}
}
