// Package core implements NUcache (Manikantan, Rajan, Govindarajan,
// HPCA 2011): a shared last-level cache organization that logically
// partitions each set's ways into MainWays and DeliWays. All lines live in
// the MainWays (LRU); lines evicted from the MainWays whose filling PC is
// in the currently *chosen* set of delinquent PCs are retained in the
// DeliWays (FIFO) for extra lifetime. A sampled Next-Use monitor measures,
// per delinquent PC, the distribution of distances (in per-set misses)
// between a line's eviction from the MainWays and its next use; an
// epoch-based cost-benefit analysis picks the chosen-PC set that maximizes
// the hits the DeliWays can deliver.
package core

import "fmt"

// Config parameterizes a NUcache policy.
type Config struct {
	// Ways is the cache's total associativity (MainWays + DeliWays).
	Ways int
	// DeliWays is the number of ways reserved for retained lines.
	// The remaining Ways-DeliWays are the MainWays. Zero disables
	// retention, degenerating to LRU over the MainWays only.
	DeliWays int
	// Candidates is how many top-miss PCs the selection considers.
	Candidates int
	// MaxChosen caps the chosen-PC set size (0 = Candidates).
	MaxChosen int
	// EpochMisses is the selection period, in LLC misses. The first epoch
	// is shortened (EpochMisses/8) so retention engages quickly after the
	// cold start.
	EpochMisses uint64
	// SampleShift selects 1-in-2^SampleShift sets for monitoring.
	SampleShift uint
	// VictimTableCap bounds the per-sampled-set victim bookkeeping table.
	VictimTableCap int
	// PromoteOnDeliHit re-promotes a DeliWay hit into the MainWays (MRU),
	// swapping the MainWays LRU line into the freed DeliWay slot.
	// Disabled, retained lines stay in FIFO order until they drain.
	PromoteOnDeliHit bool
	// HistLinear and HistLog2 set the next-use histogram layout:
	// HistLinear linear buckets then HistLog2 power-of-two buckets.
	HistLinear, HistLog2 int
	// AdaptiveDeliWays lets the epoch selection choose the
	// MainWays/DeliWays split too (every even D up to DeliWays, which
	// then acts as the maximum). An extension beyond the paper, whose D
	// is fixed at design time; measured by experiment E20.
	AdaptiveDeliWays bool
	// LifetimeSlack scales the rate-based DeliWays lifetime projection
	// before comparing it against observed next-use distances. The
	// unscaled model (1.0, the default) proved most accurate across the
	// workload suite: larger values over-select PCs and flood the FIFO
	// (see the E10 ablation). Zero selects the default of 1.
	LifetimeSlack float64
}

// DefaultConfig returns the reconstruction's default parameters for a
// 16-way LLC (see DESIGN.md).
func DefaultConfig(ways int) Config {
	return Config{
		Ways:             ways,
		DeliWays:         6,
		Candidates:       32,
		EpochMisses:      100_000,
		SampleShift:      5,
		VictimTableCap:   64,
		PromoteOnDeliHit: true,
		HistLinear:       16,
		HistLog2:         16,
		LifetimeSlack:    1,
	}
}

// withDefaults fills zero fields and validates.
func (c Config) withDefaults() (Config, error) {
	if c.Ways <= 0 {
		return c, fmt.Errorf("core: Ways must be positive, got %d", c.Ways)
	}
	if c.DeliWays < 0 || c.DeliWays >= c.Ways {
		return c, fmt.Errorf("core: DeliWays %d must be in [0, Ways-1=%d]", c.DeliWays, c.Ways-1)
	}
	if c.Candidates == 0 {
		c.Candidates = 32
	}
	if c.MaxChosen == 0 || c.MaxChosen > c.Candidates {
		c.MaxChosen = c.Candidates
	}
	if c.EpochMisses == 0 {
		c.EpochMisses = 100_000
	}
	if c.VictimTableCap == 0 {
		c.VictimTableCap = 64
	}
	if c.HistLinear == 0 {
		c.HistLinear = 16
	}
	if c.HistLog2 == 0 {
		c.HistLog2 = 16
	}
	if c.LifetimeSlack <= 0 {
		c.LifetimeSlack = 1
	}
	return c, nil
}

// MainWays returns the number of ways not reserved for retention.
func (c Config) MainWays() int { return c.Ways - c.DeliWays }
