package core_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

func newCache(sets, ways, cores int, p cache.Policy) *cache.Cache {
	return cache.New(cache.Config{
		Name: "llc", SizeBytes: sets * ways * 64, Ways: ways, LineBytes: 64, Cores: cores,
	}, p)
}

func access(c *cache.Cache, core int, pc, addr uint64) cache.AccessResult {
	return c.Access(&cache.Request{Addr: addr, PC: pc, Core: core, Kind: trace.Load})
}

// pollutedReuse drives the canonical NUcache scenario on a cache: PC A
// loops over `hot` lines per set while PC B streams junk through the same
// sets, flushing an LRU cache between A's rounds.
func pollutedReuse(c *cache.Cache, sets int, rounds, hot, junkPerRound int) (aHits, aAccesses uint64) {
	const (
		pcA = 0x400100
		pcB = 0x400200
	)
	junk := uint64(1 << 30)
	stride := uint64(sets * 64)
	for r := 0; r < rounds; r++ {
		for i := 0; i < hot; i++ {
			for s := 0; s < sets; s++ {
				addr := uint64(i)*stride + uint64(s)*64
				if access(c, 0, pcA, addr).Hit {
					aHits++
				}
				aAccesses++
			}
		}
		for i := 0; i < junkPerRound; i++ {
			for s := 0; s < sets; s++ {
				access(c, 0, pcB, junk)
				junk += 64
			}
		}
	}
	return aHits, aAccesses
}

func nuConfig(ways, deli int) core.Config {
	return core.Config{
		Ways:           ways,
		DeliWays:       deli,
		Candidates:     8,
		EpochMisses:    2000,
		SampleShift:    0, // monitor everything: tiny caches in tests
		VictimTableCap: 32,
	}
}

func TestNUcacheBeatsLRUUnderPollution(t *testing.T) {
	const sets, ways = 16, 8
	lru := newCache(sets, ways, 1, policy.NewLRU())
	lruHits, _ := pollutedReuse(lru, sets, 80, 6, 10)

	// The strictly periodic toy pattern makes the exact rate model
	// conservative (deli drains only during A's burst); run the mechanism
	// test under an optimistic selection so PC A is chosen.
	cfg := nuConfig(ways, 3)
	cfg.LifetimeSlack = 2
	nu := core.MustNew(cfg)
	c := newCache(sets, ways, 1, nu)
	nuHits, aAcc := pollutedReuse(c, sets, 80, 6, 10)

	if lruHits > aAcc/10 {
		t.Fatalf("scenario broken: LRU already hits %d/%d", lruHits, aAcc)
	}
	if nuHits < 2*lruHits+aAcc/10 {
		t.Fatalf("NUcache hits %d not clearly above LRU %d (of %d)", nuHits, lruHits, aAcc)
	}
	if nu.DeliHits == 0 {
		t.Fatal("no DeliWay hits recorded")
	}
	if nu.Epochs == 0 {
		t.Fatal("no selection epochs ran")
	}
	chosen := nu.ChosenPCs()
	found := false
	for _, pc := range chosen {
		if pc == 0x400100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("delinquent PC A not chosen; chosen = %#x", chosen)
	}
}

func TestNUcacheZeroDeliWaysIsMainWaysLRU(t *testing.T) {
	// With D=0 NUcache is LRU over all ways: same hits as plain LRU.
	const sets, ways = 8, 4
	run := func(p cache.Policy) uint64 {
		c := newCache(sets, ways, 1, p)
		h, _ := pollutedReuse(c, sets, 20, 3, 2)
		return h
	}
	nu := run(core.MustNew(nuConfig(ways, 0)))
	lru := run(policy.NewLRU())
	if nu != lru {
		t.Fatalf("D=0 NUcache hits %d != LRU hits %d", nu, lru)
	}
}

func TestNUcacheUnchosenNeverEntersDeliWays(t *testing.T) {
	nu := core.MustNew(nuConfig(4, 2))
	c := newCache(4, 4, 1, nu)
	// Pure stream: nothing reusable, so nothing should ever be chosen and
	// DeliWays must stay empty (insertions == 0).
	for i := uint64(0); i < 20000; i++ {
		access(c, 0, 0x999, i*64)
	}
	if nu.Epochs == 0 {
		t.Fatal("no epochs")
	}
	if len(nu.ChosenPCs()) != 0 {
		t.Fatalf("streaming PC chosen: %#x", nu.ChosenPCs())
	}
	if nu.DeliHits != 0 {
		t.Fatal("impossible DeliWay hits on pure stream")
	}
}

func TestNUcacheOccupancyNeverExceedsCapacity(t *testing.T) {
	nu := core.MustNew(nuConfig(8, 3))
	c := newCache(4, 8, 1, nu)
	lru := policy.NewLRU()
	_ = lru
	for i := uint64(0); i < 50000; i++ {
		// Mixed reuse + stream with several PCs.
		pc := 0x400000 + (i%5)*4
		addr := (i * 2654435761) % (1 << 20)
		access(c, 0, pc, addr&^63)
		if i%97 == 0 && c.Occupancy() > 4*8 {
			t.Fatalf("occupancy %d exceeds capacity", c.Occupancy())
		}
	}
	if c.Occupancy() > 4*8 {
		t.Fatalf("final occupancy %d", c.Occupancy())
	}
}

func TestNUcacheMainDeliPartitionInvariant(t *testing.T) {
	// After heavy traffic, every valid line must be tracked by exactly one
	// of the two lists, and list sizes must respect M and D.
	cfg := nuConfig(8, 3)
	nu := core.MustNew(cfg)
	c := newCache(4, 8, 1, nu)
	pollutedReuse(c, 4, 50, 5, 8)
	// Inspect through the public Set accessor.
	for s := 0; s < c.NumSets(); s++ {
		set := c.Set(s)
		valid := 0
		for i := range set.Lines {
			if set.Lines[i].Valid {
				valid++
			}
		}
		// The state type is unexported; the invariant is observable via
		// occupancy: valid lines never exceed ways.
		if valid > 8 {
			t.Fatalf("set %d has %d valid lines", s, valid)
		}
	}
}

func TestNUcachePromoteOnDeliHitAblation(t *testing.T) {
	// Promotion should never make things dramatically worse; both modes
	// must deliver DeliWay hits in the pollution scenario.
	for _, promote := range []bool{true, false} {
		cfg := nuConfig(8, 3)
		cfg.LifetimeSlack = 2 // see TestNUcacheBeatsLRUUnderPollution
		cfg.PromoteOnDeliHit = promote
		nu := core.MustNew(cfg)
		c := newCache(16, 8, 1, nu)
		pollutedReuse(c, 16, 80, 6, 10)
		if nu.DeliHits == 0 {
			t.Fatalf("promote=%v: no DeliWay hits", promote)
		}
	}
}

func TestNUcacheConfigValidation(t *testing.T) {
	if _, err := core.New(core.Config{Ways: 0}); err == nil {
		t.Fatal("Ways=0 accepted")
	}
	if _, err := core.New(core.Config{Ways: 8, DeliWays: 8}); err == nil {
		t.Fatal("DeliWays=Ways accepted")
	}
	if _, err := core.New(core.Config{Ways: 8, DeliWays: -1}); err == nil {
		t.Fatal("negative DeliWays accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	core.MustNew(core.Config{Ways: -1})
}

func TestNUcacheDefaults(t *testing.T) {
	p := core.MustNew(core.Config{Ways: 16, DeliWays: 6})
	cfg := p.Config()
	if cfg.Candidates != 32 || cfg.EpochMisses != 100_000 || cfg.MainWays() != 10 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if cfg.LifetimeSlack != 1 {
		t.Fatalf("slack default = %v", cfg.LifetimeSlack)
	}
	d := core.DefaultConfig(16)
	if d.Ways != 16 || d.DeliWays != 6 {
		t.Fatalf("DefaultConfig = %+v", d)
	}
	if p.Name() != "NUcache" {
		t.Fatal("name")
	}
}

func TestOverheadModel(t *testing.T) {
	cfg := core.DefaultConfig(16)
	o := cfg.Overhead(1024, 28, 64)
	if o.TotalBits <= 0 || o.CacheBits <= 0 {
		t.Fatalf("overhead = %+v", o)
	}
	// The paper's storage argument: small single-digit percentage.
	if pct := o.Percent(); pct <= 0 || pct > 10 {
		t.Fatalf("overhead percent = %.2f, want (0, 10]", pct)
	}
	if o.TotalBits != o.LinesBits+o.MonitorBits+o.SelectionBits {
		t.Fatal("components do not sum")
	}
	if (core.Config{}).Overhead(1024, 28, 64) != (core.Overhead{}) {
		t.Fatal("invalid config should yield zero overhead")
	}
}

func TestNUcacheCrossCoreSelection(t *testing.T) {
	// Two programs share the LLC: core 0 has a protectable hot loop
	// (PC tagged c0), core 1 streams (PC tagged c1). The chosen set must
	// contain only core 0's PC — NUcache's implicit utility partitioning.
	const (
		pcHot    = 0x400100 | 0<<48
		pcStream = 0x400200 | 1<<48
	)
	cfg := nuConfig(8, 3)
	cfg.LifetimeSlack = 2
	nu := core.MustNew(cfg)
	c := newCache(16, 8, 2, nu)
	stream := uint64(1 << 30)
	for round := 0; round < 150; round++ {
		for i := 0; i < 6; i++ {
			for s := 0; s < 16; s++ {
				access(c, 0, pcHot, uint64(i)*16*64+uint64(s)*64)
			}
		}
		for i := 0; i < 10*16; i++ {
			access(c, 1, pcStream, stream)
			stream += 64
		}
	}
	if nu.Epochs == 0 {
		t.Fatal("no epochs")
	}
	chosen := nu.ChosenPCs()
	for _, pc := range chosen {
		if pc>>48 == 1 {
			t.Fatalf("streaming core's PC chosen: %#x", pc)
		}
	}
	found := false
	for _, pc := range chosen {
		if pc == pcHot {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot core's PC not chosen: %#x", chosen)
	}
	// And the retention must translate into DeliWay hits for core 0.
	if nu.DeliHits == 0 {
		t.Fatal("no DeliWay hits")
	}
}

func TestNUcacheFallbackUsesAllWays(t *testing.T) {
	// With nothing choosable, NUcache must behave exactly like full
	// 16-way LRU (not MainWays-only LRU): a working set of exactly
	// Ways lines per set must fully hit after one pass.
	nu := core.MustNew(nuConfig(8, 3))
	c := newCache(4, 8, 1, nu)
	// One pass fills; misses trigger an epoch eventually (chosen stays
	// empty: no reuse observed yet at selection time).
	for pass := 0; pass < 20; pass++ {
		for i := 0; i < 8; i++ {
			for s := 0; s < 4; s++ {
				access(c, 0, 0x999, uint64(i)*4*64+uint64(s)*64)
			}
		}
	}
	// Steady state: everything fits in 8 ways -> all hits.
	hits := uint64(0)
	for i := 0; i < 8; i++ {
		for s := 0; s < 4; s++ {
			if access(c, 0, 0x999, uint64(i)*4*64+uint64(s)*64).Hit {
				hits++
			}
		}
	}
	if hits != 32 {
		t.Fatalf("only %d/32 hits: fallback not using all ways", hits)
	}
}

func TestNUcacheAdaptiveDeliWays(t *testing.T) {
	cfg := nuConfig(8, 6) // up to 6 DeliWays available
	cfg.AdaptiveDeliWays = true
	cfg.LifetimeSlack = 2
	nu := core.MustNew(cfg)
	c := newCache(16, 8, 1, nu)
	pollutedReuse(c, 16, 120, 6, 10)
	if nu.Epochs == 0 {
		t.Fatal("no epochs")
	}
	d := nu.DeliWaysInUse()
	if d < 2 || d > 6 || d%2 != 0 {
		t.Fatalf("adaptive D = %d out of candidate range", d)
	}
	if nu.DeliHits == 0 {
		t.Fatal("adaptive mode delivered no DeliWay hits")
	}
}

func TestNUcacheAdaptiveOffByDefault(t *testing.T) {
	nu := core.MustNew(nuConfig(8, 3))
	if nu.DeliWaysInUse() != 3 {
		t.Fatalf("DeliWaysInUse = %d", nu.DeliWaysInUse())
	}
}
