package core

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/stats"
	"nucache/internal/trace"
)

// checkSetInvariants verifies the structural invariants of one set's
// MainWays/DeliWays organization against the physical lines.
func checkSetInvariants(t *testing.T, p *NUcache, set *cache.Set) {
	t.Helper()
	st := set.State.(*setState)

	if got := st.deli.Len(); got > p.cfg.DeliWays {
		t.Fatalf("set %d: deli holds %d > D=%d", st.setIndex, got, p.cfg.DeliWays)
	}
	if got := st.main.Len() + st.deli.Len(); got > p.cfg.Ways {
		t.Fatalf("set %d: lists track %d > %d ways", st.setIndex, got, p.cfg.Ways)
	}

	seen := map[int]string{}
	for i := 0; i < st.main.Len(); i++ {
		w := st.main.At(i)
		if prev, dup := seen[w]; dup {
			t.Fatalf("set %d: way %d in main and %s", st.setIndex, w, prev)
		}
		seen[w] = "main"
		if !set.Lines[w].Valid {
			t.Fatalf("set %d: main tracks invalid way %d", st.setIndex, w)
		}
	}
	for i := 0; i < st.deli.Len(); i++ {
		w := st.deli.At(i)
		if prev, dup := seen[w]; dup {
			t.Fatalf("set %d: way %d in deli and %s", st.setIndex, w, prev)
		}
		seen[w] = "deli"
		if !set.Lines[w].Valid {
			t.Fatalf("set %d: deli tracks invalid way %d", st.setIndex, w)
		}
	}
	// Every valid line must be tracked by exactly one list.
	for w := range set.Lines {
		if set.Lines[w].Valid && seen[w] == "" {
			t.Fatalf("set %d: valid way %d untracked", st.setIndex, w)
		}
	}
}

// TestNUcacheStructuralInvariantsUnderRandomTraffic hammers the policy
// with adversarial traffic across epochs (including empty-chosen fallback
// transitions) and re-verifies the set invariants continuously.
func TestNUcacheStructuralInvariantsUnderRandomTraffic(t *testing.T) {
	const sets, ways = 8, 8
	p := MustNew(Config{
		Ways:           ways,
		DeliWays:       3,
		Candidates:     8,
		EpochMisses:    700, // frequent epochs: many chosen-set flips
		SampleShift:    0,
		VictimTableCap: 16,
	})
	c := cache.New(cache.Config{
		Name: "inv", SizeBytes: sets * ways * 64, Ways: ways, LineBytes: 64,
	}, p)

	rng := stats.NewRNG(7)
	for i := 0; i < 250000; i++ {
		var addr uint64
		pc := uint64(0x400000)
		switch rng.Intn(4) {
		case 0: // protectable hot loop
			addr = uint64(rng.Intn(3*sets)) * 64
			pc += 4
		case 1: // medium loop
			addr = uint64(rng.Intn(12*sets)) * 64
			pc += 8
		case 2: // stream
			addr = 1<<30 + uint64(i)*64
			pc += 12
		default: // occasional random
			addr = rng.Uint64n(1<<20) &^ 63
			pc += 16
		}
		c.Access(&cache.Request{Addr: addr, PC: pc, Kind: trace.Load})
		if i%1024 == 0 {
			for s := 0; s < c.NumSets(); s++ {
				checkSetInvariants(t, p, c.Set(s))
			}
		}
	}
	if p.Epochs < 10 {
		t.Fatalf("only %d epochs: traffic did not exercise selection flips", p.Epochs)
	}
	for s := 0; s < c.NumSets(); s++ {
		checkSetInvariants(t, p, c.Set(s))
	}
}

// TestNUcacheInvariantsSurviveInvalidation mixes external invalidations
// into the traffic; the policy must self-heal its lists.
func TestNUcacheInvariantsSurviveInvalidation(t *testing.T) {
	const sets, ways = 4, 8
	p := MustNew(Config{
		Ways: ways, DeliWays: 3, EpochMisses: 500, SampleShift: 0,
	})
	c := cache.New(cache.Config{
		Name: "inv2", SizeBytes: sets * ways * 64, Ways: ways, LineBytes: 64,
	}, p)
	rng := stats.NewRNG(11)
	for i := 0; i < 60000; i++ {
		addr := uint64(rng.Intn(16*sets)) * 64
		c.Access(&cache.Request{Addr: addr, PC: 0x400000 + uint64(rng.Intn(3))*4, Kind: trace.Load})
		if rng.Bool(0.01) {
			c.Invalidate(uint64(rng.Intn(16*sets)) * 64)
		}
	}
	// The lists may briefly reference invalidated ways (healed lazily on
	// the next access), so only the hard bounds are asserted here.
	for s := 0; s < c.NumSets(); s++ {
		st := c.Set(s).State.(*setState)
		if st.deli.Len() > p.cfg.DeliWays {
			t.Fatalf("set %d: deli %d > D", s, st.deli.Len())
		}
		if st.main.Len()+st.deli.Len() > p.cfg.Ways {
			t.Fatalf("set %d: %d tracked ways", s, st.main.Len()+st.deli.Len())
		}
	}
	if c.Occupancy() > sets*ways {
		t.Fatal("occupancy exceeded")
	}
}

// TestAdoptDeliWaysOrdering verifies the epoch-boundary adoption puts the
// oldest retained line at the LRU end.
func TestAdoptDeliWaysOrdering(t *testing.T) {
	p := MustNew(Config{Ways: 8, DeliWays: 3})
	st := p.NewSetState(0).(*setState)
	st.main.PushFront(0)
	st.deli.PushBack(5) // oldest
	st.deli.PushBack(6)
	st.deli.PushBack(7) // newest
	p.adoptDeliWays()
	if st.deli.Len() != 0 {
		t.Fatal("deli not drained")
	}
	// Expected main order (front=MRU): 0, 7, 6, 5.
	want := []int{0, 7, 6, 5}
	if st.main.Len() != len(want) {
		t.Fatalf("main len %d", st.main.Len())
	}
	for i, w := range want {
		if st.main.At(i) != w {
			t.Fatalf("main[%d] = %d, want %d", i, st.main.At(i), w)
		}
	}
}
