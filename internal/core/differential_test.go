package core_test

import (
	"math/rand"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

// TestNUcacheDeliZeroMatchesLRU is a differential property test: with
// DeliWays=0 retention is disabled and NUcache's MainWays are a plain LRU
// stack over the full associativity, so its hit/miss behaviour must be
// IDENTICAL to the LRU baseline on any trace — even while the monitor and
// the epoch machinery keep running underneath. A short epoch forces many
// selections (all necessarily empty) so the equivalence also covers the
// selection boundary, not just steady state.
func TestNUcacheDeliZeroMatchesLRU(t *testing.T) {
	for _, seed := range []int64{1, 2, 42, 1337} {
		seed := seed
		t.Run("", func(t *testing.T) {
			mkCache := func(p cache.Policy) *cache.Cache {
				return cache.New(cache.Config{
					Name: "diff", SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, Cores: 1,
				}, p)
			}
			nu := core.MustNew(core.Config{
				Ways:        8,
				DeliWays:    0,
				EpochMisses: 800, // many epoch boundaries within the trace
			})
			cNU := mkCache(nu)
			cLRU := mkCache(policy.NewLRU())

			rng := rand.New(rand.NewSource(seed))
			const accesses = 200_000
			// Footprint ~4x the cache: plenty of hits AND misses. A small
			// PC pool gives the monitor realistic per-PC aggregation.
			const lines = 4 * (64 << 10) / 64
			for i := 0; i < accesses; i++ {
				var addr uint64
				if rng.Intn(4) == 0 {
					addr = uint64(rng.Intn(lines/16)) * 64 // hot region
				} else {
					addr = uint64(rng.Intn(lines)) * 64
				}
				kind := trace.Load
				if rng.Intn(8) == 0 {
					kind = trace.Store
				}
				pc := 0x400000 + uint64(rng.Intn(24))*4
				ra := cache.Request{Addr: addr, PC: pc, Kind: kind}
				rb := ra
				resNU := cNU.Access(&ra)
				resLRU := cLRU.Access(&rb)
				if resNU.Hit != resLRU.Hit {
					t.Fatalf("access %d (addr %#x): NUcache hit=%v, LRU hit=%v",
						i, addr, resNU.Hit, resLRU.Hit)
				}
				if resNU.EvictedValid != resLRU.EvictedValid ||
					(resNU.EvictedValid && resNU.Evicted.Tag != resLRU.Evicted.Tag) {
					t.Fatalf("access %d (addr %#x): eviction diverged (NUcache %+v, LRU %+v)",
						i, addr, resNU.Evicted, resLRU.Evicted)
				}
			}
			if cNU.Stats.Hits != cLRU.Stats.Hits || cNU.Stats.Misses != cLRU.Stats.Misses ||
				cNU.Stats.Evictions != cLRU.Stats.Evictions || cNU.Stats.Writebacks != cLRU.Stats.Writebacks {
				t.Fatalf("aggregate stats diverged: NUcache %+v vs LRU %+v", cNU.Stats, cLRU.Stats)
			}
			if nu.DeliHits != 0 || nu.DeliInsertions != 0 {
				t.Fatalf("DeliWays used with DeliWays=0: hits=%d insertions=%d",
					nu.DeliHits, nu.DeliInsertions)
			}
			if nu.Epochs == 0 {
				t.Fatal("no epochs completed: selection boundary untested")
			}
		})
	}
}
