package core

import (
	"sort"

	"nucache/internal/stats"
)

// Monitor is the Next-Use monitor: on sampled sets it tracks a per-set
// miss counter and a small FIFO victim table of lines that left the
// MainWays. When a later access to a sampled set matches a victim-table
// entry, the elapsed per-set miss count — the *next-use distance* of that
// line, relative to its MainWays exit — is recorded into the filling PC's
// histogram. The monitor also ranks PCs by total misses (delinquency).
type Monitor struct {
	sampleMask uint64
	tableCap   int
	histLin    int
	histLog    int

	sets map[int]*monitorSet
	pcs  map[uint64]*PCStats

	// epoch accumulators
	sampledMisses uint64

	// lifetime counters (never reset; for reports)
	Reuses        uint64 // victim-table matches recorded
	TableOverflow uint64 // entries dropped before any reuse was seen
}

type victimEntry struct {
	tag    uint64
	pc     uint64
	missAt uint64
}

type monitorSet struct {
	missCount uint64
	victims   []victimEntry
}

// PCStats aggregates one PC's monitored behaviour within an epoch.
type PCStats struct {
	// PC is the (core-tagged) instruction address.
	PC uint64
	// Misses counts LLC misses by this PC across all sets this epoch.
	Misses uint64
	// Demotions counts this PC's lines leaving the MainWays in sampled
	// sets this epoch — the rate at which the PC would consume DeliWays.
	Demotions uint64
	// NextUse is the histogram of observed next-use distances (in
	// per-set misses) for this PC's lines.
	NextUse *stats.Histogram
}

// NewMonitor constructs a monitor from the policy configuration.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{
		sampleMask: (1 << cfg.SampleShift) - 1,
		tableCap:   cfg.VictimTableCap,
		histLin:    cfg.HistLinear,
		histLog:    cfg.HistLog2,
		sets:       make(map[int]*monitorSet),
		pcs:        make(map[uint64]*PCStats),
	}
}

// Sampled reports whether setIndex is monitored.
func (m *Monitor) Sampled(setIndex int) bool {
	return uint64(setIndex)&m.sampleMask == 0
}

func (m *Monitor) set(setIndex int) *monitorSet {
	s := m.sets[setIndex]
	if s == nil {
		s = &monitorSet{}
		m.sets[setIndex] = s
	}
	return s
}

func (m *Monitor) pc(pc uint64) *PCStats {
	p := m.pcs[pc]
	if p == nil {
		p = &PCStats{PC: pc, NextUse: stats.NewHistogram(m.histLin, m.histLog)}
		m.pcs[pc] = p
	}
	return p
}

// OnAccess observes every access (hit or miss) to the cache. If the tag
// matches a victim-table entry in a sampled set, the next-use distance is
// recorded and the entry retired.
func (m *Monitor) OnAccess(setIndex int, tag uint64) {
	if !m.Sampled(setIndex) {
		return
	}
	s := m.sets[setIndex]
	if s == nil {
		return
	}
	for i := range s.victims {
		if s.victims[i].tag == tag {
			e := s.victims[i]
			m.pc(e.pc).NextUse.Record(s.missCount - e.missAt)
			s.victims = append(s.victims[:i], s.victims[i+1:]...)
			m.Reuses++
			return
		}
	}
}

// OnMiss observes an LLC miss by pc in setIndex.
func (m *Monitor) OnMiss(setIndex int, pc uint64) {
	m.pc(pc).Misses++
	if m.Sampled(setIndex) {
		m.set(setIndex).missCount++
		m.sampledMisses++
	}
}

// OnDemotion observes a line (tag, filled by pc) leaving the MainWays of
// setIndex, whether it is evicted outright or retained in the DeliWays.
func (m *Monitor) OnDemotion(setIndex int, tag, pc uint64) {
	if !m.Sampled(setIndex) {
		return
	}
	s := m.set(setIndex)
	m.pc(pc).Demotions++
	if len(s.victims) >= m.tableCap {
		// Oldest entry never saw a reuse within the table's window.
		s.victims = s.victims[1:]
		m.TableOverflow++
	}
	s.victims = append(s.victims, victimEntry{tag: tag, pc: pc, missAt: s.missCount})
}

// SampledMisses returns the number of misses observed at sampled sets
// this epoch.
func (m *Monitor) SampledMisses() uint64 { return m.sampledMisses }

// TopCandidates returns the n most delinquent PCs of the epoch, ordered
// by descending miss count.
func (m *Monitor) TopCandidates(n int) []*PCStats {
	all := make([]*PCStats, 0, len(m.pcs))
	for _, p := range m.pcs {
		if p.Misses > 0 {
			all = append(all, p)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Misses != all[j].Misses {
			return all[i].Misses > all[j].Misses
		}
		return all[i].PC < all[j].PC // deterministic tie-break
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// TotalMisses returns the number of misses recorded across all PCs this
// epoch (used by characterization experiments).
func (m *Monitor) TotalMisses() uint64 {
	var t uint64
	for _, p := range m.pcs {
		t += p.Misses
	}
	return t
}

// EndEpoch clears per-epoch statistics. Victim tables and per-set miss
// counters persist so in-flight distances spanning the boundary remain
// measurable.
func (m *Monitor) EndEpoch() {
	m.pcs = make(map[uint64]*PCStats)
	m.sampledMisses = 0
}
