package core

import (
	"sort"

	"nucache/internal/stats"
)

// Monitor is the Next-Use monitor: on sampled sets it tracks a per-set
// miss counter and a small FIFO victim table of lines that left the
// MainWays. When a later access to a sampled set matches a victim-table
// entry, the elapsed per-set miss count — the *next-use distance* of that
// line, relative to its MainWays exit — is recorded into the filling PC's
// histogram. The monitor also ranks PCs by total misses (delinquency).
//
// The monitor sits on the simulator's per-access path, so its data
// structures are chosen for allocation-free steady-state operation: a
// dense slice of sampled-set states (indexed by setIndex>>SampleShift)
// instead of a map, an open-addressed PC index over a slice of per-epoch
// PCStats instead of a map, and fixed-capacity victim tables that shift
// in place instead of re-slicing their backing array away.
type Monitor struct {
	sampleMask  uint64
	sampleShift uint
	tableCap    int
	histLin     int
	histLog     int

	sets []monitorSet // sampled set i lives at index i>>sampleShift
	pcs  []*PCStats   // this epoch's PCs, in first-miss order
	idx  pcIndex      // PC -> position in pcs

	// epoch accumulators
	sampledMisses uint64

	// lifetime counters (never reset; for reports)
	Reuses        uint64 // victim-table matches recorded
	TableOverflow uint64 // entries dropped before any reuse was seen
}

type victimEntry struct {
	tag    uint64
	pc     uint64
	missAt uint64
}

type monitorSet struct {
	missCount uint64
	victims   []victimEntry // cap fixed at tableCap once allocated
}

// PCStats aggregates one PC's monitored behaviour within an epoch.
type PCStats struct {
	// PC is the (core-tagged) instruction address.
	PC uint64
	// Misses counts LLC misses by this PC across all sets this epoch.
	Misses uint64
	// Demotions counts this PC's lines leaving the MainWays in sampled
	// sets this epoch — the rate at which the PC would consume DeliWays.
	Demotions uint64
	// NextUse is the histogram of observed next-use distances (in
	// per-set misses) for this PC's lines.
	NextUse *stats.Histogram
}

// NewMonitor constructs a monitor from the policy configuration.
func NewMonitor(cfg Config) *Monitor {
	m := &Monitor{
		sampleMask:  (1 << cfg.SampleShift) - 1,
		sampleShift: cfg.SampleShift,
		tableCap:    cfg.VictimTableCap,
		histLin:     cfg.HistLinear,
		histLog:     cfg.HistLog2,
	}
	m.idx.init(64)
	return m
}

// Sampled reports whether setIndex is monitored.
func (m *Monitor) Sampled(setIndex int) bool {
	return uint64(setIndex)&m.sampleMask == 0
}

// set returns the state of a sampled set, growing the dense slice on
// first touch (the simulator's set indices are bounded by the cache
// geometry, so growth stops after the first pass over the sets).
func (m *Monitor) set(setIndex int) *monitorSet {
	i := setIndex >> m.sampleShift
	for len(m.sets) <= i {
		m.sets = append(m.sets, monitorSet{})
	}
	return &m.sets[i]
}

// pc returns the epoch's stats for pc, creating them on first miss.
func (m *Monitor) pc(pc uint64) *PCStats {
	if i := m.idx.get(pc); i >= 0 {
		return m.pcs[i]
	}
	p := &PCStats{PC: pc, NextUse: stats.NewHistogram(m.histLin, m.histLog)}
	m.idx.put(pc, int32(len(m.pcs)))
	m.pcs = append(m.pcs, p)
	return p
}

// lookupPC returns the epoch's stats for pc, or nil (tests, tools).
func (m *Monitor) lookupPC(pc uint64) *PCStats {
	if i := m.idx.get(pc); i >= 0 {
		return m.pcs[i]
	}
	return nil
}

// OnAccess observes every access (hit or miss) to the cache. If the tag
// matches a victim-table entry in a sampled set, the next-use distance is
// recorded and the entry retired. The guard is split from the table scan
// so the non-sampled early-out (63 of 64 accesses) inlines into the
// caller's access loop.
func (m *Monitor) OnAccess(setIndex int, tag uint64) {
	if uint64(setIndex)&m.sampleMask != 0 {
		return
	}
	m.sampledAccess(setIndex, tag)
}

func (m *Monitor) sampledAccess(setIndex int, tag uint64) {
	i := setIndex >> m.sampleShift
	if i >= len(m.sets) {
		return
	}
	s := &m.sets[i]
	for vi := range s.victims {
		if s.victims[vi].tag == tag {
			e := s.victims[vi]
			m.pc(e.pc).NextUse.Record(s.missCount - e.missAt)
			s.victims = append(s.victims[:vi], s.victims[vi+1:]...)
			m.Reuses++
			return
		}
	}
}

// OnMiss observes an LLC miss by pc in setIndex.
func (m *Monitor) OnMiss(setIndex int, pc uint64) {
	// Fast path: the PC has already missed this epoch, so the index hit
	// avoids the allocation branch in pc() entirely.
	if i := m.idx.get(pc); i >= 0 {
		m.pcs[i].Misses++
	} else {
		m.pc(pc).Misses++
	}
	if uint64(setIndex)&m.sampleMask == 0 {
		m.set(setIndex).missCount++
		m.sampledMisses++
	}
}

// OnDemotion observes a line (tag, filled by pc) leaving the MainWays of
// setIndex, whether it is evicted outright or retained in the DeliWays.
// Split like OnAccess so the non-sampled early-out inlines per miss.
func (m *Monitor) OnDemotion(setIndex int, tag, pc uint64) {
	if uint64(setIndex)&m.sampleMask != 0 {
		return
	}
	m.sampledDemotion(setIndex, tag, pc)
}

func (m *Monitor) sampledDemotion(setIndex int, tag, pc uint64) {
	s := m.set(setIndex)
	m.pc(pc).Demotions++
	if s.victims == nil {
		s.victims = make([]victimEntry, 0, m.tableCap)
	}
	if len(s.victims) >= m.tableCap {
		// Oldest entry never saw a reuse within the table's window.
		// Shift in place so the append below reuses the backing array.
		copy(s.victims, s.victims[1:])
		s.victims = s.victims[:len(s.victims)-1]
		m.TableOverflow++
	}
	s.victims = append(s.victims, victimEntry{tag: tag, pc: pc, missAt: s.missCount})
}

// SampledMisses returns the number of misses observed at sampled sets
// this epoch.
func (m *Monitor) SampledMisses() uint64 { return m.sampledMisses }

// TopCandidates returns the n most delinquent PCs of the epoch, ordered
// by descending miss count.
func (m *Monitor) TopCandidates(n int) []*PCStats {
	all := make([]*PCStats, 0, len(m.pcs))
	for _, p := range m.pcs {
		if p.Misses > 0 {
			all = append(all, p)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Misses != all[j].Misses {
			return all[i].Misses > all[j].Misses
		}
		return all[i].PC < all[j].PC // deterministic tie-break
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// TotalMisses returns the number of misses recorded across all PCs this
// epoch (used by characterization experiments).
func (m *Monitor) TotalMisses() uint64 {
	var t uint64
	for _, p := range m.pcs {
		t += p.Misses
	}
	return t
}

// EndEpoch clears per-epoch statistics. Victim tables and per-set miss
// counters persist so in-flight distances spanning the boundary remain
// measurable. The PCStats handed out this epoch stay valid (selection
// results and experiment reports hold them across the boundary); only
// the monitor's own index forgets them.
func (m *Monitor) EndEpoch() {
	m.pcs = m.pcs[:0]
	m.idx.reset()
	m.sampledMisses = 0
}

// pcIndex is a linear-probed open-addressed map from PC to a position in
// Monitor.pcs. It replaces a Go map on the per-miss path: lookups are a
// multiplicative hash plus a short probe, and reset is a memclr instead
// of a reallocation.
type pcIndex struct {
	keys []uint64
	vals []int32 // position+1; 0 marks an empty slot
	used int
	mask uint64
}

func (t *pcIndex) init(n int) {
	t.keys = make([]uint64, n)
	t.vals = make([]int32, n)
	t.mask = uint64(n - 1)
	t.used = 0
}

// slot hashes pc to a starting probe position (Fibonacci hashing; the
// high bits of the product are well mixed, so fold them onto the mask).
func (t *pcIndex) slot(pc uint64) uint64 {
	h := pc * 0x9e3779b97f4a7c15
	return (h >> 32) & t.mask
}

// get returns the stored position for pc, or -1.
func (t *pcIndex) get(pc uint64) int32 {
	for i := t.slot(pc); ; i = (i + 1) & t.mask {
		v := t.vals[i]
		if v == 0 {
			return -1
		}
		if t.keys[i] == pc {
			return v - 1
		}
	}
}

// put inserts pc -> pos. pc must not already be present.
func (t *pcIndex) put(pc uint64, pos int32) {
	if 4*(t.used+1) > 3*len(t.keys) {
		t.grow()
	}
	for i := t.slot(pc); ; i = (i + 1) & t.mask {
		if t.vals[i] == 0 {
			t.keys[i] = pc
			t.vals[i] = pos + 1
			t.used++
			return
		}
	}
}

func (t *pcIndex) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(2 * len(oldKeys))
	for i, v := range oldVals {
		if v != 0 {
			t.put(oldKeys[i], v-1)
		}
	}
}

// reset empties the index, keeping its capacity.
func (t *pcIndex) reset() {
	clear(t.vals)
	t.used = 0
}
