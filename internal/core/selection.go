package core

import (
	"math"
	"sort"
)

// The cost-benefit PC selection. Retained lines drain through the D
// per-set DeliWays at the rate the chosen PCs demote lines, so choosing a
// set S of PCs gives every retained line an extra lifetime of
//
//	lifetime(S) = D * sampledMisses / demotions(S)   [per-set misses]
//
// (per-set quantities cancel because both the miss counter and the
// demotion counter are summed over the same sampled sets). The expected
// extra hits are the retained lines whose next-use distance fits:
//
//	benefit(S) = Σ_{p∈S} |{lines of p : nextUse <= lifetime(S)}|
//
// Adding a PC to S contributes its own short-distance lines but shrinks
// everyone's lifetime. The selection orders candidates by ascending mean
// next-use distance — cheapest to hold first — and evaluates every prefix,
// keeping the best. This evaluates exactly the paper's trade-off with
// O(N²) histogram queries for N candidates (N ≤ 32 by default).

// SelectionReport captures the outcome of one selection for logs/tests.
type SelectionReport struct {
	// Epoch is the 1-based epoch number.
	Epoch int
	// Candidates is how many PCs were considered.
	Candidates int
	// Chosen is the selected PC count.
	Chosen int
	// DeliWays is the split the selection ran for (fixed-configuration
	// NUcache always reports the configured D; adaptive mode reports the
	// chosen D).
	DeliWays int
	// Lifetime is the projected DeliWays lifetime (per-set misses).
	Lifetime uint64
	// Benefit is the projected extra hits for the epoch.
	Benefit uint64
	// SampledMisses is the epoch's sampled miss volume.
	SampledMisses uint64
}

// SelectPCs runs the cost-benefit analysis and returns the chosen PC set
// as a slice sorted ascending (the policy's hot path searches it).
// slack scales the projected lifetime before comparing against observed
// distances (slack <= 0 selects the default of 1). Values above 1 model
// burstiness optimism — lines demoted late in a burst survive longer than
// the average drain rate suggests — but empirically over-select PCs and
// flood the FIFO, so the default stays at the exact rate model.
func SelectPCs(cands []*PCStats, deliWays int, sampledMisses uint64, maxChosen int, slack float64) ([]uint64, SelectionReport) {
	if slack <= 0 {
		slack = 1
	}
	report := SelectionReport{Candidates: len(cands), SampledMisses: sampledMisses}
	if deliWays == 0 || len(cands) == 0 || sampledMisses == 0 {
		return nil, report
	}

	// Only PCs whose lines actually flow through the MainWays can use the
	// DeliWays; PCs with no observed reuse can only pollute.
	useful := make([]*PCStats, 0, len(cands))
	for _, c := range cands {
		if c.Demotions > 0 && c.NextUse.Total() > 0 {
			useful = append(useful, c)
		}
	}
	if len(useful) == 0 {
		return nil, report
	}
	sort.Slice(useful, func(i, j int) bool {
		mi, mj := useful[i].NextUse.Mean(), useful[j].NextUse.Mean()
		if mi != mj {
			return mi < mj
		}
		// Equal distances: prefer the PC that consumes DeliWays slower.
		if useful[i].Demotions != useful[j].Demotions {
			return useful[i].Demotions < useful[j].Demotions
		}
		return useful[i].PC < useful[j].PC
	})
	if len(useful) > maxChosen {
		useful = useful[:maxChosen]
	}

	bestK, bestBenefit, bestLifetime := bestPrefix(useful, deliWays, sampledMisses, slack)
	chosen := make([]uint64, 0, bestK)
	for i := 0; i < bestK; i++ {
		chosen = append(chosen, useful[i].PC)
	}
	sort.Slice(chosen, func(i, j int) bool { return chosen[i] < chosen[j] })
	report.Chosen = bestK
	report.DeliWays = deliWays
	report.Benefit = bestBenefit
	report.Lifetime = bestLifetime
	return chosen, report
}

// bestPrefix evaluates every prefix of the (cheapest-first) candidate
// ordering for a fixed D and returns the best (k, benefit, lifetime).
func bestPrefix(useful []*PCStats, deliWays int, sampledMisses uint64, slack float64) (int, uint64, uint64) {
	bestK, bestBenefit, bestLifetime := 0, uint64(0), uint64(0)
	var demotions uint64
	for k := 1; k <= len(useful); k++ {
		demotions += useful[k-1].Demotions
		lifetime := scaleLifetime(lifetimeFor(deliWays, sampledMisses, demotions), slack)
		var benefit uint64
		for i := 0; i < k; i++ {
			benefit += useful[i].NextUse.CountAtMost(lifetime)
		}
		if benefit > bestBenefit {
			bestK, bestBenefit, bestLifetime = k, benefit, lifetime
		}
	}
	return bestK, bestBenefit, bestLifetime
}

// SelectPCsAdaptive extends the cost-benefit analysis to choose the
// MainWays/DeliWays split too (the paper's design fixes D at design time;
// this is the natural "future work" extension — the same histograms
// answer the question for every D). Candidate splits are every even D up
// to maxDeliWays. Larger D gives retained lines longer lifetimes but
// shrinks the MainWays, so the benefit is discounted by an estimate of
// the recency hits an LRU stack loses per way removed: lostPerWay,
// typically the monitor's observed hits at the deepest stack positions
// (callers without that estimate pass 0 and get pure retention-benefit
// maximization).
func SelectPCsAdaptive(cands []*PCStats, maxDeliWays int, sampledMisses uint64, maxChosen int, slack float64, lostPerWay uint64) ([]uint64, SelectionReport) {
	best := SelectionReport{Candidates: len(cands), SampledMisses: sampledMisses}
	var bestChosen []uint64
	var bestScore int64
	for d := 2; d <= maxDeliWays; d += 2 {
		chosen, rep := SelectPCs(cands, d, sampledMisses, maxChosen, slack)
		score := int64(rep.Benefit) - int64(d)*int64(lostPerWay)
		if len(chosen) > 0 && score > bestScore {
			bestScore = score
			best = rep
			bestChosen = chosen
		}
	}
	if best.DeliWays == 0 {
		// Nothing profitable at any split: empty selection, D irrelevant.
		best.Candidates = len(cands)
		best.SampledMisses = sampledMisses
	}
	return bestChosen, best
}

// lifetimeFor computes D * sampledMisses / demotions, saturating instead
// of overflowing and treating zero demotions as unbounded lifetime.
func lifetimeFor(deliWays int, sampledMisses, demotions uint64) uint64 {
	if demotions == 0 {
		return math.MaxUint64
	}
	d := uint64(deliWays)
	if sampledMisses > math.MaxUint64/d {
		return math.MaxUint64
	}
	return d * sampledMisses / demotions
}

// scaleLifetime multiplies a lifetime by the slack factor, saturating.
func scaleLifetime(lifetime uint64, slack float64) uint64 {
	if lifetime == math.MaxUint64 {
		return lifetime
	}
	scaled := float64(lifetime) * slack
	if scaled >= math.MaxUint64 {
		return math.MaxUint64
	}
	return uint64(scaled)
}
