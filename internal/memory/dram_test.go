package memory

import (
	"testing"
	"testing/quick"
)

func testDRAM() *DRAM {
	return New(Config{Banks: 4, RowBytes: 1 << 10, RowHitLatency: 100, RowMissLatency: 200})
}

func TestRowHitAfterActivation(t *testing.T) {
	d := testDRAM()
	if got := d.Access(0); got != 200 {
		t.Fatalf("cold access latency %d", got)
	}
	if got := d.Access(512); got != 100 {
		t.Fatalf("same-row latency %d", got)
	}
	if d.RowHits != 1 || d.Accesses != 2 {
		t.Fatalf("stats %d/%d", d.RowHits, d.Accesses)
	}
	if d.RowHitRate() != 0.5 {
		t.Fatalf("rate %v", d.RowHitRate())
	}
}

func TestBankInterleaving(t *testing.T) {
	d := testDRAM()
	// Rows interleave across 4 banks every 1KB: addresses 0, 1K, 2K, 3K
	// land in different banks, so activating each leaves the rest open.
	for bank := uint64(0); bank < 4; bank++ {
		d.Access(bank << 10)
	}
	for bank := uint64(0); bank < 4; bank++ {
		if got := d.Access(bank<<10 + 64); got != 100 {
			t.Fatalf("bank %d lost its open row", bank)
		}
	}
}

func TestRowConflictSameBank(t *testing.T) {
	d := testDRAM()
	d.Access(0)
	// Same bank (0), different row: 4 banks x 1KB rows -> stride 4KB.
	if got := d.Access(4 << 10); got != 200 {
		t.Fatalf("row conflict latency %d", got)
	}
	// The original row is now closed.
	if got := d.Access(0); got != 200 {
		t.Fatalf("closed row latency %d", got)
	}
}

func TestTouchUpdatesState(t *testing.T) {
	d := testDRAM()
	d.Touch(0)
	if got := d.Access(64); got != 100 {
		t.Fatalf("touch did not open row: %d", got)
	}
}

func TestLatencyAlwaysHitOrMiss(t *testing.T) {
	d := testDRAM()
	if err := quick.Check(func(addr uint64) bool {
		l := d.Access(addr)
		return l == 100 || l == 200
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialBeatsRandomRowLocality(t *testing.T) {
	seq := testDRAM()
	for i := uint64(0); i < 4096; i++ {
		seq.Access(i * 64)
	}
	rnd := testDRAM()
	x := uint64(2463534242)
	for i := 0; i < 4096; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		rnd.Access(x &^ 63 % (1 << 30))
	}
	if seq.RowHitRate() < 0.9 {
		t.Fatalf("sequential row-hit rate %v", seq.RowHitRate())
	}
	if rnd.RowHitRate() > 0.2 {
		t.Fatalf("random row-hit rate %v", rnd.RowHitRate())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Banks: 0, RowBytes: 1024, RowHitLatency: 1, RowMissLatency: 2},
		{Banks: 3, RowBytes: 1024, RowHitLatency: 1, RowMissLatency: 2},
		{Banks: 4, RowBytes: 1000, RowHitLatency: 1, RowMissLatency: 2},
		{Banks: 4, RowBytes: 1024, RowHitLatency: 0, RowMissLatency: 2},
		{Banks: 4, RowBytes: 1024, RowHitLatency: 5, RowMissLatency: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on bad config")
		}
	}()
	New(Config{})
}
