// Package memory models main memory behind the LLC. The default timing
// model in internal/cpu charges a flat miss latency; this package adds an
// optional bank/row-buffer DRAM model: each bank keeps one row open, and
// accesses that hit the open row are substantially cheaper than accesses
// that must precharge and activate a new row. The model is deliberately
// small — no command scheduling or refresh — but it captures the
// first-order effect an LLC policy has on memory: miss *locality*, not
// just miss count.
package memory

import "fmt"

// Config describes the DRAM geometry and timing.
type Config struct {
	// Banks is the number of independent banks (power of two).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// RowHitLatency is charged when the access falls in the open row.
	RowHitLatency uint64
	// RowMissLatency is charged when a new row must be activated.
	RowMissLatency uint64
}

// DefaultConfig returns a DDR-era main memory: 16 banks, 8KB rows,
// 140-cycle row hits, 250-cycle row misses (bracketing the flat 200-cycle
// latency of the simple model).
func DefaultConfig() Config {
	return Config{
		Banks:          16,
		RowBytes:       8 << 10,
		RowHitLatency:  140,
		RowMissLatency: 250,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.Banks&(c.Banks-1) != 0 {
		return fmt.Errorf("memory: banks %d not a positive power of two", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("memory: row size %d not a positive power of two", c.RowBytes)
	}
	if c.RowHitLatency == 0 || c.RowMissLatency < c.RowHitLatency {
		return fmt.Errorf("memory: latencies (%d, %d) must satisfy 0 < hit <= miss",
			c.RowHitLatency, c.RowMissLatency)
	}
	return nil
}

// DRAM is an open-row main-memory model.
type DRAM struct {
	cfg      Config
	rowShift uint
	bankMask uint64
	openRow  []uint64

	// Stats.
	Accesses uint64
	RowHits  uint64
}

const noOpenRow = ^uint64(0)

// New constructs a DRAM model; it panics on invalid configuration
// (experiment-setup error).
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{
		cfg:      cfg,
		rowShift: log2(cfg.RowBytes),
		bankMask: uint64(cfg.Banks - 1),
		openRow:  make([]uint64, cfg.Banks),
	}
	for i := range d.openRow {
		d.openRow[i] = noOpenRow
	}
	return d
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// bankRow splits an address into its bank index and row id. Banks
// interleave at row granularity, so sequential rows spread across banks.
func (d *DRAM) bankRow(addr uint64) (int, uint64) {
	r := addr >> d.rowShift
	return int(r & d.bankMask), r >> uint(trailingBits(d.bankMask))
}

// Access services one memory request and returns its latency.
func (d *DRAM) Access(addr uint64) uint64 {
	d.Accesses++
	bank, row := d.bankRow(addr)
	if d.openRow[bank] == row {
		d.RowHits++
		return d.cfg.RowHitLatency
	}
	d.openRow[bank] = row
	return d.cfg.RowMissLatency
}

// Touch updates row state without returning a latency — used for posted
// writes (LLC writebacks) that do not stall the requesting core.
func (d *DRAM) Touch(addr uint64) {
	d.Access(addr)
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}

func log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func trailingBits(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}
