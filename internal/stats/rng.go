// Package stats provides the statistical substrate shared by the simulator:
// deterministic pseudo-random number generation, histograms, and summary
// statistics. Everything here is allocation-conscious because it sits on the
// simulator's per-access hot path.
package stats

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via SplitMix64). It is deliberately not
// crypto-grade; the simulator only needs reproducible streams.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single 64-bit seed.
func (r *RNG) Seed(seed uint64) {
	// SplitMix64 to spread the seed across the full state.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (support {1, 2, ...}). For p >= 1 it returns 1.
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("stats: Geometric with non-positive p")
	}
	n := 1
	for !r.Bool(p) {
		n++
		// Cap pathological tails so a bad p cannot hang the simulator.
		if n >= 1<<20 {
			break
		}
	}
	return n
}

// Split returns a new generator deterministically derived from this one.
// Useful for giving each core or benchmark an independent stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Zipf samples from a Zipf-like distribution over [0, n) with exponent s,
// using rejection-inversion. It is deterministic given the RNG state.
type Zipf struct {
	rng              *RNG
	n                uint64
	s                float64
	oneMinusS        float64
	oneOverOneMinusS float64
	hIntegralX1      float64
	hIntegralN       float64
}

// NewZipf returns a sampler over {0, ..., n-1} with exponent s > 0, s != 1
// handled exactly and s == 1 approximated by s = 1.0001.
func NewZipf(rng *RNG, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("stats: NewZipf with zero n")
	}
	if s <= 0 {
		panic("stats: NewZipf with non-positive s")
	}
	if s == 1 {
		s = 1.0001
	}
	z := &Zipf{rng: rng, n: n, s: s}
	z.oneMinusS = 1 - s
	z.oneOverOneMinusS = 1 / z.oneMinusS
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	return z
}

func (z *Zipf) hIntegral(x float64) float64 {
	logX := logf(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return expf(-z.s * logf(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return expf(helper1(t) * x)
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralN + z.rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInverse(u)
		k := uint64(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		kf := float64(k)
		if u >= z.hIntegral(kf+0.5)-z.h(kf) {
			return k - 1
		}
	}
}

// helper1 computes log1p(x)/x stably for small |x|.
func helper1(x float64) float64 {
	if absf(x) > 1e-8 {
		return log1pf(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x stably for small |x|.
func helper2(x float64) float64 {
	if absf(x) > 1e-8 {
		return expm1f(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}
