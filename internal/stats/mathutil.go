package stats

import "math"

// Thin wrappers so the hot-path files avoid importing math everywhere and
// the Zipf sampler reads close to its reference formulation.

func logf(x float64) float64   { return math.Log(x) }
func expf(x float64) float64   { return math.Exp(x) }
func absf(x float64) float64   { return math.Abs(x) }
func log1pf(x float64) float64 { return math.Log1p(x) }
func expm1f(x float64) float64 { return math.Expm1(x) }

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
// It returns 0 if no positive entries exist.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs, ignoring non-positive
// entries. It returns 0 if no positive entries exist.
func HarmonicMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += 1 / x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(n) / sum
}
