package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	var or uint64
	for i := 0; i < 16; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64ApproximatelyUniform(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit fraction %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / n
	// E[geometric(p)] = 1/p = 4.
	if math.Abs(mean-4) > 0.2 {
		t.Fatalf("geometric mean %v, want ~4", mean)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := NewRNG(19)
	if got := r.Geometric(1); got != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p<=0")
		}
	}()
	r.Geometric(0)
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlapped %d/100", same)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := NewRNG(29)
	z := NewZipf(r, 1000, 1.2)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf sample out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 100 heavily under s=1.2.
	if counts[0] < 10*counts[100] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
	// Monotone-ish head.
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("zipf head not decreasing: %d %d %d", counts[0], counts[1], counts[10])
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(31)
	for _, fn := range []func(){
		func() { NewZipf(r, 0, 1.2) },
		func() { NewZipf(r, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZipfSEqualOneSupported(t *testing.T) {
	r := NewRNG(37)
	z := NewZipf(r, 100, 1)
	for i := 0; i < 1000; i++ {
		if v := z.Next(); v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestMeans(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Fatalf("GeoMean non-positive = %v", got)
	}
	if got := HarmonicMean([]float64{1, 1.0 / 3}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("HarmonicMean = %v", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Fatalf("HarmonicMean(nil) = %v", got)
	}
}
