package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram is a fixed-layout histogram with linear buckets up to
// linearMax and power-of-two buckets above, plus an overflow bucket.
// The layout is chosen to be hardware-plausible for next-use distance
// tracking: short distances need fine resolution, long ones only need
// order-of-magnitude resolution.
type Histogram struct {
	linearMax int      // values < linearMax go into buckets [0, linearMax)
	log2Max   int      // number of log2 buckets after the linear region
	counts    []uint64 // len = linearMax + log2Max + 1 (overflow)
	total     uint64
	sum       uint64 // running sum of recorded values (for Mean)
}

// NewHistogram returns a histogram with linearMax linear buckets and
// log2Buckets power-of-two buckets above the linear region.
func NewHistogram(linearMax, log2Buckets int) *Histogram {
	if linearMax < 1 {
		linearMax = 1
	}
	if log2Buckets < 0 {
		log2Buckets = 0
	}
	return &Histogram{
		linearMax: linearMax,
		log2Max:   log2Buckets,
		counts:    make([]uint64, linearMax+log2Buckets+1),
	}
}

// bucketOf maps a value to its bucket index.
func (h *Histogram) bucketOf(v uint64) int {
	if v < uint64(h.linearMax) {
		return int(v)
	}
	// Power-of-two buckets: [linearMax, 2*linearMax), [2*linearMax, 4*linearMax) ...
	idx := 0
	bound := uint64(h.linearMax)
	for idx < h.log2Max {
		bound <<= 1
		if v < bound {
			return h.linearMax + idx
		}
		idx++
	}
	return h.linearMax + h.log2Max // overflow
}

// lowerBound returns the smallest value mapped to bucket i.
func (h *Histogram) lowerBound(i int) uint64 {
	if i < h.linearMax {
		return uint64(i)
	}
	return uint64(h.linearMax) << uint(i-h.linearMax)
}

// upperBound returns the exclusive upper bound of bucket i
// (the overflow bucket reports ^uint64(0)).
func (h *Histogram) upperBound(i int) uint64 {
	if i < h.linearMax {
		return uint64(i) + 1
	}
	if i >= h.linearMax+h.log2Max {
		return ^uint64(0)
	}
	return uint64(h.linearMax) << uint(i-h.linearMax+1)
}

// Record adds one observation of value v.
func (h *Histogram) Record(v uint64) {
	h.counts[h.bucketOf(v)]++
	h.total++
	h.sum += v
}

// RecordN adds n observations of value v.
func (h *Histogram) RecordN(v uint64, n uint64) {
	h.counts[h.bucketOf(v)] += n
	h.total += n
	h.sum += v * n
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the arithmetic mean of recorded values (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// CountAtMost returns the number of observations whose *bucket upper bound*
// is <= v; i.e. observations that are provably <= v given bucketing. This
// conservative reading is what the NUcache cost-benefit analysis wants: it
// never over-promises hits.
func (h *Histogram) CountAtMost(v uint64) uint64 {
	var n uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if h.upperBound(i)-1 <= v { // upperBound is exclusive and >= 1
			n += c
		}
	}
	return n
}

// Quantile returns an approximate q-quantile (0<=q<=1) using bucket lower
// bounds. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			return h.lowerBound(i)
		}
	}
	return h.lowerBound(len(h.counts) - 1)
}

// LinearMax returns the number of linear buckets.
func (h *Histogram) LinearMax() int { return h.linearMax }

// Log2Buckets returns the number of power-of-two buckets.
func (h *Histogram) Log2Buckets() int { return h.log2Max }

// Counts returns a copy of the raw bucket counts (linear buckets, then
// log2 buckets, then the overflow bucket).
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Sum returns the running sum of recorded values. Together with Counts
// it lets a histogram round-trip through serialization without losing
// Mean(), which consumers use for ordering.
func (h *Histogram) Sum() uint64 { return h.sum }

// HistogramFromCounts reconstructs a histogram from serialized bucket
// counts and value sum (the inverse of Counts/Sum). The counts slice
// must have exactly linearMax+log2Buckets+1 entries.
func HistogramFromCounts(linearMax, log2Buckets int, counts []uint64, sum uint64) (*Histogram, error) {
	h := NewHistogram(linearMax, log2Buckets)
	if len(counts) != len(h.counts) {
		return nil, fmt.Errorf("stats: histogram counts length %d, want %d for layout %d/%d",
			len(counts), len(h.counts), h.linearMax, h.log2Max)
	}
	var total uint64
	for i, c := range counts {
		h.counts[i] = c
		next := total + c
		if next < total {
			return nil, fmt.Errorf("stats: histogram counts overflow uint64")
		}
		total = next
	}
	h.total = total
	h.sum = sum
	return h, nil
}

// Reset clears all recorded observations, keeping the layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
}

// Clone returns a deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		linearMax: h.linearMax,
		log2Max:   h.log2Max,
		counts:    make([]uint64, len(h.counts)),
		total:     h.total,
		sum:       h.sum,
	}
	copy(c.counts, h.counts)
	return c
}

// Merge adds the contents of other into h. The layouts must match.
func (h *Histogram) Merge(other *Histogram) error {
	if h.linearMax != other.linearMax || h.log2Max != other.log2Max {
		return fmt.Errorf("stats: histogram layout mismatch (%d/%d vs %d/%d)",
			h.linearMax, h.log2Max, other.linearMax, other.log2Max)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	return nil
}

// Buckets returns a copy of (lowerBound, count) pairs for non-empty buckets.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, 0, 8)
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, BucketCount{Low: h.lowerBound(i), High: h.upperBound(i), Count: c})
		}
	}
	return out
}

// BucketCount is one non-empty histogram bucket: values in [Low, High).
type BucketCount struct {
	Low, High uint64
	Count     uint64
}

// String renders a compact sparkline-style view, useful in logs and tests.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "hist{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d mean=%.1f", h.total, h.Mean())
	for _, bc := range h.Buckets() {
		if bc.High == ^uint64(0) {
			fmt.Fprintf(&b, " [%d,inf):%d", bc.Low, bc.Count)
		} else {
			fmt.Fprintf(&b, " [%d,%d):%d", bc.Low, bc.High, bc.Count)
		}
	}
	b.WriteString("}")
	return b.String()
}

// Percentiles is a convenience over sorted raw samples, used by tests and
// experiment reports where exact quantiles matter.
func Percentiles(samples []float64, qs ...float64) []float64 {
	if len(samples) == 0 {
		out := make([]float64, len(qs))
		return out
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q <= 0 {
			out[i] = s[0]
			continue
		}
		if q >= 1 {
			out[i] = s[len(s)-1]
			continue
		}
		idx := q * float64(len(s)-1)
		lo := int(idx)
		frac := idx - float64(lo)
		if lo+1 < len(s) {
			out[i] = s[lo]*(1-frac) + s[lo+1]*frac
		} else {
			out[i] = s[lo]
		}
	}
	return out
}
