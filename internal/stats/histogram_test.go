package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramLinearRegion(t *testing.T) {
	h := NewHistogram(8, 4)
	for v := uint64(0); v < 8; v++ {
		h.Record(v)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	for v := uint64(0); v < 8; v++ {
		if got := h.CountAtMost(v); got != v+1 {
			t.Fatalf("CountAtMost(%d) = %d, want %d", v, got, v+1)
		}
	}
}

func TestHistogramLogRegionBounds(t *testing.T) {
	h := NewHistogram(8, 3)
	// Buckets: [0..7] linear, [8,16), [16,32), [32,64), [64, inf).
	cases := []struct {
		v      uint64
		bucket int
	}{
		{7, 7}, {8, 8}, {15, 8}, {16, 9}, {31, 9}, {32, 10}, {63, 10}, {64, 11}, {1 << 40, 11},
	}
	for _, c := range cases {
		if got := h.bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
}

func TestHistogramBoundsRoundTrip(t *testing.T) {
	h := NewHistogram(16, 8)
	for i := 0; i < len(h.counts); i++ {
		lo := h.lowerBound(i)
		if got := h.bucketOf(lo); got != i {
			t.Fatalf("bucketOf(lowerBound(%d)=%d) = %d", i, lo, got)
		}
		hi := h.upperBound(i)
		if hi != ^uint64(0) {
			if got := h.bucketOf(hi); got != i+1 {
				t.Fatalf("bucketOf(upperBound(%d)=%d) = %d, want %d", i, hi, got, i+1)
			}
		}
	}
}

func TestHistogramCountAtMostConservative(t *testing.T) {
	// Property: CountAtMost(v) never exceeds the true count of samples <= v.
	h := NewHistogram(8, 8) // covers values up to 8<<8 = 2048 without overflow
	var samples []uint64
	r := NewRNG(5)
	for i := 0; i < 2000; i++ {
		v := r.Uint64n(300)
		samples = append(samples, v)
		h.Record(v)
	}
	for _, v := range []uint64{0, 1, 7, 8, 20, 64, 100, 299, 1000} {
		truth := uint64(0)
		for _, s := range samples {
			if s <= v {
				truth++
			}
		}
		got := h.CountAtMost(v)
		if got > truth {
			t.Fatalf("CountAtMost(%d) = %d exceeds truth %d", v, got, truth)
		}
	}
	// And at the max value it must count everything.
	if got := h.CountAtMost(1 << 62); got != h.Total() {
		t.Fatalf("CountAtMost(max) = %d, want %d", got, h.Total())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(4, 2)
	h.Record(2)
	h.Record(4)
	h.RecordN(6, 2)
	if got := h.Mean(); got != 4.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(64, 4)
	for v := uint64(0); v < 100; v++ {
		h.Record(v)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %d", q)
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 64 {
		t.Fatalf("median = %d", med)
	}
	if q := h.Quantile(1); q < 64 {
		t.Fatalf("q1 = %d", q)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(4, 2)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

func TestHistogramResetCloneMerge(t *testing.T) {
	h := NewHistogram(8, 2)
	h.Record(3)
	h.Record(9)
	c := h.Clone()
	h.Reset()
	if h.Total() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
	if c.Total() != 2 {
		t.Fatal("clone lost data")
	}
	other := NewHistogram(8, 2)
	other.Record(3)
	if err := c.Merge(other); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 3 {
		t.Fatalf("merge total = %d", c.Total())
	}
	bad := NewHistogram(4, 2)
	if err := c.Merge(bad); err == nil {
		t.Fatal("expected layout mismatch error")
	}
}

func TestHistogramTotalInvariant(t *testing.T) {
	// Property: total equals sum of bucket counts for arbitrary inputs.
	if err := quick.Check(func(vals []uint16) bool {
		h := NewHistogram(8, 6)
		for _, v := range vals {
			h.Record(uint64(v))
		}
		var sum uint64
		for _, bc := range h.Buckets() {
			sum += bc.Count
		}
		return sum == h.Total() && h.Total() == uint64(len(vals))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(4, 2)
	if got := h.String(); got != "hist{empty}" {
		t.Fatalf("empty string = %q", got)
	}
	h.Record(1)
	h.Record(100)
	s := h.String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "inf") {
		t.Fatalf("unexpected string: %q", s)
	}
}

func TestPercentiles(t *testing.T) {
	out := Percentiles([]float64{3, 1, 2}, 0, 0.5, 1)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("percentiles = %v", out)
	}
	empty := Percentiles(nil, 0.5)
	if empty[0] != 0 {
		t.Fatalf("empty percentile = %v", empty)
	}
	interp := Percentiles([]float64{0, 10}, 0.25)
	if interp[0] != 2.5 {
		t.Fatalf("interpolated percentile = %v", interp[0])
	}
}

func TestHistogramRecordNOverflowBuckets(t *testing.T) {
	h := NewHistogram(4, 2)
	h.RecordN(1<<40, 3) // far past the last bucket: overflow
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	// Overflow values are never counted as "at most" anything finite.
	if got := h.CountAtMost(1 << 39); got != 0 {
		t.Fatalf("CountAtMost = %d", got)
	}
}

func TestHistogramBucketsCoverage(t *testing.T) {
	h := NewHistogram(2, 1) // buckets: [0,1) [1,2) [2,4) [4,inf)
	for _, v := range []uint64{0, 1, 2, 3, 4, 100} {
		h.Record(v)
	}
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("buckets = %+v", bs)
	}
	if bs[2].Low != 2 || bs[2].High != 4 || bs[2].Count != 2 {
		t.Fatalf("log bucket = %+v", bs[2])
	}
	if bs[3].High != ^uint64(0) || bs[3].Count != 2 {
		t.Fatalf("overflow bucket = %+v", bs[3])
	}
}
