package mrc_test

// The subsystem's reason to exist, measured: answering a what-if from a
// profile must be orders of magnitude faster than simulating it. The
// benchmarks record the two costs; TestAdvisorSpeedup asserts a
// conservative floor so the property is CI-enforced, not just observed
// (the measured ratio on the reference shape is ~10^4-10^5; the floor
// of 100x leaves room for noisy shared runners).

import (
	"testing"
	"time"

	"nucache/internal/mrc"
	"nucache/internal/policy"
)

// BenchmarkPredict times one model evaluation (the advisor's unit of
// work once a profile exists).
func BenchmarkPredict(b *testing.B) {
	tc := shapeCases()[0]
	p := buildProfile(b, tc)
	alloc := []int{6, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart, Alloc: alloc}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateWhatIf times answering the same question the slow
// way: a full direct simulation of the partitioned machine.
func BenchmarkSimulateWhatIf(b *testing.B) {
	tc := shapeCases()[0]
	alloc := []int{6, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := newShapeSystem(tc, policy.NewStaticPart(alloc))
		sys.Run()
	}
}

// BenchmarkBestPartition times the full argmax search (every
// composition of 8 ways over 2 cores).
func BenchmarkBestPartition(b *testing.B) {
	tc := shapeCases()[0]
	p := buildProfile(b, tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mrc.BestPartition(p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAdvisorSpeedup holds the advisor to its headline claim: >= 100x
// faster than simulating the what-if it answers.
func TestAdvisorSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	tc := shapeCases()[0]
	p := buildProfile(t, tc)
	alloc := []int{6, 2}

	simStart := time.Now()
	const simRuns = 3
	for i := 0; i < simRuns; i++ {
		runShape(t, tc, policy.NewStaticPart(alloc))
	}
	simPer := time.Since(simStart) / simRuns

	const evals = 2000
	evalStart := time.Now()
	for i := 0; i < evals; i++ {
		if _, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart, Alloc: alloc}); err != nil {
			t.Fatal(err)
		}
	}
	evalPer := time.Since(evalStart) / evals

	if evalPer <= 0 {
		evalPer = time.Nanosecond
	}
	ratio := float64(simPer) / float64(evalPer)
	t.Logf("simulate %v vs predict %v per what-if: %.0fx", simPer, evalPer, ratio)
	if ratio < 100 {
		t.Errorf("advisor is only %.0fx faster than simulation (contract: >= 100x)", ratio)
	}
}
