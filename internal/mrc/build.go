package mrc

import (
	"fmt"
	"math/bits"

	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

// BuildFromTapes runs the profiling pass: one walk over each core's
// recorded tape through a full-associativity ATD (the exact per-way hit
// curves) and the NUcache next-use monitor (the DeliWays candidate
// profile). The walk sees the policy-independent access stream, so one
// pass answers what-ifs for every policy the model covers.
func BuildFromTapes(cfg cpu.Config, mixName string, members []string, seed uint64, tapes []*cpu.Tape) (*Profile, error) {
	if len(tapes) != cfg.Cores || len(members) != cfg.Cores {
		return nil, fmt.Errorf("mrc: %d tapes / %d members for %d cores", len(tapes), len(members), cfg.Cores)
	}
	ways := cfg.LLC.Ways
	sets := cfg.LLC.Sets()
	monCfg := core.DefaultConfig(ways)
	memLat := cfg.MemLatency
	if cfg.DRAM != nil {
		// Banked DRAM: charge the row hit/miss average per miss. Hits
		// stay exact; cycles become a bounded approximation.
		memLat = (cfg.DRAM.RowHitLatency + cfg.DRAM.RowMissLatency) / 2
	}
	p := &Profile{
		Version:    Version,
		Mix:        mixName,
		Members:    append([]string(nil), members...),
		Cores:      cfg.Cores,
		Ways:       ways,
		Sets:       sets,
		LineBytes:  cfg.LLC.LineBytes,
		Budget:     cfg.InstrBudget,
		Seed:       seed,
		Warmup:     cfg.WarmupInstr,
		L2:         cfg.L2.SizeBytes > 0,
		Prefetch:   cfg.PrefetchDegree,
		DRAM:       cfg.DRAM != nil,
		LLCLatency: cfg.LLCLatency,
		MemLatency: memLat,
		HistLinear: monCfg.HistLinear,
		HistLog2:   monCfg.HistLog2,
		PerCore:    make([]CoreProfile, cfg.Cores),
	}
	for i, t := range tapes {
		w := &coreWalker{
			umon:       policy.NewUMONProfiler(ways),
			mon:        core.NewMonitor(monCfg),
			offsetBits: uint(bits.TrailingZeros(uint(cfg.LLC.LineBytes))),
			setMask:    uint64(sets - 1),
		}
		if err := cpu.WalkTape(cfg, i, t, w); err != nil {
			return nil, fmt.Errorf("mrc: profile core %d: %w", i, err)
		}
		if !w.haveRecord {
			return nil, fmt.Errorf("mrc: profile core %d: tape ended unrecorded", i)
		}
		cp, err := w.coreProfile(i, members[i], monCfg)
		if err != nil {
			return nil, err
		}
		p.PerCore[i] = cp
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("mrc: built profile invalid: %w", err)
	}
	return p, nil
}

// windowSnap is one statistics snapshot of a walking core, taken at the
// same crossing points the simulator snapshots at.
type windowSnap struct {
	cross          trace.Crossing
	posHits        []uint64
	demandPosHits  []uint64
	accesses       uint64
	demandAccesses uint64
}

// coreWalker shadows one core's LLC-bound stream with the profiling
// monitors. It implements cpu.TapeVisitor.
type coreWalker struct {
	umon       *policy.UMON
	mon        *core.Monitor
	offsetBits uint
	setMask    uint64

	accesses       uint64
	demandAccesses uint64

	haveWarm, haveRecord bool
	warm, rec            windowSnap
}

// Access implements cpu.TapeVisitor, mirroring the hook order the live
// policy sees: the monitor observes the access (victim-table reuse
// check) before the ATD lookup; an ATD miss is the policy's Victim
// call; an ATD stack exit is a demotion.
func (w *coreWalker) Access(addr, pc uint64, _ trace.Kind, demand bool) {
	tag := addr >> w.offsetBits
	setIdx := int(tag & w.setMask)
	w.mon.OnAccess(setIdx, tag)
	pos, evTag, evPC, evicted := w.umon.AccessProfiled(setIdx, tag, pc, demand)
	if pos < 0 {
		w.mon.OnMiss(setIdx, pc)
	}
	if evicted {
		w.mon.OnDemotion(setIdx, evTag, evPC)
	}
	w.accesses++
	if demand {
		w.demandAccesses++
	}
}

// Crossing implements cpu.TapeVisitor: snapshot at warmup, stop at the
// record (or first exhaust) crossing — the profiler never needs events
// past the measurement window, so it never extends the tape beyond
// what a replay run would.
func (w *coreWalker) Crossing(cr trace.Crossing) bool {
	switch cr.Kind {
	case trace.CrossWarmup:
		w.warm = w.snap(cr)
		w.haveWarm = true
		return true
	case trace.CrossRecord:
		w.rec = w.snap(cr)
		w.haveRecord = true
		return false
	case trace.CrossExhaust:
		if !w.haveRecord {
			w.rec = w.snap(cr)
			w.haveRecord = true
		}
		return false
	}
	return true
}

func (w *coreWalker) snap(cr trace.Crossing) windowSnap {
	return windowSnap{
		cross:          cr,
		posHits:        w.umon.Hits(),
		demandPosHits:  w.umon.DemandHits(),
		accesses:       w.accesses,
		demandAccesses: w.demandAccesses,
	}
}

// coreProfile assembles the measurement window (record minus warmup)
// and the monitor's candidate profile into a CoreProfile.
func (w *coreWalker) coreProfile(index int, bench string, monCfg core.Config) (CoreProfile, error) {
	rec, warm := w.rec, w.warm
	if !w.haveWarm {
		warm = windowSnap{
			posHits:       make([]uint64, len(rec.posHits)),
			demandPosHits: make([]uint64, len(rec.demandPosHits)),
		}
	}
	cp := CoreProfile{
		Core:           index,
		Benchmark:      bench,
		Instructions:   rec.cross.Instr - warm.cross.Instr,
		PICycles:       rec.cross.PEnd - warm.cross.PEnd,
		MemAccesses:    rec.cross.Mem - warm.cross.Mem,
		L1Hits:         rec.cross.L1Hits - warm.cross.L1Hits,
		L1Misses:       rec.cross.L1Misses - warm.cross.L1Misses,
		Accesses:       rec.accesses - warm.accesses,
		DemandAccesses: rec.demandAccesses - warm.demandAccesses,
		PosHits:        make([]uint64, len(rec.posHits)),
		DemandPosHits:  make([]uint64, len(rec.demandPosHits)),
		SampledMisses:  w.mon.SampledMisses(),
	}
	for i := range cp.PosHits {
		cp.PosHits[i] = rec.posHits[i] - warm.posHits[i]
		cp.DemandPosHits[i] = rec.demandPosHits[i] - warm.demandPosHits[i]
	}
	for _, cand := range w.mon.TopCandidates(monCfg.Candidates) {
		cp.PCs = append(cp.PCs, PCProfile{
			PC:            cand.PC,
			Misses:        cand.Misses,
			Demotions:     cand.Demotions,
			NextUseCounts: cand.NextUse.Counts(),
			NextUseSum:    cand.NextUse.Sum(),
		})
	}
	return cp, nil
}
