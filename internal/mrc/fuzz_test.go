package mrc

// Fuzz coverage for the profile artifact codec. Profiles transit the
// content-addressed cache's disk tier, so DecodeProfile sees whatever
// bytes a crashed or corrupted store hands back. The contract under
// corruption mirrors the tape decoder's (FuzzFilteredDecode): return an
// error — never panic, and never hand a malformed profile to the model.
// A decodable profile must be Validate-clean, and Predict over it must
// answer (or refuse) without panicking.

import (
	"testing"
)

// fuzzProfile builds a small valid profile for the seed corpus.
func fuzzProfile() *Profile {
	hist := make([]uint64, 16+16+1)
	hist[0], hist[3], hist[16+4] = 5, 2, 1
	return &Profile{
		Version:    Version,
		Mix:        "fuzz",
		Members:    []string{"art-like", "swim-like"},
		Cores:      2,
		Ways:       8,
		Sets:       128,
		LineBytes:  64,
		Budget:     30_000,
		Seed:       1,
		LLCLatency: 10,
		MemLatency: 100,
		HistLinear: 16,
		HistLog2:   16,
		PerCore: []CoreProfile{
			{
				Core: 0, Benchmark: "art-like",
				Instructions: 30_000, PICycles: 60_000,
				MemAccesses: 9_000, L1Hits: 6_000, L1Misses: 3_000,
				Accesses: 3_000, DemandAccesses: 3_000,
				PosHits:       []uint64{400, 200, 100, 50, 25, 12, 6, 3},
				DemandPosHits: []uint64{400, 200, 100, 50, 25, 12, 6, 3},
				SampledMisses: 70,
				PCs: []PCProfile{{
					PC: 0x400100, Misses: 120, Demotions: 80,
					NextUseCounts: hist, NextUseSum: 23,
				}},
			},
			{
				Core: 1, Benchmark: "swim-like",
				Instructions: 30_000, PICycles: 55_000,
				MemAccesses: 8_000, L1Hits: 5_500, L1Misses: 2_500,
				Accesses: 2_600, DemandAccesses: 2_500,
				PosHits:       []uint64{300, 150, 75, 40, 20, 10, 5, 2},
				DemandPosHits: []uint64{290, 150, 75, 40, 20, 10, 5, 2},
				SampledMisses: 55,
			},
		},
	}
}

// FuzzProfileDecode throws truncated, bit-flipped and arbitrary byte
// strings at DecodeProfile.
func FuzzProfileDecode(f *testing.F) {
	valid, err := EncodeProfile(fuzzProfile())
	if err != nil {
		f.Fatalf("seed profile does not encode: %v", err)
	}
	f.Add(append([]byte(nil), valid...))
	f.Add(append([]byte(nil), valid[:len(valid)/2]...)) // truncated
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x20 // case-flip inside a key or digit
	f.Add(flip)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"cores":-1}`))
	f.Add([]byte(`{"version":1,"cores":2,"ways":1e9}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(data)
		if err != nil {
			return // detected corruption: the required outcome
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("DecodeProfile returned an invalid profile: %v", err)
		}
		// The model must answer (or refuse) every decodable profile
		// without panicking, for each policy it covers.
		for _, w := range []WhatIf{
			{Policy: PolicyPart},
			{Policy: PolicyLRU},
			{Policy: PolicyNUcache},
			{Policy: PolicyNUcache, DeliWays: -1},
		} {
			if _, err := Predict(p, w); err != nil {
				continue
			}
		}
		if _, err := BestPartition(p); err != nil {
			t.Fatalf("BestPartition rejected a validated profile: %v", err)
		}
		if _, err := BestDeliWays(p); err != nil {
			t.Fatalf("BestDeliWays rejected a validated profile: %v", err)
		}
	})
}

// TestProfileRoundTrip pins the codec: encode → decode is identity-
// preserving for the model (same predictions), and EncodeProfile
// refuses invalid profiles instead of laundering them into the cache.
func TestProfileRoundTrip(t *testing.T) {
	p := fuzzProfile()
	data, err := EncodeProfile(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeProfile(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	a, err := Predict(p, WhatIf{Policy: PolicyPart})
	if err != nil {
		t.Fatalf("predict original: %v", err)
	}
	b, err := Predict(q, WhatIf{Policy: PolicyPart})
	if err != nil {
		t.Fatalf("predict round-tripped: %v", err)
	}
	if a.Throughput != b.Throughput || a.MissRate != b.MissRate {
		t.Errorf("round trip changed the model's answer: %v vs %v", a, b)
	}

	bad := fuzzProfile()
	bad.PerCore[0].DemandAccesses = bad.PerCore[0].Accesses + 1
	if _, err := EncodeProfile(bad); err == nil {
		t.Error("EncodeProfile accepted demand accesses > accesses")
	}
}
