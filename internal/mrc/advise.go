package mrc

import (
	"fmt"
	"math"
	"strings"

	"nucache/internal/core"
	"nucache/internal/stats"
)

// Model policies the advisor evaluates.
const (
	PolicyPart    = "part"    // static way partition (exact)
	PolicyLRU     = "lru"     // shared LRU (effective-ways composition)
	PolicyNUcache = "nucache" // NUcache DeliWays split (composition + cost-benefit)
)

// WhatIf is one allocation question against a profile.
type WhatIf struct {
	// Policy selects the model: "part", "lru" or "nucache".
	Policy string
	// Alloc is the per-core way allocation for "part" (empty = even
	// split).
	Alloc []int
	// DeliWays is the MainWays/DeliWays split for "nucache" (0 = the
	// paper's default of 6, clamped to ways-1; negative = no DeliWays,
	// i.e. plain shared LRU with the NUcache label).
	DeliWays int
}

// CorePrediction is the model's answer for one core.
type CorePrediction struct {
	Core      int    `json:"core"`
	Benchmark string `json:"benchmark"`
	// Ways is the capacity the model granted this core: the exact
	// partition share for "part", the effective-ways fixed point for
	// the shared models.
	Ways         float64 `json:"ways"`
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Accesses     uint64  `json:"accesses"`
	DemandMisses uint64  `json:"demand_misses"`
	MissRate     float64 `json:"miss_rate"`
	Cycles       uint64  `json:"cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`
}

// Prediction is the model's answer for one what-if.
type Prediction struct {
	Policy   string `json:"policy"`
	Alloc    []int  `json:"alloc,omitempty"`
	DeliWays int    `json:"deliways,omitempty"`
	// HitsExact reports that per-core hit/miss counts are exact (static
	// partitions); CyclesExact that cycles and IPC are too (static
	// partitions under flat memory).
	HitsExact   bool             `json:"hits_exact"`
	CyclesExact bool             `json:"cycles_exact"`
	PerCore     []CorePrediction `json:"per_core"`
	// MissRate is the aggregate LLC miss rate; Throughput the summed
	// IPC (the search objective).
	MissRate   float64 `json:"miss_rate"`
	Throughput float64 `json:"throughput"`
	// Evaluated counts model evaluations behind this answer (1 for a
	// direct what-if, the search-space size for "best" answers).
	Evaluated int `json:"evaluated"`
}

// Predict answers one what-if from a validated profile. It is pure
// table math over the profiled curves — microseconds, no simulation.
func Predict(p *Profile, w WhatIf) (*Prediction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch strings.ToLower(w.Policy) {
	case PolicyPart, "":
		alloc := w.Alloc
		if len(alloc) == 0 {
			alloc = evenSplit(p.Cores, p.Ways)
		}
		if err := CheckAlloc(p, alloc); err != nil {
			return nil, err
		}
		return predictPart(p, alloc), nil
	case PolicyLRU:
		return predictShared(p, PolicyLRU, 0), nil
	case PolicyNUcache:
		d := w.DeliWays
		switch {
		case d < 0:
			d = 0
		case d == 0:
			d = 6
		}
		if d > p.Ways-1 {
			d = p.Ways - 1
		}
		return predictShared(p, PolicyNUcache, d), nil
	default:
		return nil, fmt.Errorf("mrc: unknown model policy %q", w.Policy)
	}
}

// CheckAlloc validates a static partition against a profile's shape.
func CheckAlloc(p *Profile, alloc []int) error {
	if len(alloc) != p.Cores {
		return fmt.Errorf("mrc: allocation for %d cores, profile has %d", len(alloc), p.Cores)
	}
	total := 0
	for i, a := range alloc {
		if a < 1 {
			return fmt.Errorf("mrc: core %d allocated %d ways", i, a)
		}
		total += a
	}
	if total != p.Ways {
		return fmt.Errorf("mrc: allocation sums to %d ways, cache has %d", total, p.Ways)
	}
	return nil
}

func evenSplit(cores, ways int) []int {
	alloc := make([]int, cores)
	for i := range alloc {
		alloc[i] = ways / cores
	}
	for i := 0; i < ways%cores; i++ {
		alloc[i]++
	}
	return alloc
}

// predictPart is the exact path: partition ≡ private LRU per core, so
// hit counts are ATD prefix sums and cycles recompose the replay
// engine's timing identity (policy-independent cycles + per-access LLC
// latency + per-demand-miss memory latency).
func predictPart(p *Profile, alloc []int) *Prediction {
	pred := &Prediction{
		Policy:      PolicyPart,
		Alloc:       append([]int(nil), alloc...),
		HitsExact:   true,
		CyclesExact: !p.DRAM,
		PerCore:     make([]CorePrediction, p.Cores),
		Evaluated:   1,
	}
	for i := range p.PerCore {
		c := &p.PerCore[i]
		var hits, demandHits uint64
		for w := 0; w < alloc[i]; w++ {
			hits += c.PosHits[w]
			demandHits += c.DemandPosHits[w]
		}
		pred.PerCore[i] = corePrediction(p, i, float64(alloc[i]), hits, demandHits)
	}
	finish(p, pred)
	return pred
}

// predictShared is the composed path for shared LRU and NUcache: an
// effective-ways fixed point (each core's steady-state occupancy is
// proportional to its insertion — miss — rate) splits the shared
// capacity, the per-core curves are interpolated at that share, and
// for NUcache the profiled next-use histograms add the retention
// benefit of the chosen delinquent PCs.
func predictShared(p *Profile, polName string, deliWays int) *Prediction {
	pred := &Prediction{
		Policy:    polName,
		DeliWays:  deliWays,
		PerCore:   make([]CorePrediction, p.Cores),
		Evaluated: 1,
	}
	benefit := make([]float64, p.Cores)
	mainWays := p.Ways
	if deliWays > 0 {
		chosenBenefit, ok := nucacheBenefit(p, deliWays, benefit)
		if ok && chosenBenefit > 0 {
			mainWays = p.Ways - deliWays
		} else {
			// Nothing worth retaining: the policy falls back to using
			// the whole set as MainWays, i.e. plain shared LRU.
			for i := range benefit {
				benefit[i] = 0
			}
		}
	}
	eff := effectiveWays(p, float64(mainWays))
	for i := range p.PerCore {
		c := &p.PerCore[i]
		hits := curveAt(c.PosHits, eff[i]) + benefit[i]
		demandHits := curveAt(c.DemandPosHits, eff[i])
		if c.Accesses > 0 {
			// Attribute retention hits to the demand curve in the same
			// proportion they appear in the overall stream.
			demandHits += benefit[i] * float64(c.DemandAccesses) / float64(c.Accesses)
		}
		pred.PerCore[i] = corePrediction(p, i, eff[i],
			clampCount(hits, c.Accesses), clampCount(demandHits, c.DemandAccesses))
	}
	finish(p, pred)
	return pred
}

// nucacheBenefit runs the paper's cost-benefit selection on the merged
// candidate set (the live policy keeps one monitor over core-tagged
// PCs) and attributes each chosen PC's projected extra hits to its
// core. Returns the total benefit and whether any PC was chosen.
func nucacheBenefit(p *Profile, deliWays int, out []float64) (float64, bool) {
	var cands []*core.PCStats
	owner := make(map[uint64]int)
	var sampledMisses uint64
	for i := range p.PerCore {
		c := &p.PerCore[i]
		sampledMisses += c.SampledMisses
		for j := range c.PCs {
			pc := &c.PCs[j]
			h, err := stats.HistogramFromCounts(p.HistLinear, p.HistLog2, pc.NextUseCounts, pc.NextUseSum)
			if err != nil {
				continue // unreachable on validated profiles
			}
			cands = append(cands, &core.PCStats{
				PC: pc.PC, Misses: pc.Misses, Demotions: pc.Demotions, NextUse: h,
			})
			owner[pc.PC] = i
		}
	}
	monCfg := core.DefaultConfig(p.Ways)
	chosen, report := core.SelectPCs(cands, deliWays, sampledMisses, monCfg.Candidates, monCfg.LifetimeSlack)
	if len(chosen) == 0 {
		return 0, false
	}
	chosenSet := make(map[uint64]bool, len(chosen))
	for _, pc := range chosen {
		chosenSet[pc] = true
	}
	var total float64
	for _, cand := range cands {
		if !chosenSet[cand.PC] {
			continue
		}
		b := float64(cand.NextUse.CountAtMost(report.Lifetime))
		out[owner[cand.PC]] += b
		total += b
	}
	return total, true
}

// effectiveWays solves the shared-LRU occupancy fixed point: each
// core's share of the capacity is proportional to its insertion rate
// (its miss rate at its own share), damped to convergence.
func effectiveWays(p *Profile, capacity float64) []float64 {
	n := p.Cores
	eff := make([]float64, n)
	for i := range eff {
		eff[i] = capacity / float64(n)
	}
	miss := make([]float64, n)
	for iter := 0; iter < 100; iter++ {
		var total float64
		for i := range p.PerCore {
			c := &p.PerCore[i]
			m := float64(c.Accesses) - curveAt(c.PosHits, eff[i])
			if m < 0 {
				m = 0
			}
			miss[i] = m
			total += m
		}
		if total <= 0 {
			return eff
		}
		for i := range eff {
			target := capacity * miss[i] / total
			eff[i] = 0.5*eff[i] + 0.5*target
		}
	}
	return eff
}

// curveAt linearly interpolates the cumulative hit curve at a
// fractional way count (H(0)=0, H(k)=sum of the first k positions).
func curveAt(posHits []uint64, ways float64) float64 {
	if ways <= 0 {
		return 0
	}
	if ways >= float64(len(posHits)) {
		var sum uint64
		for _, h := range posHits {
			sum += h
		}
		return float64(sum)
	}
	k := int(ways)
	var sum uint64
	for i := 0; i < k; i++ {
		sum += posHits[i]
	}
	return float64(sum) + (ways-float64(k))*float64(posHits[k])
}

func clampCount(v float64, limit uint64) uint64 {
	if v <= 0 {
		return 0
	}
	n := uint64(math.Round(v))
	if n > limit {
		return limit
	}
	return n
}

// corePrediction assembles one core's numbers from its hit counts via
// the replay timing identity.
func corePrediction(p *Profile, i int, ways float64, hits, demandHits uint64) CorePrediction {
	c := &p.PerCore[i]
	demandMisses := c.DemandAccesses - demandHits
	cycles := c.PICycles + c.DemandAccesses*p.LLCLatency + demandMisses*p.MemLatency
	cp := CorePrediction{
		Core:         i,
		Benchmark:    c.Benchmark,
		Ways:         ways,
		Hits:         hits,
		Misses:       c.Accesses - hits,
		Accesses:     c.Accesses,
		DemandMisses: demandMisses,
		Cycles:       cycles,
		Instructions: c.Instructions,
	}
	if c.Accesses > 0 {
		cp.MissRate = float64(cp.Misses) / float64(c.Accesses)
	}
	if cycles > 0 {
		cp.IPC = float64(c.Instructions) / float64(cycles)
	}
	return cp
}

func finish(p *Profile, pred *Prediction) {
	var accesses, misses uint64
	for i := range pred.PerCore {
		accesses += pred.PerCore[i].Accesses
		misses += pred.PerCore[i].Misses
		pred.Throughput += pred.PerCore[i].IPC
	}
	if accesses > 0 {
		pred.MissRate = float64(misses) / float64(accesses)
	}
}

// BestPartition searches the static-partition space for the maximum
// summed IPC: exhaustive over all compositions of Ways into Cores
// positive parts when that space is small (C(15,3)=455 for a 4-core
// 16-way LLC), greedy way-by-way otherwise. Deterministic: ties keep
// the lexicographically smallest allocation.
func BestPartition(p *Profile) (*Prediction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	space := compositions(p.Ways-p.Cores, p.Cores)
	if space > 200_000 {
		return bestPartitionGreedy(p), nil
	}
	var best *Prediction
	evaluated := 0
	alloc := make([]int, p.Cores)
	var walk func(core, remaining int)
	walk = func(core, remaining int) {
		if core == p.Cores-1 {
			alloc[core] = remaining
			pred := predictPart(p, alloc)
			evaluated++
			if best == nil || pred.Throughput > best.Throughput {
				best = pred
			}
			return
		}
		for a := 1; a <= remaining-(p.Cores-1-core); a++ {
			alloc[core] = a
			walk(core+1, remaining-a)
		}
	}
	walk(0, p.Ways)
	best.Evaluated = evaluated
	return best, nil
}

// bestPartitionGreedy allocates one way at a time to the core whose
// throughput gains most (UCP lookahead's shape, driven by the model).
func bestPartitionGreedy(p *Profile) *Prediction {
	alloc := make([]int, p.Cores)
	for i := range alloc {
		alloc[i] = 1
	}
	evaluated := 0
	for used := p.Cores; used < p.Ways; used++ {
		bestCore, bestT := 0, math.Inf(-1)
		for i := range alloc {
			alloc[i]++
			t := predictPart(p, partialFill(alloc, p.Ways)).Throughput
			evaluated++
			if t > bestT {
				bestCore, bestT = i, t
			}
			alloc[i]--
		}
		alloc[bestCore]++
	}
	pred := predictPart(p, alloc)
	pred.Evaluated = evaluated + 1
	return pred
}

// partialFill pads a partial allocation to the full way count by
// handing the unassigned ways to the last core (the greedy search only
// compares alternatives of equal fill, so the padding cancels).
func partialFill(alloc []int, ways int) []int {
	total := 0
	for _, a := range alloc {
		total += a
	}
	out := append([]int(nil), alloc...)
	out[len(out)-1] += ways - total
	return out
}

// BestDeliWays searches the NUcache split space (D = 0..Ways-1) for
// the maximum summed IPC.
func BestDeliWays(p *Profile) (*Prediction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var best *Prediction
	for d := 0; d <= p.Ways-1; d++ {
		pred := predictShared(p, PolicyNUcache, d)
		if best == nil || pred.Throughput > best.Throughput {
			best = pred
		}
	}
	best.Evaluated = p.Ways
	return best, nil
}

// compositions returns the number of ways to distribute `extra`
// indistinguishable ways among `cores` cores (beyond the mandatory one
// each), i.e. C(extra+cores-1, cores-1), saturating to avoid overflow.
func compositions(extra, cores int) int {
	n := 1
	for i := 1; i < cores; i++ {
		n = n * (extra + i) / i
		if n > 1<<30 {
			return 1 << 30
		}
	}
	return n
}
