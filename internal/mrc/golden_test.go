package mrc_test

// Golden pin for the advisor: the profile → prediction pipeline over
// the flat reference shape, together with the simulation numbers each
// prediction is held to and their deltas, recorded byte-for-byte.
//
//	go test ./internal/mrc -run TestAdvisorGolden -update
//
// Regenerate ONLY when a PR deliberately changes profiling or model
// semantics. The exact rows (part allocations) double as a machine-
// checked statement of the exactness contract: their recorded deltas
// are zero, and stay zero.

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nucache/internal/cpu"
	"nucache/internal/mrc"
	"nucache/internal/policy"
	"nucache/internal/sim"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenRow is one what-if: the model's answer next to the simulation's.
type goldenRow struct {
	Label      string          `json:"label"`
	Prediction *mrc.Prediction `json:"prediction"`
	Simulated  []simCore       `json:"simulated"`
	// HitsDelta is the summed |predicted - simulated| hit count; zero on
	// the exact rows by contract.
	HitsDelta uint64 `json:"hits_delta"`
	// CyclesDelta likewise for cycles (zero for exact rows under flat
	// memory).
	CyclesDelta uint64 `json:"cycles_delta"`
}

type simCore struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Cycles uint64 `json:"cycles"`
}

func goldenDelta(pred *mrc.Prediction, res []cpu.CoreResult) goldenRow {
	row := goldenRow{Prediction: pred}
	for i, r := range res {
		row.Simulated = append(row.Simulated, simCore{Hits: r.LLCHits, Misses: r.LLCMisses, Cycles: r.Cycles})
		if i < len(pred.PerCore) {
			row.HitsDelta += absDiff(pred.PerCore[i].Hits, r.LLCHits)
			row.CyclesDelta += absDiff(pred.PerCore[i].Cycles, r.Cycles)
		}
	}
	return row
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestAdvisorGolden(t *testing.T) {
	tc := shapeCases()[0] // flat: 2 cores, 8-way 64KB LLC, art-like + swim-like
	p := buildProfile(t, tc)

	var rows []goldenRow
	addPart := func(label string, alloc []int) {
		pred, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart, Alloc: alloc})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		res := runShape(t, tc, policy.NewStaticPart(pred.Alloc))
		row := goldenDelta(pred, res)
		row.Label = label
		rows = append(rows, row)
	}
	addShared := func(label, polName string, deliWays int) {
		pred, err := mrc.Predict(p, mrc.WhatIf{Policy: polName, DeliWays: deliWays})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		simDeli := deliWays
		if polName == mrc.PolicyLRU {
			simDeli = 0
		} else if deliWays < 0 {
			simDeli = 0
		}
		simName := "LRU"
		if polName == mrc.PolicyNUcache {
			simName = "NUcache"
		}
		pol, err := sim.BuildPolicy(simName, tc.cfg.Cores, tc.cfg.LLC.Ways, simDeli)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		res := runShape(t, tc, pol)
		row := goldenDelta(pred, res)
		row.Label = label
		rows = append(rows, row)
	}

	addPart("part-even", nil)
	addPart("part-1-7", []int{1, 7})
	addPart("part-6-2", []int{6, 2})
	best, err := mrc.BestPartition(p)
	if err != nil {
		t.Fatalf("best partition: %v", err)
	}
	addPart("part-best", best.Alloc)
	addShared("lru", mrc.PolicyLRU, 0)
	addShared("nucache-d0", mrc.PolicyNUcache, -1)
	addShared("nucache-d6", mrc.PolicyNUcache, 6)

	for _, row := range rows {
		if row.Prediction.HitsExact && row.HitsDelta != 0 {
			t.Errorf("%s: exact row has hit delta %d", row.Label, row.HitsDelta)
		}
		if row.Prediction.CyclesExact && row.CyclesDelta != 0 {
			t.Errorf("%s: exact row has cycle delta %d", row.Label, row.CyclesDelta)
		}
	}

	blob, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	path := filepath.Join("testdata", "golden", "advisor-flat.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d rows)", path, len(rows))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to record): %v", err)
	}
	if !bytes.Equal(want, blob) {
		t.Errorf("advisor golden drifted (re-run with -update if the change is deliberate)\n--- golden ---\n%.600s\n--- got ---\n%.600s", want, blob)
	}
}
