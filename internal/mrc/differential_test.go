package mrc_test

// Differential suite for the capacity advisor: every machine shape the
// replay engine is validated on (internal/cpu/replay_test.go), crossed
// with every LLC policy the service can build. The contract, from
// weakest to strongest:
//
//   - Policy-independent window counters (instructions, private-level
//     hits/misses, LLC-bound accesses) must match the direct simulation
//     EXACTLY for every policy — the profile walks the same recorded
//     front end the replay engine replays.
//   - Static partitions ("Part"): per-core LLC hit and miss counts are
//     EXACT (a way partition is a private LRU cache, and the profile's
//     ATD prefix sums are that cache's hit counts by stack inclusion).
//     Under the flat memory model, cycles and IPC are exact too; under
//     banked DRAM the model charges the row hit/miss average per miss
//     and IPC is only bounded.
//   - Shared LRU and NUcache: the effective-ways composition is a
//     model, not a replay — miss rate and throughput are held to the
//     documented bounds below.
//
// Policies the model does not cover (UCP, DRRIP, ...) still participate:
// their runs pin the policy-independent half of the contract.

import (
	"math"
	"strings"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/memory"
	"nucache/internal/mrc"
	"nucache/internal/policy"
	"nucache/internal/sim"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// Model-vs-simulation tolerances for the composed (non-exact) paths.
// Absolute miss-rate error tolerates the interleaving effects the
// occupancy fixed point cannot see; the throughput bound follows from
// it through the timing identity.
const (
	sharedMissRateTol   = 0.05 // |predicted - simulated| aggregate miss rate
	sharedThroughputTol = 0.10 // relative error on summed IPC
	dramIPCTol          = 0.30 // per-core IPC rel. error for exact-hits paths under DRAM
)

// shapeCase mirrors replayCase in internal/cpu/replay_test.go: the same
// eight machine shapes, so advisor and replay engine are held to their
// contracts on identical ground.
type shapeCase struct {
	name    string
	cfg     cpu.Config
	members []string
	streams func() []trace.Stream
}

func shapeStreams(names ...string) func() []trace.Stream {
	return func() []trace.Stream {
		out := make([]trace.Stream, len(names))
		for i, n := range names {
			out[i] = workload.MustByName(n).Stream(7 + uint64(i))
		}
		return out
	}
}

func shapeConfig(cores int) cpu.Config {
	return cpu.Config{
		Cores:       cores,
		L1:          cache.Config{SizeBytes: 2 << 10, Ways: 2, LineBytes: 64},
		LLC:         cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64},
		L1Latency:   1,
		LLCLatency:  10,
		MemLatency:  100,
		InstrBudget: 30_000,
	}
}

func shapeCases() []shapeCase {
	base := shapeCase{
		name:    "flat",
		cfg:     shapeConfig(2),
		members: []string{"art-like", "swim-like"},
		streams: shapeStreams("art-like", "swim-like"),
	}

	l2 := base
	l2.name = "privateL2"
	l2.cfg.L2 = cache.Config{SizeBytes: 8 << 10, Ways: 4, LineBytes: 64}
	l2.cfg.L2Latency = 6

	warm := base
	warm.name = "warmup"
	warm.cfg.WarmupInstr = 10_000

	pf := base
	pf.name = "prefetch"
	pf.cfg.PrefetchDegree = 2

	dram := base
	dram.name = "dram"
	d := memory.DefaultConfig()
	dram.cfg.DRAM = &d

	exhaust := shapeCase{
		name:    "exhaustion",
		cfg:     shapeConfig(2),
		members: []string{"ammp-like", "mcf-like"},
		streams: func() []trace.Stream {
			return []trace.Stream{
				trace.NewLimitStream(workload.MustByName("ammp-like").Stream(3), 4_000),
				trace.NewLimitStream(workload.MustByName("mcf-like").Stream(4), 9_000),
			}
		},
	}
	exhaust.cfg.InstrBudget = 0

	mixedEnd := shapeCase{
		name:    "budget-and-exhaustion",
		cfg:     shapeConfig(2),
		members: []string{"art-like", "milc-like"},
		streams: func() []trace.Stream {
			return []trace.Stream{
				trace.NewLimitStream(workload.MustByName("art-like").Stream(5), 5_000),
				workload.MustByName("milc-like").Stream(6),
			}
		},
	}

	sink := shapeCase{
		name:    "L2+warmup+prefetch+dram",
		cfg:     shapeConfig(3),
		members: []string{"art-like", "ammp-like", "libquantum-like"},
		streams: shapeStreams("art-like", "ammp-like", "libquantum-like"),
	}
	sink.cfg.L2 = cache.Config{SizeBytes: 8 << 10, Ways: 4, LineBytes: 64}
	sink.cfg.L2Latency = 6
	sink.cfg.WarmupInstr = 8_000
	sink.cfg.PrefetchDegree = 1
	d2 := memory.DefaultConfig()
	sink.cfg.DRAM = &d2

	return []shapeCase{base, l2, warm, pf, dram, exhaust, mixedEnd, sink}
}

func buildProfile(t testing.TB, tc shapeCase) *mrc.Profile {
	t.Helper()
	streams := tc.streams()
	tapes := make([]*cpu.Tape, len(streams))
	for i, s := range streams {
		tapes[i] = cpu.NewTape(tc.cfg, s)
	}
	p, err := mrc.BuildFromTapes(tc.cfg, tc.name, tc.members, 0, tapes)
	if err != nil {
		t.Fatalf("BuildFromTapes: %v", err)
	}
	return p
}

func runShape(t testing.TB, tc shapeCase, pol cache.Policy) []cpu.CoreResult {
	t.Helper()
	return newShapeSystem(tc, pol).Run()
}

func newShapeSystem(tc shapeCase, pol cache.Policy) *cpu.System {
	return cpu.NewSystem(tc.cfg, pol, tc.streams())
}

// checkWindowCounters pins the policy-independent half of the contract:
// the profile's measurement window is the simulator's, exactly.
func checkWindowCounters(t *testing.T, p *mrc.Profile, res []cpu.CoreResult) {
	t.Helper()
	for i, r := range res {
		c := &p.PerCore[i]
		if c.Instructions != r.Instructions {
			t.Errorf("core %d instructions: profile %d, sim %d", i, c.Instructions, r.Instructions)
		}
		if c.MemAccesses != r.MemAccesses {
			t.Errorf("core %d mem accesses: profile %d, sim %d", i, c.MemAccesses, r.MemAccesses)
		}
		if c.L1Hits != r.L1Hits || c.L1Misses != r.L1Misses {
			t.Errorf("core %d L1: profile %d/%d, sim %d/%d",
				i, c.L1Hits, c.L1Misses, r.L1Hits, r.L1Misses)
		}
		if c.Accesses != r.LLCAccesses {
			t.Errorf("core %d LLC accesses: profile %d, sim %d", i, c.Accesses, r.LLCAccesses)
		}
	}
}

// checkPartExact pins the exact half: static partitions are predicted
// hit-for-hit, and cycle-for-cycle under flat memory.
func checkPartExact(t *testing.T, tc shapeCase, pred *mrc.Prediction, res []cpu.CoreResult) {
	t.Helper()
	if !pred.HitsExact {
		t.Error("part prediction must claim HitsExact")
	}
	if pred.CyclesExact != (tc.cfg.DRAM == nil) {
		t.Errorf("CyclesExact = %v with DRAM %v", pred.CyclesExact, tc.cfg.DRAM != nil)
	}
	for i, r := range res {
		pc := &pred.PerCore[i]
		if pc.Hits != r.LLCHits || pc.Misses != r.LLCMisses {
			t.Errorf("core %d alloc %v: predicted hits/misses %d/%d, sim %d/%d",
				i, pred.Alloc, pc.Hits, pc.Misses, r.LLCHits, r.LLCMisses)
		}
		if tc.cfg.DRAM == nil {
			if pc.Cycles != r.Cycles {
				t.Errorf("core %d alloc %v: predicted cycles %d, sim %d",
					i, pred.Alloc, pc.Cycles, r.Cycles)
			}
		} else if r.IPC() > 0 {
			rel := math.Abs(pc.IPC-r.IPC()) / r.IPC()
			if rel > dramIPCTol {
				t.Errorf("core %d alloc %v: DRAM IPC rel err %.3f > %.2f (pred %.4f, sim %.4f)",
					i, pred.Alloc, rel, dramIPCTol, pc.IPC, r.IPC())
			}
		}
	}
}

// checkSharedBounds holds a composed (model) prediction to the
// documented miss-rate and throughput tolerances.
func checkSharedBounds(t *testing.T, label string, pred *mrc.Prediction, res []cpu.CoreResult) {
	t.Helper()
	var acc, miss uint64
	var thr float64
	for _, r := range res {
		acc += r.LLCAccesses
		miss += r.LLCMisses
		thr += r.IPC()
	}
	if acc == 0 {
		t.Fatalf("%s: simulation saw no LLC accesses", label)
	}
	simMR := float64(miss) / float64(acc)
	if d := math.Abs(pred.MissRate - simMR); d > sharedMissRateTol {
		t.Errorf("%s: miss-rate err %.4f > %.2f (pred %.4f, sim %.4f)",
			label, d, sharedMissRateTol, pred.MissRate, simMR)
	} else {
		t.Logf("%s: miss rate pred %.4f sim %.4f (err %.4f)", label, pred.MissRate, simMR, d)
	}
	if thr > 0 {
		rel := math.Abs(pred.Throughput-thr) / thr
		if rel > sharedThroughputTol {
			t.Errorf("%s: throughput rel err %.4f > %.2f (pred %.4f, sim %.4f)",
				label, rel, sharedThroughputTol, pred.Throughput, thr)
		} else {
			t.Logf("%s: throughput pred %.4f sim %.4f (rel %.4f)", label, pred.Throughput, thr, rel)
		}
	}
}

// skewedAllocs returns uneven partitions to test beyond the even split.
func skewedAllocs(cores, ways int) [][]int {
	switch cores {
	case 2:
		return [][]int{{1, ways - 1}, {ways - 2, 2}}
	case 3:
		return [][]int{{1, 1, ways - 2}, {ways - 4, 3, 1}}
	default:
		return nil
	}
}

// TestAdvisorMatchesSimulation is the advisor's exactness/bound
// contract, policy by policy and shape by shape.
func TestAdvisorMatchesSimulation(t *testing.T) {
	for _, tc := range shapeCases() {
		t.Run(tc.name, func(t *testing.T) {
			p := buildProfile(t, tc)
			for _, polName := range sim.Policies() {
				t.Run(polName, func(t *testing.T) {
					pol, err := sim.BuildPolicy(polName, tc.cfg.Cores, tc.cfg.LLC.Ways, 0)
					if err != nil {
						t.Fatalf("build %s: %v", polName, err)
					}
					res := runShape(t, tc, pol)
					checkWindowCounters(t, p, res)
					switch strings.ToUpper(polName) {
					case "PART":
						pred, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart})
						if err != nil {
							t.Fatalf("predict part: %v", err)
						}
						checkPartExact(t, tc, pred, res)
					case "LRU":
						pred, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyLRU})
						if err != nil {
							t.Fatalf("predict lru: %v", err)
						}
						checkSharedBounds(t, "lru", pred, res)
					case "NUCACHE":
						// BuildPolicy(deliWays=0) disables retention, which
						// the model maps to DeliWays < 0.
						pred, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyNUcache, DeliWays: -1})
						if err != nil {
							t.Fatalf("predict nucache: %v", err)
						}
						checkSharedBounds(t, "nucache-d0", pred, res)
					}
				})
			}

			// Uneven partitions: the exact path must hold for every
			// allocation, not just the even split.
			for _, alloc := range skewedAllocs(tc.cfg.Cores, tc.cfg.LLC.Ways) {
				res := runShape(t, tc, policy.NewStaticPart(alloc))
				pred, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart, Alloc: alloc})
				if err != nil {
					t.Fatalf("predict part %v: %v", alloc, err)
				}
				checkPartExact(t, tc, pred, res)
			}

			// The paper's default split: NUcache with live DeliWays
			// retention against the cost-benefit model.
			pol, err := sim.BuildPolicy("NUcache", tc.cfg.Cores, tc.cfg.LLC.Ways, 6)
			if err != nil {
				t.Fatalf("build NUcache/6: %v", err)
			}
			res := runShape(t, tc, pol)
			pred, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyNUcache, DeliWays: 6})
			if err != nil {
				t.Fatalf("predict nucache/6: %v", err)
			}
			checkSharedBounds(t, "nucache-d6", pred, res)
		})
	}
}

// TestBestPartitionIsArgmax: the searched answer must dominate every
// candidate the model can score, and the model's throughput ordering
// must be self-consistent with re-evaluating its own answer.
func TestBestPartitionIsArgmax(t *testing.T) {
	tc := shapeCases()[0]
	p := buildProfile(t, tc)
	best, err := mrc.BestPartition(p)
	if err != nil {
		t.Fatalf("BestPartition: %v", err)
	}
	if best.Evaluated < 2 {
		t.Fatalf("search evaluated only %d allocations", best.Evaluated)
	}
	again, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart, Alloc: best.Alloc})
	if err != nil {
		t.Fatalf("re-predict best: %v", err)
	}
	if again.Throughput != best.Throughput {
		t.Errorf("best alloc %v re-evaluates to %.6f, search said %.6f",
			best.Alloc, again.Throughput, best.Throughput)
	}
	for a := 1; a < p.Ways; a++ {
		pred, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart, Alloc: []int{a, p.Ways - a}})
		if err != nil {
			t.Fatalf("predict [%d %d]: %v", a, p.Ways-a, err)
		}
		if pred.Throughput > best.Throughput {
			t.Errorf("alloc [%d %d] beats the searched best %v (%.6f > %.6f)",
				a, p.Ways-a, best.Alloc, pred.Throughput, best.Throughput)
		}
	}
}
