// Package mrc is the miss-ratio-curve profiling and prediction
// subsystem: one profiling pass over a mix's recorded tapes produces a
// per-core Profile artifact (the hit count at every way allocation
// 1..W plus the NUcache next-use candidate profile), and a pure-Go
// analytical model answers any static-partition, shared-LRU or
// DeliWays what-if from that artifact in microseconds — no
// re-simulation.
//
// The exactness contract, which the differential and golden tests pin:
//
//   - Static way partitions ("part"): per-core hit/miss/access counts
//     are EXACT. The cores' address spaces are disjoint, so a core's
//     fixed a-way partition behaves as a private a-way LRU cache over
//     the same sets; by LRU stack inclusion the profiler's
//     full-associativity ATD hit counts at stack positions < a are
//     precisely that cache's hits. Predicted cycles (and IPC) are also
//     exact under flat memory, because replay-core cycles decompose
//     into policy-independent cycles plus per-event LLC/memory service
//     latencies that depend only on the demand hit/miss split. Under
//     banked DRAM the per-miss latency varies with row locality, so
//     hits stay exact and IPC carries a documented error bound.
//   - Shared LRU and NUcache: approximated by composing the per-core
//     curves through an effective-ways fixed point (occupancy
//     proportional to insertion rate, after arXiv 1907.12666's shared-
//     cache composition) plus, for NUcache, the paper's cost-benefit
//     selection run on the profiled next-use histograms.
package mrc

import (
	"encoding/json"
	"fmt"
)

// Version is the profile artifact format version.
const Version = 1

// Limits on decoded artifacts: profiles transit the content-addressed
// disk cache, so decoding must be total (error, never panic) and the
// model must be safe to run on anything Validate accepts.
const (
	maxCores    = 64
	maxWays     = 64
	maxSets     = 1 << 22
	maxHistLin  = 1024
	maxHistLog2 = 64
	maxPCs      = 4096
	// maxCount bounds every event counter far below overflow so the
	// model's integer arithmetic (counts times latencies) stays exact.
	maxCount = 1 << 50
)

// Profile is the content-addressed profiling artifact for one mix on
// one machine shape: everything the analytical model needs to answer
// allocation what-ifs.
type Profile struct {
	Version int      `json:"version"`
	Mix     string   `json:"mix"`
	Members []string `json:"members"`

	// Machine shape the tapes were recorded on.
	Cores     int    `json:"cores"`
	Ways      int    `json:"ways"`
	Sets      int    `json:"sets"`
	LineBytes int    `json:"line_bytes"`
	Budget    uint64 `json:"budget"`
	Seed      uint64 `json:"seed"`
	Warmup    uint64 `json:"warmup,omitempty"`
	L2        bool   `json:"l2,omitempty"`
	Prefetch  int    `json:"prefetch,omitempty"`
	DRAM      bool   `json:"dram,omitempty"`

	// LLCLatency is the per-access LLC service latency; MemLatency the
	// per-miss memory latency the model charges (the flat latency, or
	// the row hit/miss average when the shape uses banked DRAM — in
	// which case predicted cycles are approximate, see CyclesExact).
	LLCLatency uint64 `json:"llc_latency"`
	MemLatency uint64 `json:"mem_latency"`

	// HistLinear/HistLog2 give the next-use histogram layout shared by
	// every PCProfile.
	HistLinear int `json:"hist_linear"`
	HistLog2   int `json:"hist_log2"`

	PerCore []CoreProfile `json:"per_core"`
}

// CoreProfile is one core's measurement window (warmup excluded,
// matching the simulator's statistics window).
type CoreProfile struct {
	Core      int    `json:"core"`
	Benchmark string `json:"benchmark"`

	// Policy-independent window counters, straight off the tape
	// crossings. PICycles excludes LLC/memory service time.
	Instructions uint64 `json:"instructions"`
	PICycles     uint64 `json:"pi_cycles"`
	MemAccesses  uint64 `json:"mem_accesses"`
	L1Hits       uint64 `json:"l1_hits"`
	L1Misses     uint64 `json:"l1_misses"`

	// Accesses counts every LLC access the core issues in the window
	// (demand + prefetch + writeback, the same accounting the
	// simulator's per-core LLC counters use); DemandAccesses counts
	// only the demand accesses, whose misses stall the core.
	Accesses       uint64 `json:"accesses"`
	DemandAccesses uint64 `json:"demand_accesses"`

	// PosHits[i] is the window's ATD hits at LRU stack position i; the
	// prefix sum over positions < a is the core's exact hit count with
	// an a-way partition. DemandPosHits is the demand-only curve.
	PosHits       []uint64 `json:"pos_hits"`
	DemandPosHits []uint64 `json:"demand_pos_hits"`

	// SampledMisses and PCs are the next-use monitor's view (whole
	// profiled run, warmup included, one un-reset epoch), feeding the
	// NUcache cost-benefit model.
	SampledMisses uint64      `json:"sampled_misses"`
	PCs           []PCProfile `json:"pcs,omitempty"`
}

// PCProfile is one delinquent-PC candidate: the serialized form of
// core.PCStats.
type PCProfile struct {
	PC        uint64 `json:"pc"`
	Misses    uint64 `json:"misses"`
	Demotions uint64 `json:"demotions"`
	// NextUseCounts are the raw histogram buckets (layout given by the
	// profile's HistLinear/HistLog2); NextUseSum the recorded value sum
	// (so the mean — the selection's ordering key — round-trips).
	NextUseCounts []uint64 `json:"next_use_counts"`
	NextUseSum    uint64   `json:"next_use_sum"`
}

// EncodeProfile serializes a profile for the content-addressed cache.
func EncodeProfile(p *Profile) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

// DecodeProfile parses and validates a profile. The contract under
// corruption mirrors the trace decoder's: an error, never a panic —
// and a nil error guarantees the artifact is safe to evaluate.
func DecodeProfile(data []byte) (*Profile, error) {
	p := new(Profile)
	if err := json.Unmarshal(data, p); err != nil {
		return nil, fmt.Errorf("mrc: decode profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate bounds-checks every field the analytical model indexes or
// multiplies, so that evaluation is total on validated profiles.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("mrc: nil profile")
	}
	if p.Version != Version {
		return fmt.Errorf("mrc: profile version %d, want %d", p.Version, Version)
	}
	if p.Cores < 1 || p.Cores > maxCores {
		return fmt.Errorf("mrc: cores %d out of range", p.Cores)
	}
	if p.Ways < 1 || p.Ways > maxWays {
		return fmt.Errorf("mrc: ways %d out of range", p.Ways)
	}
	if p.Sets < 1 || p.Sets > maxSets {
		return fmt.Errorf("mrc: sets %d out of range", p.Sets)
	}
	if p.LineBytes < 1 || p.LineBytes > 4096 {
		return fmt.Errorf("mrc: line bytes %d out of range", p.LineBytes)
	}
	if p.HistLinear < 1 || p.HistLinear > maxHistLin {
		return fmt.Errorf("mrc: hist linear %d out of range", p.HistLinear)
	}
	if p.HistLog2 < 0 || p.HistLog2 > maxHistLog2 {
		return fmt.Errorf("mrc: hist log2 %d out of range", p.HistLog2)
	}
	if p.LLCLatency > 1<<20 || p.MemLatency > 1<<20 {
		return fmt.Errorf("mrc: implausible latencies %d/%d", p.LLCLatency, p.MemLatency)
	}
	if p.Prefetch < 0 || p.Prefetch > 64 {
		return fmt.Errorf("mrc: prefetch degree %d out of range", p.Prefetch)
	}
	if len(p.PerCore) != p.Cores {
		return fmt.Errorf("mrc: %d per-core profiles for %d cores", len(p.PerCore), p.Cores)
	}
	if len(p.Members) != p.Cores {
		return fmt.Errorf("mrc: %d members for %d cores", len(p.Members), p.Cores)
	}
	histLen := p.HistLinear + p.HistLog2 + 1
	for i := range p.PerCore {
		c := &p.PerCore[i]
		if c.Core != i {
			return fmt.Errorf("mrc: per-core entry %d labeled core %d", i, c.Core)
		}
		for _, v := range []uint64{c.Instructions, c.PICycles, c.MemAccesses, c.L1Hits,
			c.L1Misses, c.Accesses, c.DemandAccesses, c.SampledMisses} {
			if v > maxCount {
				return fmt.Errorf("mrc: core %d counter %d exceeds limit", i, v)
			}
		}
		if c.DemandAccesses > c.Accesses {
			return fmt.Errorf("mrc: core %d demand accesses %d > accesses %d", i, c.DemandAccesses, c.Accesses)
		}
		if len(c.PosHits) != p.Ways || len(c.DemandPosHits) != p.Ways {
			return fmt.Errorf("mrc: core %d hit curves sized %d/%d, want %d",
				i, len(c.PosHits), len(c.DemandPosHits), p.Ways)
		}
		var sum, dsum uint64
		for w := 0; w < p.Ways; w++ {
			if c.DemandPosHits[w] > c.PosHits[w] {
				return fmt.Errorf("mrc: core %d position %d demand hits exceed total hits", i, w)
			}
			sum += c.PosHits[w]
			dsum += c.DemandPosHits[w]
			if sum > maxCount || dsum > maxCount {
				return fmt.Errorf("mrc: core %d hit curve exceeds limit", i)
			}
		}
		if sum > c.Accesses {
			return fmt.Errorf("mrc: core %d curve hits %d > accesses %d", i, sum, c.Accesses)
		}
		if dsum > c.DemandAccesses {
			return fmt.Errorf("mrc: core %d demand curve hits %d > demand accesses %d", i, dsum, c.DemandAccesses)
		}
		if len(c.PCs) > maxPCs {
			return fmt.Errorf("mrc: core %d has %d PC profiles", i, len(c.PCs))
		}
		for j := range c.PCs {
			pc := &c.PCs[j]
			if len(pc.NextUseCounts) != histLen {
				return fmt.Errorf("mrc: core %d pc %d histogram sized %d, want %d",
					i, j, len(pc.NextUseCounts), histLen)
			}
			var total uint64
			for _, n := range pc.NextUseCounts {
				total += n
				if total > maxCount {
					return fmt.Errorf("mrc: core %d pc %d histogram exceeds limit", i, j)
				}
			}
			if pc.Misses > maxCount || pc.Demotions > maxCount {
				return fmt.Errorf("mrc: core %d pc %d counters exceed limit", i, j)
			}
		}
	}
	return nil
}
