package fabric

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"
)

// Config tunes a Coordinator. The zero value is usable; fields default
// as documented.
type Config struct {
	// LeaseTTL is how long a worker holds a cell before the reaper takes
	// it back (default 30s). It bounds how long a dead worker can stall
	// a waiting local claimant.
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to beat at (default
	// 3s). A worker missing deadBeats consecutive intervals is declared
	// dead and its leases expire immediately.
	Heartbeat time.Duration
	// MaxReassign bounds how many times one cell may be re-leased after
	// failures before it is pinned local-only (default 3). The bound is
	// the liveness guarantee: no cell can ping-pong between dying
	// workers forever.
	MaxReassign int
	// OnResult is called (outside the coordinator lock, in arrival
	// order) with each verified remote payload; the sweep uses it to
	// seed the result cache and journal the completion.
	OnResult func(key string, payload []byte)
	// OnEvent observes state transitions (lease grants, expiries,
	// quarantines); the sweep journals them. Called outside the lock.
	OnEvent func(Event)
	// Logger receives operational chatter; nil discards it.
	Logger *log.Logger
}

// Cell lifecycle inside the coordinator. A cell is created pending by
// Offer, bounces between pending and leased as workers come and go, and
// terminates in exactly one of stateLocal (the local sweep computes and
// journals it) or stateDone (a verified remote payload arrived and was
// journaled via OnResult). The local/remote split is what keeps the
// journal at exactly one completion record per cell.
type cellState int

const (
	statePending cellState = iota // offered, waiting for a worker or local claim
	stateLeased                   // held by a worker under deadline
	stateLocal                    // claimed by the local sweep; fabric is done with it
	stateDone                     // verified remote result accepted
)

type cellEntry struct {
	cell  Cell
	state cellState

	// Lease bookkeeping (valid while stateLeased).
	worker   string
	seq      uint64 // generation stamp; a result with a stale seq is rejected
	deadline time.Time

	// Failure bookkeeping.
	reassigns int       // completed lease failures so far
	notBefore time.Time // earliest next lease (jittered exponential backoff)
	localOnly bool      // reassignment bound hit: never lease again

	payload []byte // verified result (stateDone)

	// changed is closed and replaced on every state transition, so
	// AwaitOrClaim can wait on a leased cell without polling.
	changed chan struct{}

	waiters int // local claimants blocked in AwaitOrClaim
}

type workerEntry struct {
	name        string
	lastBeat    time.Time
	strikes     int // lease expiries attributed to this worker
	quarantined bool
	dead        bool
}

// deadBeats is how many missed heartbeat intervals declare a worker
// dead, and strikeLimit how many blown leases quarantine it. Two
// strikes — not one — so a single cell lost to a transient stall
// doesn't eject an otherwise healthy worker.
const (
	deadBeats   = 3
	strikeLimit = 2
)

// Coordinator owns the lease state machine for one sweep. It is safe
// for concurrent use by the HTTP handler, the reaper, and the local
// sweep's claim/await calls.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	cells   map[string]*cellEntry
	queue   []string // offer order; workers lease from the back
	workers map[string]*workerEntry
	nextID  uint64
	closed  bool

	reapStop chan struct{}
	reapDone chan struct{}
}

// NewCoordinator starts a coordinator (and its background reaper) with
// the given config. Close it when the sweep ends.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 3 * time.Second
	}
	if cfg.MaxReassign <= 0 {
		cfg.MaxReassign = 3
	}
	c := &Coordinator{
		cfg:      cfg,
		cells:    make(map[string]*cellEntry),
		workers:  make(map[string]*workerEntry),
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	go c.reapLoop()
	return c
}

// Close stops the reaper and wakes every waiter. Cells still leased are
// handed back to their local claimants (AwaitOrClaim returns "claim
// it yourself").
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, e := range c.cells {
		c.broadcastLocked(e)
	}
	c.mu.Unlock()
	close(c.reapStop)
	<-c.reapDone
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Printf(format, args...)
	}
}

func (c *Coordinator) emit(ev Event) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(ev)
	}
}

// broadcastLocked wakes everything waiting on e and re-arms the channel.
func (c *Coordinator) broadcastLocked(e *cellEntry) {
	if e.changed != nil {
		close(e.changed)
	}
	e.changed = make(chan struct{})
}

// Offer makes cells available for remote lease. Already-known keys are
// ignored (idempotent), so re-offering on a resumed sweep is safe. Cells
// are leased from the BACK of the offer queue while the local sweep
// consumes jobs front-to-back — the two meet in the middle instead of
// racing for the same cell.
func (c *Coordinator) Offer(cells []Cell) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range cells {
		if _, ok := c.cells[cell.Key]; ok {
			continue
		}
		c.cells[cell.Key] = &cellEntry{cell: cell, changed: make(chan struct{})}
		c.queue = append(c.queue, cell.Key)
	}
}

// MarkDone records an out-of-band completion (e.g. the cell was already
// in the result cache from a resumed journal) so it is never leased.
func (c *Coordinator) MarkDone(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.cells[key]; ok && e.state == statePending {
		e.state = stateLocal
		c.broadcastLocked(e)
	}
}

// ClaimLocal atomically claims key for local execution. It reports true
// if the caller now owns the cell (it was pending, local-pinned, or
// never offered) and must compute+journal it; false if the cell is
// actively leased or already done remotely.
func (c *Coordinator) ClaimLocal(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.cells[key]
	if !ok {
		return true // never offered ⇒ purely local cell
	}
	switch e.state {
	case statePending:
		e.state = stateLocal
		c.broadcastLocked(e)
		return true
	case stateLocal:
		return true
	default: // leased or done
		return false
	}
}

// AwaitOrClaim resolves one cell for the local sweep:
//
//   - pending / local / unknown ⇒ claims it locally and returns
//     (nil, false): caller computes and journals as it always has.
//   - done ⇒ returns the verified remote payload, true.
//   - leased ⇒ blocks until the lease resolves. A completed lease
//     returns the payload; an expired one hands the cell to this waiter
//     (waiters outrank re-lease — a local CPU is already parked on it).
//
// A canceled ctx or a closed coordinator returns (nil, false): the
// caller claims the cell and the normal local path takes over, so
// fabric shutdown can never wedge a sweep.
func (c *Coordinator) AwaitOrClaim(ctx context.Context, key string) ([]byte, bool) {
	c.mu.Lock()
	for {
		e, ok := c.cells[key]
		if !ok || c.closed {
			c.mu.Unlock()
			return nil, false
		}
		switch e.state {
		case statePending, stateLocal:
			e.state = stateLocal
			c.broadcastLocked(e)
			c.mu.Unlock()
			return nil, false
		case stateDone:
			p := e.payload
			c.mu.Unlock()
			return p, true
		}
		// Leased: wait for the next transition.
		ch := e.changed
		e.waiters++
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			c.mu.Lock()
			e.waiters--
			c.mu.Unlock()
			return nil, false
		}
		c.mu.Lock()
		e.waiters--
	}
}

// Stats is a point-in-time snapshot for /readyz and the end-of-sweep
// summary.
type Stats struct {
	Cells       int `json:"cells"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Local       int `json:"local"`
	RemoteDone  int `json:"remote_done"`
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	Quarantined int `json:"quarantined"`
}

func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Stats
	s.Cells = len(c.cells)
	for _, e := range c.cells {
		switch e.state {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
		case stateLocal:
			s.Local++
		case stateDone:
			s.RemoteDone++
		}
	}
	s.Workers = len(c.workers)
	for _, w := range c.workers {
		if w.quarantined {
			s.Quarantined++
		} else if !w.dead {
			s.LiveWorkers++
		}
	}
	return s
}

// --- HTTP protocol -----------------------------------------------------

// Handler returns the coordinator's HTTP surface, rooted at
// /fabric/v1/, for mounting into the host process's mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/join", c.handleJoin)
	mux.HandleFunc("POST /fabric/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fabric/v1/lease", c.handleLease)
	mux.HandleFunc("POST /fabric/v1/result", c.handleResult)
	return mux
}

// maxBody bounds fabric request bodies. Result payloads are MixMetrics
// or sim results — kilobytes — so 8MB is generous headroom, not a limit
// anyone should meet.
const maxBody = 8 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err == nil {
		err = json.Unmarshal(body, into)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("fabric: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	c.nextID++
	id := fmt.Sprintf("w%d-%s", c.nextID, req.Name)
	c.workers[id] = &workerEntry{name: req.Name, lastBeat: time.Now()}
	c.mu.Unlock()
	WorkersJoined.Add(1)
	c.logf("fabric: worker %s joined", id)
	c.emit(Event{Type: "join", Worker: id})
	writeJSON(w, joinResponse{
		WorkerID:    id,
		LeaseMS:     c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: c.cfg.Heartbeat.Milliseconds(),
		PollMS:      (c.cfg.Heartbeat / 2).Milliseconds(),
	})
}

// checkWorkerLocked validates the caller. Quarantined and dead workers
// get 404 so their client loop stops (or rejoins as a fresh identity —
// which is fine: a rejoined worker starts with a clean strike record
// but also zero leases).
func (c *Coordinator) checkWorkerLocked(id string) (*workerEntry, bool) {
	wk, ok := c.workers[id]
	if !ok || wk.quarantined || wk.dead {
		return nil, false
	}
	return wk, true
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.mu.Lock()
	wk, ok := c.checkWorkerLocked(req.WorkerID)
	if ok {
		wk.lastBeat = time.Now()
	}
	c.mu.Unlock()
	if !ok {
		http.Error(w, "fabric: unknown worker", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	wk, ok := c.checkWorkerLocked(req.WorkerID)
	if !ok {
		c.mu.Unlock()
		http.Error(w, "fabric: unknown worker", http.StatusNotFound)
		return
	}
	wk.lastBeat = now
	// Scan the offer queue from the back: the local sweep consumes
	// front-to-back, so the two meet in the middle instead of fighting
	// over the same cells.
	var granted *cellEntry
	for i := len(c.queue) - 1; i >= 0; i-- {
		e := c.cells[c.queue[i]]
		if e.state == statePending && !e.localOnly && !now.Before(e.notBefore) {
			granted = e
			break
		}
	}
	if granted == nil {
		c.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	granted.state = stateLeased
	granted.worker = req.WorkerID
	granted.seq++
	granted.deadline = now.Add(c.cfg.LeaseTTL)
	resp := leaseResponse{Cell: granted.cell, Seq: granted.seq, LeaseMS: c.cfg.LeaseTTL.Milliseconds()}
	c.broadcastLocked(granted)
	c.mu.Unlock()

	LeasesGranted.Add(1)
	c.logf("fabric: leased %s to %s (seq %d)", resp.Cell.Key, req.WorkerID, resp.Seq)
	c.emit(Event{Type: "lease", Key: resp.Cell.Key, Worker: req.WorkerID})
	writeJSON(w, resp)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !decodeBody(w, r, &req) {
		return
	}

	// Verify the integrity envelope before taking the lock: a corrupt
	// payload must never race into the sweep.
	sum := sha256.Sum256(req.Payload)
	envelopeOK := hex.EncodeToString(sum[:]) == req.SHA256 && json.Valid(req.Payload)

	c.mu.Lock()
	wk, wkOK := c.checkWorkerLocked(req.WorkerID)
	if !wkOK {
		c.mu.Unlock()
		ResultsRejected.Add(1)
		http.Error(w, "fabric: unknown worker", http.StatusNotFound)
		return
	}
	wk.lastBeat = time.Now()
	e, ok := c.cells[req.Key]
	if !ok || e.state != stateLeased || e.worker != req.WorkerID || e.seq != req.Seq {
		// A stale lease (expired and reassigned under the worker) is a
		// normal race, not malice: reject the result, keep the worker.
		c.mu.Unlock()
		ResultsRejected.Add(1)
		c.logf("fabric: rejected stale result for %s from %s", req.Key, req.WorkerID)
		c.emit(Event{Type: "reject", Key: req.Key, Worker: req.WorkerID})
		http.Error(w, "fabric: stale lease", http.StatusConflict)
		return
	}
	if !envelopeOK {
		// The holder of a live lease returned garbage: that is a
		// poisoned worker. Quarantine it and put the cell back.
		wk.quarantined = true
		c.expireLeasesOfLocked(req.WorkerID, time.Now())
		c.mu.Unlock()
		ResultsRejected.Add(1)
		WorkersQuarantined.Add(1)
		c.logf("fabric: quarantined %s: corrupt result for %s", req.WorkerID, req.Key)
		c.emit(Event{Type: "reject", Key: req.Key, Worker: req.WorkerID})
		c.emit(Event{Type: "quarantine", Worker: req.WorkerID})
		http.Error(w, "fabric: corrupt result", http.StatusUnprocessableEntity)
		return
	}
	e.state = stateDone
	e.payload = req.Payload
	c.broadcastLocked(e)
	c.mu.Unlock()

	ResultsAccepted.Add(1)
	if c.cfg.OnResult != nil {
		c.cfg.OnResult(req.Key, req.Payload)
	}
	c.emit(Event{Type: "complete", Key: req.Key, Worker: req.WorkerID})
	w.WriteHeader(http.StatusNoContent)
}

// --- reaper ------------------------------------------------------------

// expireLeasesOfLocked returns every cell leased by worker id to the
// pool (pending, with backoff) or to a waiting local claimant. Caller
// holds c.mu and is responsible for the worker's own bookkeeping.
func (c *Coordinator) expireLeasesOfLocked(id string, now time.Time) (expired []string) {
	for key, e := range c.cells {
		if e.state == stateLeased && e.worker == id {
			c.expireCellLocked(e, now)
			expired = append(expired, key)
		}
	}
	return expired
}

// expireCellLocked moves one leased cell back toward execution after a
// lease failure. Waiting local claimants outrank re-lease; otherwise
// the cell re-enters the pool after a jittered exponential backoff,
// and past MaxReassign failures it is pinned local-only.
func (c *Coordinator) expireCellLocked(e *cellEntry, now time.Time) {
	e.state = statePending
	e.worker = ""
	e.reassigns++
	LeasesExpired.Add(1)
	if e.waiters > 0 || e.reassigns >= c.cfg.MaxReassign {
		// A parked local CPU (or an exhausted retry budget) means this
		// cell's fastest path is the local sweep.
		e.localOnly = true
	} else {
		CellsReassigned.Add(1)
		e.notBefore = now.Add(jitteredBackoff(c.cfg.Heartbeat, c.cfg.LeaseTTL, e.reassigns))
	}
	c.broadcastLocked(e)
}

func (c *Coordinator) reapLoop() {
	defer close(c.reapDone)
	// Tick fast enough to notice a blown lease promptly but without
	// busy-spinning at the aggressive heartbeats the chaos tests use.
	tick := c.cfg.Heartbeat / 2
	tick = min(max(tick, 10*time.Millisecond), time.Second)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case now := <-t.C:
			c.reap(now)
		}
	}
}

func (c *Coordinator) reap(now time.Time) {
	type expiry struct {
		key, worker string
	}
	var expired []expiry
	var died, quarantined []string

	c.mu.Lock()
	// Workers that stopped heartbeating are dead; every lease they hold
	// expires at once rather than waiting out the lease TTL.
	for id, wk := range c.workers {
		if wk.dead || wk.quarantined {
			continue
		}
		if now.Sub(wk.lastBeat) > time.Duration(deadBeats)*c.cfg.Heartbeat {
			wk.dead = true
			died = append(died, id)
			for _, key := range c.expireLeasesOfLocked(id, now) {
				expired = append(expired, expiry{key, id})
			}
			wk.strikes += 999 // dead workers never rejoin under this identity
		}
	}
	// Individually expired leases (worker alive but slow or stuck on
	// this one cell).
	for key, e := range c.cells {
		if e.state == stateLeased && now.After(e.deadline) {
			id := e.worker
			c.expireCellLocked(e, now)
			expired = append(expired, expiry{key, id})
			if wk, ok := c.workers[id]; ok && !wk.dead && !wk.quarantined {
				wk.strikes++
				if wk.strikes >= strikeLimit {
					wk.quarantined = true
					quarantined = append(quarantined, id)
				}
			}
		}
	}
	c.mu.Unlock()

	for _, id := range died {
		c.logf("fabric: worker %s dead (missed %d heartbeats)", id, deadBeats)
		c.emit(Event{Type: "dead", Worker: id})
	}
	for _, x := range expired {
		c.logf("fabric: lease on %s from %s expired", x.key, x.worker)
		c.emit(Event{Type: "expire", Key: x.key, Worker: x.worker})
	}
	for _, id := range quarantined {
		WorkersQuarantined.Add(1)
		c.logf("fabric: quarantined %s after %d blown leases", id, strikeLimit)
		c.emit(Event{Type: "quarantine", Worker: id})
	}
}
