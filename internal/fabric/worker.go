package fabric

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"nucache/internal/failpoint"
)

// Executor runs one cell kind: it decodes spec, computes, and returns
// the canonical JSON payload. Payloads must be deterministic — the
// coordinator compares them by content address.
type Executor func(ctx context.Context, spec json.RawMessage) (json.RawMessage, error)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Name labels this worker in coordinator logs and journal events.
	Name string
	// Executors maps cell kinds to the code that runs them. A leased
	// cell with no executor is dropped (its lease expires and the
	// coordinator reassigns it — misconfiguration degrades to slowness,
	// not wrong answers).
	Executors map[string]Executor
	// Heartbeat overrides the coordinator-advertised interval when > 0
	// (tests use this to simulate a worker that stops beating).
	Heartbeat time.Duration
	// Logger receives operational chatter; nil discards it.
	Logger *log.Logger
	// Client overrides the HTTP client (tests); nil uses a dedicated
	// client with sane timeouts.
	Client *http.Client
}

// Worker is one pull-based member of a coordinator's pool: it joins,
// heartbeats, leases cells, executes them, and posts back sealed
// results. All fabric failpoint sites live here, so arming
// NUCACHE_FAILPOINTS in a worker process kills or wounds the *worker*
// at that point in the protocol — the coordinator must survive it.
type Worker struct {
	cfg  WorkerConfig
	base string // coordinator URL, e.g. http://127.0.0.1:8080
	hc   *http.Client

	id        string
	leaseTTL  time.Duration
	heartbeat time.Duration
	poll      time.Duration
}

// NewWorker returns a worker that will pull from the coordinator at
// base (scheme://host:port; the /fabric/v1 prefix is implied).
func NewWorker(base string, cfg WorkerConfig) *Worker {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Worker{cfg: cfg, base: base, hc: hc}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}

func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("fabric: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// Run joins the pool and pulls cells until ctx is canceled or the
// coordinator rejects this worker's identity terminally (quarantine).
// Transient errors — coordinator not up yet, network blips — retry with
// jittered exponential backoff.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.join(ctx); err != nil {
		return err
	}
	w.logf("fabric worker %s: joined %s (lease %v, heartbeat %v)", w.id, w.base, w.leaseTTL, w.heartbeat)

	hbCtx, hbStop := context.WithCancel(ctx)
	defer hbStop()
	hbDead := make(chan struct{})
	go w.heartbeatLoop(hbCtx, hbDead)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-hbDead:
			// Heartbeat loop hit a terminal rejection: the coordinator
			// has disowned this identity (dead or quarantined). Stop
			// pulling — any result would be rejected as stale anyway.
			return ErrLost
		default:
		}
		var lease leaseResponse
		status, err := w.post(ctx, "/fabric/v1/lease", leaseRequest{WorkerID: w.id}, &lease)
		switch {
		case ctx.Err() != nil:
			return ctx.Err()
		case status == http.StatusNotFound:
			return ErrLost // disowned
		case err != nil:
			w.logf("fabric worker %s: lease: %v", w.id, err)
			sleepCtx(ctx, jitteredBackoff(w.poll, w.leaseTTL, 1))
			continue
		case status == http.StatusNoContent:
			// Nothing pending right now; poll again shortly.
			sleepCtx(ctx, jitteredBackoff(w.poll, 4*w.poll, 1))
			continue
		}

		// Site fabric.lease.grant: the worker dies *holding* a fresh
		// lease — the pure lost-work case the reaper must recover.
		if err := failpoint.Inject("fabric.lease.grant"); err != nil {
			return err
		}
		w.runCell(ctx, lease)
	}
}

func (w *Worker) runCell(ctx context.Context, lease leaseResponse) {
	exec, ok := w.cfg.Executors[lease.Cell.Kind]
	if !ok {
		w.logf("fabric worker %s: no executor for kind %q; dropping lease on %s", w.id, lease.Cell.Kind, lease.Cell.Key)
		return // lease expires, coordinator reassigns
	}
	// Bound execution by the lease: a result after the deadline would be
	// rejected as stale, so don't burn the CPU past it.
	cellCtx, cancel := context.WithTimeout(ctx, time.Duration(lease.LeaseMS)*time.Millisecond)
	payload, err := exec(cellCtx, lease.Cell.Spec)
	cancel()
	if err != nil {
		w.logf("fabric worker %s: cell %s failed: %v (dropping lease)", w.id, lease.Cell.Key, err)
		return
	}

	// Site fabric.result.recv: the worker dies with the result computed
	// but not delivered — the coordinator sees only a blown lease.
	if err := failpoint.Inject("fabric.result.recv"); err != nil {
		w.logf("fabric worker %s: result.recv failpoint: %v", w.id, err)
		return
	}

	sum := sha256.Sum256(payload)
	status, err := w.post(ctx, "/fabric/v1/result", resultRequest{
		WorkerID: w.id,
		Key:      lease.Cell.Key,
		Seq:      lease.Seq,
		SHA256:   hex.EncodeToString(sum[:]),
		Payload:  payload,
	}, nil)
	switch {
	case err == nil:
		w.logf("fabric worker %s: completed %s", w.id, lease.Cell.Key)
	case status == http.StatusConflict:
		// Stale lease: the reaper reassigned the cell under us. Normal
		// under aggressive lease TTLs; the work is simply discarded.
		w.logf("fabric worker %s: result for %s superseded", w.id, lease.Cell.Key)
	default:
		w.logf("fabric worker %s: result post for %s failed: %v", w.id, lease.Cell.Key, err)
	}
}

func (w *Worker) join(ctx context.Context) error {
	for attempt := 1; ; attempt++ {
		var resp joinResponse
		_, err := w.post(ctx, "/fabric/v1/join", joinRequest{Name: w.cfg.Name}, &resp)
		if err == nil {
			w.id = resp.WorkerID
			w.leaseTTL = time.Duration(resp.LeaseMS) * time.Millisecond
			w.heartbeat = time.Duration(resp.HeartbeatMS) * time.Millisecond
			w.poll = time.Duration(resp.PollMS) * time.Millisecond
			if w.cfg.Heartbeat > 0 {
				w.heartbeat = w.cfg.Heartbeat
			}
			if w.poll <= 0 {
				w.poll = w.heartbeat / 2
			}
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= 8 {
			return fmt.Errorf("fabric: join %s: %w", w.base, err)
		}
		sleepCtx(ctx, jitteredBackoff(100*time.Millisecond, 2*time.Second, attempt))
	}
}

// heartbeatLoop beats until ctx cancels or the coordinator disowns this
// worker (then hbDead closes and the pull loop exits). Site
// fabric.heartbeat fires once per beat: an exit action kills the worker
// between beats; an error action skips beats, simulating a hung worker
// the coordinator must declare dead.
func (w *Worker) heartbeatLoop(ctx context.Context, hbDead chan<- struct{}) {
	t := time.NewTicker(w.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if err := failpoint.Inject("fabric.heartbeat"); err != nil {
			continue // skipped beat: worker looks hung to the coordinator
		}
		status, err := w.post(ctx, "/fabric/v1/heartbeat", heartbeatRequest{WorkerID: w.id}, nil)
		if status == http.StatusNotFound {
			close(hbDead)
			return
		}
		if err != nil && ctx.Err() == nil {
			w.logf("fabric worker %s: heartbeat: %v", w.id, err)
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
