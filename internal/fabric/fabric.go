// Package fabric is the fault-tolerant work-distribution layer behind
// distributed sweeps: a coordinator hands content-addressed grid cells
// to a pool of remote workers under *leases*, and every failure mode a
// distributed system offers — worker death mid-cell, a hung worker, a
// worker returning garbage, a dead coordinator — degrades back to the
// single-node behavior the rest of the repo already guarantees.
//
// The contract, layer by layer:
//
//   - A cell is only ever *offered* to the fabric; the local sweep
//     remains the executor of last resort. Zero workers means every
//     cell is claimed locally the moment its job runs — byte-identical
//     to a sweep with no fabric at all.
//   - A worker pulls a cell under a lease with a deadline. If the lease
//     expires (worker died or hung) the cell is reassigned with
//     jittered exponential backoff, a bounded number of times; past the
//     bound it is pinned local-only and never leaves the box again.
//   - A returned result is only accepted inside an integrity envelope:
//     the payload's SHA-256 must match the envelope, the lease must
//     still be the worker's, and the payload must parse. Anything else
//     rejects the result and quarantines the worker.
//   - The coordinator journals every assignment and completion through
//     caller-supplied hooks, so a killed coordinator resumes from its
//     journal exactly like a killed single-node sweep.
//
// The package is generic: cells carry an opaque kind + JSON spec, and
// workers map kinds to Executor functions. internal/experiments and
// internal/sim register the two concrete cell kinds (grid MixMetrics
// cells and sim Requests).
package fabric

import (
	"encoding/json"
	"errors"
	"expvar"
	"math/rand/v2"
	"time"
)

// ErrLost marks work lost to a dead, hung or quarantined remote worker.
// It is always retryable — the cell is simply recomputed, remotely or
// locally — and internal/sim maps it into its error taxonomy as
// KindWorkerLost.
var ErrLost = errors.New("fabric: worker lost")

// Cell is one unit of distributable work: a content-addressed key, a
// kind naming the executor that can run it, and an opaque JSON spec the
// executor decodes. Executing the same cell twice anywhere must yield
// byte-identical payloads (the repo's simulations are deterministic and
// encoding/json is canonical for their results) — that is what makes
// duplicated work merely wasteful, never wrong.
type Cell struct {
	Key  string          `json:"key"`
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

// Event is one observable state transition, delivered to the
// coordinator's OnEvent hook (the sweep journals assignments through
// it). Type is one of "join", "lease", "expire", "reject",
// "quarantine", "dead".
type Event struct {
	Type   string
	Key    string // cell key ("" for worker-level events)
	Worker string
}

// Fabric expvars, published under /debug/vars wherever a coordinator is
// embedded (nucache-serve -distribute, and any process importing
// internal/sim). They aggregate across every coordinator in the
// process.
var (
	// LeasesGranted counts cells handed to workers.
	LeasesGranted = expvar.NewInt("nucache_fabric_leases_granted")
	// LeasesExpired counts leases that passed their deadline (worker
	// death or hang) and were taken back.
	LeasesExpired = expvar.NewInt("nucache_fabric_leases_expired")
	// CellsReassigned counts cells returned to the pending queue after
	// a lease failure (each is eligible for re-lease after a jittered
	// backoff, up to the reassignment bound).
	CellsReassigned = expvar.NewInt("nucache_fabric_cells_reassigned")
	// WorkersQuarantined counts workers removed from the pool for
	// returning corrupt results or repeatedly blowing leases.
	WorkersQuarantined = expvar.NewInt("nucache_fabric_workers_quarantined")
	// ResultsRejected counts returned results refused before
	// acceptance: checksum mismatch, stale or foreign lease, or an
	// unparseable payload.
	ResultsRejected = expvar.NewInt("nucache_fabric_results_rejected")
	// ResultsAccepted counts verified results folded into the sweep.
	ResultsAccepted = expvar.NewInt("nucache_fabric_results_accepted")
	// WorkersJoined counts workers that ever registered.
	WorkersJoined = expvar.NewInt("nucache_fabric_workers_joined")
)

// Wire types of the coordinator HTTP protocol (all POST, JSON bodies).
// Paths are rooted at /fabric/v1/ so a coordinator can share a mux with
// the serving API.
type joinRequest struct {
	Name string `json:"name"`
}

type joinResponse struct {
	WorkerID    string `json:"worker_id"`
	LeaseMS     int64  `json:"lease_ms"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	// PollMS is how long an idle worker should wait before asking for
	// work again (jittered client-side).
	PollMS int64 `json:"poll_ms"`
}

type heartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

type leaseRequest struct {
	WorkerID string `json:"worker_id"`
}

type leaseResponse struct {
	Cell    Cell   `json:"cell"`
	Seq     uint64 `json:"seq"`
	LeaseMS int64  `json:"lease_ms"`
}

// resultRequest returns one executed cell. SHA256 is the hex SHA-256 of
// Payload — the integrity envelope the coordinator verifies before the
// result can touch the sweep.
type resultRequest struct {
	WorkerID string          `json:"worker_id"`
	Key      string          `json:"key"`
	Seq      uint64          `json:"seq"`
	SHA256   string          `json:"sha256"`
	Payload  json.RawMessage `json:"payload"`
}

// jitteredBackoff grows base exponentially with attempt (1-based),
// caps it at max, and jitters uniformly over [d/2, d) so a pool of
// retrying workers — or a pool of shed clients — decorrelates instead
// of retrying in lockstep.
func jitteredBackoff(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 10 * base
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 { // <= 0 guards shift overflow
		d = max
	}
	return d/2 + rand.N(d/2+1)
}
