package fabric

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// echoExec is a trivial deterministic executor: payload is the spec
// wrapped in a result object.
func echoExec(_ context.Context, spec json.RawMessage) (json.RawMessage, error) {
	return json.RawMessage(fmt.Sprintf(`{"echo":%s}`, spec)), nil
}

func testCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{
			Key:  fmt.Sprintf("cell-%d", i),
			Kind: "echo",
			Spec: json.RawMessage(fmt.Sprintf(`{"i":%d}`, i)),
		}
	}
	return cells
}

// startPool spins up a coordinator (httptest server) and nw in-process
// workers, returning the coordinator and a cancel that tears it all
// down.
func startPool(t *testing.T, cfg Config, nw int) (*Coordinator, *httptest.Server, context.CancelFunc) {
	t.Helper()
	co := NewCoordinator(cfg)
	srv := httptest.NewServer(co.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < nw; i++ {
		w := NewWorker(srv.URL, WorkerConfig{
			Name:      fmt.Sprintf("t%d", i),
			Executors: map[string]Executor{"echo": echoExec},
		})
		go w.Run(ctx)
	}
	t.Cleanup(func() {
		cancel()
		srv.Close()
		co.Close()
	})
	return co, srv, cancel
}

func TestZeroWorkersClaimsLocallyImmediately(t *testing.T) {
	co := NewCoordinator(Config{})
	defer co.Close()
	co.Offer(testCells(3))

	// With no workers every AwaitOrClaim must return instantly with a
	// local claim — the fabric must be invisible.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			payload, remote := co.AwaitOrClaim(context.Background(), fmt.Sprintf("cell-%d", i))
			if remote || payload != nil {
				t.Errorf("cell-%d: want local claim, got remote=%v", i, remote)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("AwaitOrClaim blocked with zero workers")
	}

	// Claimed cells are owned: a second claim attempt still says local.
	if !co.ClaimLocal("cell-0") {
		t.Error("ClaimLocal on locally-claimed cell should stay true")
	}
	// Unknown cells are implicitly local.
	if !co.ClaimLocal("never-offered") {
		t.Error("ClaimLocal on unknown key should be true")
	}
}

func TestWorkerExecutesOfferedCells(t *testing.T) {
	var mu sync.Mutex
	got := map[string]string{}
	co, _, _ := startPool(t, Config{
		LeaseTTL:  5 * time.Second,
		Heartbeat: 50 * time.Millisecond,
		OnResult: func(key string, payload []byte) {
			mu.Lock()
			got[key] = string(payload)
			mu.Unlock()
		},
	}, 2)
	co.Offer(testCells(8))

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers completed %d/8 cells", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if want := `{"echo":{"i":3}}`; got["cell-3"] != want {
		t.Errorf("cell-3 payload = %q, want %q", got["cell-3"], want)
	}
	// AwaitOrClaim on a done cell returns the payload without blocking.
	payload, remote := co.AwaitOrClaim(context.Background(), "cell-3")
	if !remote || string(payload) != `{"echo":{"i":3}}` {
		t.Errorf("AwaitOrClaim(done) = %q, %v", payload, remote)
	}
	if st := co.Stats(); st.RemoteDone != 8 {
		t.Errorf("Stats.RemoteDone = %d, want 8", st.RemoteDone)
	}
}

func TestAwaitOrClaimWaitsOutLeaseThenWins(t *testing.T) {
	// A worker leases a cell and dies; the blocked local claimant must
	// get the cell back when the lease expires, pinned local-only.
	co := NewCoordinator(Config{LeaseTTL: 150 * time.Millisecond, Heartbeat: 30 * time.Millisecond})
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	co.Offer(testCells(1))

	// Hand-roll a worker that takes the lease and vanishes.
	var join joinResponse
	postJSON(t, srv.URL+"/fabric/v1/join", joinRequest{Name: "doomed"}, &join)
	var lease leaseResponse
	postJSON(t, srv.URL+"/fabric/v1/lease", leaseRequest{WorkerID: join.WorkerID}, &lease)
	if lease.Cell.Key != "cell-0" {
		t.Fatalf("leased %q, want cell-0", lease.Cell.Key)
	}

	start := time.Now()
	payload, remote := co.AwaitOrClaim(context.Background(), "cell-0")
	if remote || payload != nil {
		t.Fatalf("want local claim after expiry, got remote=%v", remote)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Errorf("claimant returned after %v — did not wait for the live lease", waited)
	}
}

func TestCorruptResultQuarantinesWorker(t *testing.T) {
	events := make(chan Event, 64)
	co := NewCoordinator(Config{
		LeaseTTL:  5 * time.Second,
		Heartbeat: 50 * time.Millisecond,
		OnEvent:   func(ev Event) { events <- ev },
	})
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	co.Offer(testCells(1))

	var join joinResponse
	postJSON(t, srv.URL+"/fabric/v1/join", joinRequest{Name: "poison"}, &join)
	var lease leaseResponse
	postJSON(t, srv.URL+"/fabric/v1/lease", leaseRequest{WorkerID: join.WorkerID}, &lease)

	// Send a payload whose checksum doesn't match the envelope.
	bad := resultRequest{
		WorkerID: join.WorkerID, Key: lease.Cell.Key, Seq: lease.Seq,
		SHA256:  "deadbeef",
		Payload: json.RawMessage(`{"tampered":true}`),
	}
	status := postStatus(t, srv.URL+"/fabric/v1/result", bad)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt result status = %d, want 422", status)
	}

	// Worker must now be quarantined: further leases 404.
	if st := postStatus(t, srv.URL+"/fabric/v1/lease", leaseRequest{WorkerID: join.WorkerID}); st != http.StatusNotFound {
		t.Errorf("quarantined worker lease status = %d, want 404", st)
	}
	if st := co.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	// The cell must be recoverable locally.
	if payload, remote := co.AwaitOrClaim(context.Background(), "cell-0"); remote || payload != nil {
		t.Errorf("cell after quarantine: want local claim, got remote=%v", remote)
	}
	assertEvent(t, events, "quarantine")
}

func TestStaleSeqRejectedWithoutQuarantine(t *testing.T) {
	// Heartbeat interval much longer than the lease TTL, so the lease
	// expires while the worker is still comfortably alive.
	co := NewCoordinator(Config{LeaseTTL: 100 * time.Millisecond, Heartbeat: 2 * time.Second, MaxReassign: 10})
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	co.Offer(testCells(1))

	var join joinResponse
	postJSON(t, srv.URL+"/fabric/v1/join", joinRequest{Name: "slow"}, &join)
	var lease leaseResponse
	postJSON(t, srv.URL+"/fabric/v1/lease", leaseRequest{WorkerID: join.WorkerID}, &lease)

	// Let the lease expire (reap tick is clamped to ≤1s), then post the
	// now-stale result.
	deadline := time.Now().Add(5 * time.Second)
	for co.Stats().Leased != 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}

	payload := json.RawMessage(`{"fine":true}`)
	sum := sha256.Sum256(payload)
	stale := resultRequest{
		WorkerID: join.WorkerID, Key: lease.Cell.Key, Seq: lease.Seq,
		SHA256: hex.EncodeToString(sum[:]), Payload: payload,
	}
	if st := postStatus(t, srv.URL+"/fabric/v1/result", stale); st != http.StatusConflict {
		t.Fatalf("stale result status = %d, want 409", st)
	}
	// One blown lease is a strike, not a quarantine: the worker may
	// still lease (the expired cell itself is backing off, so just
	// check identity is alive via heartbeat).
	if st := postStatus(t, srv.URL+"/fabric/v1/heartbeat", heartbeatRequest{WorkerID: join.WorkerID}); st != http.StatusNoContent {
		t.Errorf("worker heartbeat after one strike = %d, want 204", st)
	}
}

func TestDeadWorkerLeasesExpireAndReassign(t *testing.T) {
	var mu sync.Mutex
	got := map[string]bool{}
	co := NewCoordinator(Config{
		LeaseTTL:  10 * time.Second, // long: only death should free cells
		Heartbeat: 30 * time.Millisecond,
		OnResult: func(key string, _ []byte) {
			mu.Lock()
			got[key] = true
			mu.Unlock()
		},
	})
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	co.Offer(testCells(2))

	// Worker A joins, leases a cell, then never beats again.
	var joinA joinResponse
	postJSON(t, srv.URL+"/fabric/v1/join", joinRequest{Name: "ghost"}, &joinA)
	var lease leaseResponse
	postJSON(t, srv.URL+"/fabric/v1/lease", leaseRequest{WorkerID: joinA.WorkerID}, &lease)

	// A live worker B should eventually pick up both cells once A is
	// declared dead.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wb := NewWorker(srv.URL, WorkerConfig{Name: "live", Executors: map[string]Executor{"echo": echoExec}})
	go wb.Run(ctx)

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("completed %d/2 cells after worker death", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Ghost's identity must be dead.
	if st := postStatus(t, srv.URL+"/fabric/v1/heartbeat", heartbeatRequest{WorkerID: joinA.WorkerID}); st != http.StatusNotFound {
		t.Errorf("dead worker heartbeat = %d, want 404", st)
	}
}

func TestReassignmentBoundPinsLocal(t *testing.T) {
	co := NewCoordinator(Config{LeaseTTL: 60 * time.Millisecond, Heartbeat: 20 * time.Millisecond, MaxReassign: 2})
	defer co.Close()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	co.Offer(testCells(1))

	// Burn the cell's reassignment budget with leases that always
	// expire (fresh worker identity each time to dodge quarantine).
	for i := 0; i < 2; i++ {
		var join joinResponse
		postJSON(t, srv.URL+"/fabric/v1/join", joinRequest{Name: "churn"}, &join)
		var lease leaseResponse
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := postStatus2(t, srv.URL+"/fabric/v1/lease", leaseRequest{WorkerID: join.WorkerID}, &lease)
			if st == http.StatusOK {
				break
			}
			if st == http.StatusNotFound || time.Now().After(deadline) {
				t.Fatalf("churn worker %d could not lease (status %d)", i, st)
			}
			time.Sleep(10 * time.Millisecond) // backoff window
		}
		time.Sleep(150 * time.Millisecond) // blow the lease
	}

	// Budget exhausted: the cell must be pinned local-only and never
	// leased again, even by a fresh healthy worker.
	var join joinResponse
	postJSON(t, srv.URL+"/fabric/v1/join", joinRequest{Name: "late"}, &join)
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		var lease leaseResponse
		if st := postStatus2(t, srv.URL+"/fabric/v1/lease", leaseRequest{WorkerID: join.WorkerID}, &lease); st == http.StatusOK {
			t.Fatalf("cell leased again after exhausting reassignment bound")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if payload, remote := co.AwaitOrClaim(context.Background(), "cell-0"); remote || payload != nil {
		t.Errorf("pinned cell: want local claim, got remote=%v", remote)
	}
}

func TestOfferIdempotentAndMarkDone(t *testing.T) {
	co := NewCoordinator(Config{})
	defer co.Close()
	cells := testCells(2)
	co.Offer(cells)
	co.Offer(cells) // duplicate offer must not duplicate queue entries
	if st := co.Stats(); st.Cells != 2 {
		t.Fatalf("Stats.Cells = %d after duplicate Offer, want 2", st.Cells)
	}
	co.MarkDone("cell-1")
	if st := co.Stats(); st.Local != 1 {
		t.Errorf("Stats.Local = %d after MarkDone, want 1", st.Local)
	}
}

func TestJitteredBackoffBounds(t *testing.T) {
	for attempt := 1; attempt <= 12; attempt++ {
		d := jitteredBackoff(50*time.Millisecond, time.Second, attempt)
		if d < 25*time.Millisecond || d > time.Second {
			t.Errorf("attempt %d: backoff %v out of [25ms, 1s]", attempt, d)
		}
	}
	// Degenerate inputs must still return something sane.
	if d := jitteredBackoff(0, 0, 1); d <= 0 {
		t.Errorf("zero-config backoff = %v, want > 0", d)
	}
}

// --- helpers -----------------------------------------------------------

func postJSON(t *testing.T, url string, in, out any) {
	t.Helper()
	if st := postStatus2(t, url, in, out); st < 200 || st >= 300 {
		t.Fatalf("POST %s: status %d", url, st)
	}
}

func postStatus(t *testing.T, url string, in any) int {
	t.Helper()
	return postStatus2(t, url, in, nil)
}

func postStatus2(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func assertEvent(t *testing.T, events <-chan Event, typ string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Type == typ {
				return
			}
		case <-deadline:
			t.Fatalf("no %q event observed", typ)
		}
	}
}
