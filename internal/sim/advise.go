package sim

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"nucache/internal/mrc"
)

// AdviseRequest is one capacity what-if: the profile spec (which mix,
// on which machine) plus the allocation question. With Best set the
// advisor searches the allocation space instead of evaluating a single
// candidate; with Verify set it also runs the full simulation of the
// answered configuration and reports the model-vs-simulation delta.
type AdviseRequest struct {
	ProfileRequest
	// Policy selects the model: "part" (default), "lru" or "nucache".
	Policy string `json:"policy,omitempty"`
	// Alloc is the candidate per-core way split for "part".
	Alloc []int `json:"alloc,omitempty"`
	// Best searches for the argmax allocation ("part": partition space,
	// "nucache": DeliWays space) instead of evaluating a candidate.
	Best bool `json:"best,omitempty"`
	// DeliWays is the candidate split for "nucache" (0 = default 6,
	// negative = none).
	DeliWays int `json:"deliways,omitempty"`
	// Verify also runs the full simulation and reports the delta.
	Verify bool `json:"verify,omitempty"`
}

// VerifyReport is the model-vs-simulation delta of a verified advise.
type VerifyReport struct {
	// Key and Result identify and carry the verifying simulation.
	Key    string  `json:"key"`
	Result *Result `json:"result"`
	// HitsExact reports that every per-core LLC hit count matched
	// exactly (the contract for static partitions).
	HitsExact     bool    `json:"hits_exact"`
	MaxHitsAbsErr uint64  `json:"max_hits_abs_err"`
	MaxIPCRelErr  float64 `json:"max_ipc_rel_err"`
	MissRateErr   float64 `json:"miss_rate_err"`
}

// AdviseResponse is the POST /v1/advise envelope. EvalNS times the
// analytical model alone — the microseconds the whole subsystem
// exists for; profile acquisition and verification are reported
// separately.
type AdviseResponse struct {
	ProfileKey    string          `json:"profile_key"`
	ProfileCached bool            `json:"profile_cached"`
	EvalNS        int64           `json:"eval_ns"`
	Prediction    *mrc.Prediction `json:"prediction"`
	Verify        *VerifyReport   `json:"verify,omitempty"`
}

// EvaluateAdvise answers the request's what-if against a profile. Pure
// model evaluation: no simulation, no I/O.
func EvaluateAdvise(p *mrc.Profile, req AdviseRequest) (*mrc.Prediction, error) {
	pol := strings.ToLower(req.Policy)
	if pol == "" {
		pol = mrc.PolicyPart
	}
	switch pol {
	case mrc.PolicyPart:
		if req.Best {
			return mrc.BestPartition(p)
		}
		return mrc.Predict(p, mrc.WhatIf{Policy: pol, Alloc: req.Alloc})
	case mrc.PolicyLRU:
		return mrc.Predict(p, mrc.WhatIf{Policy: pol})
	case mrc.PolicyNUcache:
		if req.Best {
			return mrc.BestDeliWays(p)
		}
		return mrc.Predict(p, mrc.WhatIf{Policy: pol, DeliWays: req.DeliWays})
	default:
		return nil, invalid(fmt.Errorf("sim: unknown advisor policy %q", req.Policy))
	}
}

// VerifyRequest maps an answered prediction back onto the simulation
// request that realizes it — the slow-path fallback the model is
// checked against.
func (req AdviseRequest) VerifyRequest(pred *mrc.Prediction) Request {
	r := req.simRequest()
	switch pred.Policy {
	case mrc.PolicyPart:
		r.Policy = "Part"
		r.Alloc = append([]int(nil), pred.Alloc...)
	case mrc.PolicyLRU:
		r.Policy = "LRU"
	case mrc.PolicyNUcache:
		r.Policy = "NUcache"
		if pred.DeliWays == 0 {
			r.DeliWays = -1 // Normalize maps 0 to the default split
		} else {
			r.DeliWays = pred.DeliWays
		}
	}
	return r.Normalize()
}

// CompareVerify computes the model-vs-simulation delta.
func CompareVerify(pred *mrc.Prediction, res *Result) (hitsExact bool, maxHitsAbs uint64, maxIPCRel float64, missRateErr float64) {
	hitsExact = true
	for i := range pred.PerCore {
		if i >= len(res.PerCore) {
			break
		}
		p, s := &pred.PerCore[i], &res.PerCore[i]
		d := absDiff(p.Hits, s.LLCHits)
		if d != 0 {
			hitsExact = false
		}
		if d > maxHitsAbs {
			maxHitsAbs = d
		}
		if s.IPC > 0 {
			rel := math.Abs(p.IPC-s.IPC) / s.IPC
			if rel > maxIPCRel {
				maxIPCRel = rel
			}
		}
	}
	var simAcc, simMiss uint64
	for i := range res.PerCore {
		simAcc += res.PerCore[i].LLCAccesses
		simMiss += res.PerCore[i].LLCMisses
	}
	if simAcc > 0 {
		missRateErr = math.Abs(pred.MissRate - float64(simMiss)/float64(simAcc))
	}
	return hitsExact, maxHitsAbs, maxIPCRel, missRateErr
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// fetchProfile returns the mix's profile, preferring the scheduler's
// content-addressed cache (no job is queued on a hit — the advisor
// answers already-profiled mixes without touching the simulation
// pipeline) and scheduling the profiling pass otherwise.
func (sv *Server) fetchProfile(ctx context.Context, req ProfileRequest) (*mrc.Profile, bool, error) {
	key := req.Key()
	if c := sv.sched.Cache(); c != nil {
		p := new(mrc.Profile)
		if c.Get(key, p) && p.Validate() == nil {
			MRCProfileCacheHits.Add(1)
			return p, true, nil
		}
	}
	out := sv.sched.Do(ctx, ProfileJobFor(req))
	if out.Err != nil {
		return nil, false, out.Err
	}
	p := out.Value.(*mrc.Profile)
	if out.Cached {
		MRCProfileCacheHits.Add(1)
	}
	return p, out.Cached, nil
}

// ProfileResponse is the POST /v1/profile envelope.
type ProfileResponse struct {
	Key     string       `json:"key"`
	Cached  bool         `json:"cached"`
	WallNS  int64        `json:"wall_ns"`
	Profile *mrc.Profile `json:"profile"`
}

func (sv *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var req ProfileRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	p, cached, err := sv.fetchProfile(r.Context(), req)
	if err != nil {
		sv.jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ProfileResponse{
		Key:     req.Key(),
		Cached:  cached,
		WallNS:  time.Since(start).Nanoseconds(),
		Profile: p,
	})
}

func (sv *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	AdviseRequests.Add(1)
	var req AdviseRequest
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	req.ProfileRequest = req.ProfileRequest.Normalize()
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, cached, err := sv.fetchProfile(r.Context(), req.ProfileRequest)
	if err != nil {
		sv.jobError(w, err)
		return
	}
	start := time.Now()
	pred, err := EvaluateAdvise(p, req)
	evalNS := time.Since(start).Nanoseconds()
	if err != nil {
		sv.jobError(w, err)
		return
	}
	resp := AdviseResponse{
		ProfileKey:    req.ProfileRequest.Key(),
		ProfileCached: cached,
		EvalNS:        evalNS,
		Prediction:    pred,
	}
	if req.Verify {
		vreq := req.VerifyRequest(pred)
		out := sv.sched.Do(r.Context(), JobFor(vreq))
		sv.logJob(r, "advise-verify", vreq, out)
		if out.Err != nil {
			sv.jobError(w, out.Err)
			return
		}
		res := out.Value.(*Result)
		hitsExact, maxAbs, maxRel, mrErr := CompareVerify(pred, res)
		recordVerifyErr(maxRel)
		resp.Verify = &VerifyReport{
			Key: vreq.Key(), Result: res,
			HitsExact: hitsExact, MaxHitsAbsErr: maxAbs,
			MaxIPCRelErr: maxRel, MissRateErr: mrErr,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
