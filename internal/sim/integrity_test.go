package sim

// End-to-end integrity tests for the disk result cache's sha256
// envelope: corrupt-but-parseable entries (which the pre-envelope
// format served as truth) must be detected by checksum, quarantined,
// and recomputed; legacy raw-payload entries must still load.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nucache/internal/failpoint"
)

func diskEntryPath(t *testing.T, c *Cache, key string) string {
	t.Helper()
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCacheEnvelopeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(4, dir)
	key := Request{Bench: "art-like", Budget: 321}.Key()
	want := Result{Mix: "envelope-roundtrip"}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}

	// The disk entry is enveloped: versioned, checksummed, payload intact.
	raw, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		t.Fatal(err)
	}
	var env diskEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("disk entry is not an envelope: %v\n%s", err, raw)
	}
	if env.V != 1 || len(env.SHA256) != 64 || env.Payload == nil {
		t.Fatalf("bad envelope: %+v", env)
	}

	// A fresh cache (cold memory tier) reads through the envelope.
	c2 := NewCache(4, dir)
	var got Result
	if !c2.Get(key, &got) {
		t.Fatal("enveloped entry missed")
	}
	if got.Mix != want.Mix {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestCacheLegacyEntryStillLoads(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(4, dir)
	key := Request{Bench: "art-like", Budget: 654}.Key()
	// A pre-envelope entry: the raw value JSON, no checksum.
	legacy, err := json.Marshal(Result{Mix: "legacy-format"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(diskEntryPath(t, c, key), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	failsBefore := CacheChecksumFails.Value()
	qBefore := CacheQuarantined.Value()
	var got Result
	if !c.Get(key, &got) {
		t.Fatal("legacy entry missed")
	}
	if got.Mix != "legacy-format" {
		t.Fatalf("legacy decode: %+v", got)
	}
	if CacheChecksumFails.Value() != failsBefore || CacheQuarantined.Value() != qBefore {
		t.Fatal("legacy load miscounted as corruption")
	}
}

// TestCacheChecksumCatchesParseableCorruption flips one byte inside the
// payload of a valid envelope — the file still parses as JSON, which the
// pre-envelope cache served as truth — and checks it is detected,
// counted, quarantined, and healed by recomputation.
func TestCacheChecksumCatchesParseableCorruption(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(4, dir)
	key := Request{Bench: "art-like", Budget: 987}.Key()
	if err := c.Put(key, Result{Mix: "pristine"}); err != nil {
		t.Fatal(err)
	}
	path := c.diskPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload's value, not its structure: "pristine" ->
	// "Xristine" keeps the JSON valid, so only the checksum can object.
	corrupt := strings.Replace(string(raw), "pristine", "Xristine", 1)
	if corrupt == string(raw) {
		t.Fatal("corruption had no effect")
	}
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}

	failsBefore := CacheChecksumFails.Value()
	qBefore := CacheQuarantined.Value()
	c2 := NewCache(4, dir) // cold memory tier: forces the disk read
	var got Result
	if c2.Get(key, &got) {
		t.Fatalf("checksum-corrupt entry served as a hit: %+v", got)
	}
	if CacheChecksumFails.Value() != failsBefore+1 {
		t.Fatal("checksum failure not counted")
	}
	if CacheQuarantined.Value() != qBefore+1 {
		t.Fatal("checksum-corrupt entry not quarantined")
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}

	// Degrade, don't fail: the key recomputes and serves again.
	if err := c2.Put(key, Result{Mix: "healed"}); err != nil {
		t.Fatal(err)
	}
	c3 := NewCache(4, dir)
	if !c3.Get(key, &got) || got.Mix != "healed" {
		t.Fatalf("healed entry not served: %+v", got)
	}
}

// TestCacheWriteFailpointDegrades arms the sim.cache.write site: the
// disk tier fails exactly as a full or read-only volume would, and the
// cache degrades to memory-only mode without failing the Put.
func TestCacheWriteFailpointDegrades(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm("sim.cache.write", "error"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c := NewCache(4, dir)
	errsBefore := CacheDiskErrors.Value()
	if err := c.Put("k1", Result{Mix: "memory-only"}); err != nil {
		t.Fatalf("Put must not fail when the disk tier degrades: %v", err)
	}
	if c.DiskHealthy() {
		t.Fatal("disk tier still healthy after injected write failure")
	}
	if CacheDiskErrors.Value() != errsBefore+1 {
		t.Fatal("disk error not counted")
	}
	// The in-memory tier still serves.
	var got Result
	if !c.Get("k1", &got) || got.Mix != "memory-only" {
		t.Fatalf("memory tier lost the value: %+v", got)
	}
	// And nothing landed on disk.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("degraded cache wrote %d entries", len(entries))
	}
}

// TestSchedulerJobFailpoint arms the dispatch-boundary site on the 2nd
// hit: the first job succeeds, the second fails with the injected error
// through the normal outcome path (no panic, no hang), the third runs
// clean again.
func TestSchedulerJobFailpoint(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm("sim.sched.job", "error@2"); err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(2, nil)
	job := Job{Run: func(context.Context) (any, error) { return 1, nil }}
	if out := s.Do(context.Background(), job); out.Err != nil {
		t.Fatalf("job 1: %v", out.Err)
	}
	out := s.Do(context.Background(), job)
	if !errors.Is(out.Err, failpoint.ErrInjected) {
		t.Fatalf("job 2 err = %v, want injected", out.Err)
	}
	if out := s.Do(context.Background(), job); out.Err != nil {
		t.Fatalf("job 3: %v", out.Err)
	}
}
