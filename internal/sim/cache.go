package sim

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Cache is a content-addressed result store: an in-memory LRU over
// JSON-encoded values, optionally backed by an on-disk JSON store that
// survives restarts. Values round-trip through encoding/json, which is
// exact for float64, so a cached result is byte-identical to a fresh one.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	dir     string     // "" disables the disk tier
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache builds a cache holding up to capacity in-memory entries
// (minimum 1). dir, when non-empty, enables the persistent tier; it is
// created on first write.
func NewCache(capacity int, dir string) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
		dir:     dir,
	}
}

// Len reports the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Get looks the key up (memory first, then disk) and decodes the stored
// value into `into` (a pointer). A disk hit is promoted into memory.
func (c *Cache) Get(key string, into any) bool {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		return json.Unmarshal(data, into) == nil
	}
	c.mu.Unlock()
	if c.dir == "" {
		return false
	}
	data, err := os.ReadFile(c.diskPath(key))
	if err != nil || json.Unmarshal(data, into) != nil {
		return false
	}
	c.putBytes(key, data)
	return true
}

// Put stores a JSON-marshalable value under the key, evicting the
// least-recently-used in-memory entry past capacity and writing through
// to the disk tier when enabled.
func (c *Cache) Put(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sim: cache encode: %w", err)
	}
	c.putBytes(key, data)
	if c.dir != "" {
		path := c.diskPath(key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		// Write-then-rename keeps readers from seeing partial files.
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	return nil
}

func (c *Cache) putBytes(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// diskPath maps a key to a file. Keys that are already hex digests are
// used as-is; anything else is hashed so arbitrary key strings stay
// filesystem-safe. A two-character fan-out directory keeps directories
// small under large sweeps.
func (c *Cache) diskPath(key string) string {
	name := key
	if !isHex(name) || len(name) != 64 {
		sum := sha256.Sum256([]byte(key))
		name = hex.EncodeToString(sum[:])
	}
	return filepath.Join(c.dir, name[:2], name+".json")
}

func isHex(s string) bool {
	return strings.IndexFunc(s, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}
