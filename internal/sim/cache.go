package sim

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"nucache/internal/failpoint"
)

// Cache is a content-addressed result store: an in-memory LRU over
// JSON-encoded values, optionally backed by an on-disk JSON store that
// survives restarts. Values round-trip through encoding/json, which is
// exact for float64, so a cached result is byte-identical to a fresh one.
//
// The disk tier self-heals: a corrupt entry (truncated write, bit rot)
// is quarantined on first read so it is never re-read and re-rejected,
// and a failing disk (read-only remount, volume full) degrades the
// cache to memory-only mode with a logged warning instead of failing
// requests.
//
// Disk entries are written inside an integrity envelope — the payload
// plus its SHA-256 — so corruption that still parses as JSON (a bit
// flip inside a float, a truncated-then-patched file) is detected by
// checksum instead of being served as truth. Pre-envelope entries (raw
// payload JSON) still load, so existing caches survive the upgrade.
//
// The in-memory tier is sharded by key hash into a power-of-2 number of
// independently locked LRUs sized from runtime.NumCPU(), so concurrent
// writers — a scheduler's worker pool, or remote fabric results landing
// between local completions — don't serialize on one global mutex.
// Small caches (under minShardEntries per would-be shard) collapse to a
// single shard, where eviction order is exactly the classic global LRU.
type Cache struct {
	shards []*cacheShard
	mask   uint32 // len(shards) - 1
	dir    string // "" disables the disk tier
	diskOK atomic.Bool
}

// cacheShard is one independently locked LRU slice of the key space.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	data []byte
}

// minShardEntries is the floor on per-shard capacity: sharding a cache
// below it would turn capacity-accurate LRU eviction into noise (and
// every small-cache test in this repo into a flake), so caches that
// small stay single-shard.
const minShardEntries = 64

// shardCount picks the in-memory shard count: the smallest power of two
// ≥ NumCPU, halved until each shard holds at least minShardEntries.
func shardCount(capacity int) int {
	n := 1
	for n < runtime.NumCPU() {
		n <<= 1
	}
	for n > 1 && capacity/n < minShardEntries {
		n >>= 1
	}
	return n
}

// NewCache builds a cache holding up to capacity in-memory entries
// (minimum 1). dir, when non-empty, enables the persistent tier; it is
// created on first write.
func NewCache(capacity int, dir string) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	n := shardCount(capacity)
	c := &Cache{
		shards: make([]*cacheShard, n),
		mask:   uint32(n - 1),
		dir:    dir,
	}
	for i := range c.shards {
		// Spread capacity across shards, remainder to the low shards,
		// so the total in-memory bound is exactly `capacity`.
		sc := capacity / n
		if i < capacity%n {
			sc++
		}
		c.shards[i] = &cacheShard{
			cap:     sc,
			entries: map[string]*list.Element{},
			order:   list.New(),
		}
	}
	c.diskOK.Store(true)
	return c
}

// shard routes a key to its shard by FNV-1a hash. Keys are sha256 hex
// digests in the common case, so any decent mix works; FNV keeps it
// allocation-free.
func (c *Cache) shard(key string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h&c.mask]
}

// Len reports the in-memory entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.order.Len()
		s.mu.Unlock()
	}
	return n
}

// Contains reports whether the key is resident in memory, without
// promoting it or touching the disk tier. The sweep's fabric offer path
// uses it to skip already-finished cells.
func (c *Cache) Contains(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// DiskHealthy reports whether the disk tier is still accepting writes.
// It is true for memory-only caches (nothing to be unhealthy about) and
// flips to false permanently once a disk write fails, at which point the
// cache serves from memory only.
func (c *Cache) DiskHealthy() bool { return c.dir == "" || c.diskOK.Load() }

// Persistent reports whether a disk tier was configured.
func (c *Cache) Persistent() bool { return c.dir != "" }

// Get looks the key up (memory first, then disk) and decodes the stored
// value into `into` (a pointer). A disk hit is promoted into memory. A
// disk entry that fails to decode is quarantined so the next lookup for
// the key recomputes instead of re-reading the corrupt file forever.
func (c *Cache) Get(key string, into any) bool {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		s.mu.Unlock()
		if json.Unmarshal(data, into) == nil {
			return true
		}
		// Memory entries are written by Put and should never be corrupt;
		// drop the entry anyway so a decode mismatch (e.g. a changed
		// result schema) heals by recomputation instead of recurring.
		s.evict(key, el)
		return false
	}
	s.mu.Unlock()
	if c.dir == "" {
		return false
	}
	path := c.diskPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	payload, err := openEnvelope(data)
	if err != nil {
		c.quarantine(path, err)
		return false
	}
	if err := json.Unmarshal(payload, into); err != nil {
		c.quarantine(path, err)
		return false
	}
	c.putBytes(key, payload)
	return true
}

// diskEnvelope wraps a disk entry's payload with its own SHA-256 so
// bit rot is detected by checksum, not by whether it happens to break
// JSON syntax.
type diskEnvelope struct {
	V      int             `json:"v"`
	SHA256 string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// sealEnvelope wraps a payload for the disk tier.
func sealEnvelope(payload []byte) ([]byte, error) {
	sum := sha256.Sum256(payload)
	return json.Marshal(diskEnvelope{V: 1, SHA256: hex.EncodeToString(sum[:]), Payload: payload})
}

// openEnvelope extracts and verifies a disk entry's payload. Entries
// written before the envelope existed (raw payload JSON, no checksum)
// pass through unchanged — they lack the envelope's marker fields, and
// no cached Result ever had a top-level "sha256" — so old caches keep
// loading; checksum mismatches count in nucache_cache_checksum_fails
// and surface as errors for the quarantine path.
func openEnvelope(data []byte) ([]byte, error) {
	var env diskEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	if env.V == 0 || env.SHA256 == "" || env.Payload == nil {
		return data, nil // legacy raw-payload entry
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		CacheChecksumFails.Add(1)
		return nil, fmt.Errorf("sim: cache entry checksum mismatch: payload sha256 %s, envelope says %s", got, env.SHA256)
	}
	return env.Payload, nil
}

// evict removes a known-bad memory entry, tolerating concurrent
// replacement (only the exact element observed corrupt is removed).
func (s *cacheShard) evict(key string, el *list.Element) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.entries[key]; ok && cur == el {
		s.order.Remove(cur)
		delete(s.entries, key)
	}
}

// quarantine moves a corrupt disk entry aside (or deletes it if even
// that fails) so it is inspected at most once. Counted in
// nucache_cache_quarantined.
func (c *Cache) quarantine(path string, cause error) {
	CacheQuarantined.Add(1)
	qpath := path + ".quarantined"
	if err := os.Rename(path, qpath); err != nil {
		// Read-only disk or concurrent removal: removing is best
		// effort too; a persistent failure just means one wasted
		// re-read per restart, never a wrong result.
		_ = os.Remove(path)
		qpath = "(removed)"
	}
	slog.Warn("sim cache: quarantined corrupt entry",
		"path", path, "moved_to", qpath, "error", cause.Error())
}

// Put stores a JSON-marshalable value under the key, evicting the
// least-recently-used in-memory entry past capacity and writing through
// to the disk tier when enabled. A disk-tier failure (unwritable or
// full volume) degrades the cache to memory-only mode — logged once,
// counted in nucache_cache_disk_errors — and is not reported as an
// error: the in-memory store succeeded and the caller's result is
// valid.
func (c *Cache) Put(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sim: cache encode: %w", err)
	}
	c.putBytes(key, data)
	if c.dir == "" || !c.diskOK.Load() {
		return nil
	}
	if err := c.writeDisk(key, data); err != nil {
		CacheDiskErrors.Add(1)
		if c.diskOK.CompareAndSwap(true, false) {
			slog.Warn("sim cache: disk tier failed; degrading to memory-only mode",
				"dir", c.dir, "error", err.Error())
		}
	}
	return nil
}

func (c *Cache) writeDisk(key string, data []byte) error {
	if err := failpoint.Inject("sim.cache.write"); err != nil {
		return err
	}
	sealed, err := sealEnvelope(data)
	if err != nil {
		return err
	}
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	// Write-then-rename keeps readers from seeing partial files.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, sealed, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PutEncoded stores an already-marshaled JSON value under the key in
// the in-memory tier only. It is the journal-resume seeding path: a
// checkpointed cell's bytes go straight back into the cache, so the
// resumed sweep decodes exactly what the original run computed (JSON
// round-trips float64 exactly) without touching the disk tier.
func (c *Cache) PutEncoded(key string, data []byte) {
	c.putBytes(key, append([]byte(nil), data...))
}

func (c *Cache) putBytes(key string, data []byte) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).data = data
		s.order.MoveToFront(el)
		return
	}
	s.entries[key] = s.order.PushFront(&cacheEntry{key: key, data: data})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.entries, oldest.Value.(*cacheEntry).key)
	}
}

// diskPath maps a key to a file. Keys that are already hex digests are
// used as-is; anything else is hashed so arbitrary key strings stay
// filesystem-safe. A two-character fan-out directory keeps directories
// small under large sweeps.
func (c *Cache) diskPath(key string) string {
	name := key
	if !isHex(name) || len(name) != 64 {
		sum := sha256.Sum256([]byte(key))
		name = hex.EncodeToString(sum[:])
	}
	return filepath.Join(c.dir, name[:2], name+".json")
}

func isHex(s string) bool {
	return strings.IndexFunc(s, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}
