package sim

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"nucache/internal/failpoint"
)

// Cache is a content-addressed result store: an in-memory LRU over
// JSON-encoded values, optionally backed by an on-disk JSON store that
// survives restarts. Values round-trip through encoding/json, which is
// exact for float64, so a cached result is byte-identical to a fresh one.
//
// The disk tier self-heals: a corrupt entry (truncated write, bit rot)
// is quarantined on first read so it is never re-read and re-rejected,
// and a failing disk (read-only remount, volume full) degrades the
// cache to memory-only mode with a logged warning instead of failing
// requests.
//
// Disk entries are written inside an integrity envelope — the payload
// plus its SHA-256 — so corruption that still parses as JSON (a bit
// flip inside a float, a truncated-then-patched file) is detected by
// checksum instead of being served as truth. Pre-envelope entries (raw
// payload JSON) still load, so existing caches survive the upgrade.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	dir     string     // "" disables the disk tier
	diskOK  atomic.Bool
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache builds a cache holding up to capacity in-memory entries
// (minimum 1). dir, when non-empty, enables the persistent tier; it is
// created on first write.
func NewCache(capacity int, dir string) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
		dir:     dir,
	}
	c.diskOK.Store(true)
	return c
}

// Len reports the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// DiskHealthy reports whether the disk tier is still accepting writes.
// It is true for memory-only caches (nothing to be unhealthy about) and
// flips to false permanently once a disk write fails, at which point the
// cache serves from memory only.
func (c *Cache) DiskHealthy() bool { return c.dir == "" || c.diskOK.Load() }

// Persistent reports whether a disk tier was configured.
func (c *Cache) Persistent() bool { return c.dir != "" }

// Get looks the key up (memory first, then disk) and decodes the stored
// value into `into` (a pointer). A disk hit is promoted into memory. A
// disk entry that fails to decode is quarantined so the next lookup for
// the key recomputes instead of re-reading the corrupt file forever.
func (c *Cache) Get(key string, into any) bool {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		c.mu.Unlock()
		if json.Unmarshal(data, into) == nil {
			return true
		}
		// Memory entries are written by Put and should never be corrupt;
		// drop the entry anyway so a decode mismatch (e.g. a changed
		// result schema) heals by recomputation instead of recurring.
		c.evict(key, el)
		return false
	}
	c.mu.Unlock()
	if c.dir == "" {
		return false
	}
	path := c.diskPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	payload, err := openEnvelope(data)
	if err != nil {
		c.quarantine(path, err)
		return false
	}
	if err := json.Unmarshal(payload, into); err != nil {
		c.quarantine(path, err)
		return false
	}
	c.putBytes(key, payload)
	return true
}

// diskEnvelope wraps a disk entry's payload with its own SHA-256 so
// bit rot is detected by checksum, not by whether it happens to break
// JSON syntax.
type diskEnvelope struct {
	V      int             `json:"v"`
	SHA256 string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// sealEnvelope wraps a payload for the disk tier.
func sealEnvelope(payload []byte) ([]byte, error) {
	sum := sha256.Sum256(payload)
	return json.Marshal(diskEnvelope{V: 1, SHA256: hex.EncodeToString(sum[:]), Payload: payload})
}

// openEnvelope extracts and verifies a disk entry's payload. Entries
// written before the envelope existed (raw payload JSON, no checksum)
// pass through unchanged — they lack the envelope's marker fields, and
// no cached Result ever had a top-level "sha256" — so old caches keep
// loading; checksum mismatches count in nucache_cache_checksum_fails
// and surface as errors for the quarantine path.
func openEnvelope(data []byte) ([]byte, error) {
	var env diskEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	if env.V == 0 || env.SHA256 == "" || env.Payload == nil {
		return data, nil // legacy raw-payload entry
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		CacheChecksumFails.Add(1)
		return nil, fmt.Errorf("sim: cache entry checksum mismatch: payload sha256 %s, envelope says %s", got, env.SHA256)
	}
	return env.Payload, nil
}

// evict removes a known-bad memory entry, tolerating concurrent
// replacement (only the exact element observed corrupt is removed).
func (c *Cache) evict(key string, el *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[key]; ok && cur == el {
		c.order.Remove(cur)
		delete(c.entries, key)
	}
}

// quarantine moves a corrupt disk entry aside (or deletes it if even
// that fails) so it is inspected at most once. Counted in
// nucache_cache_quarantined.
func (c *Cache) quarantine(path string, cause error) {
	CacheQuarantined.Add(1)
	qpath := path + ".quarantined"
	if err := os.Rename(path, qpath); err != nil {
		// Read-only disk or concurrent removal: removing is best
		// effort too; a persistent failure just means one wasted
		// re-read per restart, never a wrong result.
		_ = os.Remove(path)
		qpath = "(removed)"
	}
	slog.Warn("sim cache: quarantined corrupt entry",
		"path", path, "moved_to", qpath, "error", cause.Error())
}

// Put stores a JSON-marshalable value under the key, evicting the
// least-recently-used in-memory entry past capacity and writing through
// to the disk tier when enabled. A disk-tier failure (unwritable or
// full volume) degrades the cache to memory-only mode — logged once,
// counted in nucache_cache_disk_errors — and is not reported as an
// error: the in-memory store succeeded and the caller's result is
// valid.
func (c *Cache) Put(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sim: cache encode: %w", err)
	}
	c.putBytes(key, data)
	if c.dir == "" || !c.diskOK.Load() {
		return nil
	}
	if err := c.writeDisk(key, data); err != nil {
		CacheDiskErrors.Add(1)
		if c.diskOK.CompareAndSwap(true, false) {
			slog.Warn("sim cache: disk tier failed; degrading to memory-only mode",
				"dir", c.dir, "error", err.Error())
		}
	}
	return nil
}

func (c *Cache) writeDisk(key string, data []byte) error {
	if err := failpoint.Inject("sim.cache.write"); err != nil {
		return err
	}
	sealed, err := sealEnvelope(data)
	if err != nil {
		return err
	}
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	// Write-then-rename keeps readers from seeing partial files.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, sealed, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// PutEncoded stores an already-marshaled JSON value under the key in
// the in-memory tier only. It is the journal-resume seeding path: a
// checkpointed cell's bytes go straight back into the cache, so the
// resumed sweep decodes exactly what the original run computed (JSON
// round-trips float64 exactly) without touching the disk tier.
func (c *Cache) PutEncoded(key string, data []byte) {
	c.putBytes(key, append([]byte(nil), data...))
}

func (c *Cache) putBytes(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).data = data
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// diskPath maps a key to a file. Keys that are already hex digests are
// used as-is; anything else is hashed so arbitrary key strings stay
// filesystem-safe. A two-character fan-out directory keeps directories
// small under large sweeps.
func (c *Cache) diskPath(key string) string {
	name := key
	if !isHex(name) || len(name) != 64 {
		sum := sha256.Sum256([]byte(key))
		name = hex.EncodeToString(sum[:])
	}
	return filepath.Join(c.dir, name[:2], name+".json")
}

func isHex(s string) bool {
	return strings.IndexFunc(s, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}
