package sim

import (
	"reflect"
	"testing"
	"time"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/policy"
	"nucache/internal/workload"
)

// Retired-instruction accounting contract: RunMachine adds to
// InstructionsRetired exactly once per simulation it computes — the same
// amount whether the run went through replay or direct simulation — and
// layers above never count again (cache hits are covered by the
// experiments-level test on the grid cache).
// drainBackground waits until no scheduler job is executing anywhere in
// the process. Deadline-abandoned jobs from earlier tests finish in the
// background by design and add to InstructionsRetired when they do; a
// delta measured while one is still running is meaningless.
func drainBackground(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for JobsRunning.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d background jobs still running", JobsRunning.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRetiredAccountingReplayVsDirect(t *testing.T) {
	drainBackground(t)
	cfg := cpu.DefaultConfig(2)
	cfg.InstrBudget = 40_000
	mix := workload.Mix{Name: "retired-test", Members: []string{"art-like", "swim-like"}}
	newPol := func() cache.Policy { return policy.NewLRU() }

	before := InstructionsRetired.Value()
	dRes, _, _ := RunMachine(cfg, newPol, mix, 99, true) // direct
	directDelta := InstructionsRetired.Value() - before

	var want int64
	for _, r := range dRes {
		want += int64(r.Instructions)
	}
	if directDelta != want {
		t.Fatalf("direct run retired %d, results sum to %d", directDelta, want)
	}

	before = InstructionsRetired.Value()
	rRes, _, _ := RunMachine(cfg, newPol, mix, 99, false) // replay (records tapes)
	replayDelta := InstructionsRetired.Value() - before
	if replayDelta != directDelta {
		t.Fatalf("replay run retired %d, direct retired %d", replayDelta, directDelta)
	}
	if !reflect.DeepEqual(dRes, rRes) {
		t.Fatalf("replay results diverge from direct\nreplay: %+v\ndirect: %+v", rRes, dRes)
	}

	// A second replay of the now-recorded tapes still counts: it is a
	// fresh simulation (of a possibly different policy), not a cache hit.
	before = InstructionsRetired.Value()
	RunMachine(cfg, newPol, mix, 99, false)
	if again := InstructionsRetired.Value() - before; again != directDelta {
		t.Fatalf("second replay retired %d, want %d", again, directDelta)
	}
}

// RunMachineOneShot replays only tapes some other run already recorded;
// either way its accounting matches the direct run.
func TestRetiredAccountingOneShot(t *testing.T) {
	drainBackground(t)
	cfg := cpu.DefaultConfig(1)
	cfg.InstrBudget = 40_000
	alone := workload.Mix{Name: "retired-oneshot", Members: []string{"mcf-like"}}
	newPol := func() cache.Policy { return policy.NewLRU() }

	before := InstructionsRetired.Value()
	res, _, _ := RunMachineOneShot(cfg, newPol, alone, 101, false)
	delta := InstructionsRetired.Value() - before
	var want int64
	for _, r := range res {
		want += int64(r.Instructions)
	}
	if delta != want {
		t.Fatalf("one-shot run retired %d, results sum to %d", delta, want)
	}
}
