package sim

// Fault-injection suite: slow, failing and panicking jobs, corrupted
// and unwritable cache directories, abandoned streams and saturated
// queues. Each test proves one degradation path of the serving layer —
// the system must degrade (shed, retry, quarantine, go memory-only),
// never hang or serve a wrong result.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- deadlines ---

func TestSchedulerDeadlineFreesWorkerSlot(t *testing.T) {
	s := NewSchedulerWith(SchedulerConfig{Workers: 1})
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })

	killsBefore := DeadlineKills.Value()
	out := s.Do(context.Background(), Job{
		Label:   "runaway",
		Timeout: 20 * time.Millisecond,
		Run: func(context.Context) (any, error) {
			<-release // simulates a simulation that never finishes
			return nil, nil
		},
	})
	if out.Err == nil {
		t.Fatal("runaway job did not report an error")
	}
	if Classify(out.Err) != KindDeadline || !errors.Is(out.Err, context.DeadlineExceeded) {
		t.Fatalf("deadline error misclassified: %v (kind %s)", out.Err, Classify(out.Err))
	}
	if DeadlineKills.Value() != killsBefore+1 {
		t.Fatalf("deadline kill not counted: %d -> %d", killsBefore, DeadlineKills.Value())
	}

	// The single worker slot must be free again even though the runaway
	// body is still blocked: a fresh job has to complete promptly.
	done := make(chan Outcome, 1)
	go func() {
		done <- s.Do(context.Background(), Job{Run: func(context.Context) (any, error) {
			return "alive", nil
		}})
	}()
	select {
	case o := <-done:
		if o.Err != nil || o.Value != "alive" {
			t.Fatalf("follow-up job on freed slot: %+v", o)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker slot still occupied after deadline kill")
	}
}

func TestSchedulerDefaultTimeoutApplies(t *testing.T) {
	s := NewSchedulerWith(SchedulerConfig{Workers: 1, DefaultTimeout: 15 * time.Millisecond})
	out := s.Do(context.Background(), Job{Run: func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	}})
	if Classify(out.Err) != KindDeadline {
		t.Fatalf("default deadline not enforced: %+v", out)
	}
}

// --- backpressure ---

func TestSchedulerShedsWhenQueueFull(t *testing.T) {
	s := NewSchedulerWith(SchedulerConfig{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	blocking := func(context.Context) (any, error) { <-release; return "ok", nil }

	// Occupy the single worker, then fill the one queue slot.
	running := make(chan struct{})
	worker := make(chan Outcome, 1)
	go func() {
		worker <- s.Do(context.Background(), Job{Run: func(context.Context) (any, error) {
			close(running)
			<-release
			return "ok", nil
		}})
	}()
	<-running
	queued := make(chan Outcome, 1)
	go func() { queued <- s.Do(context.Background(), Job{Run: blocking}) }()
	waitFor(t, func() bool { return s.QueueLen() == 1 })

	shedBefore := JobsShed.Value()
	out := s.Do(context.Background(), Job{Label: "excess", Run: blocking})
	if !errors.Is(out.Err, ErrOverloaded) || Classify(out.Err) != KindOverload {
		t.Fatalf("expected overload error, got %v (kind %s)", out.Err, Classify(out.Err))
	}
	if JobsShed.Value() != shedBefore+1 {
		t.Fatal("shed not counted")
	}
	if !s.Saturated() {
		t.Fatal("Saturated() false with a full queue")
	}

	close(release)
	if o := <-worker; o.Err != nil {
		t.Fatalf("blocked worker job: %v", o.Err)
	}
	if o := <-queued; o.Err != nil {
		t.Fatalf("queued job must run once the worker frees: %v", o.Err)
	}
	if s.QueueLen() != 0 || s.Saturated() {
		t.Fatalf("queue did not drain: len %d", s.QueueLen())
	}
}

// --- retries ---

func TestSchedulerRetriesTransientFailures(t *testing.T) {
	s := NewSchedulerWith(SchedulerConfig{
		Workers: 2,
		Retry:   RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	})
	var runs atomic.Int64
	retriedBefore := JobsRetried.Value()
	out := s.Do(context.Background(), Job{Run: func(context.Context) (any, error) {
		if runs.Add(1) < 3 {
			return nil, fmt.Errorf("transient network-ish failure")
		}
		return "recovered", nil
	}})
	if out.Err != nil || out.Value != "recovered" {
		t.Fatalf("retry did not recover: %+v", out)
	}
	if out.Attempts != 3 || runs.Load() != 3 {
		t.Fatalf("attempts %d, runs %d, want 3", out.Attempts, runs.Load())
	}
	if JobsRetried.Value() != retriedBefore+2 {
		t.Fatalf("retries counted %d, want 2", JobsRetried.Value()-retriedBefore)
	}

	// Exhausted budget: transient failure every time.
	runs.Store(0)
	out = s.Do(context.Background(), Job{Run: func(context.Context) (any, error) {
		runs.Add(1)
		return nil, fmt.Errorf("always down")
	}})
	if out.Err == nil || out.Attempts != 3 || runs.Load() != 3 {
		t.Fatalf("exhausted retry: %+v after %d runs", out, runs.Load())
	}
}

func TestSchedulerNeverRetriesPanicsOrDeadlines(t *testing.T) {
	s := NewSchedulerWith(SchedulerConfig{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond},
	})
	var panics atomic.Int64
	out := s.Do(context.Background(), Job{Label: "bad", Run: func(context.Context) (any, error) {
		panics.Add(1)
		panic("deterministic bug")
	}})
	if Classify(out.Err) != KindPanic {
		t.Fatalf("panic kind: %v", out.Err)
	}
	if panics.Load() != 1 || out.Attempts != 1 {
		t.Fatalf("panicking job retried: %d runs, %d attempts", panics.Load(), out.Attempts)
	}

	var slowRuns atomic.Int64
	out = s.Do(context.Background(), Job{
		Timeout: 10 * time.Millisecond,
		Run: func(context.Context) (any, error) {
			slowRuns.Add(1)
			time.Sleep(150 * time.Millisecond)
			return nil, nil
		},
	})
	if Classify(out.Err) != KindDeadline {
		t.Fatalf("deadline kind: %v", out.Err)
	}
	if out.Attempts != 1 {
		t.Fatalf("deadline-killed job retried: %d attempts", out.Attempts)
	}
	waitFor(t, func() bool { return slowRuns.Load() == 1 })
}

// --- goroutine-leak regression for abandoned streams ---

func TestRunStreamAbandonedStreamNoGoroutineLeak(t *testing.T) {
	s := NewScheduler(2, nil)
	jobs := make([]Job, 24)
	for i := range jobs {
		i := i
		jobs[i] = Job{Run: func(context.Context) (any, error) {
			time.Sleep(2 * time.Millisecond)
			return i, nil
		}}
	}
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ch := s.RunStream(ctx, jobs)
	<-ch     // consume one event, like a client that read a line then died
	cancel() // the HTTP server cancels r.Context() on disconnect
	// Deliberately never read from ch again. Every sender must still
	// exit: each send selects on ctx.Done().
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+1 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after abandoned stream: baseline %d, now %d",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// --- Scheduler.Do cancellation paths (all exercised under -race in CI) ---

func TestDoCancelledWhileWaitingOnDuplicate(t *testing.T) {
	s := NewScheduler(2, NewCache(16, ""))
	release := make(chan struct{})
	started := make(chan struct{})
	owner := make(chan Outcome, 1)
	job := Job{
		Key: "dup-cancel",
		New: func() any { return new(int) },
		Run: func(context.Context) (any, error) {
			close(started)
			<-release
			n := 5
			return &n, nil
		},
	}
	go func() { owner <- s.Do(context.Background(), job) }()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan Outcome, 1)
	go func() { waiter <- s.Do(ctx, job) }()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the in-flight channel
	cancel()
	select {
	case o := <-waiter:
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("waiter outcome: %+v", o)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter stuck on in-flight duplicate")
	}

	close(release)
	if o := <-owner; o.Err != nil || *o.Value.(*int) != 5 {
		t.Fatalf("owner must be unaffected: %+v", o)
	}
}

func TestDoOwnerFailureWaiterReclaims(t *testing.T) {
	s := NewScheduler(2, NewCache(16, ""))
	ownerRelease := make(chan struct{})
	ownerStarted := make(chan struct{})
	var runs atomic.Int64
	missesBefore := CacheMisses.Value()
	job := func(fail bool) Job {
		return Job{
			Key: "reclaim-key",
			New: func() any { return new(int) },
			Run: func(context.Context) (any, error) {
				if runs.Add(1) == 1 {
					close(ownerStarted)
					<-ownerRelease
					if fail {
						return nil, fmt.Errorf("owner lost its disk")
					}
				}
				n := 77
				return &n, nil
			},
		}
	}
	owner := make(chan Outcome, 1)
	go func() { owner <- s.Do(context.Background(), job(true)) }()
	<-ownerStarted
	waiter := make(chan Outcome, 1)
	go func() { waiter <- s.Do(context.Background(), job(true)) }()
	time.Sleep(10 * time.Millisecond) // park the waiter behind the owner
	close(ownerRelease)

	if o := <-owner; o.Err == nil {
		t.Fatalf("owner was injected to fail: %+v", o)
	}
	o := <-waiter
	if o.Err != nil || *o.Value.(*int) != 77 {
		t.Fatalf("waiter reclaim outcome: %+v", o)
	}
	if runs.Load() != 2 {
		t.Fatalf("body ran %d times, want 2 (owner + reclaiming waiter)", runs.Load())
	}
	// One logical key resolution = one recorded miss, even though the
	// waiter re-claimed ownership after the owner failed.
	if got := CacheMisses.Value() - missesBefore; got != 1 {
		t.Fatalf("misses for one key resolution: %d, want 1", got)
	}
}

// --- self-healing cache: corruption ---

func TestCacheQuarantinesCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(4, dir)
	key := Request{Bench: "art-like", Budget: 123_456}.Key()
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	// A truncated JSON write, as left by a crash mid-write or bit rot.
	if err := os.WriteFile(path, []byte(`{"mix":"mix4-01","per_co`), 0o644); err != nil {
		t.Fatal(err)
	}

	qBefore := CacheQuarantined.Value()
	var into Result
	if c.Get(key, &into) {
		t.Fatal("corrupt entry served as a hit")
	}
	if CacheQuarantined.Value() != qBefore+1 {
		t.Fatal("quarantine not counted")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in place: %v", err)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}

	// Exactly once: the next lookup is a plain miss, no re-quarantine.
	if c.Get(key, &into) {
		t.Fatal("second lookup hit")
	}
	if CacheQuarantined.Value() != qBefore+1 {
		t.Fatal("entry quarantined more than once")
	}

	// The key heals: a fresh Put lands and serves.
	if err := c.Put(key, Result{Mix: "healed"}); err != nil {
		t.Fatal(err)
	}
	c2 := NewCache(4, dir) // fresh cache, forces the disk read path
	if !c2.Get(key, &into) || into.Mix != "healed" {
		t.Fatalf("healed entry not served: %+v", into)
	}
}

func TestSchedulerRecomputesPastCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cache := NewCache(4, dir)
	s := NewScheduler(2, cache)
	type payload struct{ N int }
	key := strings.Repeat("ab", 32) // valid hex key
	path := cache.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"N": 1e`), 0o644); err != nil {
		t.Fatal(err)
	}
	job := Job{
		Key: key,
		New: func() any { return new(payload) },
		Run: func(context.Context) (any, error) { return &payload{N: 9}, nil },
	}
	out := s.Do(context.Background(), job)
	if out.Err != nil || out.Cached || out.Value.(*payload).N != 9 {
		t.Fatalf("recompute past corruption: %+v", out)
	}
	out = s.Do(context.Background(), job)
	if out.Err != nil || !out.Cached || out.Value.(*payload).N != 9 {
		t.Fatalf("healed key must now hit: %+v", out)
	}
}

// --- self-healing cache: unwritable disk ---

// brokenDir returns a path that cannot be created even by root: its
// parent is a regular file, so MkdirAll fails with ENOTDIR. (chmod-based
// fixtures are useless in containers that run tests as root.)
func brokenDir(t *testing.T) string {
	t.Helper()
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(blocker, "cache")
}

func TestCacheDegradesToMemoryOnlyOnDiskFailure(t *testing.T) {
	c := NewCache(8, brokenDir(t))
	if !c.DiskHealthy() {
		t.Fatal("disk marked unhealthy before any write")
	}
	errsBefore := CacheDiskErrors.Value()
	type v struct{ S string }
	if err := c.Put("k", v{S: "kept"}); err != nil {
		t.Fatalf("Put must not fail the request on a dead disk: %v", err)
	}
	if c.DiskHealthy() {
		t.Fatal("disk still healthy after write failure")
	}
	if CacheDiskErrors.Value() != errsBefore+1 {
		t.Fatal("disk error not counted")
	}
	var got v
	if !c.Get("k", &got) || got.S != "kept" {
		t.Fatalf("memory tier lost the value: %+v", got)
	}
	// Degraded mode short-circuits: further writes never touch the disk
	// (or the error counter) again.
	if err := c.Put("k2", v{S: "also kept"}); err != nil {
		t.Fatal(err)
	}
	if CacheDiskErrors.Value() != errsBefore+1 {
		t.Fatal("degraded cache kept hammering the dead disk")
	}
	if !c.Get("k2", &got) || got.S != "also kept" {
		t.Fatalf("second value lost: %+v", got)
	}
}

func TestServingSurvivesUnwritableCacheDir(t *testing.T) {
	sched := NewScheduler(2, NewCache(8, brokenDir(t)))
	ts := httptest.NewServer(NewServer(sched).Handler())
	t.Cleanup(ts.Close)

	body := `{"bench":"art-like","budget":60000}`
	for i, wantCached := range []bool{false, true} {
		resp := postJSON(t, ts.URL+"/v1/sim", body)
		var sr SimResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed with %d on a dead disk", i, resp.StatusCode)
		}
		if sr.Cached != wantCached {
			t.Fatalf("request %d cached=%v, want %v (memory tier must keep serving)",
				i, sr.Cached, wantCached)
		}
	}

	// The degradation is visible on /readyz, not only in logs —
	// /healthz is pure liveness and must keep saying ok.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready struct {
		Status    string `json:"status"`
		CacheDisk string `json:"cache_disk"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "degraded" || ready.CacheDisk != "degraded" {
		t.Fatalf("readyz %+v, want status degraded + cache_disk degraded", ready)
	}

	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Body.Close()
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(live.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("healthz %+v: liveness must not degrade with the disk tier", health)
	}
}

// --- HTTP failure contract ---

func TestServerShedsWith429AndRetryAfter(t *testing.T) {
	sched := NewSchedulerWith(SchedulerConfig{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(NewServer(sched).Handler())
	t.Cleanup(ts.Close)

	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	running := make(chan struct{})
	go sched.Do(context.Background(), Job{Run: func(context.Context) (any, error) {
		close(running)
		<-release
		return nil, nil
	}})
	<-running
	go sched.Do(context.Background(), Job{Run: func(context.Context) (any, error) {
		<-release
		return nil, nil
	}})
	waitFor(t, func() bool { return sched.Saturated() })

	resp := postJSON(t, ts.URL+"/v1/sim", `{"bench":"art-like","budget":50000}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var errBody struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.Kind != "overload" || errBody.Error == "" {
		t.Fatalf("error body %+v", errBody)
	}

	// Sweeps are shed whole, before the NDJSON stream starts.
	sw := postJSON(t, ts.URL+"/v1/sweep", `{"mixes":["mix2-01"],"policies":["LRU"],"budget":50000}`)
	defer sw.Body.Close()
	if sw.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep returned %d, want 429", sw.StatusCode)
	}
	if sw.Header.Get("Retry-After") == "" {
		t.Fatal("sweep 429 without Retry-After")
	}
}

func TestServerDeadlineReturns504(t *testing.T) {
	ts := newTestServer(t)
	// A budget far beyond a 1ms deadline: the kill must be reported as
	// 504/deadline while the worker slot frees immediately. Kept small
	// enough that the abandoned run (which finishes in the background to
	// warm the cache) drains quickly — it moves process-global counters
	// when it completes, and later tests measure those.
	resp := postJSON(t, ts.URL+"/v1/sim",
		`{"mix":"mix4-01","budget":300000,"timeout_ms":1}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var errBody struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.Kind != "deadline" || !strings.Contains(errBody.Error, "deadline") {
		t.Fatalf("error body %+v", errBody)
	}
}

func TestServerRejectsNegativeTimeout(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/sim", `{"bench":"art-like","timeout_ms":-5}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// waitFor polls cond until true or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
