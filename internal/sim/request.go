package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"nucache/internal/cpu"
	"nucache/internal/workload"
)

// Request declaratively describes one simulation: a workload (exactly one
// of Bench, Mix or Members), a shared-LLC policy, and the machine knobs
// that affect the outcome. The zero value of every optional field means
// "default", so a normalized Request is canonical and hashable.
type Request struct {
	// Bench runs a single benchmark alone on one core.
	Bench string `json:"bench,omitempty"`
	// Mix runs a standard named mix (e.g. "mix4-01").
	Mix string `json:"mix,omitempty"`
	// Members runs an ad-hoc mix, one benchmark name per core.
	Members []string `json:"members,omitempty"`
	// Policy is the LLC policy name (see Policies); default "NUcache".
	Policy string `json:"policy,omitempty"`
	// Budget is the per-core instruction budget (0 = 5M).
	Budget uint64 `json:"budget,omitempty"`
	// Seed drives the workload generators (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// DeliWays sets NUcache's retention ways: 0 = default (6),
	// -1 = none (degenerates to LRU over the MainWays).
	DeliWays int `json:"deliways,omitempty"`
	// L2 adds a private 256KB 8-way L2 per core.
	L2 bool `json:"l2,omitempty"`
	// DRAM switches to the bank/row-buffer memory model.
	DRAM bool `json:"dram,omitempty"`
	// Prefetch is the next-line prefetch degree (0 = off).
	Prefetch int `json:"prefetch,omitempty"`
	// Alloc is the per-core way allocation for the static "Part"
	// policy (empty = even split). Invalid with other policies.
	Alloc []int `json:"alloc,omitempty"`
	// Warmup excludes each core's first N instructions from statistics.
	Warmup uint64 `json:"warmup,omitempty"`
	// TimeoutMS is a serving knob: the per-request deadline override in
	// milliseconds (0 = the server default). It bounds how long the
	// caller will wait, not what is simulated, so it is deliberately
	// excluded from Canonical()/Key(): the same simulation requested
	// with different deadlines shares one cache entry.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Normalize fills defaulted fields so that equivalent requests compare
// and hash identically.
func (r Request) Normalize() Request {
	if r.Budget == 0 {
		r.Budget = 5_000_000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Policy == "" {
		r.Policy = "NUcache"
	}
	if r.DeliWays == 0 {
		r.DeliWays = 6
	}
	return r
}

// deliWays maps the request encoding (-1 = none) to the config value.
func (r Request) deliWays() int {
	if r.DeliWays < 0 {
		return 0
	}
	return r.DeliWays
}

// Validate checks workload and policy names on a normalized request.
func (r Request) Validate() error {
	if _, err := r.ResolveMix(); err != nil {
		return err
	}
	if !knownPolicy(r.Policy) {
		return fmt.Errorf("sim: unknown policy %q", r.Policy)
	}
	if r.DeliWays < -1 {
		return fmt.Errorf("sim: deliways %d out of range", r.DeliWays)
	}
	if r.Prefetch < 0 {
		return fmt.Errorf("sim: negative prefetch degree")
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("sim: negative timeout_ms")
	}
	if len(r.Alloc) > 0 {
		if !strings.EqualFold(r.Policy, "Part") {
			return fmt.Errorf("sim: alloc is only valid with the Part policy")
		}
		mix, err := r.ResolveMix()
		if err != nil {
			return err
		}
		ways := cpu.DefaultConfig(mix.Cores()).LLC.Ways
		if len(r.Alloc) != mix.Cores() {
			return fmt.Errorf("sim: alloc has %d entries for %d cores", len(r.Alloc), mix.Cores())
		}
		total := 0
		for i, a := range r.Alloc {
			if a < 1 {
				return fmt.Errorf("sim: alloc grants core %d %d ways", i, a)
			}
			total += a
		}
		if total != ways {
			return fmt.Errorf("sim: alloc sums to %d ways, cache has %d", total, ways)
		}
	}
	return nil
}

// ResolveMix maps the request's workload fields to a concrete mix.
// Exactly one of Bench, Mix, Members must be set.
func (r Request) ResolveMix() (workload.Mix, error) {
	n := 0
	if r.Bench != "" {
		n++
	}
	if r.Mix != "" {
		n++
	}
	if len(r.Members) > 0 {
		n++
	}
	if n != 1 {
		return workload.Mix{}, fmt.Errorf("sim: specify exactly one of bench, mix, members")
	}
	switch {
	case r.Bench != "":
		if _, ok := workload.ByName(r.Bench); !ok {
			return workload.Mix{}, fmt.Errorf("sim: unknown benchmark %q", r.Bench)
		}
		return workload.Mix{Name: "single", Members: []string{r.Bench}}, nil
	case len(r.Members) > 0:
		for _, m := range r.Members {
			if _, ok := workload.ByName(m); !ok {
				return workload.Mix{}, fmt.Errorf("sim: unknown benchmark %q", m)
			}
		}
		return workload.Mix{Name: "custom", Members: r.Members}, nil
	default:
		for _, cores := range []int{2, 4, 8} {
			for _, m := range workload.MixesFor(cores) {
				if m.Name == r.Mix {
					return m, nil
				}
			}
		}
		return workload.Mix{}, fmt.Errorf("sim: unknown mix %q", r.Mix)
	}
}

// Canonical renders the normalized request as a stable string — the
// preimage of the content address. Every field that can change the
// simulation's outcome appears here; nothing else may.
func (r Request) Canonical() string {
	r = r.Normalize()
	fields := []string{
		"nucache-sim/v1",
		"bench=" + r.Bench,
		"mix=" + r.Mix,
		"members=" + strings.Join(r.Members, "+"),
		"policy=" + strings.ToUpper(r.Policy),
		fmt.Sprintf("budget=%d", r.Budget),
		fmt.Sprintf("seed=%d", r.Seed),
		fmt.Sprintf("deliways=%d", r.DeliWays),
		fmt.Sprintf("l2=%v", r.L2),
		fmt.Sprintf("dram=%v", r.DRAM),
		fmt.Sprintf("prefetch=%d", r.Prefetch),
		fmt.Sprintf("warmup=%d", r.Warmup),
	}
	// Appended conditionally so every pre-existing request keeps its
	// content address.
	if len(r.Alloc) > 0 {
		parts := make([]string, len(r.Alloc))
		for i, a := range r.Alloc {
			parts[i] = fmt.Sprintf("%d", a)
		}
		fields = append(fields, "alloc="+strings.Join(parts, "+"))
	}
	return strings.Join(fields, "|")
}

// Key is the request's content address: hex SHA-256 of Canonical().
func (r Request) Key() string {
	sum := sha256.Sum256([]byte(r.Canonical()))
	return hex.EncodeToString(sum[:])
}

// JobFor wraps a request as a schedulable, cacheable job. The request's
// TimeoutMS (if any) becomes the job deadline.
func JobFor(req Request) Job {
	req = req.Normalize()
	return Job{
		Key:     req.Key(),
		Label:   req.Canonical(),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		New:     func() any { return new(Result) },
		Run: func(ctx context.Context) (any, error) {
			return Execute(ctx, req)
		},
	}
}
