package sim

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"nucache/internal/fabric"
	"nucache/internal/workload"
)

// Server exposes the scheduler over HTTP. Handlers are stdlib-only and
// mounted by Handler(); cmd/nucache-serve wraps this in an http.Server
// with graceful shutdown.
//
// Failure contract: requests shed by the admission queue return
// 429 Too Many Requests with a Retry-After header; jobs killed by their
// deadline return 504 Gateway Timeout; invalid requests 400; everything
// else 500. Error bodies are {"error": ..., "kind": ...} with kind from
// the ErrKind taxonomy.
type Server struct {
	sched      *Scheduler
	log        *slog.Logger
	retryAfter time.Duration
	coord      *fabric.Coordinator
	readyInfo  func(map[string]any)
}

// ServerOption customizes a Server.
type ServerOption func(*Server)

// WithLogger sets the structured per-request logger (default
// slog.Default()).
func WithLogger(l *slog.Logger) ServerOption {
	return func(sv *Server) { sv.log = l }
}

// WithRetryAfter sets the base Retry-After hint returned with 429
// responses (default 1s). The wire value is jittered uniformly over
// [base, 2·base] in whole seconds so a shed worker pool spreads its
// retries instead of stampeding back in lockstep.
func WithRetryAfter(d time.Duration) ServerOption {
	return func(sv *Server) { sv.retryAfter = d }
}

// WithCoordinator embeds a fabric coordinator: its HTTP protocol is
// mounted under /fabric/v1/, sweep cells are offered to the worker pool
// (zero workers ⇒ every cell is claimed back locally, identical to an
// un-distributed server), and /readyz reports pool membership.
func WithCoordinator(co *fabric.Coordinator) ServerOption {
	return func(sv *Server) { sv.coord = co }
}

// WithReadyInfo lets the process hosting the server contribute fields
// to /readyz (journal state, worker role) without the sim package
// knowing about them.
func WithReadyInfo(fn func(map[string]any)) ServerOption {
	return func(sv *Server) { sv.readyInfo = fn }
}

// NewServer builds a server on top of a scheduler.
func NewServer(sched *Scheduler, opts ...ServerOption) *Server {
	sv := &Server{sched: sched, log: slog.Default(), retryAfter: time.Second}
	for _, o := range opts {
		o(sv)
	}
	return sv
}

// Handler returns the route table:
//
//	POST /v1/sim      run (or fetch) one simulation, JSON in/out
//	POST /v1/sweep    fan a mixes×policies sweep across the pool (NDJSON)
//	POST /v1/profile  compute (or fetch) a mix's MRC profile artifact
//	POST /v1/advise   answer an allocation what-if from the profile
//	GET  /v1/catalog  benchmarks, standard mixes, policies, endpoints
//	GET  /healthz     pure liveness (the process answers)
//	GET  /readyz      readiness: queue, cache-disk, fabric pool, host extras
//	GET  /debug/vars  expvar counters
//
// With a fabric coordinator attached (WithCoordinator), its protocol is
// mounted under POST /fabric/v1/{join,heartbeat,lease,result}.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", sv.handleSim)
	mux.HandleFunc("POST /v1/sweep", sv.handleSweep)
	mux.HandleFunc("POST /v1/profile", sv.handleProfile)
	mux.HandleFunc("POST /v1/advise", sv.handleAdvise)
	mux.HandleFunc("GET /v1/catalog", sv.handleCatalog)
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	mux.HandleFunc("GET /readyz", sv.handleReady)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if sv.coord != nil {
		mux.Handle("POST /fabric/v1/", sv.coord.Handler())
	}
	return mux
}

// SimResponse is the POST /v1/sim envelope. Result is deterministic and
// content-addressed by Key; Cached, Attempts and WallNS describe this
// particular serving of it.
type SimResponse struct {
	Key      string  `json:"key"`
	Cached   bool    `json:"cached"`
	Attempts int     `json:"attempts,omitempty"`
	WallNS   int64   `json:"wall_ns"`
	Result   *Result `json:"result"`
}

func (sv *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := sv.sched.Do(r.Context(), JobFor(req))
	sv.logJob(r, "sim", req, out)
	if out.Err != nil {
		sv.jobError(w, out.Err)
		return
	}
	writeJSON(w, http.StatusOK, SimResponse{
		Key:      req.Key(),
		Cached:   out.Cached,
		Attempts: out.Attempts,
		WallNS:   out.Wall.Nanoseconds(),
		Result:   out.Value.(*Result),
	})
}

// logJob emits one structured log line per job served.
func (sv *Server) logJob(r *http.Request, route string, req Request, out Outcome) {
	attrs := []any{
		"route", route,
		"remote", r.RemoteAddr,
		"key", req.Key(),
		"bench", req.Bench,
		"mix", req.Mix,
		"policy", req.Policy,
		"cached", out.Cached,
		"attempts", out.Attempts,
		"wall_ms", out.Wall.Milliseconds(),
	}
	if out.Err != nil {
		attrs = append(attrs, "error", out.Err.Error(), "kind", Classify(out.Err).String())
		sv.log.Warn("job failed", attrs...)
		return
	}
	sv.log.Info("job served", attrs...)
}

// jobError writes a failed outcome using the taxonomy's HTTP mapping.
func (sv *Server) jobError(w http.ResponseWriter, err error) {
	kind := Classify(err)
	status := http.StatusInternalServerError
	switch kind {
	case KindInvalid:
		status = http.StatusBadRequest
	case KindOverload:
		status = http.StatusTooManyRequests
		sv.setRetryAfter(w)
	case KindDeadline:
		status = http.StatusGatewayTimeout
	case KindCanceled:
		// The client went away; 499 (nginx convention) is recorded in
		// logs even though nobody reads the response.
		status = 499
	}
	writeJSON(w, status, map[string]string{
		"error": err.Error(),
		"kind":  kind.String(),
	})
}

func (sv *Server) setRetryAfter(w http.ResponseWriter) {
	base := int(sv.retryAfter.Round(time.Second) / time.Second)
	if base < 1 {
		base = 1
	}
	// Uniform over [base, 2·base]: a pool of shed clients that all obey
	// Retry-After verbatim re-arrives spread across a full base window
	// instead of as one synchronized wave.
	secs := base + rand.N(base+1)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// SweepRequest describes a fan-out: every listed mix under every listed
// policy. Mixes defaults to the standard list for Cores; Policies
// defaults to the paper's comparison lineup.
type SweepRequest struct {
	// Cores selects the standard mix list (2, 4 or 8) when Mixes is
	// empty.
	Cores int `json:"cores,omitempty"`
	// Mixes are standard mix names (e.g. "mix4-01").
	Mixes []string `json:"mixes,omitempty"`
	// Policies are policy names (default LRU, NUcache, UCP, PIPP, TADIP).
	Policies []string `json:"policies,omitempty"`
	// Budget, Seed, DeliWays, L2, DRAM, Prefetch apply to every job.
	Budget   uint64 `json:"budget,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	DeliWays int    `json:"deliways,omitempty"`
	L2       bool   `json:"l2,omitempty"`
	DRAM     bool   `json:"dram,omitempty"`
	Prefetch int    `json:"prefetch,omitempty"`
	// TimeoutMS overrides the per-job deadline for every job in the
	// sweep (0 = server default). Serving knob only; never part of the
	// result's content address.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// expand turns the sweep into concrete requests, mix-major.
func (sw SweepRequest) expand() ([]Request, error) {
	mixes := sw.Mixes
	if len(mixes) == 0 {
		if sw.Cores != 2 && sw.Cores != 4 && sw.Cores != 8 {
			return nil, fmt.Errorf("sim: sweep needs mixes, or cores in {2,4,8}")
		}
		for _, m := range workload.MixesFor(sw.Cores) {
			mixes = append(mixes, m.Name)
		}
	}
	policies := sw.Policies
	if len(policies) == 0 {
		policies = []string{"LRU", "NUcache", "UCP", "PIPP", "TADIP"}
	}
	var reqs []Request
	for _, m := range mixes {
		for _, p := range policies {
			req := Request{
				Mix: m, Policy: p,
				Budget: sw.Budget, Seed: sw.Seed, DeliWays: sw.DeliWays,
				L2: sw.L2, DRAM: sw.DRAM, Prefetch: sw.Prefetch,
				TimeoutMS: sw.TimeoutMS,
			}.Normalize()
			if err := req.Validate(); err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
		}
	}
	return reqs, nil
}

// SweepEvent is one NDJSON line of the sweep stream: a "result" per
// completed job (completion order), then a final "done" summary.
type SweepEvent struct {
	Type   string  `json:"type"` // "result" | "done"
	Index  int     `json:"index"`
	Mix    string  `json:"mix,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Key    string  `json:"key,omitempty"`
	Cached bool    `json:"cached,omitempty"`
	Error  string  `json:"error,omitempty"`
	Kind   string  `json:"kind,omitempty"` // error taxonomy kind, set with Error
	Result *Result `json:"result,omitempty"`
	// Summary fields (type "done").
	Total  int `json:"total,omitempty"`
	Failed int `json:"failed,omitempty"`
}

func (sv *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sw SweepRequest
	if err := decodeJSON(w, r, &sw); err != nil {
		return
	}
	reqs, err := sw.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Shed the whole sweep up front while headers can still say so;
	// jobs shed mid-stream surface as overload error events instead.
	if sv.sched.Saturated() {
		JobsShed.Add(int64(len(reqs)))
		sv.setRetryAfter(w)
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": ErrOverloaded.Error(),
			"kind":  KindOverload.String(),
		})
		return
	}
	// With a fabric pool attached, offer the sweep's uncached cells to
	// remote workers and let each job consult the coordinator before
	// computing locally. Without one (or with zero workers) the jobs
	// behave exactly as before.
	sv.offerSweep(reqs)
	jobs := make([]Job, len(reqs))
	for i, req := range reqs {
		jobs[i] = JobFor(req)
		if sv.coord != nil {
			jobs[i] = fabricJob(sv.coord, jobs[i])
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	failed := 0
	writable := true
	for io := range sv.sched.RunStream(r.Context(), jobs) {
		sv.logJob(r, "sweep", reqs[io.Index], io.Outcome)
		if io.Outcome.Err != nil {
			failed++
		}
		if !writable {
			// Client went away; keep draining so in-flight jobs complete
			// and warm the cache for the retry. (RunStream itself stops
			// once the request context is cancelled.)
			continue
		}
		req := reqs[io.Index]
		ev := SweepEvent{
			Type: "result", Index: io.Index,
			Mix: req.Mix, Policy: req.Policy,
			Key: req.Key(), Cached: io.Outcome.Cached,
		}
		if io.Outcome.Err != nil {
			ev.Error = io.Outcome.Err.Error()
			ev.Kind = Classify(io.Outcome.Err).String()
		} else {
			ev.Result = io.Outcome.Value.(*Result)
		}
		if enc.Encode(ev) != nil {
			writable = false
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if writable {
		_ = enc.Encode(SweepEvent{Type: "done", Total: len(jobs), Failed: failed})
	}
}

// Catalog is the GET /v1/catalog payload.
type Catalog struct {
	Benchmarks []CatalogBenchmark `json:"benchmarks"`
	Mixes      []CatalogMix       `json:"mixes"`
	Policies   []string           `json:"policies"`
	// Endpoints advertises the API surface (clients discover the
	// advisor endpoints here).
	Endpoints []string `json:"endpoints"`
}

type CatalogBenchmark struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
}

type CatalogMix struct {
	Name    string   `json:"name"`
	Cores   int      `json:"cores"`
	Members []string `json:"members"`
}

func (sv *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	cat := Catalog{
		Policies: Policies(),
		Endpoints: []string{
			"POST /v1/sim", "POST /v1/sweep", "POST /v1/profile",
			"POST /v1/advise", "GET /v1/catalog", "GET /healthz",
			"GET /readyz", "GET /debug/vars",
		},
	}
	for _, b := range workload.All() {
		cat.Benchmarks = append(cat.Benchmarks, CatalogBenchmark{
			Name: b.Name, Class: string(b.Class), Description: b.Description,
		})
	}
	for _, cores := range []int{2, 4, 8} {
		for _, m := range workload.MixesFor(cores) {
			cat.Mixes = append(cat.Mixes, CatalogMix{
				Name: m.Name, Cores: cores, Members: m.Members,
			})
		}
	}
	writeJSON(w, http.StatusOK, cat)
}

// handleHealth is pure liveness: the process is up and can answer. All
// degradation state — queue pressure, cache-disk health, fabric pool —
// lives on /readyz, so orchestrators restarting on failed liveness
// probes never kill a server that is merely degraded.
func (sv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": sv.sched.Workers(),
	})
}

// handleReady reports readiness: the queue, the cache disk tier, the
// fabric pool when a coordinator is embedded, and whatever the host
// process contributes (journal state, worker role). Status degrades to
// "degraded" — still HTTP 200; the server serves from memory — only
// when a configured capability has been lost.
func (sv *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	ready := map[string]any{
		"status":      "ok",
		"workers":     sv.sched.Workers(),
		"queue_depth": sv.sched.QueueLen(),
		"queue_cap":   sv.sched.QueueCap(),
	}
	if c := sv.sched.Cache(); c != nil && c.Persistent() {
		if c.DiskHealthy() {
			ready["cache_disk"] = "ok"
		} else {
			// Still serving (memory-only); surfaced so operators see the
			// degradation without grepping logs.
			ready["cache_disk"] = "degraded"
			ready["status"] = "degraded"
		}
	}
	if sv.coord != nil {
		ready["fabric"] = sv.coord.Stats()
	}
	if sv.readyInfo != nil {
		sv.readyInfo(ready)
	}
	writeJSON(w, http.StatusOK, ready)
}

// maxBodyBytes bounds request bodies; sweep specs are small.
const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("sim: bad request body: %w", err))
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
