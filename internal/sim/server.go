package sim

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"

	"nucache/internal/workload"
)

// Server exposes the scheduler over HTTP. Handlers are stdlib-only and
// mounted by Handler(); cmd/nucache-serve wraps this in an http.Server
// with graceful shutdown.
type Server struct {
	sched *Scheduler
}

// NewServer builds a server on top of a scheduler.
func NewServer(sched *Scheduler) *Server { return &Server{sched: sched} }

// Handler returns the route table:
//
//	POST /v1/sim      run (or fetch) one simulation, JSON in/out
//	POST /v1/sweep    fan a mixes×policies sweep across the pool (NDJSON)
//	GET  /v1/catalog  benchmarks, standard mixes, policies
//	GET  /healthz     liveness
//	GET  /debug/vars  expvar counters
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", sv.handleSim)
	mux.HandleFunc("POST /v1/sweep", sv.handleSweep)
	mux.HandleFunc("GET /v1/catalog", sv.handleCatalog)
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// SimResponse is the POST /v1/sim envelope. Result is deterministic and
// content-addressed by Key; Cached and WallNS describe this particular
// serving of it.
type SimResponse struct {
	Key    string  `json:"key"`
	Cached bool    `json:"cached"`
	WallNS int64   `json:"wall_ns"`
	Result *Result `json:"result"`
}

func (sv *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeJSON(w, r, &req); err != nil {
		return
	}
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	out := sv.sched.Do(r.Context(), JobFor(req))
	if out.Err != nil {
		httpError(w, http.StatusInternalServerError, out.Err)
		return
	}
	writeJSON(w, http.StatusOK, SimResponse{
		Key:    req.Key(),
		Cached: out.Cached,
		WallNS: out.Wall.Nanoseconds(),
		Result: out.Value.(*Result),
	})
}

// SweepRequest describes a fan-out: every listed mix under every listed
// policy. Mixes defaults to the standard list for Cores; Policies
// defaults to the paper's comparison lineup.
type SweepRequest struct {
	// Cores selects the standard mix list (2, 4 or 8) when Mixes is
	// empty.
	Cores int `json:"cores,omitempty"`
	// Mixes are standard mix names (e.g. "mix4-01").
	Mixes []string `json:"mixes,omitempty"`
	// Policies are policy names (default LRU, NUcache, UCP, PIPP, TADIP).
	Policies []string `json:"policies,omitempty"`
	// Budget, Seed, DeliWays, L2, DRAM, Prefetch apply to every job.
	Budget   uint64 `json:"budget,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	DeliWays int    `json:"deliways,omitempty"`
	L2       bool   `json:"l2,omitempty"`
	DRAM     bool   `json:"dram,omitempty"`
	Prefetch int    `json:"prefetch,omitempty"`
}

// expand turns the sweep into concrete requests, mix-major.
func (sw SweepRequest) expand() ([]Request, error) {
	mixes := sw.Mixes
	if len(mixes) == 0 {
		if sw.Cores != 2 && sw.Cores != 4 && sw.Cores != 8 {
			return nil, fmt.Errorf("sim: sweep needs mixes, or cores in {2,4,8}")
		}
		for _, m := range workload.MixesFor(sw.Cores) {
			mixes = append(mixes, m.Name)
		}
	}
	policies := sw.Policies
	if len(policies) == 0 {
		policies = []string{"LRU", "NUcache", "UCP", "PIPP", "TADIP"}
	}
	var reqs []Request
	for _, m := range mixes {
		for _, p := range policies {
			req := Request{
				Mix: m, Policy: p,
				Budget: sw.Budget, Seed: sw.Seed, DeliWays: sw.DeliWays,
				L2: sw.L2, DRAM: sw.DRAM, Prefetch: sw.Prefetch,
			}.Normalize()
			if err := req.Validate(); err != nil {
				return nil, err
			}
			reqs = append(reqs, req)
		}
	}
	return reqs, nil
}

// SweepEvent is one NDJSON line of the sweep stream: a "result" per
// completed job (completion order), then a final "done" summary.
type SweepEvent struct {
	Type   string  `json:"type"` // "result" | "done"
	Index  int     `json:"index"`
	Mix    string  `json:"mix,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Key    string  `json:"key,omitempty"`
	Cached bool    `json:"cached,omitempty"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
	// Summary fields (type "done").
	Total  int `json:"total,omitempty"`
	Failed int `json:"failed,omitempty"`
}

func (sv *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sw SweepRequest
	if err := decodeJSON(w, r, &sw); err != nil {
		return
	}
	reqs, err := sw.expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	jobs := make([]Job, len(reqs))
	for i, req := range reqs {
		jobs[i] = JobFor(req)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	failed := 0
	writable := true
	for io := range sv.sched.RunStream(r.Context(), jobs) {
		if io.Outcome.Err != nil {
			failed++
		}
		if !writable {
			// Client went away; keep draining so every job completes
			// and warms the cache for the retry.
			continue
		}
		req := reqs[io.Index]
		ev := SweepEvent{
			Type: "result", Index: io.Index,
			Mix: req.Mix, Policy: req.Policy,
			Key: req.Key(), Cached: io.Outcome.Cached,
		}
		if io.Outcome.Err != nil {
			ev.Error = io.Outcome.Err.Error()
		} else {
			ev.Result = io.Outcome.Value.(*Result)
		}
		if enc.Encode(ev) != nil {
			writable = false
			continue
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if writable {
		_ = enc.Encode(SweepEvent{Type: "done", Total: len(jobs), Failed: failed})
	}
}

// Catalog is the GET /v1/catalog payload.
type Catalog struct {
	Benchmarks []CatalogBenchmark `json:"benchmarks"`
	Mixes      []CatalogMix       `json:"mixes"`
	Policies   []string           `json:"policies"`
}

type CatalogBenchmark struct {
	Name        string `json:"name"`
	Class       string `json:"class"`
	Description string `json:"description"`
}

type CatalogMix struct {
	Name    string   `json:"name"`
	Cores   int      `json:"cores"`
	Members []string `json:"members"`
}

func (sv *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	cat := Catalog{Policies: Policies()}
	for _, b := range workload.All() {
		cat.Benchmarks = append(cat.Benchmarks, CatalogBenchmark{
			Name: b.Name, Class: string(b.Class), Description: b.Description,
		})
	}
	for _, cores := range []int{2, 4, 8} {
		for _, m := range workload.MixesFor(cores) {
			cat.Mixes = append(cat.Mixes, CatalogMix{
				Name: m.Name, Cores: cores, Members: m.Members,
			})
		}
	}
	writeJSON(w, http.StatusOK, cat)
}

func (sv *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": sv.sched.Workers(),
	})
}

// maxBodyBytes bounds request bodies; sweep specs are small.
const maxBodyBytes = 1 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("sim: bad request body: %w", err))
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
