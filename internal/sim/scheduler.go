package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Job is one unit of simulation work for the scheduler.
type Job struct {
	// Key is the result's content address. Empty disables caching and
	// in-flight deduplication for this job.
	Key string
	// Label names the job in errors (optional).
	Label string
	// New allocates the pointer a cached result is decoded into. It is
	// required for cacheable jobs and must match the dynamic type that
	// Run returns.
	New func() any
	// Run computes the result. The returned value must be
	// JSON-marshalable when Key is set.
	Run func(ctx context.Context) (any, error)
}

// Outcome is one job's result.
type Outcome struct {
	// Value is what Run returned, or what the cache decoded.
	Value any
	// Err is the job error (run failure, panic, or cancellation).
	Err error
	// Cached reports whether the result was served from the cache.
	Cached bool
	// Wall is the execution time (zero for cache hits).
	Wall time.Duration
}

// Scheduler is a bounded worker pool with a content-addressed result
// cache in front of it. At most `workers` jobs execute concurrently,
// across all RunAll/RunStream/Do calls sharing the scheduler; identical
// in-flight jobs are deduplicated so concurrent requests for the same
// simulation run it once.
type Scheduler struct {
	workers  int
	cache    *Cache
	sem      chan struct{}
	mu       sync.Mutex
	inflight map[string]chan struct{}
}

// NewScheduler builds a scheduler executing at most `workers` jobs at
// once (0 or negative = runtime.NumCPU()). cache may be nil to disable
// result caching.
func NewScheduler(workers int, cache *Cache) *Scheduler {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Scheduler{
		workers:  workers,
		cache:    cache,
		sem:      make(chan struct{}, workers),
		inflight: map[string]chan struct{}{},
	}
}

// Workers reports the concurrency bound.
func (s *Scheduler) Workers() int { return s.workers }

// Do runs one job through the cache and the pool, blocking until it
// completes (or ctx is cancelled while queued — a job that has started
// runs to completion).
func (s *Scheduler) Do(ctx context.Context, job Job) Outcome {
	JobsQueued.Add(1)
	cacheable := job.Key != "" && s.cache != nil && job.New != nil
	for {
		if cacheable {
			into := job.New()
			if s.cache.Get(job.Key, into) {
				CacheHits.Add(1)
				return Outcome{Value: into, Cached: true}
			}
		}
		if !cacheable {
			break
		}
		s.mu.Lock()
		ch, busy := s.inflight[job.Key]
		if !busy {
			s.inflight[job.Key] = make(chan struct{})
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		select {
		case <-ch:
			// The owner finished; loop to re-check the cache. If the
			// owner failed, the next iteration claims ownership.
		case <-ctx.Done():
			return Outcome{Err: ctx.Err()}
		}
	}
	if cacheable {
		CacheMisses.Add(1)
		defer func() {
			s.mu.Lock()
			close(s.inflight[job.Key])
			delete(s.inflight, job.Key)
			s.mu.Unlock()
		}()
	}

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return Outcome{Err: ctx.Err()}
	}
	defer func() { <-s.sem }()

	JobsRunning.Add(1)
	start := time.Now()
	v, err := runProtected(ctx, job)
	wall := time.Since(start)
	JobsRunning.Add(-1)
	WallNanos.Add(wall.Nanoseconds())
	if err != nil {
		JobsFailed.Add(1)
		return Outcome{Err: err, Wall: wall}
	}
	JobsDone.Add(1)
	if cacheable {
		// Best effort: a full disk or encode failure must not fail a
		// job whose simulation succeeded.
		_ = s.cache.Put(job.Key, v)
	}
	return Outcome{Value: v, Wall: wall}
}

// RunAll executes every job through the pool and returns outcomes in
// submission order regardless of completion order, so fan-outs are
// deterministic to consumers.
func (s *Scheduler) RunAll(ctx context.Context, jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = s.Do(ctx, jobs[i])
		}(i)
	}
	wg.Wait()
	return out
}

// IndexedOutcome pairs an outcome with its job's submission index.
type IndexedOutcome struct {
	Index   int
	Outcome Outcome
}

// RunStream executes every job and delivers outcomes on the returned
// channel as they complete (completion order). The channel closes after
// the last job.
func (s *Scheduler) RunStream(ctx context.Context, jobs []Job) <-chan IndexedOutcome {
	ch := make(chan IndexedOutcome)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch <- IndexedOutcome{Index: i, Outcome: s.Do(ctx, jobs[i])}
		}(i)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// runProtected invokes the job body, converting panics to errors so one
// bad simulation cannot take down a sweep or the serving process.
func runProtected(ctx context.Context, job Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			label := job.Label
			if label == "" {
				label = job.Key
			}
			err = fmt.Errorf("sim: job %s panicked: %v", label, r)
		}
	}()
	return job.Run(ctx)
}
