package sim

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nucache/internal/failpoint"
)

// Job is one unit of simulation work for the scheduler.
type Job struct {
	// Key is the result's content address. Empty disables caching and
	// in-flight deduplication for this job.
	Key string
	// Label names the job in errors (optional).
	Label string
	// Timeout bounds this job's execution (0 = the scheduler default).
	// A job past its deadline frees its worker slot and reports a
	// KindDeadline error; the abandoned run finishes in the background
	// and, when cacheable, still warms the cache for a later retry.
	Timeout time.Duration
	// New allocates the pointer a cached result is decoded into. It is
	// required for cacheable jobs and must match the dynamic type that
	// Run returns.
	New func() any
	// Run computes the result. The returned value must be
	// JSON-marshalable when Key is set.
	Run func(ctx context.Context) (any, error)
}

// Outcome is one job's result.
type Outcome struct {
	// Value is what Run returned, or what the cache decoded.
	Value any
	// Err is the job error (run failure, panic, deadline, shed load or
	// cancellation). Classify(Err) recovers the taxonomy kind.
	Err error
	// Cached reports whether the result was served from the cache.
	Cached bool
	// Attempts is how many times the body was started (0 for cache
	// hits and jobs shed before running).
	Attempts int
	// Wall is the execution time (zero for cache hits).
	Wall time.Duration
}

// RetryPolicy bounds re-execution of transiently failed jobs. Failures
// classified as deadline, panic, cancellation, invalid or overload are
// never retried (see ErrKind).
type RetryPolicy struct {
	// MaxAttempts is the total number of executions (1 or less = no
	// retries).
	MaxAttempts int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it. The actual sleep is jittered uniformly over
	// [Backoff/2, Backoff) of the doubled value to decorrelate
	// retrying callers.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay (0 = 10*Backoff).
	MaxBackoff time.Duration
}

// SchedulerConfig configures a scheduler beyond the worker count.
type SchedulerConfig struct {
	// Workers bounds concurrent job execution (0 = runtime.NumCPU()).
	Workers int
	// Cache is the content-addressed result cache (nil = disabled).
	Cache *Cache
	// QueueDepth bounds jobs waiting for a worker slot. When the queue
	// is full further jobs are shed immediately with a KindOverload
	// error instead of piling up goroutines (0 = unbounded, the
	// in-process/experiments default).
	QueueDepth int
	// DefaultTimeout is the per-job deadline when Job.Timeout is zero
	// (0 = none).
	DefaultTimeout time.Duration
	// Retry re-runs transiently failed jobs with jittered backoff.
	Retry RetryPolicy
}

// Scheduler is a bounded worker pool with a content-addressed result
// cache in front of it. At most `workers` jobs execute concurrently,
// across all RunAll/RunStream/Do calls sharing the scheduler; identical
// in-flight jobs are deduplicated so concurrent requests for the same
// simulation run it once. An optional admission queue sheds load once
// too many jobs are waiting, and per-job deadlines stop a runaway
// simulation from occupying a worker slot forever.
type Scheduler struct {
	workers        int
	cache          *Cache
	sem            chan struct{}
	queueCap       int
	queueLen       atomic.Int64
	defaultTimeout time.Duration
	retry          RetryPolicy
	mu             sync.Mutex
	inflight       map[string]chan struct{}
}

// NewScheduler builds a scheduler executing at most `workers` jobs at
// once (0 or negative = runtime.NumCPU()). cache may be nil to disable
// result caching. The queue is unbounded and jobs have no deadline —
// the historical in-process behavior; serving stacks should use
// NewSchedulerWith.
func NewScheduler(workers int, cache *Cache) *Scheduler {
	return NewSchedulerWith(SchedulerConfig{Workers: workers, Cache: cache})
}

// NewSchedulerWith builds a scheduler from a full configuration.
func NewSchedulerWith(cfg SchedulerConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	return &Scheduler{
		workers:        cfg.Workers,
		cache:          cfg.Cache,
		sem:            make(chan struct{}, cfg.Workers),
		queueCap:       cfg.QueueDepth,
		defaultTimeout: cfg.DefaultTimeout,
		retry:          cfg.Retry,
		inflight:       map[string]chan struct{}{},
	}
}

// Workers reports the concurrency bound.
func (s *Scheduler) Workers() int { return s.workers }

// TryBorrow acquires up to max worker tokens without blocking and
// returns how many it got (possibly zero). A running job that can use
// extra parallelism internally — a grid row stepping replay lanes on
// worker goroutines — borrows the idle slots queued jobs would
// otherwise take, so the box never runs more than Workers() lanes plus
// jobs at once. Borrowed tokens must be given back with Return; since
// the borrow never blocks and the borrower already holds a slot,
// borrowing cannot deadlock the pool — at worst it gets zero and the
// caller degrades to serial.
func (s *Scheduler) TryBorrow(max int) int {
	n := 0
	for n < max {
		select {
		case s.sem <- struct{}{}:
			n++
		default:
			return n
		}
	}
	return n
}

// Return gives back n tokens acquired by TryBorrow.
func (s *Scheduler) Return(n int) {
	for ; n > 0; n-- {
		<-s.sem
	}
}

// Cache returns the scheduler's result cache (nil when disabled).
func (s *Scheduler) Cache() *Cache { return s.cache }

// QueueCap reports the admission-queue bound (0 = unbounded).
func (s *Scheduler) QueueCap() int { return s.queueCap }

// QueueLen reports how many jobs are waiting for a worker slot.
func (s *Scheduler) QueueLen() int { return int(s.queueLen.Load()) }

// Saturated reports whether the admission queue is full right now, so
// front ends can shed whole requests before fanning them out.
func (s *Scheduler) Saturated() bool {
	return s.queueCap > 0 && int(s.queueLen.Load()) >= s.queueCap
}

// Do runs one job through the cache and the pool, blocking until it
// completes, is shed by the admission queue, exceeds its deadline, or
// ctx is cancelled while queued (a job that has started runs to
// completion in the background even if abandoned).
func (s *Scheduler) Do(ctx context.Context, job Job) Outcome {
	JobsQueued.Add(1)
	cacheable := job.Key != "" && s.cache != nil && job.New != nil
	// waited records that this call slept behind another in-flight owner
	// of the same key. If that owner failed and we re-claim ownership,
	// the logical request already recorded its cache miss — counting
	// another would overstate misses for a single key resolution.
	waited := false
	for cacheable {
		into := job.New()
		if s.cache.Get(job.Key, into) {
			CacheHits.Add(1)
			return Outcome{Value: into, Cached: true}
		}
		s.mu.Lock()
		ch, busy := s.inflight[job.Key]
		if !busy {
			s.inflight[job.Key] = make(chan struct{})
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		select {
		case <-ch:
			// The owner finished; loop to re-check the cache. If the
			// owner failed, the next iteration claims ownership.
			waited = true
		case <-ctx.Done():
			return Outcome{Err: ctx.Err()}
		}
	}
	if cacheable {
		if !waited {
			CacheMisses.Add(1)
		}
		defer func() {
			s.mu.Lock()
			close(s.inflight[job.Key])
			delete(s.inflight, job.Key)
			s.mu.Unlock()
		}()
	}

	attempts := s.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var out Outcome
	for attempt := 1; ; attempt++ {
		out = s.attempt(ctx, job, cacheable)
		out.Attempts = attempt
		if out.Err == nil || attempt >= attempts || !Retryable(out.Err) {
			break
		}
		JobsRetried.Add(1)
		if !sleepBackoff(ctx, s.retry, attempt) {
			out.Err = ctx.Err()
			break
		}
	}
	if out.Err != nil {
		JobsFailed.Add(1)
	} else {
		JobsDone.Add(1)
	}
	return out
}

// attempt acquires a worker slot (shedding if the admission queue is
// full) and executes the job once under its deadline.
func (s *Scheduler) attempt(ctx context.Context, job Job, cacheable bool) Outcome {
	// Fast path: a free worker slot bypasses the admission queue.
	acquired := false
	select {
	case s.sem <- struct{}{}:
		acquired = true
	default:
	}
	if !acquired {
		n := s.queueLen.Add(1)
		QueueDepth.Add(1)
		if s.queueCap > 0 && n > int64(s.queueCap) {
			s.queueLen.Add(-1)
			QueueDepth.Add(-1)
			JobsShed.Add(1)
			return Outcome{Err: fmt.Errorf("%w: job %s shed (queue depth %d)",
				ErrOverloaded, labelOf(job), s.queueCap)}
		}
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.queueLen.Add(-1)
			QueueDepth.Add(-1)
			return Outcome{Err: ctx.Err()}
		}
		s.queueLen.Add(-1)
		QueueDepth.Add(-1)
	}
	defer func() { <-s.sem }()
	// Acquiring a slot can race a cancellation (the select above has both
	// channels ready); without this check a cancelled fan-out would keep
	// dispatching jobs as slots free up instead of draining promptly.
	if err := ctx.Err(); err != nil {
		return Outcome{Err: err}
	}

	// A job that has started runs to completion even if the caller goes
	// away (cancellation reaches the body cooperatively through its
	// context); only the deadline abandons a run, because that is the
	// contract protecting worker slots from runaway simulations.
	timeout := job.Timeout
	if timeout <= 0 {
		timeout = s.defaultTimeout
	}
	runCtx := ctx
	var kill <-chan time.Time
	if timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		kill = timer.C
	}

	start := time.Now()
	done := make(chan Outcome, 1)
	go func() {
		JobsRunning.Add(1)
		v, err := runProtected(runCtx, job)
		wall := time.Since(start)
		JobsRunning.Add(-1)
		WallNanos.Add(wall.Nanoseconds())
		if err == nil && cacheable {
			// Best effort: a full disk or encode failure must not fail a
			// job whose simulation succeeded. Runs even after the caller
			// abandoned this attempt, so a deadline-killed simulation
			// still warms the cache for the client's retry.
			_ = s.cache.Put(job.Key, v)
		}
		done <- Outcome{Value: v, Err: err, Wall: wall}
	}()
	select {
	case out := <-done:
		return out
	case <-kill:
		// The worker slot is released on return; the abandoned run keeps
		// its own goroutine until the simulation finishes (and, when
		// cacheable, still warms the cache for a later retry).
		DeadlineKills.Add(1)
		return Outcome{
			Err: &JobError{Kind: KindDeadline, Err: fmt.Errorf(
				"sim: job %s exceeded deadline %s: %w",
				labelOf(job), timeout, context.DeadlineExceeded)},
			Wall: time.Since(start),
		}
	}
}

// sleepBackoff waits the jittered, exponentially grown delay before
// retry `attempt`+1, returning false if ctx was cancelled first.
func sleepBackoff(ctx context.Context, rp RetryPolicy, attempt int) bool {
	base := rp.Backoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxB := rp.MaxBackoff
	if maxB <= 0 {
		maxB = 10 * base
	}
	d := base << (attempt - 1)
	if d > maxB || d <= 0 { // <= 0 guards shift overflow
		d = maxB
	}
	// Full-half jitter: uniform over [d/2, d).
	d = d/2 + rand.N(d/2+1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// RunAll executes every job through the pool and returns outcomes in
// submission order regardless of completion order, so fan-outs are
// deterministic to consumers.
func (s *Scheduler) RunAll(ctx context.Context, jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = s.Do(ctx, jobs[i])
		}(i)
	}
	wg.Wait()
	return out
}

// IndexedOutcome pairs an outcome with its job's submission index.
type IndexedOutcome struct {
	Index   int
	Outcome Outcome
}

// RunStream executes every job and delivers outcomes on the returned
// channel as they complete (completion order). The channel closes after
// the last job, or early once ctx is cancelled — every internal
// goroutine exits then even if the consumer has stopped reading, so an
// abandoned stream (e.g. an HTTP client that disconnected mid-sweep)
// cannot leak. Jobs are fed through a bounded set of feeders (2x the
// worker count) rather than one goroutine per job, so a single large
// sweep adds bounded pressure to the admission queue.
func (s *Scheduler) RunStream(ctx context.Context, jobs []Job) <-chan IndexedOutcome {
	ch := make(chan IndexedOutcome)
	feeders := 2 * s.workers
	if feeders > len(jobs) {
		feeders = len(jobs)
	}
	if feeders < 1 {
		feeders = 1
	}
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out := s.Do(ctx, jobs[i])
				select {
				case ch <- IndexedOutcome{Index: i, Outcome: out}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// labelOf names a job in errors.
func labelOf(job Job) string {
	if job.Label != "" {
		return job.Label
	}
	if job.Key != "" {
		return job.Key
	}
	return "(unnamed)"
}

// runProtected invokes the job body, converting panics to errors so one
// bad simulation cannot take down a sweep or the serving process. The
// sim.sched.job failpoint sits at the dispatch boundary: the chaos
// suite kills or fails a sweep right as a grid cell starts executing.
func runProtected(ctx context.Context, job Job) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &JobError{Kind: KindPanic, Err: fmt.Errorf(
				"sim: job %s panicked: %v", labelOf(job), r)}
		}
	}()
	if err := failpoint.Inject("sim.sched.job"); err != nil {
		return nil, err
	}
	return job.Run(ctx)
}
