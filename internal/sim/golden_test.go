package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/sim -run TestGolden -update
//
// Regenerate ONLY when a PR deliberately changes simulation semantics
// (new policy behaviour, machine-model change, workload change). Pure
// optimization PRs must leave every golden file byte-identical — that is
// the suite's entire point (see EXPERIMENTS.md, "Golden-metrics suite").
var update = flag.Bool("update", false, "rewrite testdata/golden files")

// goldenBudget keeps the whole suite (all policies × workloads) around a
// few seconds while still running multiple NUcache epochs, so miss
// counts, IPC and chosen-PC sets are all meaningfully exercised.
const goldenBudget = 200_000

// goldenWorkloads is the pinned workload set. Single-core runs cover the
// per-bench behaviour; the mixes cover shared-cache interference where
// policy decisions (partitioning, retention) actually differ.
func goldenWorkloads() []Request {
	return []Request{
		{Bench: "ammp-like", Budget: goldenBudget},
		{Bench: "art-like", Budget: goldenBudget},
		{Mix: "mix2-01", Budget: goldenBudget},
		{Mix: "mix4-01", Budget: goldenBudget},
	}
}

// goldenName is the file stem for one workload request.
func goldenName(r Request) string {
	if r.Bench != "" {
		return "bench-" + r.Bench
	}
	return "mix-" + r.Mix
}

// TestGoldenMetrics runs every policy over the pinned workload set and
// requires the full structured Result — miss counts, IPC, eviction and
// writeback counts, NUcache chosen-PC sets — to match the recorded
// goldens byte-for-byte. Any semantic drift in the simulator, however
// small, fails this test; optimizations must be bit-exact.
func TestGoldenMetrics(t *testing.T) {
	for _, wl := range goldenWorkloads() {
		wl := wl
		t.Run(goldenName(wl), func(t *testing.T) {
			got := make(map[string]json.RawMessage, len(Policies()))
			for _, pol := range Policies() {
				req := wl
				req.Policy = pol
				res, err := Execute(context.Background(), req)
				if err != nil {
					t.Fatalf("%s/%s: %v", goldenName(wl), pol, err)
				}
				raw, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					t.Fatalf("marshal %s: %v", pol, err)
				}
				got[pol] = raw
			}
			path := filepath.Join("testdata", "golden", goldenName(wl)+".json")
			blob, err := json.MarshalIndent(got, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			blob = append(blob, '\n')
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d policies)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to record): %v", err)
			}
			if bytes.Equal(want, blob) {
				return
			}
			// Pinpoint the drift per policy for a readable failure.
			var wantMap map[string]json.RawMessage
			if err := json.Unmarshal(want, &wantMap); err != nil {
				t.Fatalf("corrupt golden %s: %v", path, err)
			}
			for _, pol := range Policies() {
				w, g := wantMap[pol], got[pol]
				if !bytes.Equal(normalizeJSON(t, w), normalizeJSON(t, g)) {
					t.Errorf("%s: %s metrics drifted from golden\n--- golden ---\n%s\n--- got ---\n%s",
						goldenName(wl), pol, firstDiffContext(w, g), firstDiffContext(g, w))
				}
			}
			if !t.Failed() {
				t.Errorf("%s: golden file formatting drifted (re-run with -update)", path)
			}
		})
	}
}

// normalizeJSON re-marshals raw JSON so formatting differences don't mask
// or fake a semantic diff.
func normalizeJSON(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// firstDiffContext returns a short window around the first byte where a
// differs from b, for failure messages.
func firstDiffContext(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 80
	if start < 0 {
		start = 0
	}
	end := i + 120
	if end > len(a) {
		end = len(a)
	}
	return fmt.Sprintf("...%s...", a[start:end])
}
