package sim

import (
	"context"
	"encoding/json"
	"fmt"

	"nucache/internal/fabric"
)

// CellKindSim is the fabric cell kind for single simulations: the spec
// is a canonical Request (internal/sim JSON), the payload a Result.
const CellKindSim = "sim/v1"

// SimExecutor returns the fabric executor for CellKindSim cells. The
// payload is json.Marshal of the deterministic Result, so every worker
// — and the local path — produces byte-identical bytes for a cell.
func SimExecutor() fabric.Executor {
	return func(ctx context.Context, spec json.RawMessage) (json.RawMessage, error) {
		var req Request
		if err := json.Unmarshal(spec, &req); err != nil {
			return nil, fmt.Errorf("sim: fabric cell spec: %w", err)
		}
		req = req.Normalize()
		if err := req.Validate(); err != nil {
			return nil, err
		}
		res, err := Execute(ctx, req)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}
}

// cellFor turns a request into its fabric cell. The spec is the
// normalized request itself; Key is the same content address the result
// cache uses, so a remote completion lands exactly where a local one
// would.
func cellFor(req Request) fabric.Cell {
	spec, _ := json.Marshal(req) // Request is a plain struct; cannot fail
	return fabric.Cell{Key: req.Key(), Kind: CellKindSim, Spec: spec}
}

// offerSweep makes a sweep's uncached cells available to the fabric
// pool. Cached cells are marked done so they are never leased.
func (sv *Server) offerSweep(reqs []Request) {
	if sv.coord == nil {
		return
	}
	cache := sv.sched.Cache()
	cells := make([]fabric.Cell, 0, len(reqs))
	var done []string
	for _, req := range reqs {
		if cache != nil && cache.Contains(req.Key()) {
			done = append(done, req.Key())
			continue
		}
		cells = append(cells, cellFor(req))
	}
	sv.coord.Offer(cells)
	for _, key := range done {
		sv.coord.MarkDone(key)
	}
}

// fabricJob wraps a job so its Run first consults the coordinator:
// a cell completed remotely decodes the verified payload; a cell leased
// to a live worker blocks until the lease resolves; anything else is
// claimed locally and runs the original Run. Zero workers means every
// AwaitOrClaim returns a local claim immediately — the wrapper is then
// a no-op and the sweep is behaviorally identical to an un-distributed
// one.
func fabricJob(co *fabric.Coordinator, job Job) Job {
	run := job.Run
	job.Run = func(ctx context.Context) (any, error) {
		payload, remote := co.AwaitOrClaim(ctx, job.Key)
		if !remote {
			return run(ctx)
		}
		v := job.New()
		if err := json.Unmarshal(payload, v); err != nil {
			// A verified payload that doesn't decode is a version skew
			// between coordinator and worker builds; recompute locally
			// rather than trust it.
			return run(ctx)
		}
		return v, nil
	}
	return job
}
