package sim

import (
	"context"
	"errors"

	"nucache/internal/fabric"
)

// ErrKind classifies job failures so the scheduler can decide what to
// retry and the HTTP layer can decide what status to return. The rules:
// only transient failures are retried; deadline kills, panics, caller
// cancellations, invalid requests and shed load are all permanent for
// the attempt that observed them.
type ErrKind int

const (
	// KindUnknown is the zero value (err == nil, or unclassifiable).
	KindUnknown ErrKind = iota
	// KindInvalid marks a malformed request: retrying cannot help.
	KindInvalid
	// KindCanceled marks a caller that went away (context.Canceled).
	KindCanceled
	// KindDeadline marks a job killed by its deadline. Simulations are
	// deterministic, so a re-run would time out again; never retried.
	KindDeadline
	// KindPanic marks a job whose body panicked. Deterministic, so a
	// retry would panic again; never retried.
	KindPanic
	// KindOverload marks load shed at the admission queue. The caller
	// (not the scheduler) decides whether and when to retry — the HTTP
	// layer translates this to 429 + Retry-After.
	KindOverload
	// KindTransient is every other failure: eligible for
	// retry-with-backoff when the scheduler has a retry policy.
	KindTransient
	// KindWorkerLost marks work lost to a dead, hung or quarantined
	// fabric worker. Always retryable: the cell is deterministic and the
	// retry simply recomputes it (remotely on a healthy worker, or
	// locally).
	KindWorkerLost
)

// String renders the kind for logs and HTTP error bodies.
func (k ErrKind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindCanceled:
		return "canceled"
	case KindDeadline:
		return "deadline"
	case KindPanic:
		return "panic"
	case KindOverload:
		return "overload"
	case KindTransient:
		return "transient"
	case KindWorkerLost:
		return "worker-lost"
	default:
		return "unknown"
	}
}

// ErrOverloaded is the sentinel under every shed-load error.
var ErrOverloaded = errors.New("sim: overloaded: admission queue full")

// ErrWorkerLost is the sentinel under every lost-remote-worker error.
// It aliases the fabric package's sentinel so errors cross the package
// boundary intact: errors.Is(err, sim.ErrWorkerLost) and
// errors.Is(err, fabric.ErrLost) agree.
var ErrWorkerLost = fabric.ErrLost

// JobError attaches an ErrKind to an underlying failure. It formats as
// the wrapped error so existing messages (e.g. panic conversions) are
// unchanged.
type JobError struct {
	Kind ErrKind
	Err  error
}

func (e *JobError) Error() string { return e.Err.Error() }
func (e *JobError) Unwrap() error { return e.Err }

// Classify maps an error to its ErrKind. Explicit *JobError kinds win;
// context errors are recognized wherever they sit in the chain; anything
// else is presumed transient (the conservative default for retry is
// bounded by the scheduler's attempt budget).
func Classify(err error) ErrKind {
	if err == nil {
		return KindUnknown
	}
	var je *JobError
	if errors.As(err, &je) {
		return je.Kind
	}
	switch {
	case errors.Is(err, ErrOverloaded):
		return KindOverload
	case errors.Is(err, ErrWorkerLost):
		return KindWorkerLost
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline
	case errors.Is(err, context.Canceled):
		return KindCanceled
	default:
		return KindTransient
	}
}

// Retryable reports whether a failed job may be re-attempted.
func Retryable(err error) bool {
	k := Classify(err)
	return k == KindTransient || k == KindWorkerLost
}

// invalid wraps a request-shaped error as permanently invalid.
func invalid(err error) error {
	if err == nil {
		return nil
	}
	return &JobError{Kind: KindInvalid, Err: err}
}
