package sim

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"nucache/internal/fabric"
)

// sweepNDJSON posts a sweep and returns its result lines, index-sorted
// (RunStream emits completion order, which legitimately varies).
func sweepNDJSON(t *testing.T, url, body string) []string {
	t.Helper()
	resp := postJSON(t, url+"/v1/sweep", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(lines)
	return lines
}

// TestDistributedSweepByteIdentical runs the same sweep through a plain
// server and a coordinator-backed server with two in-process fabric
// workers, and requires identical NDJSON (modulo completion order and
// the serving-only "cached" flag, which depends on who computed first).
func TestDistributedSweepByteIdentical(t *testing.T) {
	const body = `{"cores":2,"policies":["LRU","NUcache"],"budget":60000}`

	plain := httptest.NewServer(NewServer(NewScheduler(2, NewCache(64, ""))).Handler())
	t.Cleanup(plain.Close)
	want := sweepNDJSON(t, plain.URL, body)

	co := fabric.NewCoordinator(fabric.Config{
		LeaseTTL:  10 * time.Second,
		Heartbeat: 50 * time.Millisecond,
	})
	t.Cleanup(co.Close)
	sched := NewScheduler(2, NewCache(64, ""))
	dist := httptest.NewServer(NewServer(sched, WithCoordinator(co)).Handler())
	t.Cleanup(dist.Close)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < 2; i++ {
		w := fabric.NewWorker(dist.URL, fabric.WorkerConfig{
			Name:      "sim-test",
			Executors: map[string]fabric.Executor{CellKindSim: SimExecutor()},
		})
		go w.Run(ctx)
	}

	got := sweepNDJSON(t, dist.URL, body)
	if strings.Join(stripCached(got), "\n") != strings.Join(stripCached(want), "\n") {
		t.Fatalf("distributed sweep differs from single-node:\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// stripCached removes the serving-only `"cached":true` marker: whether a
// line was a cache hit depends on scheduling, not on the result.
func stripCached(lines []string) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = strings.ReplaceAll(l, `"cached":true,`, "")
	}
	return out
}

// TestZeroWorkerDistributedServerIdentical asserts a coordinator with
// no workers changes nothing: same NDJSON as a plain server, and no
// request ever blocks on the fabric.
func TestZeroWorkerDistributedServerIdentical(t *testing.T) {
	const body = `{"mixes":["mix2-01"],"policies":["LRU","NUcache"],"budget":60000}`

	plain := httptest.NewServer(NewServer(NewScheduler(2, NewCache(64, ""))).Handler())
	t.Cleanup(plain.Close)
	want := sweepNDJSON(t, plain.URL, body)

	co := fabric.NewCoordinator(fabric.Config{})
	t.Cleanup(co.Close)
	dist := httptest.NewServer(NewServer(NewScheduler(2, NewCache(64, "")), WithCoordinator(co)).Handler())
	t.Cleanup(dist.Close)
	got := sweepNDJSON(t, dist.URL, body)

	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("zero-worker distributed sweep differs:\n--- got ---\n%s\n--- want ---\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	if st := co.Stats(); st.RemoteDone != 0 {
		t.Fatalf("zero workers but %d remote completions", st.RemoteDone)
	}
}

func TestCacheShardingKeepsSemantics(t *testing.T) {
	// Large cache: sharded on multicore hosts, but Len and lookup
	// semantics must be unchanged.
	c := NewCache(4096, "")
	if got := len(c.shards); runtime.NumCPU() > 1 && got < 2 {
		t.Skipf("single shard on %d CPUs", runtime.NumCPU())
	}
	total := 0
	for _, s := range c.shards {
		total += s.cap
	}
	if total != 4096 {
		t.Fatalf("shard capacities sum to %d, want 4096", total)
	}

	type v struct{ N int }
	for i := 0; i < 1000; i++ {
		key := Request{Mix: "mix2-01", Policy: "LRU", Budget: uint64(i + 1)}.Key()
		if err := c.Put(key, v{N: i}); err != nil {
			t.Fatal(err)
		}
		if !c.Contains(key) {
			t.Fatalf("key %d missing right after Put", i)
		}
		var got v
		if !c.Get(key, &got) || got.N != i {
			t.Fatalf("key %d: got %+v", i, got)
		}
	}
	if c.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", c.Len())
	}
	if c.Contains("absent") {
		t.Fatal("Contains(absent) = true")
	}

	// Small caches stay single-shard so exact LRU order holds (the
	// TestCacheHitMissAndLRU contract).
	if small := NewCache(8, ""); len(small.shards) != 1 {
		t.Fatalf("cap-8 cache has %d shards, want 1", len(small.shards))
	}
}

func TestCacheShardedConcurrentAccess(t *testing.T) {
	c := NewCache(8192, "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			type v struct{ N int }
			for i := 0; i < 500; i++ {
				key := Request{Mix: "mix2-01", Policy: "LRU", Budget: uint64(g*1000 + i + 1)}.Key()
				_ = c.Put(key, v{N: i})
				var got v
				c.Get(key, &got)
				c.Contains(key)
				c.Len()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", c.Len())
	}
}
