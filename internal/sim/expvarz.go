package sim

import "expvar"

// Runtime counters, published once per process under /debug/vars. They
// aggregate across every scheduler in the process (the experiment grid
// and the HTTP service share one accounting surface).
var (
	// JobsQueued counts jobs submitted to any scheduler.
	JobsQueued = expvar.NewInt("nucache_jobs_queued")
	// JobsRunning is the number of jobs executing right now (gauge).
	JobsRunning = expvar.NewInt("nucache_jobs_running")
	// JobsDone counts jobs that completed successfully (cache hits
	// excluded — those never ran).
	JobsDone = expvar.NewInt("nucache_jobs_done")
	// JobsFailed counts jobs that returned an error or panicked.
	JobsFailed = expvar.NewInt("nucache_jobs_failed")
	// CacheHits / CacheMisses count content-addressed result lookups.
	CacheHits   = expvar.NewInt("nucache_cache_hits")
	CacheMisses = expvar.NewInt("nucache_cache_misses")
	// InstructionsRetired totals simulated instructions across all runs.
	InstructionsRetired = expvar.NewInt("nucache_sim_instructions")
	// WallNanos totals wall-clock nanoseconds spent executing jobs.
	WallNanos = expvar.NewInt("nucache_sim_wall_ns")
)
