package sim

import (
	"expvar"
	"sync"

	"nucache/internal/cpu"
)

var verifyErrMu sync.Mutex

// Runtime counters, published once per process under /debug/vars. They
// aggregate across every scheduler in the process (the experiment grid
// and the HTTP service share one accounting surface).
var (
	// JobsQueued counts jobs submitted to any scheduler.
	JobsQueued = expvar.NewInt("nucache_jobs_queued")
	// JobsRunning is the number of jobs executing right now (gauge). It
	// can briefly exceed the worker count: a deadline-killed job frees
	// its slot while the abandoned run drains in the background.
	JobsRunning = expvar.NewInt("nucache_jobs_running")
	// JobsDone counts jobs that completed successfully (cache hits
	// excluded — those never ran).
	JobsDone = expvar.NewInt("nucache_jobs_done")
	// JobsFailed counts jobs whose final attempt returned an error,
	// panicked, was shed, or exceeded its deadline.
	JobsFailed = expvar.NewInt("nucache_jobs_failed")
	// JobsShed counts jobs rejected because the admission queue was
	// full (KindOverload; HTTP 429 at the serving layer).
	JobsShed = expvar.NewInt("nucache_jobs_shed")
	// JobsRetried counts re-executions of transiently failed jobs.
	JobsRetried = expvar.NewInt("nucache_jobs_retried")
	// DeadlineKills counts jobs abandoned at their deadline.
	DeadlineKills = expvar.NewInt("nucache_deadline_kills")
	// QueueDepth is the number of jobs waiting for a worker slot (gauge).
	QueueDepth = expvar.NewInt("nucache_queue_depth")
	// CacheHits / CacheMisses count content-addressed result lookups;
	// in-flight-deduplicated waiters count one miss per key resolution.
	CacheHits   = expvar.NewInt("nucache_cache_hits")
	CacheMisses = expvar.NewInt("nucache_cache_misses")
	// CacheQuarantined counts corrupt disk-cache entries moved aside.
	CacheQuarantined = expvar.NewInt("nucache_cache_quarantined")
	// CacheChecksumFails counts disk-cache entries whose integrity
	// envelope failed verification (corrupt-but-parseable JSON); every
	// such entry is also quarantined.
	CacheChecksumFails = expvar.NewInt("nucache_cache_checksum_fails")
	// CacheDiskErrors counts disk-tier write failures (the first one
	// degrades that cache to memory-only mode).
	CacheDiskErrors = expvar.NewInt("nucache_cache_disk_errors")
	// InstructionsRetired totals simulated instructions across all runs.
	// It is incremented exactly once per computed simulation (by
	// RunMachine); cached results never count again.
	InstructionsRetired = expvar.NewInt("nucache_sim_instructions")
	// WallNanos totals wall-clock nanoseconds spent executing jobs.
	WallNanos = expvar.NewInt("nucache_sim_wall_ns")
	// TracesReplayed counts simulations served by the record/replay fast
	// path; TraceFallbacks counts attempts that fell back to direct
	// simulation (tape budget exhausted or untaggable stream).
	TracesReplayed = expvar.NewInt("nucache_traces_replayed")
	TraceFallbacks = expvar.NewInt("nucache_trace_fallbacks")
	// MultiReplayRuns counts one-pass policy-grid replays (one per
	// (mix, machine shape) row served by RunMachineGrid's multi path);
	// MultiReplayLanes totals the policy lanes those runs stepped — each
	// lane is one simulation that would otherwise have been a separate
	// single-policy replay. Lanes also count in TracesReplayed.
	MultiReplayRuns  = expvar.NewInt("nucache_multireplay_runs")
	MultiReplayLanes = expvar.NewInt("nucache_multireplay_lanes")
	// MultiReplayParallelRuns counts the subset of MultiReplayRuns that
	// stepped lanes on two or more worker goroutines (scheduler tokens
	// were available and GOMAXPROCS allowed it);
	// MultiReplayLaneWorkers totals the workers those runs used — the
	// row's own slot plus every borrowed token.
	MultiReplayParallelRuns = expvar.NewInt("nucache_multireplay_parallel_runs")
	MultiReplayLaneWorkers  = expvar.NewInt("nucache_multireplay_lane_workers")
	// MRCProfilesBuilt counts MRC profiling passes actually executed
	// (cache hits excluded); MRCProfileCacheHits counts advisor/profile
	// requests answered from an already-cached profile artifact.
	MRCProfilesBuilt    = expvar.NewInt("nucache_mrc_profiles_built")
	MRCProfileCacheHits = expvar.NewInt("nucache_mrc_profile_cache_hits")
	// AdviseRequests counts POST /v1/advise requests; AdviseVerifyMaxErr
	// tracks the worst relative IPC error a "verify": true request has
	// observed between the analytical model and full simulation (gauge,
	// monotone max).
	AdviseRequests     = expvar.NewInt("nucache_advise_requests")
	AdviseVerifyMaxErr = expvar.NewFloat("nucache_advise_verify_max_err")
)

// recordVerifyErr folds one verify delta into the AdviseVerifyMaxErr
// high-water mark. expvar.Float has no compare-and-swap, so serialize
// updates with a mutex (they are rare: one per verified advise).
func recordVerifyErr(relErr float64) {
	verifyErrMu.Lock()
	defer verifyErrMu.Unlock()
	if relErr > AdviseVerifyMaxErr.Value() {
		AdviseVerifyMaxErr.Set(relErr)
	}
}

// The tape-side counters live in internal/cpu (sim depends on cpu, not
// the reverse); publish them here under the same nucache_ namespace.
func init() {
	expvar.Publish("nucache_traces_recorded", expvar.Func(func() any { return cpu.TapesRecorded() }))
	expvar.Publish("nucache_trace_bytes", expvar.Func(func() any { return cpu.TapeBytes() }))
	expvar.Publish("nucache_tape_checksum_fails", expvar.Func(func() any { return cpu.TapeChecksumFails() }))
}
