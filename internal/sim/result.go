package sim

import (
	"fmt"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/workload"
)

// CoreStat is one core's outcome in JSON-friendly form.
type CoreStat struct {
	Core         int     `json:"core"`
	Benchmark    string  `json:"benchmark"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	L1MissRate   float64 `json:"l1_miss_rate"`
	LLCAccesses  uint64  `json:"llc_accesses"`
	LLCHits      uint64  `json:"llc_hits"`
	LLCMisses    uint64  `json:"llc_misses"`
	LLCMPKI      float64 `json:"llc_mpki"`
}

// LLCStat is the shared cache's aggregate activity.
type LLCStat struct {
	Accesses   uint64  `json:"accesses"`
	Hits       uint64  `json:"hits"`
	Misses     uint64  `json:"misses"`
	Evictions  uint64  `json:"evictions"`
	Writebacks uint64  `json:"writebacks"`
	HitRate    float64 `json:"hit_rate"`
}

// DRAMStat reports the optional bank/row-buffer memory model.
type DRAMStat struct {
	Accesses   uint64  `json:"accesses"`
	RowHitRate float64 `json:"row_hit_rate"`
}

// NUcacheStat exposes the policy internals the text harness prints.
type NUcacheStat struct {
	Epochs         int      `json:"epochs"`
	DeliHits       uint64   `json:"deli_hits"`
	DeliInsertions uint64   `json:"deli_insertions"`
	Demotions      uint64   `json:"demotions"`
	LastChosen     int      `json:"last_chosen"`
	LastCandidates int      `json:"last_candidates"`
	LastLifetime   uint64   `json:"last_lifetime"`
	LastBenefit    uint64   `json:"last_benefit"`
	ChosenPCs      []string `json:"chosen_pcs,omitempty"`
}

// Result is a completed simulation in structured form. It is fully
// deterministic — a function of the Request only — so it can live in the
// content-addressed cache. Timing of the simulation itself (wall clock)
// is deliberately excluded; the scheduler reports that per run.
type Result struct {
	// Mix and Members identify the workload as simulated.
	Mix     string   `json:"mix"`
	Members []string `json:"members"`
	// Policy is the LLC policy's self-reported name.
	Policy string `json:"policy"`
	// Cores is the machine width; LLCBytes the shared cache size.
	Cores    int `json:"cores"`
	LLCBytes int `json:"llc_bytes"`
	// Budget and Seed echo the request after normalization.
	Budget uint64 `json:"budget"`
	Seed   uint64 `json:"seed"`
	// Instructions is the total retired across cores (measured windows).
	Instructions uint64 `json:"instructions"`
	// PerCore holds one entry per core, in core order.
	PerCore []CoreStat `json:"per_core"`
	// LLC aggregates the shared cache.
	LLC LLCStat `json:"llc"`
	// DRAM is present only under the DRAM memory model.
	DRAM *DRAMStat `json:"dram,omitempty"`
	// NUcache is present only when the policy is NUcache.
	NUcache *NUcacheStat `json:"nucache,omitempty"`
	// PrefetchIssued counts next-line prefetches (0 when disabled).
	PrefetchIssued uint64 `json:"prefetch_issued,omitempty"`
}

// Collect builds a Result from a completed system run. It is shared by
// Execute and by cmd/nucache-sim's trace-replay path (which constructs
// the system itself); sys is either a *cpu.System or a *cpu.ReplaySystem
// — the two are bit-identical at this surface.
func Collect(mix workload.Mix, policy cache.Policy, cfg cpu.Config, budget, seed uint64, results []cpu.CoreResult, sys cpu.Machine) *Result {
	res := &Result{
		Mix:      mix.Name,
		Members:  mix.Members,
		Policy:   policy.Name(),
		Cores:    cfg.Cores,
		LLCBytes: cfg.LLC.SizeBytes,
		Budget:   budget,
		Seed:     seed,
	}
	for i, r := range results {
		res.Instructions += r.Instructions
		res.PerCore = append(res.PerCore, CoreStat{
			Core:         i,
			Benchmark:    mix.Members[i],
			Instructions: r.Instructions,
			Cycles:       r.Cycles,
			IPC:          r.IPC(),
			L1MissRate:   r.L1MissRate(),
			LLCAccesses:  r.LLCAccesses,
			LLCHits:      r.LLCHits,
			LLCMisses:    r.LLCMisses,
			LLCMPKI:      r.LLCMPKI(),
		})
	}
	llc := sys.LLC().Stats
	res.LLC = LLCStat{
		Accesses:   llc.Accesses,
		Hits:       llc.Hits,
		Misses:     llc.Misses,
		Evictions:  llc.Evictions,
		Writebacks: llc.Writebacks,
		HitRate:    llc.HitRate(),
	}
	if d := sys.DRAM(); d != nil {
		res.DRAM = &DRAMStat{Accesses: d.Accesses, RowHitRate: d.RowHitRate()}
	}
	res.PrefetchIssued = sys.Prefetches()
	if nu, ok := policy.(*core.NUcache); ok {
		st := &NUcacheStat{
			Epochs:         nu.Epochs,
			DeliHits:       nu.DeliHits,
			DeliInsertions: nu.DeliInsertions,
			Demotions:      nu.Demotions,
			LastChosen:     nu.LastReport.Chosen,
			LastCandidates: nu.LastReport.Candidates,
			LastLifetime:   nu.LastReport.Lifetime,
			LastBenefit:    nu.LastReport.Benefit,
		}
		for _, pc := range nu.ChosenPCs() {
			st.ChosenPCs = append(st.ChosenPCs, fmt.Sprintf("c%d:%#x", pc>>48, pc&(1<<48-1)))
		}
		res.NUcache = st
	}
	return res
}
