// Package sim turns the simulator into a service substrate: declarative,
// content-addressed simulation jobs; a bounded worker-pool scheduler that
// exploits every host core; an LRU + optional on-disk result cache keyed
// by the job hash, so identical simulations never run twice; and expvar
// counters for observability.
//
// The layering is deliberate: sim sits above the machine model (cpu,
// cache, core, policy, workload) and below both the experiment suite
// (internal/experiments fans its mix tables out through the scheduler)
// and the HTTP surface (cmd/nucache-serve mounts Server's handlers).
//
// A Request is the canonical unit of work — everything that determines a
// simulation's outcome (workload, policy, machine geometry knobs, budget,
// seed) and nothing that doesn't. Request.Key() hashes the normalized
// form, so two requests that mean the same simulation share one cache
// entry regardless of field spelling (e.g. an explicit default budget
// versus an omitted one).
package sim
