package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"nucache/internal/cpu"
	"nucache/internal/failpoint"
	"nucache/internal/mrc"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// ProfileRequest describes one MRC profiling pass: a workload and the
// policy-independent machine knobs. There is no policy field — that is
// the point: one profile answers what-ifs for every policy the model
// covers.
type ProfileRequest struct {
	Bench    string   `json:"bench,omitempty"`
	Mix      string   `json:"mix,omitempty"`
	Members  []string `json:"members,omitempty"`
	Budget   uint64   `json:"budget,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	Warmup   uint64   `json:"warmup,omitempty"`
	L2       bool     `json:"l2,omitempty"`
	DRAM     bool     `json:"dram,omitempty"`
	Prefetch int      `json:"prefetch,omitempty"`
	// TimeoutMS is the serving deadline override; excluded from the
	// content address like Request.TimeoutMS.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Normalize fills defaults (same as Request).
func (r ProfileRequest) Normalize() ProfileRequest {
	if r.Budget == 0 {
		r.Budget = 5_000_000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// simRequest maps the profile spec onto a simulation request (with a
// placeholder policy) so validation and mix resolution stay shared.
func (r ProfileRequest) simRequest() Request {
	return Request{
		Bench: r.Bench, Mix: r.Mix, Members: r.Members,
		Policy: "LRU", Budget: r.Budget, Seed: r.Seed, Warmup: r.Warmup,
		L2: r.L2, DRAM: r.DRAM, Prefetch: r.Prefetch, TimeoutMS: r.TimeoutMS,
	}
}

// Validate checks a normalized profile request.
func (r ProfileRequest) Validate() error {
	return r.simRequest().Validate()
}

// ResolveMix maps the workload fields to a concrete mix.
func (r ProfileRequest) ResolveMix() (workload.Mix, error) {
	return r.simRequest().ResolveMix()
}

// Canonical is the profile artifact's content-address preimage.
func (r ProfileRequest) Canonical() string {
	r = r.Normalize()
	return strings.Join([]string{
		"nucache-profile/v1",
		"bench=" + r.Bench,
		"mix=" + r.Mix,
		"members=" + strings.Join(r.Members, "+"),
		fmt.Sprintf("budget=%d", r.Budget),
		fmt.Sprintf("seed=%d", r.Seed),
		fmt.Sprintf("l2=%v", r.L2),
		fmt.Sprintf("dram=%v", r.DRAM),
		fmt.Sprintf("prefetch=%d", r.Prefetch),
		fmt.Sprintf("warmup=%d", r.Warmup),
	}, "|")
}

// Key is the hex SHA-256 of Canonical().
func (r ProfileRequest) Key() string {
	sum := sha256.Sum256([]byte(r.Canonical()))
	return hex.EncodeToString(sum[:])
}

// ExecuteProfile runs the profiling pass: acquire (or record) each
// member's tape and walk it through the MRC profiler. The result is a
// content-addressed artifact that transits the same cache/journal
// machinery as simulation results.
func ExecuteProfile(ctx context.Context, req ProfileRequest) (*mrc.Profile, error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mix, err := req.ResolveMix()
	if err != nil {
		return nil, err
	}
	// The failpoint makes profile builds killable/faultable grid cells,
	// exercised by the chaos suite like any simulation job.
	if err := failpoint.Inject("mrc.profile.build"); err != nil {
		return nil, err
	}
	cfg := machineConfig(req.simRequest(), mix.Cores())
	tapes := make([]*cpu.Tape, len(mix.Members))
	for i, name := range mix.Members {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, invalid(fmt.Errorf("sim: unknown benchmark %q", name))
		}
		s := req.Seed + uint64(i)*mixSeedStride
		id := fmt.Sprintf("%s@%d", name, s)
		t, err := cpu.AcquireTape(id, cfg, func() trace.Stream { return b.Stream(s) })
		if err != nil {
			return nil, fmt.Errorf("sim: profile needs tape %s: %w", id, err)
		}
		tapes[i] = t
	}
	p, err := mrc.BuildFromTapes(cfg, mix.Name, mix.Members, req.Seed, tapes)
	if err != nil {
		return nil, err
	}
	MRCProfilesBuilt.Add(1)
	return p, nil
}

// ProfileJobFor wraps a profile request as a schedulable, cacheable job.
func ProfileJobFor(req ProfileRequest) Job {
	req = req.Normalize()
	return Job{
		Key:     req.Key(),
		Label:   req.Canonical(),
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		New:     func() any { return new(mrc.Profile) },
		Run: func(ctx context.Context) (any, error) {
			return ExecuteProfile(ctx, req)
		},
	}
}
