package sim

import (
	"strings"
	"testing"
)

// FuzzRequestKey fuzzes the request canonicalization that the
// content-addressed result cache is built on. The invariants:
//
//  1. Key is deterministic and normalization-stable: an equivalent
//     request (defaults filled vs not, policy case) must hash to the
//     SAME SHA-256 key, or the cache silently re-simulates.
//  2. Distinct canonical strings must give distinct keys (a collision
//     would serve one experiment's numbers for another's request).
//  3. Normalize is idempotent.
func FuzzRequestKey(f *testing.F) {
	f.Add("ammp-like", "", "", "NUcache", uint64(0), uint64(0), 0, false, false, 0, uint64(0))
	f.Add("", "mix4-01", "", "lru", uint64(1_000_000), uint64(7), -1, true, true, 2, uint64(1000))
	f.Add("", "", "art-like,swim-like", "UCP", uint64(5_000_000), uint64(1), 8, false, true, 0, uint64(0))
	f.Add("", "", "", "", uint64(0), uint64(0), 0, false, false, 0, uint64(0))

	f.Fuzz(func(t *testing.T, bench, mix, members, pol string,
		budget, seed uint64, deliWays int, l2, dram bool, prefetch int, warmup uint64) {
		req := Request{
			Bench: bench, Mix: mix, Policy: pol,
			Budget: budget, Seed: seed, DeliWays: deliWays,
			L2: l2, DRAM: dram, Prefetch: prefetch, Warmup: warmup,
		}
		if members != "" {
			req.Members = strings.Split(members, ",")
		}

		norm := req.Normalize()
		if norm.Normalize().Canonical() != norm.Canonical() {
			t.Fatalf("Normalize not idempotent: %q vs %q",
				norm.Normalize().Canonical(), norm.Canonical())
		}
		if req.Key() != norm.Key() {
			t.Fatalf("key not normalization-stable: raw %s vs normalized %s (canonical %q)",
				req.Key(), norm.Key(), req.Canonical())
		}
		if req.Key() != req.Key() {
			t.Fatal("key not deterministic")
		}

		// Policy name case must not change the address.
		flipped := req
		flipped.Policy = strings.ToLower(pol)
		if flipped.Policy == req.Policy {
			flipped.Policy = strings.ToUpper(pol)
		}
		if flipped.Key() != req.Key() {
			t.Fatalf("policy case changed key: %q vs %q", flipped.Policy, req.Policy)
		}

		// Any semantic field change must move the canonical string, and
		// with it the key.
		for _, mut := range []Request{
			func() Request { r := req; r.Seed = seed + 1; return r }(),
			func() Request { r := req; r.Budget = budget + 1; return r }(),
			func() Request { r := req; r.Warmup = warmup + 1; return r }(),
			func() Request { r := req; r.L2 = !l2; return r }(),
			func() Request { r := req; r.DRAM = !dram; return r }(),
			func() Request { r := req; r.Prefetch = prefetch + 1; return r }(),
		} {
			same := mut.Canonical() == req.Canonical()
			if same != (mut.Key() == req.Key()) {
				t.Fatalf("key/canonical disagreement:\n%q -> %s\n%q -> %s",
					req.Canonical(), req.Key(), mut.Canonical(), mut.Key())
			}
			// Normalization maps 0 to a default, so mutations that cross
			// the default are allowed to collide canonically; otherwise
			// the canonical must move.
			if same && mut.Normalize().Canonical() == req.Normalize().Canonical() {
				continue
			}
			if same {
				t.Fatalf("mutation did not move canonical: %q", req.Canonical())
			}
		}

		if len(req.Key()) != 64 {
			t.Fatalf("key %q is not hex SHA-256", req.Key())
		}
		if !strings.HasPrefix(req.Canonical(), "nucache-sim/v1|") {
			t.Fatalf("canonical missing version prefix: %q", req.Canonical())
		}
	})
}
