package sim

import (
	"fmt"
	"sync/atomic"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/failpoint"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// The record/replay fast path: every (mix, seed) is simulated under
// many LLC policies, but the synthetic generator and private L1/L2 are
// policy-independent. RunMachine records each core's filtered front end
// once (process-wide memo in internal/cpu) and replays only the shared
// LLC per policy — bit-identical to direct simulation, several times
// faster at grid scale. See EXPERIMENTS.md ("Record/replay cache").

// replayOff is the process-wide kill switch (SetReplayDisabled); the
// noReplay argument of RunMachine disables replay per call site.
var replayOff atomic.Bool

// SetReplayDisabled turns the record/replay fast path off (or back on)
// process-wide. With replay disabled every simulation runs the private
// hierarchy directly — useful for A/B debugging, since replay results
// are defined to be bit-identical.
func SetReplayDisabled(v bool) { replayOff.Store(v) }

// ReplayDisabled reports the process-wide toggle.
func ReplayDisabled() bool { return replayOff.Load() }

// mixSeedStride matches workload.Mix.Streams: position i of a mix runs
// its generator at seed + i*stride. Tapes are keyed by the derived seed,
// so a benchmark running alone (position 0) shares its tape with every
// mix that leads with it.
const mixSeedStride = 0x9e3779b97f4a7c15

// RunMachine runs one simulation of mix on cfg under a policy built by
// newPol, replaying recorded front ends when possible and falling back
// to direct simulation otherwise (replay disabled, tape budget
// exhausted, or an untaggable stream). It returns the per-core results,
// the machine for result collection, and the policy instance actually
// used — on fallback after a failed replay attempt a fresh policy is
// built, because the abandoned replay has already mutated the first.
//
// RunMachine also owns retired-instruction accounting: it adds to
// InstructionsRetired exactly once per simulation it computes. Callers
// must not count again (and cached results are never re-counted).
func RunMachine(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, noReplay bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy) {
	return runMachine(cfg, newPol, mix, seed, noReplay, false)
}

// RunMachineOneShot is RunMachine for simulations that will replay their
// tapes exactly once (alone-IPC denominators): recording a fresh tape
// costs more than the single direct simulation it would replace, so this
// variant replays only when every member's tape was already recorded by
// some other run (a mix leading with the same benchmark) and simulates
// directly otherwise — never recording new tapes.
func RunMachineOneShot(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, noReplay bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy) {
	return runMachine(cfg, newPol, mix, seed, noReplay, true)
}

func runMachine(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, noReplay, cachedOnly bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy) {
	if !noReplay && !replayOff.Load() {
		if results, m, pol, ok := tryReplay(cfg, newPol, mix, seed, cachedOnly); ok {
			countRetired(results)
			return results, m, pol
		}
	}
	pol := newPol()
	sys := cpu.NewSystem(cfg, pol, mix.Streams(seed))
	results := sys.Run()
	countRetired(results)
	return results, sys, pol
}

func tryReplay(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, cachedOnly bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy, bool) {
	if len(mix.Members) != cfg.Cores {
		return nil, nil, nil, false // direct path panics with the real error
	}
	tapes := make([]*cpu.Tape, len(mix.Members))
	for i, name := range mix.Members {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, nil, nil, false // direct path reports the error
		}
		s := seed + uint64(i)*mixSeedStride
		id := fmt.Sprintf("%s@%d", name, s)
		if cachedOnly {
			t := cpu.LookupTape(id, cfg)
			if t == nil {
				return nil, nil, nil, false // one-shot: direct beats record+replay-once
			}
			tapes[i] = t
			continue
		}
		t, err := cpu.AcquireTape(id, cfg,
			func() trace.Stream { return b.Stream(s) })
		if err != nil {
			TraceFallbacks.Add(1)
			return nil, nil, nil, false
		}
		tapes[i] = t
	}
	// The cpu.replay.run failpoint fails (or kills) a simulation at the
	// moment it commits to the replay path; an error here exercises the
	// same fall-back-to-direct-simulation edge a dead tape would.
	if err := failpoint.Inject("cpu.replay.run"); err != nil {
		TraceFallbacks.Add(1)
		return nil, nil, nil, false
	}
	pol := newPol()
	rs := cpu.NewReplaySystem(cfg, pol, tapes)
	results, err := rs.Run()
	if err != nil {
		TraceFallbacks.Add(1)
		return nil, nil, nil, false
	}
	TracesReplayed.Add(1)
	return results, rs, pol, true
}

func countRetired(results []cpu.CoreResult) {
	var n uint64
	for _, r := range results {
		n += r.Instructions
	}
	InstructionsRetired.Add(int64(n))
}
