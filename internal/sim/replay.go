package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/failpoint"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// The record/replay fast path: every (mix, seed) is simulated under
// many LLC policies, but the synthetic generator and private L1/L2 are
// policy-independent. RunMachine records each core's filtered front end
// once (process-wide memo in internal/cpu) and replays only the shared
// LLC per policy — bit-identical to direct simulation, several times
// faster at grid scale. See EXPERIMENTS.md ("Record/replay cache").

// replayOff is the process-wide kill switch (SetReplayDisabled); the
// noReplay argument of RunMachine disables replay per call site.
var replayOff atomic.Bool

// SetReplayDisabled turns the record/replay fast path off (or back on)
// process-wide. With replay disabled every simulation runs the private
// hierarchy directly — useful for A/B debugging, since replay results
// are defined to be bit-identical.
func SetReplayDisabled(v bool) { replayOff.Store(v) }

// ReplayDisabled reports the process-wide toggle.
func ReplayDisabled() bool { return replayOff.Load() }

// multiOff is the process-wide kill switch for the one-pass multi-policy
// grid path only (-nomultireplay); single-policy replay stays on.
var multiOff atomic.Bool

// SetMultiReplayDisabled turns the one-pass policy-grid path
// (RunMachineGrid's multi lane walk) off or back on process-wide.
// Grids then run one single-policy replay per lane — bit-identical by
// construction, so this is the A/B escape hatch for the multi engine.
func SetMultiReplayDisabled(v bool) { multiOff.Store(v) }

// MultiReplayDisabled reports the process-wide toggle.
func MultiReplayDisabled() bool { return multiOff.Load() }

// laneOff is the process-wide kill switch for parallel lane stepping
// within the one-pass grid path (-laneparallel=false); the one-pass
// walk itself stays on, stepping lanes serially.
var laneOff atomic.Bool

// SetLaneParallelDisabled turns parallel lane stepping off (or back
// on) process-wide. Grids then step lanes serially round-robin —
// byte-identical by construction, so this is the A/B escape hatch for
// the parallel executor, mirroring -nomultireplay one level down.
func SetLaneParallelDisabled(v bool) { laneOff.Store(v) }

// LaneParallelDisabled reports the process-wide toggle.
func LaneParallelDisabled() bool { return laneOff.Load() }

// LaneBudget grants temporary extra parallelism to a one-pass grid
// row: TryBorrow acquires up to max extra worker tokens without
// blocking (returning how many it got, possibly zero) and Return gives
// them back. *Scheduler implements it over its worker semaphore; a nil
// budget means no extra workers are ever available and grids step
// lanes serially.
type LaneBudget interface {
	TryBorrow(max int) int
	Return(n int)
}

// mixSeedStride matches workload.Mix.Streams: position i of a mix runs
// its generator at seed + i*stride. Tapes are keyed by the derived seed,
// so a benchmark running alone (position 0) shares its tape with every
// mix that leads with it.
const mixSeedStride = 0x9e3779b97f4a7c15

// RunMachine runs one simulation of mix on cfg under a policy built by
// newPol, replaying recorded front ends when possible and falling back
// to direct simulation otherwise (replay disabled, tape budget
// exhausted, or an untaggable stream). It returns the per-core results,
// the machine for result collection, and the policy instance actually
// used — on fallback after a failed replay attempt a fresh policy is
// built, because the abandoned replay has already mutated the first.
//
// RunMachine also owns retired-instruction accounting: it adds to
// InstructionsRetired exactly once per simulation it computes. Callers
// must not count again (and cached results are never re-counted).
func RunMachine(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, noReplay bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy) {
	return runMachine(cfg, newPol, mix, seed, noReplay, false)
}

// RunMachineOneShot is RunMachine for simulations that will replay their
// tapes exactly once (alone-IPC denominators): recording a fresh tape
// costs more than the single direct simulation it would replace, so this
// variant replays only when every member's tape was already recorded by
// some other run (a mix leading with the same benchmark) and simulates
// directly otherwise — never recording new tapes.
func RunMachineOneShot(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, noReplay bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy) {
	return runMachine(cfg, newPol, mix, seed, noReplay, true)
}

func runMachine(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, noReplay, cachedOnly bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy) {
	if !noReplay && !replayOff.Load() {
		if results, m, pol, ok := tryReplay(cfg, newPol, mix, seed, cachedOnly); ok {
			countRetired(results)
			return results, m, pol
		}
	}
	pol := newPol()
	sys := cpu.NewSystem(cfg, pol, mix.Streams(seed))
	results := sys.Run()
	countRetired(results)
	return results, sys, pol
}

// acquireMixTapes resolves (and unless cachedOnly, records on demand)
// one tape per mix member. A false return means the caller should fall
// back to direct simulation; acquisition failures count TraceFallbacks
// (name misses and shape mismatches don't — the direct path reports
// those errors).
func acquireMixTapes(cfg cpu.Config, mix workload.Mix, seed uint64, cachedOnly bool) ([]*cpu.Tape, bool) {
	if len(mix.Members) != cfg.Cores {
		return nil, false // direct path panics with the real error
	}
	tapes := make([]*cpu.Tape, len(mix.Members))
	for i, name := range mix.Members {
		b, ok := workload.ByName(name)
		if !ok {
			return nil, false // direct path reports the error
		}
		s := seed + uint64(i)*mixSeedStride
		id := fmt.Sprintf("%s@%d", name, s)
		if cachedOnly {
			t := cpu.LookupTape(id, cfg)
			if t == nil {
				return nil, false // one-shot: direct beats record+replay-once
			}
			tapes[i] = t
			continue
		}
		t, err := cpu.AcquireTape(id, cfg,
			func() trace.Stream { return b.Stream(s) })
		if err != nil {
			TraceFallbacks.Add(1)
			return nil, false
		}
		tapes[i] = t
	}
	return tapes, true
}

func tryReplay(cfg cpu.Config, newPol func() cache.Policy, mix workload.Mix, seed uint64, cachedOnly bool) ([]cpu.CoreResult, cpu.Machine, cache.Policy, bool) {
	tapes, ok := acquireMixTapes(cfg, mix, seed, cachedOnly)
	if !ok {
		return nil, nil, nil, false
	}
	// The cpu.replay.run failpoint fails (or kills) a simulation at the
	// moment it commits to the replay path; an error here exercises the
	// same fall-back-to-direct-simulation edge a dead tape would.
	if err := failpoint.Inject("cpu.replay.run"); err != nil {
		TraceFallbacks.Add(1)
		return nil, nil, nil, false
	}
	pol := newPol()
	rs := cpu.NewReplaySystem(cfg, pol, tapes)
	results, err := rs.Run()
	if err != nil {
		TraceFallbacks.Add(1)
		return nil, nil, nil, false
	}
	TracesReplayed.Add(1)
	return results, rs, pol, true
}

// RunMachineGrid runs one simulation of mix on cfg per policy lane — a
// whole policy-grid row in one call. Lane i uses a policy built by
// newPols[i]; a nil builder skips that lane (its results/machine/policy
// come back nil), which is how callers carve already-cached cells out
// of a row. When replay is available it steps every live lane through a
// single tape walk (cpu.MultiReplaySystem — each filtered event decoded
// once for all policies); otherwise each live lane independently takes
// the same replay-or-direct path RunMachine would. Either way every
// lane's results are bit-identical to a standalone RunMachine call, and
// retired-instruction accounting is per computed lane, exactly as if
// the lanes had been separate RunMachine calls.
//
// The one-pass walk is skipped (per-lane fallback, still bit-identical)
// when noMulti or SetMultiReplayDisabled, when replay as a whole is off,
// when fewer than two lanes are live, or when tapes can't be acquired.
//
// lanes is the optional worker budget for parallel lane stepping: when
// non-nil (and SetLaneParallelDisabled is off), the multi walk borrows
// idle scheduler tokens — capped at GOMAXPROCS-1 so a grid row never
// oversubscribes the box — and steps lanes on that many extra worker
// goroutines, returning the tokens when the row finishes. With a nil
// budget, no free tokens, or a single spare CPU, it degrades to the
// serial round-robin; results are byte-identical either way.
func RunMachineGrid(cfg cpu.Config, newPols []func() cache.Policy, mix workload.Mix, seed uint64, noReplay, noMulti bool, lanes LaneBudget) ([][]cpu.CoreResult, []cpu.Machine, []cache.Policy) {
	results := make([][]cpu.CoreResult, len(newPols))
	machines := make([]cpu.Machine, len(newPols))
	pols := make([]cache.Policy, len(newPols))
	live := 0
	for _, np := range newPols {
		if np != nil {
			live++
		}
	}
	if live > 1 && !noReplay && !replayOff.Load() && !multiOff.Load() {
		if tryMultiReplay(cfg, newPols, mix, seed, results, machines, pols, lanes) {
			return results, machines, pols
		}
	}
	for i, np := range newPols {
		if np == nil {
			continue
		}
		results[i], machines[i], pols[i] = runMachine(cfg, np, mix, seed, noReplay, false)
	}
	return results, machines, pols
}

// tryMultiReplay fills the grid outputs via one multi-policy tape walk.
// A false return means nothing was filled and the caller should run
// lanes individually.
func tryMultiReplay(cfg cpu.Config, newPols []func() cache.Policy, mix workload.Mix, seed uint64, results [][]cpu.CoreResult, machines []cpu.Machine, pols []cache.Policy, lanes LaneBudget) bool {
	tapes, ok := acquireMixTapes(cfg, mix, seed, false)
	if !ok {
		return false
	}
	// The cpu.multireplay.run failpoint fails (or kills) the grid at the
	// moment it commits to the one-pass path, once per live lane so a
	// kill lands mid-grid regardless of which lane ordinal is armed; an
	// error degrades to per-lane replay, the same edge a dead tape would
	// exercise.
	for _, np := range newPols {
		if np == nil {
			continue
		}
		if err := failpoint.Inject("cpu.multireplay.run"); err != nil {
			TraceFallbacks.Add(1)
			return false
		}
	}
	lanePols := make([]cache.Policy, 0, len(newPols))
	laneIdx := make([]int, 0, len(newPols))
	for i, np := range newPols {
		if np == nil {
			continue
		}
		lanePols = append(lanePols, np())
		laneIdx = append(laneIdx, i)
	}
	ms := cpu.NewMultiReplaySystem(cfg, lanePols, tapes)
	// The row's own worker slot steps lanes; extra workers come from
	// borrowed scheduler tokens, bounded by the spare CPUs (GOMAXPROCS-1:
	// the row's slot is already using one) and by the lanes that could
	// run concurrently. Tokens are held only for the duration of the walk.
	workers := 1
	if lanes != nil && !laneOff.Load() {
		want := len(lanePols) - 1
		if spare := runtime.GOMAXPROCS(0) - 1; want > spare {
			want = spare
		}
		if want > 0 {
			borrowed := lanes.TryBorrow(want)
			workers += borrowed
			defer lanes.Return(borrowed)
		}
	}
	laneRes, err := ms.RunParallel(workers)
	if err != nil {
		TraceFallbacks.Add(1)
		return false
	}
	MultiReplayRuns.Add(1)
	MultiReplayLanes.Add(int64(len(lanePols)))
	if workers > 1 {
		MultiReplayParallelRuns.Add(1)
		MultiReplayLaneWorkers.Add(int64(workers))
	}
	TracesReplayed.Add(int64(len(lanePols)))
	for li, i := range laneIdx {
		results[i] = laneRes[li]
		machines[i] = ms.Lane(li)
		pols[i] = lanePols[li]
		countRetired(laneRes[li])
	}
	return true
}

func countRetired(results []cpu.CoreResult) {
	var n uint64
	for _, r := range results {
		n += r.Instructions
	}
	InstructionsRetired.Add(int64(n))
}
