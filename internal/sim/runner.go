package sim

import (
	"context"
	"fmt"
	"strings"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/memory"
	"nucache/internal/policy"
)

// Execute runs one simulation synchronously and returns its structured
// result. Cancellation is honored before the run starts; an in-flight
// simulation runs to completion (the machine model has no preemption
// points, and runs at experiment budgets finish in well under a second).
func Execute(ctx context.Context, req Request) (*Result, error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		// Validation failures are permanently invalid: never retried,
		// HTTP 400 at the serving layer.
		return nil, invalid(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mix, err := req.ResolveMix()
	if err != nil {
		return nil, err
	}
	cfg := machineConfig(req, mix.Cores())
	if _, err := buildRequestPolicy(req, cfg); err != nil {
		return nil, err
	}
	newPol := func() cache.Policy {
		// Cannot fail: the same arguments were validated above.
		p, _ := buildRequestPolicy(req, cfg)
		return p
	}
	// RunMachine replays the recorded front end when it can, falls back
	// to direct simulation when it can't, and counts retired
	// instructions either way.
	results, m, pol := RunMachine(cfg, newPol, mix, req.Seed, false)
	return Collect(mix, pol, cfg, req.Budget, req.Seed, results, m), nil
}

// machineConfig maps a normalized request's machine knobs onto the CPU
// configuration — shared by the simulation and MRC-profiling paths so
// both describe the same machine.
func machineConfig(req Request, cores int) cpu.Config {
	cfg := cpu.DefaultConfig(cores)
	cfg.InstrBudget = req.Budget
	cfg.PrefetchDegree = req.Prefetch
	cfg.WarmupInstr = req.Warmup
	if req.L2 {
		cfg.L2 = cache.Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64}
		cfg.L2Latency = 6
	}
	if req.DRAM {
		d := memory.DefaultConfig()
		cfg.DRAM = &d
	}
	return cfg
}

// buildRequestPolicy builds the request's policy, honoring an explicit
// static-partition allocation when one is present.
func buildRequestPolicy(req Request, cfg cpu.Config) (cache.Policy, error) {
	if len(req.Alloc) > 0 && strings.EqualFold(req.Policy, "Part") {
		return policy.NewStaticPart(req.Alloc), nil
	}
	return BuildPolicy(req.Policy, cfg.Cores, cfg.LLC.Ways, req.deliWays())
}

// policyNames is the catalog of LLC policies the service can build, in
// display order.
var policyNames = []string{
	"LRU", "NUcache", "UCP", "PIPP", "TADIP", "DIP", "DRRIP", "SRRIP",
	"NRU", "SHiP", "Hawkeye", "SLRU", "Random", "Part",
}

// Policies lists the policy names accepted by Request.Policy.
func Policies() []string {
	out := make([]string, len(policyNames))
	copy(out, policyNames)
	return out
}

func knownPolicy(name string) bool {
	for _, p := range policyNames {
		if strings.EqualFold(p, name) {
			return true
		}
	}
	return false
}

// BuildPolicy constructs a shared-LLC policy by name for a machine with
// the given core count and associativity. deliWays applies to NUcache
// only. Stochastic policies use a fixed seed so results stay
// content-addressable.
func BuildPolicy(name string, cores, ways, deliWays int) (cache.Policy, error) {
	switch strings.ToUpper(name) {
	case "LRU":
		return policy.NewLRU(), nil
	case "NUCACHE":
		cfg := core.DefaultConfig(ways)
		cfg.DeliWays = deliWays
		return core.New(cfg)
	case "UCP":
		return policy.NewUCP(cores, ways), nil
	case "PIPP":
		return policy.NewPIPP(cores, ways, 12345), nil
	case "TADIP":
		return policy.NewTADIP(cores, 12345), nil
	case "DIP":
		return policy.NewDIP(12345), nil
	case "DRRIP":
		return policy.NewDRRIP(12345), nil
	case "SRRIP":
		return policy.NewSRRIP(), nil
	case "NRU":
		return policy.NewNRU(), nil
	case "SHIP":
		return policy.NewSHiP(), nil
	case "HAWKEYE":
		return policy.NewHawkeye(ways), nil
	case "SLRU":
		return policy.NewSLRU(ways / 2), nil
	case "RANDOM":
		return policy.NewRandom(12345), nil
	case "PART":
		return policy.NewStaticPart(policy.EvenSplit(cores, ways)), nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %q", name)
	}
}
