package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(NewScheduler(4, NewCache(64, ""))).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServerSimRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	body := `{"mix":"mix2-01","policy":"NUcache","budget":100000}`

	resp := postJSON(t, ts.URL+"/v1/sim", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var first SimResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request served from cache")
	}
	if first.Result == nil || first.Result.Cores != 2 || len(first.Result.PerCore) != 2 {
		t.Fatalf("result: %+v", first.Result)
	}
	want := Request{Mix: "mix2-01", Policy: "NUcache", Budget: 100_000}.Key()
	if first.Key != want {
		t.Fatalf("key %s, want %s", first.Key, want)
	}

	// The identical request must be a cache hit with an identical result,
	// and the hit must be visible in /debug/vars.
	hitsBefore := CacheHits.Value()
	resp2 := postJSON(t, ts.URL+"/v1/sim", body)
	defer resp2.Body.Close()
	var second SimResponse
	if err := json.NewDecoder(resp2.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeated request not served from cache")
	}
	a, _ := json.Marshal(first.Result)
	b, _ := json.Marshal(second.Result)
	if !bytes.Equal(a, b) {
		t.Fatalf("cached result differs:\n%s\n%s", a, b)
	}

	vars := struct {
		Hits int64 `json:"nucache_cache_hits"`
	}{}
	dv, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Body.Close()
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Hits <= hitsBefore {
		t.Fatalf("expvar cache hits %d not past %d", vars.Hits, hitsBefore)
	}
}

func TestServerSimRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t)
	for _, body := range []string{
		`{"mix":"mix9-99"}`,                    // unknown mix
		`{"bench":"art-like","mix":"mix2-01"}`, // two workloads
		`{"policy":"NUcache"}`,                 // no workload
		`{"mix":"mix2-01","bogus":true}`,       // unknown field
		`not json`,
	} {
		resp := postJSON(t, ts.URL+"/v1/sim", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d", body, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/sim")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sim: %d", resp.StatusCode)
	}
}

func TestServerSweepStreams(t *testing.T) {
	ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/sweep",
		`{"mixes":["mix2-01","mix2-02"],"policies":["LRU","NUcache"],"budget":60000}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var results, done int
	seen := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "result":
			results++
			if ev.Error != "" || ev.Result == nil {
				t.Fatalf("job failed: %+v", ev)
			}
			if seen[ev.Index] {
				t.Fatalf("index %d delivered twice", ev.Index)
			}
			seen[ev.Index] = true
		case "done":
			done++
			if ev.Total != 4 || ev.Failed != 0 {
				t.Fatalf("summary %+v", ev)
			}
		default:
			t.Fatalf("unknown event %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if results != 4 || done != 1 {
		t.Fatalf("%d results, %d done lines", results, done)
	}
}

func TestServerCatalogAndHealth(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cat Catalog
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Benchmarks) == 0 || len(cat.Mixes) == 0 || len(cat.Policies) == 0 {
		t.Fatalf("sparse catalog: %d benches, %d mixes, %d policies",
			len(cat.Benchmarks), len(cat.Mixes), len(cat.Policies))
	}

	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Body.Close()
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(h.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Workers != 4 {
		t.Fatalf("health %+v", health)
	}
}
