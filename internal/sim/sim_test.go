package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRequestKeyDeterminism(t *testing.T) {
	a := Request{Mix: "mix4-01", Policy: "NUcache", Budget: 1_000_000, Seed: 7}
	b := Request{Mix: "mix4-01", Policy: "NUcache", Budget: 1_000_000, Seed: 7}
	if a.Key() != b.Key() {
		t.Fatalf("identical requests hash differently: %s vs %s", a.Key(), b.Key())
	}
	if len(a.Key()) != 64 {
		t.Fatalf("key %q is not hex sha256", a.Key())
	}
	c := b
	c.Seed = 8
	if a.Key() == c.Key() {
		t.Fatal("different seed, same key")
	}
	d := b
	d.Policy = "LRU"
	if b.Key() == d.Key() {
		t.Fatal("different policy, same key")
	}
}

func TestRequestKeyNormalization(t *testing.T) {
	// Explicit defaults and omitted fields mean the same simulation and
	// must share one cache entry.
	implicit := Request{Bench: "art-like"}
	explicit := Request{Bench: "art-like", Policy: "NUcache", Budget: 5_000_000, Seed: 1, DeliWays: 6}
	if implicit.Key() != explicit.Key() {
		t.Fatalf("normalization broken:\n%s\n%s", implicit.Canonical(), explicit.Canonical())
	}
	none := Request{Bench: "art-like", DeliWays: -1}
	if none.Key() == implicit.Key() {
		t.Fatal("deliways=-1 (none) must differ from default")
	}
}

func TestRequestValidate(t *testing.T) {
	for _, bad := range []Request{
		{},                                      // no workload
		{Bench: "art-like", Mix: "mix4-01"},     // two workloads
		{Bench: "no-such-benchmark"},            // unknown bench
		{Mix: "mix9-99"},                        // unknown mix
		{Members: []string{"art-like", "nope"}}, // unknown member
		{Bench: "art-like", Policy: "FancyLFU"}, // unknown policy
	} {
		if err := bad.Normalize().Validate(); err == nil {
			t.Fatalf("request %+v validated", bad)
		}
	}
	good := Request{Mix: "mix2-01", Policy: "ucp"} // case-insensitive policy
	if err := good.Normalize().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	c := NewCache(2, "")
	type v struct{ N int }
	var got v
	if c.Get("a", &got) {
		t.Fatal("hit on empty cache")
	}
	for i, k := range []string{"a", "b"} {
		if err := c.Put(k, v{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Get("a", &got) || got.N != 0 {
		t.Fatalf("miss or wrong value for a: %+v", got)
	}
	// "a" is now MRU; inserting "c" must evict "b".
	if err := c.Put("c", v{N: 2}); err != nil {
		t.Fatal(err)
	}
	if c.Get("b", &got) {
		t.Fatal("LRU entry b survived past capacity")
	}
	if !c.Get("a", &got) || !c.Get("c", &got) {
		t.Fatal("resident entries missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCacheDiskTier(t *testing.T) {
	dir := t.TempDir()
	type v struct{ S string }
	c1 := NewCache(4, dir)
	key := Request{Bench: "art-like"}.Key()
	if err := c1.Put(key, v{S: "hello"}); err != nil {
		t.Fatal(err)
	}
	// Also a non-hex key, which must be hashed into a safe filename.
	if err := c1.Put("mixmetrics/v1|policy=LRU", v{S: "raw"}); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same dir sees both (restart survival).
	c2 := NewCache(4, dir)
	var got v
	if !c2.Get(key, &got) || got.S != "hello" {
		t.Fatalf("disk miss: %+v", got)
	}
	if !c2.Get("mixmetrics/v1|policy=LRU", &got) || got.S != "raw" {
		t.Fatalf("disk miss on raw key: %+v", got)
	}
}

func TestSchedulerResultOrdering(t *testing.T) {
	s := NewScheduler(8, nil)
	const n = 64
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Run: func(context.Context) (any, error) {
			// Earlier jobs sleep longer so completion order inverts
			// submission order; results must still come back in order.
			time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
			return i, nil
		}}
	}
	outs := s.RunAll(context.Background(), jobs)
	if len(outs) != n {
		t.Fatalf("%d outcomes", len(outs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Value.(int) != i {
			t.Fatalf("slot %d holds %v", i, o.Value)
		}
	}
}

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers = 3
	s := NewScheduler(workers, nil)
	var running, peak atomic.Int64
	jobs := make([]Job, 24)
	for i := range jobs {
		jobs[i] = Job{Run: func(context.Context) (any, error) {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return nil, nil
		}}
	}
	s.RunAll(context.Background(), jobs)
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d > %d workers", p, workers)
	}
}

func TestSchedulerPanicRecovery(t *testing.T) {
	s := NewScheduler(2, nil)
	outs := s.RunAll(context.Background(), []Job{
		{Label: "boom", Run: func(context.Context) (any, error) { panic("kaboom") }},
		{Run: func(context.Context) (any, error) { return "ok", nil }},
	})
	if outs[0].Err == nil || outs[0].Err.Error() != "sim: job boom panicked: kaboom" {
		t.Fatalf("panic not converted: %v", outs[0].Err)
	}
	if outs[1].Err != nil || outs[1].Value != "ok" {
		t.Fatalf("sibling job poisoned: %+v", outs[1])
	}
}

func TestSchedulerCancellation(t *testing.T) {
	s := NewScheduler(1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	started := make(chan struct{})
	blocker := make(chan Outcome, 1)
	go func() {
		blocker <- s.Do(ctx, Job{Run: func(context.Context) (any, error) {
			close(started)
			<-release
			return nil, nil
		}})
	}()
	// Once the blocker holds the single worker slot, a second job can
	// only wait on the semaphore — where cancellation must reach it.
	<-started
	queued := make(chan Outcome, 1)
	go func() {
		queued <- s.Do(ctx, Job{Run: func(context.Context) (any, error) {
			return nil, nil
		}})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if o := <-queued; !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("queued job outcome: %+v", o)
	}
	close(release)
	if o := <-blocker; o.Err != nil {
		t.Fatalf("started job must finish: %v", o.Err)
	}
}

func TestSchedulerCacheAndDedup(t *testing.T) {
	s := NewScheduler(4, NewCache(16, ""))
	var runs atomic.Int64
	type payload struct{ N int }
	mk := func() Job {
		return Job{
			Key: "same-key",
			New: func() any { return new(payload) },
			Run: func(context.Context) (any, error) {
				runs.Add(1)
				time.Sleep(2 * time.Millisecond)
				return &payload{N: 42}, nil
			},
		}
	}
	// Concurrent identical jobs: in-flight dedup runs the body once and
	// records exactly one miss for the single logical key resolution.
	missesBefore := CacheMisses.Value()
	outs := s.RunAll(context.Background(), []Job{mk(), mk(), mk(), mk()})
	for i, o := range outs {
		if o.Err != nil || o.Value.(*payload).N != 42 {
			t.Fatalf("job %d: %+v", i, o)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("body ran %d times under dedup", got)
	}
	if got := CacheMisses.Value() - missesBefore; got != 1 {
		t.Fatalf("dedup recorded %d misses for one key resolution, want 1", got)
	}
	// A later identical submission hits the cache without running.
	hitsBefore := CacheHits.Value()
	o := s.Do(context.Background(), mk())
	if !o.Cached || o.Value.(*payload).N != 42 {
		t.Fatalf("expected cache hit: %+v", o)
	}
	if CacheHits.Value() <= hitsBefore {
		t.Fatal("cache-hit counter did not advance")
	}
	if runs.Load() != 1 {
		t.Fatal("cached job re-ran")
	}
}

func TestSchedulerErrorsNotCached(t *testing.T) {
	s := NewScheduler(2, NewCache(16, ""))
	var runs atomic.Int64
	fail := Job{
		Key: "flaky",
		New: func() any { return new(int) },
		Run: func(context.Context) (any, error) {
			if runs.Add(1) == 1 {
				return nil, fmt.Errorf("transient")
			}
			n := 9
			return &n, nil
		},
	}
	if o := s.Do(context.Background(), fail); o.Err == nil {
		t.Fatal("first attempt should fail")
	}
	o := s.Do(context.Background(), fail)
	if o.Err != nil || *o.Value.(*int) != 9 {
		t.Fatalf("retry after failure: %+v", o)
	}
}

func TestExecuteSmallRun(t *testing.T) {
	res, err := Execute(context.Background(), Request{
		Members: []string{"art-like", "swim-like"},
		Policy:  "NUcache",
		Budget:  100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 2 || len(res.PerCore) != 2 {
		t.Fatalf("cores: %+v", res)
	}
	if res.NUcache == nil {
		t.Fatal("NUcache internals missing")
	}
	if res.Instructions == 0 || res.LLC.Accesses == 0 {
		t.Fatalf("empty run: %+v", res)
	}
	for i, c := range res.PerCore {
		if c.Core != i || c.IPC <= 0 || c.Instructions < 100_000 {
			t.Fatalf("core %d stat %+v", i, c)
		}
	}
	// Determinism: the same request reproduces the same result.
	res2, err := Execute(context.Background(), Request{
		Members: []string{"art-like", "swim-like"},
		Policy:  "NUcache",
		Budget:  100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LLC != res2.LLC || res.Instructions != res2.Instructions {
		t.Fatalf("nondeterministic: %+v vs %+v", res.LLC, res2.LLC)
	}
	// LRU must not report NUcache internals.
	lru, err := Execute(context.Background(), Request{Bench: "art-like", Policy: "LRU", Budget: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if lru.NUcache != nil {
		t.Fatal("LRU result carries NUcache stats")
	}
}
