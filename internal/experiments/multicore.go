package experiments

import (
	"fmt"

	"nucache/internal/metrics"
	"nucache/internal/stats"
	"nucache/internal/workload"
)

// MulticoreResult holds the data behind the E6/E7/E8 figures: weighted
// speedup of every policy on every mix, normalized to the LRU baseline.
type MulticoreResult struct {
	// Cores is the machine width.
	Cores int
	// Policies is the column order (baseline first).
	Policies []string
	// Mixes are the row labels.
	Mixes []workload.Mix
	// WS[mixIdx][policyName] is the raw weighted speedup.
	WS []map[string]MixMetrics
	// GeomeanNorm[policyName] is the geometric-mean WS improvement over
	// the baseline across mixes (1.096 = +9.6%).
	GeomeanNorm map[string]float64
}

// MulticoreComparison runs experiment E6 (cores=2), E7 (cores=4) or
// E8 (cores=8): every standard mix under every standard policy. The
// (mix, policy) grid fans out across the scheduler's worker pool (see
// Options.Parallel); the assembled table is identical to a sequential
// run.
func MulticoreComparison(cores int, o Options) *MulticoreResult {
	o = o.withDefaults()
	specs := StandardPolicies()
	res := &MulticoreResult{Cores: cores, GeomeanNorm: map[string]float64{}}
	for _, s := range specs {
		res.Policies = append(res.Policies, s.Name)
	}
	res.Mixes = o.mixes(cores)
	grid := o.mixMetricsGrid(res.Mixes, specs)
	for i := range res.Mixes {
		row := map[string]MixMetrics{}
		for j, s := range specs {
			row[s.Name] = grid[i][j]
		}
		res.WS = append(res.WS, row)
	}
	base := res.Policies[0]
	for _, p := range res.Policies {
		ratios := make([]float64, 0, len(res.WS))
		for _, row := range res.WS {
			if b := row[base].WS; b > 0 {
				ratios = append(ratios, row[p].WS/b)
			}
		}
		res.GeomeanNorm[p] = stats.GeoMean(ratios)
	}
	return res
}

// Table renders the weighted-speedup figure as text.
func (r *MulticoreResult) Table() *metrics.Table {
	headers := append([]string{"mix"}, r.Policies...)
	t := metrics.NewTable(
		fmt.Sprintf("E%d: %d-core weighted speedup (normalized to %s)",
			expIDForCores(r.Cores), r.Cores, r.Policies[0]),
		headers...)
	base := r.Policies[0]
	for i, m := range r.Mixes {
		row := []string{m.Name}
		b := r.WS[i][base].WS
		for _, p := range r.Policies {
			if p == base {
				row = append(row, metrics.F3(b))
			} else if b > 0 {
				row = append(row, metrics.Pct(r.WS[i][p].WS/b))
			} else {
				row = append(row, "n/a")
			}
		}
		t.AddRow(row...)
	}
	gm := []string{"geomean"}
	for _, p := range r.Policies {
		if p == base {
			gm = append(gm, "1.000x")
		} else {
			gm = append(gm, metrics.Pct(r.GeomeanNorm[p]))
		}
	}
	t.AddRow(gm...)
	return t
}

func expIDForCores(cores int) int {
	switch cores {
	case 2:
		return 6
	case 4:
		return 7
	default:
		return 8
	}
}

// FairnessResult holds E11: ANTT / harmonic speedup / fairness per policy.
type FairnessResult struct {
	Cores    int
	Policies []string
	// Mean metrics across mixes, keyed by policy.
	ANTT, HS, Fairness map[string]float64
}

// FairnessComparison runs experiment E11 on the 4-core mixes.
func FairnessComparison(cores int, o Options) *FairnessResult {
	o = o.withDefaults()
	specs := StandardPolicies()
	res := &FairnessResult{
		Cores: cores,
		ANTT:  map[string]float64{}, HS: map[string]float64{}, Fairness: map[string]float64{},
	}
	mixes := o.mixes(cores)
	acc := map[string][]MixMetrics{}
	for _, s := range specs {
		res.Policies = append(res.Policies, s.Name)
	}
	grid := o.mixMetricsGrid(mixes, specs)
	for i := range mixes {
		for j, s := range specs {
			acc[s.Name] = append(acc[s.Name], grid[i][j])
		}
	}
	for _, p := range res.Policies {
		var antt, hs, fair []float64
		for _, mm := range acc[p] {
			antt = append(antt, mm.ANTT)
			hs = append(hs, mm.HS)
			fair = append(fair, mm.Fairness)
		}
		res.ANTT[p] = stats.Mean(antt)
		res.HS[p] = stats.Mean(hs)
		res.Fairness[p] = stats.Mean(fair)
	}
	return res
}

// Table renders E11.
func (r *FairnessResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E11: %d-core fairness metrics (mean across mixes)", r.Cores),
		"policy", "ANTT (lower=better)", "harmonic speedup", "fairness")
	for _, p := range r.Policies {
		t.AddRow(p, metrics.F3(r.ANTT[p]), metrics.F3(r.HS[p]), metrics.F3(r.Fairness[p]))
	}
	return t
}
