package experiments

import (
	"strings"
	"testing"
)

// Small budgets keep the suite fast; shapes (not magnitudes) are asserted.
func quickOpts() Options {
	return Options{Budget: 250_000, Seed: 1, MixLimit: 2, BenchLimit: 4}
}

func TestDelinquencyShape(t *testing.T) {
	o := quickOpts()
	o.BenchLimit = 0
	res := Delinquency(o)
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TotalMisses == 0 {
			continue // cache-friendly models may not miss at tiny budgets
		}
		if row.Top20 < row.Top10 || row.Top10 < row.Top5 || row.Top5 < row.Top1 {
			t.Fatalf("%s: non-monotone skew %+v", row.Bench, row)
		}
		if row.Top20 > 1.0001 {
			t.Fatalf("%s: top-20 fraction %v > 1", row.Bench, row.Top20)
		}
		// The paper's observation: misses are PC-concentrated. All our
		// models have few static PCs, so top-20 must cover everything.
		if row.Top20 < 0.99 {
			t.Fatalf("%s: top-20 only %.2f", row.Bench, row.Top20)
		}
	}
	if res.Table().NumRows() != len(res.Rows) {
		t.Fatal("table rows mismatch")
	}
}

func TestNextUseProfileShape(t *testing.T) {
	o := quickOpts()
	res := NextUseProfile(o)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	sawReuse := false
	for _, row := range res.Rows {
		if row.Reuses > row.Misses+row.Reuses { // sanity: reuses bounded
			t.Fatalf("%s/%#x: reuses %d", row.Bench, row.PC, row.Reuses)
		}
		if row.Reuses > 0 {
			sawReuse = true
			if row.P25 > row.P50 || row.P50 > row.P75 {
				t.Fatalf("%s/%#x: quantiles not monotone", row.Bench, row.PC)
			}
			if row.Within64 < 0 || row.Within64 > 1 {
				t.Fatalf("Within64 = %v", row.Within64)
			}
		}
	}
	if !sawReuse {
		t.Fatal("no PC showed any next-use reuse")
	}
	if res.Table().NumRows() == 0 {
		t.Fatal("empty table")
	}
}

func TestPotentialShape(t *testing.T) {
	o := quickOpts()
	res := Potential(o)
	for _, row := range res.Rows {
		// OPT is offline-optimal: never more misses than LRU.
		if row.OPTMisses > row.LRUMisses {
			t.Fatalf("%s: OPT %d > LRU %d", row.Bench, row.OPTMisses, row.LRUMisses)
		}
		if row.OPTReduction < 0 || row.OPTReduction > 1 {
			t.Fatalf("%s: reduction %v", row.Bench, row.OPTReduction)
		}
	}
	if res.Table().NumRows() != len(res.Rows) {
		t.Fatal("table mismatch")
	}
}

func TestSingleCoreShape(t *testing.T) {
	o := Options{Budget: 400_000, Seed: 1, BenchLimit: 0}
	res := SingleCore(o)
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Geomean < 0.97 {
		t.Fatalf("geomean speedup %.3f: NUcache broadly hurting", res.Geomean)
	}
	won := 0
	for _, row := range res.Rows {
		if row.Speedup > 1.02 {
			won++
		}
		if row.Speedup < 0.90 && row.BaseIPC > 0 {
			t.Fatalf("%s: NUcache slowdown %.3f", row.Bench, row.Speedup)
		}
	}
	if won == 0 {
		t.Fatal("NUcache won on no benchmark")
	}
}

func TestMulticoreComparisonShape(t *testing.T) {
	res := MulticoreComparison(2, quickOpts())
	if len(res.Mixes) != 2 || len(res.WS) != 2 {
		t.Fatalf("mixes %d ws %d", len(res.Mixes), len(res.WS))
	}
	if res.Policies[0] != "LRU" {
		t.Fatal("baseline must be first")
	}
	for _, p := range res.Policies {
		if res.GeomeanNorm[p] <= 0 {
			t.Fatalf("geomean for %s = %v", p, res.GeomeanNorm[p])
		}
	}
	for i, row := range res.WS {
		for _, p := range res.Policies {
			mm := row[p]
			// Shared-mode runs under a better-than-baseline policy can
			// slightly beat the alone-LRU denominator, so WS may exceed
			// the core count by a little — but not wildly.
			if mm.WS <= 0 || mm.WS > 1.5*float64(res.Cores) {
				t.Fatalf("mix %d policy %s WS %v out of range", i, p, mm.WS)
			}
			if mm.ANTT < 0.5 {
				t.Fatalf("ANTT %v implausibly low", mm.ANTT)
			}
		}
	}
	tbl := res.Table().String()
	if !strings.Contains(tbl, "geomean") {
		t.Fatal("table missing geomean row")
	}
}

func TestFairnessComparisonShape(t *testing.T) {
	res := FairnessComparison(2, quickOpts())
	for _, p := range res.Policies {
		if res.ANTT[p] < 0.5 {
			t.Fatalf("%s ANTT %v", p, res.ANTT[p])
		}
		if res.HS[p] <= 0 || res.HS[p] > 1.5 {
			t.Fatalf("%s HS %v", p, res.HS[p])
		}
		if res.Fairness[p] < 0 || res.Fairness[p] > 1.001 {
			t.Fatalf("%s fairness %v", p, res.Fairness[p])
		}
	}
	if res.Table().NumRows() != len(res.Policies) {
		t.Fatal("table mismatch")
	}
}

func TestSweepShapes(t *testing.T) {
	o := Options{Budget: 150_000, Seed: 1, MixLimit: 1}
	for _, sw := range []*SweepResult{
		DeliWaysSweep(o), EpochSweep(o), SamplingSweep(o),
	} {
		if len(sw.Points) < 4 {
			t.Fatalf("%s: %d points", sw.Title, len(sw.Points))
		}
		for _, p := range sw.Points {
			if p.Geomean <= 0 {
				t.Fatalf("%s/%s: geomean %v", sw.Title, p.Label, p.Geomean)
			}
		}
		if sw.Table().NumRows() != len(sw.Points) {
			t.Fatal("table mismatch")
		}
	}
}

func TestPCCountSweepShape(t *testing.T) {
	o := Options{Budget: 150_000, Seed: 1, MixLimit: 1}
	sw := PCCountSweep(o)
	if len(sw.Points) != 9 {
		t.Fatalf("%d points", len(sw.Points))
	}
}

func TestConfigAndOverheadTables(t *testing.T) {
	cfg := ConfigTable(Options{})
	if cfg.NumRows() < 6 {
		t.Fatalf("config table rows = %d", cfg.NumRows())
	}
	s := cfg.String()
	for _, want := range []string{"LLC", "DeliWays", "candidates"} {
		if !strings.Contains(s, want) {
			t.Fatalf("config table missing %q:\n%s", want, s)
		}
	}
	ov := OverheadTable(Options{})
	if ov.NumRows() != 3 {
		t.Fatalf("overhead rows = %d", ov.NumRows())
	}
}

func TestAloneCacheMemoizes(t *testing.T) {
	o := Options{Budget: 100_000, Seed: 1}.withDefaults()
	a := o.aloneIPC("twolf-like", 2)
	b := o.aloneIPC("twolf-like", 2)
	if a != b || a <= 0 {
		t.Fatalf("alone IPC %v vs %v", a, b)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Budget != 5_000_000 || o.Seed != 1 {
		t.Fatalf("defaults %+v", o)
	}
	if n := len(Options{MixLimit: 3}.mixes(2)); n != 3 {
		t.Fatalf("mix limit gave %d", n)
	}
	if n := len(Options{BenchLimit: 2}.benchmarks()); n != 2 {
		t.Fatalf("bench limit gave %d", n)
	}
	if len(StandardPolicies()) != 5 {
		t.Fatal("standard policy lineup changed")
	}
}

func TestFmtPC(t *testing.T) {
	if got := fmtPC(0x400100); got != "0x400100" {
		t.Fatalf("fmtPC = %q", got)
	}
	if got := fmtPC(0x400100 | 3<<48); got != "c3:0x400100" {
		t.Fatalf("fmtPC core = %q", got)
	}
}

func TestIdealRetentionShape(t *testing.T) {
	o := quickOpts()
	res := IdealRetention(o)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.OracleMisses > row.LRUMisses {
			// The oracle's fixed M/D split can lose slightly to full
			// 16-way LRU on retention-hostile programs, but not by much.
			if float64(row.OracleMisses) > 1.1*float64(row.LRUMisses) {
				t.Fatalf("%s: oracle %d misses >> LRU %d", row.Bench, row.OracleMisses, row.LRUMisses)
			}
		}
	}
	if res.Table().NumRows() != len(res.Rows) {
		t.Fatal("table mismatch")
	}
}

func TestPrefetchStudyShape(t *testing.T) {
	o := Options{Budget: 200_000, Seed: 1, MixLimit: 1}
	res := PrefetchStudy(o)
	if res.GainNoPf <= 0 || res.GainPf <= 0 {
		t.Fatalf("gains %v / %v", res.GainNoPf, res.GainPf)
	}
	if res.BaseWSNoPf <= 0 || res.BaseWSPf <= 0 {
		t.Fatalf("base WS %v / %v", res.BaseWSNoPf, res.BaseWSPf)
	}
	if res.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

func TestDRAMStudyShape(t *testing.T) {
	o := Options{Budget: 200_000, Seed: 1, MixLimit: 1}
	res := DRAMStudy(o)
	if res.GainFlat <= 0 || res.GainDRAM <= 0 {
		t.Fatalf("gains %v / %v", res.GainFlat, res.GainDRAM)
	}
	if res.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

func TestExtendedComparisonShape(t *testing.T) {
	o := Options{Budget: 150_000, Seed: 1, MixLimit: 1}
	res := ExtendedComparison(2, o)
	if len(res.Policies) != 11 {
		t.Fatalf("%d policies", len(res.Policies))
	}
	for _, p := range res.Policies {
		if res.GeomeanNorm[p] <= 0 {
			t.Fatalf("%s geomean %v", p, res.GeomeanNorm[p])
		}
	}
	if res.Table().NumRows() != 11 {
		t.Fatal("table rows")
	}
}

func TestAdaptiveStudyShape(t *testing.T) {
	o := Options{Budget: 200_000, Seed: 1, MixLimit: 1}
	res := AdaptiveStudy(o)
	if res.GainFixed <= 0 || res.GainAdaptive <= 0 {
		t.Fatalf("gains %v / %v", res.GainFixed, res.GainAdaptive)
	}
	if res.Table().NumRows() != 2 {
		t.Fatal("table rows")
	}
}

func TestProfileAdvisorSweepShape(t *testing.T) {
	o := quickOpts()
	o.Budget = 100_000
	res := ProfileAdvisorSweep(o)
	if res == nil || len(res.Points) != 2 {
		t.Fatalf("advisor sweep returned %+v", res)
	}
	if res.Column == "" {
		t.Error("advisor sweep must override the table column header")
	}
	for _, p := range res.Points {
		// The even split is in the search space, so the best static
		// partition can never predict worse than it.
		if p.Geomean < 1 {
			t.Errorf("%s: best/even ratio %.4f < 1", p.Label, p.Geomean)
		}
		if !strings.Contains(p.Label, "best=") || !strings.Contains(p.Label, "D*=") {
			t.Errorf("label does not name the answers: %q", p.Label)
		}
	}
	if res.Table().NumRows() != len(res.Points) {
		t.Fatal("table rows mismatch")
	}
}
