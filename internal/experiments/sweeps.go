package experiments

import (
	"fmt"

	"nucache/internal/core"
	"nucache/internal/metrics"
	"nucache/internal/stats"
)

// SweepPoint is one configuration's aggregate result in a sensitivity
// sweep: geometric-mean weighted-speedup improvement over LRU across the
// 4-core mixes.
type SweepPoint struct {
	Label   string
	Geomean float64
}

// SweepResult holds one sensitivity experiment (E9/E10/E12/E13) or an
// advisor study (E21).
type SweepResult struct {
	ID    int
	Title string
	// Column overrides the value-column header ("" = the sensitivity
	// sweeps' "WS gain over LRU").
	Column string
	Points []SweepPoint
}

// sweep evaluates NUcache variants against the shared LRU baseline on the
// 4-core mixes. Baseline and variants fan out through the scheduler as
// one grid; the baseline's content-addressed results are shared across
// every sweep in the process.
func (o Options) sweep(id int, title string, variants []PolicySpec) *SweepResult {
	o = o.withDefaults()
	res := &SweepResult{ID: id, Title: title}
	mixes := o.mixes(4)
	specs := append([]PolicySpec{Baseline()}, variants...)
	grid := o.mixMetricsGrid(mixes, specs)
	if grid == nil { // interrupted: partial results are journaled
		return nil
	}
	baseWS := make([]float64, len(mixes))
	for i := range mixes {
		baseWS[i] = grid[i][0].WS
	}
	for j, v := range variants {
		ratios := make([]float64, 0, len(mixes))
		for i := range mixes {
			if baseWS[i] > 0 {
				ratios = append(ratios, grid[i][j+1].WS/baseWS[i])
			}
		}
		res.Points = append(res.Points, SweepPoint{Label: v.Name, Geomean: stats.GeoMean(ratios)})
	}
	return res
}

// DeliWaysSweep runs experiment E9: sensitivity to the MainWays/DeliWays
// split at fixed total associativity.
func DeliWaysSweep(o Options) *SweepResult {
	var variants []PolicySpec
	for _, d := range []int{2, 4, 6, 8, 10} {
		d := d
		variants = append(variants, NUcacheWith(fmt.Sprintf("D=%d", d), func(ways int) core.Config {
			cfg := core.DefaultConfig(ways)
			cfg.DeliWays = d
			return cfg
		}))
	}
	return o.sweep(9, "E9: DeliWays count (of 16 ways), 4-core WS gain over LRU", variants)
}

// PCCountSweep runs experiment E10: sensitivity to the candidate pool /
// chosen-set cap, plus the lifetime-slack ablation.
func PCCountSweep(o Options) *SweepResult {
	var variants []PolicySpec
	for _, n := range []int{1, 2, 4, 8, 32} {
		n := n
		variants = append(variants, NUcacheWith(fmt.Sprintf("maxChosen=%d", n), func(ways int) core.Config {
			cfg := core.DefaultConfig(ways)
			cfg.MaxChosen = n
			return cfg
		}))
	}
	for _, s := range []float64{1, 2, 4} {
		s := s
		variants = append(variants, NUcacheWith(fmt.Sprintf("slack=%.0f", s), func(ways int) core.Config {
			cfg := core.DefaultConfig(ways)
			cfg.LifetimeSlack = s
			return cfg
		}))
	}
	variants = append(variants, NUcacheWith("no-promote", func(ways int) core.Config {
		cfg := core.DefaultConfig(ways)
		cfg.PromoteOnDeliHit = false
		return cfg
	}))
	return o.sweep(10, "E10: PC-selection ablations, 4-core WS gain over LRU", variants)
}

// EpochSweep runs experiment E12: sensitivity to the selection epoch.
func EpochSweep(o Options) *SweepResult {
	var variants []PolicySpec
	for _, e := range []uint64{25_000, 50_000, 100_000, 200_000, 400_000} {
		e := e
		variants = append(variants, NUcacheWith(fmt.Sprintf("epoch=%dk", e/1000), func(ways int) core.Config {
			cfg := core.DefaultConfig(ways)
			cfg.EpochMisses = e
			return cfg
		}))
	}
	return o.sweep(12, "E12: selection epoch length (LLC misses), 4-core WS gain over LRU", variants)
}

// SamplingSweep runs experiment E13: monitor set-sampling ratio.
func SamplingSweep(o Options) *SweepResult {
	var variants []PolicySpec
	for _, s := range []uint{0, 3, 5, 7, 9} {
		s := s
		variants = append(variants, NUcacheWith(fmt.Sprintf("1-in-%d", 1<<s), func(ways int) core.Config {
			cfg := core.DefaultConfig(ways)
			cfg.SampleShift = s
			return cfg
		}))
	}
	return o.sweep(13, "E13: monitor set sampling, 4-core WS gain over LRU", variants)
}

// Table renders a sweep.
func (r *SweepResult) Table() *metrics.Table {
	col := r.Column
	if col == "" {
		col = "WS gain over LRU"
	}
	t := metrics.NewTable(r.Title, "variant", col)
	for _, p := range r.Points {
		t.AddRow(p.Label, metrics.Pct(p.Geomean))
	}
	return t
}

// AdaptiveResult holds E20 (extension): fixed-D NUcache vs the adaptive
// MainWays/DeliWays split.
type AdaptiveResult struct {
	// GainFixed / GainAdaptive are geometric-mean WS gains over LRU on
	// the 4-core mixes.
	GainFixed, GainAdaptive float64
}

// AdaptiveStudy runs experiment E20.
func AdaptiveStudy(o Options) *AdaptiveResult {
	o = o.withDefaults()
	res := &AdaptiveResult{}
	fixed := NUcacheSpec()
	adaptive := NUcacheWith("NUcache-adaptive", func(ways int) core.Config {
		cfg := core.DefaultConfig(ways)
		cfg.DeliWays = 8 // maximum; the selection picks 2..8
		cfg.AdaptiveDeliWays = true
		return cfg
	})
	mixes := o.mixes(4)
	grid := o.mixMetricsGrid(mixes, []PolicySpec{Baseline(), fixed, adaptive})
	if grid == nil { // interrupted: partial results are journaled
		return nil
	}
	var rFixed, rAdaptive []float64
	for i := range mixes {
		b := grid[i][0].WS
		if b <= 0 {
			continue
		}
		rFixed = append(rFixed, grid[i][1].WS/b)
		rAdaptive = append(rAdaptive, grid[i][2].WS/b)
	}
	res.GainFixed = stats.GeoMean(rFixed)
	res.GainAdaptive = stats.GeoMean(rAdaptive)
	return res
}

// Table renders E20.
func (r *AdaptiveResult) Table() *metrics.Table {
	t := metrics.NewTable("E20 (extension): fixed vs adaptive MainWays/DeliWays split (4-core mixes)",
		"configuration", "WS gain over LRU")
	t.AddRow("fixed D=6", metrics.Pct(r.GainFixed))
	t.AddRow("adaptive D in {2,4,6,8}", metrics.Pct(r.GainAdaptive))
	return t
}
