package experiments

import (
	"fmt"

	"nucache/internal/cache"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/stats"
)

// ExtendedPolicies adds the replacement-side state of the art that the
// paper did not chart (DIP, DRRIP) plus Random as a floor — the E19
// extended-lineup study.
func ExtendedPolicies() []PolicySpec {
	return append(StandardPolicies(),
		PolicySpec{Name: "DIP", New: func(_, _ int) cache.Policy {
			return policy.NewDIP(777)
		}},
		PolicySpec{Name: "DRRIP", New: func(_, _ int) cache.Policy {
			return policy.NewDRRIP(777)
		}},
		PolicySpec{Name: "SHiP", New: func(_, _ int) cache.Policy {
			return policy.NewSHiP()
		}},
		PolicySpec{Name: "SLRU", New: func(_, ways int) cache.Policy {
			return policy.NewSLRU(ways / 2)
		}},
		PolicySpec{Name: "Hawkeye", New: func(_, ways int) cache.Policy {
			return policy.NewHawkeye(ways)
		}},
		PolicySpec{Name: "Random", New: func(_, _ int) cache.Policy {
			return policy.NewRandom(777)
		}},
	)
}

// ExtendedResult holds E19.
type ExtendedResult struct {
	Cores    int
	Policies []string
	// GeomeanNorm is each policy's geometric-mean WS vs the LRU baseline.
	GeomeanNorm map[string]float64
}

// ExtendedComparison runs experiment E19: the full policy lineup
// (partitioning + insertion-policy families) on the standard mixes.
func ExtendedComparison(cores int, o Options) *ExtendedResult {
	o = o.withDefaults()
	specs := ExtendedPolicies()
	res := &ExtendedResult{Cores: cores, GeomeanNorm: map[string]float64{}}
	for _, s := range specs {
		res.Policies = append(res.Policies, s.Name)
	}
	mixes := o.mixes(cores)
	base := specs[0]
	grid := o.mixMetricsGrid(mixes, specs)
	baseWS := make([]float64, len(mixes))
	for i := range mixes {
		baseWS[i] = grid[i][0].WS
	}
	for j, s := range specs {
		var ratios []float64
		for i := range mixes {
			if baseWS[i] <= 0 {
				continue
			}
			if s.Name == base.Name {
				ratios = append(ratios, 1)
				continue
			}
			ratios = append(ratios, grid[i][j].WS/baseWS[i])
		}
		res.GeomeanNorm[s.Name] = stats.GeoMean(ratios)
	}
	return res
}

// Table renders E19.
func (r *ExtendedResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E19 (extension): full policy lineup, %d-core WS gain over LRU", r.Cores),
		"policy", "WS gain over LRU")
	for _, p := range r.Policies {
		if p == r.Policies[0] {
			t.AddRow(p, "1.000x")
			continue
		}
		t.AddRow(p, metrics.Pct(r.GeomeanNorm[p]))
	}
	return t
}
