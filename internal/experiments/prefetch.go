package experiments

import (
	"fmt"

	"nucache/internal/metrics"
	"nucache/internal/stats"
)

// PrefetchResult holds E17 (extension): does NUcache's benefit survive
// when a next-line prefetcher is active? Prefetching converts some of the
// misses retention would have saved into prefetch hits, and prefetch
// traffic adds pollution retention must cope with — the classic
// interaction question for any LLC management proposal.
type PrefetchResult struct {
	Cores int
	// GainNoPf / GainPf are geometric-mean NUcache WS gains over the LRU
	// baseline without / with prefetching (degree 2).
	GainNoPf, GainPf float64
	// BaseWSNoPf / BaseWSPf are the mean LRU weighted speedups, showing
	// the prefetcher's own contribution.
	BaseWSNoPf, BaseWSPf float64
}

// PrefetchStudy runs experiment E17 on the 4-core mixes.
func PrefetchStudy(o Options) *PrefetchResult {
	o = o.withDefaults()
	res := &PrefetchResult{Cores: 4}

	measure := func(degree int) (gain, baseWS float64) {
		opt := o
		opt.PrefetchDegree = degree
		base := Baseline()
		nu := NUcacheSpec()
		var ratios, bases []float64
		for _, m := range opt.mixes(4) {
			b := opt.mixMetrics(m, base).WS
			n := opt.mixMetrics(m, nu).WS
			if b > 0 {
				ratios = append(ratios, n/b)
				bases = append(bases, b)
			}
		}
		return stats.GeoMean(ratios), stats.Mean(bases)
	}

	res.GainNoPf, res.BaseWSNoPf = measure(0)
	res.GainPf, res.BaseWSPf = measure(2)
	return res
}

// Table renders E17.
func (r *PrefetchResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E17 (extension): NUcache with a degree-2 next-line prefetcher (%d-core mixes)", r.Cores),
		"configuration", "LRU WS (mean)", "NUcache gain over LRU")
	t.AddRow("no prefetch", metrics.F3(r.BaseWSNoPf), metrics.Pct(r.GainNoPf))
	t.AddRow("prefetch degree 2", metrics.F3(r.BaseWSPf), metrics.Pct(r.GainPf))
	return t
}
