package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"nucache/internal/sim"
)

// TestGridMatchesSequential is the parallelization contract: the
// scheduler-backed grid must reproduce, value for value, what direct
// sequential mixMetrics calls compute — and therefore byte-identical
// tables. A distinct budget keeps these keys out of other tests' cache
// entries.
func TestGridMatchesSequential(t *testing.T) {
	o := Options{Budget: 170_000, Seed: 1, MixLimit: 2, Parallel: 4}.withDefaults()
	specs := StandardPolicies()
	mixes := o.mixes(2)

	grid := o.mixMetricsGrid(mixes, specs)

	for i, m := range mixes {
		for j, s := range specs {
			want := o.mixMetrics(m, s)
			if !reflect.DeepEqual(grid[i][j], want) {
				t.Fatalf("%s under %s: grid %+v != sequential %+v",
					m.Name, s.Name, grid[i][j], want)
			}
		}
	}
}

// TestMultiReplayEngagementAndEscapeHatch pins the one-pass grid wiring
// at the experiments layer: a policy-grid run must actually take the
// multi-replay path (the expvar counter moves), DisableMultiReplay must
// keep it off, and both modes must reproduce the direct sequential
// mixMetrics values — so the two grid modes are transitively
// byte-identical. Distinct budgets keep the two grids out of each
// other's cache entries.
func TestMultiReplayEngagementAndEscapeHatch(t *testing.T) {
	specs := StandardPolicies()
	check := func(o Options) {
		t.Helper()
		mixes := o.mixes(2)
		grid := o.mixMetricsGrid(mixes, specs)
		for i, m := range mixes {
			for j, s := range specs {
				if want := o.mixMetrics(m, s); !reflect.DeepEqual(grid[i][j], want) {
					t.Fatalf("%s under %s (nomulti=%v): grid %+v != sequential %+v",
						m.Name, s.Name, o.DisableMultiReplay, grid[i][j], want)
				}
			}
		}
	}

	on := Options{Budget: 155_000, Seed: 1, MixLimit: 2, Parallel: 2}.withDefaults()
	before := sim.MultiReplayRuns.Value()
	check(on)
	if sim.MultiReplayRuns.Value() == before {
		t.Fatal("policy grid did not engage the one-pass multi-replay path")
	}

	off := Options{Budget: 165_000, Seed: 1, MixLimit: 2, Parallel: 2,
		DisableMultiReplay: true}.withDefaults()
	before = sim.MultiReplayRuns.Value()
	check(off)
	if got := sim.MultiReplayRuns.Value(); got != before {
		t.Fatalf("DisableMultiReplay grid still ran %d one-pass grids", got-before)
	}
}

// TestMultiReplayParallelLanesEngagementAndEscapeHatch pins the
// parallel-lane wiring at the experiments layer: with spare scheduler
// slots and GOMAXPROCS headroom a grid row must actually borrow lane
// workers (the expvar counters move), DisableLaneParallel must keep
// stepping serial, and both modes must reproduce the direct sequential
// mixMetrics values. GOMAXPROCS is raised for the duration because the
// borrow path intentionally degrades to serial on single-CPU boxes.
func TestMultiReplayParallelLanesEngagementAndEscapeHatch(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	specs := StandardPolicies()
	check := func(o Options) {
		t.Helper()
		mixes := o.mixes(2)
		grid := o.mixMetricsGrid(mixes, specs)
		for i, m := range mixes {
			for j, s := range specs {
				if want := o.mixMetrics(m, s); !reflect.DeepEqual(grid[i][j], want) {
					t.Fatalf("%s under %s (nolanes=%v): grid %+v != sequential %+v",
						m.Name, s.Name, o.DisableLaneParallel, grid[i][j], want)
				}
			}
		}
	}

	// One mix: its row job is the only slot holder, so Parallel=8 leaves
	// idle slots to borrow (blocked sibling cells hold at most 4 more).
	on := Options{Budget: 157_000, Seed: 1, MixLimit: 1, Parallel: 8}.withDefaults()
	runsBefore, workersBefore := sim.MultiReplayParallelRuns.Value(), sim.MultiReplayLaneWorkers.Value()
	check(on)
	if sim.MultiReplayParallelRuns.Value() == runsBefore {
		t.Fatal("policy grid did not engage parallel lane stepping")
	}
	if sim.MultiReplayLaneWorkers.Value()-workersBefore < 2 {
		t.Fatal("parallel grid row reported fewer than 2 lane workers")
	}

	off := Options{Budget: 167_000, Seed: 1, MixLimit: 1, Parallel: 8,
		DisableLaneParallel: true}.withDefaults()
	runsBefore = sim.MultiReplayParallelRuns.Value()
	check(off)
	if got := sim.MultiReplayParallelRuns.Value(); got != runsBefore {
		t.Fatalf("DisableLaneParallel grid still ran %d parallel-lane grids", got-runsBefore)
	}
}

// TestMulticoreTableParallelInvariance renders the 2-core mix table at
// different worker counts and requires identical bytes.
func TestMulticoreTableParallelInvariance(t *testing.T) {
	seq := Options{Budget: 160_000, Seed: 1, MixLimit: 2, Parallel: 1}
	par := Options{Budget: 160_000, Seed: 1, MixLimit: 2, Parallel: 8}
	a := MulticoreComparison(2, seq).Table().String()
	b := MulticoreComparison(2, par).Table().String()
	if a != b {
		t.Fatalf("tables diverge between worker counts:\n--- sequential\n%s\n--- parallel\n%s", a, b)
	}
}

// TestSweepUsesSharedBaseline checks that two sweeps at one configuration
// agree on their baseline-relative scale (the LRU row is cached and
// shared), and that cache reuse does not change results.
func TestSweepUsesSharedBaseline(t *testing.T) {
	o := Options{Budget: 140_000, Seed: 1, MixLimit: 1, Parallel: 2}
	first := DeliWaysSweep(o)
	again := DeliWaysSweep(o)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("repeated sweep differs: %+v vs %+v", first, again)
	}
}
