package experiments

import (
	"reflect"
	"testing"
)

// TestGridMatchesSequential is the parallelization contract: the
// scheduler-backed grid must reproduce, value for value, what direct
// sequential mixMetrics calls compute — and therefore byte-identical
// tables. A distinct budget keeps these keys out of other tests' cache
// entries.
func TestGridMatchesSequential(t *testing.T) {
	o := Options{Budget: 170_000, Seed: 1, MixLimit: 2, Parallel: 4}.withDefaults()
	specs := StandardPolicies()
	mixes := o.mixes(2)

	grid := o.mixMetricsGrid(mixes, specs)

	for i, m := range mixes {
		for j, s := range specs {
			want := o.mixMetrics(m, s)
			if !reflect.DeepEqual(grid[i][j], want) {
				t.Fatalf("%s under %s: grid %+v != sequential %+v",
					m.Name, s.Name, grid[i][j], want)
			}
		}
	}
}

// TestMulticoreTableParallelInvariance renders the 2-core mix table at
// different worker counts and requires identical bytes.
func TestMulticoreTableParallelInvariance(t *testing.T) {
	seq := Options{Budget: 160_000, Seed: 1, MixLimit: 2, Parallel: 1}
	par := Options{Budget: 160_000, Seed: 1, MixLimit: 2, Parallel: 8}
	a := MulticoreComparison(2, seq).Table().String()
	b := MulticoreComparison(2, par).Table().String()
	if a != b {
		t.Fatalf("tables diverge between worker counts:\n--- sequential\n%s\n--- parallel\n%s", a, b)
	}
}

// TestSweepUsesSharedBaseline checks that two sweeps at one configuration
// agree on their baseline-relative scale (the LRU row is cached and
// shared), and that cache reuse does not change results.
func TestSweepUsesSharedBaseline(t *testing.T) {
	o := Options{Budget: 140_000, Seed: 1, MixLimit: 1, Parallel: 2}
	first := DeliWaysSweep(o)
	again := DeliWaysSweep(o)
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("repeated sweep differs: %+v vs %+v", first, again)
	}
}
