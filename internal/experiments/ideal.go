package experiments

import (
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

// IdealRow compares NUcache's PC-proxy retention against an oracle that
// retains on perfect next-use knowledge under the same MainWays/DeliWays
// split, per benchmark.
type IdealRow struct {
	Bench        string
	LRUMisses    uint64
	NUMisses     uint64
	OracleMisses uint64
	// ProxyQuality is the fraction of the oracle's miss reduction that
	// NUcache's PC-based selection captures (1.0 = as good as knowing
	// the future; can exceed 1 when the fallback's full-LRU mode beats
	// the oracle's fixed split).
	ProxyQuality float64
}

// IdealResult holds E16 (extension; not a paper figure).
type IdealResult struct {
	Rows []IdealRow
}

// IdealRetention runs experiment E16: how close does the PC-based
// selection come to oracle retention with the same M/D split? The oracle
// window matches NUcache's steady-state FIFO lifetime scale: DeliWays
// drains of the whole cache expressed in LLC accesses.
func IdealRetention(o Options) *IdealResult {
	o = o.withDefaults()
	res := &IdealResult{}
	for _, b := range o.benchmarks() {
		cfg := o.machine(1)
		nuCfg := core.DefaultConfig(cfg.LLC.Ways)

		// Pass 1: LRU baseline + recorded LLC line stream.
		rec := policy.NewRecorder(policy.NewLRU())
		lru := cpu.NewSystem(cfg, rec, []trace.Stream{b.Stream(o.Seed)}).Run()[0]

		// Pass 2: NUcache.
		nu := cpu.NewSystem(cfg, core.MustNew(nuCfg),
			[]trace.Stream{b.Stream(o.Seed)}).Run()[0]

		// Pass 3: oracle retention on the recorded stream. Window: the
		// per-set DeliWays capacity times the set count, scaled by the
		// stream's accesses-per-miss so it expresses the same lifetime
		// NUcache's cost-benefit projects.
		window := uint64(nuCfg.DeliWays * cfg.LLC.Sets())
		if lru.LLCMisses > 0 {
			window *= uint64(len(rec.LineAddrs))/lru.LLCMisses + 1
		}
		oracle := policy.NewOracleRetention(nuCfg.MainWays(), nuCfg.DeliWays,
			window, policy.NextUseChain(rec.LineAddrs))
		orc := cpu.NewSystem(cfg, oracle, []trace.Stream{b.Stream(o.Seed)}).Run()[0]

		row := IdealRow{
			Bench:        b.Name,
			LRUMisses:    lru.LLCMisses,
			NUMisses:     nu.LLCMisses,
			OracleMisses: orc.LLCMisses,
		}
		if saved := int64(lru.LLCMisses) - int64(orc.LLCMisses); saved > 0 {
			row.ProxyQuality = float64(int64(lru.LLCMisses)-int64(nu.LLCMisses)) / float64(saved)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders E16.
func (r *IdealResult) Table() *metrics.Table {
	t := metrics.NewTable("E16 (extension): PC-proxy vs oracle retention, same Main/DeliWays split (LLC misses)",
		"benchmark", "LRU", "NUcache", "oracle", "proxy quality")
	for _, row := range r.Rows {
		t.AddRow(row.Bench, u64(row.LRUMisses), u64(row.NUMisses), u64(row.OracleMisses),
			metrics.F2(row.ProxyQuality))
	}
	return t
}
