package experiments

import (
	"fmt"
	"strconv"

	"nucache/internal/core"
	"nucache/internal/metrics"
)

func u64(v uint64) string { return strconv.FormatUint(v, 10) }

// ConfigTable renders experiment E4: the simulated machine parameters
// (the paper's Table 1 equivalent), for the given core counts.
func ConfigTable(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E4: system configuration",
		"parameter", "1/2 cores", "4 cores", "8 cores")
	row := func(name string, f func(cores int) string) {
		t.AddRow(name, f(2), f(4), f(8))
	}
	row("L1D per core", func(c int) string {
		l1 := o.machine(c).L1
		return fmt.Sprintf("%dKB %d-way", l1.SizeBytes>>10, l1.Ways)
	})
	row("shared LLC", func(c int) string {
		llc := o.machine(c).LLC
		return fmt.Sprintf("%dMB %d-way", llc.SizeBytes>>20, llc.Ways)
	})
	row("line size", func(c int) string {
		return fmt.Sprintf("%dB", o.machine(c).LLC.LineBytes)
	})
	row("L1 / LLC / memory latency", func(c int) string {
		m := o.machine(c)
		return fmt.Sprintf("%d / %d / %d cycles", m.L1Latency, m.LLCLatency, m.MemLatency)
	})
	row("NUcache Main/DeliWays", func(c int) string {
		cfg := core.DefaultConfig(o.machine(c).LLC.Ways)
		return fmt.Sprintf("%d / %d", cfg.MainWays(), cfg.DeliWays)
	})
	row("NUcache candidates / epoch", func(c int) string {
		cfg := core.DefaultConfig(o.machine(c).LLC.Ways)
		return fmt.Sprintf("%d PCs / %dk misses", cfg.Candidates, cfg.EpochMisses/1000)
	})
	row("monitor sampling / victim table", func(c int) string {
		cfg := core.DefaultConfig(o.machine(c).LLC.Ways)
		return fmt.Sprintf("1-in-%d sets / %d entries", 1<<cfg.SampleShift, cfg.VictimTableCap)
	})
	row("instruction budget per core", func(c int) string {
		return fmt.Sprintf("%dM", o.Budget/1_000_000)
	})
	return t
}

// OverheadTable renders experiment E15: NUcache storage overhead for each
// machine size (the paper's hardware-cost argument).
func OverheadTable(o Options) *metrics.Table {
	o = o.withDefaults()
	t := metrics.NewTable("E15: NUcache storage overhead",
		"machine", "per-line bits", "monitor KB", "selection KB", "total KB", "% of cache")
	for _, cores := range []int{2, 4, 8} {
		llc := o.machine(cores).LLC
		cfg := core.DefaultConfig(llc.Ways)
		// Tag bits for a 48-bit physical address space.
		sets := llc.Sets()
		tagBits := 48 - log2i(llc.LineBytes) - log2i(sets)
		ov := cfg.Overhead(sets, tagBits, llc.LineBytes)
		t.AddRow(
			fmt.Sprintf("%d-core %dMB", cores, llc.SizeBytes>>20),
			strconv.Itoa(ov.PerLineBits),
			metrics.F2(float64(ov.MonitorBits)/8/1024),
			metrics.F2(float64(ov.SelectionBits)/8/1024),
			metrics.F2(float64(ov.TotalBits)/8/1024),
			metrics.F2(ov.Percent()),
		)
	}
	return t
}

func log2i(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
