package experiments

import (
	"nucache/internal/cpu"
	"nucache/internal/metrics"
	"nucache/internal/stats"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// SingleCoreRow is one benchmark's E5 measurement.
type SingleCoreRow struct {
	Bench    string
	Class    workload.Class
	BaseIPC  float64
	NUIPC    float64
	BaseMPKI float64
	NUMPKI   float64
	// Speedup is NUIPC / BaseIPC.
	Speedup float64
}

// SingleCoreResult holds E5.
type SingleCoreResult struct {
	Rows []SingleCoreRow
	// Geomean is the geometric-mean speedup across benchmarks.
	Geomean float64
}

// SingleCore runs experiment E5: per-benchmark NUcache speedup over the
// LRU baseline on a single core.
func SingleCore(o Options) *SingleCoreResult {
	o = o.withDefaults()
	res := &SingleCoreResult{}
	var speedups []float64
	for _, b := range o.benchmarks() {
		run := func(spec PolicySpec) cpu.CoreResult {
			cfg := o.machine(1)
			pol := spec.New(1, cfg.LLC.Ways)
			sys := cpu.NewSystem(cfg, pol, []trace.Stream{b.Stream(o.Seed)})
			return sys.Run()[0]
		}
		base := run(Baseline())
		nu := run(NUcacheSpec())
		row := SingleCoreRow{
			Bench:    b.Name,
			Class:    b.Class,
			BaseIPC:  base.IPC(),
			NUIPC:    nu.IPC(),
			BaseMPKI: base.LLCMPKI(),
			NUMPKI:   nu.LLCMPKI(),
		}
		if row.BaseIPC > 0 {
			row.Speedup = row.NUIPC / row.BaseIPC
		}
		res.Rows = append(res.Rows, row)
		if row.Speedup > 0 {
			speedups = append(speedups, row.Speedup)
		}
	}
	res.Geomean = stats.GeoMean(speedups)
	return res
}

// Table renders E5.
func (r *SingleCoreResult) Table() *metrics.Table {
	t := metrics.NewTable("E5: single-core NUcache vs LRU",
		"benchmark", "class", "LRU IPC", "NUcache IPC", "LRU MPKI", "NUcache MPKI", "speedup")
	for _, row := range r.Rows {
		t.AddRow(row.Bench, string(row.Class),
			metrics.F3(row.BaseIPC), metrics.F3(row.NUIPC),
			metrics.F2(row.BaseMPKI), metrics.F2(row.NUMPKI),
			metrics.Pct(row.Speedup))
	}
	t.AddRow("geomean", "", "", "", "", "", metrics.Pct(r.Geomean))
	return t
}
