package experiments

import (
	"fmt"

	"nucache/internal/metrics"
	"nucache/internal/stats"
)

// DRAMResult holds E18 (extension): do the conclusions survive a
// bank/row-buffer main-memory model instead of the flat miss latency?
// Under the DRAM model a policy's value depends on miss *locality* too,
// not just miss count.
type DRAMResult struct {
	Cores int
	// GainFlat / GainDRAM are geometric-mean NUcache WS gains over LRU
	// under the flat and the row-buffer memory models.
	GainFlat, GainDRAM float64
}

// DRAMStudy runs experiment E18 on the 4-core mixes.
func DRAMStudy(o Options) *DRAMResult {
	o = o.withDefaults()
	res := &DRAMResult{Cores: 4}

	measure := func(useDRAM bool) float64 {
		opt := o
		opt.UseDRAM = useDRAM
		base := Baseline()
		nu := NUcacheSpec()
		var ratios []float64
		for _, m := range opt.mixes(4) {
			b := opt.mixMetrics(m, base).WS
			if b > 0 {
				ratios = append(ratios, opt.mixMetrics(m, nu).WS/b)
			}
		}
		return stats.GeoMean(ratios)
	}

	res.GainFlat = measure(false)
	res.GainDRAM = measure(true)
	return res
}

// Table renders E18.
func (r *DRAMResult) Table() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("E18 (extension): memory-model sensitivity (%d-core mixes)", r.Cores),
		"memory model", "NUcache gain over LRU")
	t.AddRow("flat 200-cycle", metrics.Pct(r.GainFlat))
	t.AddRow("16-bank row-buffer DRAM", metrics.Pct(r.GainDRAM))
	return t
}
