package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/fabric"
	"nucache/internal/policy"
	"nucache/internal/workload"
)

// CellKindGrid is the fabric cell kind for policy-grid cells: the spec
// is a gridCellSpec, the payload a MixMetrics. The version tag matches
// the mixKey prefix — both change together or not at all.
const CellKindGrid = "mixmetrics/v1"

// PolicyWire is the serializable form of a PolicySpec: a policy kind
// plus, for NUcache variants, the fully resolved configuration. It is
// what lets a sweep built from closures (NUcacheWith and friends) ship
// its cells to a remote worker that has never seen those closures.
type PolicyWire struct {
	// Kind is "lru", "nucache", "ucp", "pipp" or "tadip".
	Kind string `json:"kind"`
	// NU carries the resolved core.Config for Kind "nucache".
	NU *core.Config `json:"nu,omitempty"`
}

// Build constructs the policy the wire form describes. The competitor
// constants (PIPP/TADIP seeds) are the same literals the local
// PolicySpecs use, so a remote build is the same machine.
func (pw *PolicyWire) Build(cores, ways int) (cache.Policy, error) {
	switch pw.Kind {
	case "lru":
		return policy.NewLRU(), nil
	case "nucache":
		if pw.NU == nil {
			return nil, fmt.Errorf("experiments: nucache wire spec without config")
		}
		return core.MustNew(*pw.NU), nil
	case "ucp":
		return policy.NewUCP(cores, ways), nil
	case "pipp":
		return policy.NewPIPP(cores, ways, 12345), nil
	case "tadip":
		return policy.NewTADIP(cores, 12345), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy kind %q", pw.Kind)
	}
}

// gridCellSpec is the wire form of one (mix, policy) grid cell: every
// Options field that is part of the cell's content address, plus the
// mix and the serialized policy. Scheduling knobs (Parallel,
// JobTimeout, replay A/B switches) are deliberately absent — they don't
// change results.
type gridCellSpec struct {
	Mix      string      `json:"mix"`
	Members  []string    `json:"members"`
	Policy   string      `json:"policy"`
	Wire     *PolicyWire `json:"wire"`
	Budget   uint64      `json:"budget"`
	Seed     uint64      `json:"seed"`
	Prefetch int         `json:"prefetch,omitempty"`
	DRAM     bool        `json:"dram,omitempty"`
}

// cellFor serializes one grid cell for the fabric, or reports false for
// specs with no wire form (ad-hoc PolicySpec literals stay local).
func (o Options) cellFor(m workload.Mix, spec PolicySpec) (fabric.Cell, bool) {
	if spec.Wire == nil {
		return fabric.Cell{}, false
	}
	cfg := o.machine(m.Cores())
	cs := gridCellSpec{
		Mix: m.Name, Members: m.Members,
		Policy: spec.Name, Wire: spec.Wire(cfg.Cores, cfg.LLC.Ways),
		Budget: o.Budget, Seed: o.Seed,
		Prefetch: o.PrefetchDegree, DRAM: o.UseDRAM,
	}
	data, err := json.Marshal(cs)
	if err != nil {
		return fabric.Cell{}, false
	}
	return fabric.Cell{Key: o.mixKey(m, spec), Kind: CellKindGrid, Spec: data}, true
}

// GridExecutor returns the fabric executor for CellKindGrid cells: it
// rebuilds the mix and policy from the wire spec and evaluates the cell
// exactly as the local path would — same simulation, same scoring, same
// encoder — so the payload is byte-identical to a local computation.
func GridExecutor() fabric.Executor {
	return func(ctx context.Context, spec json.RawMessage) (payload json.RawMessage, err error) {
		// A malformed spec (version skew, hostile coordinator) must fail
		// the cell, not kill the worker: simulation panics become errors
		// and the lease simply expires back to the coordinator.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("experiments: grid cell panicked: %v", r)
			}
		}()
		var cs gridCellSpec
		if err := json.Unmarshal(spec, &cs); err != nil {
			return nil, fmt.Errorf("experiments: grid cell spec: %w", err)
		}
		if cs.Wire == nil {
			return nil, fmt.Errorf("experiments: grid cell without policy wire")
		}
		if len(cs.Members) == 0 {
			return nil, fmt.Errorf("experiments: grid cell without mix members")
		}
		for _, name := range cs.Members {
			if _, ok := workload.ByName(name); !ok {
				return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := Options{
			Budget: cs.Budget, Seed: cs.Seed,
			PrefetchDegree: cs.Prefetch, UseDRAM: cs.DRAM,
		}.withDefaults()
		m := workload.Mix{Name: cs.Mix, Members: cs.Members}
		ps := PolicySpec{Name: cs.Policy, New: func(cores, ways int) cache.Policy {
			p, err := cs.Wire.Build(cores, ways)
			if err != nil {
				panic(err) // recovered above into the cell error
			}
			return p
		}}
		mm := o.mixMetrics(m, ps)
		return json.Marshal(&mm)
	}
}

// FabricConfig tunes the sweep-embedded coordinator.
type FabricConfig struct {
	// LeaseTTL and Heartbeat are the fabric.Config knobs (-lease,
	// -heartbeat on the CLI); zero values take the fabric defaults.
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	// Logger receives fabric chatter (stderr in the CLI); nil discards.
	Logger *log.Logger
}

// NewSweepCoordinator builds the coordinator a distributed sweep embeds:
// verified remote results are folded into the in-process grid cache and
// checkpointed to the journal exactly like local completions (one
// cellRecord per cell, annotated with the worker), and fabric events
// are journaled as skippable annotations so a resumed coordinator
// replays only completions.
func NewSweepCoordinator(o Options, fc FabricConfig) *fabric.Coordinator {
	jnl := o.Journal
	return fabric.NewCoordinator(fabric.Config{
		LeaseTTL:  fc.LeaseTTL,
		Heartbeat: fc.Heartbeat,
		Logger:    fc.Logger,
		OnResult: func(key string, payload []byte) {
			gridCache.PutEncoded(key, payload)
			journalRemoteCell(jnl, key, payload)
		},
		OnEvent: func(ev fabric.Event) {
			journalFabricEvent(jnl, ev)
		},
	})
}
