package experiments

import (
	"testing"

	"nucache/internal/sim"
)

// Grid-cache hits must not re-count retired instructions: the first
// MulticoreComparison computes every (mix, policy) cell and the alone
// runs; an identical second call is served entirely from the grid cache
// and the alone memo, so the counter must not move. (This was the PR 4
// bugfix: accounting used to happen per call site, so cached results
// could double-count.)
func TestRetiredAccountingCachedGrid(t *testing.T) {
	// A seed no other test uses, so the first call truly computes.
	o := Options{Budget: 30_000, Seed: 4242, MixLimit: 1, BenchLimit: 4}

	before := sim.InstructionsRetired.Value()
	MulticoreComparison(2, o)
	first := sim.InstructionsRetired.Value() - before
	if first <= 0 {
		t.Fatalf("first run retired %d instructions, want > 0", first)
	}

	before = sim.InstructionsRetired.Value()
	MulticoreComparison(2, o)
	if second := sim.InstructionsRetired.Value() - before; second != 0 {
		t.Fatalf("cached re-run retired %d instructions, want 0", second)
	}
}
