// Package experiments contains one runner per table/figure of the NUcache
// evaluation (the experiment index lives in DESIGN.md; measured-vs-paper
// results in EXPERIMENTS.md). Each runner builds the machine, drives the
// workloads, and renders a text table shaped like the paper's artifact.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"nucache/internal/cache"
	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/fabric"
	"nucache/internal/journal"
	"nucache/internal/memory"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/sim"
	"nucache/internal/workload"
)

// Options are the global run parameters shared by all experiments.
type Options struct {
	// Budget is the per-core instruction budget (0 = 5M).
	Budget uint64
	// Seed drives all workload generators (0 = 1).
	Seed uint64
	// MixLimit truncates the standard mix lists (0 = all); tests use it.
	MixLimit int
	// BenchLimit truncates the benchmark list (0 = all); tests use it.
	BenchLimit int
	// Only restricts benchmark-driven experiments to one benchmark name
	// (empty = all).
	Only string
	// PrefetchDegree enables the next-line prefetcher on every core
	// (0 = off); used by the E17 prefetch-interaction study.
	PrefetchDegree int
	// UseDRAM switches the machine to the bank/row-buffer memory model
	// (used by the E18 memory-model study).
	UseDRAM bool
	// Parallel is the worker count for scheduler-backed experiments
	// (0 = runtime.NumCPU(), 1 = sequential). Mix tables are
	// embarrassingly parallel across (mix, policy) pairs; results are
	// byte-identical regardless of this setting because each pair is an
	// independent deterministic simulation collected in submission order.
	Parallel int
	// JobTimeout bounds each scheduler-backed (mix, policy) evaluation
	// (0 = no deadline). A pair exceeding it fails the grid with a
	// deadline error instead of hanging the whole experiment.
	JobTimeout time.Duration
	// DisableReplay forces direct simulation instead of the record/replay
	// fast path (results are bit-identical either way; the switch exists
	// for A/B debugging and the differential tests).
	DisableReplay bool
	// DisableMultiReplay keeps record/replay on but evaluates policy
	// grids one (mix, policy) cell at a time instead of stepping a whole
	// policy row through one tape walk (sim.RunMachineGrid). Bit-identical
	// either way; the escape hatch for A/B-ing the one-pass grid engine.
	DisableMultiReplay bool
	// DisableLaneParallel keeps the one-pass grid walk but steps its
	// policy lanes serially instead of borrowing idle scheduler workers
	// to run them on goroutines. Bit-identical either way; the escape
	// hatch for A/B-ing the parallel lane executor.
	DisableLaneParallel bool
	// Ctx, when non-nil, cancels scheduler-backed grids early: queued
	// cells return the context error, in-flight cells run to completion
	// (and still checkpoint), and the grid reports nil instead of
	// panicking — commands then exit cleanly, leaving the journal
	// resumable. Nil means context.Background() (never canceled).
	Ctx context.Context
	// Journal, when non-nil, checkpoints every computed grid cell
	// (content-address key plus JSON metrics) as it completes, so a
	// crashed or interrupted sweep resumes via OpenSweepJournal without
	// recomputing finished cells. Appends are best-effort: a journal
	// write failure is logged and the sweep continues (the cell just
	// recomputes on resume).
	Journal *journal.Journal
	// Fabric, when non-nil, distributes grid cells to the coordinator's
	// remote worker pool: uncached wire-able cells are offered for
	// lease, each cell job consults the coordinator before computing
	// locally, and verified remote results are folded in through the
	// coordinator's OnResult hook (see NewSweepCoordinator). Nil — or a
	// pool with zero workers — leaves the sweep byte-identical to a
	// purely local run.
	Fabric *fabric.Coordinator
}

func (o Options) withDefaults() Options {
	if o.Budget == 0 {
		o.Budget = 5_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) mixes(cores int) []workload.Mix {
	ms := workload.MixesFor(cores)
	if o.MixLimit > 0 && len(ms) > o.MixLimit {
		ms = ms[:o.MixLimit]
	}
	return ms
}

func (o Options) benchmarks() []workload.Benchmark {
	if o.Only != "" {
		return []workload.Benchmark{workload.MustByName(o.Only)}
	}
	bs := workload.All()
	if o.BenchLimit > 0 && len(bs) > o.BenchLimit {
		bs = bs[:o.BenchLimit]
	}
	return bs
}

// PolicySpec names a shared-LLC policy and knows how to build a fresh
// instance for a machine.
type PolicySpec struct {
	// Name appears in result tables.
	Name string
	// New builds the policy for a machine with the given core count and
	// LLC associativity.
	New func(cores, ways int) cache.Policy
	// Wire, when non-nil, serializes the spec for remote execution
	// (see PolicyWire). Specs without a wire form — ad-hoc literals in
	// tests — are never offered to the fabric and always run locally.
	Wire func(cores, ways int) *PolicyWire
}

// Baseline is the baseline policy every comparison normalizes to.
func Baseline() PolicySpec {
	return PolicySpec{
		Name: "LRU",
		New:  func(int, int) cache.Policy { return policy.NewLRU() },
		Wire: func(int, int) *PolicyWire { return &PolicyWire{Kind: "lru"} },
	}
}

// NUcacheSpec is the paper's mechanism with default parameters.
func NUcacheSpec() PolicySpec {
	return PolicySpec{
		Name: "NUcache",
		New: func(_, ways int) cache.Policy {
			return core.MustNew(core.DefaultConfig(ways))
		},
		Wire: func(_, ways int) *PolicyWire {
			cfg := core.DefaultConfig(ways)
			return &PolicyWire{Kind: "nucache", NU: &cfg}
		},
	}
}

// NUcacheWith builds a spec from an explicit configuration (sweeps).
// The configuration resolves to a plain core.Config, so even sweeps
// built from closures serialize for remote execution.
func NUcacheWith(name string, cfg func(ways int) core.Config) PolicySpec {
	return PolicySpec{
		Name: name,
		New: func(_, ways int) cache.Policy {
			return core.MustNew(cfg(ways))
		},
		Wire: func(_, ways int) *PolicyWire {
			c := cfg(ways)
			return &PolicyWire{Kind: "nucache", NU: &c}
		},
	}
}

// Competitors returns the cache-partitioning policies the paper compares
// against: UCP, PIPP and TADIP.
func Competitors() []PolicySpec {
	wire := func(kind string) func(int, int) *PolicyWire {
		return func(int, int) *PolicyWire { return &PolicyWire{Kind: kind} }
	}
	return []PolicySpec{
		{Name: "UCP", New: func(cores, ways int) cache.Policy {
			return policy.NewUCP(cores, ways)
		}, Wire: wire("ucp")},
		{Name: "PIPP", New: func(cores, ways int) cache.Policy {
			return policy.NewPIPP(cores, ways, 12345)
		}, Wire: wire("pipp")},
		{Name: "TADIP", New: func(cores, _ int) cache.Policy {
			return policy.NewTADIP(cores, 12345)
		}, Wire: wire("tadip")},
	}
}

// StandardPolicies is baseline + NUcache + competitors, the lineup of the
// multicore comparison figures.
func StandardPolicies() []PolicySpec {
	return append([]PolicySpec{Baseline(), NUcacheSpec()}, Competitors()...)
}

// machine returns the simulated machine for a core count with the
// experiment budget applied.
func (o Options) machine(cores int) cpu.Config {
	cfg := cpu.DefaultConfig(cores)
	cfg.InstrBudget = o.Budget
	cfg.PrefetchDegree = o.PrefetchDegree
	if o.UseDRAM {
		d := memory.DefaultConfig()
		cfg.DRAM = &d
	}
	return cfg
}

// runMix simulates one mix under one policy and returns per-core
// results. It goes through sim.RunMachine, so the policy-independent
// front end is recorded once per (benchmark, seed, geometry) and
// replayed per policy — bit-identical to direct simulation — and
// retired-instruction accounting happens exactly once per computed run.
func (o Options) runMix(m workload.Mix, spec PolicySpec) []cpu.CoreResult {
	cfg := o.machine(m.Cores())
	res, _, _ := sim.RunMachine(cfg, func() cache.Policy {
		return spec.New(cfg.Cores, cfg.LLC.Ways)
	}, m, o.Seed, o.DisableReplay)
	return res
}

// runAlone simulates one benchmark alone on the same machine geometry
// (the denominator of weighted speedup). Results are memoized per
// (benchmark, LLC size, budget, seed). Entries carry a sync.Once so
// concurrent grid workers needing the same alone run compute it exactly
// once without holding the map lock across a simulation.
type aloneKey struct {
	bench    string
	llcSize  int
	budget   uint64
	seed     uint64
	prefetch int
	dram     bool
}

type aloneEntry struct {
	once sync.Once
	ipc  float64
}

var (
	aloneMu    sync.Mutex
	aloneCache = map[aloneKey]*aloneEntry{}
)

func (o Options) aloneIPC(bench string, cores int) float64 {
	cfg := o.machine(cores)
	cfg.Cores = 1
	key := aloneKey{
		bench: bench, llcSize: cfg.LLC.SizeBytes,
		budget: o.Budget, seed: o.Seed, prefetch: o.PrefetchDegree,
		dram: o.UseDRAM,
	}
	aloneMu.Lock()
	e, ok := aloneCache[key]
	if !ok {
		e = &aloneEntry{}
		aloneCache[key] = e
	}
	aloneMu.Unlock()
	e.once.Do(func() {
		// A single-member mix at position 0 derives the same stream seed
		// as the shared-mode run, so when some mix leads with this
		// benchmark the alone run replays the very tape that mix
		// recorded. OneShot: an alone run replays once, so recording a
		// fresh tape for it would cost more than simulating directly.
		alone := workload.Mix{Name: "alone/" + bench, Members: []string{bench}}
		res, _, _ := sim.RunMachineOneShot(cfg, func() cache.Policy {
			return policy.NewLRU()
		}, alone, o.Seed, o.DisableReplay)
		e.ipc = res[0].IPC()
	})
	return e.ipc
}

// MixMetrics summarizes one (mix, policy) run.
type MixMetrics struct {
	// IPC is the per-core shared-mode IPC.
	IPC []float64
	// WS is weighted speedup vs alone runs.
	WS float64
	// ANTT is average normalized turnaround time (lower is better).
	ANTT float64
	// HS is the harmonic mean of speedups.
	HS float64
	// Fairness is min/max speedup.
	Fairness float64
	// MPKI is the aggregate LLC misses per kilo-instruction.
	MPKI float64
}

func (o Options) mixMetrics(m workload.Mix, spec PolicySpec) MixMetrics {
	return o.metricsFromResults(m, o.runMix(m, spec))
}

// metricsFromResults scores one mix's per-core results against its
// alone runs — the policy-independent tail of mixMetrics, shared with
// the one-pass grid path (computeRow), which produces the per-core
// results for a whole policy row at once.
func (o Options) metricsFromResults(m workload.Mix, res []cpu.CoreResult) MixMetrics {
	shared := make([]float64, len(res))
	var misses, instr uint64
	for i, r := range res {
		shared[i] = r.IPC()
		misses += r.LLCMisses
		instr += r.Instructions
	}
	alone := make([]float64, len(res))
	for i, name := range m.Members {
		alone[i] = o.aloneIPC(name, m.Cores())
	}
	mm := MixMetrics{
		IPC:      shared,
		WS:       metrics.WeightedSpeedup(shared, alone),
		ANTT:     metrics.ANTT(shared, alone),
		HS:       metrics.HarmonicSpeedup(shared, alone),
		Fairness: metrics.Fairness(shared, alone),
	}
	if instr > 0 {
		mm.MPKI = 1000 * float64(misses) / float64(instr)
	}
	return mm
}

// rowEntry shares one policy row's evaluation among its cell jobs: the
// first cell of (mix, shape) to run computes every still-uncached lane
// of the row in a single tape walk; sibling cells then read their lane.
type rowEntry struct {
	once sync.Once
	mm   []*MixMetrics // per spec; nil = not computed by the row pass
}

// rowMetrics returns cell (m, specs[j]) via the shared row pass. Lanes
// the row pass skipped (cached when it ran, or lost a race with another
// grid) fall back to a plain single-cell evaluation — bit-identical,
// just without the sharing.
func (o Options) rowMetrics(row *rowEntry, m workload.Mix, specs []PolicySpec, j int, lanes sim.LaneBudget) MixMetrics {
	row.once.Do(func() { o.computeRow(row, m, specs, lanes) })
	if mm := row.mm[j]; mm != nil {
		return *mm
	}
	return o.mixMetrics(m, specs[j])
}

// computeRow evaluates every uncached lane of one (mix, machine shape)
// policy row through sim.RunMachineGrid — one multi-policy replay job
// instead of len(specs) single-policy ones. Cells already in the grid
// cache are carved out (the scheduler serves them without running their
// jobs); a lane's scoring matches mixMetrics exactly.
func (o Options) computeRow(row *rowEntry, m workload.Mix, specs []PolicySpec, lanes sim.LaneBudget) {
	row.mm = make([]*MixMetrics, len(specs))
	cfg := o.machine(m.Cores())
	newPols := make([]func() cache.Policy, len(specs))
	live := 0
	for j, s := range specs {
		var cached MixMetrics
		if gridCache.Get(o.mixKey(m, s), &cached) {
			continue
		}
		// Lanes active on a remote worker (or already completed there)
		// are carved out like cached lanes; their cell jobs resolve
		// through the coordinator, falling back to a single-cell local
		// evaluation only if the remote lease dies.
		if o.Fabric != nil && !o.Fabric.ClaimLocal(o.mixKey(m, s)) {
			continue
		}
		s := s
		newPols[j] = func() cache.Policy { return s.New(cfg.Cores, cfg.LLC.Ways) }
		live++
	}
	if live == 0 {
		return
	}
	res, _, _ := sim.RunMachineGrid(cfg, newPols, m, o.Seed,
		o.DisableReplay, o.DisableMultiReplay, lanes)
	for j := range specs {
		if res[j] == nil {
			continue
		}
		mm := o.metricsFromResults(m, res[j])
		row.mm[j] = &mm
	}
}

// gridCache memoizes MixMetrics across experiments in this process,
// keyed by everything that determines them. Repeated sweeps (every
// sensitivity study re-runs the LRU baseline on the same mixes) hit
// instead of re-simulating.
var gridCache = sim.NewCache(8192, "")

// mixKey is the content address of one (mix, policy) evaluation. Policy
// names are part of the address: every PolicySpec in this package encodes
// its distinguishing parameters in its name (e.g. "D=4", "epoch=50k"),
// which keeps closure-built specs hashable.
func (o Options) mixKey(m workload.Mix, spec PolicySpec) string {
	return strings.Join([]string{
		"mixmetrics/v1",
		"policy=" + spec.Name,
		"mix=" + m.Name,
		"members=" + strings.Join(m.Members, "+"),
		fmt.Sprintf("budget=%d", o.Budget),
		fmt.Sprintf("seed=%d", o.Seed),
		fmt.Sprintf("prefetch=%d", o.PrefetchDegree),
		fmt.Sprintf("dram=%v", o.UseDRAM),
	}, "|")
}

// cellRecord is one checkpoint journal entry. Completion records (Type
// empty) address a finished grid cell by content key and carry exactly
// the JSON the result cache stores — resume seeds the cache with Val
// verbatim, so a resumed sweep is byte-identical to an uninterrupted
// one. Worker annotates completions computed by a remote fabric worker
// (empty for local cells). Records with a non-empty Type are fabric
// events ("fabric.lease", "fabric.expire", ...): an audit trail of
// assignments that resume replays but does not act on — a lease held
// when the coordinator died proves nothing about the cell.
type cellRecord struct {
	Type   string          `json:"type,omitempty"`
	Key    string          `json:"key,omitempty"`
	Val    json.RawMessage `json:"val,omitempty"`
	Worker string          `json:"worker,omitempty"`
}

// journalValue checkpoints one computed cell of any JSON-serializable
// type (MixMetrics grids, advisor ProfileCells). Best effort: a journal
// failure costs only a recompute on resume, never the sweep.
func (o Options) journalValue(key string, v any) {
	if o.Journal == nil {
		return
	}
	val, err := json.Marshal(v)
	if err == nil {
		var rec []byte
		if rec, err = json.Marshal(cellRecord{Key: key, Val: val}); err == nil {
			err = o.Journal.Append(rec)
		}
	}
	if err != nil {
		slog.Warn("experiments: journal checkpoint failed", "key", key, "err", err)
	}
}

// journalRemoteCell checkpoints a verified fabric completion: the same
// completion record a local cell writes — Val is the worker's payload
// verbatim, which is also exactly what the grid cache now holds — plus
// the worker attribution. Exactly one completion record exists per
// cell: remote cells are journaled here (the local job then sees a
// cache hit and never runs), local cells via journalValue.
func journalRemoteCell(jnl *journal.Journal, key string, payload []byte) {
	if jnl == nil {
		return
	}
	rec, err := json.Marshal(cellRecord{Key: key, Val: payload, Worker: "fabric"})
	if err == nil {
		err = jnl.Append(rec)
	}
	if err != nil {
		slog.Warn("experiments: journal remote checkpoint failed", "key", key, "err", err)
	}
}

// journalFabricEvent appends one fabric state transition as a
// skippable annotation record.
func journalFabricEvent(jnl *journal.Journal, ev fabric.Event) {
	if jnl == nil {
		return
	}
	rec, err := json.Marshal(cellRecord{Type: "fabric." + ev.Type, Key: ev.Key, Worker: ev.Worker})
	if err == nil {
		err = jnl.Append(rec)
	}
	if err != nil {
		slog.Warn("experiments: journal fabric event failed", "event", ev.Type, "err", err)
	}
}

// OpenSweepJournal opens the checkpoint journal at path. With
// resume=false it starts fresh (truncating any prior journal). With
// resume=true it replays the journal — tolerating a torn final record
// from a crash mid-append — and seeds the in-process grid cache with
// every completed cell, so the resumed sweep serves them as cache hits
// instead of recomputing. It returns the journal positioned for further
// appends and the number of cells resumed.
func OpenSweepJournal(path string, resume bool) (*journal.Journal, int, error) {
	if !resume {
		j, err := journal.Create(path)
		return j, 0, err
	}
	seeded := 0
	j, err := journal.Open(path, func(rec []byte) error {
		var cell cellRecord
		if err := json.Unmarshal(rec, &cell); err != nil {
			return fmt.Errorf("experiments: corrupt journal cell: %w", err)
		}
		if cell.Type != "" {
			// Fabric event annotation: audit trail only. A lease or
			// expiry held when the coordinator died does not complete a
			// cell; only completion records seed the cache.
			return nil
		}
		gridCache.PutEncoded(cell.Key, cell.Val)
		seeded++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return j, seeded, nil
}

// mixMetricsGrid evaluates every (mix, spec) pair through the shared
// scheduler: grid[i][j] pairs mixes[i] with specs[j]. Pairs run
// concurrently on up to Options.Parallel workers but are collected in
// submission order, and each pair is an independent deterministic
// simulation, so the grid is identical to nested sequential mixMetrics
// calls. Simulation panics surface as panics, as they would sequentially.
// When Options.Ctx is cancelled mid-grid the remaining cells error out
// and the grid returns nil (completed cells are already checkpointed);
// any other cell failure still panics.
func (o Options) mixMetricsGrid(mixes []workload.Mix, specs []PolicySpec) [][]MixMetrics {
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// Deadlines pass through to every pair; the queue stays unbounded
	// because the grid submits all pairs up front by design.
	sched := sim.NewSchedulerWith(sim.SchedulerConfig{
		Workers:        o.Parallel,
		Cache:          gridCache,
		DefaultTimeout: o.JobTimeout,
	})
	// One rowEntry per mix: the first cell job of a row to run evaluates
	// the row's uncached lanes in a single multi-policy tape walk
	// (computeRow); its siblings block on the once and then just read
	// their lane. Cells stay the unit of scheduling, caching and
	// journaling — each cell job still journals exactly its own cell —
	// so resume and chaos behavior are unchanged.
	rows := make([]rowEntry, len(mixes))
	// The scheduler doubles as the lane budget: a row job holding one
	// worker slot borrows idle slots to step its replay lanes in
	// parallel, so lanes and cell jobs share the same Workers() bound.
	var lanes sim.LaneBudget
	if !o.DisableLaneParallel {
		lanes = sched
	}
	// With a fabric pool attached, offer every uncached wire-able cell
	// for remote lease before submitting the local jobs. The local
	// scheduler consumes the grid front-to-back while workers lease from
	// the back of this offer order — the two meet in the middle.
	if o.Fabric != nil {
		var cells []fabric.Cell
		for _, m := range mixes {
			for _, s := range specs {
				if gridCache.Contains(o.mixKey(m, s)) {
					o.Fabric.MarkDone(o.mixKey(m, s))
					continue
				}
				if cell, ok := o.cellFor(m, s); ok {
					cells = append(cells, cell)
				}
			}
		}
		o.Fabric.Offer(cells)
	}
	jobs := make([]sim.Job, 0, len(mixes)*len(specs))
	for i, m := range mixes {
		for j, s := range specs {
			i, j, m, s := i, j, m, s
			key := o.mixKey(m, s)
			jobs = append(jobs, sim.Job{
				Key:   key,
				Label: fmt.Sprintf("%s under %s", m.Name, s.Name),
				New:   func() any { return new(MixMetrics) },
				Run: func(ctx context.Context) (any, error) {
					// A fabric-distributed cell resolves through the
					// coordinator first: done remotely ⇒ adopt the
					// verified payload (already journaled by the
					// coordinator's sink); leased ⇒ wait it out; anything
					// else ⇒ claimed for the local path below.
					if o.Fabric != nil {
						if payload, remote := o.Fabric.AwaitOrClaim(ctx, key); remote {
							var mm MixMetrics
							if err := json.Unmarshal(payload, &mm); err == nil {
								return &mm, nil
							}
							// Version skew in a verified payload: fall
							// through and recompute locally.
						}
						if err := ctx.Err(); err != nil {
							return nil, err
						}
					}
					var mm MixMetrics
					if o.DisableMultiReplay {
						mm = o.mixMetrics(m, s)
					} else {
						mm = o.rowMetrics(&rows[i], m, specs, j, lanes)
					}
					o.journalValue(key, &mm)
					return &mm, nil
				},
			})
		}
	}
	outs := sched.RunAll(ctx, jobs)
	grid := make([][]MixMetrics, len(mixes))
	k := 0
	for i := range mixes {
		grid[i] = make([]MixMetrics, len(specs))
		for j := range specs {
			out := outs[k]
			k++
			if out.Err != nil {
				if ctx.Err() != nil {
					// Interrupted, not broken: the caller reports the
					// partial sweep and points at -resume.
					return nil
				}
				panic(fmt.Sprintf("experiments: %s under %s: %v",
					mixes[i].Name, specs[j].Name, out.Err))
			}
			grid[i][j] = *out.Value.(*MixMetrics)
		}
	}
	return grid
}

// fmtPC renders a core-tagged PC the way the harness prints them.
func fmtPC(pc uint64) string {
	core := pc >> 48
	if core != 0 {
		return fmt.Sprintf("c%d:%#x", core, pc&(1<<48-1))
	}
	return fmt.Sprintf("%#x", pc)
}
