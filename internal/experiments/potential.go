package experiments

import (
	"nucache/internal/cpu"
	"nucache/internal/metrics"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

// PotentialRow is one benchmark's headroom measurement: LRU vs NUcache vs
// Belady's OPT on the same LLC reference stream.
type PotentialRow struct {
	Bench     string
	LRUMisses uint64
	NUMisses  uint64
	OPTMisses uint64
	// OPTReduction is the fraction of LRU misses OPT removes (headroom).
	OPTReduction float64
	// NUCaptured is the fraction of that headroom NUcache captures.
	NUCaptured float64
}

// PotentialResult holds E3 (headroom) and E14 (captured fraction).
type PotentialResult struct {
	Rows []PotentialRow
}

// Potential runs experiments E3/E14. Because the private L1 filters
// accesses independently of the LLC policy, the LLC reference stream is
// recorded once (under LRU) and replayed under Belady's OPT for an exact
// offline-optimal miss count on the identical stream.
func Potential(o Options) *PotentialResult {
	o = o.withDefaults()
	res := &PotentialResult{}
	for _, b := range o.benchmarks() {
		cfg := o.machine(1)

		// Pass 1: LRU with a recorder capturing the LLC line stream.
		rec := policy.NewRecorder(policy.NewLRU())
		sys := cpu.NewSystem(cfg, rec, []trace.Stream{b.Stream(o.Seed)})
		lru := sys.Run()[0]

		// Pass 2: OPT over the recorded stream (same budget → same stream).
		opt := policy.NewOPT(policy.NextUseChain(rec.LineAddrs))
		sysOpt := cpu.NewSystem(cfg, opt, []trace.Stream{b.Stream(o.Seed)})
		optRes := sysOpt.Run()[0]

		// Pass 3: NUcache.
		sysNU := cpu.NewSystem(cfg, NUcacheSpec().New(1, cfg.LLC.Ways),
			[]trace.Stream{b.Stream(o.Seed)})
		nu := sysNU.Run()[0]

		row := PotentialRow{
			Bench:     b.Name,
			LRUMisses: lru.LLCMisses,
			NUMisses:  nu.LLCMisses,
			OPTMisses: optRes.LLCMisses,
		}
		if lru.LLCMisses > 0 {
			headroom := float64(lru.LLCMisses) - float64(optRes.LLCMisses)
			row.OPTReduction = headroom / float64(lru.LLCMisses)
			if headroom > 0 {
				row.NUCaptured = (float64(lru.LLCMisses) - float64(nu.LLCMisses)) / headroom
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders E3/E14.
func (r *PotentialResult) Table() *metrics.Table {
	t := metrics.NewTable("E3/E14: retention headroom — LRU vs NUcache vs Belady OPT (LLC misses)",
		"benchmark", "LRU", "NUcache", "OPT", "OPT reduction", "NU captured")
	for _, row := range r.Rows {
		t.AddRow(row.Bench,
			u64(row.LRUMisses), u64(row.NUMisses), u64(row.OPTMisses),
			metrics.F2(row.OPTReduction), metrics.F2(row.NUCaptured))
	}
	return t
}
