package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"nucache/internal/core"
	"nucache/internal/cpu"
	"nucache/internal/metrics"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// observeBench runs one benchmark alone under a retention-disabled NUcache
// (pure LRU behaviour) with an effectively infinite epoch, so the Next-Use
// monitor accumulates the whole run — the setup behind the paper's
// characterization figures.
func (o Options) observeBench(b workload.Benchmark) *core.NUcache {
	cfg := o.machine(1)
	nuCfg := core.DefaultConfig(cfg.LLC.Ways)
	nuCfg.DeliWays = 0
	nuCfg.EpochMisses = math.MaxUint64 / 2
	nuCfg.Candidates = 64
	nu := core.MustNew(nuCfg)
	sys := cpu.NewSystem(cfg, nu, []trace.Stream{b.Stream(o.Seed)})
	sys.Run()
	return nu
}

// DelinquencyRow is one benchmark's miss-skew measurement.
type DelinquencyRow struct {
	Bench       string
	TotalMisses uint64
	// TopK[k] is the fraction of all LLC misses produced by the k most
	// delinquent PCs, for k in {1, 5, 10, 20}.
	Top1, Top5, Top10, Top20 float64
	// PCs is the number of distinct missing PCs observed.
	PCs int
}

// DelinquencyResult holds E1.
type DelinquencyResult struct {
	Rows []DelinquencyRow
}

// Delinquency runs experiment E1: how concentrated are LLC misses across
// static PCs? (The paper's motivating observation: a handful of
// delinquent PCs cause most misses.)
func Delinquency(o Options) *DelinquencyResult {
	o = o.withDefaults()
	res := &DelinquencyResult{}
	for _, b := range o.benchmarks() {
		nu := o.observeBench(b)
		mon := nu.Monitor()
		top := mon.TopCandidates(64)
		total := mon.TotalMisses()
		row := DelinquencyRow{Bench: b.Name, TotalMisses: total, PCs: len(top)}
		if total > 0 {
			var cum uint64
			for i, p := range top {
				cum += p.Misses
				switch i + 1 {
				case 1:
					row.Top1 = float64(cum) / float64(total)
				case 5:
					row.Top5 = float64(cum) / float64(total)
				case 10:
					row.Top10 = float64(cum) / float64(total)
				case 20:
					row.Top20 = float64(cum) / float64(total)
				}
			}
			// Fill trailing ks when fewer PCs exist than the threshold.
			frac := float64(cum) / float64(total)
			if len(top) < 5 {
				row.Top5 = frac
			}
			if len(top) < 10 {
				row.Top10 = frac
			}
			if len(top) < 20 {
				row.Top20 = frac
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders E1.
func (r *DelinquencyResult) Table() *metrics.Table {
	t := metrics.NewTable("E1: delinquent-PC miss skew (fraction of LLC misses from top-k PCs)",
		"benchmark", "misses", "PCs", "top-1", "top-5", "top-10", "top-20")
	for _, row := range r.Rows {
		t.AddRow(row.Bench,
			strconv.FormatUint(row.TotalMisses, 10),
			strconv.Itoa(row.PCs),
			metrics.F2(row.Top1), metrics.F2(row.Top5), metrics.F2(row.Top10), metrics.F2(row.Top20))
	}
	return t
}

// NextUseRow describes one delinquent PC's next-use distance profile.
type NextUseRow struct {
	Bench         string
	PC            uint64
	Misses        uint64
	Reuses        uint64
	Mean          float64
	P25, P50, P75 uint64
	// Within64 is the fraction of observed distances <= 64 per-set misses
	// (comfortably coverable by DeliWays).
	Within64 float64
}

// NextUseResult holds E2.
type NextUseResult struct {
	Rows []NextUseRow
}

// NextUseProfile runs experiment E2: per-delinquent-PC next-use distance
// distributions (the paper's DelinquentPC → Next-Use characteristic:
// distances cluster per PC).
func NextUseProfile(o Options) *NextUseResult {
	o = o.withDefaults()
	res := &NextUseResult{}
	for _, b := range o.benchmarks() {
		nu := o.observeBench(b)
		for _, p := range nu.Monitor().TopCandidates(5) {
			row := NextUseRow{
				Bench:  b.Name,
				PC:     p.PC,
				Misses: p.Misses,
				Reuses: p.NextUse.Total(),
				Mean:   p.NextUse.Mean(),
				P25:    p.NextUse.Quantile(0.25),
				P50:    p.NextUse.Quantile(0.50),
				P75:    p.NextUse.Quantile(0.75),
			}
			if p.NextUse.Total() > 0 {
				row.Within64 = float64(p.NextUse.CountAtMost(64)) / float64(p.NextUse.Total())
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Table renders E2.
func (r *NextUseResult) Table() *metrics.Table {
	t := metrics.NewTable("E2: Next-Use distance profile of top delinquent PCs (per-set misses)",
		"benchmark", "pc", "misses", "reuses", "mean", "p25", "p50", "p75", "<=64")
	for _, row := range r.Rows {
		t.AddRow(row.Bench, fmtPC(row.PC),
			strconv.FormatUint(row.Misses, 10), strconv.FormatUint(row.Reuses, 10),
			metrics.F2(row.Mean),
			strconv.FormatUint(row.P25, 10), strconv.FormatUint(row.P50, 10), strconv.FormatUint(row.P75, 10),
			metrics.F2(row.Within64))
	}
	return t
}

// DumpHistograms writes each selected benchmark's top delinquent PCs'
// raw next-use histograms — the per-PC distribution detail behind E2.
func DumpHistograms(o Options, w io.Writer) {
	o = o.withDefaults()
	for _, b := range o.benchmarks() {
		nu := o.observeBench(b)
		fmt.Fprintf(w, "%s:\n", b.Name)
		for _, p := range nu.Monitor().TopCandidates(8) {
			fmt.Fprintf(w, "  %s misses=%d demotions=%d %s\n",
				fmtPC(p.PC), p.Misses, p.Demotions, p.NextUse)
		}
	}
}
