package experiments

import (
	"context"
	"fmt"

	"nucache/internal/mrc"
	"nucache/internal/sim"
	"nucache/internal/workload"
)

// ProfileCell is one mix's capacity-advisor summary: the even-split
// baseline the hardware would get without guidance, the model's best
// static partition, and its best NUcache DeliWays split. The cell is a
// journaled, content-addressed unit — a crashed profile sweep resumes
// past completed mixes exactly like a simulation sweep does.
type ProfileCell struct {
	BestAlloc      []int   `json:"best_alloc"`
	EvenThroughput float64 `json:"even_throughput"`
	BestThroughput float64 `json:"best_throughput"`
	BestDeliWays   int     `json:"best_deliways"`
	DeliThroughput float64 `json:"deli_throughput"`
	// Evaluated counts model evaluations behind the partition search —
	// the work the advisor did instead of that many simulations.
	Evaluated int `json:"evaluated"`
}

// profileCellKey is the content address of one mix's advisor cell.
func (o Options) profileCellKey(m workload.Mix) string {
	return "profileadvisor/v1|" + sim.ProfileRequest{
		Mix: m.Name, Budget: o.Budget, Seed: o.Seed,
		Prefetch: o.PrefetchDegree, DRAM: o.UseDRAM,
	}.Canonical()
}

// ProfileAdvisorSweep runs experiment E21: profile every 4-core mix once
// (through the mrc.profile.build failpoint, so the chaos suite can kill
// and resume it), then answer the partition search from the model alone.
// The reported point is the advisor's predicted throughput gain of its
// best static partition over the even split.
func ProfileAdvisorSweep(o Options) *SweepResult {
	o = o.withDefaults()
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	mixes := o.mixes(4)
	sched := sim.NewSchedulerWith(sim.SchedulerConfig{
		Workers:        o.Parallel,
		Cache:          gridCache,
		DefaultTimeout: o.JobTimeout,
	})
	jobs := make([]sim.Job, 0, len(mixes))
	for _, m := range mixes {
		m := m
		key := o.profileCellKey(m)
		jobs = append(jobs, sim.Job{
			Key:   key,
			Label: "advisor over " + m.Name,
			New:   func() any { return new(ProfileCell) },
			Run: func(ctx context.Context) (any, error) {
				req := sim.ProfileRequest{
					Mix: m.Name, Budget: o.Budget, Seed: o.Seed,
					Prefetch: o.PrefetchDegree, DRAM: o.UseDRAM,
				}
				p, err := sim.ExecuteProfile(ctx, req)
				if err != nil {
					return nil, err
				}
				even, err := mrc.Predict(p, mrc.WhatIf{Policy: mrc.PolicyPart})
				if err != nil {
					return nil, err
				}
				best, err := mrc.BestPartition(p)
				if err != nil {
					return nil, err
				}
				bestD, err := mrc.BestDeliWays(p)
				if err != nil {
					return nil, err
				}
				cell := &ProfileCell{
					BestAlloc:      best.Alloc,
					EvenThroughput: even.Throughput,
					BestThroughput: best.Throughput,
					BestDeliWays:   bestD.DeliWays,
					DeliThroughput: bestD.Throughput,
					Evaluated:      best.Evaluated + bestD.Evaluated,
				}
				o.journalValue(key, cell)
				return cell, nil
			},
		})
	}
	outs := sched.RunAll(ctx, jobs)
	res := &SweepResult{
		ID:     21,
		Title:  "E21 (extension): capacity advisor, best static partition vs even split (4-core mixes)",
		Column: "advisor partition gain",
	}
	for i, m := range mixes {
		out := outs[i]
		if out.Err != nil {
			if ctx.Err() != nil {
				// Interrupted, not broken: completed cells are journaled.
				return nil
			}
			panic(fmt.Sprintf("experiments: advisor over %s: %v", m.Name, out.Err))
		}
		c := out.Value.(*ProfileCell)
		ratio := 0.0
		if c.EvenThroughput > 0 {
			ratio = c.BestThroughput / c.EvenThroughput
		}
		res.Points = append(res.Points, SweepPoint{
			Label:   fmt.Sprintf("%s best=%v D*=%d", m.Name, c.BestAlloc, c.BestDeliWays),
			Geomean: ratio,
		})
	}
	return res
}
