package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"nucache/internal/core"
	"nucache/internal/fabric"
)

// TestGridExecutorByteIdenticalToLocal is the fabric's core correctness
// property at the cell level: the remote executor, fed a cell's wire
// spec, must produce exactly the bytes the local path would cache and
// journal for that cell — for every policy kind in the standard lineup
// plus a closure-built sweep variant.
func TestGridExecutorByteIdenticalToLocal(t *testing.T) {
	o := Options{Budget: 50_000, Seed: 7}.withDefaults()
	m := o.mixes(2)[0]
	specs := append(StandardPolicies(), NUcacheWith("D=4", func(ways int) core.Config {
		cfg := core.DefaultConfig(ways)
		cfg.DeliWays = 4
		return cfg
	}))

	exec := GridExecutor()
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			local := o.mixMetrics(m, spec)
			want, err := json.Marshal(&local)
			if err != nil {
				t.Fatal(err)
			}
			cell, ok := o.cellFor(m, spec)
			if !ok {
				t.Fatalf("policy %s has no wire form", spec.Name)
			}
			got, err := exec(context.Background(), cell.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("remote payload differs from local bytes:\nremote %s\nlocal  %s", got, want)
			}
		})
	}
}

// TestGridExecutorRejectsBadSpecs: malformed cells error out instead of
// panicking the worker.
func TestGridExecutorRejectsBadSpecs(t *testing.T) {
	exec := GridExecutor()
	for name, spec := range map[string]string{
		"not json":      `{{{`,
		"no wire":       `{"mix":"mix2-01","members":["art-like","mcf-like"],"budget":50000,"seed":1}`,
		"no members":    `{"mix":"x","wire":{"kind":"lru"},"budget":50000,"seed":1}`,
		"unknown bench": `{"mix":"x","members":["no-such-bench"],"wire":{"kind":"lru"},"budget":50000,"seed":1}`,
		"unknown kind":  `{"mix":"mix2-01","members":["art-like","mcf-like"],"wire":{"kind":"mystery"},"budget":50000,"seed":1}`,
		"nucache no nu": `{"mix":"mix2-01","members":["art-like","mcf-like"],"wire":{"kind":"nucache"},"budget":50000,"seed":1}`,
	} {
		if _, err := exec(context.Background(), json.RawMessage(spec)); err == nil {
			t.Errorf("%s: executor accepted a bad spec", name)
		}
	}
}

// TestDistributedGridMatchesDirect runs a policy grid with a live
// coordinator + two in-process fabric workers and requires the grid to
// equal a direct (fabric-free) evaluation of every cell. A distinct
// seed keeps the process-global grid cache from short-circuiting the
// distribution.
func TestDistributedGridMatchesDirect(t *testing.T) {
	o := Options{Budget: 50_000, Seed: 4242, MixLimit: 2, Parallel: 2}.withDefaults()
	mixes := o.mixes(4)
	specs := []PolicySpec{Baseline(), NUcacheSpec()}

	co := NewSweepCoordinator(o, FabricConfig{
		LeaseTTL:  10 * time.Second,
		Heartbeat: 50 * time.Millisecond,
	})
	t.Cleanup(co.Close)
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < 2; i++ {
		w := fabric.NewWorker(srv.URL, fabric.WorkerConfig{
			Name:      fmt.Sprintf("exp-test-%d", i),
			Executors: map[string]fabric.Executor{CellKindGrid: GridExecutor()},
		})
		go w.Run(ctx)
	}

	o.Fabric = co
	grid := o.mixMetricsGrid(mixes, specs)
	if grid == nil {
		t.Fatal("distributed grid returned nil")
	}

	direct := o // same options, no fabric
	direct.Fabric = nil
	for i, m := range mixes {
		for j, s := range specs {
			want := direct.mixMetrics(m, s)
			if !reflect.DeepEqual(grid[i][j], want) {
				t.Errorf("%s under %s: distributed %+v != direct %+v", m.Name, s.Name, grid[i][j], want)
			}
		}
	}
}

// TestPolicyWireRoundTrip: every standard spec's wire form rebuilds a
// policy, and a closure-built sweep variant resolves its closure into a
// concrete config on the wire.
func TestPolicyWireRoundTrip(t *testing.T) {
	for _, spec := range StandardPolicies() {
		pw := spec.Wire(4, 16)
		if pw == nil {
			t.Fatalf("%s: nil wire", spec.Name)
		}
		if _, err := pw.Build(4, 16); err != nil {
			t.Fatalf("%s: build: %v", spec.Name, err)
		}
	}
	v := NUcacheWith("D=4", func(ways int) core.Config {
		cfg := core.DefaultConfig(ways)
		cfg.DeliWays = 4
		return cfg
	})
	pw := v.Wire(4, 16)
	if pw == nil || pw.Kind != "nucache" || pw.NU == nil || pw.NU.DeliWays != 4 {
		t.Fatalf("sweep variant wire = %+v, want resolved nucache config with DeliWays 4", pw)
	}
	if _, err := pw.Build(4, 16); err != nil {
		t.Fatal(err)
	}
}
