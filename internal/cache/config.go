// Package cache implements a set-associative cache model with pluggable
// replacement policies. It models tags, per-line metadata and replacement
// state but not data contents; the simulator only needs hit/miss behaviour
// and eviction traffic.
//
// The policy surface is deliberately wide: policies own the logical
// organization of each set (LRU stacks, RRPV counters, FIFO regions, way
// quotas, ...) through per-set state, while the cache owns the physical
// lines and the bookkeeping that is common to every policy (lookup,
// install, dirty tracking, statistics).
package cache

import "fmt"

// Config describes a cache's geometry and identity.
type Config struct {
	// Name appears in statistics output ("L1D-0", "LLC", ...).
	Name string
	// SizeBytes is the total capacity. Must be Ways*LineBytes*power-of-two.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size; must be a power of two.
	LineBytes int
	// Cores is the number of cores whose accesses reach this cache;
	// used to size per-core statistics. Zero means 1.
	Cores int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	return c.SizeBytes / (c.Ways * c.LineBytes)
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: non-positive geometry %+v", c.Name, c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Ways > 64 {
		// The per-set valid bitmask (and WayList's int8 entries) bound
		// the modelled associativity.
		return fmt.Errorf("cache %q: associativity %d exceeds the supported 64 ways", c.Name, c.Ways)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %q: size %d not divisible by ways*line (%d*%d)",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.Sets()
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

func log2(v int) uint {
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
