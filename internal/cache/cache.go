package cache

import (
	"fmt"
	"math/bits"

	"nucache/internal/trace"
)

// Policy is a replacement policy plugged into a Cache.
//
// The cache calls exactly one of OnHit or (Victim, OnInsert) per access.
// Policies own per-set logical state (allocated by NewSetState) and may
// reorganize it freely inside Victim — e.g. NUcache logically moves a
// MainWays victim into the DeliWays region before returning the way whose
// previous occupant actually leaves the cache.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// NewSetState allocates per-set state; nil is allowed.
	NewSetState(setIndex int) SetState
	// OnHit is invoked when req hits in way.
	OnHit(set *Set, way int, req *Request)
	// Victim returns the way to fill for the missing req, or a negative
	// way to bypass the fill entirely. If the returned way holds a valid
	// line, that line is evicted by the cache.
	Victim(set *Set, req *Request) int
	// OnInsert is invoked after the cache installs req's line at way.
	OnInsert(set *Set, way int, req *Request)
}

// AccessObserver is an optional Policy extension invoked for every access
// before lookup; monitoring structures (UCP's UMON, NUcache's Next-Use
// monitor) use it to see the unfiltered request stream.
type AccessObserver interface {
	ObserveAccess(setIndex int, tag uint64, req *Request)
}

// EvictionObserver is an optional Policy extension invoked when a valid
// line leaves the cache (replaced or invalidated).
type EvictionObserver interface {
	ObserveEviction(setIndex int, line Line)
}

// Stats aggregates cache activity. Per-core slices are sized by
// Config.Cores.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Bypasses   uint64

	CoreAccesses []uint64
	CoreHits     []uint64
	CoreMisses   []uint64
}

// HitRate returns hits/accesses (0 for an idle cache).
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache with a pluggable replacement policy.
type Cache struct {
	cfg        Config
	sets       []Set
	policy     Policy
	obs        AccessObserver   // non-nil iff policy observes accesses
	evictObs   EvictionObserver // non-nil iff policy observes evictions
	offsetBits uint
	indexMask  uint64
	ways       int // == cfg.Ways, hoisted out of the access path
	seq        uint64

	// tags mirrors the per-line Tag fields in a dense layout for the
	// access-path lookup: scanning 8 bytes per way instead of a full
	// 32-byte Line keeps the whole search inside one or two cache lines.
	// Valid flags are mirrored in each Set's validMask. Only Access and
	// Invalidate mutate either mirror (policies own Meta but never Tag
	// or Valid), so they cannot drift.
	tags []uint64 // sets*ways, indexed set*ways+way

	// ptags is the SWAR prefilter in front of the tags mirror: one
	// 8-bit partial tag per way, eight ways per word, so lookup can
	// compare a whole set (up to 8 ways) in a couple of word ops and
	// confirm only the matching bytes against full tags. Invariant,
	// maintained by the same two mutators as the mirrors above but only
	// while swar is set (narrow caches never read the filter, so they
	// skip the upkeep store per fill): for every way with its validMask
	// bit set, the byte at ptags[set*pwords+way/8], lane way%8, equals
	// uint8(Tag>>pshift); invalid ways hold 0. pshift skips the
	// set-index bits of the tag (constant within a set, so they carry
	// no information) — and because a valid zero partial tag or a
	// cleared byte can still collide with a probe, the filter may
	// produce false-positive candidates but never false negatives; the
	// full-tag + validMask confirmation makes that harmless.
	ptags    []uint64 // sets*pwords, indexed set*pwords+way/8
	pwords   int      // ptag words per set: (ways+7)/8
	pshift   uint     // partial tag = uint8(tag >> pshift)
	fullMask uint64   // validMask value of a fully occupied set
	swar     bool     // probe through the filter (wide caches only)

	// Stats is exported for cheap reading by the harness.
	Stats Stats
}

// New constructs a cache. It panics on invalid configuration, which is a
// programming error in experiment setup, not a runtime condition.
func New(cfg Config, policy Policy) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if policy == nil {
		panic(fmt.Sprintf("cache %q: nil policy", cfg.Name))
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = 1
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		sets:       make([]Set, sets),
		policy:     policy,
		offsetBits: log2(cfg.LineBytes),
		indexMask:  uint64(sets - 1),
		ways:       cfg.Ways,
		Stats: Stats{
			CoreAccesses: make([]uint64, cores),
			CoreHits:     make([]uint64, cores),
			CoreMisses:   make([]uint64, cores),
		},
	}
	lines := make([]Line, sets*cfg.Ways)
	for i := range c.sets {
		c.sets[i].Lines = lines[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
		c.sets[i].State = policy.NewSetState(i)
	}
	// tags and ptags live in one backing array (tags capacity-clipped so
	// an overrun panics instead of corrupting the filter): cache
	// construction is on replay hot paths, where the bench gate holds
	// allocs/op flat. Narrow caches never probe the filter, so they skip
	// its words entirely.
	c.pwords = (cfg.Ways + 7) / 8
	c.pshift = log2(sets)
	c.swar = cfg.Ways > swarMinWays
	nt := sets * cfg.Ways
	np := 0
	if c.swar {
		np = sets * c.pwords
	}
	backing := make([]uint64, nt+np)
	c.tags = backing[:nt:nt]
	c.ptags = backing[nt:]
	c.fullMask = ^uint64(0) >> (64 - uint(cfg.Ways))
	c.obs, _ = policy.(AccessObserver)
	c.evictObs, _ = policy.(EvictionObserver)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the attached replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetIndex maps an address to its set index.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.offsetBits) & c.indexMask)
}

// Tag maps an address to the line address used as tag.
func (c *Cache) Tag(addr uint64) uint64 { return addr >> c.offsetBits }

// Set exposes a set for inspection (tests, monitors).
func (c *Cache) Set(i int) *Set { return &c.sets[i] }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// AccessResult describes the outcome of one access.
type AccessResult struct {
	// Hit reports whether the access hit.
	Hit bool
	// Evicted holds the displaced line when EvictedValid is true.
	Evicted      Line
	EvictedValid bool
	// Bypassed reports that the policy declined to cache the fill.
	Bypassed bool
}

// Access presents one request to the cache and returns the outcome.
// The cache assigns req.Seq.
func (c *Cache) Access(req *Request) AccessResult {
	req.Seq = c.seq
	c.seq++

	setIdx := c.SetIndex(req.Addr)
	tag := c.Tag(req.Addr)
	set := &c.sets[setIdx]

	c.Stats.Accesses++
	core := req.Core
	if core < 0 || core >= len(c.Stats.CoreAccesses) {
		core = 0
	}
	c.Stats.CoreAccesses[core]++

	if c.obs != nil {
		c.obs.ObserveAccess(setIdx, tag, req)
	}

	base := setIdx * c.ways
	// Per-cache dispatch (one predicted branch): narrow caches keep the
	// tiny lookup, which inlines here; wide caches call the SWAR probe,
	// whose word compares dwarf the call.
	var way int
	if c.swar {
		way = c.swarLookup(setIdx, base, set.validMask, tag)
	} else {
		way = c.lookup(base, set.validMask, tag)
	}
	if way >= 0 {
		c.Stats.Hits++
		c.Stats.CoreHits[core]++
		if req.Kind == trace.Store {
			set.Lines[way].Dirty = true
		}
		c.policy.OnHit(set, way, req)
		return AccessResult{Hit: true}
	}

	c.Stats.Misses++
	c.Stats.CoreMisses[core]++

	way = c.policy.Victim(set, req)
	if way < 0 {
		c.Stats.Bypasses++
		return AccessResult{Bypassed: true}
	}
	if way >= len(set.Lines) {
		panic(fmt.Sprintf("cache %q: policy %q returned way %d of %d",
			c.cfg.Name, c.policy.Name(), way, len(set.Lines)))
	}

	res := AccessResult{}
	if victim := &set.Lines[way]; victim.Valid {
		res.Evicted = *victim
		res.EvictedValid = true
		c.Stats.Evictions++
		if victim.Dirty {
			c.Stats.Writebacks++
		}
		if c.evictObs != nil {
			c.evictObs.ObserveEviction(setIdx, *victim)
		}
	}

	set.Lines[way] = Line{
		Tag:   tag,
		PC:    req.PC,
		Core:  int32(req.Core),
		Valid: true,
		Dirty: req.Kind == trace.Store,
	}
	c.tags[base+way] = tag
	set.validMask |= 1 << uint(way)
	if c.swar {
		c.setPartial(setIdx, way, uint8(tag>>c.pshift))
	}
	c.policy.OnInsert(set, way, req)
	return res
}

// SWAR byte-broadcast and zero-byte-detect masks (Mycroft's trick):
// for x = word XOR broadcast(b), (x - lsb) &^ x & msb flags the high
// bit of every byte of word equal to b — plus possible false positives
// on bytes adjacent to a true match (borrow propagation), and never a
// false negative. Candidates are confirmed, so extras only cost a
// compare.
const (
	swarLSB = 0x0101010101010101
	swarMSB = 0x8080808080808080
)

// swarMinWays is the associativity above which Access probes through
// the SWAR filter. Measured on the Hot benchmarks: at 16 ways and below
// the plain scan of the dense tag mirror — small enough to inline into
// Access — beats the filter's dependency chain (broadcast multiply,
// zero-byte detect, candidate confirm) plus the out-of-line call, so
// narrow caches keep it; past 16 ways the scan grows linearly while the
// filter stays a few word ops per 8 ways, and the filter wins on hits
// and misses both.
const swarMinWays = 16

// lookup is Set.Lookup over the dense tag mirror — the simulator's single
// hottest loop. base is the set's first index into the mirror, mask its
// validMask (both already in hand at the call site).
func (c *Cache) lookup(base int, mask uint64, tag uint64) int {
	for i, t := range c.tags[base : base+c.ways] {
		if t == tag && mask&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// swarLookup is lookup through the packed partial-tag filter, used for
// caches wider than swarMinWays. Full sets (the steady state) run the
// SWAR compare — one word op tests 8 ways, misses usually resolve with
// no per-way scan, and hits confirm only the flagged bytes against full
// tags. Partially filled sets fall back to the plain scan, which is
// cheaper while the cache is filling.
func (c *Cache) swarLookup(setIdx, base int, mask uint64, tag uint64) int {
	if mask != c.fullMask {
		return c.lookup(base, mask, tag)
	}
	pat := uint64(uint8(tag>>c.pshift)) * swarLSB
	pb := setIdx * c.pwords
	for w, word := range c.ptags[pb : pb+c.pwords] {
		x := word ^ pat
		for cand := (x - swarLSB) &^ x & swarMSB; cand != 0; cand &= cand - 1 {
			// The mask test also rejects phantom ways past c.ways in the
			// last partial word (their validMask bits are never set).
			way := w<<3 + bits.TrailingZeros64(cand)>>3
			if mask&(1<<uint(way)) != 0 && c.tags[base+way] == tag {
				return way
			}
		}
	}
	return -1
}

// setPartial writes way's byte in the set's partial-tag filter.
func (c *Cache) setPartial(setIdx, way int, p uint8) {
	w := &c.ptags[setIdx*c.pwords+way>>3]
	sh := uint(way&7) << 3
	*w = *w&^(uint64(0xff)<<sh) | uint64(p)<<sh
}

// Invalidate removes the line holding addr if present, returning it.
// Used by tests and by hierarchy models that need back-invalidation.
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	setIdx := c.SetIndex(addr)
	tag := c.Tag(addr)
	set := &c.sets[setIdx]
	way := set.Lookup(tag)
	if way < 0 {
		return Line{}, false
	}
	line := set.Lines[way]
	if c.evictObs != nil {
		c.evictObs.ObserveEviction(setIdx, line)
	}
	set.Lines[way] = Line{}
	c.tags[setIdx*c.ways+way] = 0
	set.validMask &^= 1 << uint(way)
	if c.swar {
		c.setPartial(setIdx, way, 0)
	}
	return line, true
}

// Occupancy returns the number of valid lines (for tests and reports).
// validMask mirrors the per-line Valid flags exactly (see the mirror
// invariant on Cache.tags), so a popcount per set replaces the old
// per-line scan; TestOccupancyMatchesLineScan pins the equivalence.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.sets {
		n += bits.OnesCount64(c.sets[i].validMask)
	}
	return n
}
