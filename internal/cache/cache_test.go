package cache_test

import (
	"math/rand"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

func tinyCache(t *testing.T, ways int) *cache.Cache {
	t.Helper()
	return cache.New(cache.Config{
		Name:      "test",
		SizeBytes: 4 * ways * 64, // 4 sets
		Ways:      ways,
		LineBytes: 64,
		Cores:     2,
	}, policy.NewLRU())
}

func access(c *cache.Cache, addr uint64) cache.AccessResult {
	return c.Access(&cache.Request{Addr: addr, PC: 0x400000, Kind: trace.Load})
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := tinyCache(t, 4)
	if r := access(c, 0x1000); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := access(c, 0x1000); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := access(c, 0x1038); !r.Hit { // same 64B line
		t.Fatal("same-line access missed")
	}
	if c.Stats.Accesses != 3 || c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := tinyCache(t, 2) // 4 sets, 2 ways
	// Three distinct lines mapping to set 0 (stride = sets*line = 256).
	a, b, d := uint64(0), uint64(256), uint64(512)
	access(c, a)
	access(c, b)
	r := access(c, d) // must evict a (LRU)
	if !r.EvictedValid || r.Evicted.Tag != c.Tag(a) {
		t.Fatalf("evicted %+v, want tag of a", r.Evicted)
	}
	if access(c, b).Hit != true {
		t.Fatal("b should still hit")
	}
	if access(c, a).Hit {
		t.Fatal("a should have been evicted")
	}
}

func TestCacheLRURecencyOnHit(t *testing.T) {
	c := tinyCache(t, 2)
	a, b, d := uint64(0), uint64(256), uint64(512)
	access(c, a)
	access(c, b)
	access(c, a) // a becomes MRU
	access(c, d) // evicts b
	if !access(c, a).Hit {
		t.Fatal("a evicted despite recency")
	}
	if access(c, b).Hit {
		t.Fatal("b not evicted")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := tinyCache(t, 1)
	c.Access(&cache.Request{Addr: 0, Kind: trace.Store})
	r := c.Access(&cache.Request{Addr: 256, Kind: trace.Load})
	if !r.EvictedValid || !r.Evicted.Dirty {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
	// Load-filled line made dirty by a later store hit.
	c.Access(&cache.Request{Addr: 512, Kind: trace.Load})
	c.Access(&cache.Request{Addr: 512, Kind: trace.Store})
	r = c.Access(&cache.Request{Addr: 768, Kind: trace.Load})
	if !r.Evicted.Dirty {
		t.Fatal("store hit did not dirty line")
	}
}

func TestCachePerCoreStats(t *testing.T) {
	c := tinyCache(t, 4)
	c.Access(&cache.Request{Addr: 0, Core: 0})
	c.Access(&cache.Request{Addr: 0, Core: 1})
	c.Access(&cache.Request{Addr: 64, Core: 1})
	if c.Stats.CoreAccesses[0] != 1 || c.Stats.CoreAccesses[1] != 2 {
		t.Fatalf("core accesses = %v", c.Stats.CoreAccesses)
	}
	if c.Stats.CoreMisses[0] != 1 || c.Stats.CoreHits[1] != 1 || c.Stats.CoreMisses[1] != 1 {
		t.Fatalf("core stats = %+v", c.Stats)
	}
	// Out-of-range core indexes fold into core 0 rather than crashing.
	c.Access(&cache.Request{Addr: 128, Core: 99})
	if c.Stats.CoreAccesses[0] != 2 {
		t.Fatal("out-of-range core not folded")
	}
}

func TestCacheLineMetadata(t *testing.T) {
	c := tinyCache(t, 2)
	c.Access(&cache.Request{Addr: 0x40, PC: 0xabc, Core: 1, Kind: trace.Store})
	set := c.Set(c.SetIndex(0x40))
	way := set.Lookup(c.Tag(0x40))
	if way < 0 {
		t.Fatal("line not installed")
	}
	l := set.Lines[way]
	if l.PC != 0xabc || l.Core != 1 || !l.Dirty || !l.Valid {
		t.Fatalf("line = %+v", l)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := tinyCache(t, 2)
	access(c, 0x100)
	if _, ok := c.Invalidate(0x100); !ok {
		t.Fatal("invalidate missed present line")
	}
	if _, ok := c.Invalidate(0x100); ok {
		t.Fatal("invalidate hit absent line")
	}
	if access(c, 0x100).Hit {
		t.Fatal("access hit after invalidate")
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestCacheOccupancyBounded(t *testing.T) {
	c := tinyCache(t, 2) // capacity 8 lines
	for i := uint64(0); i < 100; i++ {
		access(c, i*64)
	}
	if got := c.Occupancy(); got != 8 {
		t.Fatalf("occupancy = %d, want 8", got)
	}
}

// TestOccupancyMatchesLineScan pins the popcount Occupancy against the
// per-line scan it replaced, across a random mix of fills, evictions
// and invalidations on several geometries (including ways that don't
// fill whole filter words).
func TestOccupancyMatchesLineScan(t *testing.T) {
	lineScan := func(c *cache.Cache) int {
		n := 0
		for i := 0; i < c.NumSets(); i++ {
			for _, l := range c.Set(i).Lines {
				if l.Valid {
					n++
				}
			}
		}
		return n
	}
	rng := rand.New(rand.NewSource(42))
	for _, ways := range []int{1, 2, 3, 8, 12, 16} {
		c := cache.New(cache.Config{
			Name: "occ", SizeBytes: 8 * ways * 64, Ways: ways, LineBytes: 64, Cores: 1,
		}, policy.NewLRU())
		for op := 0; op < 2000; op++ {
			addr := uint64(rng.Intn(64*ways)) * 64
			if rng.Intn(4) == 0 {
				c.Invalidate(addr)
			} else {
				access(c, addr)
			}
			if op%97 == 0 {
				if got, want := c.Occupancy(), lineScan(c); got != want {
					t.Fatalf("ways=%d op=%d: Occupancy=%d, line scan=%d", ways, op, got, want)
				}
			}
		}
		if got, want := c.Occupancy(), lineScan(c); got != want {
			t.Fatalf("ways=%d final: Occupancy=%d, line scan=%d", ways, got, want)
		}
	}
}

// TestAccessAgreesWithSetLookup pins the SWAR filtered lookup against
// Set.Lookup (which scans Lines directly, bypassing both mirrors): for
// every access the hit/miss outcome must match the ground truth,
// across geometries with partial filter words and under invalidation.
func TestAccessAgreesWithSetLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ways := range []int{1, 3, 7, 8, 9, 16, 64} {
		var pol cache.Policy = policy.NewLRU() // supports up to 16 ways
		if ways > 16 {
			pol = policy.NewRandom(3)
		}
		c := cache.New(cache.Config{
			Name: "swar", SizeBytes: 4 * ways * 64, Ways: ways, LineBytes: 64, Cores: 1,
		}, pol)
		for op := 0; op < 3000; op++ {
			addr := uint64(rng.Intn(32*ways)) * 64
			if rng.Intn(8) == 0 {
				c.Invalidate(addr)
				continue
			}
			want := c.Set(c.SetIndex(addr)).Lookup(c.Tag(addr)) >= 0
			if got := access(c, addr).Hit; got != want {
				t.Fatalf("ways=%d op=%d addr=%#x: Access hit=%v, Set.Lookup says %v",
					ways, op, addr, got, want)
			}
		}
	}
}

// TestLookupPartialTagCollisions drives resident lines whose 8-bit
// partial tags collide (tags differ only above the filtered byte), so
// the SWAR prefilter alone cannot distinguish them: full-tag
// confirmation must. The cache is 32-way (> swarMinWays) with every
// probed set full, so the filter path — not the narrow-cache linear
// scan — is the one under test; Random's victim choice prefers invalid
// ways, making the fill deterministic. Partially filled and
// invalidated sets take the linear fallback, which
// TestAccessAgreesWithSetLookup covers at ways=64.
func TestLookupPartialTagCollisions(t *testing.T) {
	wide := func() *cache.Cache {
		return cache.New(cache.Config{
			Name:      "wide",
			SizeBytes: 4 * 32 * 64, // 4 sets: pshift = 2, partial = uint8(tag >> 2)
			Ways:      32,
			LineBytes: 64,
			Cores:     1,
		}, policy.NewRandom(9))
	}
	// Strides of sets*256 lines keep set index AND partial byte equal
	// while the full tags differ; +0x100 makes the shared partial byte
	// nonzero (1) so a match can't be confused with cleared filter
	// lanes.
	const stride = uint64(4 * 256 * 64)

	c := wide()
	for i := uint64(0); i < 32; i++ {
		if access(c, 0x100+i*stride).Hit {
			t.Fatalf("cold access %d hit", i)
		}
	}
	// Set 0 is now full of lines with identical partial tags: every
	// probe flags all 32 filter bytes as candidates and only full-tag
	// confirmation separates them.
	for i := uint64(0); i < 32; i++ {
		if !access(c, 0x100+i*stride).Hit {
			t.Fatalf("colliding resident %d missed", i)
		}
	}
	// A 33rd colliding line must still miss despite 32 partial matches.
	if access(c, 0x100+32*stride).Hit {
		t.Fatal("absent colliding line hit")
	}

	// Zero partial tags, including tag 0 itself: a full set whose
	// filter words are all-zero yet whose lines are valid — probes for
	// residents must confirm through, and an absent zero-partial probe
	// must still miss.
	c2 := wide()
	for i := uint64(0); i < 32; i++ {
		access(c2, i*stride) // tag i*1024 -> partial 0 for all i
	}
	for i := uint64(0); i < 32; i++ {
		if !access(c2, i*stride).Hit {
			t.Fatalf("zero-partial resident %d missed", i)
		}
	}
	if access(c2, 32*stride).Hit {
		t.Fatal("absent zero-partial line hit")
	}
}

func TestCacheSeqAssigned(t *testing.T) {
	c := tinyCache(t, 2)
	r1 := &cache.Request{Addr: 0}
	r2 := &cache.Request{Addr: 64}
	c.Access(r1)
	c.Access(r2)
	if r1.Seq != 0 || r2.Seq != 1 {
		t.Fatalf("seq = %d, %d", r1.Seq, r2.Seq)
	}
}

func TestCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cache.New(cache.Config{Name: "bad", SizeBytes: 100, Ways: 3, LineBytes: 7}, policy.NewLRU())
}

// bypassPolicy always declines fills; used to test the bypass path.
type bypassPolicy struct{ policy.LRU }

func (*bypassPolicy) Victim(*cache.Set, *cache.Request) int { return -1 }

func TestCacheBypass(t *testing.T) {
	c := cache.New(cache.Config{Name: "b", SizeBytes: 2 * 64 * 4, Ways: 2, LineBytes: 64},
		&bypassPolicy{})
	r := access(c, 0)
	if r.Hit || !r.Bypassed || r.EvictedValid {
		t.Fatalf("result = %+v", r)
	}
	if c.Stats.Bypasses != 1 || c.Occupancy() != 0 {
		t.Fatal("bypass not recorded")
	}
}

func TestRandomPolicyBounds(t *testing.T) {
	c := cache.New(cache.Config{Name: "r", SizeBytes: 4 * 64 * 4, Ways: 4, LineBytes: 64},
		policy.NewRandom(1))
	for i := uint64(0); i < 1000; i++ {
		access(c, i*64)
	}
	if c.Occupancy() != 16 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestNRUPolicyBasics(t *testing.T) {
	c := cache.New(cache.Config{Name: "n", SizeBytes: 1 * 64 * 4, Ways: 4, LineBytes: 64},
		policy.NewNRU())
	// Fill the single... four sets? SizeBytes=256, ways=4, line=64 -> 1 set.
	for i := uint64(0); i < 4; i++ {
		access(c, i*64)
	}
	// Touch line 0 so it is protected, then miss: victim must not be line 0.
	access(c, 0)
	r := access(c, 4*64)
	if r.Evicted.Tag == c.Tag(0) {
		t.Fatal("NRU evicted the just-referenced line")
	}
	if !access(c, 0).Hit {
		t.Fatal("referenced line was evicted")
	}
}

// observingPolicy counts observer callbacks to verify the cache honors
// the optional interfaces.
type observingPolicy struct {
	policy.LRU
	accesses  int
	evictions int
}

func (o *observingPolicy) ObserveAccess(setIndex int, tag uint64, req *cache.Request) {
	o.accesses++
}

func (o *observingPolicy) ObserveEviction(setIndex int, line cache.Line) {
	o.evictions++
}

func TestObserverInterfacesInvoked(t *testing.T) {
	obs := &observingPolicy{}
	c := cache.New(cache.Config{Name: "o", SizeBytes: 2 * 64 * 4, Ways: 2, LineBytes: 64}, obs)
	// 3 lines into a 2-way set: 3 accesses observed, 1 eviction.
	for i := uint64(0); i < 3; i++ {
		c.Access(&cache.Request{Addr: i * 4 * 64})
	}
	if obs.accesses != 3 {
		t.Fatalf("observed %d accesses", obs.accesses)
	}
	if obs.evictions != 1 {
		t.Fatalf("observed %d evictions", obs.evictions)
	}
	// Invalidate also reports an eviction.
	c.Invalidate(1 * 4 * 64)
	if obs.evictions != 2 {
		t.Fatalf("invalidate not observed: %d", obs.evictions)
	}
}
