package cache

import "nucache/internal/trace"

// Line is one physical cache line's bookkeeping (no data is modelled).
// The layout packs to 32 bytes (from 40) so a 16-way set spans 8 cache
// lines instead of 10 — the set scan is the simulator's hottest loop.
type Line struct {
	// Tag is the line address (Addr >> offsetBits), unique across the cache.
	Tag uint64
	// PC is the program counter of the instruction whose miss filled the
	// line; PC-indexed mechanisms (NUcache) key off this.
	PC uint64
	// Meta is a scratch word owned by the replacement policy
	// (RRPV, Belady next-use, ...).
	Meta uint64
	// Core is the index of the core that filled the line. int32 keeps the
	// struct at 32 bytes; core counts are tiny.
	Core int32
	// Valid marks the line as present.
	Valid bool
	// Dirty marks the line as modified (fills by stores, hit stores).
	Dirty bool
}

// Request is one access presented to a cache.
type Request struct {
	// Addr is the byte address.
	Addr uint64
	// PC is the accessing instruction (core-tagged by the CPU model).
	PC uint64
	// Core is the index of the issuing core.
	Core int
	// Kind is load or store.
	Kind trace.Kind
	// Seq is the per-cache access sequence number, assigned by the cache
	// before policy hooks run. Offline policies (Belady OPT) use it to
	// index precomputed future knowledge.
	Seq uint64
}
