package cache

import "math/bits"

// SetState is opaque per-set replacement state owned by the policy.
type SetState interface{}

// Set is one cache set: the physical lines plus the policy's logical
// organization of them.
type Set struct {
	// Lines are the physical ways.
	Lines []Line
	// State is the policy's per-set state (may be nil).
	State SetState

	// validMask mirrors the Valid flags as a bitmask (bit i set iff
	// Lines[i].Valid). Cache maintains it on insert and invalidate; it
	// lets FindInvalid answer in one bit operation instead of scanning
	// the lines — every policy's Victim asks, and in steady state the
	// set is full.
	validMask uint64
}

// FindInvalid returns the index of the first invalid way, or -1.
func (s *Set) FindInvalid() int {
	free := ^s.validMask & (uint64(1)<<uint(len(s.Lines)) - 1)
	if free == 0 {
		return -1
	}
	return bits.TrailingZeros64(free)
}

// Lookup returns the way holding tag, or -1.
func (s *Set) Lookup(tag uint64) int {
	for i := range s.Lines {
		if s.Lines[i].Valid && s.Lines[i].Tag == tag {
			return i
		}
	}
	return -1
}

// WayList is an ordered list of way indices, the building block for
// recency stacks (LRU/DIP), priority lists (PIPP) and FIFO regions
// (NUcache DeliWays). Position 0 is the "front" — by convention the MRU
// or highest-priority end; the back is the victim end.
//
// A WayList never contains duplicates; all mutators preserve that
// invariant given distinct inputs.
type WayList struct {
	ways []int8
}

// NewWayList returns an empty list with capacity for ways entries.
func NewWayList(ways int) *WayList {
	return &WayList{ways: make([]int8, 0, ways)}
}

// MakeWayList is NewWayList by value, for embedding a list directly in a
// policy's per-set state (one less pointer chase on the access path).
func MakeWayList(ways int) WayList {
	return WayList{ways: make([]int8, 0, ways)}
}

// Len returns the number of entries.
func (l *WayList) Len() int { return len(l.ways) }

// At returns the way at position i (0 = front).
func (l *WayList) At(i int) int { return int(l.ways[i]) }

// Front returns the way at the front; panics if empty.
func (l *WayList) Front() int { return int(l.ways[0]) }

// Back returns the way at the back (victim end); panics if empty.
func (l *WayList) Back() int { return int(l.ways[len(l.ways)-1]) }

// PushFront inserts way at the front (MRU position).
func (l *WayList) PushFront(way int) {
	l.ways = append(l.ways, 0)
	copy(l.ways[1:], l.ways)
	l.ways[0] = int8(way)
}

// PushBack inserts way at the back (LRU position).
func (l *WayList) PushBack(way int) {
	l.ways = append(l.ways, int8(way))
}

// InsertAt places way so that it ends up at position pos from the front
// (pos clamped to [0, Len()]).
func (l *WayList) InsertAt(pos, way int) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(l.ways) {
		pos = len(l.ways)
	}
	l.ways = append(l.ways, 0)
	copy(l.ways[pos+1:], l.ways[pos:])
	l.ways[pos] = int8(way)
}

// IndexOf returns the position of way, or -1.
func (l *WayList) IndexOf(way int) int {
	for i, w := range l.ways {
		if int(w) == way {
			return i
		}
	}
	return -1
}

// Remove deletes way from the list; returns false if absent.
func (l *WayList) Remove(way int) bool {
	i := l.IndexOf(way)
	if i < 0 {
		return false
	}
	l.RemoveAt(i)
	return true
}

// RemoveAt deletes the entry at position i.
func (l *WayList) RemoveAt(i int) {
	copy(l.ways[i:], l.ways[i+1:])
	l.ways = l.ways[:len(l.ways)-1]
}

// PopBack removes and returns the back entry; panics if empty.
func (l *WayList) PopBack() int {
	w := l.Back()
	l.ways = l.ways[:len(l.ways)-1]
	return w
}

// PopFront removes and returns the front entry; panics if empty.
func (l *WayList) PopFront() int {
	w := l.Front()
	l.RemoveAt(0)
	return w
}

// MoveToFront relocates way to the front; it must be present.
func (l *WayList) MoveToFront(way int) {
	i := l.IndexOf(way)
	if i < 0 {
		panic("cache: MoveToFront of absent way")
	}
	l.RemoveAt(i)
	l.PushFront(way)
}

// MoveUp swaps way one position toward the front (no-op at the front).
// Returns false if way is absent.
func (l *WayList) MoveUp(way int) bool {
	i := l.IndexOf(way)
	if i < 0 {
		return false
	}
	if i > 0 {
		l.ways[i], l.ways[i-1] = l.ways[i-1], l.ways[i]
	}
	return true
}

// Contains reports whether way is present.
func (l *WayList) Contains(way int) bool { return l.IndexOf(way) >= 0 }
