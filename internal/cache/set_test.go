package cache

import (
	"testing"
	"testing/quick"
)

func TestWayListBasics(t *testing.T) {
	l := NewWayList(4)
	if l.Len() != 0 {
		t.Fatal("new list not empty")
	}
	l.PushFront(1)
	l.PushFront(2)
	l.PushBack(3)
	// Order: 2 1 3
	if l.Front() != 2 || l.Back() != 3 || l.At(1) != 1 {
		t.Fatalf("order wrong: %d %d %d", l.At(0), l.At(1), l.At(2))
	}
	if !l.Contains(1) || l.Contains(9) {
		t.Fatal("contains wrong")
	}
	if l.IndexOf(3) != 2 {
		t.Fatalf("IndexOf(3) = %d", l.IndexOf(3))
	}
}

func TestWayListMoveToFront(t *testing.T) {
	l := NewWayList(4)
	l.PushBack(0)
	l.PushBack(1)
	l.PushBack(2)
	l.MoveToFront(2)
	if l.Front() != 2 || l.At(1) != 0 || l.Back() != 1 {
		t.Fatal("MoveToFront wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for absent way")
		}
	}()
	l.MoveToFront(7)
}

func TestWayListInsertAt(t *testing.T) {
	l := NewWayList(4)
	l.PushBack(0)
	l.PushBack(1)
	l.InsertAt(1, 5)
	if l.At(0) != 0 || l.At(1) != 5 || l.At(2) != 1 {
		t.Fatal("InsertAt middle wrong")
	}
	l.InsertAt(-3, 6)
	if l.Front() != 6 {
		t.Fatal("InsertAt clamps low")
	}
	l.InsertAt(99, 7)
	if l.Back() != 7 {
		t.Fatal("InsertAt clamps high")
	}
}

func TestWayListRemovePop(t *testing.T) {
	l := NewWayList(4)
	l.PushBack(0)
	l.PushBack(1)
	l.PushBack(2)
	if !l.Remove(1) || l.Remove(1) {
		t.Fatal("Remove wrong")
	}
	if got := l.PopBack(); got != 2 {
		t.Fatalf("PopBack = %d", got)
	}
	if got := l.PopFront(); got != 0 {
		t.Fatalf("PopFront = %d", got)
	}
	if l.Len() != 0 {
		t.Fatal("not empty after pops")
	}
}

func TestWayListMoveUp(t *testing.T) {
	l := NewWayList(4)
	l.PushBack(0)
	l.PushBack(1)
	if !l.MoveUp(1) {
		t.Fatal("MoveUp returned false")
	}
	if l.Front() != 1 {
		t.Fatal("MoveUp did not swap")
	}
	if !l.MoveUp(1) { // already front: no-op but true
		t.Fatal("MoveUp at front returned false")
	}
	if l.Front() != 1 {
		t.Fatal("MoveUp at front moved")
	}
	if l.MoveUp(9) {
		t.Fatal("MoveUp of absent way returned true")
	}
}

func TestWayListNoDuplicatesProperty(t *testing.T) {
	// Property: random op sequences keep entries unique.
	if err := quick.Check(func(ops []uint8) bool {
		l := NewWayList(8)
		present := map[int]bool{}
		for _, op := range ops {
			way := int(op % 8)
			switch (op / 8) % 4 {
			case 0:
				if !present[way] {
					l.PushFront(way)
					present[way] = true
				}
			case 1:
				if !present[way] {
					l.PushBack(way)
					present[way] = true
				}
			case 2:
				if present[way] {
					l.Remove(way)
					delete(present, way)
				}
			case 3:
				if present[way] {
					l.MoveToFront(way)
				}
			}
		}
		if l.Len() != len(present) {
			return false
		}
		seen := map[int]bool{}
		for i := 0; i < l.Len(); i++ {
			w := l.At(i)
			if seen[w] || !present[w] {
				return false
			}
			seen[w] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetHelpers(t *testing.T) {
	s := &Set{Lines: make([]Line, 4)}
	if got := s.FindInvalid(); got != 0 {
		t.Fatalf("FindInvalid = %d", got)
	}
	s.Lines[0] = Line{Tag: 10, Valid: true}
	s.Lines[1] = Line{Tag: 11, Valid: true}
	s.validMask = 0b11 // Cache maintains this mirror on real sets
	if got := s.FindInvalid(); got != 2 {
		t.Fatalf("FindInvalid = %d", got)
	}
	if got := s.Lookup(11); got != 1 {
		t.Fatalf("Lookup = %d", got)
	}
	if got := s.Lookup(99); got != -1 {
		t.Fatalf("Lookup missing = %d", got)
	}
	s.Lines[2] = Line{Tag: 99} // invalid: must not match
	if got := s.Lookup(99); got != -1 {
		t.Fatalf("Lookup invalid tag matched: %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "L", SizeBytes: 1 << 20, Ways: 16, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 1024 {
		t.Fatalf("Sets = %d", good.Sets())
	}
	bad := []Config{
		{Name: "a", SizeBytes: 0, Ways: 4, LineBytes: 64},
		{Name: "b", SizeBytes: 1 << 20, Ways: 16, LineBytes: 60},
		{Name: "c", SizeBytes: 1<<20 + 64, Ways: 16, LineBytes: 64},
		{Name: "d", SizeBytes: 3 * 16 * 64, Ways: 16, LineBytes: 64}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %q validated", c.Name)
		}
	}
}
