package cpu_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/memory"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

func tinyConfig(cores int) cpu.Config {
	return cpu.Config{
		Cores:      cores,
		L1:         cache.Config{SizeBytes: 4 * 2 * 64, Ways: 2, LineBytes: 64},
		LLC:        cache.Config{SizeBytes: 16 * 4 * 64, Ways: 4, LineBytes: 64},
		L1Latency:  1,
		LLCLatency: 10,
		MemLatency: 100,
	}
}

func TestSingleCoreCycleAccounting(t *testing.T) {
	// Access A: gap 3, miss everywhere: 3 + 1 + 10 + 100 = 114 cycles.
	// Access A again: gap 0, L1 hit: 1 cycle. Total 115, instr 5, mem 2.
	st := trace.NewSliceStream([]trace.Access{
		{PC: 1, Addr: 0x1000, Gap: 3},
		{PC: 1, Addr: 0x1000, Gap: 0},
	})
	sys := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{st})
	res := sys.Run()
	r := res[0]
	if r.Cycles != 115 {
		t.Fatalf("cycles = %d, want 115", r.Cycles)
	}
	if r.Instructions != 5 || r.MemAccesses != 2 {
		t.Fatalf("instr = %d mem = %d", r.Instructions, r.MemAccesses)
	}
	if r.L1Hits != 1 || r.L1Misses != 1 || r.LLCMisses != 1 || r.LLCAccesses != 1 {
		t.Fatalf("result = %+v", r)
	}
	if got := r.IPC(); got <= 0.04 || got >= 0.05 {
		t.Fatalf("IPC = %v", got)
	}
}

func TestLLCHitLatency(t *testing.T) {
	// Warm the LLC, evict from L1, re-access: LLC hit = 1 + 10 cycles.
	// L1: 4 sets x 2 ways. Lines 0x0000, 0x2000, 0x4000 map to L1 set 0
	// (stride 4*64=256... use stride 256 alignment): addresses 0, 256, 512.
	// LLC: 16 sets, stride 1024: these map to LLC sets 0, 4, 8 (no LLC
	// conflict).
	st := trace.NewSliceStream([]trace.Access{
		{PC: 1, Addr: 0},
		{PC: 1, Addr: 256},
		{PC: 1, Addr: 512}, // evicts 0 from L1 set 0
		{PC: 1, Addr: 0},   // L1 miss, LLC hit
	})
	sys := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{st})
	r := sys.Run()[0]
	// 3 full misses (111 each) + 1 LLC hit (11) = 344.
	if r.Cycles != 3*111+11 {
		t.Fatalf("cycles = %d, want %d", r.Cycles, 3*111+11)
	}
	if r.LLCHits != 1 {
		t.Fatalf("LLC hits = %d", r.LLCHits)
	}
}

func TestWritebackReachesLLC(t *testing.T) {
	// Store to a line, evict it from L1 via conflicts: the dirty line must
	// be written back to the LLC (posted, no stall).
	st := trace.NewSliceStream([]trace.Access{
		{PC: 1, Addr: 0, Kind: trace.Store},
		{PC: 1, Addr: 256},
		{PC: 1, Addr: 512}, // evicts dirty line 0
	})
	sys := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{st})
	r := sys.Run()[0]
	if sys.Writebacks != 1 {
		t.Fatalf("writebacks = %d", sys.Writebacks)
	}
	// Writeback must not stall: 3 full misses only.
	if r.Cycles != 3*111 {
		t.Fatalf("cycles = %d", r.Cycles)
	}
	// The LLC saw 3 demand + 1 writeback accesses.
	if got := sys.LLC().Stats.Accesses; got != 4 {
		t.Fatalf("LLC accesses = %d", got)
	}
}

func TestPerCoreAddressIsolation(t *testing.T) {
	// Two cores touching the same virtual address must not share LLC lines.
	mk := func() trace.Stream {
		return trace.NewSliceStream([]trace.Access{{PC: 1, Addr: 0x1000}})
	}
	sys := cpu.NewSystem(tinyConfig(2), policy.NewLRU(), []trace.Stream{mk(), mk()})
	res := sys.Run()
	if res[0].LLCMisses != 1 || res[1].LLCMisses != 1 {
		t.Fatalf("expected cold misses on both cores: %+v", res)
	}
	if sys.LLC().Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2 distinct lines", sys.LLC().Occupancy())
	}
}

func TestInstrBudgetFreezesStats(t *testing.T) {
	// Unbounded synthetic stream; budget must stop accounting at >= budget.
	n := uint64(0)
	gen := trace.FuncStream(func() (trace.Access, bool) {
		n++
		return trace.Access{PC: 1, Addr: (n % 8) * 64, Gap: 9}, true
	})
	cfg := tinyConfig(1)
	cfg.InstrBudget = 1000
	sys := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{gen})
	r := sys.Run()[0]
	if r.Instructions < 1000 || r.Instructions >= 1010 {
		t.Fatalf("instructions = %d", r.Instructions)
	}
}

func TestMulticoreDeterminism(t *testing.T) {
	run := func() []cpu.CoreResult {
		mk := func(seed uint64) trace.Stream {
			i := seed
			return trace.NewLimitStream(trace.FuncStream(func() (trace.Access, bool) {
				i = i*6364136223846793005 + 1
				return trace.Access{PC: 1 + i%7, Addr: (i % 4096) &^ 63, Gap: uint32(i % 5)}, true
			}), 5000)
		}
		sys := cpu.NewSystem(tinyConfig(2), policy.NewLRU(), []trace.Stream{mk(1), mk(2)})
		return sys.Run()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic result on core %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestContentionSlowsCores(t *testing.T) {
	// A core sharing the LLC with a thrashing neighbor must take more
	// cycles than when it runs alone.
	hotLoop := func() trace.Stream {
		i := uint64(0)
		return trace.NewLimitStream(trace.FuncStream(func() (trace.Access, bool) {
			i++
			return trace.Access{PC: 1, Addr: (i % 48) * 64, Gap: 2}, true
		}), 20000)
	}
	thrash := func() trace.Stream {
		i := uint64(0)
		return trace.NewLimitStream(trace.FuncStream(func() (trace.Access, bool) {
			i++
			return trace.Access{PC: 2, Addr: i * 64, Gap: 2}, true
		}), 20000)
	}
	alone := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{hotLoop()}).Run()[0]
	shared := cpu.NewSystem(tinyConfig(2), policy.NewLRU(), []trace.Stream{hotLoop(), thrash()}).Run()[0]
	if shared.Cycles <= alone.Cycles {
		t.Fatalf("no contention: alone %d cycles, shared %d", alone.Cycles, shared.Cycles)
	}
}

func TestMetricsHelpers(t *testing.T) {
	r := cpu.CoreResult{Instructions: 2000, Cycles: 4000, LLCMisses: 6, L1Hits: 3, L1Misses: 1}
	if r.IPC() != 0.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.LLCMPKI() != 3 {
		t.Fatalf("MPKI = %v", r.LLCMPKI())
	}
	if r.L1MissRate() != 0.25 {
		t.Fatalf("L1 miss rate = %v", r.L1MissRate())
	}
	var zero cpu.CoreResult
	if zero.IPC() != 0 || zero.LLCMPKI() != 0 || zero.L1MissRate() != 0 {
		t.Fatal("zero-value helpers must return 0")
	}
}

func TestNewSystemPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { cpu.NewSystem(tinyConfig(0), policy.NewLRU(), nil) },
		func() { cpu.NewSystem(tinyConfig(2), policy.NewLRU(), []trace.Stream{nil}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDefaultConfigScalesLLC(t *testing.T) {
	if got := cpu.DefaultConfig(2).LLC.SizeBytes; got != 1<<20 {
		t.Fatalf("2-core LLC = %d", got)
	}
	if got := cpu.DefaultConfig(4).LLC.SizeBytes; got != 2<<20 {
		t.Fatalf("4-core LLC = %d", got)
	}
	if got := cpu.DefaultConfig(8).LLC.SizeBytes; got != 4<<20 {
		t.Fatalf("8-core LLC = %d", got)
	}
}

func TestPrefetcherFillsNextLines(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.PrefetchDegree = 2
	st := trace.NewSliceStream([]trace.Access{
		{PC: 1, Addr: 0}, // demand miss: prefetch lines 1 and 2
	})
	sys := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{st})
	sys.Run()
	if sys.PrefetchIssued != 2 {
		t.Fatalf("prefetches = %d", sys.PrefetchIssued)
	}
	llc := sys.LLC()
	for _, addr := range []uint64{64, 128} {
		set := llc.Set(llc.SetIndex(addr))
		if set.Lookup(llc.Tag(addr)) < 0 {
			t.Fatalf("line %#x not prefetched into LLC", addr)
		}
	}
}

func TestPrefetcherHelpsSequentialStream(t *testing.T) {
	mk := func() trace.Stream {
		i := uint64(0)
		return trace.NewLimitStream(trace.FuncStream(func() (trace.Access, bool) {
			i++
			return trace.Access{PC: 1, Addr: i * 64, Gap: 2}, true
		}), 20000)
	}
	base := tinyConfig(1)
	noPf := cpu.NewSystem(base, policy.NewLRU(), []trace.Stream{mk()}).Run()[0]
	pf := base
	pf.PrefetchDegree = 2
	withPf := cpu.NewSystem(pf, policy.NewLRU(), []trace.Stream{mk()}).Run()[0]
	if withPf.Cycles >= noPf.Cycles {
		t.Fatalf("prefetching did not help: %d vs %d cycles", withPf.Cycles, noPf.Cycles)
	}
}

func TestPrefetcherOffByDefault(t *testing.T) {
	cfg := tinyConfig(1)
	st := trace.NewSliceStream([]trace.Access{{PC: 1, Addr: 0}})
	sys := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{st})
	sys.Run()
	if sys.PrefetchIssued != 0 {
		t.Fatal("prefetches issued with degree 0")
	}
	if sys.LLC().Occupancy() != 1 {
		t.Fatalf("occupancy = %d", sys.LLC().Occupancy())
	}
}

func TestPrivateL2Hit(t *testing.T) {
	cfg := tinyConfig(1)
	cfg.L2 = cache.Config{SizeBytes: 16 * 4 * 64, Ways: 4, LineBytes: 64}
	cfg.L2Latency = 5
	// Same conflict pattern as TestLLCHitLatency: line 0 falls out of the
	// tiny L1 but stays in the L2.
	st := trace.NewSliceStream([]trace.Access{
		{PC: 1, Addr: 0},
		{PC: 1, Addr: 256},
		{PC: 1, Addr: 512},
		{PC: 1, Addr: 0}, // L1 miss, L2 hit: 1 + 5 cycles
	})
	sys := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{st})
	r := sys.Run()[0]
	// Full misses now cost 1+5+10+100 = 116; the L2 hit costs 6.
	if r.Cycles != 3*116+6 {
		t.Fatalf("cycles = %d, want %d", r.Cycles, 3*116+6)
	}
	// The final access never reached the LLC.
	if got := sys.LLC().Stats.Accesses; got != 3 {
		t.Fatalf("LLC accesses = %d", got)
	}
}

func TestPrivateL2FiltersLLCTraffic(t *testing.T) {
	mk := func() trace.Stream {
		i := uint64(0)
		return trace.NewLimitStream(trace.FuncStream(func() (trace.Access, bool) {
			i++
			return trace.Access{PC: 1, Addr: (i % 128) * 64, Gap: 1}, true
		}), 30000)
	}
	noL2 := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{mk()})
	noL2.Run()
	cfg := tinyConfig(1)
	cfg.L2 = cache.Config{SizeBytes: 128 * 4 * 64, Ways: 4, LineBytes: 64}
	cfg.L2Latency = 5
	withL2 := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{mk()})
	withL2.Run()
	if withL2.LLC().Stats.Accesses*4 > noL2.LLC().Stats.Accesses {
		t.Fatalf("L2 did not filter: %d vs %d LLC accesses",
			withL2.LLC().Stats.Accesses, noL2.LLC().Stats.Accesses)
	}
}

func TestL2DirtyVictimReachesLLC(t *testing.T) {
	cfg := tinyConfig(1)
	// 1-set, 1-way L2: every fill evicts the previous line.
	cfg.L2 = cache.Config{SizeBytes: 64, Ways: 1, LineBytes: 64}
	cfg.L2Latency = 5
	st := trace.NewSliceStream([]trace.Access{
		{PC: 1, Addr: 0, Kind: trace.Store},
		{PC: 1, Addr: 256}, // L1 set conflict no; L2 evicts dirty line 0
		{PC: 1, Addr: 512},
	})
	sys := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{st})
	sys.Run()
	// Writebacks: L2's dirty victim (line 0) must have been stored to LLC.
	if sys.Writebacks == 0 {
		t.Fatal("no writebacks recorded")
	}
	llc := sys.LLC()
	set := llc.Set(llc.SetIndex(0))
	way := set.Lookup(llc.Tag(0))
	if way < 0 || !set.Lines[way].Dirty {
		t.Fatal("dirty L2 victim not written back to LLC")
	}
}

func TestDRAMModelChangesMissCost(t *testing.T) {
	// Sequential misses enjoy row hits: cheaper than the flat model; a
	// row-conflict-heavy pattern is costlier.
	seqStream := func() trace.Stream {
		i := uint64(0)
		return trace.NewLimitStream(trace.FuncStream(func() (trace.Access, bool) {
			i++
			return trace.Access{PC: 1, Addr: i * 64}, true
		}), 10000)
	}
	flat := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{seqStream()}).Run()[0]
	cfg := tinyConfig(1)
	cfg.DRAM = &memory.Config{Banks: 4, RowBytes: 8 << 10, RowHitLatency: 60, RowMissLatency: 250}
	sysD := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{seqStream()})
	dram := sysD.Run()[0]
	if dram.Cycles >= flat.Cycles {
		t.Fatalf("row-hit-friendly stream not cheaper: %d vs %d", dram.Cycles, flat.Cycles)
	}
	if sysD.DRAM() == nil || sysD.DRAM().RowHitRate() < 0.9 {
		t.Fatalf("row hit rate = %v", sysD.DRAM().RowHitRate())
	}
}

func TestDRAMNilByDefault(t *testing.T) {
	sys := cpu.NewSystem(tinyConfig(1), policy.NewLRU(),
		[]trace.Stream{trace.NewSliceStream([]trace.Access{{Addr: 0}})})
	if sys.DRAM() != nil {
		t.Fatal("DRAM enabled by default")
	}
}

func TestWarmupExcludesColdStart(t *testing.T) {
	// A loop that fits the cache: cold pass misses, warm passes hit. With
	// warm-up covering the first pass, the recorded IPC is all-hits.
	mk := func() trace.Stream {
		i := uint64(0)
		return trace.NewLimitStream(trace.FuncStream(func() (trace.Access, bool) {
			i++
			return trace.Access{PC: 1, Addr: (i % 8) * 64}, true
		}), 1000)
	}
	cold := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{mk()}).Run()[0]
	cfg := tinyConfig(1)
	cfg.WarmupInstr = 100
	warm := cpu.NewSystem(cfg, policy.NewLRU(), []trace.Stream{mk()}).Run()[0]
	if warm.L1Misses != 0 {
		t.Fatalf("post-warmup L1 misses = %d", warm.L1Misses)
	}
	if cold.L1Misses == 0 {
		t.Fatal("cold run should miss")
	}
	if warm.IPC() <= cold.IPC() {
		t.Fatalf("warm IPC %v <= cold IPC %v", warm.IPC(), cold.IPC())
	}
	if warm.Instructions != cold.Instructions-100 {
		t.Fatalf("warm instructions = %d", warm.Instructions)
	}
}

func TestWarmupOffByDefault(t *testing.T) {
	st := trace.NewSliceStream([]trace.Access{{PC: 1, Addr: 0}, {PC: 1, Addr: 0}})
	r := cpu.NewSystem(tinyConfig(1), policy.NewLRU(), []trace.Stream{st}).Run()[0]
	if r.Instructions != 2 || r.L1Misses != 1 {
		t.Fatalf("result = %+v", r)
	}
}
