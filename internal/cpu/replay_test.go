package cpu_test

// Differential suite for the record/replay engine: for every LLC policy
// the service can build and a spread of machine shapes (private L2,
// warm-up, prefetching, DRAM, uneven stream exhaustion), a replayed run
// must be bit-identical to the direct simulation — per-core results,
// full LLC statistics, prefetch counts and DRAM state. CI runs this
// suite by name (with -race) before the full test run.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/memory"
	"nucache/internal/sim"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// replayCase is one machine shape plus the streams driving it. streams
// must return fresh, identical streams on every call: the direct run and
// the tape recording each consume their own copy.
type replayCase struct {
	name    string
	cfg     cpu.Config
	streams func() []trace.Stream
}

func benchStreams(names ...string) func() []trace.Stream {
	return func() []trace.Stream {
		out := make([]trace.Stream, len(names))
		for i, n := range names {
			out[i] = workload.MustByName(n).Stream(7 + uint64(i))
		}
		return out
	}
}

func smallConfig(cores int) cpu.Config {
	return cpu.Config{
		Cores:       cores,
		L1:          cache.Config{SizeBytes: 2 << 10, Ways: 2, LineBytes: 64},
		LLC:         cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64},
		L1Latency:   1,
		LLCLatency:  10,
		MemLatency:  100,
		InstrBudget: 30_000,
	}
}

func replayCases() []replayCase {
	base := replayCase{
		name:    "flat",
		cfg:     smallConfig(2),
		streams: benchStreams("art-like", "swim-like"),
	}

	l2 := base
	l2.name = "privateL2"
	l2.cfg.L2 = cache.Config{SizeBytes: 8 << 10, Ways: 4, LineBytes: 64}
	l2.cfg.L2Latency = 6

	warm := base
	warm.name = "warmup"
	warm.cfg.WarmupInstr = 10_000

	pf := base
	pf.name = "prefetch"
	pf.cfg.PrefetchDegree = 2

	dram := base
	dram.name = "dram"
	d := memory.DefaultConfig()
	dram.cfg.DRAM = &d

	// Uneven exhaustion: no budget, finite streams of different lengths,
	// so cores stop one by one and the early finishers' record points
	// come from their exhaustion crossings.
	exhaust := replayCase{
		name: "exhaustion",
		cfg:  smallConfig(2),
		streams: func() []trace.Stream {
			return []trace.Stream{
				trace.NewLimitStream(workload.MustByName("ammp-like").Stream(3), 4_000),
				trace.NewLimitStream(workload.MustByName("mcf-like").Stream(4), 9_000),
			}
		},
	}
	exhaust.cfg.InstrBudget = 0

	// One member exhausts before the others reach their budget: mixes
	// record-at-budget and record-at-exhaustion in one run.
	mixedEnd := replayCase{
		name: "budget-and-exhaustion",
		cfg:  smallConfig(2),
		streams: func() []trace.Stream {
			return []trace.Stream{
				trace.NewLimitStream(workload.MustByName("art-like").Stream(5), 5_000),
				workload.MustByName("milc-like").Stream(6),
			}
		},
	}

	sink := replayCase{
		name:    "L2+warmup+prefetch+dram",
		cfg:     smallConfig(3),
		streams: benchStreams("art-like", "ammp-like", "libquantum-like"),
	}
	sink.cfg.L2 = cache.Config{SizeBytes: 8 << 10, Ways: 4, LineBytes: 64}
	sink.cfg.L2Latency = 6
	sink.cfg.WarmupInstr = 8_000
	sink.cfg.PrefetchDegree = 1
	d2 := memory.DefaultConfig()
	sink.cfg.DRAM = &d2

	return []replayCase{base, l2, warm, pf, dram, exhaust, mixedEnd, sink}
}

// runDirect runs the reference simulation.
func runDirect(t *testing.T, tc replayCase, polName string) ([]cpu.CoreResult, *cpu.System) {
	t.Helper()
	pol, err := sim.BuildPolicy(polName, tc.cfg.Cores, tc.cfg.LLC.Ways, 0)
	if err != nil {
		t.Fatalf("build %s: %v", polName, err)
	}
	sys := cpu.NewSystem(tc.cfg, pol, tc.streams())
	return sys.Run(), sys
}

func runReplay(t *testing.T, tc replayCase, polName string, tapes []*cpu.Tape) ([]cpu.CoreResult, *cpu.ReplaySystem) {
	t.Helper()
	pol, err := sim.BuildPolicy(polName, tc.cfg.Cores, tc.cfg.LLC.Ways, 0)
	if err != nil {
		t.Fatalf("build %s: %v", polName, err)
	}
	rs := cpu.NewReplaySystem(tc.cfg, pol, tapes)
	res, err := rs.Run()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return res, rs
}

func makeTapes(tc replayCase) []*cpu.Tape {
	streams := tc.streams()
	tapes := make([]*cpu.Tape, len(streams))
	for i, s := range streams {
		tapes[i] = cpu.NewTape(tc.cfg, s)
	}
	return tapes
}

// compareRuns asserts bit-identical outcomes between a direct system and
// a replay over the same machine.
func compareRuns(t *testing.T, tc replayCase, dRes, rRes []cpu.CoreResult, d *cpu.System, r *cpu.ReplaySystem) {
	t.Helper()
	if !reflect.DeepEqual(dRes, rRes) {
		t.Errorf("core results diverge\ndirect: %+v\nreplay: %+v", dRes, rRes)
	}
	if !reflect.DeepEqual(d.LLC().Stats, r.LLC().Stats) {
		t.Errorf("LLC stats diverge\ndirect: %+v\nreplay: %+v", d.LLC().Stats, r.LLC().Stats)
	}
	if d.PrefetchIssued != r.PrefetchIssued {
		t.Errorf("prefetches diverge: direct %d, replay %d", d.PrefetchIssued, r.PrefetchIssued)
	}
	if tc.cfg.L2.SizeBytes == 0 && d.Writebacks != r.Writebacks {
		// With a private L2, System.Writebacks also counts L1-to-L2
		// drains that never reach the LLC (a documented difference);
		// without one the two counters must agree exactly.
		t.Errorf("writebacks diverge: direct %d, replay %d", d.Writebacks, r.Writebacks)
	}
	dd, rd := d.DRAM(), r.DRAM()
	if (dd == nil) != (rd == nil) {
		t.Fatalf("DRAM presence diverges")
	}
	if dd != nil && (dd.Accesses != rd.Accesses || dd.RowHits != rd.RowHits) {
		t.Errorf("DRAM diverges: direct %d/%d, replay %d/%d",
			dd.Accesses, dd.RowHits, rd.Accesses, rd.RowHits)
	}
}

// TestReplayMatchesDirect is the core bit-exactness guarantee: every
// policy, every machine shape. Tapes are shared across all policies of a
// case, so it also proves a tape replays cleanly many times over.
func TestReplayMatchesDirect(t *testing.T) {
	for _, tc := range replayCases() {
		t.Run(tc.name, func(t *testing.T) {
			tapes := makeTapes(tc)
			for _, polName := range sim.Policies() {
				t.Run(polName, func(t *testing.T) {
					dRes, d := runDirect(t, tc, polName)
					rRes, r := runReplay(t, tc, polName, tapes)
					compareRuns(t, tc, dRes, rRes, d, r)
				})
			}
		})
	}
}

// TestReplayConcurrentTapeSharing replays one tape set from many
// goroutines at once: the lazily-extended tape must be safe for
// concurrent cursors (run under -race in CI).
func TestReplayConcurrentTapeSharing(t *testing.T) {
	tc := replayCases()[0]
	tapes := makeTapes(tc)
	dRes, d := runDirect(t, tc, "LRU")
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pol, _ := sim.BuildPolicy("LRU", tc.cfg.Cores, tc.cfg.LLC.Ways, 0)
			rs := cpu.NewReplaySystem(tc.cfg, pol, tapes)
			res, err := rs.Run()
			if err != nil {
				errs <- fmt.Sprintf("replay: %v", err)
				return
			}
			if !reflect.DeepEqual(dRes, res) {
				errs <- "concurrent replay diverged from direct run"
			}
			if !reflect.DeepEqual(d.LLC().Stats, rs.LLC().Stats) {
				errs <- "concurrent replay LLC stats diverged"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestReplayTapeBudgetFallback: once the process tape budget is
// exhausted, AcquireTape refuses new tapes (the sim layer then falls
// back to direct simulation).
func TestReplayTapeBudgetFallback(t *testing.T) {
	old := cpu.SetTapeBudget(0) // nothing fits
	defer cpu.SetTapeBudget(old)
	if _, err := cpu.AcquireTape("budget-test@1", smallConfig(1), func() trace.Stream {
		t.Fatal("open must not be called once the budget is exhausted")
		return nil
	}); err == nil {
		t.Fatal("AcquireTape should refuse new tapes past the budget")
	}
	// A tape that exists already (here: built directly) stops extending
	// once the budget is gone; its replays must report an error instead
	// of fabricating results.
	tape := cpu.NewTape(smallConfig(1), workload.MustByName("art-like").Stream(1))
	pol, _ := sim.BuildPolicy("LRU", 1, smallConfig(1).LLC.Ways, 0)
	rs := cpu.NewReplaySystem(smallConfig(1), pol, []*cpu.Tape{tape})
	if _, err := rs.Run(); err == nil {
		t.Fatal("replay over a budget-starved tape should fail, not fabricate results")
	}
}

// TestReplayDecodeBudgetStreaming: when the decode budget runs out, the
// tape's decoded-event mirror stops mid-tape and replays stream-decode
// the remaining packed events through a resumed cursor — transparently,
// still bit-identical to direct simulation.
func TestReplayDecodeBudgetStreaming(t *testing.T) {
	// A budget generous enough that the packed tape survives recording
	// (death is at 2x) but small enough that the mirror, which charges
	// 128KB per event page plus 64KB per writeback page, stops well
	// before the larger tape's end.
	old := cpu.SetTapeBudget(cpu.TapeBytes()/2 + 600<<10)
	defer cpu.SetTapeBudget(old)

	tc := replayCase{
		name:    "decode-budget",
		cfg:     smallConfig(2),
		streams: benchStreams("mcf-like", "milc-like"),
	}
	tc.cfg.InstrBudget = 120_000 // enough L1 misses to out-run one mirror page

	dRes, d := runDirect(t, tc, "LRU")
	rRes, r := runReplay(t, tc, "LRU", makeTapes(tc))
	compareRuns(t, tc, dRes, rRes, d, r)
}

// TestReplayUntaggableStreamFallback: streams outside the core-tagging
// range poison the tape with an error instead of replaying wrong state.
func TestReplayUntaggableStreamFallback(t *testing.T) {
	cfg := smallConfig(1)
	bad := trace.NewSliceStream([]trace.Access{
		{Addr: 1 << 45, PC: 0x400000, Kind: trace.Load},
	})
	tape := cpu.NewTape(cfg, bad)
	pol, _ := sim.BuildPolicy("LRU", 1, cfg.LLC.Ways, 0)
	rs := cpu.NewReplaySystem(cfg, pol, []*cpu.Tape{tape})
	if _, err := rs.Run(); err == nil {
		t.Fatal("untaggable stream must fail the replay")
	}
}