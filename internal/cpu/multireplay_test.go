package cpu_test

// Grid-differential suite for the one-pass multi-policy replay engine:
// every lane of a MultiReplaySystem must be byte-identical to (a) a
// standalone single-policy replay of the same tapes and (b) the direct
// simulation — for every policy the service can build, across the same
// 8 machine shapes as the single-policy suite — and a lane's results
// must be invariant under lane reordering and grid subsetting. CI runs
// this suite by name (with -race) before the full test run.

import (
	"reflect"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/cpu"
	"nucache/internal/sim"
	"nucache/internal/trace"
	"nucache/internal/workload"
)

// buildLanes constructs fresh policy instances for the named lanes
// (policies are stateful, so every engine needs its own set).
func buildLanes(t *testing.T, tc replayCase, names []string) []cache.Policy {
	t.Helper()
	pols := make([]cache.Policy, len(names))
	for i, n := range names {
		p, err := sim.BuildPolicy(n, tc.cfg.Cores, tc.cfg.LLC.Ways, 0)
		if err != nil {
			t.Fatalf("build %s: %v", n, err)
		}
		pols[i] = p
	}
	return pols
}

// runGrid replays one multi-policy grid over tapes and returns the
// per-lane results plus the system for machine-surface inspection.
func runGrid(t *testing.T, tc replayCase, names []string, tapes []*cpu.Tape) ([][]cpu.CoreResult, *cpu.MultiReplaySystem) {
	t.Helper()
	ms := cpu.NewMultiReplaySystem(tc.cfg, buildLanes(t, tc, names), tapes)
	res, err := ms.Run()
	if err != nil {
		t.Fatalf("multi replay: %v", err)
	}
	return res, ms
}

// compareLane asserts lane li of a multi-policy run is bit-identical to
// a reference machine over the same tapes (a single-policy ReplaySystem
// or a direct System): per-core results, full LLC statistics, prefetch
// and writeback counters, and DRAM state.
func compareLane(t *testing.T, ms *cpu.MultiReplaySystem, li int, laneRes []cpu.CoreResult,
	refRes []cpu.CoreResult, ref cpu.Machine, refWB, refPF uint64, wbComparable bool) {
	t.Helper()
	lane := ms.Lane(li)
	if !reflect.DeepEqual(refRes, laneRes) {
		t.Errorf("lane %d core results diverge\nref:  %+v\nlane: %+v", li, refRes, laneRes)
	}
	if !reflect.DeepEqual(ref.LLC().Stats, lane.LLC().Stats) {
		t.Errorf("lane %d LLC stats diverge\nref:  %+v\nlane: %+v", li, ref.LLC().Stats, lane.LLC().Stats)
	}
	if refPF != lane.Prefetches() {
		t.Errorf("lane %d prefetches diverge: ref %d, lane %d", li, refPF, lane.Prefetches())
	}
	if wbComparable && refWB != ms.LaneWritebacks(li) {
		t.Errorf("lane %d writebacks diverge: ref %d, lane %d", li, refWB, ms.LaneWritebacks(li))
	}
	rd, ld := ref.DRAM(), lane.DRAM()
	if (rd == nil) != (ld == nil) {
		t.Fatalf("lane %d DRAM presence diverges", li)
	}
	if rd != nil && (rd.Accesses != ld.Accesses || rd.RowHits != ld.RowHits) {
		t.Errorf("lane %d DRAM diverges: ref %d/%d, lane %d/%d",
			li, rd.Accesses, rd.RowHits, ld.Accesses, ld.RowHits)
	}
}

// TestMultiReplayMatchesSingleAndDirect is the tentpole guarantee:
// every policy lane of a full-lineup grid, on every machine shape, is
// byte-identical both to a standalone single-policy replay and to the
// direct simulation. Tapes are shared between the grid and the single
// replays, so it also proves the multi walk leaves tapes replayable.
func TestMultiReplayMatchesSingleAndDirect(t *testing.T) {
	for _, tc := range replayCases() {
		t.Run(tc.name, func(t *testing.T) {
			names := sim.Policies()
			tapes := makeTapes(tc)
			res, ms := runGrid(t, tc, names, tapes)
			if len(res) != len(names) {
				t.Fatalf("got %d lanes for %d policies", len(res), len(names))
			}
			for li, polName := range names {
				t.Run(polName, func(t *testing.T) {
					sRes, s := runReplay(t, tc, polName, tapes)
					compareLane(t, ms, li, res[li], sRes, s, s.Writebacks, s.PrefetchIssued, true)
					dRes, d := runDirect(t, tc, polName)
					// System.Writebacks counts L1-to-L2 drains too when a
					// private L2 exists (see compareRuns).
					compareLane(t, ms, li, res[li], dRes, d, d.Writebacks, d.PrefetchIssued,
						tc.cfg.L2.SizeBytes == 0)
				})
			}
		})
	}
}

// TestMultiReplayLaneArrangementInvariance is the property pin: a
// lane's results depend only on its own policy — not on lane order, not
// on which other lanes share the grid, not on duplicate siblings.
func TestMultiReplayLaneArrangementInvariance(t *testing.T) {
	tc := replayCases()[7] // L2+warmup+prefetch+dram: the richest shape
	names := sim.Policies()
	tapes := makeTapes(tc)

	full, _ := runGrid(t, tc, names, tapes)
	want := map[string][]cpu.CoreResult{}
	for i, n := range names {
		want[n] = full[i]
	}

	// Reversed lane order.
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	revRes, _ := runGrid(t, tc, rev, tapes)
	for i, n := range rev {
		if !reflect.DeepEqual(want[n], revRes[i]) {
			t.Errorf("%s diverges when lanes are reversed", n)
		}
	}

	// Every proper subset of adjacent lanes, including singletons.
	for lo := 0; lo < len(names); lo++ {
		for hi := lo + 1; hi <= len(names); hi++ {
			if lo == 0 && hi == len(names) {
				continue
			}
			sub := names[lo:hi]
			subRes, _ := runGrid(t, tc, sub, tapes)
			for i, n := range sub {
				if !reflect.DeepEqual(want[n], subRes[i]) {
					t.Errorf("%s diverges in subset %v", n, sub)
				}
			}
		}
	}

	// Duplicate lanes of one policy must be identical to each other and
	// to the full-grid lane (no cross-lane state leaks).
	dup := []string{names[0], names[1], names[0]}
	dupRes, _ := runGrid(t, tc, dup, tapes)
	if !reflect.DeepEqual(dupRes[0], dupRes[2]) {
		t.Errorf("duplicate %s lanes diverge from each other", names[0])
	}
	if !reflect.DeepEqual(want[names[0]], dupRes[0]) {
		t.Errorf("duplicate %s lane diverges from full grid", names[0])
	}
}

// runGridParallel is runGrid with lanes stepped on worker goroutines.
func runGridParallel(t *testing.T, tc replayCase, names []string, tapes []*cpu.Tape, workers int) ([][]cpu.CoreResult, *cpu.MultiReplaySystem) {
	t.Helper()
	ms := cpu.NewMultiReplaySystem(tc.cfg, buildLanes(t, tc, names), tapes)
	res, err := ms.RunParallel(workers)
	if err != nil {
		t.Fatalf("parallel multi replay: %v", err)
	}
	return res, ms
}

// TestMultiReplayParallelMatchesSerialAndSingle extends the tentpole
// guarantee to parallel lane stepping: every policy lane of a grid run
// on worker goroutines, on every machine shape, is byte-identical to
// the serial grid, to a standalone single-policy replay, and to the
// direct simulation. CI runs this by name under -race.
func TestMultiReplayParallelMatchesSerialAndSingle(t *testing.T) {
	for _, tc := range replayCases() {
		t.Run(tc.name, func(t *testing.T) {
			names := sim.Policies()
			tapes := makeTapes(tc)
			serial, _ := runGrid(t, tc, names, tapes)
			par, ms := runGridParallel(t, tc, names, tapes, 3)
			for li, polName := range names {
				t.Run(polName, func(t *testing.T) {
					if !reflect.DeepEqual(serial[li], par[li]) {
						t.Errorf("parallel lane diverges from serial grid\nserial: %+v\npar:    %+v",
							serial[li], par[li])
					}
					sRes, s := runReplay(t, tc, polName, tapes)
					compareLane(t, ms, li, par[li], sRes, s, s.Writebacks, s.PrefetchIssued, true)
					dRes, d := runDirect(t, tc, polName)
					compareLane(t, ms, li, par[li], dRes, d, d.Writebacks, d.PrefetchIssued,
						tc.cfg.L2.SizeBytes == 0)
				})
			}
		})
	}
}

// TestMultiReplayParallelStreamingWindow forces the decode budget to
// run out mid-tape (as in TestReplayDecodeBudgetStreaming), so parallel
// lanes contend on the mutex-guarded shared streaming window and
// trimWin must trim by published positions. Byte-identity against the
// serial grid and a single-policy replay pins the locked path.
func TestMultiReplayParallelStreamingWindow(t *testing.T) {
	old := cpu.SetTapeBudget(cpu.TapeBytes()/2 + 600<<10)
	defer cpu.SetTapeBudget(old)

	tc := replayCase{
		name:    "decode-budget",
		cfg:     smallConfig(2),
		streams: benchStreams("mcf-like", "milc-like"),
	}
	tc.cfg.InstrBudget = 120_000

	names := sim.Policies()
	tapes := makeTapes(tc)
	serial, _ := runGrid(t, tc, names, tapes)
	par, ms := runGridParallel(t, tc, names, tapes, len(names))
	for li, polName := range names {
		if !reflect.DeepEqual(serial[li], par[li]) {
			t.Errorf("%s: parallel streaming lane diverges from serial grid", polName)
		}
	}
	sRes, s := runReplay(t, tc, names[0], tapes)
	compareLane(t, ms, 0, par[0], sRes, s, s.Writebacks, s.PrefetchIssued, true)
}

// TestMultiReplayParallelWorkerCounts pins the clamps: zero, one, the
// lane count, and an oversubscribed worker count all produce identical
// results (0 and 1 degrade to the serial path; extras are clamped).
func TestMultiReplayParallelWorkerCounts(t *testing.T) {
	tc := replayCases()[7] // L2+warmup+prefetch+dram: the richest shape
	names := sim.Policies()
	tapes := makeTapes(tc)
	want, _ := runGrid(t, tc, names, tapes)
	for _, workers := range []int{0, 1, 2, len(names), 4 * len(names)} {
		got, _ := runGridParallel(t, tc, names, tapes, workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("results diverge with %d workers", workers)
		}
	}
}

// TestMultiReplayParallelNilResultsOnError pins the parallel error
// contract: a failed grid returns nil results, never partial ones.
func TestMultiReplayParallelNilResultsOnError(t *testing.T) {
	old := cpu.SetTapeBudget(0) // recording dies immediately
	defer cpu.SetTapeBudget(old)
	cfg := smallConfig(1)
	pols := buildLanes(t, replayCase{cfg: cfg}, []string{"LRU", "NUcache", "UCP"})
	ms := cpu.NewMultiReplaySystem(cfg, pols, []*cpu.Tape{cpu.NewTape(cfg, workload.MustByName("art-like").Stream(1))})
	res, err := ms.RunParallel(3)
	if err == nil {
		t.Fatal("parallel grid over a budget-starved tape should fail")
	}
	if res != nil {
		t.Fatalf("failed parallel grid returned non-nil results: %+v", res)
	}
}

// TestReplayRunNilResultsOnError pins the error contract of both Run
// paths: a failed replay returns nil results — never a partially
// populated slice — so callers can trust `res != nil` as success.
func TestReplayRunNilResultsOnError(t *testing.T) {
	old := cpu.SetTapeBudget(0) // recording dies immediately
	defer cpu.SetTapeBudget(old)
	cfg := smallConfig(1)
	newTape := func() *cpu.Tape {
		return cpu.NewTape(cfg, workload.MustByName("art-like").Stream(1))
	}

	pol, _ := sim.BuildPolicy("LRU", 1, cfg.LLC.Ways, 0)
	rs := cpu.NewReplaySystem(cfg, pol, []*cpu.Tape{newTape()})
	res, err := rs.Run()
	if err == nil {
		t.Fatal("replay over a budget-starved tape should fail")
	}
	if res != nil {
		t.Fatalf("failed Run returned non-nil results: %+v", res)
	}

	mPols := buildLanes(t, replayCase{cfg: cfg}, []string{"LRU", "NUcache"})
	ms := cpu.NewMultiReplaySystem(cfg, mPols, []*cpu.Tape{newTape()})
	mRes, err := ms.Run()
	if err == nil {
		t.Fatal("multi replay over a budget-starved tape should fail")
	}
	if mRes != nil {
		t.Fatalf("failed multi Run returned non-nil results: %+v", mRes)
	}
}

// TestMultiReplayUntaggableStream mirrors the single-policy fallback
// test: a stream outside the core-tagging range fails the whole grid
// with an error, never a panic or partial results.
func TestMultiReplayUntaggableStream(t *testing.T) {
	cfg := smallConfig(1)
	bad := trace.NewSliceStream([]trace.Access{
		{Addr: 1 << 45, PC: 0x400000, Kind: trace.Load},
	})
	tape := cpu.NewTape(cfg, bad)
	pols := buildLanes(t, replayCase{cfg: cfg}, []string{"LRU", "NUcache", "UCP"})
	ms := cpu.NewMultiReplaySystem(cfg, pols, []*cpu.Tape{tape})
	res, err := ms.Run()
	if err == nil {
		t.Fatal("untaggable stream must fail the grid")
	}
	if res != nil {
		t.Fatalf("failed grid returned non-nil results: %+v", res)
	}
}
