package cpu

import (
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"nucache/internal/failpoint"
	"nucache/internal/trace"
)

// Tapes are recorded lazily, in chunks: a replay that stalls on the end
// of a tape asks for more events, and the tape's recorder (which keeps
// its live stream and private-cache state) advances just far enough.
// That sizes every tape to what replays actually consume — a fast
// policy's cores stop at their budget crossing, and nothing is recorded
// past the last consumer's need plus one chunk — without guessing a
// slack factor up front.
const (
	// tapeChunkMin/Max bound the per-extension event count; chunks double
	// from Min to Max so tiny test tapes stay tiny and experiment-scale
	// tapes amortize the lock. Max stays modest because the final
	// extension overshoots the last consumer's need by up to one chunk —
	// events recorded (an L1/L2 simulation) but never replayed.
	tapeChunkMin = 4 << 10
	tapeChunkMax = 8 << 10
)

// DefaultTapeBudget caps the process-wide memory spent on filtered
// tapes. Past the cap, new tapes are refused (callers fall back to
// direct simulation); tapes already recording may grow to twice the cap
// before their replays are failed too, so in-flight work completes.
const DefaultTapeBudget = 512 << 20

// decEvent is one mirrored event, packed into 16 bytes so sequential
// replay touches a quarter of the cache lines a trace.FilteredEvent
// mirror would (the mirror working set of a many-core grid cell far
// exceeds the LLC, so every line touched is a memory stall):
//
//	w0: addr(40) | store(1) | wb(1) | cycleGapLow(22)
//	w1: pc(48) | cycleGapHigh(16)
//
// The address and PC widths are exactly the record guards' maxRawAddr/
// maxRawPC bounds (record.go), so packing never truncates; a cycle gap
// over 2^38 stops the mirror instead (recorder.mirror). Writeback
// victims live in a side list (wbRec) consumed sequentially: replay
// always reads a tape front to back, so the i'th wb-flagged event is
// the i'th wbRec.
type decEvent struct{ w0, w1 uint64 }

// wbRec is the writeback victim of one wb-flagged mirrored event.
type wbRec struct{ addr, pc uint64 }

const (
	decAddrBits = coreAddrShift // record guard: addr < 1<<40
	decPCBits   = corePCShift   // record guard: pc < 1<<48

	decStoreBit    = 1 << decAddrBits
	decWBBit       = 1 << (decAddrBits + 1)
	decGapLowShift = decAddrBits + 2
	decGapLowBits  = 64 - decGapLowShift
	decGapBits     = decGapLowBits + 64 - decPCBits

	decEventBytes = 16
	wbRecBytes    = 16
)

// decPageShift sizes the decode cache's pages (8192 events, 128KB;
// writeback side pages hold 4096 records, 64KB). Fixed-size pages are
// written into place and never reallocated, so growing the cache copies
// nothing and the pages (pointer-free) cost the garbage collector
// nothing to scan.
const (
	decPageShift = 13
	decPageSize  = 1 << decPageShift
	decPageMask  = decPageSize - 1

	wbPageShift = 12
	wbPageSize  = 1 << wbPageShift
	wbPageMask  = wbPageSize - 1
)

var (
	tapesRecorded     atomic.Int64
	tapeBytes         atomic.Int64
	tapeBudget        atomic.Int64
	tapeChecksumFails atomic.Int64

	// decBytes accounts the decoded-event caches separately from the
	// packed tapes. When it reaches the tape budget, tapes stop growing
	// their decode caches and replays stream-decode the packed buffer
	// instead — a transparent slowdown, never a fallback to direct
	// simulation.
	decBytes atomic.Int64

	tapeMu   sync.Mutex
	tapeMemo = map[string]*Tape{}
)

func init() { tapeBudget.Store(DefaultTapeBudget) }

// TapesRecorded returns the number of filtered tapes recorded by this
// process (exported as the traces_recorded expvar).
func TapesRecorded() int64 { return tapesRecorded.Load() }

// TapeBytes returns the packed bytes held by all filtered tapes
// (exported as the trace_bytes expvar).
func TapeBytes() int64 { return tapeBytes.Load() }

// TapeChecksumFails returns how many tape frames failed CRC
// verification (exported as the tape_checksum_fails expvar). Each
// failure kills its tape; replays fall back to direct simulation.
func TapeChecksumFails() int64 { return tapeChecksumFails.Load() }

// SetTapeBudget replaces the process-wide tape memory cap and returns
// the previous value. Intended for operators (flag) and tests.
func SetTapeBudget(n int64) int64 { return tapeBudget.Swap(n) }

// Tape is one core's recorded front end: a filtered trace plus the live
// recorder that extends it on demand. A tape is written by at most one
// goroutine at a time (under mu) and replayed by any number of
// concurrent cursors; the packed buffer is append-only, so snapshots
// handed to cursors stay valid as the tape grows.
type Tape struct {
	frontEnd string

	mu      sync.Mutex
	rec     *recorder // also owns the decoded-event mirror pages
	chunk   uint64
	dead    error // non-nil: tape unusable; replays fail over to direct
	counted int   // bytes already added to tapeBytes

	// Integrity frames: each tape extension CRC-32Cs the bytes it
	// appended, and frames are re-verified once, on the first snapshot
	// after their creation (a watermark, so verification work totals
	// O(tape) no matter how many replays share it). A mismatch — bit rot
	// in a long-lived process's tape memory — kills the tape; replays
	// degrade to direct simulation instead of replaying corrupt events.
	frames     []tapeFrame
	frameEnd   int // bytes covered by frames
	frameCheck int // frames verified so far
}

// tapeFrame is one extension's checksum: CRC-32C of the packed buffer
// from the previous frame's end to this one's.
type tapeFrame struct {
	end int
	crc uint32
}

var tapeCRCTable = crc32.MakeTable(crc32.Castagnoli)

// NewTape records stream's front end for cfg on demand. Most callers
// want AcquireTape (the process-wide memo); NewTape is for tests and
// one-off tapes.
func NewTape(cfg Config, stream trace.Stream) *Tape {
	return &Tape{
		frontEnd: FrontEndKey(cfg),
		rec:      newRecorder(cfg, stream),
		chunk:    tapeChunkMin,
	}
}

// FrontEndKey canonicalizes the Config fields that determine a core's
// filtered tape: private geometry and latencies (they shape hit/miss
// outcomes and the policy-independent clock) and the warm-up/budget
// thresholds (they place the recorded crossings). LLC geometry, LLC and
// memory latencies, DRAM and the prefetch degree are deliberately
// excluded — they are replay-side — so one tape serves the whole policy
// grid and every LLC sweep.
func FrontEndKey(cfg Config) string {
	return fmt.Sprintf("l1=%d/%d/%d,l2=%d/%d/%d,lat=%d+%d,warm=%d,budget=%d",
		cfg.L1.SizeBytes, cfg.L1.Ways, cfg.L1.LineBytes,
		cfg.L2.SizeBytes, cfg.L2.Ways, cfg.L2.LineBytes,
		cfg.L1Latency, cfg.L2Latency, cfg.WarmupInstr, cfg.InstrBudget)
}

// AcquireTape returns the process-wide shared tape for (id, front end),
// recording a new one on first use. id must identify the stream that
// open returns — benchmark name plus derived seed — and open must build
// a fresh stream (it is called at most once). Returns an error when the
// tape memory budget is exhausted; the caller then simulates directly.
func AcquireTape(id string, cfg Config, open func() trace.Stream) (*Tape, error) {
	key := id + "|" + FrontEndKey(cfg)
	tapeMu.Lock()
	defer tapeMu.Unlock()
	if t, ok := tapeMemo[key]; ok {
		return t, nil
	}
	if tapeBytes.Load() >= tapeBudget.Load() {
		return nil, fmt.Errorf("cpu: tape budget exhausted (%d of %d bytes)",
			tapeBytes.Load(), tapeBudget.Load())
	}
	t := NewTape(cfg, open())
	tapeMemo[key] = t
	tapesRecorded.Add(1)
	return t, nil
}

// LookupTape returns the memoized tape for (id, front end) when one has
// already been recorded, and nil otherwise. It never records: callers
// that will replay only once (alone-IPC denominators) use it to reuse a
// tape some mix already paid for, falling back to direct simulation
// instead of recording a tape nothing else would replay.
func LookupTape(id string, cfg Config) *Tape {
	key := id + "|" + FrontEndKey(cfg)
	tapeMu.Lock()
	defer tapeMu.Unlock()
	return tapeMemo[key]
}

// ResetTapes drops the process-wide tape memo and its byte accounting.
// For tests that need a cold cache.
func ResetTapes() {
	tapeMu.Lock()
	defer tapeMu.Unlock()
	for k, t := range tapeMemo {
		t.mu.Lock()
		tapeBytes.Add(-int64(t.counted))
		decBytes.Add(-int64(t.rec.decCounted))
		t.counted, t.rec.decCounted = 0, 0
		t.dead = fmt.Errorf("cpu: tape reset")
		t.mu.Unlock()
		delete(tapeMemo, k)
	}
}

// tapeView is one consistent snapshot of a tape handed to a replay core:
// the decoded-event prefix, the packed buffer backing it, and the
// crossing list. When the decode cache stopped short of the recorded
// events (decode budget exhausted), overflow is a cursor positioned at
// decCount for the core to stream-decode the rest itself.
type tapeView struct {
	decPages [][]decEvent
	wbPages  [][]wbRec
	decCount uint64
	events   uint64 // events recorded in the packed buffer
	buf      []byte
	cross    []trace.Crossing
	complete bool
	overflow trace.FilteredCursor // valid iff decCount < events
}

// snapshot returns the current readable state of the tape, extending it
// first when the caller has consumed everything recorded so far. decoded
// is the number of events the caller has already replayed.
func (t *Tape) snapshot(decoded uint64) (tapeView, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead != nil {
		return tapeView{}, t.dead
	}
	if err := t.verifyFrames(); err != nil {
		return tapeView{}, err
	}
	tr := t.rec.tr
	if tr.Events() <= decoded && !tr.Complete() {
		// Growing tapes stop being extended at twice the budget; replays
		// in flight fail over to direct simulation from here on.
		if tapeBytes.Load() >= 2*tapeBudget.Load() {
			t.dead = fmt.Errorf("cpu: tape budget exhausted while extending")
			return tapeView{}, t.dead
		}
		if err := failpoint.Inject("cpu.tape.extend"); err != nil {
			t.dead = err
			return tapeView{}, err
		}
		if err := t.rec.run(tr.Events() + t.chunk); err != nil {
			t.dead = err
			return tapeView{}, err
		}
		if t.chunk < tapeChunkMax {
			t.chunk *= 2
		}
		tapeBytes.Add(int64(tr.Bytes() - t.counted))
		t.counted = tr.Bytes()
		t.sealFrame()
	}
	buf, events, cross := tr.Snapshot()
	v := tapeView{
		decPages: t.rec.decPages, wbPages: t.rec.wbPages, decCount: t.rec.decCount,
		events: events, buf: buf, cross: cross,
		complete: tr.Complete(),
	}
	if v.decCount < events {
		// The mirror stopped at the decode budget; hand out a cursor
		// positioned exactly where it stopped for stream-decoding.
		v.overflow = trace.ResumeCursor(t.rec.stopOff, t.rec.stopAddr, t.rec.stopPC, v.decCount)
		v.overflow.Rebase(buf, events)
	}
	return v, nil
}

// sealFrame checksums the bytes the extension just appended. Called
// with t.mu held, right after the recorder ran.
func (t *Tape) sealFrame() {
	buf, _, _ := t.rec.tr.Snapshot()
	if len(buf) <= t.frameEnd {
		return
	}
	t.frames = append(t.frames, tapeFrame{
		end: len(buf),
		crc: crc32.Checksum(buf[t.frameEnd:len(buf)], tapeCRCTable),
	})
	t.frameEnd = len(buf)
}

// verifyFrames re-checks frames sealed by earlier extensions, each
// exactly once (watermark). Called with t.mu held. On a mismatch the
// tape is dead: cursors already holding snapshots of the corrupt bytes
// cannot be trusted either, so their replays error out and the whole
// simulation falls back to the direct engine.
func (t *Tape) verifyFrames() error {
	buf, _, _ := t.rec.tr.Snapshot()
	start := 0
	if t.frameCheck > 0 {
		start = t.frames[t.frameCheck-1].end
	}
	for ; t.frameCheck < len(t.frames); t.frameCheck++ {
		f := t.frames[t.frameCheck]
		if got := crc32.Checksum(buf[start:f.end], tapeCRCTable); got != f.crc {
			tapeChecksumFails.Add(1)
			t.dead = fmt.Errorf("cpu: tape frame %d (bytes %d..%d) checksum mismatch: %#x, recorded %#x",
				t.frameCheck, start, f.end, got, f.crc)
			return t.dead
		}
		start = f.end
	}
	return nil
}

// Verify re-checks every sealed frame immediately, regardless of the
// once-per-frame watermark — an on-demand integrity scan for tests and
// operators. A mismatch kills the tape exactly as the lazy check would.
func (t *Tape) Verify() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.dead != nil {
		return t.dead
	}
	buf, _, _ := t.rec.tr.Snapshot()
	start := 0
	for i, f := range t.frames {
		if got := crc32.Checksum(buf[start:f.end], tapeCRCTable); got != f.crc {
			tapeChecksumFails.Add(1)
			t.dead = fmt.Errorf("cpu: tape frame %d (bytes %d..%d) checksum mismatch: %#x, recorded %#x",
				i, start, f.end, got, f.crc)
			return t.dead
		}
		start = f.end
	}
	return nil
}
