package cpu

import (
	"fmt"

	"nucache/internal/trace"
)

// The record pass: run one core's stream through its private L1/L2
// hierarchy exactly as (*System).step does, but with no shared LLC, and
// append everything the LLC would see to a trace.FilteredTrace. The
// private hierarchy is policy-independent — its hit/miss outcomes,
// victims and timing contributions do not depend on what the shared
// cache does — so one recording serves every LLC policy via
// ReplaySystem.
//
// Addresses and PCs are recorded untagged (no core bits). The private
// caches behave identically on untagged addresses because core tagging
// adds bits far above any set-index or line-offset bit, and the replay
// engine re-applies the per-core tags. That keeps one tape reusable at
// any core position of any mix. The guards below reject the (never
// generated, but possible via custom streams) addresses for which
// tagging would not commute with recording; the tape is then abandoned
// and callers fall back to direct simulation.

const (
	// maxRawAddr keeps addr + core<<coreAddrShift carry-free and leaves
	// headroom for next-line prefetch addresses derived at replay time.
	maxRawAddr = 1<<coreAddrShift - 1<<20
	// maxRawPC keeps pc | core<<corePCShift equal to addition.
	maxRawPC = 1 << corePCShift
)

// recorder advances one core's policy-independent front end and grows
// its filtered tape on demand. It mirrors (*System).step statement for
// statement on the private-hierarchy side (keep the two in sync), with
// the private caches modeled by privCache — semantically identical to
// the direct engine's cache.Cache + l1lru, but specialized for speed.
type recorder struct {
	cfg    Config
	stream trace.Stream
	l1     *privCache
	l2     *privCache // nil when the private L2 is disabled
	tr     *trace.FilteredTrace

	// p accumulates the core's policy-independent cycles: workload gaps
	// plus private-hierarchy latencies. The core's clock in a real run is
	// p plus the LLC/memory service cycles of its replayed events.
	p     uint64
	instr uint64
	mem   uint64

	// lastEvP / lastEvInstr are p and instr at the start of the previous
	// event's step (delta bases for CycleGap/InstrGap).
	lastEvP     uint64
	lastEvInstr uint64

	// The decoded mirror: every event appended to the packed tape is
	// also written, still in registers, into fixed-size pages of 16-byte
	// packed records (writeback victims in a sequential side list) so
	// replays never re-decode the varint stream — and touch a quarter of
	// the cache lines a full struct mirror would. Mirroring stops
	// (permanently for this tape) when the process-wide decode budget
	// runs out or a field outruns the packed layout; stopOff/stopAddr/
	// stopPC then let a ResumeCursor stream-decode the rest of the packed
	// buffer from exactly that point. Mutated only under the owning
	// Tape's lock.
	decPages   [][]decEvent
	wbPages    [][]wbRec
	decCount   uint64
	wbCount    uint64
	decCounted int // bytes charged to decBytes
	decStopped bool
	stopOff    int
	stopAddr   uint64
	stopPC     uint64

	warmed   bool
	budgeted bool
	err      error
}

func newRecorder(cfg Config, stream trace.Stream) *recorder {
	r := &recorder{
		cfg:    cfg,
		stream: stream,
		l1:     newPrivCache(cfg.L1),
		tr:     &trace.FilteredTrace{},
	}
	if cfg.L2.SizeBytes > 0 {
		r.l2 = newPrivCache(cfg.L2)
	}
	return r
}

// run advances the front end until the tape holds at least target events
// or the stream is exhausted. A non-nil error means the tagging guard
// tripped and the tape must not be used.
func (r *recorder) run(target uint64) error {
	for r.err == nil && !r.tr.Complete() && r.tr.Events() < target {
		r.step()
	}
	return r.err
}

func (r *recorder) step() {
	a, ok := r.stream.Next()
	if !ok {
		r.tr.AppendCrossing(trace.Crossing{
			Kind: trace.CrossExhaust, AfterEvents: r.tr.Events(),
			PStart: r.p, PEnd: r.p,
			Instr: r.instr, Mem: r.mem,
			L1Hits: r.l1.hits, L1Misses: r.l1.misses,
		})
		r.tr.MarkComplete()
		return
	}
	if a.Addr >= maxRawAddr || a.PC >= maxRawPC {
		r.err = fmt.Errorf("cpu: access %#x/pc %#x outside the taggable range", a.Addr, a.PC)
		return
	}
	pstart := r.p
	r.p += uint64(a.Gap) // non-memory instructions, 1 cycle each

	l1res := r.l1.access(a.Addr, a.PC, a.Kind == trace.Store)
	var ev trace.FilteredEvent
	isEvent := false
	switch {
	case l1res.hit:
		r.p += r.cfg.L1Latency
	case r.l2 != nil:
		r.p += r.cfg.L1Latency + r.cfg.L2Latency
		l2res := r.l2.access(a.Addr, a.PC, a.Kind == trace.Store)
		// The L1 victim drains into the private L2 (posted); the drain's
		// own L2 victim is dropped, exactly as in (*System).step.
		if l1res.evValid && l1res.evDirty {
			r.l2.access(l1res.evTag<<6, l1res.evPC, true)
		}
		if !l2res.hit {
			ev, isEvent = r.makeEvent(a, pstart, l2res), true
		}
	default:
		r.p += r.cfg.L1Latency
		ev, isEvent = r.makeEvent(a, pstart, l1res), true
	}
	if isEvent {
		if ev.HasWB && (ev.WBAddr >= maxRawAddr || ev.WBPC >= maxRawPC) {
			r.err = fmt.Errorf("cpu: writeback %#x/pc %#x outside the taggable range", ev.WBAddr, ev.WBPC)
			return
		}
		r.append(ev)
		r.lastEvP = pstart
		r.lastEvInstr = r.instr
	}

	r.instr += uint64(a.Gap) + 1
	r.mem++
	if r.cfg.WarmupInstr > 0 && !r.warmed && r.instr >= r.cfg.WarmupInstr {
		r.warmed = true
		r.cross(trace.CrossWarmup, isEvent, pstart)
	}
	if r.cfg.InstrBudget > 0 && !r.budgeted && r.instr >= r.cfg.InstrBudget {
		r.budgeted = true
		r.cross(trace.CrossRecord, isEvent, pstart)
	}
}

// append packs ev onto the tape and mirrors it into the decoded pages
// (unless the decode budget stopped the mirror for good).
func (r *recorder) append(ev trace.FilteredEvent) {
	if !r.decStopped {
		r.mirror(ev)
	}
	r.tr.AppendEvent(ev)
}

// mirror writes ev's packed 16-byte record (and writeback side record),
// or latches decStopped — capturing the encoder position a ResumeCursor
// needs — when the budget is exhausted or ev doesn't fit the layout.
func (r *recorder) mirror(ev trace.FilteredEvent) {
	if ev.CycleGap>>decGapBits != 0 {
		// A gap too large for the packed record (2^38 simulated cycles
		// between two LLC events) — never produced by real workloads.
		r.stopMirror()
		return
	}
	if r.decCount&decPageMask == 0 {
		if decBytes.Load() >= tapeBudget.Load() {
			r.stopMirror()
			return
		}
		r.decPages = append(r.decPages, make([]decEvent, decPageSize))
		r.charge(decPageSize * decEventBytes)
	}
	w0 := ev.Addr | (ev.CycleGap&(1<<decGapLowBits-1))<<decGapLowShift
	if ev.Kind == trace.Store {
		w0 |= decStoreBit
	}
	if ev.HasWB {
		w0 |= decWBBit
		if r.wbCount&wbPageMask == 0 {
			// Writeback pages are charged but not gated: the event-page
			// check above bounds the mirror's growth between checks.
			r.wbPages = append(r.wbPages, make([]wbRec, wbPageSize))
			r.charge(wbPageSize * wbRecBytes)
		}
		r.wbPages[r.wbCount>>wbPageShift][r.wbCount&wbPageMask] = wbRec{addr: ev.WBAddr, pc: ev.WBPC}
		r.wbCount++
	}
	w1 := ev.PC | (ev.CycleGap>>decGapLowBits)<<decPCBits
	r.decPages[r.decCount>>decPageShift][r.decCount&decPageMask] = decEvent{w0: w0, w1: w1}
	r.decCount++
}

func (r *recorder) stopMirror() {
	r.decStopped = true
	r.stopOff, r.stopAddr, r.stopPC = r.tr.Pos()
}

func (r *recorder) charge(n int) {
	decBytes.Add(int64(n))
	r.decCounted += n
}

func (r *recorder) makeEvent(a trace.Access, pstart uint64, upper privResult) trace.FilteredEvent {
	ev := trace.FilteredEvent{
		Addr: a.Addr, PC: a.PC, Kind: a.Kind,
		CycleGap: pstart - r.lastEvP,
		InstrGap: r.instr - r.lastEvInstr,
	}
	if upper.evValid && upper.evDirty {
		ev.HasWB = true
		ev.WBAddr = upper.evTag << 6
		ev.WBPC = upper.evPC
	}
	return ev
}

func (r *recorder) cross(kind trace.CrossKind, onEvent bool, pstart uint64) {
	r.tr.AppendCrossing(trace.Crossing{
		Kind: kind, AfterEvents: r.tr.Events(), OnEvent: onEvent,
		PStart: pstart, PEnd: r.p,
		Instr: r.instr, Mem: r.mem,
		L1Hits: r.l1.hits, L1Misses: r.l1.misses,
	})
}
