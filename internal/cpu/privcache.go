package cpu

import (
	"math/bits"

	"nucache/internal/cache"
)

// privCache is the recorder's specialized model of a private L1/L2: a
// set-associative LRU cache with exactly the semantics of cache.Cache
// driven by l1lru, but with the generic machinery (request structs,
// policy interface calls, per-core counters, observer hooks) compiled
// away. The record pass runs every simulated access through this model,
// so its constant factor bounds how fast tapes can be cut.
//
// Equivalence contract with cache.Cache + l1lru (checked by the replay
// differential suite, which compares L1 statistics and every downstream
// LLC outcome against the direct engine):
//   - lookup scans ways in index order and takes the first valid tag
//     match;
//   - a store hit marks the line dirty;
//   - the fill victim is the lowest-numbered invalid way, else the way
//     with the oldest use stamp (stamps are per-access monotonic, so a
//     process-wide counter orders them identically to a per-set one);
//   - a filled line records the demand PC and is dirty iff the demand
//     was a store;
//   - hit/miss counts match cache.Stats.Hits/Misses.
type privCache struct {
	ways       int
	offsetBits uint
	indexMask  uint64

	tags  []uint64 // sets*ways, indexed set*ways+way
	pcs   []uint64 // fill PC per line
	stamp []uint64 // last-use tick per line
	valid []uint64 // per-set bitmask of valid ways
	dirty []uint64 // per-set bitmask of dirty ways
	tick  uint64

	hits, misses uint64
}

// privResult is the outcome of one access: hit or fill, plus the victim
// line's identity when a valid line was displaced.
type privResult struct {
	hit     bool
	evValid bool
	evDirty bool
	evTag   uint64
	evPC    uint64
}

func newPrivCache(cfg cache.Config) *privCache {
	sets := cfg.Sets()
	return &privCache{
		ways:       cfg.Ways,
		offsetBits: uint(bits.TrailingZeros64(uint64(cfg.LineBytes))),
		indexMask:  uint64(sets - 1),
		tags:       make([]uint64, sets*cfg.Ways),
		pcs:        make([]uint64, sets*cfg.Ways),
		stamp:      make([]uint64, sets*cfg.Ways),
		valid:      make([]uint64, sets),
		dirty:      make([]uint64, sets),
	}
}

func (p *privCache) access(addr, pc uint64, store bool) privResult {
	set := int((addr >> p.offsetBits) & p.indexMask)
	tag := addr >> p.offsetBits
	base := set * p.ways
	mask := p.valid[set]
	p.tick++

	for i, t := range p.tags[base : base+p.ways] {
		if t == tag && mask&(1<<uint(i)) != 0 {
			p.hits++
			if store {
				p.dirty[set] |= 1 << uint(i)
			}
			p.stamp[base+i] = p.tick
			return privResult{hit: true}
		}
	}
	p.misses++

	var way int
	if free := ^mask & (uint64(1)<<uint(p.ways) - 1); free != 0 {
		way = bits.TrailingZeros64(free)
	} else {
		min := p.stamp[base]
		for i := 1; i < p.ways; i++ {
			if s := p.stamp[base+i]; s < min {
				way, min = i, s
			}
		}
	}

	res := privResult{}
	wb := uint64(1) << uint(way)
	if mask&wb != 0 {
		res.evValid = true
		res.evDirty = p.dirty[set]&wb != 0
		res.evTag = p.tags[base+way]
		res.evPC = p.pcs[base+way]
	}
	p.tags[base+way] = tag
	p.pcs[base+way] = pc
	p.stamp[base+way] = p.tick
	p.valid[set] |= wb
	if store {
		p.dirty[set] |= wb
	} else {
		p.dirty[set] &^= wb
	}
	return res
}
