package cpu

import (
	"fmt"

	"nucache/internal/trace"
)

// TapeVisitor consumes one core's LLC-bound access stream during a
// profiling walk (WalkTape). Access is called once per LLC access in
// the exact order the replay engine would issue them: the demand access,
// then its prefetch fan-out, then the posted writeback (demand=false for
// the latter two). Crossing is called at the same points the replay
// engine applies statistic crossings; returning false stops the walk.
type TapeVisitor interface {
	Access(addr, pc uint64, kind trace.Kind, demand bool)
	Crossing(cr trace.Crossing) bool
}

// WalkTape walks one core's recorded tape through a visitor, applying
// the same per-core address/PC tagging and access fan-out as replay but
// with no LLC model and no timing: the visitor sees the policy-
// independent access stream, which is what MRC profiling shadows.
func WalkTape(cfg Config, coreIndex int, t *Tape, v TapeVisitor) error {
	var (
		view      tapeView
		walked    uint64 // events delivered to the visitor
		nextCross int
		streaming bool
		cur       trace.FilteredCursor
		wbIdx     uint64
		ev        trace.FilteredEvent
	)
	addrTag := uint64(coreIndex) << coreAddrShift
	pcTag := uint64(coreIndex) << corePCShift
	lineBytes := uint64(cfg.LLC.LineBytes)
	for {
		// Deliver every crossing due at or before the current position:
		// off-event crossings at ordinal `walked` precede the next event,
		// and an on-event crossing of the event just delivered has
		// AfterEvents == walked after the increment below. Both match the
		// replay engine's delivery points.
		for nextCross < len(view.cross) && view.cross[nextCross].AfterEvents <= walked {
			cr := view.cross[nextCross]
			nextCross++
			if !v.Crossing(cr) {
				return nil
			}
		}
		switch {
		case walked < view.decCount:
			e := &view.decPages[walked>>decPageShift][walked&decPageMask]
			w0, w1 := e.w0, e.w1
			ev.Addr = w0 & (1<<decAddrBits - 1)
			ev.PC = w1 & (1<<decPCBits - 1)
			ev.Kind = trace.Load
			if w0&decStoreBit != 0 {
				ev.Kind = trace.Store
			}
			if w0&decWBBit != 0 {
				wb := &view.wbPages[wbIdx>>wbPageShift][wbIdx&wbPageMask]
				ev.HasWB, ev.WBAddr, ev.WBPC = true, wb.addr, wb.pc
				wbIdx++
			} else {
				ev.HasWB = false
			}
		case walked < view.events:
			if !streaming {
				streaming = true
				cur = view.overflow
			}
			ok, err := cur.Next(&ev)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("cpu: walk core %d: packed tape short of event %d", coreIndex, walked)
			}
		case view.complete:
			return nil
		default:
			nv, err := t.snapshot(walked)
			if err != nil {
				return err
			}
			view = nv
			if streaming {
				cur.Rebase(nv.buf, nv.events)
			}
			continue
		}
		// Mirror playEvent's LLC access order exactly.
		addr := ev.Addr + addrTag
		pc := ev.PC | pcTag
		v.Access(addr, pc, ev.Kind, true)
		for d := 1; d <= cfg.PrefetchDegree; d++ {
			v.Access(addr+uint64(d)*lineBytes, pc, trace.Load, false)
		}
		if ev.HasWB {
			v.Access(ev.WBAddr+addrTag, ev.WBPC|pcTag, trace.Store, false)
		}
		walked++
	}
}
