package cpu

import (
	"sync"
	"sync/atomic"

	"nucache/internal/cache"
)

// MultiReplaySystem steps a whole LLC policy grid through one tape
// walk: each filtered event is decoded once (16-byte mirror unpack, or
// the shared streaming window when the decode budget ran out) and
// applied to an array of per-policy LLC+DRAM lanes. Per-lane divergence
// — different hit/miss outcomes, so different service cycles, so a
// different cross-core merge order — is handled by giving each lane its
// own per-core clocks and replaying the measurement crossings against
// the lane's own timing.
//
// Correctness: lanes share only the append-only tape views and the
// policy-independent item stream; no lane writes state another lane
// reads. Any interleaving of lane stepping therefore produces, for each
// lane, results byte-identical to a standalone single-policy
// ReplaySystem over the same tapes — the grid-differential suite
// (multireplay_test.go) pins this against every registered policy and
// machine shape.
type MultiReplaySystem struct {
	eng replayEngine
}

// multiReplayBatch is how many items one lane plays before yielding to
// the next. Each lane's LLC+DRAM state is megabytes, so fine-grained
// interleaving thrashes it out of the cache hierarchy between visits —
// measured 35% slower than serial at 256 items. Large batches keep a
// lane's state resident while it runs, yet still bound how far lanes
// drift apart on the tape (16384 events ≈ 256KB of packed mirror), so
// a tape chunk pulled in by the leading lane is re-read from cache, not
// DRAM, by the trailing ones.
const multiReplayBatch = 16384

// NewMultiReplaySystem builds one replay lane per policy over a shared
// tape walk. Tapes must have been recorded for a config with the same
// front end (FrontEndKey), exactly as for NewReplaySystem; all lanes
// share the replay-side config (LLC geometry, latencies, DRAM, prefetch
// degree) and differ only in the LLC policy.
func NewMultiReplaySystem(cfg Config, pols []cache.Policy, tapes []*Tape) *MultiReplaySystem {
	return &MultiReplaySystem{eng: newReplayEngine(cfg, pols, tapes)}
}

// Lanes returns the number of policy lanes.
func (ms *MultiReplaySystem) Lanes() int { return len(ms.eng.lanes) }

// Lane exposes lane i's machine surface (LLC stats, DRAM, prefetches)
// after Run — the per-policy analogue of a ReplaySystem.
func (ms *MultiReplaySystem) Lane(i int) Machine { return &ms.eng.lanes[i] }

// LaneWritebacks returns lane i's posted-writeback count (the
// counterpart of ReplaySystem.Writebacks).
func (ms *MultiReplaySystem) LaneWritebacks(i int) uint64 {
	return ms.eng.lanes[i].Writebacks
}

// Run replays every lane and returns per-lane, per-core results, each
// byte-identical to what a single-policy ReplaySystem over the same
// tapes would return. Lanes advance in bounded round-robin batches so
// they walk the same tape region together. An error (tape budget
// exhausted, corrupt tape, untaggable stream) aborts the whole grid —
// tape defects are shared by construction, every lane would hit the
// same one — and the results are always nil, never partial; callers
// fall back to single-policy replay or direct simulation per lane.
func (ms *MultiReplaySystem) Run() ([][]CoreResult, error) {
	e := &ms.eng
	if err := e.start(); err != nil {
		return nil, err
	}
	for {
		alive := false
		for li := range e.lanes {
			l := &e.lanes[li]
			if l.done {
				continue
			}
			if err := e.runLane(l, multiReplayBatch); err != nil {
				return nil, err
			}
			if !l.done {
				alive = true
			}
		}
		if !alive {
			break
		}
	}
	return ms.collect()
}

// RunParallel is Run with lanes stepped on up to workers goroutines.
// The package-comment guarantee — any interleaving of lane stepping is
// byte-identical per lane — is what makes this legal; the only shared
// mutable state is the streaming-decode window, which the engine locks
// in parallel mode. Execution is round-based: each round, every live
// lane advances exactly one multiReplayBatch (workers claim lanes from
// a shared dispenser), then a barrier. That preserves the serial
// round-robin's two properties: lanes drift at most one batch apart on
// the tape (so a chunk pulled in by the leader is still cache-resident
// for the trailers), and the streaming window holds a bounded span.
//
// workers is clamped to the lane count; with one worker (or one lane)
// this is exactly Run. Errors behave as in Run: shared by construction,
// so whichever lane hits one first aborts the grid with nil results.
func (ms *MultiReplaySystem) RunParallel(workers int) ([][]CoreResult, error) {
	e := &ms.eng
	if workers > len(e.lanes) {
		workers = len(e.lanes)
	}
	if workers <= 1 {
		return ms.Run()
	}
	if err := e.start(); err != nil {
		return nil, err
	}
	e.parallel = true
	live := make([]*replayLane, 0, len(e.lanes))
	for li := range e.lanes {
		live = append(live, &e.lanes[li])
	}
	var (
		errMu  sync.Mutex
		runErr error
	)
	for len(live) > 0 {
		var next atomic.Int64
		var wg sync.WaitGroup
		n := workers
		if n > len(live) {
			n = len(live)
		}
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(live) {
						return
					}
					l := live[i]
					err := e.runLane(l, multiReplayBatch)
					l.publish()
					if err != nil {
						errMu.Lock()
						if runErr == nil {
							runErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if runErr != nil {
			return nil, runErr
		}
		alive := live[:0]
		for _, l := range live {
			if !l.done {
				alive = append(alive, l)
			}
		}
		live = alive
	}
	return ms.collect()
}

func (ms *MultiReplaySystem) collect() ([][]CoreResult, error) {
	e := &ms.eng
	out := make([][]CoreResult, len(e.lanes))
	for li := range e.lanes {
		res, err := e.lanes[li].results()
		if err != nil {
			return nil, err
		}
		out[li] = res
	}
	return out, nil
}
