// Package cpu provides the trace-driven multicore timing model: private
// L1 data caches per core, a shared last-level cache with a pluggable
// policy, and a fixed-latency memory behind it. Cores are in-order with
// one-cycle non-memory instructions; memory instructions stall for the
// latency of whichever level services them. The engine interleaves cores
// in global cycle order, so shared-cache interference is deterministic.
//
// Known simplification (documented in DESIGN.md): no MLP or bandwidth
// model — each miss pays the full latency. This compresses absolute IPC
// but preserves the relative orderings that the NUcache evaluation is
// about, since all policies are measured under the same model.
package cpu

import (
	"fmt"
	"math"

	"nucache/internal/cache"
	"nucache/internal/memory"
	"nucache/internal/trace"
)

// Config describes the simulated machine.
type Config struct {
	// Cores is the number of cores (each gets a private L1).
	Cores int
	// L1 is the per-core L1 geometry (Name/Cores fields are overridden).
	L1 cache.Config
	// L2 is an optional private per-core L2 (SizeBytes 0 disables it).
	L2 cache.Config
	// LLC is the shared last-level cache geometry.
	LLC cache.Config
	// L1Latency is the cycles charged for an L1 hit.
	L1Latency uint64
	// L2Latency is the additional cycles for a private-L2 hit.
	L2Latency uint64
	// LLCLatency is the additional cycles for an LLC hit.
	LLCLatency uint64
	// MemLatency is the additional cycles for an LLC miss (flat model).
	MemLatency uint64
	// DRAM, when non-nil, replaces the flat MemLatency with a bank/
	// row-buffer main-memory model (see internal/memory).
	DRAM *memory.Config
	// InstrBudget freezes a core's statistics once it has retired this
	// many instructions (the core keeps running to preserve contention
	// until every core is frozen). Zero means run streams to exhaustion.
	InstrBudget uint64
	// WarmupInstr, when positive, excludes each core's first N retired
	// instructions from its recorded statistics (caches stay warm; only
	// the counters are re-based). Standard simulation methodology for
	// hiding cold-start effects.
	WarmupInstr uint64
	// PrefetchDegree, when positive, models a per-core next-line
	// prefetcher: every demand L1 miss also brings the next N lines into
	// the LLC (tagged with the triggering PC, so PC-indexed policies see
	// them the way the hardware proposal would). Prefetches are free in
	// time; with prefetching enabled the per-core LLC statistics include
	// prefetch traffic, as real hardware counters do.
	PrefetchDegree int
}

// DefaultConfig returns the reconstruction's machine for the given core
// count: 32 KB 8-way L1s and a 16-way shared LLC sized 1 MB for 1-2
// cores, 2 MB for 3-4, 4 MB for more (see DESIGN.md).
func DefaultConfig(cores int) Config {
	llcSize := 1 << 20
	switch {
	case cores > 4:
		llcSize = 4 << 20
	case cores > 2:
		llcSize = 2 << 20
	}
	return Config{
		Cores:       cores,
		L1:          cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		LLC:         cache.Config{SizeBytes: llcSize, Ways: 16, LineBytes: 64},
		L1Latency:   1,
		LLCLatency:  12,
		MemLatency:  200,
		InstrBudget: 0,
	}
}

// CoreResult is one core's frozen statistics.
type CoreResult struct {
	// Core is the core index.
	Core int
	// Instructions retired at freeze (memory + non-memory).
	Instructions uint64
	// Cycles elapsed at freeze.
	Cycles uint64
	// MemAccesses issued at freeze.
	MemAccesses uint64
	// L1Hits and L1Misses at freeze.
	L1Hits, L1Misses uint64
	// LLCAccesses, LLCHits and LLCMisses attributed to this core at
	// freeze (demand accesses; writebacks excluded).
	LLCAccesses, LLCHits, LLCMisses uint64
}

// IPC returns instructions per cycle (0 if no cycles elapsed).
func (r CoreResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// LLCMPKI returns LLC misses per thousand instructions.
func (r CoreResult) LLCMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.LLCMisses) / float64(r.Instructions)
}

// L1MissRate returns the L1 miss ratio.
func (r CoreResult) L1MissRate() float64 {
	t := r.L1Hits + r.L1Misses
	if t == 0 {
		return 0
	}
	return float64(r.L1Misses) / float64(t)
}

const (
	// coreAddrShift separates per-core address spaces (multiprogrammed
	// workloads share nothing).
	coreAddrShift = 40
	// corePCShift tags PCs with the core index so PC-indexed mechanisms
	// never alias across programs.
	corePCShift = 48
)

type coreState struct {
	index    int
	stream   trace.Stream
	l1       *cache.Cache
	l2       *cache.Cache // nil when the private L2 is disabled
	time     uint64
	instr    uint64
	mem      uint64
	recorded bool // statistics snapshotted at the instruction budget
	stopped  bool // stream exhausted; no further issue
	warmed   bool // warm-up baseline captured
	base     CoreResult
	result   CoreResult
}

// System is a runnable multicore simulation.
type System struct {
	cfg   Config
	cores []*coreState
	llc   *cache.Cache
	dram  *memory.DRAM // nil under the flat-latency model

	// cand caches the core nextCore returned last; rivalTime/rivalIndex
	// are the best (time, index) among the other schedulable cores at the
	// last full scan. Between scans only cand's state changes (it is the
	// only core that steps), so cand can be re-returned without a scan
	// while it still beats the rival threshold.
	cand       *coreState
	rivalTime  uint64
	rivalIndex int

	// req is the scratch request reused for every cache access: the
	// caches and policies read it only during the Access call (never
	// retain the pointer), and reusing it keeps the per-access path
	// allocation-free — a fresh composite literal escapes through the
	// policy interface and costs one heap object per access.
	req cache.Request

	// Writebacks counts L1 dirty evictions forwarded to the LLC.
	Writebacks uint64
	// PrefetchIssued counts next-line prefetches sent to the LLC.
	PrefetchIssued uint64
}

// NewSystem builds a system with one stream per core and the given LLC
// policy. It panics on mismatched stream count or invalid geometry
// (experiment-setup programming errors).
func NewSystem(cfg Config, llcPolicy cache.Policy, streams []trace.Stream) *System {
	if cfg.Cores <= 0 {
		panic("cpu: non-positive core count")
	}
	if len(streams) != cfg.Cores {
		panic(fmt.Sprintf("cpu: %d streams for %d cores", len(streams), cfg.Cores))
	}
	llcCfg := cfg.LLC
	if llcCfg.Name == "" {
		llcCfg.Name = "LLC"
	}
	llcCfg.Cores = cfg.Cores
	s := &System{
		cfg: cfg,
		llc: cache.New(llcCfg, llcPolicy),
	}
	if cfg.DRAM != nil {
		s.dram = memory.New(*cfg.DRAM)
	}
	for i := 0; i < cfg.Cores; i++ {
		l1Cfg := cfg.L1
		l1Cfg.Name = fmt.Sprintf("L1D-%d", i)
		l1Cfg.Cores = 1
		c := &coreState{
			index:  i,
			stream: streams[i],
			l1:     cache.New(l1Cfg, newL1LRU()),
		}
		if cfg.L2.SizeBytes > 0 {
			l2Cfg := cfg.L2
			l2Cfg.Name = fmt.Sprintf("L2-%d", i)
			l2Cfg.Cores = 1
			c.l2 = cache.New(l2Cfg, newL1LRU())
		}
		s.cores = append(s.cores, c)
	}
	return s
}

// DRAM exposes the memory model when enabled (nil otherwise).
func (s *System) DRAM() *memory.DRAM { return s.dram }

// LLC exposes the shared cache (policy inspection, stats).
func (s *System) LLC() *cache.Cache { return s.llc }

// Prefetches returns the next-line prefetch count (Machine interface).
func (s *System) Prefetches() uint64 { return s.PrefetchIssued }

// Run executes the simulation and returns per-core results. Each core's
// statistics are snapshotted when it reaches the instruction budget, but
// the core keeps issuing until every core has been snapshotted, so the
// slowest core experiences full contention over its entire measured
// window (the standard multiprogrammed-workload methodology).
func (s *System) Run() []CoreResult {
	for !s.allRecorded() {
		c := s.nextCore()
		if c == nil {
			break // every stream exhausted
		}
		s.step(c)
	}
	out := make([]CoreResult, len(s.cores))
	for i, c := range s.cores {
		if !c.recorded {
			s.record(c)
		}
		out[i] = c.result
	}
	return out
}

func (s *System) allRecorded() bool {
	for _, c := range s.cores {
		if !c.recorded {
			return false
		}
	}
	return true
}

// nextCore picks the still-issuing core with the smallest local clock
// (ties broken by index for determinism). The cached fast path skips
// the scan while the last-returned core still precedes every rival —
// the common case whenever one core is on a run of short steps (and
// always for a single-core machine).
func (s *System) nextCore() *coreState {
	if c := s.cand; c != nil && !c.stopped &&
		(c.time < s.rivalTime || (c.time == s.rivalTime && c.index < s.rivalIndex)) {
		return c
	}
	var best, rival *coreState
	for _, c := range s.cores {
		if c.stopped {
			continue
		}
		if best == nil || c.time < best.time {
			best, rival = c, best
		} else if rival == nil || c.time < rival.time {
			rival = c
		}
	}
	s.cand = best
	if rival != nil {
		s.rivalTime, s.rivalIndex = rival.time, rival.index
	} else {
		s.rivalTime, s.rivalIndex = math.MaxUint64, math.MaxInt
	}
	return best
}

// step advances one memory access on core c.
func (s *System) step(c *coreState) {
	a, ok := c.stream.Next()
	if !ok {
		if !c.recorded {
			s.record(c)
		}
		c.stopped = true
		return
	}
	addr := a.Addr + uint64(c.index)<<coreAddrShift
	pc := a.PC | uint64(c.index)<<corePCShift

	c.time += uint64(a.Gap) // non-memory instructions, 1 cycle each

	s.req = cache.Request{Addr: addr, PC: pc, Core: 0, Kind: a.Kind}
	l1res := c.l1.Access(&s.req)
	switch {
	case l1res.Hit:
		c.time += s.cfg.L1Latency
	case c.l2 != nil:
		c.time += s.cfg.L1Latency + s.cfg.L2Latency
		s.req = cache.Request{Addr: addr, PC: pc, Core: 0, Kind: a.Kind}
		l2res := c.l2.Access(&s.req)
		// The L1 victim drains into the private L2 (posted).
		if l1res.EvictedValid && l1res.Evicted.Dirty {
			s.Writebacks++
			s.req = cache.Request{
				Addr: l1res.Evicted.Tag << 6, PC: l1res.Evicted.PC,
				Core: 0, Kind: trace.Store,
			}
			c.l2.Access(&s.req)
		}
		if !l2res.Hit {
			s.accessLLC(c, addr, pc, a.Kind, l2res)
		}
	default:
		c.time += s.cfg.L1Latency
		s.accessLLC(c, addr, pc, a.Kind, l1res)
	}

	c.instr += uint64(a.Gap) + 1
	c.mem++
	if s.cfg.WarmupInstr > 0 && !c.warmed && c.instr >= s.cfg.WarmupInstr {
		c.warmed = true
		c.base = s.snapshot(c)
	}
	if s.cfg.InstrBudget > 0 && !c.recorded && c.instr >= s.cfg.InstrBudget {
		s.record(c)
	}
}

// accessLLC services a private-hierarchy miss at the shared LLC (and main
// memory beyond it), charging latency to the core and forwarding the
// private victim's writeback. upper is the access result of the deepest
// private level, whose victim must drain into the LLC.
func (s *System) accessLLC(c *coreState, addr, pc uint64, kind trace.Kind, upper cache.AccessResult) {
	s.req = cache.Request{Addr: addr, PC: pc, Core: c.index, Kind: kind}
	llcRes := s.llc.Access(&s.req)
	if llcRes.Hit {
		c.time += s.cfg.LLCLatency
	} else if s.dram != nil {
		c.time += s.cfg.LLCLatency + s.dram.Access(addr)
	} else {
		c.time += s.cfg.LLCLatency + s.cfg.MemLatency
	}
	// An evicted dirty LLC line is written to memory (posted; row state
	// only matters under the DRAM model).
	if llcRes.EvictedValid && llcRes.Evicted.Dirty && s.dram != nil {
		s.dram.Touch(llcRes.Evicted.Tag << 6)
	}
	for d := 1; d <= s.cfg.PrefetchDegree; d++ {
		s.PrefetchIssued++
		s.req = cache.Request{
			Addr: addr + uint64(d)*uint64(s.cfg.LLC.LineBytes),
			PC:   pc, Core: c.index, Kind: trace.Load,
		}
		s.llc.Access(&s.req)
	}
	if upper.EvictedValid && upper.Evicted.Dirty {
		// Posted writeback: updates LLC state but does not stall.
		s.Writebacks++
		s.req = cache.Request{
			Addr: upper.Evicted.Tag << 6, PC: upper.Evicted.PC,
			Core: c.index, Kind: trace.Store,
		}
		s.llc.Access(&s.req)
	}
}

// snapshot reads a core's cumulative counters.
func (s *System) snapshot(c *coreState) CoreResult {
	return CoreResult{
		Core:         c.index,
		Instructions: c.instr,
		Cycles:       c.time,
		MemAccesses:  c.mem,
		L1Hits:       c.l1.Stats.Hits,
		L1Misses:     c.l1.Stats.Misses,
		LLCAccesses:  s.llc.Stats.CoreAccesses[c.index],
		LLCHits:      s.llc.Stats.CoreHits[c.index],
		LLCMisses:    s.llc.Stats.CoreMisses[c.index],
	}
}

// record snapshots a core's statistics at its measurement endpoint,
// re-based past the warm-up region when one was configured.
func (s *System) record(c *coreState) {
	c.recorded = true
	r := s.snapshot(c)
	b := c.base // zero when no warm-up
	c.result = CoreResult{
		Core:         c.index,
		Instructions: r.Instructions - b.Instructions,
		Cycles:       r.Cycles - b.Cycles,
		MemAccesses:  r.MemAccesses - b.MemAccesses,
		L1Hits:       r.L1Hits - b.L1Hits,
		L1Misses:     r.L1Misses - b.L1Misses,
		LLCAccesses:  r.LLCAccesses - b.LLCAccesses,
		LLCHits:      r.LLCHits - b.LLCHits,
		LLCMisses:    r.LLCMisses - b.LLCMisses,
	}
}

// newL1LRU returns the fixed L1 replacement policy. L1s are always LRU;
// the evaluated policies apply to the shared LLC only.
func newL1LRU() cache.Policy { return l1lru{} }

// l1lru is a small self-contained LRU so package cpu does not depend on
// package policy (which would invert the dependency layering for tests).
// It keeps a last-use stamp per way instead of a recency list: exact LRU
// either way (stamps are unique, invalid ways stamp 0 and lose every
// comparison, so fills take the first invalid way just like a
// FindInvalid-first list), but touching one word per access instead of
// memmoving a stack — this sits under every simulated instruction.
type l1lru struct{}

type l1State struct {
	last [16]uint64 // last-use stamp per way; 0 = never filled
	tick uint64
}

func (l1lru) Name() string { return "LRU" }

func (l1lru) NewSetState(int) cache.SetState { return &l1State{} }

func (l1lru) OnHit(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*l1State)
	st.tick++
	st.last[way] = st.tick
}

func (l1lru) Victim(set *cache.Set, _ *cache.Request) int {
	st := set.State.(*l1State)
	way := 0
	min := st.last[0]
	for i := 1; i < len(set.Lines); i++ {
		if st.last[i] < min {
			way, min = i, st.last[i]
		}
	}
	return way
}

func (l1lru) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*l1State)
	st.tick++
	st.last[way] = st.tick
}
