package cpu

// Integrity tests for the checksummed tape frames: corruption of the
// packed event buffer must be caught by the frame CRCs — killing the
// tape so replays degrade to direct simulation — and must never be
// replayed as truth. These are internal tests on purpose: corrupting a
// tape requires reaching through the snapshot into the shared buffer.

import (
	"errors"
	"strings"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/failpoint"
	"nucache/internal/workload"
)

func integrityConfig() Config {
	return Config{
		Cores:       1,
		L1:          cache.Config{SizeBytes: 2 << 10, Ways: 2, LineBytes: 64},
		LLC:         cache.Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64},
		L1Latency:   1,
		LLCLatency:  10,
		MemLatency:  100,
		InstrBudget: 30_000,
	}
}

// recordSome forces at least one extension so the tape has a sealed
// frame, and returns the bytes currently on tape.
func recordSome(t *testing.T, tape *Tape) []byte {
	t.Helper()
	if _, err := tape.snapshot(0); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	buf, _, _ := tape.rec.tr.Snapshot()
	if len(buf) == 0 {
		t.Fatal("tape recorded no bytes")
	}
	if len(tape.frames) == 0 {
		t.Fatal("extension sealed no frame")
	}
	return buf
}

func TestTapeVerifyDetectsCorruption(t *testing.T) {
	tape := NewTape(integrityConfig(), workload.MustByName("art-like").Stream(7))
	buf := recordSome(t, tape)
	if err := tape.Verify(); err != nil {
		t.Fatalf("pristine tape failed verification: %v", err)
	}

	before := TapeChecksumFails()
	buf[len(buf)/2] ^= 0x04 // bit rot in the middle of the packed stream
	err := tape.Verify()
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("Verify on corrupt tape = %v, want checksum mismatch", err)
	}
	if TapeChecksumFails() != before+1 {
		t.Fatalf("TapeChecksumFails = %d, want %d", TapeChecksumFails(), before+1)
	}
	// The tape is dead: every later snapshot fails with the same error,
	// so replays fall back to direct simulation instead of replaying
	// corrupt events.
	if _, serr := tape.snapshot(0); serr == nil {
		t.Fatal("snapshot succeeded on a dead tape")
	}
}

// TestTapeLazyFrameCheckCatchesCorruption corrupts the buffer between
// two snapshots: the watermark verification on the next snapshot (not
// an explicit Verify call) must catch it.
func TestTapeLazyFrameCheckCatchesCorruption(t *testing.T) {
	tape := NewTape(integrityConfig(), workload.MustByName("ammp-like").Stream(3))
	v, err := tape.snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	buf, _, _ := tape.rec.tr.Snapshot()
	buf[0] ^= 0x80
	if _, err := tape.snapshot(v.events); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("lazy frame check missed corruption: %v", err)
	}
}

// TestTapeExtendFailpoint arms the cpu.tape.extend site: the extension
// fails, the tape dies, and — exactly like a real mid-record fault —
// every replay of it reports an error instead of partial data.
func TestTapeExtendFailpoint(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Arm("cpu.tape.extend", "error"); err != nil {
		t.Fatal(err)
	}
	tape := NewTape(integrityConfig(), workload.MustByName("art-like").Stream(7))
	if _, err := tape.snapshot(0); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("snapshot err = %v, want injected", err)
	}
	failpoint.Reset()
	if _, err := tape.snapshot(0); err == nil {
		t.Fatal("tape recovered after a failed extension; must stay dead")
	}
}
