package cpu

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"nucache/internal/cache"
	"nucache/internal/memory"
	"nucache/internal/trace"
)

// The replay engine drives only the shared LLC (and the memory model
// behind it) from per-core filtered tapes, reproducing a direct
// System.Run bit for bit. The key invariant it relies on: in the direct
// engine, steps execute in global (step-start-time, core-index) order,
// and steps that never reach the LLC touch no shared state. So replay
// schedules just the LLC-bound events and the recorded measurement
// crossings, at start times reconstructed as
//
//	time = policy-independent cycles (from the tape's gaps)
//	     + this core's accumulated LLC/memory service cycles (replayed)
//
// which is exactly the core's clock at that step in the direct run.
//
// The engine is split so one tape walk can feed any number of LLC
// policies at once (MultiReplaySystem): everything policy-independent —
// the tape views, the shared streaming-decode window, extension and
// integrity checking — lives in per-core coreFronts shared by every
// lane, while each replayLane owns the policy-dependent state (its LLC,
// DRAM, per-core cursors/clocks, and crossing snapshots). Lanes never
// write shared state, and tape views are append-only consistent
// snapshots (a view containing event k contains every crossing due at
// or before k), so a lane's outcome is independent of how far ahead any
// other lane has pulled the shared view — which is what makes every
// lane byte-identical to a single-policy replay of the same tape.

// coreFront is one core's policy-independent tape state, shared by
// every lane of an engine: the tape handle and, when the decode mirror
// stopped short (decode budget), a shared streaming window that
// varint-decodes each overflow event exactly once for all lanes.
type coreFront struct {
	index int
	tape  *Tape

	// mu guards the streaming-window fields below when lanes run on
	// worker goroutines (RunParallel). Serial replays never take it:
	// the engine's parallel flag gates every acquisition, so the
	// single-policy hot path stays lock-free.
	mu sync.Mutex

	// The shared streaming window: events at ordinals [winBase,
	// winBase+len(win)) decoded from the packed buffer. winCur sits at
	// ordinal winBase+len(win). Lanes at different positions read
	// different slots; trimWin discards slots every lane has passed.
	winStreaming bool
	winBase      uint64
	win          []trace.FilteredEvent
	winCur       trace.FilteredCursor
}

// winTrimLen bounds the shared streaming window: when it grows past
// this many events the slots every lane has consumed are discarded.
const winTrimLen = 4096

// laneCore is one (lane, core) replay cursor: the per-policy position
// and clock of one core within one lane. The item sequence it walks
// (events and crossings, each with a policy-independent start
// component) is identical across lanes; only svc — and therefore the
// cross-core merge order and the crossing snapshots — differs.
type laneCore struct {
	index int
	fr    *coreFront

	// view is this lane core's consistent snapshot of the shared tape.
	// It lives here, not in coreFront, so the per-event hot path reads
	// one struct; snapshots are append-only prefixes of each other, so
	// per-lane staleness is invisible (see the package comment).
	view tapeView

	nextCross int

	replayed  uint64              // events replayed so far
	pi        uint64              // policy-independent cycles at the pending event's step start
	svc       uint64              // accumulated LLC/memory service cycles
	wbIdx     uint64              // writeback side records consumed (mirror mode)
	pend      trace.FilteredEvent // the pending event (InstrGap not reconstructed; replay never reads it)
	pendValid bool
	dueCross  bool // next item is view.cross[nextCross], not pend
	recorded  bool
	stopped   bool
	time      uint64 // schedule time of the next item (valid unless stopped)

	base   CoreResult
	result CoreResult

	// pub is the core's position as seen by other workers in parallel
	// mode: replayed, with lanePubStopped folded in once the core
	// stops. Written with atomic.StoreUint64 at batch boundaries (and
	// on every streaming-window read, so trimWin trims by the true
	// slowest lane even mid-batch); read with atomic.LoadUint64 by
	// trimWin. A plain uint64 rather than atomic.Uint64 because
	// laneCore values are copied at construction (copylocks).
	pub uint64
}

// lanePubStopped marks a stopped core in laneCore.pub. Tape ordinals
// are bounded far below 2^63 (the tape budget caps recordings), so the
// top bit is free.
const lanePubStopped = 1 << 63

// replayLane is one policy's machine within an engine: its LLC and
// DRAM instance, its per-core cursors (a contiguous sub-slice of the
// engine's structure-of-arrays backing), and its merge scheduler.
type replayLane struct {
	llc   *cache.Cache
	dram  *memory.DRAM
	cores []laneCore

	// cand/rivalTime/rivalIndex implement the same cached-scheduler fast
	// path as (*System).nextCore; see that comment.
	cand       *laneCore
	rivalTime  uint64
	rivalIndex int

	// recorded counts cores whose measurement window has closed — the
	// lane's stop condition, kept as a counter so the per-item loop does
	// not rescan every core.
	recorded int

	// replayedLast carries the deferred advance of the just-played core
	// across batch boundaries; see the comment in runLane.
	replayedLast *laneCore
	done         bool

	// req is the scratch request reused for every LLC access (same
	// reasoning as System.req: nothing retains the pointer, and a fresh
	// literal would heap-allocate per access).
	req cache.Request

	// Writebacks counts dirty private victims drained into the LLC. With
	// a private L2 this intentionally differs from System.Writebacks,
	// which also counts L1-to-L2 drains that never reach the LLC (those
	// happen at record time here). LLC-level statistics are unaffected.
	Writebacks uint64
	// PrefetchIssued counts next-line prefetches sent to the LLC.
	PrefetchIssued uint64
}

// LLC exposes the lane's shared cache (Machine interface).
func (l *replayLane) LLC() *cache.Cache { return l.llc }

// DRAM exposes the lane's memory model when enabled (Machine interface).
func (l *replayLane) DRAM() *memory.DRAM { return l.dram }

// Prefetches returns the lane's prefetch count (Machine interface).
func (l *replayLane) Prefetches() uint64 { return l.PrefetchIssued }

// replayEngine is the shared core of ReplaySystem (one lane) and
// MultiReplaySystem (one lane per policy).
type replayEngine struct {
	cfg    Config
	fronts []coreFront
	lanes  []replayLane

	// parallel is set (before any worker starts; the spawn establishes
	// the happens-before) when lanes run on worker goroutines: the
	// streaming window locks coreFront.mu and trimWin reads published
	// positions instead of lane fields owned by other workers.
	parallel bool
}

func newReplayEngine(cfg Config, pols []cache.Policy, tapes []*Tape) replayEngine {
	if cfg.Cores <= 0 {
		panic("cpu: non-positive core count")
	}
	if len(pols) == 0 {
		panic("cpu: replay engine with no policies")
	}
	if len(tapes) != cfg.Cores {
		panic(fmt.Sprintf("cpu: %d tapes for %d cores", len(tapes), cfg.Cores))
	}
	fe := FrontEndKey(cfg)
	for i, t := range tapes {
		if t.frontEnd != fe {
			panic(fmt.Sprintf("cpu: tape %d recorded for front end %q, replaying %q",
				i, t.frontEnd, fe))
		}
	}
	llcCfg := cfg.LLC
	if llcCfg.Name == "" {
		llcCfg.Name = "LLC"
	}
	llcCfg.Cores = cfg.Cores
	// The engine is returned by value (callers embed it); the slices'
	// backing arrays are heap-allocated, so interior pointers like
	// laneCore.fr stay valid across the copy.
	e := replayEngine{
		cfg:    cfg,
		fronts: make([]coreFront, cfg.Cores),
		lanes:  make([]replayLane, len(pols)),
	}
	for i, t := range tapes {
		e.fronts[i] = coreFront{index: i, tape: t}
	}
	// All lanes' cursors live in one contiguous backing slice
	// (structure-of-arrays): lane li's cores are the cfg.Cores entries
	// starting at li*cfg.Cores, so a lane's per-core clocks and crossing
	// snapshots sit on adjacent cache lines while it runs.
	backing := make([]laneCore, len(pols)*cfg.Cores)
	for li, pol := range pols {
		l := &e.lanes[li]
		l.llc = cache.New(llcCfg, pol)
		if cfg.DRAM != nil {
			l.dram = memory.New(*cfg.DRAM)
		}
		lo := li * cfg.Cores
		l.cores = backing[lo : lo+cfg.Cores : lo+cfg.Cores]
		for ci := range l.cores {
			l.cores[ci] = laneCore{index: ci, fr: &e.fronts[ci]}
		}
	}
	return e
}

// start computes every lane core's first item.
func (e *replayEngine) start() error {
	for li := range e.lanes {
		l := &e.lanes[li]
		for ci := range l.cores {
			if err := e.advance(&l.cores[ci]); err != nil {
				return err
			}
		}
	}
	return nil
}

// runLane plays up to batch items of one lane, preserving the exact
// execution order of a standalone single-policy replay. The direct
// engine checks "everyone recorded" before each step, so the step that
// records the last core is also the last step executed. Mirror that
// exactly: test the condition before picking an item, and defer
// recomputing the played core's next item (which could extend its tape
// past anything a replay needs) until the loop continues — across
// batch boundaries, via l.replayedLast.
func (e *replayEngine) runLane(l *replayLane, batch int) error {
	// The deferred core rides in a local within the batch: writing the
	// pointer field per item would cost a GC write barrier per event.
	last := l.replayedLast
	l.replayedLast = nil
	for i := 0; i < batch; i++ {
		if l.recorded >= len(l.cores) {
			l.done = true
			return nil
		}
		if last != nil {
			if err := e.advance(last); err != nil {
				return err
			}
			last = nil
		}
		c := l.nextItem()
		if c == nil {
			// Every stream exhausted; results() reports unrecorded cores.
			l.done = true
			return nil
		}
		e.playItem(l, c)
		last = c
	}
	l.replayedLast = last
	return nil
}

// publish exposes every core's position (and stopped state) to other
// workers via the atomic pub fields. Called by the worker that just ran
// a batch of this lane, so the plain reads of replayed/stopped are of
// its own writes.
func (l *replayLane) publish() {
	for ci := range l.cores {
		c := &l.cores[ci]
		v := c.replayed
		if c.stopped {
			v |= lanePubStopped
		}
		atomic.StoreUint64(&c.pub, v)
	}
}

// results collects the lane's per-core results after it finished.
func (l *replayLane) results() ([]CoreResult, error) {
	out := make([]CoreResult, len(l.cores))
	for i := range l.cores {
		c := &l.cores[i]
		if !c.recorded {
			// Unreachable for well-formed tapes (exhaustion records), but
			// fail safe rather than return partial results.
			return nil, fmt.Errorf("cpu: replay core %d ended unrecorded", i)
		}
		out[i] = c.result
	}
	return out, nil
}

// nextItem picks the lane core whose next item has the smallest
// schedule time, ties broken by index — the replay analogue of
// nextCore, with the same cached fast path (only the last-played
// core's time has changed).
func (l *replayLane) nextItem() *laneCore {
	if c := l.cand; c != nil && !c.stopped &&
		(c.time < l.rivalTime || (c.time == l.rivalTime && c.index < l.rivalIndex)) {
		return c
	}
	var best, rival *laneCore
	for i := range l.cores {
		c := &l.cores[i]
		if c.stopped {
			continue
		}
		if best == nil || c.time < best.time {
			best, rival = c, best
		} else if rival == nil || c.time < rival.time {
			rival = c
		}
	}
	l.cand = best
	if rival != nil {
		l.rivalTime, l.rivalIndex = rival.time, rival.index
	} else {
		l.rivalTime, l.rivalIndex = math.MaxUint64, math.MaxInt
	}
	return best
}

// advance computes lane core c's next item and its schedule time,
// fetching (and if needed extending) the shared tape view.
func (e *replayEngine) advance(c *laneCore) error {
	for {
		if c.stopped {
			return nil
		}
		// A due crossing always precedes the pending event: its step came
		// first, and the snapshot that contained the event also contained
		// every earlier crossing. (Snapshot consistency also means a
		// fresher snapshot than another lane's can only add crossings at
		// ordinals this lane has not reached, so per-lane view staleness
		// never changes which crossing is due here.)
		if c.nextCross < len(c.view.cross) {
			if cr := &c.view.cross[c.nextCross]; cr.AfterEvents == c.replayed {
				if cr.OnEvent {
					// Consumed inline by playItem; only reachable for a
					// malformed hand-built tape.
					return fmt.Errorf("cpu: replay core %d: stray on-event crossing", c.index)
				}
				c.dueCross = true
				c.time = cr.PStart + c.svc
				return nil
			}
		}
		if c.pendValid {
			c.time = c.pi + c.svc
			return nil
		}
		// The next event is ordinal c.replayed: usually unpacked from the
		// tape's decode cache (one 16-byte sequential read; the wb side
		// list only when the event carries a writeback), else served from
		// the shared streaming window (decode budget exhausted).
		if c.replayed < c.view.decCount {
			de := &c.view.decPages[c.replayed>>decPageShift][c.replayed&decPageMask]
			w0, w1 := de.w0, de.w1
			gap := w0>>decGapLowShift | w1>>decPCBits<<decGapLowBits
			c.pend.Addr = w0 & (1<<decAddrBits - 1)
			c.pend.PC = w1 & (1<<decPCBits - 1)
			c.pend.CycleGap = gap
			c.pend.Kind = trace.Load
			if w0&decStoreBit != 0 {
				c.pend.Kind = trace.Store
			}
			if w0&decWBBit != 0 {
				wb := &c.view.wbPages[c.wbIdx>>wbPageShift][c.wbIdx&wbPageMask]
				c.pend.HasWB, c.pend.WBAddr, c.pend.WBPC = true, wb.addr, wb.pc
				c.wbIdx++
			} else {
				c.pend.HasWB = false
			}
			c.pendValid = true
			c.pi += gap
			continue
		}
		if c.replayed < c.view.events {
			if err := e.winEvent(c, c.replayed, &c.pend); err != nil {
				return err
			}
			c.pendValid = true
			c.pi += c.pend.CycleGap
			continue
		}
		if c.view.complete {
			return fmt.Errorf("cpu: replay core %d ran off its tape", c.index)
		}
		if err := e.refresh(c); err != nil {
			return err
		}
	}
}

// refresh pulls a fresh snapshot of c's tape, extending the recording
// when this lane core has consumed everything recorded so far. With
// several lanes only the leading one ever extends; the others find the
// tape already long enough. The snapshot is stored per lane core, but
// snapshots are append-only prefixes of each other, so lanes at
// different freshness replay identical item streams.
func (e *replayEngine) refresh(c *laneCore) error {
	fr := c.fr
	v, err := fr.tape.snapshot(c.replayed)
	if err != nil {
		return err
	}
	c.view = v
	if e.parallel {
		fr.mu.Lock()
	}
	if fr.winStreaming {
		// A fresh snapshot is the longest yet (the tape only appends), so
		// re-anchoring the shared cursor on it is safe for every lane.
		fr.winCur.Rebase(v.buf, v.events)
	}
	if e.parallel {
		fr.mu.Unlock()
	}
	return nil
}

// winEvent copies event `ordinal` from the shared streaming window of
// c's core front into out, varint-decoding each overflow event exactly
// once no matter how many lanes replay it. Only the leading lane
// appends; trailing lanes hit already-decoded slots. The event is
// copied out (not returned by pointer) because trimWin shifts and
// append may reallocate the window — in parallel mode a concurrent
// lane could do either the moment the lock drops.
func (e *replayEngine) winEvent(c *laneCore, ordinal uint64, out *trace.FilteredEvent) error {
	fr := c.fr
	if e.parallel {
		fr.mu.Lock()
		defer fr.mu.Unlock()
		// Publish this core's position eagerly: streaming lanes spend
		// whole batches in here, and trimWin (under this same lock, from
		// any worker) must see the true position, not the one from the
		// last batch boundary, to keep the window bounded.
		atomic.StoreUint64(&c.pub, c.replayed)
	}
	if !fr.winStreaming {
		// The mirror stops permanently once the decode budget runs out, so
		// decCount is fixed from here on — every lane's view agrees on it
		// — and anchors the window.
		fr.winStreaming = true
		fr.winBase = c.view.decCount
		fr.winCur = c.view.overflow
	}
	if ordinal < fr.winBase {
		return fmt.Errorf("cpu: replay core %d: event %d below streaming window base %d",
			fr.index, ordinal, fr.winBase)
	}
	for ordinal >= fr.winBase+uint64(len(fr.win)) {
		if len(fr.win) >= winTrimLen {
			e.trimWin(fr)
		}
		var ev trace.FilteredEvent
		ok, err := fr.winCur.Next(&ev)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("cpu: replay core %d: packed tape short of event %d",
				fr.index, fr.winBase+uint64(len(fr.win)))
		}
		fr.win = append(fr.win, ev)
	}
	*out = fr.win[ordinal-fr.winBase]
	return nil
}

// trimWin discards window slots every live lane has consumed. A lane's
// position only moves forward, so the minimum over lanes is a safe
// cut; stopped lanes never read again and are excluded. In parallel
// mode other workers own their lanes' fields, so the minimum is taken
// over the published positions instead — published values only lag the
// truth, which makes the cut conservative, and a lagging position is
// at most one batch old (winEvent republishes on every streaming
// read), so the window stays bounded.
func (e *replayEngine) trimWin(fr *coreFront) {
	min := uint64(math.MaxUint64)
	for li := range e.lanes {
		c := &e.lanes[li].cores[fr.index]
		var replayed uint64
		var stopped bool
		if e.parallel {
			// Plain fields are owned by whichever worker holds the lane;
			// only the published position may be read here.
			v := atomic.LoadUint64(&c.pub)
			replayed, stopped = v&^uint64(lanePubStopped), v&lanePubStopped != 0
		} else {
			replayed, stopped = c.replayed, c.stopped
		}
		if stopped {
			continue
		}
		if replayed < min {
			min = replayed
		}
	}
	if min == math.MaxUint64 {
		min = fr.winBase + uint64(len(fr.win))
	}
	if min <= fr.winBase {
		return
	}
	keep := min - fr.winBase
	if keep >= uint64(len(fr.win)) {
		fr.winBase += uint64(len(fr.win))
		fr.win = fr.win[:0]
		return
	}
	n := copy(fr.win, fr.win[keep:])
	fr.win = fr.win[:n]
	fr.winBase = min
}

// playItem executes lane core c's next item: either a due crossing
// (advance latched dueCross) or the pending event (with any on-event
// crossings attached to it).
func (e *replayEngine) playItem(l *replayLane, c *laneCore) {
	if c.dueCross {
		c.dueCross = false
		l.applyCrossing(c, &c.view.cross[c.nextCross])
		c.nextCross++
		return
	}
	e.playEvent(l, c, &c.pend)
	c.pendValid = false
	c.replayed++
	for c.nextCross < len(c.view.cross) {
		cr := &c.view.cross[c.nextCross]
		if cr.AfterEvents != c.replayed || !cr.OnEvent {
			break
		}
		l.applyCrossing(c, cr)
		c.nextCross++
	}
}

// playEvent replays one LLC-bound event, mirroring the demand access,
// DRAM traffic, prefetch fan-out and posted writeback of
// (*System).accessLLC in that exact order.
func (e *replayEngine) playEvent(l *replayLane, c *laneCore, ev *trace.FilteredEvent) {
	addr := ev.Addr + uint64(c.index)<<coreAddrShift
	pc := ev.PC | uint64(c.index)<<corePCShift
	l.req = cache.Request{Addr: addr, PC: pc, Core: c.index, Kind: ev.Kind}
	llcRes := l.llc.Access(&l.req)
	var svc uint64
	if llcRes.Hit {
		svc = e.cfg.LLCLatency
	} else if l.dram != nil {
		svc = e.cfg.LLCLatency + l.dram.Access(addr)
	} else {
		svc = e.cfg.LLCLatency + e.cfg.MemLatency
	}
	if llcRes.EvictedValid && llcRes.Evicted.Dirty && l.dram != nil {
		l.dram.Touch(llcRes.Evicted.Tag << 6)
	}
	for d := 1; d <= e.cfg.PrefetchDegree; d++ {
		l.PrefetchIssued++
		l.req = cache.Request{
			Addr: addr + uint64(d)*uint64(e.cfg.LLC.LineBytes),
			PC:   pc, Core: c.index, Kind: trace.Load,
		}
		l.llc.Access(&l.req)
	}
	if ev.HasWB {
		l.Writebacks++
		l.req = cache.Request{
			Addr: ev.WBAddr + uint64(c.index)<<coreAddrShift,
			PC:   ev.WBPC | uint64(c.index)<<corePCShift,
			Core: c.index, Kind: trace.Store,
		}
		l.llc.Access(&l.req)
	}
	c.svc += svc
}

func (l *replayLane) applyCrossing(c *laneCore, cr *trace.Crossing) {
	switch cr.Kind {
	case trace.CrossWarmup:
		c.base = l.snapshotAt(c, cr)
	case trace.CrossRecord:
		l.recordAt(c, cr)
	case trace.CrossExhaust:
		if !c.recorded {
			l.recordAt(c, cr)
		}
		c.stopped = true
	}
}

// snapshotAt reconstructs the direct engine's cumulative snapshot at a
// crossing: the tape supplies the policy-independent counters, the
// lane's LLC the per-core shared-cache counters, and the cycle count is
// the recorded policy-independent clock plus this core's replayed
// service.
func (l *replayLane) snapshotAt(c *laneCore, cr *trace.Crossing) CoreResult {
	return CoreResult{
		Core:         c.index,
		Instructions: cr.Instr,
		Cycles:       cr.PEnd + c.svc,
		MemAccesses:  cr.Mem,
		L1Hits:       cr.L1Hits,
		L1Misses:     cr.L1Misses,
		LLCAccesses:  l.llc.Stats.CoreAccesses[c.index],
		LLCHits:      l.llc.Stats.CoreHits[c.index],
		LLCMisses:    l.llc.Stats.CoreMisses[c.index],
	}
}

func (l *replayLane) recordAt(c *laneCore, cr *trace.Crossing) {
	if !c.recorded {
		l.recorded++
	}
	c.recorded = true
	r := l.snapshotAt(c, cr)
	b := c.base // zero when no warm-up
	c.result = CoreResult{
		Core:         c.index,
		Instructions: r.Instructions - b.Instructions,
		Cycles:       r.Cycles - b.Cycles,
		MemAccesses:  r.MemAccesses - b.MemAccesses,
		L1Hits:       r.L1Hits - b.L1Hits,
		L1Misses:     r.L1Misses - b.L1Misses,
		LLCAccesses:  r.LLCAccesses - b.LLCAccesses,
		LLCHits:      r.LLCHits - b.LLCHits,
		LLCMisses:    r.LLCMisses - b.LLCMisses,
	}
}

// ReplaySystem is the single-policy replay: one engine lane. See the
// package comment above for the timing reconstruction it relies on.
type ReplaySystem struct {
	eng replayEngine

	// Writebacks and PrefetchIssued mirror the lane's counters after Run
	// (see replayLane for their semantics vs the direct engine).
	Writebacks     uint64
	PrefetchIssued uint64
}

// Machine is the read surface shared by System, ReplaySystem and the
// lanes of a MultiReplaySystem — everything result collection needs
// after a run.
type Machine interface {
	LLC() *cache.Cache
	DRAM() *memory.DRAM
	Prefetches() uint64
}

// NewReplaySystem builds a replay over one tape per core. Tapes must
// have been recorded for a config with the same front end (FrontEndKey);
// the LLC, memory model and prefetch degree may differ freely.
func NewReplaySystem(cfg Config, llcPolicy cache.Policy, tapes []*Tape) *ReplaySystem {
	return &ReplaySystem{eng: newReplayEngine(cfg, []cache.Policy{llcPolicy}, tapes)}
}

// DRAM exposes the memory model when enabled (nil otherwise).
func (rs *ReplaySystem) DRAM() *memory.DRAM { return rs.eng.lanes[0].dram }

// LLC exposes the shared cache (policy inspection, stats).
func (rs *ReplaySystem) LLC() *cache.Cache { return rs.eng.lanes[0].llc }

// Prefetches returns the next-line prefetch count (Machine interface).
func (rs *ReplaySystem) Prefetches() uint64 { return rs.eng.lanes[0].PrefetchIssued }

// Run replays the simulation and returns per-core results identical to
// the equivalent direct System.Run. An error means the replay could not
// complete (tape budget exhausted or untaggable stream); the results are
// then always nil — never partially populated — the LLC state is
// unusable, and the caller should fall back to direct simulation.
func (rs *ReplaySystem) Run() ([]CoreResult, error) {
	e := &rs.eng
	l := &e.lanes[0]
	err := e.start()
	for err == nil && !l.done {
		err = e.runLane(l, math.MaxInt)
	}
	rs.Writebacks, rs.PrefetchIssued = l.Writebacks, l.PrefetchIssued
	if err != nil {
		return nil, err
	}
	return l.results()
}
