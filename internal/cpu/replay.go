package cpu

import (
	"fmt"
	"math"

	"nucache/internal/cache"
	"nucache/internal/memory"
	"nucache/internal/trace"
)

// ReplaySystem drives only the shared LLC (and the memory model behind
// it) from per-core filtered tapes, reproducing a direct System.Run
// bit for bit. The key invariant it relies on: in the direct engine,
// steps execute in global (step-start-time, core-index) order, and steps
// that never reach the LLC touch no shared state. So replay schedules
// just the LLC-bound events and the recorded measurement crossings, at
// start times reconstructed as
//
//	time = policy-independent cycles (from the tape's gaps)
//	     + this core's accumulated LLC/memory service cycles (replayed)
//
// which is exactly the core's clock at that step in the direct run.
type ReplaySystem struct {
	cfg   Config
	cores []*replayCore
	llc   *cache.Cache
	dram  *memory.DRAM

	// cand/rivalTime/rivalIndex implement the same cached-scheduler fast
	// path as (*System).nextCore; see that comment.
	cand       *replayCore
	rivalTime  uint64
	rivalIndex int

	// recorded counts cores whose measurement window has closed — the
	// run's stop condition, kept as a counter so the per-item loop does
	// not rescan every core.
	recorded int

	// req is the scratch request reused for every LLC access (same
	// reasoning as System.req: nothing retains the pointer, and a fresh
	// literal would heap-allocate per access).
	req cache.Request

	// Writebacks counts dirty private victims drained into the LLC. With
	// a private L2 this intentionally differs from System.Writebacks,
	// which also counts L1-to-L2 drains that never reach the LLC (those
	// happen at record time here). LLC-level statistics are unaffected.
	Writebacks uint64
	// PrefetchIssued counts next-line prefetches sent to the LLC.
	PrefetchIssued uint64
}

// Machine is the read surface shared by System and ReplaySystem —
// everything result collection needs after a run.
type Machine interface {
	LLC() *cache.Cache
	DRAM() *memory.DRAM
	Prefetches() uint64
}

type replayCore struct {
	index int
	tape  *Tape

	view      tapeView
	nextCross int
	streaming bool                 // decode cache exhausted; stream from cur
	cur       trace.FilteredCursor // overflow decode (streaming mode only)

	replayed  uint64              // events replayed so far
	pi        uint64              // policy-independent cycles at the pending event's step start
	svc       uint64              // accumulated LLC/memory service cycles
	wbIdx     uint64              // writeback side records consumed (mirror mode)
	pend      trace.FilteredEvent // the pending event (InstrGap not reconstructed; replay never reads it)
	pendValid bool
	dueCross  bool   // next item is view.cross[nextCross], not pend
	time      uint64 // schedule time of the next item (valid unless stopped)

	recorded bool
	stopped  bool
	base     CoreResult
	result   CoreResult
}

// NewReplaySystem builds a replay over one tape per core. Tapes must
// have been recorded for a config with the same front end (FrontEndKey);
// the LLC, memory model and prefetch degree may differ freely.
func NewReplaySystem(cfg Config, llcPolicy cache.Policy, tapes []*Tape) *ReplaySystem {
	if cfg.Cores <= 0 {
		panic("cpu: non-positive core count")
	}
	if len(tapes) != cfg.Cores {
		panic(fmt.Sprintf("cpu: %d tapes for %d cores", len(tapes), cfg.Cores))
	}
	fe := FrontEndKey(cfg)
	for i, t := range tapes {
		if t.frontEnd != fe {
			panic(fmt.Sprintf("cpu: tape %d recorded for front end %q, replaying %q",
				i, t.frontEnd, fe))
		}
	}
	llcCfg := cfg.LLC
	if llcCfg.Name == "" {
		llcCfg.Name = "LLC"
	}
	llcCfg.Cores = cfg.Cores
	rs := &ReplaySystem{
		cfg: cfg,
		llc: cache.New(llcCfg, llcPolicy),
	}
	if cfg.DRAM != nil {
		rs.dram = memory.New(*cfg.DRAM)
	}
	for i, t := range tapes {
		rs.cores = append(rs.cores, &replayCore{index: i, tape: t})
	}
	return rs
}

// DRAM exposes the memory model when enabled (nil otherwise).
func (rs *ReplaySystem) DRAM() *memory.DRAM { return rs.dram }

// LLC exposes the shared cache (policy inspection, stats).
func (rs *ReplaySystem) LLC() *cache.Cache { return rs.llc }

// Prefetches returns the next-line prefetch count (Machine interface).
func (rs *ReplaySystem) Prefetches() uint64 { return rs.PrefetchIssued }

// Run replays the simulation and returns per-core results identical to
// the equivalent direct System.Run. An error means the replay could not
// complete (tape budget exhausted or untaggable stream); the LLC state
// is then unusable and the caller should fall back to direct simulation.
func (rs *ReplaySystem) Run() ([]CoreResult, error) {
	for _, c := range rs.cores {
		if err := rs.advance(c); err != nil {
			return nil, err
		}
	}
	// The direct engine checks "everyone recorded" before each step, so
	// the step that records the last core is also the last step executed.
	// Mirror that exactly: test the condition before picking an item, and
	// defer recomputing the played core's next item (which could extend
	// its tape past anything a replay needs) until the loop continues.
	var replayedLast *replayCore
	for rs.recorded < len(rs.cores) {
		if replayedLast != nil {
			if err := rs.advance(replayedLast); err != nil {
				return nil, err
			}
			replayedLast = nil
		}
		c := rs.nextItem()
		if c == nil {
			break // every stream exhausted
		}
		if err := rs.playItem(c); err != nil {
			return nil, err
		}
		replayedLast = c
	}
	out := make([]CoreResult, len(rs.cores))
	for i, c := range rs.cores {
		if !c.recorded {
			// Unreachable for well-formed tapes (exhaustion records), but
			// fail safe rather than return partial results.
			return nil, fmt.Errorf("cpu: replay core %d ended unrecorded", i)
		}
		out[i] = c.result
	}
	return out, nil
}

// nextItem picks the core whose next item has the smallest schedule
// time, ties broken by index — the replay analogue of nextCore, with the
// same cached fast path (only the last-played core's time has changed).
func (rs *ReplaySystem) nextItem() *replayCore {
	if c := rs.cand; c != nil && !c.stopped &&
		(c.time < rs.rivalTime || (c.time == rs.rivalTime && c.index < rs.rivalIndex)) {
		return c
	}
	var best, rival *replayCore
	for _, c := range rs.cores {
		if c.stopped {
			continue
		}
		if best == nil || c.time < best.time {
			best, rival = c, best
		} else if rival == nil || c.time < rival.time {
			rival = c
		}
	}
	rs.cand = best
	if rival != nil {
		rs.rivalTime, rs.rivalIndex = rival.time, rival.index
	} else {
		rs.rivalTime, rs.rivalIndex = math.MaxUint64, math.MaxInt
	}
	return best
}

// advance computes core c's next item and its schedule time, fetching
// (and if needed extending) the tape snapshot.
func (rs *ReplaySystem) advance(c *replayCore) error {
	for {
		if c.stopped {
			return nil
		}
		// A due crossing always precedes the pending event: its step came
		// first, and the snapshot that contained the event also contained
		// every earlier crossing.
		if c.nextCross < len(c.view.cross) {
			if cr := &c.view.cross[c.nextCross]; cr.AfterEvents == c.replayed {
				if cr.OnEvent {
					// Consumed inline by playItem; only reachable for a
					// malformed hand-built tape.
					return fmt.Errorf("cpu: replay core %d: stray on-event crossing", c.index)
				}
				c.dueCross = true
				c.time = cr.PStart + c.svc
				return nil
			}
		}
		if c.pendValid {
			c.time = c.pi + c.svc
			return nil
		}
		// The next event is ordinal c.replayed: usually unpacked from the
		// tape's decode cache (one 16-byte sequential read; the wb side
		// list only when the event carries a writeback), else
		// stream-decoded from the packed buffer (decode budget exhausted).
		if c.replayed < c.view.decCount {
			e := &c.view.decPages[c.replayed>>decPageShift][c.replayed&decPageMask]
			w0, w1 := e.w0, e.w1
			gap := w0>>decGapLowShift | w1>>decPCBits<<decGapLowBits
			c.pend.Addr = w0 & (1<<decAddrBits - 1)
			c.pend.PC = w1 & (1<<decPCBits - 1)
			c.pend.CycleGap = gap
			c.pend.Kind = trace.Load
			if w0&decStoreBit != 0 {
				c.pend.Kind = trace.Store
			}
			if w0&decWBBit != 0 {
				wb := &c.view.wbPages[c.wbIdx>>wbPageShift][c.wbIdx&wbPageMask]
				c.pend.HasWB, c.pend.WBAddr, c.pend.WBPC = true, wb.addr, wb.pc
				c.wbIdx++
			} else {
				c.pend.HasWB = false
			}
			c.pendValid = true
			c.pi += gap
			continue
		}
		if c.replayed < c.view.events {
			if !c.streaming {
				c.streaming = true
				c.cur = c.view.overflow
			}
			ok, err := c.cur.Next(&c.pend)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("cpu: replay core %d: packed tape short of event %d", c.index, c.replayed)
			}
			c.pendValid = true
			c.pi += c.pend.CycleGap
			continue
		}
		if c.view.complete {
			return fmt.Errorf("cpu: replay core %d ran off its tape", c.index)
		}
		v, err := c.tape.snapshot(c.replayed)
		if err != nil {
			return err
		}
		c.view = v
		if c.streaming {
			c.cur.Rebase(v.buf, v.events)
		}
	}
}

// playItem executes core c's next item: either a due crossing (advance
// latched dueCross) or the pending event (with any on-event crossings
// attached to it).
func (rs *ReplaySystem) playItem(c *replayCore) error {
	if c.dueCross {
		c.dueCross = false
		rs.applyCrossing(c, &c.view.cross[c.nextCross])
		c.nextCross++
		return nil
	}
	rs.playEvent(c, &c.pend)
	c.pendValid = false
	c.replayed++
	for c.nextCross < len(c.view.cross) {
		cr := &c.view.cross[c.nextCross]
		if cr.AfterEvents != c.replayed || !cr.OnEvent {
			break
		}
		rs.applyCrossing(c, cr)
		c.nextCross++
	}
	return nil
}

// playEvent replays one LLC-bound event, mirroring the demand access,
// DRAM traffic, prefetch fan-out and posted writeback of
// (*System).accessLLC in that exact order.
func (rs *ReplaySystem) playEvent(c *replayCore, ev *trace.FilteredEvent) {
	addr := ev.Addr + uint64(c.index)<<coreAddrShift
	pc := ev.PC | uint64(c.index)<<corePCShift
	rs.req = cache.Request{Addr: addr, PC: pc, Core: c.index, Kind: ev.Kind}
	llcRes := rs.llc.Access(&rs.req)
	var svc uint64
	if llcRes.Hit {
		svc = rs.cfg.LLCLatency
	} else if rs.dram != nil {
		svc = rs.cfg.LLCLatency + rs.dram.Access(addr)
	} else {
		svc = rs.cfg.LLCLatency + rs.cfg.MemLatency
	}
	if llcRes.EvictedValid && llcRes.Evicted.Dirty && rs.dram != nil {
		rs.dram.Touch(llcRes.Evicted.Tag << 6)
	}
	for d := 1; d <= rs.cfg.PrefetchDegree; d++ {
		rs.PrefetchIssued++
		rs.req = cache.Request{
			Addr: addr + uint64(d)*uint64(rs.cfg.LLC.LineBytes),
			PC:   pc, Core: c.index, Kind: trace.Load,
		}
		rs.llc.Access(&rs.req)
	}
	if ev.HasWB {
		rs.Writebacks++
		rs.req = cache.Request{
			Addr: ev.WBAddr + uint64(c.index)<<coreAddrShift,
			PC:   ev.WBPC | uint64(c.index)<<corePCShift,
			Core: c.index, Kind: trace.Store,
		}
		rs.llc.Access(&rs.req)
	}
	c.svc += svc
}

func (rs *ReplaySystem) applyCrossing(c *replayCore, cr *trace.Crossing) {
	switch cr.Kind {
	case trace.CrossWarmup:
		c.base = rs.snapshotAt(c, cr)
	case trace.CrossRecord:
		rs.recordAt(c, cr)
	case trace.CrossExhaust:
		if !c.recorded {
			rs.recordAt(c, cr)
		}
		c.stopped = true
	}
}

// snapshotAt reconstructs the direct engine's cumulative snapshot at a
// crossing: the tape supplies the policy-independent counters, the live
// LLC the per-core shared-cache counters, and the cycle count is the
// recorded policy-independent clock plus this core's replayed service.
func (rs *ReplaySystem) snapshotAt(c *replayCore, cr *trace.Crossing) CoreResult {
	return CoreResult{
		Core:         c.index,
		Instructions: cr.Instr,
		Cycles:       cr.PEnd + c.svc,
		MemAccesses:  cr.Mem,
		L1Hits:       cr.L1Hits,
		L1Misses:     cr.L1Misses,
		LLCAccesses:  rs.llc.Stats.CoreAccesses[c.index],
		LLCHits:      rs.llc.Stats.CoreHits[c.index],
		LLCMisses:    rs.llc.Stats.CoreMisses[c.index],
	}
}

func (rs *ReplaySystem) recordAt(c *replayCore, cr *trace.Crossing) {
	if !c.recorded {
		rs.recorded++
	}
	c.recorded = true
	r := rs.snapshotAt(c, cr)
	b := c.base // zero when no warm-up
	c.result = CoreResult{
		Core:         c.index,
		Instructions: r.Instructions - b.Instructions,
		Cycles:       r.Cycles - b.Cycles,
		MemAccesses:  r.MemAccesses - b.MemAccesses,
		L1Hits:       r.L1Hits - b.L1Hits,
		L1Misses:     r.L1Misses - b.L1Misses,
		LLCAccesses:  r.LLCAccesses - b.LLCAccesses,
		LLCHits:      r.LLCHits - b.LLCHits,
		LLCMisses:    r.LLCMisses - b.LLCMisses,
	}
}
