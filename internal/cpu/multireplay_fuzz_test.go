package cpu

// FuzzMultiReplayGrid extends the FuzzFilteredDecode family one layer
// up: arbitrary (valid and bit-flipped) hand-built tapes are replayed
// through a 3-lane policy grid. The contract under corruption: Run
// returns an error with nil results — never a panic — and lanes are
// isolated: each lane's outcome (results or failure) is identical to a
// standalone single-policy replay of the same bytes, because the item
// stream and every failure mode are policy-independent.

import (
	"reflect"
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

func fuzzGridConfig() Config {
	return Config{
		Cores:      1,
		L1:         cache.Config{SizeBytes: 2 << 10, Ways: 2, LineBytes: 64},
		LLC:        cache.Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64},
		L1Latency:  1,
		LLCLatency: 10,
		MemLatency: 100,
	}
}

// splitmix64 is the fuzz harness's event-field generator: one uint64
// seed expands into a deterministic tape.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// buildFuzzTape hand-builds a complete tape: events derived from seed,
// a record crossing at crossAfter, an exhaustion crossing at the end,
// and optionally one flipped byte in the packed buffer. decCount stays
// zero, so every replay stream-decodes through the shared window — the
// multi-lane path under test.
func buildFuzzTape(cfg Config, nEvents, seed, crossAfter uint64, onEvent bool, mutPos, mutXor uint64) *Tape {
	ft := &trace.FilteredTrace{}
	var p uint64
	for i := uint64(0); i < nEvents; i++ {
		r := splitmix64(&seed)
		ev := trace.FilteredEvent{
			Addr:     r & (1<<42 - 1) &^ 63,
			PC:       splitmix64(&seed) & (1<<48 - 1),
			CycleGap: splitmix64(&seed) & 0xffff,
			InstrGap: splitmix64(&seed) & 0xff,
			Kind:     trace.Load,
		}
		if r&1 != 0 {
			ev.Kind = trace.Store
		}
		if r&2 != 0 {
			ev.HasWB = true
			ev.WBAddr = splitmix64(&seed) & (1<<40 - 1) &^ 63
			ev.WBPC = splitmix64(&seed) & (1<<48 - 1)
		}
		p += ev.CycleGap
		ft.AppendEvent(ev)
	}
	ft.AppendCrossing(trace.Crossing{
		Kind: trace.CrossRecord, AfterEvents: crossAfter, OnEvent: onEvent,
		PStart: p, PEnd: p + 2, Instr: nEvents * 3, Mem: nEvents,
		L1Hits: nEvents * 2, L1Misses: nEvents,
	})
	ft.AppendCrossing(trace.Crossing{
		Kind: trace.CrossExhaust, AfterEvents: nEvents, PStart: p + 3, PEnd: p + 3,
	})
	// MarkComplete before any replay: the recorder has no live stream, so
	// an extension attempt would be a harness bug, not a decoder one.
	ft.MarkComplete()
	if mutXor&0xff != 0 {
		if buf, _, _ := ft.Snapshot(); len(buf) > 0 {
			buf[mutPos%uint64(len(buf))] ^= byte(mutXor)
		}
	}
	return &Tape{frontEnd: FrontEndKey(cfg), rec: &recorder{cfg: cfg, tr: ft}, chunk: tapeChunkMin}
}

func FuzzMultiReplayGrid(f *testing.F) {
	f.Add(uint64(64), uint64(1), uint64(64), false, uint64(0), uint64(0))      // valid, record at end
	f.Add(uint64(64), uint64(2), uint64(64), true, uint64(0), uint64(0))       // valid, on-event record
	f.Add(uint64(16), uint64(3), uint64(7), false, uint64(0), uint64(0))       // record mid-tape
	f.Add(uint64(0), uint64(4), uint64(0), true, uint64(0), uint64(0))         // stray on-event crossing
	f.Add(uint64(32), uint64(5), uint64(40), false, uint64(0), uint64(0))      // crossing past the tape
	f.Add(uint64(64), uint64(6), uint64(64), false, uint64(10), uint64(128))   // continuation-bit flip
	f.Add(uint64(64), uint64(7), uint64(64), false, uint64(900), uint64(0xff)) // flip near the tail

	f.Fuzz(func(t *testing.T, nEvents, seed, crossAfter uint64, onEvent bool, mutPos, mutXor uint64) {
		nEvents %= 2048
		if crossAfter > nEvents+8 {
			crossAfter %= nEvents + 8 // keep some runs valid, some past the end
		}
		cfg := fuzzGridConfig()
		lanes := func() []cache.Policy {
			return []cache.Policy{
				policy.NewLRU(),
				policy.NewDRRIP(uint64(cfg.Cores)),
				policy.NewUCP(cfg.Cores, cfg.LLC.Ways),
			}
		}
		tape := buildFuzzTape(cfg, nEvents, seed, crossAfter, onEvent, mutPos, mutXor)

		ms := NewMultiReplaySystem(cfg, lanes(), tape0(tape))
		mRes, mErr := ms.Run()
		if mErr != nil && mRes != nil {
			t.Fatalf("failed grid returned non-nil results: %+v", mRes)
		}

		// Lane isolation: each lane must match a standalone single-policy
		// replay of the same bytes, in outcome and in content.
		for li, pol := range lanes() {
			rs := NewReplaySystem(cfg, pol, tape0(tape))
			sRes, sErr := rs.Run()
			if (mErr == nil) != (sErr == nil) {
				t.Fatalf("lane %d: grid err %v, single err %v", li, mErr, sErr)
			}
			if mErr == nil && !reflect.DeepEqual(mRes[li], sRes) {
				t.Fatalf("lane %d diverges from single replay\ngrid:   %+v\nsingle: %+v",
					li, mRes[li], sRes)
			}
		}
	})
}

func tape0(t *Tape) []*Tape { return []*Tape{t} }

// FuzzMultiReplayGridParallel is FuzzMultiReplayGrid with lanes stepped
// on worker goroutines: the error-never-panic and lane-isolation
// contracts must survive arbitrary corruption with the streaming window
// under concurrent access (decCount stays zero in these tapes, so every
// event goes through the shared window — the contended path).
func FuzzMultiReplayGridParallel(f *testing.F) {
	f.Add(uint64(64), uint64(1), uint64(64), false, uint64(0), uint64(0))
	f.Add(uint64(16), uint64(3), uint64(7), false, uint64(0), uint64(0))
	f.Add(uint64(0), uint64(4), uint64(0), true, uint64(0), uint64(0))
	f.Add(uint64(32), uint64(5), uint64(40), false, uint64(0), uint64(0))
	f.Add(uint64(64), uint64(6), uint64(64), false, uint64(10), uint64(128))
	f.Add(uint64(64), uint64(7), uint64(64), false, uint64(900), uint64(0xff))

	f.Fuzz(func(t *testing.T, nEvents, seed, crossAfter uint64, onEvent bool, mutPos, mutXor uint64) {
		nEvents %= 2048
		if crossAfter > nEvents+8 {
			crossAfter %= nEvents + 8
		}
		cfg := fuzzGridConfig()
		lanes := func() []cache.Policy {
			return []cache.Policy{
				policy.NewLRU(),
				policy.NewDRRIP(uint64(cfg.Cores)),
				policy.NewUCP(cfg.Cores, cfg.LLC.Ways),
			}
		}
		tape := buildFuzzTape(cfg, nEvents, seed, crossAfter, onEvent, mutPos, mutXor)

		ms := NewMultiReplaySystem(cfg, lanes(), tape0(tape))
		mRes, mErr := ms.RunParallel(3)
		if mErr != nil && mRes != nil {
			t.Fatalf("failed parallel grid returned non-nil results: %+v", mRes)
		}

		for li, pol := range lanes() {
			rs := NewReplaySystem(cfg, pol, tape0(tape))
			sRes, sErr := rs.Run()
			if (mErr == nil) != (sErr == nil) {
				t.Fatalf("lane %d: parallel grid err %v, single err %v", li, mErr, sErr)
			}
			if mErr == nil && !reflect.DeepEqual(mRes[li], sRes) {
				t.Fatalf("lane %d diverges from single replay\ngrid:   %+v\nsingle: %+v",
					li, mRes[li], sRes)
			}
		}
	})
}
