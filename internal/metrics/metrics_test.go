package metrics

import (
	"math"
	"os"
	"strings"
	"testing"
)

func TestWeightedSpeedup(t *testing.T) {
	shared := []float64{0.5, 1.0}
	alone := []float64{1.0, 1.0}
	if got := WeightedSpeedup(shared, alone); got != 1.5 {
		t.Fatalf("WS = %v", got)
	}
	// Interference-free scores n.
	if got := WeightedSpeedup(alone, alone); got != 2 {
		t.Fatalf("WS ideal = %v", got)
	}
	// Zero alone IPC entries are skipped, not division-by-zero.
	if got := WeightedSpeedup([]float64{1}, []float64{0}); got != 0 {
		t.Fatalf("WS zero-alone = %v", got)
	}
}

func TestANTT(t *testing.T) {
	shared := []float64{0.5, 1.0}
	alone := []float64{1.0, 1.0}
	if got := ANTT(shared, alone); got != 1.5 {
		t.Fatalf("ANTT = %v", got)
	}
	if got := ANTT(nil, nil); got != 0 {
		t.Fatalf("ANTT empty = %v", got)
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	shared := []float64{0.5, 1.0}
	alone := []float64{1.0, 1.0}
	// slowdowns: 2, 1 -> HS = 2/3.
	if got := HarmonicSpeedup(shared, alone); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("HS = %v", got)
	}
	if got := HarmonicSpeedup([]float64{0}, []float64{1}); got != 0 {
		t.Fatalf("HS degenerate = %v", got)
	}
}

func TestThroughputAndFairness(t *testing.T) {
	if got := Throughput([]float64{0.5, 1.5}); got != 2 {
		t.Fatalf("throughput = %v", got)
	}
	if got := Fairness([]float64{0.5, 1.0}, []float64{1, 1}); got != 0.5 {
		t.Fatalf("fairness = %v", got)
	}
	if got := Fairness([]float64{1, 1}, []float64{1, 1}); got != 1 {
		t.Fatalf("fairness ideal = %v", got)
	}
	if got := Fairness(nil, nil); got != 0 {
		t.Fatalf("fairness empty = %v", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", F3(1.5))
	tb.AddRow("longer-name") // short row padded
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("missing value:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestFormatters(t *testing.T) {
	if F2(1.005) == "" || F3(0) != "0.000" {
		t.Fatal("formatters broken")
	}
	if got := Pct(1.096); got != "+9.6%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(0.9); got != "-10.0%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("E6: 2-core weighted speedup", "mix", "LRU", "NUcache")
	tb.AddRow("mix2-01", "2.000", "+7.7%")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "mix,LRU,NUcache\n") {
		t.Fatalf("csv header wrong:\n%s", got)
	}
	if !strings.Contains(got, "mix2-01,2.000,+7.7%") {
		t.Fatalf("csv row wrong:\n%s", got)
	}
}

func TestSaveCSV(t *testing.T) {
	tb := NewTable("E6: demo / table", "a", "b")
	tb.AddRow("1", "2")
	dir := t.TempDir()
	path, err := tb.SaveCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "e6-demo-table.csv") {
		t.Fatalf("path = %q", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1,2") {
		t.Fatalf("content = %q", data)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"":               "table",
		"!!!":            "table",
		"E1: Skew (top)": "e1-skew-top",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Fatalf("slug(%q) = %q, want %q", in, got, want)
		}
	}
	long := slug(strings.Repeat("a", 100))
	if len(long) != 64 {
		t.Fatalf("slug not truncated: %d", len(long))
	}
}
