package metrics

import (
	"encoding/csv"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// WriteCSV emits the table in CSV form (headers first). The title is not
// included; use the file name to carry it.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table as CSV to path, creating missing parent
// directories.
func (t *Table) WriteCSVFile(path string) error {
	return writeFile(path, t.WriteCSV)
}

// SaveCSV writes the table to dir/<slug-of-title>.csv and returns the
// path; dir (and any missing parents) are created.
func (t *Table) SaveCSV(dir string) (string, error) {
	path := filepath.Join(dir, slug(t.Title)+".csv")
	return path, t.WriteCSVFile(path)
}

// writeFile creates path's parent directories and streams one writer
// into it. All table writers funnel through here so none of them can
// assume the output directory already exists.
func writeFile(path string, write func(io.Writer) error) error {
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// slug converts a table title into a safe file stem ("E6: 2-core ..." ->
// "e6-2-core-...").
func slug(title string) string {
	if title == "" {
		return "table"
	}
	var b strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	out := strings.Trim(b.String(), "-")
	if len(out) > 64 {
		out = out[:64]
	}
	if out == "" {
		return "table"
	}
	return out
}
