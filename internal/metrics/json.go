package metrics

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// TableJSON is a Table's structured form, for machine consumers of the
// experiment artifacts (the text renderer stays the human surface).
type TableJSON struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// JSON returns the table's structured form. Rows are copied, so mutating
// the result does not alias the table.
func (t *Table) JSON() TableJSON {
	out := TableJSON{Title: t.Title, Headers: t.Headers, Rows: make([][]string, len(t.rows))}
	for i, r := range t.rows {
		out.Rows[i] = append([]string(nil), r...)
	}
	return out
}

// WriteJSON emits the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.JSON())
}

// WriteJSONFile writes the table as JSON to path, creating missing
// parent directories.
func (t *Table) WriteJSONFile(path string) error {
	return writeFile(path, t.WriteJSON)
}

// SaveJSON writes the table to dir/<slug-of-title>.json and returns the
// path; dir (and any missing parents) are created.
func (t *Table) SaveJSON(dir string) (string, error) {
	path := filepath.Join(dir, slug(t.Title)+".json")
	return path, t.WriteJSONFile(path)
}
