package metrics

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("E6: 2-core weighted speedup", "mix", "LRU", "NUcache")
	t.AddRow("mix2-01", "1.000", "+9.6%")
	t.AddRow("mix2-02", "1.000", "+4.2%")
	return t
}

func TestWriteJSONShape(t *testing.T) {
	var b strings.Builder
	if err := sampleTable().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got TableJSON
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "E6: 2-core weighted speedup" || len(got.Headers) != 3 || len(got.Rows) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Rows[1][2] != "+4.2%" {
		t.Fatalf("cell: %+v", got.Rows)
	}
}

// The writers must create missing parent directories — saving artifacts
// into a fresh results tree was previously an error.
func TestSaveCreatesParentDirectories(t *testing.T) {
	base := t.TempDir()
	nested := filepath.Join(base, "does", "not", "exist")

	csvPath, err := sampleTable().SaveCSV(nested)
	if err != nil {
		t.Fatalf("SaveCSV into missing dirs: %v", err)
	}
	jsonPath, err := sampleTable().SaveJSON(nested)
	if err != nil {
		t.Fatalf("SaveJSON into missing dirs: %v", err)
	}
	for _, p := range []string{csvPath, jsonPath} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "mix,LRU,NUcache\n") {
		t.Fatalf("csv content:\n%s", data)
	}

	deep := filepath.Join(base, "a", "b", "c.json")
	if err := sampleTable().WriteJSONFile(deep); err != nil {
		t.Fatalf("WriteJSONFile: %v", err)
	}
	if err := sampleTable().WriteCSVFile(filepath.Join(base, "x", "y", "z.csv")); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
}
