// Package metrics implements the multiprogrammed-workload performance
// metrics used by the evaluation — weighted speedup, average normalized
// turnaround time (ANTT), harmonic mean of speedups, throughput, MPKI —
// plus a small text-table renderer for harness output.
package metrics

// WeightedSpeedup is Σ_i IPC_shared_i / IPC_alone_i — the throughput
// metric the paper's headline numbers are quoted in. A system that runs
// every program at its alone speed scores n.
func WeightedSpeedup(shared, alone []float64) float64 {
	checkLens(shared, alone)
	sum := 0.0
	for i := range shared {
		if alone[i] > 0 {
			sum += shared[i] / alone[i]
		}
	}
	return sum
}

// ANTT is the average normalized turnaround time (1/n) Σ IPC_alone_i /
// IPC_shared_i — a user-centric slowdown metric; lower is better, 1 is
// interference-free.
func ANTT(shared, alone []float64) float64 {
	checkLens(shared, alone)
	if len(shared) == 0 {
		return 0
	}
	sum := 0.0
	for i := range shared {
		if shared[i] > 0 {
			sum += alone[i] / shared[i]
		}
	}
	return sum / float64(len(shared))
}

// HarmonicSpeedup is n / Σ_i IPC_alone_i / IPC_shared_i — balances
// throughput and fairness; higher is better, 1 is interference-free.
func HarmonicSpeedup(shared, alone []float64) float64 {
	checkLens(shared, alone)
	sum := 0.0
	n := 0
	for i := range shared {
		if shared[i] > 0 && alone[i] > 0 {
			sum += alone[i] / shared[i]
			n++
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// Throughput is Σ_i IPC_shared_i (instruction throughput of the chip).
func Throughput(shared []float64) float64 {
	sum := 0.0
	for _, v := range shared {
		sum += v
	}
	return sum
}

// Fairness is min_i(speedup_i) / max_i(speedup_i) where speedup_i =
// shared/alone; 1 is perfectly fair.
func Fairness(shared, alone []float64) float64 {
	checkLens(shared, alone)
	minS, maxS := 0.0, 0.0
	first := true
	for i := range shared {
		if alone[i] <= 0 {
			continue
		}
		s := shared[i] / alone[i]
		if first {
			minS, maxS = s, s
			first = false
			continue
		}
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS == 0 {
		return 0
	}
	return minS / maxS
}

func checkLens(shared, alone []float64) {
	if len(shared) != len(alone) {
		panic("metrics: shared/alone length mismatch")
	}
}
