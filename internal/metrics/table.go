package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table is a minimal fixed-width text table for harness output — the
// simulator equivalent of the paper's tables and bar charts.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers are the column names.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F3 formats a float with three decimals (the harness's standard).
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a ratio as a signed percentage ("+9.6%").
func Pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", 100*(ratio-1)) }
