package policy

import "nucache/internal/cache"

// NRU is not-recently-used replacement: each line carries one reference
// bit (stored in Line.Meta); hits set it; the victim is the first line
// with a clear bit, and when all bits are set they are cleared (except
// the just-used line's).
type NRU struct{}

// NewNRU returns an NRU policy.
func NewNRU() *NRU { return &NRU{} }

// Name implements cache.Policy.
func (*NRU) Name() string { return "NRU" }

// NewSetState implements cache.Policy.
func (*NRU) NewSetState(int) cache.SetState { return nil }

// OnHit implements cache.Policy.
func (*NRU) OnHit(set *cache.Set, way int, _ *cache.Request) {
	set.Lines[way].Meta = 1
	n := 0
	for i := range set.Lines {
		if set.Lines[i].Meta != 0 {
			n++
		}
	}
	if n == len(set.Lines) {
		for i := range set.Lines {
			if i != way {
				set.Lines[i].Meta = 0
			}
		}
	}
}

// Victim implements cache.Policy.
func (*NRU) Victim(set *cache.Set, _ *cache.Request) int {
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	for i := range set.Lines {
		if set.Lines[i].Meta == 0 {
			return i
		}
	}
	// All referenced: clear and evict way 0.
	for i := range set.Lines {
		set.Lines[i].Meta = 0
	}
	return 0
}

// OnInsert implements cache.Policy.
func (*NRU) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	set.Lines[way].Meta = 1
}
