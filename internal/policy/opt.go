package policy

import (
	"math"

	"nucache/internal/cache"
)

// OPT is Belady's offline optimal replacement: the victim is the line
// whose next use is farthest in the future (or never). It needs the
// cache's future access sequence, precomputed with NextUseChain; because
// upper-level caches filter independently of the LLC policy, the LLC
// access stream can be recorded under any policy and replayed under OPT.
type OPT struct {
	// nextUse[seq] is the sequence number of the next access to the same
	// line after access seq, or NeverUsed.
	nextUse []uint64
}

// NeverUsed marks a line with no future access.
const NeverUsed = math.MaxUint64

// NewOPT returns an OPT policy driven by a precomputed next-use chain.
func NewOPT(nextUse []uint64) *OPT { return &OPT{nextUse: nextUse} }

// NextUseChain computes, for each position i in a sequence of line
// addresses, the position of the next access to the same line
// (NeverUsed if none).
func NextUseChain(lineAddrs []uint64) []uint64 {
	next := make([]uint64, len(lineAddrs))
	last := make(map[uint64]int, 1024)
	for i := len(lineAddrs) - 1; i >= 0; i-- {
		if j, ok := last[lineAddrs[i]]; ok {
			next[i] = uint64(j)
		} else {
			next[i] = NeverUsed
		}
		last[lineAddrs[i]] = i
	}
	return next
}

// Name implements cache.Policy.
func (*OPT) Name() string { return "OPT" }

// NewSetState implements cache.Policy.
func (*OPT) NewSetState(int) cache.SetState { return nil }

func (o *OPT) futureOf(seq uint64) uint64 {
	if seq < uint64(len(o.nextUse)) {
		return o.nextUse[seq]
	}
	// Accesses beyond the precomputed horizon have unknown futures;
	// treating them as never-used keeps the policy safe to run past it.
	return NeverUsed
}

// OnHit implements cache.Policy.
func (o *OPT) OnHit(set *cache.Set, way int, req *cache.Request) {
	set.Lines[way].Meta = o.futureOf(req.Seq)
}

// Victim implements cache.Policy: farthest next use.
func (o *OPT) Victim(set *cache.Set, req *cache.Request) int {
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	best, bestNext := 0, uint64(0)
	for i := range set.Lines {
		if set.Lines[i].Meta >= bestNext {
			best, bestNext = i, set.Lines[i].Meta
		}
		if bestNext == NeverUsed {
			break
		}
	}
	// True Belady also bypasses fills whose own next use is farther than
	// every resident line's; classic OPT caches everything, which is what
	// we model for a like-for-like replacement comparison.
	return best
}

// OnInsert implements cache.Policy.
func (o *OPT) OnInsert(set *cache.Set, way int, req *cache.Request) {
	set.Lines[way].Meta = o.futureOf(req.Seq)
}

// Recorder wraps a Policy and records the line address of every access
// presented to the cache, in order — the input NextUseChain needs.
type Recorder struct {
	cache.Policy
	inner     cache.AccessObserver
	LineAddrs []uint64
}

// NewRecorder wraps p.
func NewRecorder(p cache.Policy) *Recorder {
	r := &Recorder{Policy: p}
	r.inner, _ = p.(cache.AccessObserver)
	return r
}

// ObserveAccess implements cache.AccessObserver.
func (r *Recorder) ObserveAccess(setIndex int, tag uint64, req *cache.Request) {
	r.LineAddrs = append(r.LineAddrs, tag)
	if r.inner != nil {
		r.inner.ObserveAccess(setIndex, tag, req)
	}
}
