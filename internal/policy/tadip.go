package policy

import (
	"nucache/internal/cache"
	"nucache/internal/stats"
)

// TADIP is the thread-aware dynamic insertion policy (Jaleel et al.,
// PACT 2008). Replacement is LRU; the insertion position per thread duels
// between MRU-insertion (plain LRU) and bimodal LRU-insertion (BIP): each
// thread owns a pair of leader-set groups and a PSEL counter, and follower
// sets apply each thread's current winner to that thread's fills. With a
// single thread this is exactly DIP (Qureshi et al., ISCA 2007).
type TADIP struct {
	threads int
	rng     *stats.RNG
	psels   []psel
}

// NewTADIP returns a TADIP policy for the given thread (core) count.
func NewTADIP(threads int, seed uint64) *TADIP {
	if threads <= 0 {
		threads = 1
	}
	if 2*threads > constituencySize {
		// Leader pairs would not fit in a constituency; the largest
		// supported configuration (16 threads) still fits.
		panic("policy: TADIP supports at most constituencySize/2 threads")
	}
	p := &TADIP{threads: threads, rng: stats.NewRNG(seed)}
	p.psels = make([]psel, threads)
	for i := range p.psels {
		p.psels[i] = newPSEL()
	}
	return p
}

// NewDIP returns the single-threaded dynamic insertion policy.
func NewDIP(seed uint64) *TADIP { return NewTADIP(1, seed) }

// Name implements cache.Policy.
func (p *TADIP) Name() string {
	if p.threads == 1 {
		return "DIP"
	}
	return "TADIP"
}

// tadipTickBase splits the stamp space: MRU touches count up from it,
// LRU (BIP) insertions count down from it. Both move at most once per
// LLC access, so neither side can cross into the other within a run.
const tadipTickBase = 1 << 40

// tadipState keeps the set's recency order as per-way stamps (see
// lruState): the victim is the minimum stamp, so a BIP insertion "at the
// LRU end" is a stamp below every live one — and successive BIP
// insertions take decreasing stamps, preserving the stack order where
// the most recent LRU-insert is evicted first.
type tadipState struct {
	last  [16]uint64
	tick  uint64   // last MRU stamp handed out (counts up)
	low   uint64   // last LRU stamp handed out (counts down)
	owner int      // thread whose duel this set participates in (-1: none)
	role  duelRole // leaderA = LRU-insertion leader, leaderB = BIP leader
}

// NewSetState implements cache.Policy.
func (p *TADIP) NewSetState(setIndex int) cache.SetState {
	st := &tadipState{tick: tadipTickBase, low: tadipTickBase, owner: -1, role: follower}
	off := setIndex % constituencySize
	owner := off / 2
	if owner < p.threads {
		st.owner = owner
		if off%2 == 0 {
			st.role = leaderA
		} else {
			st.role = leaderB
		}
	}
	return st
}

// OnHit implements cache.Policy.
func (*TADIP) OnHit(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*tadipState)
	st.tick++
	st.last[way] = st.tick
}

// Victim implements cache.Policy.
func (p *TADIP) Victim(set *cache.Set, req *cache.Request) int {
	st := set.State.(*tadipState)
	// A miss by the owning thread in its leader sets trains its PSEL.
	if st.owner >= 0 && st.owner == p.threadOf(req) {
		switch st.role {
		case leaderA:
			p.psels[st.owner].missInA()
		case leaderB:
			p.psels[st.owner].missInB()
		}
	}
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	way := 0
	min := st.last[0]
	for i := 1; i < len(set.Lines); i++ {
		if st.last[i] < min {
			way, min = i, st.last[i]
		}
	}
	return way
}

// OnInsert implements cache.Policy.
func (p *TADIP) OnInsert(set *cache.Set, way int, req *cache.Request) {
	st := set.State.(*tadipState)
	thread := p.threadOf(req)
	useBIP := false
	if st.owner == thread {
		useBIP = st.role == leaderB
	} else {
		useBIP = p.psels[thread].useB()
	}
	if useBIP && !p.rng.Bool(brripEpsilon) {
		st.low-- // LRU insertion: next victim unless reused
		st.last[way] = st.low
	} else {
		st.tick++
		st.last[way] = st.tick
	}
}

func (p *TADIP) threadOf(req *cache.Request) int {
	t := req.Core
	if t < 0 || t >= p.threads {
		return 0
	}
	return t
}
