package policy

// UMON is a utility monitor (Qureshi & Patt, MICRO 2006, "UMON-DSS"):
// an auxiliary tag directory (ATD) with the cache's associativity, kept on
// a sampled subset of sets and managed pure-LRU, counting hits per LRU
// stack position. The cumulative hit counts over positions give the
// utility curve U(a) = hits the monitored core would see with a ways.
type UMON struct {
	ways        int
	sampleShift uint
	sets        []umonSet // sampled set i lives at index i>>sampleShift
	hits        []uint64
	demandHits  []uint64 // demand-only hit curve; nil unless profiling
	misses      uint64
	accesses    uint64
}

type umonSet struct {
	tags []uint64 // MRU first; cap fixed at ways once allocated
	pcs  []uint64 // parallel fill PCs; allocated only by AccessProfiled
}

// NewUMON returns a monitor with the given associativity, sampling one in
// 1<<sampleShift sets.
func NewUMON(ways int, sampleShift uint) *UMON {
	if ways <= 0 {
		panic("policy: UMON with non-positive ways")
	}
	return &UMON{
		ways:        ways,
		sampleShift: sampleShift,
		hits:        make([]uint64, ways),
	}
}

// Sampled reports whether setIndex is monitored.
func (u *UMON) Sampled(setIndex int) bool {
	return setIndex&((1<<u.sampleShift)-1) == 0
}

// Access feeds one access (already known to be in a sampled set or not;
// non-sampled accesses are ignored).
func (u *UMON) Access(setIndex int, tag uint64) {
	if !u.Sampled(setIndex) {
		return
	}
	u.accesses++
	// Dense sampled-set index: allocation-free once every sampled set has
	// been touched (ATD tags are preallocated at full associativity).
	i := setIndex >> u.sampleShift
	for len(u.sets) <= i {
		u.sets = append(u.sets, umonSet{})
	}
	s := &u.sets[i]
	if s.tags == nil {
		s.tags = make([]uint64, 0, u.ways)
	}
	for i, t := range s.tags {
		if t == tag {
			u.hits[i]++
			copy(s.tags[1:], s.tags[:i])
			s.tags[0] = tag
			return
		}
	}
	u.misses++
	if len(s.tags) < u.ways {
		s.tags = append(s.tags, 0)
	}
	copy(s.tags[1:], s.tags)
	s.tags[0] = tag
}

// NewUMONProfiler returns an unsampled monitor (every set tracked) that
// additionally keeps the demand-only hit curve and a per-line fill-PC
// mirror. It is the offline profiling variant of the runtime UMON: where
// UCP samples sets to stay hardware-cheap, the MRC profiler wants the
// exact hit count at every allocation, so it shadows the whole cache.
func NewUMONProfiler(ways int) *UMON {
	u := NewUMON(ways, 0)
	u.demandHits = make([]uint64, ways)
	return u
}

// AccessProfiled feeds one access with its fill PC, distinguishing demand
// accesses from prefetch/writeback traffic. It returns the LRU stack
// position hit (-1 on miss) and, when the ATD was full, the tag and fill
// PC of the line pushed off the stack — the profiler's demotion signal.
// Only valid on monitors built by NewUMONProfiler.
func (u *UMON) AccessProfiled(setIndex int, tag, pc uint64, demand bool) (pos int, evTag, evPC uint64, evicted bool) {
	u.accesses++
	i := setIndex >> u.sampleShift
	for len(u.sets) <= i {
		u.sets = append(u.sets, umonSet{})
	}
	s := &u.sets[i]
	if s.tags == nil {
		s.tags = make([]uint64, 0, u.ways)
		s.pcs = make([]uint64, 0, u.ways)
	}
	for j, t := range s.tags {
		if t == tag {
			u.hits[j]++
			if demand {
				u.demandHits[j]++
			}
			copy(s.tags[1:], s.tags[:j])
			copy(s.pcs[1:], s.pcs[:j])
			s.tags[0] = tag
			s.pcs[0] = pc
			return j, 0, 0, false
		}
	}
	u.misses++
	if len(s.tags) < u.ways {
		s.tags = append(s.tags, 0)
		s.pcs = append(s.pcs, 0)
	} else {
		evTag, evPC, evicted = s.tags[u.ways-1], s.pcs[u.ways-1], true
	}
	copy(s.tags[1:], s.tags)
	copy(s.pcs[1:], s.pcs)
	s.tags[0] = tag
	s.pcs[0] = pc
	return -1, evTag, evPC, evicted
}

// Hits returns a copy of the per-stack-position hit counts.
func (u *UMON) Hits() []uint64 {
	out := make([]uint64, len(u.hits))
	copy(out, u.hits)
	return out
}

// DemandHits returns a copy of the demand-only per-position hit counts
// (nil unless built by NewUMONProfiler).
func (u *UMON) DemandHits() []uint64 {
	if u.demandHits == nil {
		return nil
	}
	out := make([]uint64, len(u.demandHits))
	copy(out, u.demandHits)
	return out
}

// Utility returns the cumulative hits the core would get with a ways
// (a clamped to [0, ways]).
func (u *UMON) Utility(a int) uint64 {
	if a > u.ways {
		a = u.ways
	}
	var sum uint64
	for i := 0; i < a; i++ {
		sum += u.hits[i]
	}
	return sum
}

// Accesses returns the number of monitored accesses this epoch.
func (u *UMON) Accesses() uint64 { return u.accesses }

// Misses returns the number of monitored misses this epoch.
func (u *UMON) Misses() uint64 { return u.misses }

// Reset halves all counters, aging history so the monitor adapts to phase
// changes without forgetting everything (as in the hardware proposal).
func (u *UMON) Reset() {
	for i := range u.hits {
		u.hits[i] /= 2
	}
	u.misses /= 2
	u.accesses /= 2
}

// LookaheadPartition runs UCP's lookahead algorithm: allocate totalWays
// among the monitors, each core receiving at least minPerCore ways,
// greedily maximizing marginal utility per way.
func LookaheadPartition(umons []*UMON, totalWays, minPerCore int) []int {
	n := len(umons)
	alloc := make([]int, n)
	balance := totalWays
	for i := range alloc {
		alloc[i] = minPerCore
		balance -= minPerCore
	}
	if balance < 0 {
		panic("policy: lookahead with totalWays < cores*minPerCore")
	}
	for balance > 0 {
		bestCore, bestK := -1, 0
		bestMU := -1.0
		for i, u := range umons {
			maxK := u.ways - alloc[i]
			if maxK > balance {
				maxK = balance
			}
			base := u.Utility(alloc[i])
			for k := 1; k <= maxK; k++ {
				mu := float64(u.Utility(alloc[i]+k)-base) / float64(k)
				if mu > bestMU {
					bestMU, bestCore, bestK = mu, i, k
				}
			}
		}
		if bestCore < 0 || bestMU <= 0 {
			// No marginal utility anywhere: spread the remainder evenly
			// so capacity is never wasted.
			for i := 0; balance > 0; i = (i + 1) % n {
				if alloc[i] < umons[i].ways {
					alloc[i]++
					balance--
				}
			}
			break
		}
		alloc[bestCore] += bestK
		balance -= bestK
	}
	return alloc
}
