// Package policy implements the replacement and cache-partitioning
// policies used as the baseline and the competition for NUcache:
//
//   - LRU, Random, NRU — classic replacement.
//   - SRRIP, BRRIP, DRRIP — re-reference interval prediction
//     (Jaleel et al., ISCA 2010), with set dueling for DRRIP.
//   - DIP and TADIP-F — (thread-aware) dynamic insertion policy
//     (Qureshi et al. ISCA 2007; Jaleel et al. PACT 2008).
//   - UCP — utility-based cache partitioning with UMON-DSS monitors and
//     lookahead partitioning (Qureshi & Patt, MICRO 2006).
//   - PIPP — promotion/insertion pseudo-partitioning
//     (Xie & Loh, ISCA 2009).
//   - OPT — Belady's offline optimal replacement, as an upper bound.
//
// All policies implement cache.Policy; the partitioning policies
// additionally implement cache.AccessObserver to feed their monitors.
// NUcache itself lives in internal/core.
package policy
