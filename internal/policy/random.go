package policy

import (
	"nucache/internal/cache"
	"nucache/internal/stats"
)

// Random replacement: victims are chosen uniformly at random. It is the
// cheapest hardware policy and a useful sanity baseline.
type Random struct {
	rng *stats.RNG
}

// NewRandom returns a Random policy with a deterministic stream.
func NewRandom(seed uint64) *Random {
	return &Random{rng: stats.NewRNG(seed)}
}

// Name implements cache.Policy.
func (*Random) Name() string { return "Random" }

// NewSetState implements cache.Policy.
func (*Random) NewSetState(int) cache.SetState { return nil }

// OnHit implements cache.Policy.
func (*Random) OnHit(*cache.Set, int, *cache.Request) {}

// Victim implements cache.Policy.
func (r *Random) Victim(set *cache.Set, _ *cache.Request) int {
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	return r.rng.Intn(len(set.Lines))
}

// OnInsert implements cache.Policy.
func (*Random) OnInsert(*cache.Set, int, *cache.Request) {}
