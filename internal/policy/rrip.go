package policy

import (
	"nucache/internal/cache"
	"nucache/internal/stats"
)

// RRIP-family policies (Jaleel et al., "High Performance Cache Replacement
// Using Re-Reference Interval Prediction", ISCA 2010). Each line carries a
// re-reference prediction value (RRPV) in Line.Meta; the victim is a line
// with the maximum RRPV (distant re-reference), aging all lines when none
// qualifies. SRRIP inserts at maxRRPV-1; BRRIP inserts at maxRRPV except
// with low probability; DRRIP set-duels between them.

const (
	rrpvBits = 2
	rrpvMax  = (1 << rrpvBits) - 1
	// brripEpsilon is the probability BRRIP inserts with a long (rather
	// than distant) re-reference prediction.
	brripEpsilon = 1.0 / 32
)

// rripVictim finds (aging as needed) a way with RRPV == max.
func rripVictim(set *cache.Set) int {
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	for {
		for i := range set.Lines {
			if set.Lines[i].Meta >= rrpvMax {
				return i
			}
		}
		for i := range set.Lines {
			set.Lines[i].Meta++
		}
	}
}

// SRRIP is static RRIP with hit-priority promotion.
type SRRIP struct{}

// NewSRRIP returns an SRRIP policy.
func NewSRRIP() *SRRIP { return &SRRIP{} }

// Name implements cache.Policy.
func (*SRRIP) Name() string { return "SRRIP" }

// NewSetState implements cache.Policy.
func (*SRRIP) NewSetState(int) cache.SetState { return nil }

// OnHit implements cache.Policy.
func (*SRRIP) OnHit(set *cache.Set, way int, _ *cache.Request) {
	set.Lines[way].Meta = 0
}

// Victim implements cache.Policy.
func (*SRRIP) Victim(set *cache.Set, _ *cache.Request) int { return rripVictim(set) }

// OnInsert implements cache.Policy.
func (*SRRIP) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	set.Lines[way].Meta = rrpvMax - 1
}

// BRRIP is bimodal RRIP: most insertions predict distant re-reference.
type BRRIP struct {
	rng *stats.RNG
}

// NewBRRIP returns a BRRIP policy with a deterministic stream.
func NewBRRIP(seed uint64) *BRRIP { return &BRRIP{rng: stats.NewRNG(seed)} }

// Name implements cache.Policy.
func (*BRRIP) Name() string { return "BRRIP" }

// NewSetState implements cache.Policy.
func (*BRRIP) NewSetState(int) cache.SetState { return nil }

// OnHit implements cache.Policy.
func (*BRRIP) OnHit(set *cache.Set, way int, _ *cache.Request) {
	set.Lines[way].Meta = 0
}

// Victim implements cache.Policy.
func (*BRRIP) Victim(set *cache.Set, _ *cache.Request) int { return rripVictim(set) }

// OnInsert implements cache.Policy.
func (b *BRRIP) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	if b.rng.Bool(brripEpsilon) {
		set.Lines[way].Meta = rrpvMax - 1
	} else {
		set.Lines[way].Meta = rrpvMax
	}
}

// DRRIP dynamically selects between SRRIP and BRRIP insertion via set
// dueling (single PSEL; thread-oblivious).
type DRRIP struct {
	rng  *stats.RNG
	psel psel
}

// NewDRRIP returns a DRRIP policy with a deterministic stream.
func NewDRRIP(seed uint64) *DRRIP {
	return &DRRIP{rng: stats.NewRNG(seed), psel: newPSEL()}
}

// Name implements cache.Policy.
func (*DRRIP) Name() string { return "DRRIP" }

type drripState struct {
	role duelRole
}

// NewSetState implements cache.Policy.
func (*DRRIP) NewSetState(setIndex int) cache.SetState {
	return &drripState{role: duelRoleOf(setIndex, 0, 1)}
}

// OnHit implements cache.Policy.
func (*DRRIP) OnHit(set *cache.Set, way int, _ *cache.Request) {
	set.Lines[way].Meta = 0
}

// Victim implements cache.Policy.
func (d *DRRIP) Victim(set *cache.Set, _ *cache.Request) int {
	switch set.State.(*drripState).role {
	case leaderA: // SRRIP leader missing: evidence for BRRIP
		d.psel.missInA()
	case leaderB:
		d.psel.missInB()
	}
	return rripVictim(set)
}

// OnInsert implements cache.Policy.
func (d *DRRIP) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	useBRRIP := false
	switch set.State.(*drripState).role {
	case leaderA:
		useBRRIP = false
	case leaderB:
		useBRRIP = true
	default:
		useBRRIP = d.psel.useB()
	}
	if useBRRIP && !d.rng.Bool(brripEpsilon) {
		set.Lines[way].Meta = rrpvMax
	} else {
		set.Lines[way].Meta = rrpvMax - 1
	}
}
