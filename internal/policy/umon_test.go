package policy_test

import (
	"testing"

	"nucache/internal/policy"
)

func TestUMONUtilityCurve(t *testing.T) {
	u := policy.NewUMON(4, 0) // sample everything
	// Access pattern on set 0: a b a b c a -> stack-position hits:
	// a miss, b miss, a hit@pos1, b hit@pos1, c miss, a hit@pos2.
	tags := []uint64{1, 2, 1, 2, 3, 1}
	for _, tg := range tags {
		u.Access(0, tg)
	}
	if u.Misses() != 3 {
		t.Fatalf("misses = %d", u.Misses())
	}
	if got := u.Utility(0); got != 0 {
		t.Fatalf("U(0) = %d", got)
	}
	if got := u.Utility(1); got != 0 {
		t.Fatalf("U(1) = %d (no MRU-position hits expected)", got)
	}
	if got := u.Utility(2); got != 2 {
		t.Fatalf("U(2) = %d", got)
	}
	if got := u.Utility(4); got != 3 {
		t.Fatalf("U(4) = %d", got)
	}
	// Clamps beyond associativity.
	if got := u.Utility(99); got != 3 {
		t.Fatalf("U(99) = %d", got)
	}
}

func TestUMONSampling(t *testing.T) {
	u := policy.NewUMON(4, 2) // 1 in 4 sets
	u.Access(1, 7)            // unsampled
	u.Access(4, 7)            // sampled
	if u.Accesses() != 1 {
		t.Fatalf("accesses = %d", u.Accesses())
	}
	if !u.Sampled(0) || u.Sampled(3) {
		t.Fatal("sampling predicate wrong")
	}
}

func TestUMONResetHalves(t *testing.T) {
	u := policy.NewUMON(2, 0)
	u.Access(0, 1)
	u.Access(0, 1)
	u.Access(0, 1) // two hits at pos 0
	u.Reset()
	if got := u.Utility(2); got != 1 {
		t.Fatalf("after reset U = %d, want halved 1", got)
	}
}

func TestLookaheadGivesWaysToHighUtility(t *testing.T) {
	// Core 0: hits spread across 8 positions. Core 1: no reuse at all.
	u0 := policy.NewUMON(8, 0)
	u1 := policy.NewUMON(8, 0)
	// Build a working set of 6 tags cycled: each access to tag i hits at
	// stack depth 5 after warmup.
	for round := 0; round < 50; round++ {
		for tg := uint64(0); tg < 6; tg++ {
			u0.Access(0, tg)
		}
	}
	for i := uint64(0); i < 300; i++ {
		u1.Access(0, 1000+i) // pure stream
	}
	alloc := policy.LookaheadPartition([]*policy.UMON{u0, u1}, 8, 1)
	if alloc[0]+alloc[1] != 8 {
		t.Fatalf("allocation %v does not sum to ways", alloc)
	}
	if alloc[0] < 6 {
		t.Fatalf("high-utility core got %d ways, want >= 6 (alloc %v)", alloc[0], alloc)
	}
}

func TestLookaheadMinPerCore(t *testing.T) {
	u0 := policy.NewUMON(4, 0)
	u1 := policy.NewUMON(4, 0)
	alloc := policy.LookaheadPartition([]*policy.UMON{u0, u1}, 4, 1)
	if alloc[0] < 1 || alloc[1] < 1 || alloc[0]+alloc[1] != 4 {
		t.Fatalf("allocation %v", alloc)
	}
}

func TestLookaheadPanicsWhenInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	policy.LookaheadPartition([]*policy.UMON{policy.NewUMON(2, 0)}, 0, 1)
}
