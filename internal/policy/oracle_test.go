package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

// oracleCache builds a 1-set cache running OracleRetention over addrs.
func runOracle(t *testing.T, ways, mainWays, deli int, window uint64, addrs []uint64) (*cache.Cache, uint64) {
	t.Helper()
	lines := make([]uint64, len(addrs))
	for i, a := range addrs {
		lines[i] = a >> 6
	}
	p := policy.NewOracleRetention(mainWays, deli, window, policy.NextUseChain(lines))
	c := cache.New(cache.Config{Name: "o", SizeBytes: ways * 64, Ways: ways, LineBytes: 64}, p)
	for _, a := range addrs {
		c.Access(&cache.Request{Addr: a, Kind: trace.Load})
	}
	return c, c.Stats.Hits
}

func TestOracleRetentionProtectsReusedLines(t *testing.T) {
	// 4 ways = 2 main + 2 deli. Pattern per round: hot lines h0, h1, then
	// 3 junk lines (never reused). Plain 4-way LRU loses h0/h1 every
	// round; the oracle retains them (their next use is ~5 accesses away).
	var addrs []uint64
	junk := uint64(1 << 20)
	for r := 0; r < 100; r++ {
		addrs = append(addrs, 0, 64)
		for i := 0; i < 3; i++ {
			addrs = append(addrs, junk)
			junk += 64
		}
	}
	_, lruHits := func() (*cache.Cache, uint64) {
		c := cache.New(cache.Config{Name: "l", SizeBytes: 4 * 64, Ways: 4, LineBytes: 64}, policy.NewLRU())
		for _, a := range addrs {
			c.Access(&cache.Request{Addr: a, Kind: trace.Load})
		}
		return c, c.Stats.Hits
	}()
	_, oracleHits := runOracle(t, 4, 2, 2, 16, addrs)
	if lruHits > 10 {
		t.Fatalf("LRU hits %d: scenario broken", lruHits)
	}
	if oracleHits < 150 {
		t.Fatalf("oracle hits %d, want ~198", oracleHits)
	}
}

func TestOracleRetentionIgnoresDistantReuse(t *testing.T) {
	// Lines reused far beyond the window must not be retained (they would
	// only displace the FIFO). With window 4 and reuse distance ~50, the
	// oracle behaves like mainWays-LRU: zero hits on a cyclic overflow.
	var addrs []uint64
	for r := 0; r < 50; r++ {
		for i := uint64(0); i < 10; i++ {
			addrs = append(addrs, i*64)
		}
	}
	_, hits := runOracle(t, 4, 2, 2, 4, addrs)
	if hits != 0 {
		t.Fatalf("oracle hits %d on out-of-window cyclic pattern", hits)
	}
}

func TestOracleRetentionNeverWorseThanMainLRUOnRandom(t *testing.T) {
	// Randomized property: oracle retention with a generous window should
	// not lose to plain LRU of the same total ways by more than noise on
	// reuse-heavy traffic (it has strictly better information).
	addrs := make([]uint64, 30000)
	x := uint64(88172645463325252)
	for i := range addrs {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		addrs[i] = (x % 48) * 64
	}
	cLRU := cache.New(cache.Config{Name: "l", SizeBytes: 8 * 64, Ways: 8, LineBytes: 64}, policy.NewLRU())
	for _, a := range addrs {
		cLRU.Access(&cache.Request{Addr: a, Kind: trace.Load})
	}
	_, oracleHits := runOracle(t, 8, 5, 3, 1<<20, addrs)
	if float64(oracleHits) < 0.95*float64(cLRU.Stats.Hits) {
		t.Fatalf("oracle hits %d << LRU %d", oracleHits, cLRU.Stats.Hits)
	}
}

func TestOracleRetentionPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	policy.NewOracleRetention(0, 2, 10, nil)
}
