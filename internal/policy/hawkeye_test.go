package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

func TestHawkeyeLearnsStreamAverse(t *testing.T) {
	// Set 0 is sampled (1-in-32): train on it. Hot PC loops 3 lines/set;
	// stream PC floods. Hawkeye must learn the stream PC is averse and
	// keep the hot lines.
	const (
		pcHot    = 0x400100
		pcStream = 0x400200
	)
	c := multiSetCache(32, 4, 1, policy.NewHawkeye(4))
	streamAddr := uint64(1 << 30)
	var lastHits int
	for round := 0; round < 300; round++ {
		hits := 0
		for i := uint64(0); i < 3; i++ {
			for s := uint64(0); s < 32; s++ {
				r := c.Access(&cache.Request{Addr: i*32*64 + s*64, PC: pcHot, Kind: trace.Load})
				if r.Hit {
					hits++
				}
			}
		}
		for i := 0; i < 6*32; i++ {
			c.Access(&cache.Request{Addr: streamAddr, PC: pcStream, Kind: trace.Load})
			streamAddr += 64
		}
		lastHits = hits
	}
	if lastHits < 80 { // of 96 hot accesses in the last round
		t.Fatalf("Hawkeye retained only %d/96 hot hits in steady state", lastHits)
	}
}

func TestHawkeyeSaneOnFriendlyWorkload(t *testing.T) {
	// Everything fits: Hawkeye must not lose to LRU by more than noise.
	run := func(p cache.Policy) uint64 {
		c := multiSetCache(32, 4, 1, p)
		for round := 0; round < 40; round++ {
			for i := uint64(0); i < 64; i++ { // half capacity
				load(c, 0, i*64)
			}
		}
		return c.Stats.Hits
	}
	hawk := run(policy.NewHawkeye(4))
	lru := run(policy.NewLRU())
	if float64(hawk) < 0.9*float64(lru) {
		t.Fatalf("Hawkeye hits %d << LRU %d on friendly workload", hawk, lru)
	}
}

func TestHawkeyeOccupancyBounded(t *testing.T) {
	c := multiSetCache(8, 4, 2, policy.NewHawkeye(4))
	for i := uint64(0); i < 50000; i++ {
		c.Access(&cache.Request{
			Addr: (i * 2654435761) % (1 << 22) &^ 63,
			PC:   0x400000 + (i%7)*4,
			Core: int(i % 2),
			Kind: trace.Load,
		})
	}
	if c.Occupancy() > 32 {
		t.Fatalf("occupancy %d", c.Occupancy())
	}
}

func TestHawkeyePanicsOnBadWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	policy.NewHawkeye(0)
}
