package policy

import "nucache/internal/cache"

// OracleRetention is an idealized NUcache: the same MainWays/DeliWays set
// organization, but the retention decision uses *perfect* next-use
// knowledge instead of the PC-based proxy. A line evicted from the
// MainWays is retained iff its true next use lies within `window` cache
// accesses. It upper-bounds what any realizable selection mechanism
// (NUcache's included) can get out of a given MainWays/DeliWays split.
//
// Like OPT it needs the cache's access sequence precomputed with
// NextUseChain (record the LLC line stream under any policy first — the
// stream is policy-independent because upper levels filter independently).
type OracleRetention struct {
	mainWays int
	deliWays int
	window   uint64
	nextUse  []uint64
}

// NewOracleRetention builds the oracle policy for a mainWays+deliWays
// organization. window is the retention horizon in cache accesses.
func NewOracleRetention(mainWays, deliWays int, window uint64, nextUse []uint64) *OracleRetention {
	if mainWays < 1 || deliWays < 0 {
		panic("policy: OracleRetention needs mainWays >= 1, deliWays >= 0")
	}
	return &OracleRetention{
		mainWays: mainWays,
		deliWays: deliWays,
		window:   window,
		nextUse:  nextUse,
	}
}

// Name implements cache.Policy.
func (*OracleRetention) Name() string { return "OracleNU" }

type oracleState struct {
	main *cache.WayList // front = MRU
	deli *cache.WayList // front = oldest
}

// NewSetState implements cache.Policy.
func (o *OracleRetention) NewSetState(int) cache.SetState {
	return &oracleState{
		main: cache.NewWayList(o.mainWays + o.deliWays),
		deli: cache.NewWayList(o.deliWays + 1),
	}
}

func (o *OracleRetention) futureOf(seq uint64) uint64 {
	if seq < uint64(len(o.nextUse)) {
		return o.nextUse[seq]
	}
	return NeverUsed
}

// OnHit implements cache.Policy.
func (o *OracleRetention) OnHit(set *cache.Set, way int, req *cache.Request) {
	set.Lines[way].Meta = o.futureOf(req.Seq)
	st := set.State.(*oracleState)
	if st.main.Contains(way) {
		st.main.MoveToFront(way)
		return
	}
	// DeliWay hit: promote; the MainWays LRU line takes the slot only if
	// it is itself worth retaining (mirrors NUcache's chosen-only swap).
	idx := st.deli.IndexOf(way)
	if idx < 0 {
		st.main.PushFront(way)
		return
	}
	if st.main.Len() < o.mainWays {
		st.deli.RemoveAt(idx)
		st.main.PushFront(way)
		return
	}
	lru := st.main.Back()
	if !o.retain(set.Lines[lru].Meta, req.Seq) {
		return
	}
	st.main.PopBack()
	st.deli.RemoveAt(idx)
	st.deli.InsertAt(idx, lru)
	st.main.PushFront(way)
}

// retain reports whether a line with the given next-use seq is worth
// holding at current time seq.
func (o *OracleRetention) retain(next, seq uint64) bool {
	return next != NeverUsed && next-seq <= o.window
}

// Victim implements cache.Policy (same demote-loop structure as NUcache).
func (o *OracleRetention) Victim(set *cache.Set, req *cache.Request) int {
	st := set.State.(*oracleState)
	if st.main.Len() < o.mainWays {
		if inv := set.FindInvalid(); inv >= 0 {
			st.main.Remove(inv)
			st.deli.Remove(inv)
			return inv
		}
	}
	for st.main.Len() > 0 {
		w := st.main.PopBack()
		if o.deliWays > 0 && o.retain(set.Lines[w].Meta, req.Seq) {
			st.deli.PushBack(w)
			if st.deli.Len() > o.deliWays {
				return st.deli.PopFront()
			}
			if inv := set.FindInvalid(); inv >= 0 {
				return inv
			}
			continue
		}
		return w
	}
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	if st.deli.Len() > 0 {
		return st.deli.PopFront()
	}
	return 0
}

// OnInsert implements cache.Policy.
func (o *OracleRetention) OnInsert(set *cache.Set, way int, req *cache.Request) {
	set.Lines[way].Meta = o.futureOf(req.Seq)
	st := set.State.(*oracleState)
	st.main.Remove(way)
	st.deli.Remove(way)
	st.main.PushFront(way)
}
