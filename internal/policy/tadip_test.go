package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
)

func hitsOn(p cache.Policy, sets, ways, cores int, work func(c *cache.Cache)) uint64 {
	c := multiSetCache(sets, ways, cores, p)
	work(c)
	return c.Stats.Hits
}

func TestDIPTracksLRUOnFriendlyWorkload(t *testing.T) {
	friendly := func(c *cache.Cache) {
		for round := 0; round < 50; round++ {
			for i := uint64(0); i < 128; i++ { // half of 64x4 capacity
				load(c, 0, i*64)
			}
		}
	}
	lru := hitsOn(policy.NewLRU(), 64, 4, 1, friendly)
	dip := hitsOn(policy.NewDIP(1), 64, 4, 1, friendly)
	if float64(dip) < 0.8*float64(lru) {
		t.Fatalf("DIP hits %d << LRU hits %d on LRU-friendly workload", dip, lru)
	}
}

func TestDIPBeatsLRUOnThrash(t *testing.T) {
	thrash := func(c *cache.Cache) {
		for round := 0; round < 60; round++ {
			for i := uint64(0); i < 320; i++ { // 1.25x of 256-line capacity
				load(c, 0, i*64)
			}
		}
	}
	lru := hitsOn(policy.NewLRU(), 64, 4, 1, thrash)
	dip := hitsOn(policy.NewDIP(2), 64, 4, 1, thrash)
	if dip <= lru {
		t.Fatalf("DIP hits %d <= LRU hits %d on thrashing workload", dip, lru)
	}
}

func TestTADIPPerThreadAdaptation(t *testing.T) {
	// Core 0 has an LRU-friendly working set; core 1 thrashes. TADIP must
	// insert core 1's lines at LRU so core 0 keeps most of its hits, doing
	// clearly better than plain LRU for core 0.
	mixed := func(c *cache.Cache) {
		for round := 0; round < 200; round++ {
			for i := uint64(0); i < 64; i++ {
				load(c, 0, i*64) // fits easily
			}
			for i := uint64(0); i < 512; i++ {
				load(c, 1, 1<<30|i*64) // cycles over 2x capacity
			}
		}
	}
	core0Hits := func(p cache.Policy) uint64 {
		c := multiSetCache(64, 4, 2, p)
		mixed(c)
		return c.Stats.CoreHits[0]
	}
	lru := core0Hits(policy.NewLRU())
	tadip := core0Hits(policy.NewTADIP(2, 3))
	if float64(tadip) < 1.2*float64(lru) {
		t.Fatalf("TADIP core0 hits %d, LRU %d: no thrash protection", tadip, lru)
	}
}

func TestTADIPSingleThreadIsDIPName(t *testing.T) {
	if got := policy.NewDIP(1).Name(); got != "DIP" {
		t.Fatalf("Name = %q", got)
	}
	if got := policy.NewTADIP(4, 1).Name(); got != "TADIP" {
		t.Fatalf("Name = %q", got)
	}
}

func TestTADIPRejectsTooManyThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	policy.NewTADIP(17, 1)
}

func TestTADIPOutOfRangeCoreClamped(t *testing.T) {
	c := multiSetCache(8, 4, 2, policy.NewTADIP(2, 1))
	// Core index beyond threads must not crash.
	load(c, 7, 0)
	load(c, -1, 64)
	if c.Stats.Accesses != 2 {
		t.Fatal("accesses lost")
	}
}
