package policy

import "nucache/internal/cache"

// SHiP is signature-based hit prediction (Wu et al., MICRO 2011) over an
// SRRIP substrate: a table of saturating counters, indexed by a hash of
// the filling PC, learns whether lines from that signature get re-used.
// Fills from zero-counter signatures insert with a distant re-reference
// prediction (immediately evictable); others insert like SRRIP. It is the
// closest PC-indexed contemporary of NUcache and a natural extra
// comparison point (the paper predates it by a few months).
type SHiP struct {
	table []uint8 // 2-bit saturating "lines from this signature re-use" counters
}

// Line.Meta layout: bits 0..7 RRPV, bit 8 outcome ("hit at least once"),
// bits 9+ signature index.
const (
	shipTableSize = 16 << 10
	shipCtrMax    = 3
	shipCtrInit   = 1
	shipRRPVMask  = 0xff
	shipOutcome   = 1 << 8
	shipSigShift  = 9
)

// NewSHiP returns a SHiP policy with a 16K-entry signature table.
func NewSHiP() *SHiP {
	s := &SHiP{table: make([]uint8, shipTableSize)}
	for i := range s.table {
		s.table[i] = shipCtrInit
	}
	return s
}

// Name implements cache.Policy.
func (*SHiP) Name() string { return "SHiP" }

// NewSetState implements cache.Policy.
func (*SHiP) NewSetState(int) cache.SetState { return nil }

// signature hashes a (core-tagged) PC into the predictor table.
func (*SHiP) signature(pc uint64) uint64 {
	h := pc * 0x9e3779b97f4a7c15
	return (h >> 13) % shipTableSize
}

// OnHit implements cache.Policy: a re-use trains the signature up and
// promotes the line (hit priority, like SRRIP).
func (s *SHiP) OnHit(set *cache.Set, way int, _ *cache.Request) {
	meta := set.Lines[way].Meta
	sig := meta >> shipSigShift
	if s.table[sig] < shipCtrMax {
		s.table[sig]++
	}
	set.Lines[way].Meta = sig<<shipSigShift | shipOutcome // RRPV = 0
}

// Victim implements cache.Policy: standard RRIP victim search; a victim
// that never hit trains its signature down.
func (s *SHiP) Victim(set *cache.Set, _ *cache.Request) int {
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	for {
		for i := range set.Lines {
			meta := set.Lines[i].Meta
			if meta&shipRRPVMask >= rrpvMax {
				if meta&shipOutcome == 0 {
					sig := meta >> shipSigShift
					if s.table[sig] > 0 {
						s.table[sig]--
					}
				}
				return i
			}
		}
		for i := range set.Lines {
			if set.Lines[i].Meta&shipRRPVMask < rrpvMax {
				set.Lines[i].Meta++
			}
		}
	}
}

// OnInsert implements cache.Policy.
func (s *SHiP) OnInsert(set *cache.Set, way int, req *cache.Request) {
	sig := s.signature(req.PC)
	rrpv := uint64(rrpvMax - 1) // SRRIP default: long re-reference
	if s.table[sig] == 0 {
		rrpv = rrpvMax // predicted dead-on-fill: distant
	}
	set.Lines[way].Meta = sig<<shipSigShift | rrpv
}
