package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/stats"
)

func TestNextUseChain(t *testing.T) {
	lines := []uint64{1, 2, 1, 3, 2, 1}
	next := policy.NextUseChain(lines)
	want := []uint64{2, 4, 5, policy.NeverUsed, policy.NeverUsed, policy.NeverUsed}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("next[%d] = %d, want %d", i, next[i], want[i])
		}
	}
	if got := policy.NextUseChain(nil); len(got) != 0 {
		t.Fatal("empty chain not empty")
	}
}

func TestOPTIsOptimalOnKnownPattern(t *testing.T) {
	// Classic example: 2-way set, accesses a b c a b c...
	// LRU gets zero hits; OPT keeps one of the pair and hits every cycle
	// on it (hit rate 1/3 asymptotically).
	var addrs []uint64
	for r := 0; r < 100; r++ {
		addrs = append(addrs, 0, 64, 128)
	}
	runWith := func(p cache.Policy) uint64 {
		c := cache.New(cache.Config{Name: "o", SizeBytes: 2 * 64, Ways: 2, LineBytes: 64}, p)
		for _, a := range addrs {
			load(c, 0, a)
		}
		return c.Stats.Hits
	}
	lines := make([]uint64, len(addrs))
	for i, a := range addrs {
		lines[i] = a >> 6
	}
	opt := runWith(policy.NewOPT(policy.NextUseChain(lines)))
	lru := runWith(policy.NewLRU())
	if lru != 0 {
		t.Fatalf("LRU hits = %d, want 0 on cyclic overflow", lru)
	}
	if opt < 90 {
		t.Fatalf("OPT hits = %d, want ~99", opt)
	}
}

func TestOPTNeverWorseThanLRU(t *testing.T) {
	// Property: on random traces, OPT (with exact future) >= LRU hits.
	rng := stats.NewRNG(99)
	for trial := 0; trial < 10; trial++ {
		n := 2000
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(96)) * 64
		}
		lines := make([]uint64, n)
		for i, a := range addrs {
			lines[i] = a >> 6
		}
		runWith := func(p cache.Policy) uint64 {
			c := cache.New(cache.Config{Name: "o", SizeBytes: 8 * 64 * 4, Ways: 8, LineBytes: 64}, p)
			for _, a := range addrs {
				load(c, 0, a)
			}
			return c.Stats.Hits
		}
		opt := runWith(policy.NewOPT(policy.NextUseChain(lines)))
		lru := runWith(policy.NewLRU())
		if opt < lru {
			t.Fatalf("trial %d: OPT hits %d < LRU hits %d", trial, opt, lru)
		}
	}
}

func TestOPTBeyondHorizonSafe(t *testing.T) {
	c := cache.New(cache.Config{Name: "o", SizeBytes: 2 * 64, Ways: 2, LineBytes: 64},
		policy.NewOPT(policy.NextUseChain([]uint64{0})))
	for i := uint64(0); i < 100; i++ {
		load(c, 0, i*64) // far past the 1-entry horizon
	}
	if c.Stats.Accesses != 100 {
		t.Fatal("accesses lost")
	}
}

func TestRecorderCapturesLineAddrs(t *testing.T) {
	rec := policy.NewRecorder(policy.NewLRU())
	c := multiSetCache(4, 2, 1, rec)
	load(c, 0, 0)
	load(c, 0, 64)
	load(c, 0, 0)
	want := []uint64{0, 1, 0}
	if len(rec.LineAddrs) != 3 {
		t.Fatalf("recorded %d", len(rec.LineAddrs))
	}
	for i := range want {
		if rec.LineAddrs[i] != want[i] {
			t.Fatalf("line %d = %d, want %d", i, rec.LineAddrs[i], want[i])
		}
	}
}

func TestRecorderChainsInnerObserver(t *testing.T) {
	ucp := policy.NewUCP(2, 4, policy.WithUCPEpoch(500))
	rec := policy.NewRecorder(ucp)
	c := multiSetCache(64, 4, 2, rec)
	mixedDuel(c, 5)
	if len(rec.LineAddrs) == 0 {
		t.Fatal("recorder empty")
	}
	// UCP only repartitions if its ObserveAccess kept firing through the
	// recorder wrapper.
	if ucp.Repartitions == 0 {
		t.Fatal("inner observer starved: recorder did not chain ObserveAccess")
	}
}
