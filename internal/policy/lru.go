package policy

import "nucache/internal/cache"

// LRU is least-recently-used replacement: hits move lines to the MRU end
// of a per-set recency order; the victim is the LRU end. This is the
// baseline policy in the NUcache evaluation.
//
// The recency order is kept as per-way last-use stamps from a per-set
// monotonic tick rather than an explicit stack: stamps are unique, so
// the minimum-stamp way is exactly the stack's back, and a touch is one
// store instead of a list splice.
type LRU struct {
	slab []lruState // block-allocated set states (see NewSetState)
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (*LRU) Name() string { return "LRU" }

type lruState struct {
	last [16]uint64 // last-use stamp per way; 0 = never filled
	tick uint64
}

// lruSlabBlock sizes the state allocation blocks: an LLC-sized cache
// asks for ~1k set states, and handing out slots from fixed-capacity
// blocks turns those into a handful of allocations (states never move:
// a full block is abandoned, not grown).
const lruSlabBlock = 256

// NewSetState implements cache.Policy.
func (l *LRU) NewSetState(int) cache.SetState {
	if len(l.slab) == cap(l.slab) {
		l.slab = make([]lruState, 0, lruSlabBlock)
	}
	l.slab = l.slab[:len(l.slab)+1]
	return &l.slab[len(l.slab)-1]
}

// OnHit implements cache.Policy.
func (*LRU) OnHit(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*lruState)
	st.tick++
	st.last[way] = st.tick
}

// Victim implements cache.Policy.
func (*LRU) Victim(set *cache.Set, _ *cache.Request) int {
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	st := set.State.(*lruState)
	way := 0
	min := st.last[0]
	for i := 1; i < len(set.Lines); i++ {
		if st.last[i] < min {
			way, min = i, st.last[i]
		}
	}
	return way
}

// OnInsert implements cache.Policy.
func (*LRU) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*lruState)
	st.tick++
	st.last[way] = st.tick
}
