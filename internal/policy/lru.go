package policy

import "nucache/internal/cache"

// LRU is least-recently-used replacement: hits move lines to the MRU end
// of a per-set recency stack; the victim is the LRU end. This is the
// baseline policy in the NUcache evaluation.
type LRU struct{}

// NewLRU returns an LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (*LRU) Name() string { return "LRU" }

type lruState struct {
	stack *cache.WayList
}

// NewSetState implements cache.Policy.
func (*LRU) NewSetState(int) cache.SetState {
	return &lruState{stack: cache.NewWayList(16)}
}

// OnHit implements cache.Policy.
func (*LRU) OnHit(set *cache.Set, way int, _ *cache.Request) {
	set.State.(*lruState).stack.MoveToFront(way)
}

// Victim implements cache.Policy.
func (*LRU) Victim(set *cache.Set, _ *cache.Request) int {
	st := set.State.(*lruState)
	if inv := set.FindInvalid(); inv >= 0 {
		// Self-heal if an invalidation left a stale stack entry.
		st.stack.Remove(inv)
		return inv
	}
	return st.stack.Back()
}

// OnInsert implements cache.Policy.
func (*LRU) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*lruState)
	st.stack.Remove(way)
	st.stack.PushFront(way)
}
