package policy

import "nucache/internal/cache"

// Hawkeye (Jain & Lin, ISCA 2016, simplified): learn from what Belady's
// OPT *would have done*. Sampled sets replay their recent access history
// through OPTgen — an occupancy-vector structure that decides, for each
// re-use interval, whether OPT would have kept the line. The verdict
// trains a PC-indexed predictor; fills predicted cache-friendly insert
// with high priority, averse fills insert dead. Victims prefer averse
// lines, then the oldest friendly line.
//
// Hawkeye postdates NUcache by five years; it is included as the
// strongest PC-based comparison point for the E19 extended lineup.
type Hawkeye struct {
	ways    int
	predict []int8 // 3-bit saturating counters, PC-hashed
	samples map[int]*optgenSet
	mask    uint64 // sampled-set mask

	clock uint64 // global timestamp for aging
}

const (
	hawkPredSize  = 8 << 10
	hawkPredMax   = 3
	hawkPredMin   = -4
	hawkHistory   = 8 // OPTgen window, in multiples of associativity
	hawkSampleBit = 5 // sample 1 in 32 sets
)

// optgenSet holds one sampled set's access history and occupancy vector.
type optgenSet struct {
	// ring of the last hawkHistory*ways accesses: tag, pc, the occupancy
	// count at that time slot, and whether the access was ever re-used.
	tags  []uint64
	pcs   []uint64
	occ   []uint8
	used  []bool
	valid []bool
	head  int
}

// NewHawkeye returns the policy for the given associativity.
func NewHawkeye(ways int) *Hawkeye {
	if ways <= 0 {
		panic("policy: Hawkeye needs positive ways")
	}
	return &Hawkeye{
		ways:    ways,
		predict: make([]int8, hawkPredSize),
		samples: make(map[int]*optgenSet),
		mask:    (1 << hawkSampleBit) - 1,
	}
}

// Name implements cache.Policy.
func (*Hawkeye) Name() string { return "Hawkeye" }

// NewSetState implements cache.Policy.
func (*Hawkeye) NewSetState(int) cache.SetState { return nil }

func (*Hawkeye) hash(pc uint64) uint64 {
	return (pc * 0x9e3779b97f4a7c15 >> 17) % hawkPredSize
}

func (h *Hawkeye) friendly(pc uint64) bool {
	return h.predict[h.hash(pc)] >= 0
}

func (h *Hawkeye) train(pc uint64, up bool) {
	i := h.hash(pc)
	if up {
		if h.predict[i] < hawkPredMax {
			h.predict[i]++
		}
	} else if h.predict[i] > hawkPredMin {
		h.predict[i]--
	}
}

// ObserveAccess implements cache.AccessObserver: OPTgen on sampled sets.
func (h *Hawkeye) ObserveAccess(setIndex int, tag uint64, req *cache.Request) {
	if uint64(setIndex)&h.mask != 0 {
		return
	}
	s := h.samples[setIndex]
	if s == nil {
		n := hawkHistory * h.ways
		s = &optgenSet{
			tags:  make([]uint64, n),
			pcs:   make([]uint64, n),
			occ:   make([]uint8, n),
			used:  make([]bool, n),
			valid: make([]bool, n),
		}
		h.samples[setIndex] = s
	}
	// Search backwards for the previous access to this tag. If found,
	// ask OPTgen: would every time slot in the interval have had spare
	// capacity? If yes, OPT keeps the line (train the *previous* PC up)
	// and the interval's occupancy increases; if no, OPT evicts (train
	// down).
	n := len(s.tags)
	found := -1
	for back := 1; back < n; back++ {
		i := (s.head - back + n) % n
		if s.valid[i] && s.tags[i] == tag {
			found = i
			break
		}
	}
	if found >= 0 {
		fits := true
		for i := found; i != s.head; i = (i + 1) % n {
			if int(s.occ[i]) >= h.ways {
				fits = false
				break
			}
		}
		if fits {
			for i := found; i != s.head; i = (i + 1) % n {
				s.occ[i]++
			}
		}
		s.used[found] = true
		h.train(s.pcs[found], fits)
	}
	// The slot rotating out belonged to an access never re-used within
	// the whole window: OPT would not have kept it — train down.
	if s.valid[s.head] && !s.used[s.head] {
		h.train(s.pcs[s.head], false)
	}
	s.tags[s.head] = tag
	s.pcs[s.head] = req.PC
	s.occ[s.head] = 0
	s.used[s.head] = false
	s.valid[s.head] = true
	s.head = (s.head + 1) % n
}

// OnHit implements cache.Policy.
func (h *Hawkeye) OnHit(set *cache.Set, way int, req *cache.Request) {
	h.clock++
	if h.friendly(req.PC) {
		set.Lines[way].Meta = h.clock<<1 | 1 // friendly, fresh
	} else {
		set.Lines[way].Meta = h.clock << 1 // averse
	}
}

// Victim implements cache.Policy: averse lines first, else the oldest
// friendly line (Belady-inspired: oldest ≈ farthest re-use among
// friendly lines).
func (h *Hawkeye) Victim(set *cache.Set, _ *cache.Request) int {
	if inv := set.FindInvalid(); inv >= 0 {
		return inv
	}
	oldest, oldestClock := -1, ^uint64(0)
	for i := range set.Lines {
		meta := set.Lines[i].Meta
		if meta&1 == 0 {
			return i // averse: evict immediately
		}
		if ts := meta >> 1; ts < oldestClock {
			oldest, oldestClock = i, ts
		}
	}
	return oldest
}

// OnInsert implements cache.Policy.
func (h *Hawkeye) OnInsert(set *cache.Set, way int, req *cache.Request) {
	h.clock++
	if h.friendly(req.PC) {
		set.Lines[way].Meta = h.clock<<1 | 1
	} else {
		set.Lines[way].Meta = h.clock << 1
	}
}
