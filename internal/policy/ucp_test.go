package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
)

// mixedDuel runs a cache-friendly core 0 against a streaming core 1.
func mixedDuel(c *cache.Cache, rounds int) {
	streamAddr := uint64(1 << 30)
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < 192; i++ { // 3/4 of a 64x4 cache
			load(c, 0, i*64)
		}
		for i := 0; i < 192; i++ { // never-reused stream
			load(c, 1, streamAddr)
			streamAddr += 64
		}
	}
}

func TestUCPProtectsHighUtilityCore(t *testing.T) {
	core0Hits := func(p cache.Policy) uint64 {
		c := multiSetCache(64, 4, 2, p)
		mixedDuel(c, 60)
		return c.Stats.CoreHits[0]
	}
	lru := core0Hits(policy.NewLRU())
	ucp := core0Hits(policy.NewUCP(2, 4, policy.WithUCPEpoch(4096)))
	if float64(ucp) < 1.3*float64(lru) {
		t.Fatalf("UCP core0 hits %d vs LRU %d: partitioning ineffective", ucp, lru)
	}
}

func TestUCPRepartitionsAndAllocSumsToWays(t *testing.T) {
	p := policy.NewUCP(2, 8, policy.WithUCPEpoch(1000))
	c := multiSetCache(64, 8, 2, p)
	mixedDuel(c, 10)
	if p.Repartitions == 0 {
		t.Fatal("no repartitions happened")
	}
	alloc := p.Allocations()
	sum := 0
	for _, a := range alloc {
		if a < 1 {
			t.Fatalf("core starved: %v", alloc)
		}
		sum += a
	}
	if sum != 8 {
		t.Fatalf("alloc %v sums to %d", alloc, sum)
	}
	// The friendly core must win the majority of ways.
	if alloc[0] <= alloc[1] {
		t.Fatalf("alloc %v does not favor the high-utility core", alloc)
	}
}

func TestUCPPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	policy.NewUCP(8, 4)
}

func TestUCPSingleCoreDegeneratesToLRU(t *testing.T) {
	// With one core the quota is all ways and victim picking is plain LRU.
	seq := func(p cache.Policy) uint64 {
		c := multiSetCache(16, 4, 1, p)
		for r := 0; r < 20; r++ {
			for i := uint64(0); i < 48; i++ {
				load(c, 0, i*64)
			}
		}
		return c.Stats.Hits
	}
	if got, want := seq(policy.NewUCP(1, 4)), seq(policy.NewLRU()); got != want {
		t.Fatalf("UCP single-core hits %d != LRU hits %d", got, want)
	}
}
