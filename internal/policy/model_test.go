package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/stats"
	"nucache/internal/trace"
)

// refLRU is an executable-specification LRU cache: per-set ordered slices
// of line addresses, MRU first. The real cache+policy must agree with it
// access-for-access.
type refLRU struct {
	sets  [][]uint64
	ways  int
	shift uint
	mask  uint64
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{
		sets: make([][]uint64, sets),
		ways: ways, shift: 6, mask: uint64(sets - 1),
	}
}

func (r *refLRU) access(addr uint64) bool {
	line := addr >> r.shift
	idx := int((line) & r.mask)
	s := r.sets[idx]
	for i, l := range s {
		if l == line {
			copy(s[1:i+1], s[:i])
			s[0] = line
			return true
		}
	}
	if len(s) < r.ways {
		s = append(s, 0)
	}
	copy(s[1:], s)
	s[0] = line
	r.sets[idx] = s
	return false
}

func TestLRUAgreesWithReferenceModel(t *testing.T) {
	const sets, ways = 16, 4
	c := cache.New(cache.Config{
		Name: "m", SizeBytes: sets * ways * 64, Ways: ways, LineBytes: 64,
	}, policy.NewLRU())
	ref := newRefLRU(sets, ways)
	rng := stats.NewRNG(123)
	for i := 0; i < 200000; i++ {
		// Mix of hot region, scans and random addresses.
		var addr uint64
		switch rng.Intn(3) {
		case 0:
			addr = uint64(rng.Intn(32)) * 64
		case 1:
			addr = uint64(i%4096) * 64
		default:
			addr = rng.Uint64n(1<<20) &^ 63
		}
		got := c.Access(&cache.Request{Addr: addr, Kind: trace.Load}).Hit
		want := ref.access(addr)
		if got != want {
			t.Fatalf("access %d addr %#x: cache hit=%v, model hit=%v", i, addr, got, want)
		}
	}
}

// TestPoliciesNeverCorruptOccupancy hammers every policy with adversarial
// traffic and checks structural invariants the cache must keep.
func TestPoliciesNeverCorruptOccupancy(t *testing.T) {
	mk := map[string]func() cache.Policy{
		"LRU":    func() cache.Policy { return policy.NewLRU() },
		"Random": func() cache.Policy { return policy.NewRandom(1) },
		"NRU":    func() cache.Policy { return policy.NewNRU() },
		"SRRIP":  func() cache.Policy { return policy.NewSRRIP() },
		"BRRIP":  func() cache.Policy { return policy.NewBRRIP(2) },
		"DRRIP":  func() cache.Policy { return policy.NewDRRIP(3) },
		"DIP":    func() cache.Policy { return policy.NewDIP(4) },
		"TADIP":  func() cache.Policy { return policy.NewTADIP(4, 5) },
		"UCP":    func() cache.Policy { return policy.NewUCP(4, 8, policy.WithUCPEpoch(777)) },
		"PIPP":   func() cache.Policy { return policy.NewPIPP(4, 8, 6, policy.WithPIPPEpoch(777)) },
	}
	for name, factory := range mk {
		t.Run(name, func(t *testing.T) {
			const sets, ways = 64, 8
			c := cache.New(cache.Config{
				Name: name, SizeBytes: sets * ways * 64, Ways: ways,
				LineBytes: 64, Cores: 4,
			}, factory())
			rng := stats.NewRNG(99)
			var hits uint64
			for i := 0; i < 300000; i++ {
				core := rng.Intn(4)
				var addr uint64
				switch rng.Intn(4) {
				case 0: // per-core hot region
					addr = uint64(core)<<40 | uint64(rng.Intn(256))*64
				case 1: // shared-set conflict traffic
					addr = uint64(core)<<40 | uint64(rng.Intn(8))*uint64(sets)*64
				case 2: // stream
					addr = uint64(core)<<40 | uint64(i)*64
				default:
					addr = uint64(core)<<40 | rng.Uint64n(1<<22)&^63
				}
				kind := trace.Load
				if rng.Bool(0.3) {
					kind = trace.Store
				}
				r := c.Access(&cache.Request{Addr: addr, PC: uint64(i % 13), Core: core, Kind: kind})
				if r.Hit {
					hits++
				}
			}
			if c.Occupancy() > sets*ways {
				t.Fatalf("occupancy %d exceeds capacity", c.Occupancy())
			}
			// Structural duplicate check: no tag may appear twice in a set.
			for s := 0; s < c.NumSets(); s++ {
				set := c.Set(s)
				seen := map[uint64]bool{}
				for _, l := range set.Lines {
					if !l.Valid {
						continue
					}
					if seen[l.Tag] {
						t.Fatalf("set %d holds tag %#x twice", s, l.Tag)
					}
					seen[l.Tag] = true
				}
			}
			if st := c.Stats; st.Hits+st.Misses != st.Accesses {
				t.Fatalf("stats inconsistent: %+v", st)
			}
			if hits != c.Stats.Hits {
				t.Fatalf("observed hits %d != stats hits %d", hits, c.Stats.Hits)
			}
		})
	}
}
