package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

// oneSetCache builds a cache with a single set of the given associativity.
func oneSetCache(ways int, p cache.Policy) *cache.Cache {
	return cache.New(cache.Config{
		Name: "t", SizeBytes: ways * 64, Ways: ways, LineBytes: 64, Cores: 8,
	}, p)
}

// multiSetCache builds a cache with the given sets x ways geometry.
func multiSetCache(sets, ways, cores int, p cache.Policy) *cache.Cache {
	return cache.New(cache.Config{
		Name: "t", SizeBytes: sets * ways * 64, Ways: ways, LineBytes: 64, Cores: cores,
	}, p)
}

func load(c *cache.Cache, core int, addr uint64) cache.AccessResult {
	return c.Access(&cache.Request{Addr: addr, PC: 0x400000 + uint64(core), Core: core, Kind: trace.Load})
}

func TestSRRIPScanResistance(t *testing.T) {
	// A working set that fits, re-referenced, must survive a one-shot scan
	// of moderate length under SRRIP (lines inserted with distant RRPV are
	// evicted before re-referenced lines).
	c := oneSetCache(4, policy.NewSRRIP())
	ws := []uint64{0, 64, 128} // 3 hot lines in a 4-way set (set index 0)
	for round := 0; round < 3; round++ {
		for _, a := range ws {
			load(c, 0, a)
		}
	}
	// Scan: distinct lines mapping to the same set (only 1 set here).
	for i := uint64(1); i <= 3; i++ {
		load(c, 0, 0x10000+i*64)
	}
	hot := 0
	for _, a := range ws {
		if load(c, 0, a).Hit {
			hot++
		}
	}
	if hot < 2 {
		t.Fatalf("only %d/3 hot lines survived the scan under SRRIP", hot)
	}
}

func TestLRUThrashesUnderScan(t *testing.T) {
	// Contrast case documenting why RRIP matters: LRU loses the entire hot
	// set to the same scan.
	c := oneSetCache(4, policy.NewLRU())
	ws := []uint64{0, 64, 128}
	for round := 0; round < 3; round++ {
		for _, a := range ws {
			load(c, 0, a)
		}
	}
	for i := uint64(1); i <= 3; i++ {
		load(c, 0, 0x10000+i*64)
	}
	for _, a := range ws {
		if load(c, 0, a).Hit {
			t.Fatal("LRU unexpectedly kept hot line through scan")
		}
	}
}

func TestBRRIPMostlyDistantInsertion(t *testing.T) {
	c := oneSetCache(4, policy.NewBRRIP(1))
	// Fill 4 lines, then insert many more; with distant insertion, a newly
	// inserted line is usually the next victim, so earlier lines survive
	// rarely but the cache stays full.
	for i := uint64(0); i < 100; i++ {
		load(c, 0, i*64)
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
}

func TestDRRIPDuelsTowardSRRIPOnReuse(t *testing.T) {
	// A reuse-friendly workload across many sets: DRRIP must not do much
	// worse than SRRIP.
	run := func(p cache.Policy) uint64 {
		c := multiSetCache(64, 4, 1, p)
		// Working set = 128 lines (half capacity), looped many times.
		for round := 0; round < 50; round++ {
			for i := uint64(0); i < 128; i++ {
				load(c, 0, i*64)
			}
		}
		return c.Stats.Hits
	}
	srrip := run(policy.NewSRRIP())
	drrip := run(policy.NewDRRIP(2))
	if float64(drrip) < 0.8*float64(srrip) {
		t.Fatalf("DRRIP hits %d much worse than SRRIP %d on reuse workload", drrip, srrip)
	}
}

func TestDRRIPBeatsSRRIPOnThrash(t *testing.T) {
	// Cyclic working set slightly larger than the cache: SRRIP/LRU get ~0
	// hits; bimodal insertion retains a useful fraction. DRRIP must detect
	// this via dueling and approach BRRIP.
	run := func(p cache.Policy) uint64 {
		c := multiSetCache(64, 4, 1, p)
		// 320 lines cycled over a 256-line cache.
		for round := 0; round < 60; round++ {
			for i := uint64(0); i < 320; i++ {
				load(c, 0, i*64)
			}
		}
		return c.Stats.Hits
	}
	srrip := run(policy.NewSRRIP())
	drrip := run(policy.NewDRRIP(3))
	if drrip <= srrip {
		t.Fatalf("DRRIP hits %d <= SRRIP hits %d on thrashing workload", drrip, srrip)
	}
}

func TestRRIPVictimAlwaysValidWay(t *testing.T) {
	c := multiSetCache(4, 4, 1, policy.NewSRRIP())
	for i := uint64(0); i < 10000; i++ {
		load(c, 0, (i%97)*64)
	}
	if c.Stats.Accesses != 10000 {
		t.Fatal("lost accesses")
	}
}
