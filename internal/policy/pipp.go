package policy

import (
	"nucache/internal/cache"
	"nucache/internal/stats"
)

// PIPP is promotion/insertion pseudo-partitioning (Xie & Loh, ISCA 2009).
// Per-core UMONs compute a target partition π with UCP's lookahead; the
// partition is enforced implicitly: core i inserts new lines at priority
// position π_i from the bottom of the set's priority list, and hits
// promote a line by a single position with probability pProm. Streaming
// cores (almost no reuse in their monitor) are demoted to bottom insertion
// with a tiny promotion probability so they cannot pollute the cache.
type PIPP struct {
	cores int
	ways  int
	rng   *stats.RNG
	umons []*UMON
	alloc []int
	strm  []bool

	epochAccesses uint64
	sinceRepart   uint64

	pProm       float64
	pPromStream float64

	// Repartitions counts completed epochs (exposed for tests/reports).
	Repartitions int
}

// PIPPOption customizes a PIPP policy.
type PIPPOption func(*PIPP)

// WithPIPPEpoch sets the repartitioning period in LLC accesses.
func WithPIPPEpoch(accesses uint64) PIPPOption {
	return func(p *PIPP) { p.epochAccesses = accesses }
}

// NewPIPP returns a PIPP policy for the given core count and associativity.
func NewPIPP(cores, ways int, seed uint64, opts ...PIPPOption) *PIPP {
	if cores <= 0 || ways < cores {
		panic("policy: PIPP needs ways >= cores >= 1")
	}
	p := &PIPP{
		cores:         cores,
		ways:          ways,
		rng:           stats.NewRNG(seed),
		umons:         make([]*UMON, cores),
		alloc:         make([]int, cores),
		strm:          make([]bool, cores),
		epochAccesses: 500_000,
		pProm:         3.0 / 4,
		pPromStream:   1.0 / 128,
	}
	for i := range p.umons {
		p.umons[i] = NewUMON(ways, 5)
	}
	for i := range p.alloc {
		p.alloc[i] = ways / cores
	}
	for i := 0; i < ways%cores; i++ {
		p.alloc[i]++
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements cache.Policy.
func (*PIPP) Name() string { return "PIPP" }

// Allocations returns the current target partition π.
func (p *PIPP) Allocations() []int {
	out := make([]int, len(p.alloc))
	copy(out, p.alloc)
	return out
}

type pippState struct {
	prio *cache.WayList // front = highest priority, back = victim
}

// NewSetState implements cache.Policy.
func (*PIPP) NewSetState(int) cache.SetState {
	return &pippState{prio: cache.NewWayList(16)}
}

// ObserveAccess implements cache.AccessObserver.
func (p *PIPP) ObserveAccess(setIndex int, tag uint64, req *cache.Request) {
	core := p.clampCore(req.Core)
	p.umons[core].Access(setIndex, tag)
	p.sinceRepart++
	if p.sinceRepart >= p.epochAccesses {
		p.sinceRepart = 0
		p.alloc = LookaheadPartition(p.umons, p.ways, 1)
		for i, u := range p.umons {
			// Streaming detection: essentially no reuse at any stack
			// position despite plenty of traffic.
			acc := u.Accesses()
			hits := u.Utility(p.ways)
			p.strm[i] = acc > 1000 && float64(hits) < float64(acc)/64
			u.Reset()
		}
		p.Repartitions++
	}
}

// OnHit implements cache.Policy: single-step probabilistic promotion.
func (p *PIPP) OnHit(set *cache.Set, way int, req *cache.Request) {
	st := set.State.(*pippState)
	prob := p.pProm
	if p.strm[p.clampCore(req.Core)] {
		prob = p.pPromStream
	}
	if p.rng.Bool(prob) {
		st.prio.MoveUp(way)
	}
}

// Victim implements cache.Policy: lowest priority position.
func (p *PIPP) Victim(set *cache.Set, _ *cache.Request) int {
	st := set.State.(*pippState)
	if inv := set.FindInvalid(); inv >= 0 {
		st.prio.Remove(inv)
		return inv
	}
	return st.prio.Back()
}

// OnInsert implements cache.Policy: insert at π_core from the bottom.
func (p *PIPP) OnInsert(set *cache.Set, way int, req *cache.Request) {
	st := set.State.(*pippState)
	st.prio.Remove(way)
	core := p.clampCore(req.Core)
	pi := p.alloc[core]
	if p.strm[core] {
		pi = 1
	}
	// Position pi from the bottom; pi=1 means bottom (immediate victim
	// candidate), larger allocations insert higher.
	pos := st.prio.Len() + 1 - pi
	st.prio.InsertAt(pos, way)
}

func (p *PIPP) clampCore(c int) int {
	if c < 0 || c >= p.cores {
		return 0
	}
	return c
}
