package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
)

func TestPIPPProtectsAgainstStream(t *testing.T) {
	core0Hits := func(p cache.Policy) uint64 {
		c := multiSetCache(64, 4, 2, p)
		mixedDuel(c, 60)
		return c.Stats.CoreHits[0]
	}
	lru := core0Hits(policy.NewLRU())
	pipp := core0Hits(policy.NewPIPP(2, 4, 1, policy.WithPIPPEpoch(4096)))
	if float64(pipp) < 1.2*float64(lru) {
		t.Fatalf("PIPP core0 hits %d vs LRU %d: pseudo-partitioning ineffective", pipp, lru)
	}
}

func TestPIPPStreamDetection(t *testing.T) {
	p := policy.NewPIPP(2, 8, 2, policy.WithPIPPEpoch(2000))
	c := multiSetCache(64, 8, 2, p)
	mixedDuel(c, 20)
	if p.Repartitions == 0 {
		t.Fatal("no repartitions")
	}
	alloc := p.Allocations()
	if alloc[0] <= alloc[1] {
		t.Fatalf("alloc %v does not favor reuse core", alloc)
	}
}

func TestPIPPSingleCoreSane(t *testing.T) {
	c := multiSetCache(16, 4, 1, policy.NewPIPP(1, 4, 3))
	for r := 0; r < 30; r++ {
		for i := uint64(0); i < 32; i++ { // half capacity: all hits after warmup
			load(c, 0, i*64)
		}
	}
	hitRate := c.Stats.HitRate()
	if hitRate < 0.9 {
		t.Fatalf("PIPP hit rate %.2f on trivially cacheable workload", hitRate)
	}
	if c.Occupancy() > 16*4 {
		t.Fatal("occupancy exceeds capacity")
	}
}

func TestPIPPPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	policy.NewPIPP(9, 8, 1)
}
