package policy

import "nucache/internal/cache"

// UCP is utility-based cache partitioning (Qureshi & Patt, MICRO 2006):
// per-core UMONs measure each core's utility curve; every epoch the
// lookahead algorithm re-divides the ways; replacement enforces the
// per-core way quotas within each set on top of LRU ordering.
type UCP struct {
	cores  int
	ways   int
	umons  []*UMON
	alloc  []int
	states []*ucpState // per-set states by index, for eviction accounting

	epochAccesses uint64 // repartition period, in LLC accesses
	sinceRepart   uint64

	// Repartitions counts completed epochs (exposed for tests/reports).
	Repartitions int
}

// UCPOption customizes a UCP policy.
type UCPOption func(*UCP)

// WithUCPEpoch sets the repartitioning period in LLC accesses.
func WithUCPEpoch(accesses uint64) UCPOption {
	return func(u *UCP) { u.epochAccesses = accesses }
}

// NewUCP returns a UCP policy for the given core count and associativity.
func NewUCP(cores, ways int, opts ...UCPOption) *UCP {
	if cores <= 0 || ways < cores {
		panic("policy: UCP needs ways >= cores >= 1")
	}
	u := &UCP{
		cores:         cores,
		ways:          ways,
		umons:         make([]*UMON, cores),
		alloc:         make([]int, cores),
		epochAccesses: 500_000,
	}
	for i := range u.umons {
		u.umons[i] = NewUMON(ways, 5) // 1-in-32 set sampling
	}
	// Start with an even split.
	for i := range u.alloc {
		u.alloc[i] = ways / cores
	}
	for i := 0; i < ways%cores; i++ {
		u.alloc[i]++
	}
	for _, o := range opts {
		o(u)
	}
	return u
}

// Name implements cache.Policy.
func (*UCP) Name() string { return "UCP" }

// Allocations returns the current per-core way quotas.
func (u *UCP) Allocations() []int {
	out := make([]int, len(u.alloc))
	copy(out, u.alloc)
	return out
}

type ucpState struct {
	stack *cache.WayList
	// owned counts the set's valid lines per (clamped) owner core,
	// maintained by OnInsert/ObserveEviction so Victim's quota check
	// does not rescan the set's lines on every miss.
	owned [16]uint8
}

// NewSetState implements cache.Policy.
func (u *UCP) NewSetState(setIndex int) cache.SetState {
	st := &ucpState{stack: cache.NewWayList(16)}
	for len(u.states) <= setIndex {
		u.states = append(u.states, nil)
	}
	u.states[setIndex] = st
	return st
}

// ObserveEviction implements cache.EvictionObserver: a valid line left
// the cache (replacement or invalidation), so its owner's count drops.
func (u *UCP) ObserveEviction(setIndex int, line cache.Line) {
	u.states[setIndex].owned[u.clampCore(int(line.Core))]--
}

// ObserveAccess implements cache.AccessObserver: it feeds the issuing
// core's UMON and advances the repartitioning epoch.
func (u *UCP) ObserveAccess(setIndex int, tag uint64, req *cache.Request) {
	core := u.coreOf(req)
	u.umons[core].Access(setIndex, tag)
	u.sinceRepart++
	if u.sinceRepart >= u.epochAccesses {
		u.sinceRepart = 0
		u.alloc = LookaheadPartition(u.umons, u.ways, 1)
		for _, m := range u.umons {
			m.Reset()
		}
		u.Repartitions++
	}
}

// OnHit implements cache.Policy.
func (*UCP) OnHit(set *cache.Set, way int, _ *cache.Request) {
	set.State.(*ucpState).stack.MoveToFront(way)
}

// Victim implements cache.Policy: quota-aware LRU.
func (u *UCP) Victim(set *cache.Set, req *cache.Request) int {
	st := set.State.(*ucpState)
	if inv := set.FindInvalid(); inv >= 0 {
		st.stack.Remove(inv)
		return inv
	}
	core := u.coreOf(req)
	owned := &st.owned
	if int(owned[core]) < u.alloc[core] {
		// Under quota: take the LRU line of any over-quota core.
		for i := st.stack.Len() - 1; i >= 0; i-- {
			w := st.stack.At(i)
			oc := u.clampCore(int(set.Lines[w].Core))
			if oc != core && int(owned[oc]) > u.alloc[oc] {
				return w
			}
		}
		// No over-quota owner (stale quotas): LRU among other cores.
		for i := st.stack.Len() - 1; i >= 0; i-- {
			w := st.stack.At(i)
			if u.clampCore(int(set.Lines[w].Core)) != core {
				return w
			}
		}
		return st.stack.Back()
	}
	// At/over quota: replace own LRU line.
	for i := st.stack.Len() - 1; i >= 0; i-- {
		w := st.stack.At(i)
		if u.clampCore(int(set.Lines[w].Core)) == core {
			return w
		}
	}
	return st.stack.Back()
}

// OnInsert implements cache.Policy.
func (u *UCP) OnInsert(set *cache.Set, way int, req *cache.Request) {
	st := set.State.(*ucpState)
	st.owned[u.coreOf(req)]++
	st.stack.Remove(way)
	st.stack.PushFront(way)
}

func (u *UCP) coreOf(req *cache.Request) int { return u.clampCore(req.Core) }

func (u *UCP) clampCore(c int) int {
	if c < 0 || c >= u.cores {
		return 0
	}
	return c
}
