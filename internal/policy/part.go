package policy

import (
	"fmt"

	"nucache/internal/cache"
)

// StaticPart is a fixed way-partitioned LLC: core i owns a contiguous,
// immutable range of alloc[i] ways in every set, managed LRU within the
// range. Because the cores' address spaces are disjoint (per-core tag
// bits), each core's partition behaves exactly like a private
// alloc[i]-way LRU cache over the same sets — which is what makes the
// MRC advisor's prediction for this policy exact: the profiler's
// full-associativity ATD hit curve at stack positions < alloc[i] is,
// by stack inclusion, precisely the hit count this policy delivers.
type StaticPart struct {
	cores int
	ways  int
	alloc []int
	start []int
}

// EvenSplit returns the canonical even allocation of ways among cores
// (remainder ways go to the lowest-numbered cores).
func EvenSplit(cores, ways int) []int {
	alloc := make([]int, cores)
	for i := range alloc {
		alloc[i] = ways / cores
	}
	for i := 0; i < ways%cores; i++ {
		alloc[i]++
	}
	return alloc
}

// NewStaticPart returns a static partition policy. Every core must get
// at least one way.
func NewStaticPart(alloc []int) *StaticPart {
	if len(alloc) == 0 {
		panic("policy: StaticPart with no cores")
	}
	p := &StaticPart{
		cores: len(alloc),
		alloc: append([]int(nil), alloc...),
		start: make([]int, len(alloc)),
	}
	for i, a := range alloc {
		if a < 1 {
			panic(fmt.Sprintf("policy: StaticPart core %d allocated %d ways", i, a))
		}
		p.start[i] = p.ways
		p.ways += a
	}
	return p
}

// Name implements cache.Policy.
func (*StaticPart) Name() string { return "Part" }

// Allocations returns the per-core way quotas.
func (p *StaticPart) Allocations() []int {
	return append([]int(nil), p.alloc...)
}

// partState is per-set stamp-LRU: last[w] is the tick of way w's most
// recent touch; untouched (invalid) ways keep stamp 0 and lose every
// min-comparison, so they are filled first without a validity scan.
type partState struct {
	last []uint64
	tick uint64
}

// NewSetState implements cache.Policy.
func (p *StaticPart) NewSetState(int) cache.SetState {
	return &partState{last: make([]uint64, p.ways)}
}

// OnHit implements cache.Policy.
func (*StaticPart) OnHit(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*partState)
	st.tick++
	st.last[way] = st.tick
}

// Victim implements cache.Policy: LRU within the issuing core's range.
func (p *StaticPart) Victim(set *cache.Set, req *cache.Request) int {
	st := set.State.(*partState)
	core := p.clampCore(req.Core)
	lo := p.start[core]
	victim, oldest := lo, st.last[lo]
	for w := lo + 1; w < lo+p.alloc[core]; w++ {
		if st.last[w] < oldest {
			victim, oldest = w, st.last[w]
		}
	}
	return victim
}

// OnInsert implements cache.Policy.
func (*StaticPart) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*partState)
	st.tick++
	st.last[way] = st.tick
}

func (p *StaticPart) clampCore(c int) int {
	if c < 0 || c >= p.cores {
		return 0
	}
	return c
}
