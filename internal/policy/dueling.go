package policy

// Set dueling infrastructure (Qureshi et al.): a few "leader" sets are
// dedicated to each competing policy; a saturating counter (PSEL) tracks
// which leader group misses less, and all "follower" sets use the winner.
//
// Leader assignment uses a fixed constituency scheme: sets are grouped
// into constituencies of constituencySize sets; within constituency c,
// offset 2t selects policy-A leader for owner t and offset 2t+1 selects
// policy-B leader for owner t. Single-owner policies (DRRIP) use owner 0.

const (
	constituencySize = 32
	pselBits         = 10
	pselMax          = (1 << pselBits) - 1
	pselInit         = pselMax / 2
)

// duelRole classifies a set for one owner's duel.
type duelRole uint8

const (
	follower duelRole = iota
	leaderA           // dedicated to the first policy (e.g. SRRIP, LRU)
	leaderB           // dedicated to the second policy (e.g. BRRIP, BIP)
)

// duelRoleOf returns the role of setIndex in owner's duel, given the
// number of owners sharing the constituency space.
func duelRoleOf(setIndex, owner, owners int) duelRole {
	off := setIndex % constituencySize
	if off == 2*owner {
		return leaderA
	}
	if off == 2*owner+1 {
		return leaderB
	}
	_ = owners
	return follower
}

// psel is a saturating counter; the MSB picks the winner.
type psel struct {
	v int
}

func newPSEL() psel { return psel{v: pselInit} }

// missInA records a miss in a policy-A leader set (evidence for B).
func (p *psel) missInA() {
	if p.v < pselMax {
		p.v++
	}
}

// missInB records a miss in a policy-B leader set (evidence for A).
func (p *psel) missInB() {
	if p.v > 0 {
		p.v--
	}
}

// useB reports whether follower sets should use policy B.
func (p *psel) useB() bool { return p.v > pselMax/2 }
