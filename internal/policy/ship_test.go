package policy_test

import (
	"testing"

	"nucache/internal/cache"
	"nucache/internal/policy"
	"nucache/internal/trace"
)

func TestSHiPLearnsDeadSignature(t *testing.T) {
	// PC 0xS streams (never re-used); PC 0xH loops a small hot set.
	// After training, SHiP must keep the hot lines resident despite the
	// stream — the stream's fills are predicted dead and insert distant.
	const (
		pcHot    = 0x400100
		pcStream = 0x400200
	)
	c := multiSetCache(16, 4, 1, policy.NewSHiP())
	streamAddr := uint64(1 << 30)
	// Warm-up: hot-only rounds give the hot signature its first hits
	// (real programs establish reuse before pollution phases too; without
	// any hit the predictor can only learn "dead").
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 3; i++ {
			for s := uint64(0); s < 16; s++ {
				c.Access(&cache.Request{Addr: i*16*64 + s*64, PC: pcHot, Kind: trace.Load})
			}
		}
	}
	var lastRoundHits int
	for round := 0; round < 200; round++ {
		hits := 0
		for i := uint64(0); i < 3; i++ { // hot: 3 lines/set across 16 sets
			for s := uint64(0); s < 16; s++ {
				r := c.Access(&cache.Request{Addr: i*16*64 + s*64, PC: pcHot, Kind: trace.Load})
				if r.Hit {
					hits++
				}
			}
		}
		for i := 0; i < 6*16; i++ { // stream: 6 lines/set/round
			c.Access(&cache.Request{Addr: streamAddr, PC: pcStream, Kind: trace.Load})
			streamAddr += 64
		}
		lastRoundHits = hits
	}
	if lastRoundHits < 40 { // of 48 hot accesses/round
		t.Fatalf("SHiP retained only %d/48 hot hits in steady state", lastRoundHits)
	}
}

func TestSHiPBeatsSRRIPUnderStreamPollution(t *testing.T) {
	run := func(p cache.Policy) uint64 {
		c := multiSetCache(16, 4, 1, p)
		streamAddr := uint64(1 << 30)
		for round := 0; round < 10; round++ { // identical warm-up for both
			for i := uint64(0); i < 3; i++ {
				for s := uint64(0); s < 16; s++ {
					c.Access(&cache.Request{Addr: i*16*64 + s*64, PC: 0x400100, Kind: trace.Load})
				}
			}
		}
		for round := 0; round < 150; round++ {
			for i := uint64(0); i < 3; i++ {
				for s := uint64(0); s < 16; s++ {
					c.Access(&cache.Request{Addr: i*16*64 + s*64, PC: 0x400100, Kind: trace.Load})
				}
			}
			for i := 0; i < 8*16; i++ { // heavy stream: 8 lines/set/round
				c.Access(&cache.Request{Addr: streamAddr, PC: 0x400200, Kind: trace.Load})
				streamAddr += 64
			}
		}
		return c.Stats.Hits
	}
	ship := run(policy.NewSHiP())
	srrip := run(policy.NewSRRIP())
	if ship <= srrip {
		t.Fatalf("SHiP hits %d <= SRRIP hits %d under stream pollution", ship, srrip)
	}
}

func TestSLRUScanResistance(t *testing.T) {
	// Hot pair re-used, long scan: SLRU's protected segment must keep the
	// hot pair where plain LRU loses it.
	// Each round touches the hot pair twice (so it can *prove* re-use
	// while still probationary) and then scans. SLRU promotes the pair
	// into the protected segment where the scan cannot reach it; LRU
	// re-faults the pair every round.
	run := func(p cache.Policy) uint64 {
		c := multiSetCache(1, 4, 1, p)
		hits := uint64(0)
		junk := uint64(1 << 20)
		for round := 0; round < 100; round++ {
			for _, a := range []uint64{0, 64, 0, 64} {
				if c.Access(&cache.Request{Addr: a, PC: 1, Kind: trace.Load}).Hit {
					hits++
				}
			}
			for i := 0; i < 3; i++ {
				c.Access(&cache.Request{Addr: junk, PC: 2, Kind: trace.Load})
				junk += 64
			}
		}
		return hits
	}
	slru := run(policy.NewSLRU(2))
	lru := run(policy.NewLRU())
	if lru > 250 { // LRU only hits the immediate double-touch (~2/round)
		t.Fatalf("scenario broken: LRU hits %d", lru)
	}
	if slru < 350 { // SLRU keeps the pair protected (~4/round)
		t.Fatalf("SLRU hits %d, want ~398 (LRU got %d)", slru, lru)
	}
}

func TestSLRUProtectedBounded(t *testing.T) {
	p := policy.NewSLRU(3)
	c := multiSetCache(4, 4, 1, p)
	// Hammer hits so promotions overflow the protected segment.
	for i := 0; i < 10000; i++ {
		c.Access(&cache.Request{Addr: uint64(i%24) * 64, PC: 1, Kind: trace.Load})
	}
	if c.Occupancy() > 16 {
		t.Fatal("occupancy exceeded")
	}
}

func TestSLRUPanicsOnZeroProtected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	policy.NewSLRU(0)
}
