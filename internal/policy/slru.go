package policy

import "nucache/internal/cache"

// SLRU is segmented LRU: each set is split into a probationary and a
// protected segment. Fills enter the probationary segment; a hit promotes
// the line into the protected segment (possibly demoting that segment's
// LRU line back to probation). Victims always come from the probationary
// LRU end, so lines must prove re-use before earning long residency —
// a classic scan-resistant design and a useful structural cousin of
// NUcache's two-region set (with the regions' roles inverted: NUcache
// rewards *after* eviction, SLRU rewards *before*).
type SLRU struct {
	protected int // ways reserved for proven lines
}

// NewSLRU returns an SLRU policy protecting the given number of ways per
// set (clamped to at least 1 probationary way at attach time).
func NewSLRU(protectedWays int) *SLRU {
	if protectedWays < 1 {
		panic("policy: SLRU needs at least one protected way")
	}
	return &SLRU{protected: protectedWays}
}

// Name implements cache.Policy.
func (*SLRU) Name() string { return "SLRU" }

type slruState struct {
	prob *cache.WayList // front = MRU
	prot *cache.WayList // front = MRU
}

// NewSetState implements cache.Policy.
func (*SLRU) NewSetState(int) cache.SetState {
	return &slruState{prob: cache.NewWayList(16), prot: cache.NewWayList(16)}
}

// OnHit implements cache.Policy.
func (p *SLRU) OnHit(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*slruState)
	if st.prot.Contains(way) {
		st.prot.MoveToFront(way)
		return
	}
	st.prob.Remove(way)
	st.prot.PushFront(way)
	maxProt := p.protected
	if maxProt >= len(set.Lines) {
		maxProt = len(set.Lines) - 1
	}
	if st.prot.Len() > maxProt {
		demoted := st.prot.PopBack()
		st.prob.PushFront(demoted)
	}
}

// Victim implements cache.Policy: probationary LRU first.
func (*SLRU) Victim(set *cache.Set, _ *cache.Request) int {
	st := set.State.(*slruState)
	if inv := set.FindInvalid(); inv >= 0 {
		st.prob.Remove(inv)
		st.prot.Remove(inv)
		return inv
	}
	if st.prob.Len() > 0 {
		return st.prob.Back()
	}
	// Everything is protected (tiny sets): fall back to protected LRU.
	return st.prot.Back()
}

// OnInsert implements cache.Policy.
func (*SLRU) OnInsert(set *cache.Set, way int, _ *cache.Request) {
	st := set.State.(*slruState)
	st.prob.Remove(way)
	st.prot.Remove(way)
	st.prob.PushFront(way)
}
